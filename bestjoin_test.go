package bestjoin_test

import (
	"fmt"
	"math"
	"testing"

	"bestjoin"
)

func figure1Lists() bestjoin.MatchLists {
	// The paper's Figure 1 document, hand-annotated: matches for
	// {"PC maker", "sports", "partnership"}.
	return bestjoin.MatchLists{
		{ // PC maker: Lenovo, laptop maker, Lenovo, Dell, Hewlett-Packard
			{Loc: 8, Score: 0.9}, {Loc: 33, Score: 0.8}, {Loc: 70, Score: 0.9},
			{Loc: 80, Score: 0.9}, {Loc: 83, Score: 0.9},
		},
		{ // sports: NBA, NBA, Olympic Games, Winter Olympics, Summer Olympics
			{Loc: 16, Score: 0.8}, {Loc: 24, Score: 0.8}, {Loc: 44, Score: 0.8},
			{Loc: 55, Score: 0.7}, {Loc: 64, Score: 0.7},
		},
		{ // partnership: deal, partner, partnership
			{Loc: 5, Score: 0.7}, {Loc: 14, Score: 1.0}, {Loc: 42, Score: 1.0},
		},
	}
}

func TestFigure1BestJoinFindsLenovoNBAPartner(t *testing.T) {
	lists := figure1Lists()
	// The {Lenovo(8), NBA(16), partner(14)} cluster is the intuitive
	// winner under all three families at moderate decay.
	win := bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
	if !win.OK || win.Set[0].Loc != 8 || win.Set[1].Loc != 16 || win.Set[2].Loc != 14 {
		t.Errorf("WIN picked %v", win.Set)
	}
	med := bestjoin.BestMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	if !med.OK || med.Set[0].Loc != 8 || med.Set[1].Loc != 16 || med.Set[2].Loc != 14 {
		t.Errorf("MED picked %v", med.Set)
	}
	max := bestjoin.BestMAX(bestjoin.SumMAX{Alpha: 0.1}, lists)
	if !max.OK || max.Set[0].Loc != 8 || max.Set[1].Loc != 16 || max.Set[2].Loc != 14 {
		t.Errorf("MAX picked %v", max.Set)
	}
}

func TestFacadeAgreesWithNaive(t *testing.T) {
	lists := figure1Lists()
	fw := bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
	nw := bestjoin.NaiveWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
	if math.Abs(fw.Score-nw.Score) > 1e-9 {
		t.Errorf("WIN %v != naive %v", fw.Score, nw.Score)
	}
	fm := bestjoin.BestMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	nm := bestjoin.NaiveMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	if math.Abs(fm.Score-nm.Score) > 1e-9 {
		t.Errorf("MED %v != naive %v", fm.Score, nm.Score)
	}
	fx := bestjoin.BestMAX(bestjoin.SumMAX{Alpha: 0.1}, lists)
	nx := bestjoin.NaiveMAX(bestjoin.SumMAX{Alpha: 0.1}, lists)
	if math.Abs(fx.Score-nx.Score) > 1e-9 {
		t.Errorf("MAX %v != naive %v", fx.Score, nx.Score)
	}
	gx := bestjoin.BestMAXGeneral(bestjoin.SumMAX{Alpha: 0.1}, lists)
	if math.Abs(gx.Score-nx.Score) > 1e-9 {
		t.Errorf("MAXGeneral %v != naive %v", gx.Score, nx.Score)
	}
}

func TestBestValidAvoidsDuplicates(t *testing.T) {
	lists := bestjoin.MatchLists{
		{{Loc: 10, Score: 0.9}, {Loc: 22, Score: 0.6}},
		{{Loc: 10, Score: 0.9}, {Loc: 20, Score: 0.8}},
	}
	res, inv := bestjoin.BestValidWIN(bestjoin.ExpWIN{Alpha: 0.2}, lists)
	if !res.OK || !res.Set.Valid() {
		t.Fatalf("BestValidWIN = %+v", res)
	}
	if inv < 2 {
		t.Errorf("invocations = %d, want reruns for the duplicated token", inv)
	}
	resMED, _ := bestjoin.BestValidMED(bestjoin.ExpMED{Alpha: 0.2}, lists)
	if !resMED.OK || !resMED.Set.Valid() {
		t.Fatalf("BestValidMED = %+v", resMED)
	}
	resMAX, _ := bestjoin.BestValidMAX(bestjoin.SumMAX{Alpha: 0.2}, lists)
	if !resMAX.OK || !resMAX.Set.Valid() {
		t.Fatalf("BestValidMAX = %+v", resMAX)
	}
}

func TestByLocationFacade(t *testing.T) {
	lists := figure1Lists()
	for name, got := range map[string][]bestjoin.Anchored{
		"WIN": bestjoin.ByLocationWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists),
		"MED": bestjoin.ByLocationMED(bestjoin.ExpMED{Alpha: 0.1}, lists),
		"MAX": bestjoin.ByLocationMAX(bestjoin.SumMAX{Alpha: 0.1}, lists),
	} {
		if len(got) == 0 {
			t.Errorf("%s: no anchored results", name)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Anchor <= got[i-1].Anchor {
				t.Errorf("%s: anchors not increasing", name)
			}
		}
	}
	var streamed int
	bestjoin.StreamWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists, func(bestjoin.Anchored) { streamed++ })
	if streamed != len(bestjoin.ByLocationWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)) {
		t.Error("StreamWIN emitted a different number of anchors")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// The paper's Figure 1 text through the full pipeline: tokenize,
	// match with the lexicon, best-join, and recover the
	// Lenovo/NBA/partner answer.
	body := "As part of the new deal, Lenovo will become the official PC partner " +
		"of the NBA, and it will be marketing its NBA affiliation in the US and in China. " +
		"The laptop maker has a similar marketing and technology partnership with the Olympic Games."
	doc := bestjoin.NewDocument(body)
	lex := bestjoin.BuiltinLexicon()
	// "PC maker" is a concept: with knowledge of which companies are
	// PC makers (the paper's footnote 1), its match list is the union
	// of the entity matches.
	pcMaker := bestjoin.NewUnionMatcher("PC maker",
		bestjoin.NewExactMatcher("lenovo"),
		bestjoin.NewExactMatcher("dell"),
		bestjoin.NewExactMatcher("hewlett"),
	)
	lists := doc.MatchQuery(
		pcMaker,
		bestjoin.NewLexicalMatcher("sports", lex),
		bestjoin.NewLexicalMatcher("partnership", lex),
	)
	if err := lists.Validate(); err != nil {
		t.Fatal(err)
	}
	res, _ := bestjoin.BestValidMED(bestjoin.ExpMED{Alpha: 0.1}, lists)
	if !res.OK {
		t.Fatal("no matchset found")
	}
	words := make([]string, len(res.Set))
	for j, m := range res.Set {
		words[j] = doc.Tokens[m.Loc].Word
	}
	if words[0] != "lenovo" || words[1] != "nba" || words[2] != "partner" {
		t.Errorf("pipeline answer = %v, want [lenovo nba partner]", words)
	}
}

func TestCheckersExposedAndPassOnBuiltins(t *testing.T) {
	if err := bestjoin.CheckWIN(bestjoin.ExpWIN{Alpha: 0.1}, 4, 2000, 1); err != nil {
		t.Error(err)
	}
	if err := bestjoin.CheckMED(bestjoin.ExpMED{Alpha: 0.1}, 4, 2000, 1); err != nil {
		t.Error(err)
	}
	if err := bestjoin.CheckMAX(bestjoin.SumMAX{Alpha: 0.1}, 4, 2000, 1); err != nil {
		t.Error(err)
	}
	if err := bestjoin.CheckAtMostOneCrossing(bestjoin.SumMAX{Alpha: 0.1}, 2, 200, 0, 100, 1); err != nil {
		t.Error(err)
	}
}

func ExampleBestWIN() {
	lists := bestjoin.MatchLists{
		{{Loc: 3, Score: 0.9}, {Loc: 40, Score: 1.0}},
		{{Loc: 5, Score: 0.8}},
	}
	res := bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
	fmt.Printf("%v score=%.3f\n", res.Set, res.Score)
	// Output: (3:0.900, 5:0.800) score=0.589
}

func ExampleByLocationMED() {
	lists := bestjoin.MatchLists{
		{{Loc: 10, Score: 0.9}, {Loc: 100, Score: 0.9}},
		{{Loc: 12, Score: 0.8}, {Loc: 103, Score: 0.8}},
	}
	for _, a := range bestjoin.ByLocationMED(bestjoin.ExpMED{Alpha: 0.1}, lists) {
		if a.Score > 0.3 {
			fmt.Println(a.Anchor)
		}
	}
	// Output:
	// 12
	// 103
}
