// Package bestjoin computes weighted proximity best-joins over match
// lists, implementing Thonangi, He, Doan, Wang and Yang, "Weighted
// Proximity Best-Joins for Information Retrieval" (ICDE 2009).
//
// # Problem
//
// Given a multi-term query and, for each term, a list of its matches
// in a document — each match carrying a location and a quality score —
// a weighted proximity best-join finds the matchset (one match per
// term) that maximizes a scoring function combining the individual
// match scores with the proximity of the match locations. This is the
// core primitive of entity search, question answering, and information
// extraction systems that rank answers rather than documents.
//
// # Scoring functions
//
// Three families are supported, each with the efficient algorithm the
// paper develops for it:
//
//   - WIN (window-length): penalizes the smallest window enclosing the
//     matchset. BestWIN runs in O(2^|Q|·Σ|Lj|).
//   - MED (distance-from-median): penalizes each match by its distance
//     to the matchset's median location, distinguishing clustered
//     matchsets from merely narrow ones. BestMED runs in O(|Q|·Σ|Lj|).
//   - MAX (maximize-over-location): scores the matchset at the best
//     possible reference location, anchoring answers near
//     high-confidence matches. BestMAX runs in O(|Q|·Σ|Lj|).
//
// Ready-made instances (ExpWIN, ExpMED, SumMAX, ProdMAX, LinearWIN,
// LinearMED) cover the paper's equations (1)–(5) and its experimental
// settings; any type satisfying the WIN/MED/MAX interfaces works.
//
// # Quick start
//
//	lists := bestjoin.MatchLists{
//	    {{Loc: 3, Score: 0.9}, {Loc: 40, Score: 1.0}}, // matches for term 0
//	    {{Loc: 5, Score: 0.8}},                        // matches for term 1
//	}
//	res := bestjoin.BestWIN(bestjoin.ExpWIN{Alpha: 0.1}, lists)
//	if res.OK {
//	    fmt.Println(res.Set, res.Score)
//	}
//
// BestValid* variants additionally guarantee the returned matchset
// uses no token for two query terms at once (Section VI of the paper);
// ByLocation* variants return one locally-best matchset per anchor
// location for information-extraction workloads (Section VII).
//
// # Join kernels
//
// The Best* functions solve one instance and return a caller-owned
// result. Hot loops that join many instances in sequence — a worker
// ranking one candidate document after another — should instead hold a
// reusable kernel (JoinKernel, built by NewWINKernel, NewMEDKernel,
// NewMAXKernel, or NewValidKernel for duplicate avoidance): Reset
// loads an instance, Join solves it, and all working state (WIN's
// subset table and chain-node arena, MED/MAX's dominating-match stacks
// and envelope cursors, dedup's memo and scratch) is reused across
// calls, so a warmed kernel allocates nothing per instance. The
// returned Matchset aliases kernel memory and is valid only until the
// next Reset or Join; Clone it to keep it. Kernels are not safe for
// concurrent use — build one per goroutine (the engine does this via
// KernelFactory). The Best* functions remain thin wrappers that run a
// fresh kernel once.
//
// # Beyond the paper
//
// KBestWIN returns the k best distinct matchsets; TopKWIN/MED/MAX the
// k best per-anchor results; StreamMED emits by-location results in a
// single pass given a score bound; BestTypeAnchored fixes the
// reference at a type term's match (the model MAX generalizes); Batch
// and RankDocuments process document collections in parallel;
// EncodeLists/DecodeLists give match lists a compact binary form.
//
// # Serving queries over an index
//
// For ranking whole corpora rather than single documents, NewEngine
// wraps a compacted inverted index (CompactIndex) in a concurrent
// query engine — candidate generation, per-document best-joins on a
// worker pool, a global top-k heap, LRU-cached posting decoding,
// context deadlines with partial results, and Stats/expvar
// observability. The engine prunes losslessly by default: candidates
// whose score upper bound (ScoreUpperBoundWIN/MED/MAX over per-concept
// maximum match scores) cannot beat the current top-k floor are
// skipped without joining, with output identical to the exhaustive
// engine; EngineConfig.DisablePruning turns it off. Registering
// block-partitioned postings on the index
// (CompactIndex.AddConceptBlocks) moves the same pruning below the
// decode: candidate generation walks per-block skip tables, blocks
// are decoded lazily and in parallel on the worker pool, and blocks
// whose block-max score bound cannot beat the top-k floor are skipped
// without touching their bytes — still with output identical to the
// flat path. Queries are conjunctive by default; EngineQuery.Mode =
// ModeOR (with an optional m-of-n EngineQuery.MinMatch threshold)
// instead ranks the union of documents matching at least m concepts
// through a block-max WAND pivot walk, pruned by a union score bound
// that remains sound for the paper's product-form scorers. On the warm
// path, block buffers use a batched group-varint encoding (decoding
// four integers per control byte, with an automatic varint fallback
// for values past uint32) and concurrent queries sharing a concept
// coalesce their block decodes through a singleflight layer — one
// decode per block no matter how many queries race, counted by
// Stats().CoalescedDecodes and switchable off with
// EngineConfig.DisableCoalescing. The implementation lives in
// internal/engine; see cmd/proxserve for a runnable server and
// examples/engine for a walkthrough.
//
// NewShardedEngine scales the same engine out inside one process: the
// corpus is partitioned by document id across N child engines and a
// coordinator scatter-gathers every query under one shared pruning
// floor, rank-merging the per-shard top-k heaps into answers bitwise
// identical to the single engine's. Engine and ShardedEngine both
// satisfy the Searcher contract (Search, Stats, SwapIndex, Health) —
// servers need not know which they hold; reloads roll shard by shard
// with zero downtime, and Health reports the index epoch plus
// per-shard readiness (proxserve's -shards flag and GET /healthz).
//
// # From text to match lists
//
// The Document type and the matcher constructors (NewLexicalMatcher,
// NewDateMatcher, NewPlaceMatcher, …) turn raw text into match lists
// using a tokenizer, a Porter stemmer, an embedded lexical graph and a
// gazetteer — the same pipeline the paper's TREC and DBWorld
// experiments use. See the examples directory for complete programs.
package bestjoin
