package index

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"bestjoin/internal/match"
)

// FuzzDecodePostings ensures posting decompression never panics on
// arbitrary bytes and that accepted inputs round-trip.
func FuzzDecodePostings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePostings([]Posting{{Doc: 0, Pos: 0}}))
	f.Add(EncodePostings([]Posting{{Doc: 1, Pos: 3}, {Doc: 1, Pos: 9}, {Doc: 7, Pos: 2}}))
	// Regression input for the bounded-delta fix: a doc delta of
	// MaxUint64 used to wrap the accumulator negative.
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	overflow = binary.AppendUvarint(overflow, 1)
	f.Add(binary.AppendUvarint(overflow, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePostings(data)
		if err != nil {
			return
		}
		// Accepted postings must be (doc, pos)-sorted and in range —
		// the invariant the overflow bug used to break.
		for i, p := range ps {
			if p.Doc < 0 || p.Doc > MaxDocID || p.Pos < 0 || p.Pos > MaxPosition {
				t.Fatalf("posting %d out of range: %+v", i, p)
			}
			if i > 0 {
				prev := ps[i-1]
				if p.Doc < prev.Doc || (p.Doc == prev.Doc && p.Pos < prev.Pos) {
					t.Fatalf("postings out of order at %d: %+v then %+v", i, prev, p)
				}
			}
		}
		again, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ps) {
			t.Fatalf("round trip changed posting count")
		}
		for i := range ps {
			if ps[i] != again[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
	})
}

// FuzzDecodeDocMax ensures the concept max-score metadata decode path
// never panics on arbitrary bytes, that accepted summaries respect the
// documented invariants (strictly ascending bounded ids, finite
// scores), and that accepted inputs round-trip. Seeds mirror the
// MaxLocation bounds style of the PR 1 decode hardening: crafted
// overflow, NaN, and negative-score buffers.
func FuzzDecodeDocMax(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDocMax([]int{0}, []float64{1}))
	f.Add(EncodeDocMax([]int{2, 9, 4096}, []float64{0.5, -0.25, 1}))
	// Crafted max-score overflow: a doc delta of MaxUint64 used to be
	// the int-wrapping shape in postings; the metadata decoder must
	// bound it the same way.
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	f.Add(binary.LittleEndian.AppendUint64(overflow, math.Float64bits(1)))
	// NaN and ±Inf score bits: must be rejected, never stored.
	nan := binary.AppendUvarint(nil, 1)
	nan = binary.AppendUvarint(nan, 3)
	f.Add(binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN())))
	inf := binary.AppendUvarint(nil, 1)
	inf = binary.AppendUvarint(inf, 3)
	f.Add(binary.LittleEndian.AppendUint64(inf, math.Float64bits(math.Inf(-1))))
	// Negative finite scores are legal and must round-trip.
	neg := binary.AppendUvarint(nil, 1)
	neg = binary.AppendUvarint(neg, 0)
	f.Add(binary.LittleEndian.AppendUint64(neg, math.Float64bits(-0.75)))
	f.Fuzz(func(t *testing.T, data []byte) {
		docs, scores, err := DecodeDocMax(data)
		if err != nil {
			return
		}
		if len(docs) != len(scores) {
			t.Fatalf("decoded %d docs but %d scores", len(docs), len(scores))
		}
		for i := range docs {
			if docs[i] < 0 || docs[i] > MaxDocID {
				t.Fatalf("doc %d out of range: %d", i, docs[i])
			}
			if i > 0 && docs[i] <= docs[i-1] {
				t.Fatalf("doc ids not strictly ascending at %d: %d then %d", i, docs[i-1], docs[i])
			}
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				t.Fatalf("non-finite score %v accepted at %d", scores[i], i)
			}
		}
		again, scoresAgain, err := DecodeDocMax(EncodeDocMax(docs, scores))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(docs) {
			t.Fatalf("round trip changed entry count")
		}
		for i := range docs {
			if again[i] != docs[i] || scoresAgain[i] != scores[i] {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}

// FuzzDecodeBlocks ensures the block-partitioned posting decode path
// never panics on arbitrary bytes, that accepted tables respect every
// documented invariant (ascending disjoint block ranges, bounded ids
// and positions, finite ascending palette, truthful block maxima —
// the soundness-critical one for block-max pruning), and that
// accepted content round-trips through EncodeBlocks.
func FuzzDecodeBlocks(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBlocks([]int{0}, []match.List{{{Loc: 0, Score: 1}}}, 0))
	f.Add(EncodeBlocks(
		[]int{1, 2, 5, 9},
		[]match.List{
			{{Loc: 3, Score: 0.5}, {Loc: 7, Score: 1.0}},
			{{Loc: 1, Score: 0.5}},
			{{Loc: 2, Score: 1.0}},
			{{Loc: 4, Score: -0.25}, {Loc: 5, Score: 0.5}},
		}, 2))
	// Crafted overflow: a palette count of MaxUint64 must be bounded
	// before it can drive a huge allocation.
	f.Add(binary.AppendUvarint(nil, math.MaxUint64))
	// NaN palette bits: must be rejected, never compared against.
	nan := binary.AppendUvarint(nil, 1)
	f.Add(binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN())))
	f.Fuzz(func(t *testing.T, data []byte) {
		bt, err := DecodeBlocks(data)
		if err != nil || bt == nil {
			return
		}
		prevLast := -1
		var docs []int
		var lists []match.List
		for i := range bt.Infos {
			info := bt.Infos[i]
			if info.FirstDoc <= prevLast || info.FirstDoc > info.LastDoc || info.LastDoc > MaxDocID {
				t.Fatalf("block %d range invalid: %+v after last %d", i, info, prevLast)
			}
			prevLast = info.LastDoc
			d, l, err := bt.DecodeBlock(i)
			if err != nil {
				continue // skip-table ok but payload hostile: rejected, fine
			}
			max := math.Inf(-1)
			prevDoc := info.FirstDoc - 1
			for j := range d {
				if d[j] <= prevDoc || d[j] > info.LastDoc {
					t.Fatalf("block %d doc %d out of order or range", i, d[j])
				}
				prevDoc = d[j]
				prevPos := -1
				for _, m := range l[j] {
					if m.Loc <= prevPos || m.Loc > MaxPosition {
						t.Fatalf("block %d doc %d positions invalid", i, d[j])
					}
					prevPos = m.Loc
					if math.IsNaN(m.Score) || math.IsInf(m.Score, 0) {
						t.Fatalf("non-finite score accepted")
					}
					if m.Score > max {
						max = m.Score
					}
				}
			}
			if max != info.MaxScore {
				t.Fatalf("block %d MaxScore %v disagrees with content max %v", i, info.MaxScore, max)
			}
			docs = append(docs, d...)
			lists = append(lists, l...)
		}
		if bt.Validate() != nil {
			return // some block rejected above: no round-trip contract
		}
		// Fully valid tables must round-trip through the encoder.
		again, err := DecodeBlocks(EncodeBlocks(docs, lists, BlockSize))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var docsAgain []int
		for i := range again.Infos {
			d, _, err := again.DecodeBlock(i)
			if err != nil {
				t.Fatalf("re-decode block %d: %v", i, err)
			}
			docsAgain = append(docsAgain, d...)
		}
		if len(docsAgain) != len(docs) {
			t.Fatalf("round trip changed doc count: %d vs %d", len(docsAgain), len(docs))
		}
		for i := range docs {
			if docs[i] != docsAgain[i] {
				t.Fatalf("round trip changed doc %d", i)
			}
		}
	})
}

// FuzzDecodeBatch ensures the group-varint batched decode path never
// panics on arbitrary bytes and upholds the same invariants as
// FuzzDecodeBlocks — ascending disjoint block ranges, bounded ids and
// positions, finite ascending palette, truthful block maxima — plus
// the batch-specific contract: accepted content re-encodes through
// EncodeBlocksBatch (always possible, since decoded values fit uint32
// by construction) and decodes back identically.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	one, _ := EncodeBlocksBatch([]int{0}, []match.List{{{Loc: 0, Score: 1}}}, 0)
	f.Add(one)
	many, _ := EncodeBlocksBatch(
		[]int{1, 2, 5, 9},
		[]match.List{
			{{Loc: 3, Score: 0.5}, {Loc: 7, Score: 1.0}},
			{{Loc: 1, Score: 0.5}},
			{{Loc: 2, Score: 1.0}},
			{{Loc: 4, Score: -0.25}, {Loc: 5, Score: 0.5}},
		}, 2)
	f.Add(many)
	// Crafted overflow: a palette count of MaxUint64 must be bounded
	// before it can drive a huge allocation; same for the block count
	// behind a minimal valid palette.
	f.Add(binary.AppendUvarint(nil, math.MaxUint64))
	giant := binary.AppendUvarint(nil, 1)
	giant = binary.LittleEndian.AppendUint64(giant, math.Float64bits(1))
	f.Add(binary.AppendUvarint(giant, math.MaxUint64))
	// NaN palette bits: must be rejected, never compared against.
	nan := binary.AppendUvarint(nil, 1)
	f.Add(binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN())))
	// A control byte promising four 4-byte values before a truncated
	// buffer: the group decoder's bounds check, not a slice panic, must
	// reject it.
	trunc := binary.AppendUvarint(nil, 1)
	trunc = binary.LittleEndian.AppendUint64(trunc, math.Float64bits(1))
	trunc = binary.AppendUvarint(trunc, 1)
	f.Add(append(trunc, 0xff, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		bt, err := DecodeBlocksBatch(data)
		if err != nil || bt == nil {
			return
		}
		prevLast := -1
		var docs []int
		var lists []match.List
		for i := range bt.Infos {
			info := bt.Infos[i]
			if info.FirstDoc <= prevLast || info.FirstDoc > info.LastDoc || info.LastDoc > MaxDocID {
				t.Fatalf("block %d range invalid: %+v after last %d", i, info, prevLast)
			}
			prevLast = info.LastDoc
			d, l, err := bt.DecodeBlock(i)
			if err != nil {
				continue // skip-table ok but payload hostile: rejected, fine
			}
			max := math.Inf(-1)
			prevDoc := info.FirstDoc - 1
			for j := range d {
				if d[j] <= prevDoc || d[j] > info.LastDoc {
					t.Fatalf("block %d doc %d out of order or range", i, d[j])
				}
				prevDoc = d[j]
				prevPos := -1
				for _, m := range l[j] {
					if m.Loc <= prevPos || m.Loc > MaxPosition {
						t.Fatalf("block %d doc %d positions invalid", i, d[j])
					}
					prevPos = m.Loc
					if math.IsNaN(m.Score) || math.IsInf(m.Score, 0) {
						t.Fatalf("non-finite score accepted")
					}
					if m.Score > max {
						max = m.Score
					}
				}
			}
			if max != info.MaxScore {
				t.Fatalf("block %d MaxScore %v disagrees with content max %v", i, info.MaxScore, max)
			}
			docs = append(docs, d...)
			lists = append(lists, l...)
		}
		if bt.Validate() != nil {
			return // some block rejected above: no round-trip contract
		}
		// Fully valid tables round-trip through the batch encoder when
		// the re-blocked values still fit uint32 (regrouping under the
		// default block size can widen a block's span past what the
		// original partitioning needed — then the varint fallback owns
		// the content and there is no batch round-trip contract).
		enc, ok := EncodeBlocksBatch(docs, lists, BlockSize)
		if !ok {
			return
		}
		again, err := DecodeBlocksBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var docsAgain []int
		for i := range again.Infos {
			d, _, err := again.DecodeBlock(i)
			if err != nil {
				t.Fatalf("re-decode block %d: %v", i, err)
			}
			docsAgain = append(docsAgain, d...)
		}
		if len(docsAgain) != len(docs) {
			t.Fatalf("round trip changed doc count: %d vs %d", len(docsAgain), len(docs))
		}
		for i := range docs {
			if docs[i] != docsAgain[i] {
				t.Fatalf("round trip changed doc %d", i)
			}
		}
	})
}

// FuzzLoadCompact ensures index deserialization never panics, on
// both the framed and the legacy layout.
func FuzzLoadCompact(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	f.Add(ix.Compact().Marshal())
	f.Add(ix.Compact().marshalLegacy())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadCompact(data)
		if err != nil {
			return
		}
		// A loaded index must be queryable without panicking.
		_ = c.Postings("alpha")
		_ = c.Docs()
	})
}

// FuzzLoadFile drives arbitrary bytes through the checksummed file
// loader: it must never panic, and whatever it accepts must re-marshal
// to bytes it accepts again (load∘save is a fixpoint).
func FuzzLoadFile(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	ix.AddText(2, "beta delta")
	c := ix.Compact()
	c.AddConceptMeta(Concept{"alpha": 1, "beta": 0.5})
	c.AddConceptBlocks(Concept{"alpha": 1, "beta": 0.5})
	f.Add(c.Marshal())
	f.Add(c.marshalLegacy())
	f.Add([]byte(frameMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.idx")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Skip()
		}
		loaded, err := LoadFile(path)
		if err != nil {
			return
		}
		// Accepted files must round-trip through SaveFile/LoadFile.
		again := filepath.Join(dir, "again.idx")
		if err := loaded.SaveFile(again); err != nil {
			t.Fatalf("re-save of accepted index failed: %v", err)
		}
		re, err := LoadFile(again)
		if err != nil {
			t.Fatalf("re-load of accepted index failed: %v", err)
		}
		if re.Docs() != loaded.Docs() || re.ConceptMetaCount() != loaded.ConceptMetaCount() ||
			re.ConceptBlocksCount() != loaded.ConceptBlocksCount() {
			t.Fatalf("round trip changed the index: docs %d/%d meta %d/%d blocks %d/%d",
				re.Docs(), loaded.Docs(), re.ConceptMetaCount(), loaded.ConceptMetaCount(),
				re.ConceptBlocksCount(), loaded.ConceptBlocksCount())
		}
	})
}

// FuzzDecodePairs drives arbitrary bytes through the pair-posting
// decoder: it must never panic, every accepted skip table must carry
// ascending disjoint bounded block ranges, every accepted block must
// hold ascending in-range documents with finite scores and bounded
// witness locations and a truthful block max, and fully valid tables
// must round-trip through the encoder.
func FuzzDecodePairs(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePairs([]PairEntry{
		{Doc: 0, OK: true, Score: 1, W0: match.Match{Loc: 0, Score: 1}, W1: match.Match{Loc: 1, Score: 0.5}},
	}, 0))
	f.Add(EncodePairs(testPairEntries(), 3))
	f.Add(EncodePairs(testPairEntries(), 128))
	// Crafted overflow: a block count of MaxUint64 must be bounded
	// before it can drive a huge allocation.
	f.Add(binary.AppendUvarint(nil, math.MaxUint64))
	// NaN block max: must be rejected, never compared against.
	nan := binary.AppendUvarint(nil, 1)
	nan = binary.AppendUvarint(nan, 1)
	nan = binary.AppendUvarint(nan, 0)
	nan = binary.AppendUvarint(nan, 1)
	f.Add(binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN())))
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := DecodePairs(data)
		if err != nil || pt == nil {
			return
		}
		prevLast := -1
		var entries []PairEntry
		for i := range pt.Infos {
			info := pt.Infos[i]
			if info.FirstDoc <= prevLast || info.FirstDoc > info.LastDoc || info.LastDoc > MaxDocID {
				t.Fatalf("block %d range invalid: %+v after last %d", i, info, prevLast)
			}
			prevLast = info.LastDoc
			es, err := pt.DecodeBlock(i)
			if err != nil {
				continue // skip-table ok but payload hostile: rejected, fine
			}
			max := math.Inf(-1)
			prevDoc := info.FirstDoc - 1
			for _, ent := range es {
				if ent.Doc <= prevDoc || ent.Doc > info.LastDoc {
					t.Fatalf("block %d doc %d out of order or range", i, ent.Doc)
				}
				prevDoc = ent.Doc
				if !ent.OK {
					continue
				}
				if math.IsNaN(ent.Score) || math.IsInf(ent.Score, 0) {
					t.Fatalf("non-finite pair score accepted")
				}
				for _, w := range []match.Match{ent.W0, ent.W1} {
					if w.Loc < 0 || w.Loc > MaxPosition || math.IsNaN(w.Score) || math.IsInf(w.Score, 0) {
						t.Fatalf("block %d witness %+v invalid", i, w)
					}
				}
				if ent.Score > max {
					max = ent.Score
				}
			}
			if max != info.MaxScore {
				t.Fatalf("block %d MaxScore %v disagrees with content max %v", i, info.MaxScore, max)
			}
			entries = append(entries, es...)
		}
		if pt.Validate() != nil {
			return // some block rejected above: no round-trip contract
		}
		// Fully valid tables must round-trip through the encoder.
		again, err := DecodePairs(EncodePairs(entries, BlockSize))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var out []PairEntry
		for i := range again.Infos {
			es, err := again.DecodeBlock(i)
			if err != nil {
				t.Fatalf("re-decode block %d: %v", i, err)
			}
			out = append(out, es...)
		}
		if !entriesEqual(out, entries) {
			t.Fatalf("round trip changed pair entries")
		}
	})
}
