package index

import "testing"

// FuzzDecodePostings ensures posting decompression never panics on
// arbitrary bytes and that accepted inputs round-trip.
func FuzzDecodePostings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePostings([]Posting{{Doc: 0, Pos: 0}}))
	f.Add(EncodePostings([]Posting{{Doc: 1, Pos: 3}, {Doc: 1, Pos: 9}, {Doc: 7, Pos: 2}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePostings(data)
		if err != nil {
			return
		}
		again, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ps) {
			t.Fatalf("round trip changed posting count")
		}
		for i := range ps {
			if ps[i] != again[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
	})
}

// FuzzLoadCompact ensures index deserialization never panics.
func FuzzLoadCompact(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	f.Add(ix.Compact().Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadCompact(data)
		if err != nil {
			return
		}
		// A loaded index must be queryable without panicking.
		_ = c.Postings("alpha")
		_ = c.Docs()
	})
}
