package index

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodePostings ensures posting decompression never panics on
// arbitrary bytes and that accepted inputs round-trip.
func FuzzDecodePostings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePostings([]Posting{{Doc: 0, Pos: 0}}))
	f.Add(EncodePostings([]Posting{{Doc: 1, Pos: 3}, {Doc: 1, Pos: 9}, {Doc: 7, Pos: 2}}))
	// Regression input for the bounded-delta fix: a doc delta of
	// MaxUint64 used to wrap the accumulator negative.
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	overflow = binary.AppendUvarint(overflow, 1)
	f.Add(binary.AppendUvarint(overflow, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePostings(data)
		if err != nil {
			return
		}
		// Accepted postings must be (doc, pos)-sorted and in range —
		// the invariant the overflow bug used to break.
		for i, p := range ps {
			if p.Doc < 0 || p.Doc > MaxDocID || p.Pos < 0 || p.Pos > MaxPosition {
				t.Fatalf("posting %d out of range: %+v", i, p)
			}
			if i > 0 {
				prev := ps[i-1]
				if p.Doc < prev.Doc || (p.Doc == prev.Doc && p.Pos < prev.Pos) {
					t.Fatalf("postings out of order at %d: %+v then %+v", i, prev, p)
				}
			}
		}
		again, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ps) {
			t.Fatalf("round trip changed posting count")
		}
		for i := range ps {
			if ps[i] != again[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
	})
}

// FuzzLoadCompact ensures index deserialization never panics.
func FuzzLoadCompact(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	f.Add(ix.Compact().Marshal())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadCompact(data)
		if err != nil {
			return
		}
		// A loaded index must be queryable without panicking.
		_ = c.Postings("alpha")
		_ = c.Docs()
	})
}
