package index

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodePostings ensures posting decompression never panics on
// arbitrary bytes and that accepted inputs round-trip.
func FuzzDecodePostings(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodePostings([]Posting{{Doc: 0, Pos: 0}}))
	f.Add(EncodePostings([]Posting{{Doc: 1, Pos: 3}, {Doc: 1, Pos: 9}, {Doc: 7, Pos: 2}}))
	// Regression input for the bounded-delta fix: a doc delta of
	// MaxUint64 used to wrap the accumulator negative.
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	overflow = binary.AppendUvarint(overflow, 1)
	f.Add(binary.AppendUvarint(overflow, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodePostings(data)
		if err != nil {
			return
		}
		// Accepted postings must be (doc, pos)-sorted and in range —
		// the invariant the overflow bug used to break.
		for i, p := range ps {
			if p.Doc < 0 || p.Doc > MaxDocID || p.Pos < 0 || p.Pos > MaxPosition {
				t.Fatalf("posting %d out of range: %+v", i, p)
			}
			if i > 0 {
				prev := ps[i-1]
				if p.Doc < prev.Doc || (p.Doc == prev.Doc && p.Pos < prev.Pos) {
					t.Fatalf("postings out of order at %d: %+v then %+v", i, prev, p)
				}
			}
		}
		again, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ps) {
			t.Fatalf("round trip changed posting count")
		}
		for i := range ps {
			if ps[i] != again[i] {
				t.Fatalf("round trip changed posting %d", i)
			}
		}
	})
}

// FuzzDecodeDocMax ensures the concept max-score metadata decode path
// never panics on arbitrary bytes, that accepted summaries respect the
// documented invariants (strictly ascending bounded ids, finite
// scores), and that accepted inputs round-trip. Seeds mirror the
// MaxLocation bounds style of the PR 1 decode hardening: crafted
// overflow, NaN, and negative-score buffers.
func FuzzDecodeDocMax(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDocMax([]int{0}, []float64{1}))
	f.Add(EncodeDocMax([]int{2, 9, 4096}, []float64{0.5, -0.25, 1}))
	// Crafted max-score overflow: a doc delta of MaxUint64 used to be
	// the int-wrapping shape in postings; the metadata decoder must
	// bound it the same way.
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	f.Add(binary.LittleEndian.AppendUint64(overflow, math.Float64bits(1)))
	// NaN and ±Inf score bits: must be rejected, never stored.
	nan := binary.AppendUvarint(nil, 1)
	nan = binary.AppendUvarint(nan, 3)
	f.Add(binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.NaN())))
	inf := binary.AppendUvarint(nil, 1)
	inf = binary.AppendUvarint(inf, 3)
	f.Add(binary.LittleEndian.AppendUint64(inf, math.Float64bits(math.Inf(-1))))
	// Negative finite scores are legal and must round-trip.
	neg := binary.AppendUvarint(nil, 1)
	neg = binary.AppendUvarint(neg, 0)
	f.Add(binary.LittleEndian.AppendUint64(neg, math.Float64bits(-0.75)))
	f.Fuzz(func(t *testing.T, data []byte) {
		docs, scores, err := DecodeDocMax(data)
		if err != nil {
			return
		}
		if len(docs) != len(scores) {
			t.Fatalf("decoded %d docs but %d scores", len(docs), len(scores))
		}
		for i := range docs {
			if docs[i] < 0 || docs[i] > MaxDocID {
				t.Fatalf("doc %d out of range: %d", i, docs[i])
			}
			if i > 0 && docs[i] <= docs[i-1] {
				t.Fatalf("doc ids not strictly ascending at %d: %d then %d", i, docs[i-1], docs[i])
			}
			if math.IsNaN(scores[i]) || math.IsInf(scores[i], 0) {
				t.Fatalf("non-finite score %v accepted at %d", scores[i], i)
			}
		}
		again, scoresAgain, err := DecodeDocMax(EncodeDocMax(docs, scores))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(docs) {
			t.Fatalf("round trip changed entry count")
		}
		for i := range docs {
			if again[i] != docs[i] || scoresAgain[i] != scores[i] {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}

// FuzzLoadCompact ensures index deserialization never panics, on
// both the framed and the legacy layout.
func FuzzLoadCompact(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	f.Add(ix.Compact().Marshal())
	f.Add(ix.Compact().marshalLegacy())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadCompact(data)
		if err != nil {
			return
		}
		// A loaded index must be queryable without panicking.
		_ = c.Postings("alpha")
		_ = c.Docs()
	})
}

// FuzzLoadFile drives arbitrary bytes through the checksummed file
// loader: it must never panic, and whatever it accepts must re-marshal
// to bytes it accepts again (load∘save is a fixpoint).
func FuzzLoadFile(f *testing.F) {
	ix := New()
	ix.AddText(0, "alpha beta gamma")
	ix.AddText(2, "beta delta")
	c := ix.Compact()
	c.AddConceptMeta(Concept{"alpha": 1, "beta": 0.5})
	f.Add(c.Marshal())
	f.Add(c.marshalLegacy())
	f.Add([]byte(frameMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.idx")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Skip()
		}
		loaded, err := LoadFile(path)
		if err != nil {
			return
		}
		// Accepted files must round-trip through SaveFile/LoadFile.
		again := filepath.Join(dir, "again.idx")
		if err := loaded.SaveFile(again); err != nil {
			t.Fatalf("re-save of accepted index failed: %v", err)
		}
		re, err := LoadFile(again)
		if err != nil {
			t.Fatalf("re-load of accepted index failed: %v", err)
		}
		if re.Docs() != loaded.Docs() || re.ConceptMetaCount() != loaded.ConceptMetaCount() {
			t.Fatalf("round trip changed the index: docs %d/%d meta %d/%d",
				re.Docs(), loaded.Docs(), re.ConceptMetaCount(), loaded.ConceptMetaCount())
		}
	})
}
