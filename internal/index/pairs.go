package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// Auxiliary two-term pair indexes: precomputed best-join postings for
// selected frequent concept pairs, per Veretennikov's additional-
// indexes response-time guarantee. For a registered (conceptA,
// conceptB, kernel) triple the index stores, for every document that
// contains both concepts, the exact best-join result the kernel would
// compute at query time: the pair score and the two-match witness
// that attains it. A two-term conjunctive query whose pair is
// registered is then answered straight off this list — no posting
// decode, no kernel joins — and a wider query can use the stored pair
// score as a tighter per-document upper bound for top-k pruning
// (threshold-algorithm style, Fagin et al.).
//
// The list is block-partitioned like the concept postings
// (blocks.go): ~BlockSize documents per block, each block fronted by
// a skip entry carrying first/last document id, document count,
// payload byte range, and the block's maximum pair score, so a serve
// can skip whole blocks that provably cannot beat the current top-k
// floor without decoding them.
//
// Encoded layout (EncodePairs):
//
//	varint(#blocks)
//	per block: varint(firstGap) varint(span) varint(#docs)
//	           float64le(maxScore) varint(payloadLen)
//	concatenated block payloads
//
// firstGap is the first document id for block 0 and the gap from the
// previous block's last document (≥ 1) afterwards; span is
// lastDoc − firstDoc; maxScore is the maximum pair score among the
// block's scored records (−Inf when the block holds only tombstones).
//
// Block payload, per document (the first document's delta is omitted:
// it IS firstDoc):
//
//	varint(docDelta) flag(1)
//	flag 1: float64le(score) varint(loc0) float64le(s0)
//	        varint(loc1) float64le(s1)
//	flag 0: nothing — a tombstone
//
// A tombstone records a document where both concepts occur but the
// kernel produced no scorable result (the join failed, or its score
// was not finite). Storing tombstones keeps the pair list's document
// set exactly equal to the two concepts' intersection, so a
// pair-served query reports the same candidate count the kernel path
// would, and the ≥3-term bound-tightening path knows the difference
// between "no result" and "not indexed".
//
// The witness (loc0,s0)/(loc1,s1) is stored in canonical order — the
// lower-ConceptKey concept's match first; a caller that asked for the
// concepts in the other order swaps the two entries to reconstruct
// the query-order matchset.
//
// Like every decode path in this package the buffers may come from
// disk or other untrusted storage, so decoding is bounded the PR 1
// way: deltas capped by MaxDocID/MaxPosition before int conversion
// can wrap, ids strictly ascending, scores finite, counts checked
// against the bytes that must back them, and — soundness critical —
// each block's recorded max score must equal the maximum actually
// present, so hostile bytes cannot understate a block max and cause a
// real answer to be skipped.

// PairKey identifies one registered pair list: the two concepts'
// ConceptKeys in ascending order plus the opaque kernel fingerprint
// the list was built under (the engine hashes its kernel spec; this
// package never interprets it — a pair list is only valid for the
// exact scoring function that produced it).
type PairKey struct {
	Lo, Hi uint64
	Spec   uint64
}

// MakePairKey builds the canonical key for two concept keys,
// normalizing their order.
func MakePairKey(a, b, spec uint64) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{Lo: a, Hi: b, Spec: spec}
}

// PairEntry is one decoded pair-posting record.
type PairEntry struct {
	Doc int
	// OK is false for a tombstone: both concepts occur in Doc but the
	// kernel produced no scorable result there.
	OK    bool
	Score float64
	// W0 and W1 are the witness matchset in canonical order: W0 is the
	// lower-ConceptKey concept's match, W1 the higher's.
	W0, W1 match.Match
}

// PairInfo is one decoded pair skip-table entry.
type PairInfo struct {
	FirstDoc int // first document id in the block
	LastDoc  int // last document id in the block
	NDocs    int // number of records (scored + tombstones)
	Off      int // payload byte offset within the payload area
	Len      int // payload byte length
	// MaxScore is the maximum pair score among the block's scored
	// records, −Inf when the block holds only tombstones.
	MaxScore float64
}

// PairTable is a decoded skip table over one pair list. The payload
// area is retained undecoded; DecodeBlock unpacks individual blocks
// on demand.
type PairTable struct {
	Infos   []PairInfo
	payload []byte
}

// NumBlocks returns the number of blocks in the table.
func (pt *PairTable) NumBlocks() int { return len(pt.Infos) }

// NumDocs returns the total number of records across all blocks —
// the size of the two concepts' document intersection.
func (pt *PairTable) NumDocs() int {
	n := 0
	for i := range pt.Infos {
		n += pt.Infos[i].NDocs
	}
	return n
}

// FindBlock returns the index of the block whose document range
// contains doc, or -1 when no block covers it.
func (pt *PairTable) FindBlock(doc int) int {
	i := sort.Search(len(pt.Infos), func(i int) bool { return pt.Infos[i].LastDoc >= doc })
	if i == len(pt.Infos) || pt.Infos[i].FirstDoc > doc {
		return -1
	}
	return i
}

// EncodePairs packs pair records — strictly ascending document ids,
// finite scores and witness values on every OK record — into the
// block-partitioned layout. blockSize ≤ 0 means BlockSize. The empty
// input encodes to nil. EncodePairs is a build-time path fed only by
// AddConceptPairs and tests; inputs must satisfy the documented
// invariants.
func EncodePairs(entries []PairEntry, blockSize int) []byte {
	if len(entries) == 0 {
		return nil
	}
	if blockSize <= 0 {
		blockSize = BlockSize
	}
	nBlocks := (len(entries) + blockSize - 1) / blockSize
	buf := binary.AppendUvarint(nil, uint64(nBlocks))

	var payload []byte
	type skip struct {
		first, last, nDocs, plen int
		maxScore                 float64
	}
	skips := make([]skip, 0, nBlocks)
	for b := 0; b < len(entries); b += blockSize {
		e := b + blockSize
		if e > len(entries) {
			e = len(entries)
		}
		start := len(payload)
		maxScore := math.Inf(-1)
		for i := b; i < e; i++ {
			ent := entries[i]
			if i > b {
				payload = binary.AppendUvarint(payload, uint64(ent.Doc-entries[i-1].Doc))
			}
			if !ent.OK {
				payload = append(payload, 0)
				continue
			}
			payload = append(payload, 1)
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(ent.Score))
			payload = binary.AppendUvarint(payload, uint64(ent.W0.Loc))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(ent.W0.Score))
			payload = binary.AppendUvarint(payload, uint64(ent.W1.Loc))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(ent.W1.Score))
			if ent.Score > maxScore {
				maxScore = ent.Score
			}
		}
		skips = append(skips, skip{
			first: entries[b].Doc, last: entries[e-1].Doc,
			nDocs: e - b, plen: len(payload) - start, maxScore: maxScore,
		})
	}
	prevLast := 0
	for i, s := range skips {
		gap := s.first
		if i > 0 {
			gap = s.first - prevLast
		}
		buf = binary.AppendUvarint(buf, uint64(gap))
		buf = binary.AppendUvarint(buf, uint64(s.last-s.first))
		buf = binary.AppendUvarint(buf, uint64(s.nDocs))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.maxScore))
		buf = binary.AppendUvarint(buf, uint64(s.plen))
		prevLast = s.last
	}
	return append(buf, payload...)
}

// DecodePairs unpacks the skip table of an EncodePairs buffer,
// retaining the payload area for per-block decoding. Hostile bytes
// yield an error, never a panic or an out-of-range table; the
// per-block payloads are validated by DecodeBlock (Validate runs it
// over every block, which is what the load path does eagerly).
func DecodePairs(b []byte) (*PairTable, error) {
	if len(b) == 0 {
		return nil, nil
	}
	nBlocks, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt pair block count")
	}
	b = b[n:]
	// Each block costs at least 12 skip bytes (three one-byte varints,
	// the 8-byte max score, a length byte) plus a 1-byte minimum
	// payload; reject counts the buffer cannot hold so corrupt input
	// cannot drive huge allocations.
	if nBlocks == 0 || nBlocks > uint64(len(b))/12 {
		return nil, fmt.Errorf("index: pair block count %d exceeds buffer", nBlocks)
	}
	infos := make([]PairInfo, nBlocks)
	var payloadTotal uint64
	prevLast := 0
	for i := range infos {
		gap, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt pair block %d first-doc gap", i)
		}
		b = b[n:]
		if gap > MaxDocID {
			return nil, fmt.Errorf("index: pair block %d first-doc gap %d exceeds %d", i, gap, uint64(MaxDocID))
		}
		if i > 0 && gap == 0 {
			return nil, fmt.Errorf("index: pair block %d overlaps its predecessor", i)
		}
		first := prevLast + int(gap)
		span, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt pair block %d span", i)
		}
		b = b[n:]
		if span > MaxDocID {
			return nil, fmt.Errorf("index: pair block %d span %d exceeds %d", i, span, uint64(MaxDocID))
		}
		last := first + int(span)
		if first > MaxDocID || last > MaxDocID {
			return nil, fmt.Errorf("index: pair block %d document range exceeds %d", i, int64(MaxDocID))
		}
		nDocs, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt pair block %d doc count", i)
		}
		b = b[n:]
		// Strictly ascending ids within [first, last] admit at most
		// span+1 documents.
		if nDocs == 0 || nDocs > span+1 {
			return nil, fmt.Errorf("index: pair block %d doc count %d exceeds its span", i, nDocs)
		}
		if len(b) < 8 {
			return nil, fmt.Errorf("index: truncated pair block %d max score", i)
		}
		maxScore := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		// −Inf is the legitimate "all tombstones" sentinel; NaN would
		// poison floor comparisons and +Inf would defeat the cap.
		if math.IsNaN(maxScore) || math.IsInf(maxScore, 1) {
			return nil, fmt.Errorf("index: pair block %d max score is not finite", i)
		}
		plen, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt pair block %d payload length", i)
		}
		b = b[n:]
		// Every record costs at least one flag byte.
		if plen < nDocs {
			return nil, fmt.Errorf("index: pair block %d payload too short for %d docs", i, nDocs)
		}
		// Accumulate in uint64 and bound against the remaining buffer so
		// hostile lengths cannot wrap the running offset.
		if plen > uint64(len(b)) || payloadTotal > uint64(len(b))-plen {
			return nil, fmt.Errorf("index: pair block %d payload overruns buffer", i)
		}
		infos[i] = PairInfo{
			FirstDoc: first,
			LastDoc:  last,
			NDocs:    int(nDocs),
			Off:      int(payloadTotal),
			Len:      int(plen),
			MaxScore: maxScore,
		}
		payloadTotal += plen
		prevLast = last
	}
	if payloadTotal != uint64(len(b)) {
		return nil, fmt.Errorf("index: %d trailing pair payload bytes", uint64(len(b))-payloadTotal)
	}
	return &PairTable{Infos: infos, payload: b}, nil
}

// DecodeBlock fully unpacks block i. Every invariant is validated,
// including that the skip entry's max score equals the maximum pair
// score actually present — the check that keeps block-max skipping
// sound against hostile bytes.
func (pt *PairTable) DecodeBlock(i int) ([]PairEntry, error) {
	info := pt.Infos[i]
	b := pt.payload[info.Off : info.Off+info.Len]
	out := make([]PairEntry, 0, info.NDocs)
	doc := info.FirstDoc
	maxSeen := math.Inf(-1)
	for d := 0; d < info.NDocs; d++ {
		if d > 0 {
			delta, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("index: corrupt pair block %d doc delta", i)
			}
			b = b[n:]
			if delta == 0 || delta > MaxDocID {
				return nil, fmt.Errorf("index: pair block %d doc ids not strictly ascending", i)
			}
			doc += int(delta)
			if doc > info.LastDoc {
				return nil, fmt.Errorf("index: pair block %d document %d outside its range", i, doc)
			}
		}
		if len(b) == 0 {
			return nil, fmt.Errorf("index: truncated pair block %d record flag", i)
		}
		flag := b[0]
		b = b[1:]
		switch flag {
		case 0:
			out = append(out, PairEntry{Doc: doc})
			continue
		case 1:
		default:
			return nil, fmt.Errorf("index: pair block %d bad record flag %d", i, flag)
		}
		if len(b) < 8 {
			return nil, fmt.Errorf("index: truncated pair block %d score", i)
		}
		score := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(score) || math.IsInf(score, 0) {
			return nil, fmt.Errorf("index: pair block %d score for doc %d is not finite", i, doc)
		}
		var w [2]match.Match
		for j := range w {
			loc, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("index: corrupt pair block %d witness location", i)
			}
			b = b[n:]
			if loc > MaxPosition {
				return nil, fmt.Errorf("index: pair block %d witness location %d exceeds %d", i, loc, uint64(MaxPosition))
			}
			if len(b) < 8 {
				return nil, fmt.Errorf("index: truncated pair block %d witness score", i)
			}
			ws := math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
			if math.IsNaN(ws) || math.IsInf(ws, 0) {
				return nil, fmt.Errorf("index: pair block %d witness score is not finite", i)
			}
			w[j] = match.Match{Loc: int(loc), Score: ws}
		}
		if score > maxSeen {
			maxSeen = score
		}
		out = append(out, PairEntry{Doc: doc, OK: true, Score: score, W0: w[0], W1: w[1]})
	}
	if doc != info.LastDoc {
		return nil, fmt.Errorf("index: pair block %d document range disagrees with skip entry", i)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes in pair block %d", len(b), i)
	}
	if maxSeen != info.MaxScore {
		return nil, fmt.Errorf("index: pair block %d max score %v disagrees with content max %v",
			i, info.MaxScore, maxSeen)
	}
	return out, nil
}

// Validate fully decodes every block — the eager load-time gate, so
// corrupt or adversarial bytes fail at LoadCompact rather than at
// query time.
func (pt *PairTable) Validate() error {
	if pt == nil {
		return nil
	}
	for i := range pt.Infos {
		if _, err := pt.DecodeBlock(i); err != nil {
			return err
		}
	}
	return nil
}

// AddConceptPairs precomputes and registers the pair list for two
// concepts under an opaque kernel fingerprint, running join — the
// exact query-time kernel, wrapped by the caller — over every
// document in the concepts' intersection. Call it at build time,
// before the index starts serving queries: Compact is otherwise
// read-only and concurrent readers do not lock.
//
// The registration is all-or-nothing: ok is false — and nothing is
// stored — when a concept has non-finite weights, the intersection is
// empty, a join yields a ±Inf score or a malformed witness (the codec
// cannot carry those exactly, and an inexact pair list would change
// answers), or the pair is already registered. bytes reports the
// encoded size actually added, for the selector's budget accounting.
func (c *Compact) AddConceptPairs(a, b Concept, spec uint64, join func(match.Lists) (match.Set, float64, bool)) (bytes int, ok bool) {
	for _, s := range a {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, false
		}
	}
	for _, s := range b {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, false
		}
	}
	ka, kb := ConceptKey(a), ConceptKey(b)
	if ka > kb {
		a, b = b, a
		ka, kb = kb, ka
	}
	key := PairKey{Lo: ka, Hi: kb, Spec: spec}
	if _, dup := c.pairs[key]; dup {
		return 0, false
	}
	docsA, listsA := c.conceptDocLists(a)
	docsB, listsB := c.conceptDocLists(b)
	var entries []PairEntry
	lists := make(match.Lists, 2)
	for i, j := 0, 0; i < len(docsA) && j < len(docsB); {
		switch {
		case docsA[i] < docsB[j]:
			i++
		case docsA[i] > docsB[j]:
			j++
		default:
			lists[0], lists[1] = listsA[i], listsB[j]
			set, score, okJoin := join(lists)
			ent := PairEntry{Doc: docsA[i]}
			if okJoin && !math.IsNaN(score) {
				// A ±Inf score or a witness the codec cannot represent
				// exactly aborts the whole pair: serving an approximation
				// would change answers.
				if math.IsInf(score, 0) || len(set) != 2 {
					return 0, false
				}
				w0, w1 := set[0], set[1]
				if w0.Loc < 0 || w0.Loc > MaxPosition || w1.Loc < 0 || w1.Loc > MaxPosition ||
					math.IsNaN(w0.Score) || math.IsInf(w0.Score, 0) ||
					math.IsNaN(w1.Score) || math.IsInf(w1.Score, 0) {
					return 0, false
				}
				ent.OK, ent.Score, ent.W0, ent.W1 = true, score, w0, w1
			}
			entries = append(entries, ent)
			i++
			j++
		}
	}
	buf := EncodePairs(entries, 0)
	if buf == nil {
		return 0, false
	}
	if c.pairs == nil {
		c.pairs = make(map[PairKey][]byte)
	}
	c.pairs[key] = buf
	return len(buf), true
}

// ConceptPairs returns the registered pair table for two concepts
// under a kernel fingerprint, or ok=false when the pair was never
// registered. The concepts may be given in either order. Like
// Compact.Postings, a decode failure indicates memory corruption
// (LoadCompact validates every buffer eagerly) and fails loudly.
func (c *Compact) ConceptPairs(a, b Concept, spec uint64) (*PairTable, bool) {
	buf, ok := c.pairs[MakePairKey(ConceptKey(a), ConceptKey(b), spec)]
	if !ok {
		return nil, false
	}
	pt, err := DecodePairs(buf)
	if err != nil || pt == nil {
		panic(fmt.Sprintf("index: corrupt concept pairs: %v", err))
	}
	return pt, true
}

// ConceptPairsCount returns the number of registered pair lists.
func (c *Compact) ConceptPairsCount() int { return len(c.pairs) }

// ConceptPostingBytes returns the total compressed posting bytes
// behind a concept's member words — the cost-model input for the
// pair-selection budget (frequent words have long posting lists, and
// the pairs whose posting products are largest are exactly the
// queries the kernel path handles worst).
func (c *Compact) ConceptPostingBytes(concept Concept) int {
	n := 0
	for word := range concept {
		n += len(c.postings[text.Stem(word)])
	}
	return n
}

// HeavyStems returns up to n index stems ordered by descending
// compressed posting length (ties broken by stem), the frequency
// signal the pair-index selector feeds on.
func (c *Compact) HeavyStems(n int) []string {
	stems := make([]string, 0, len(c.postings))
	for s := range c.postings {
		stems = append(stems, s)
	}
	sort.Slice(stems, func(i, j int) bool {
		li, lj := len(c.postings[stems[i]]), len(c.postings[stems[j]])
		if li != lj {
			return li > lj
		}
		return stems[i] < stems[j]
	})
	if n < len(stems) {
		stems = stems[:n]
	}
	return stems
}
