package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bestjoin/internal/match"
)

// Group-varint batched block codec: the same block-partitioned concept
// posting layout as blocks.go, with every integer stream past the
// header packed four values at a time behind length-prefixed control
// bytes instead of per-integer varints. One control byte holds four
// 2-bit fields, each the byte length minus one of the corresponding
// value; the values follow little-endian in exactly that many bytes.
// The decoder reads the control byte once and then copies four values
// with unconditional 4-byte loads and masks — no per-byte continuation
// branches — which is what makes the lazy per-block decode path
// measurably cheaper than binary.Uvarint loops (the stream-vbyte /
// group-varint layout from the batched-decode literature).
//
// Encoded layout (EncodeBlocksBatch):
//
//	varint(#palette) float64le × #palette      // identical to EncodeBlocks
//	varint(#blocks)
//	group-varint stream of 4·#blocks values:   // skip table
//	        per block firstGap, span, payloadLen, maxIdx
//	concatenated block payloads
//
// Block payload:
//
//	varint(#docs)
//	group-varint stream of 2·#docs−1 values:   // directory
//	        count₀, then per further document docDelta, count
//	group-varint stream of 2·Σcount values:    // match area
//	        per match posDelta, scoreIdx
//
// The directory and match area are separate group-varint streams so
// candidate generation can decode just the document ids without
// parsing match bytes, exactly like the varint layout. Semantics —
// delta meanings, palette indirection, per-document position restart —
// are identical to EncodeBlocks; a buffer decodes to the same
// BlockTable either way, which is what TestDifferentialBatchVsVarint
// pins.
//
// Group varint stores values in at most four bytes, so the batch form
// only exists for concepts whose deltas, counts, payload lengths and
// palette indexes all fit uint32. MaxDocID/MaxPosition are 2^40, so a
// (pathological) corpus can exceed that; EncodeBlocksBatch then
// reports ok=false and the caller keeps the varint form. Decoding is
// bounded the PR 1 way, replicating every invariant of the varint
// decoder: strictly ascending ids and positions, counts checked
// against the bytes that must back them, payload accumulation that
// cannot wrap, and the pruning-soundness check that each block's
// recorded max score index equals the maximum actually present.

// gvMask[l] keeps the low l bytes of an unconditional 4-byte load.
var gvMask = [5]uint32{0, 0xff, 0xffff, 0xffffff, 0xffffffff}

// byteLen32 is the group-varint byte length of v (1–4).
func byteLen32(v uint32) int {
	switch {
	case v < 1<<8:
		return 1
	case v < 1<<16:
		return 2
	case v < 1<<24:
		return 3
	default:
		return 4
	}
}

// appendGroup encodes one group of 1–4 values: the control byte (2-bit
// length-minus-one fields, value i in bits 2i..2i+1), then each value
// little-endian. A short tail group leaves its unused control bits
// zero and contributes no bytes for them.
func appendGroup(dst []byte, vals []uint32) []byte {
	ctrl := byte(0)
	at := len(dst)
	dst = append(dst, 0)
	for i, v := range vals {
		n := byteLen32(v)
		ctrl |= byte(n-1) << (2 * uint(i))
		switch n {
		case 1:
			dst = append(dst, byte(v))
		case 2:
			dst = append(dst, byte(v), byte(v>>8))
		case 3:
			dst = append(dst, byte(v), byte(v>>8), byte(v>>16))
		default:
			dst = append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	}
	dst[at] = ctrl
	return dst
}

// appendGroups encodes vals as consecutive groups of four (plus one
// short tail group when len(vals) is not a multiple of four).
func appendGroups(dst []byte, vals []uint32) []byte {
	for len(vals) >= 4 {
		dst = appendGroup(dst, vals[:4])
		vals = vals[4:]
	}
	if len(vals) > 0 {
		dst = appendGroup(dst, vals)
	}
	return dst
}

// decodeGroups decodes exactly len(out) group-varint values from b,
// returning the unconsumed remainder; ok is false when b runs out.
// Full groups with 17+ bytes in hand take the branch-free path: one
// control-byte read, four unconditional 4-byte little-endian loads
// masked to their declared lengths (the worst-case group is 1+16
// bytes, so 17 guarantees every load stays in bounds).
func decodeGroups(b []byte, out []uint32) (rest []byte, ok bool) {
	i := 0
	for len(out)-i >= 4 && len(b) >= 17 {
		c := b[0]
		p := b[1:]
		l0 := int(c&3) + 1
		l1 := int((c>>2)&3) + 1
		l2 := int((c>>4)&3) + 1
		l3 := int(c>>6) + 1
		out[i] = binary.LittleEndian.Uint32(p) & gvMask[l0]
		p = p[l0:]
		out[i+1] = binary.LittleEndian.Uint32(p) & gvMask[l1]
		p = p[l1:]
		out[i+2] = binary.LittleEndian.Uint32(p) & gvMask[l2]
		p = p[l2:]
		out[i+3] = binary.LittleEndian.Uint32(p) & gvMask[l3]
		b = b[1+l0+l1+l2+l3:]
		i += 4
	}
	// Tail: the short final group, or full groups too close to the end
	// of the buffer for unconditional loads.
	for i < len(out) {
		if len(b) == 0 {
			return nil, false
		}
		c := b[0]
		b = b[1:]
		k := len(out) - i
		if k > 4 {
			k = 4
		}
		for s := 0; s < k; s++ {
			l := int(c>>(2*uint(s))&3) + 1
			if len(b) < l {
				return nil, false
			}
			v := uint32(0)
			for j := 0; j < l; j++ {
				v |= uint32(b[j]) << (8 * uint(j))
			}
			out[i] = v
			b = b[l:]
			i++
		}
	}
	return b, true
}

// fits32 reports whether a non-negative int is encodable in one
// group-varint slot.
func fits32(v int) bool { return uint64(v) <= math.MaxUint32 }

// EncodeBlocksBatch packs a concept's corpus-wide match data into the
// group-varint batched block layout; inputs follow the EncodeBlocks
// contract. ok is false — and the buffer nil — when any delta, count,
// payload length or palette index exceeds uint32, in which case the
// caller must keep the varint form. The empty input encodes to
// (nil, true).
func EncodeBlocksBatch(docs []int, lists []match.List, blockSize int) (buf []byte, ok bool) {
	if len(docs) == 0 {
		return nil, true
	}
	if blockSize <= 0 {
		blockSize = BlockSize
	}
	palette, scoreIdx := buildPalette(lists)
	if !fits32(len(palette) - 1) {
		return nil, false
	}

	nBlocks := (len(docs) + blockSize - 1) / blockSize
	var payload []byte
	skipVals := make([]uint32, 0, 4*nBlocks)
	var dirVals, matchVals []uint32
	prevLast := 0
	for b := 0; b < len(docs); b += blockSize {
		e := b + blockSize
		if e > len(docs) {
			e = len(docs)
		}
		dirVals = dirVals[:0]
		matchVals = matchVals[:0]
		maxIdx := 0
		for i := b; i < e; i++ {
			if i > b {
				if !fits32(docs[i] - docs[i-1]) {
					return nil, false
				}
				dirVals = append(dirVals, uint32(docs[i]-docs[i-1]))
			}
			if !fits32(len(lists[i])) {
				return nil, false
			}
			dirVals = append(dirVals, uint32(len(lists[i])))
			prev := 0
			for j, m := range lists[i] {
				pd := m.Loc
				if j > 0 {
					pd = m.Loc - prev
				}
				prev = m.Loc
				if !fits32(pd) {
					return nil, false
				}
				idx := scoreIdx[m.Score]
				if idx > maxIdx {
					maxIdx = idx
				}
				matchVals = append(matchVals, uint32(pd), uint32(idx))
			}
		}
		start := len(payload)
		payload = binary.AppendUvarint(payload, uint64(e-b))
		payload = appendGroups(payload, dirVals)
		payload = appendGroups(payload, matchVals)
		gap := docs[b]
		if b > 0 {
			gap = docs[b] - prevLast
		}
		span := docs[e-1] - docs[b]
		plen := len(payload) - start
		if !fits32(gap) || !fits32(span) || !fits32(plen) {
			return nil, false
		}
		skipVals = append(skipVals, uint32(gap), uint32(span), uint32(plen), uint32(maxIdx))
		prevLast = docs[e-1]
	}

	buf = binary.AppendUvarint(nil, uint64(len(palette)))
	for _, s := range palette {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = binary.AppendUvarint(buf, uint64(nBlocks))
	buf = appendGroups(buf, skipVals)
	return append(buf, payload...), true
}

// buildPalette collects the distinct match scores of lists, ascending,
// with a score → palette index map — the palette both encoders share.
func buildPalette(lists []match.List) ([]float64, map[float64]int) {
	seen := make(map[float64]struct{})
	for _, l := range lists {
		for _, m := range l {
			seen[m.Score] = struct{}{}
		}
	}
	palette := make([]float64, 0, len(seen))
	for s := range seen {
		palette = append(palette, s)
	}
	sort.Float64s(palette)
	scoreIdx := make(map[float64]int, len(palette))
	for i, s := range palette {
		scoreIdx[s] = i
	}
	return palette, scoreIdx
}

// DecodeBlocksBatch unpacks the palette and skip table of an
// EncodeBlocksBatch buffer, retaining the payload area for per-block
// decoding — the batched counterpart of DecodeBlocks, with the same
// hostile-bytes discipline. The returned table serves the same
// DecodeDocs/DecodeBlock surface; only the byte layout behind it
// differs.
func DecodeBlocksBatch(b []byte) (*BlockTable, error) {
	if len(b) == 0 {
		return nil, nil
	}
	nPal, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt batch block palette header")
	}
	b = b[n:]
	if nPal == 0 || nPal > uint64(len(b))/8 {
		return nil, fmt.Errorf("index: batch block palette count %d exceeds buffer", nPal)
	}
	palette := make([]float64, nPal)
	for i := range palette {
		s := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("index: batch block palette score %d is not finite", i)
		}
		if i > 0 && s <= palette[i-1] {
			return nil, fmt.Errorf("index: batch block palette not strictly ascending at %d", i)
		}
		palette[i] = s
	}
	nBlocks, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt batch block count")
	}
	b = b[n:]
	// Each block costs at least 5 skip bytes (control byte plus four
	// one-byte values) and a multi-byte payload; reject counts the
	// buffer cannot hold so corrupt input cannot drive huge allocations.
	if nBlocks == 0 || nBlocks > uint64(len(b))/5 {
		return nil, fmt.Errorf("index: batch block count %d exceeds buffer", nBlocks)
	}
	skipVals := make([]uint32, 4*nBlocks)
	b, ok := decodeGroups(b, skipVals)
	if !ok {
		return nil, fmt.Errorf("index: truncated batch block skip table")
	}
	infos := make([]BlockInfo, nBlocks)
	var payloadTotal uint64
	prevLast := 0
	for i := range infos {
		gap := uint64(skipVals[4*i])
		span := uint64(skipVals[4*i+1])
		plen := uint64(skipVals[4*i+2])
		maxIdx := uint64(skipVals[4*i+3])
		if i > 0 && gap == 0 {
			return nil, fmt.Errorf("index: batch block %d overlaps its predecessor", i)
		}
		first := prevLast + int(gap)
		last := first + int(span)
		// Group-varint values are ≤ MaxUint32 < MaxDocID, but the
		// accumulated range can still walk past the bound.
		if first > MaxDocID || last > MaxDocID {
			return nil, fmt.Errorf("index: batch block %d document range exceeds %d", i, int64(MaxDocID))
		}
		if maxIdx >= nPal {
			return nil, fmt.Errorf("index: batch block %d max index %d out of palette range", i, maxIdx)
		}
		// Accumulate in uint64 and bound against the remaining buffer so
		// hostile lengths cannot wrap the running offset.
		if plen == 0 || plen > uint64(len(b)) || payloadTotal > uint64(len(b))-plen {
			return nil, fmt.Errorf("index: batch block %d payload overruns buffer", i)
		}
		infos[i] = BlockInfo{
			FirstDoc: first,
			LastDoc:  last,
			Off:      int(payloadTotal),
			Len:      int(plen),
			MaxIdx:   int(maxIdx),
			MaxScore: palette[maxIdx],
		}
		payloadTotal += plen
		prevLast = last
	}
	if payloadTotal != uint64(len(b)) {
		return nil, fmt.Errorf("index: %d trailing batch block payload bytes", uint64(len(b))-payloadTotal)
	}
	return &BlockTable{Palette: palette, Infos: infos, payload: b, batch: true}, nil
}

// decodeDirBatch parses block i's group-varint directory; the batched
// counterpart of decodeDir with identical checks and results.
func (bt *BlockTable) decodeDirBatch(i int) (docs []int, nMatch []int, matchArea []byte, err error) {
	info := bt.Infos[i]
	b := bt.payload[info.Off : info.Off+info.Len]
	nDocs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, nil, fmt.Errorf("index: corrupt batch block %d doc count", i)
	}
	b = b[n:]
	// The directory's 2·nDocs−1 values need at least one byte each
	// beyond their control bytes, so nDocs beyond the payload length is
	// unsatisfiable; the bound caps the allocation.
	if nDocs == 0 || nDocs > uint64(len(b)) {
		return nil, nil, nil, fmt.Errorf("index: batch block %d doc count %d exceeds payload", i, nDocs)
	}
	vals := make([]uint32, 2*nDocs-1)
	b, ok := decodeGroups(b, vals)
	if !ok {
		return nil, nil, nil, fmt.Errorf("index: truncated batch block %d directory", i)
	}
	docs = make([]int, nDocs)
	nMatch = make([]int, nDocs)
	doc := info.FirstDoc
	v := 0
	for d := uint64(0); d < nDocs; d++ {
		if d > 0 {
			delta := vals[v]
			v++
			if delta == 0 {
				return nil, nil, nil, fmt.Errorf("index: batch block %d doc ids not strictly ascending", i)
			}
			doc += int(delta)
		}
		if doc > info.LastDoc {
			return nil, nil, nil, fmt.Errorf("index: batch block %d document %d outside its range", i, doc)
		}
		count := uint64(vals[v])
		v++
		// Every match costs at least 2 bytes in the match area.
		if count == 0 || count > uint64(info.Len)/2 {
			return nil, nil, nil, fmt.Errorf("index: batch block %d match count %d exceeds payload", i, count)
		}
		docs[d] = doc
		nMatch[d] = int(count)
	}
	if docs[0] != info.FirstDoc || docs[len(docs)-1] != info.LastDoc {
		return nil, nil, nil, fmt.Errorf("index: batch block %d document range disagrees with skip entry", i)
	}
	return docs, nMatch, b, nil
}

// decodeBlockBatch fully unpacks batch block i — the batched
// counterpart of DecodeBlock's varint body, enforcing the same
// invariants including the max-index soundness check.
func (bt *BlockTable) decodeBlockBatch(i int) (docs []int, lists []match.List, err error) {
	docs, nMatch, b, err := bt.decodeDirBatch(i)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, c := range nMatch {
		total += c
	}
	if uint64(total) > uint64(len(b))/2 {
		return nil, nil, fmt.Errorf("index: batch block %d match total %d exceeds payload", i, total)
	}
	vals := make([]uint32, 2*total)
	b, ok := decodeGroups(b, vals)
	if !ok {
		return nil, nil, fmt.Errorf("index: truncated batch block %d match area", i)
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("index: %d trailing bytes in batch block %d", len(b), i)
	}
	flat := make(match.List, 0, total)
	lists = make([]match.List, len(docs))
	maxSeen := 0
	v := 0
	for d := range docs {
		begin := len(flat)
		pos := 0
		for m := 0; m < nMatch[d]; m++ {
			pd := vals[v]
			idx := vals[v+1]
			v += 2
			if m > 0 && pd == 0 {
				return nil, nil, fmt.Errorf("index: batch block %d positions not strictly ascending in doc %d", i, docs[d])
			}
			pos += int(pd)
			if pos > MaxPosition {
				return nil, nil, fmt.Errorf("index: batch block %d position %d exceeds %d", i, pos, int64(MaxPosition))
			}
			if idx >= uint32(len(bt.Palette)) {
				return nil, nil, fmt.Errorf("index: batch block %d score index %d out of palette range", i, idx)
			}
			if int(idx) > maxSeen {
				maxSeen = int(idx)
			}
			flat = append(flat, match.Match{Loc: pos, Score: bt.Palette[idx]})
		}
		lists[d] = flat[begin:len(flat):len(flat)]
	}
	if maxSeen != bt.Infos[i].MaxIdx {
		return nil, nil, fmt.Errorf("index: batch block %d max index %d disagrees with content max %d",
			i, bt.Infos[i].MaxIdx, maxSeen)
	}
	return docs, lists, nil
}
