package index

import (
	"errors"
	"strings"
	"testing"
)

func TestMarshalLoadRoundTrip(t *testing.T) {
	ix := New()
	ix.AddText(0, "lenovo partners with the nba in a new deal")
	ix.AddText(1, "dell announced a partnership with the olympics")
	ix.AddText(5, "sparse doc id space works too")
	c := ix.Compact()

	loaded, err := LoadCompact(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs() != c.Docs() {
		t.Errorf("Docs = %d, want %d", loaded.Docs(), c.Docs())
	}
	for _, word := range []string{"lenovo", "dell", "partnership", "sparse", "missing"} {
		a, b := c.Postings(word), loaded.Postings(word)
		if len(a) != len(b) {
			t.Fatalf("%q: loaded %v, original %v", word, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: loaded %v, original %v", word, b, a)
			}
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	ix := New()
	ix.AddText(0, "alpha beta gamma delta epsilon zeta")
	c := ix.Compact()
	a, b := c.Marshal(), c.Marshal()
	if string(a) != string(b) {
		t.Error("Marshal is not deterministic")
	}
}

func TestLoadCompactCorrupt(t *testing.T) {
	ix := New()
	ix.AddText(0, "some words here")
	valid := ix.Compact().Marshal()
	for cut := 1; cut < len(valid); cut++ {
		if _, err := LoadCompact(valid[:cut]); err == nil {
			t.Errorf("truncation at %d loaded without error", cut)
		}
	}
	if _, err := LoadCompact(append(append([]byte{}, valid...), 9)); err == nil {
		t.Error("trailing byte loaded without error")
	}
}

// framedTestIndex builds a small index with concept metadata and
// block-partitioned concept postings, so its Marshal carries all
// three sections.
func framedTestIndex(t *testing.T) *Compact {
	t.Helper()
	ix := New()
	ix.AddText(0, "lenovo partners with the nba in a new deal")
	ix.AddText(1, "dell announced a partnership with the olympics")
	ix.AddText(3, "the nba finals drew a record basketball audience")
	c := ix.Compact()
	c.AddConceptMeta(Concept{"lenovo": 1, "dell": 0.9})
	c.AddConceptMeta(Concept{"nba": 1, "olympics": 0.8, "basketball": 0.7})
	c.AddConceptBlocksSized(Concept{"lenovo": 1, "dell": 0.9}, 2)
	c.AddConceptBlocks(Concept{"nba": 1, "olympics": 0.8, "basketball": 0.7})
	return c
}

// TestMarshalIsFramed pins the on-disk format: magic, version, and a
// meta section when metadata is registered.
func TestMarshalIsFramed(t *testing.T) {
	c := framedTestIndex(t)
	b := c.Marshal()
	if !framed(b) {
		t.Fatal("Marshal output does not start with the framing magic")
	}
	if b[4] != frameVersion {
		t.Fatalf("version byte %d, want %d", b[4], frameVersion)
	}
	loaded, err := LoadCompact(b)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ConceptMetaCount() != c.ConceptMetaCount() {
		t.Fatalf("meta count %d, want %d", loaded.ConceptMetaCount(), c.ConceptMetaCount())
	}
	docs, maxSc, ok := loaded.ConceptMeta(Concept{"lenovo": 1, "dell": 0.9})
	if !ok || len(docs) == 0 || len(docs) != len(maxSc) {
		t.Fatalf("concept meta did not survive the round trip: ok=%v docs=%v", ok, docs)
	}
	if loaded.ConceptBlocksCount() != c.ConceptBlocksCount() {
		t.Fatalf("blocks count %d, want %d", loaded.ConceptBlocksCount(), c.ConceptBlocksCount())
	}
	bt, ok := loaded.ConceptBlocks(Concept{"lenovo": 1, "dell": 0.9})
	if !ok || bt.NumBlocks() == 0 {
		t.Fatalf("concept blocks did not survive the round trip: ok=%v", ok)
	}
	want, _ := c.ConceptBlocks(Concept{"lenovo": 1, "dell": 0.9})
	if bt.NumBlocks() != want.NumBlocks() {
		t.Fatalf("blocks changed across the round trip: %d vs %d", bt.NumBlocks(), want.NumBlocks())
	}
}

// TestLoadCompactLegacy pins backward compatibility: buffers written
// before the framing change (no magic, no checksums) must still load.
func TestLoadCompactLegacy(t *testing.T) {
	c := framedTestIndex(t)
	legacy := c.marshalLegacy()
	if framed(legacy) {
		t.Fatal("legacy marshal unexpectedly framed")
	}
	loaded, err := LoadCompact(legacy)
	if err != nil {
		t.Fatalf("legacy buffer rejected: %v", err)
	}
	if loaded.Docs() != c.Docs() || loaded.ConceptMetaCount() != c.ConceptMetaCount() {
		t.Fatalf("legacy round trip lost data: docs %d/%d meta %d/%d",
			loaded.Docs(), c.Docs(), loaded.ConceptMetaCount(), c.ConceptMetaCount())
	}
}

// TestFramedRejectsEveryBitFlip is the bit-rot acceptance test:
// flipping any single bit of a framed index must make LoadCompact
// fail — the CRC32-C sections leave no byte unprotected except the
// frame structure itself, whose damage is caught structurally.
func TestFramedRejectsEveryBitFlip(t *testing.T) {
	valid := framedTestIndex(t).Marshal()
	for i := range valid {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 1 << bit
			if _, err := LoadCompact(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded without error", i, bit)
			}
		}
	}
}

// TestFramedChecksumError pins that payload damage surfaces as a
// checksum error tagged ErrCorrupt, with the section identified.
func TestFramedChecksumError(t *testing.T) {
	valid := framedTestIndex(t).Marshal()
	// Flip a byte deep inside the posting payload (well past the
	// header) so the frame structure stays intact.
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0x40
	_, err := LoadCompact(mut)
	if err == nil {
		t.Fatal("corrupt payload loaded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error %q does not name the checksum", err)
	}
}

// TestFramedUnsupportedVersion pins the versioning story: a future
// format version is rejected loudly, not misparsed.
func TestFramedUnsupportedVersion(t *testing.T) {
	b := framedTestIndex(t).Marshal()
	b[4] = frameVersion + 1
	_, err := LoadCompact(b)
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("future version: err = %v", err)
	}
}
