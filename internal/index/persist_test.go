package index

import "testing"

func TestMarshalLoadRoundTrip(t *testing.T) {
	ix := New()
	ix.AddText(0, "lenovo partners with the nba in a new deal")
	ix.AddText(1, "dell announced a partnership with the olympics")
	ix.AddText(5, "sparse doc id space works too")
	c := ix.Compact()

	loaded, err := LoadCompact(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs() != c.Docs() {
		t.Errorf("Docs = %d, want %d", loaded.Docs(), c.Docs())
	}
	for _, word := range []string{"lenovo", "dell", "partnership", "sparse", "missing"} {
		a, b := c.Postings(word), loaded.Postings(word)
		if len(a) != len(b) {
			t.Fatalf("%q: loaded %v, original %v", word, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: loaded %v, original %v", word, b, a)
			}
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	ix := New()
	ix.AddText(0, "alpha beta gamma delta epsilon zeta")
	c := ix.Compact()
	a, b := c.Marshal(), c.Marshal()
	if string(a) != string(b) {
		t.Error("Marshal is not deterministic")
	}
}

func TestLoadCompactCorrupt(t *testing.T) {
	ix := New()
	ix.AddText(0, "some words here")
	valid := ix.Compact().Marshal()
	for cut := 1; cut < len(valid); cut++ {
		if _, err := LoadCompact(valid[:cut]); err == nil {
			t.Errorf("truncation at %d loaded without error", cut)
		}
	}
	if _, err := LoadCompact(append(append([]byte{}, valid...), 9)); err == nil {
		t.Error("trailing byte loaded without error")
	}
}
