package index

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Posting metadata for lossless top-k pruning: for each registered
// concept, the compacted index keeps a per-document summary — the
// maximum match score the concept attains in that document — packed as
// delta-encoded document ids with raw float64 score bits. The engine
// turns these per-list maxima into score upper bounds (scorefn's
// UpperBound hooks) and skips best-joins for documents that provably
// cannot enter the current top-k.
//
// Like the posting lists themselves (compress.go), the metadata may
// arrive from disk or other untrusted storage via Marshal/LoadCompact,
// so the decode path is bounded the same way: document deltas are
// capped by MaxDocID before the int conversion can wrap, ids must be
// strictly ascending, and score bits must decode to a finite float —
// NaN would poison every bound comparison downstream (NaN < floor is
// always false, silently disabling pruning) and ±Inf would defeat the
// point of a cap. Negative finite scores are legal: match scores may
// be any real (see match.Match).
//
// Layout per concept: varint(#docs), then per document
// varint(docDelta) float64le(maxScore), with ids delta-encoded and the
// first delta giving the first id directly.

// EncodeDocMax packs a per-document max-score summary. docs must be
// strictly ascending with len(docs) == len(maxScore); the empty
// summary encodes to nil.
func EncodeDocMax(docs []int, maxScore []float64) []byte {
	if len(docs) == 0 {
		return nil
	}
	buf := make([]byte, 0, 1+len(docs)*9)
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	prev := 0
	for i, d := range docs {
		buf = binary.AppendUvarint(buf, uint64(d-prev))
		prev = d
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(maxScore[i]))
	}
	return buf
}

// DecodeDocMax unpacks an EncodeDocMax buffer. Document ids are
// bounded by MaxDocID and must be strictly ascending; scores must be
// finite (NaN and ±Inf are rejected as corrupt). Hostile bytes yield
// an error, never a panic or an out-of-range summary.
func DecodeDocMax(b []byte) (docs []int, maxScore []float64, err error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("index: corrupt doc-max header")
	}
	b = b[n:]
	// Each entry costs at least 9 bytes (one delta byte plus the score);
	// reject counts the buffer cannot hold so corrupt input cannot drive
	// huge allocations.
	if count > uint64(len(b))/9 {
		return nil, nil, fmt.Errorf("index: doc-max count %d exceeds buffer", count)
	}
	docs = make([]int, 0, count)
	maxScore = make([]float64, 0, count)
	doc := 0
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, fmt.Errorf("index: corrupt doc-max delta")
		}
		b = b[n:]
		// Check the delta before converting: a uvarint above MaxInt64
		// would wrap int(delta) negative.
		if delta > MaxDocID {
			return nil, nil, fmt.Errorf("index: doc-max delta %d exceeds %d", delta, uint64(MaxDocID))
		}
		if i > 0 && delta == 0 {
			return nil, nil, fmt.Errorf("index: doc-max ids not strictly ascending at %d", doc)
		}
		doc += int(delta)
		if doc > MaxDocID {
			return nil, nil, fmt.Errorf("index: doc-max id %d exceeds %d", doc, int64(MaxDocID))
		}
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("index: truncated doc-max score")
		}
		s := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, nil, fmt.Errorf("index: doc-max score for doc %d is not finite", doc)
		}
		docs = append(docs, doc)
		maxScore = append(maxScore, s)
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("index: %d trailing doc-max bytes", len(b))
	}
	return docs, maxScore, nil
}

// ConceptKey hashes a concept to a stable 64-bit key, independent of
// map iteration order: the identity under which concept metadata (and
// the engine's concept caches) are stored.
func ConceptKey(c Concept) uint64 {
	words := make([]string, 0, len(c))
	for w := range c {
		words = append(words, w)
	}
	sort.Strings(words)
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range words {
		h.Write([]byte(w))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c[w]))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// BuildConceptMeta computes a concept's per-document max-score summary
// from the compressed postings: for every document containing at least
// one member word, the highest score among the member words present
// (the same "best member-word score wins" rule as ConceptList). The
// result is the encoded metadata buffer.
func (c *Compact) BuildConceptMeta(concept Concept) []byte {
	best := map[int]float64{}
	for word, score := range concept {
		for _, p := range c.Postings(word) {
			if s, ok := best[p.Doc]; !ok || score > s {
				best[p.Doc] = score
			}
		}
	}
	docs := make([]int, 0, len(best))
	for d := range best {
		docs = append(docs, d)
	}
	sort.Ints(docs)
	maxScore := make([]float64, len(docs))
	for i, d := range docs {
		maxScore[i] = best[d]
	}
	return EncodeDocMax(docs, maxScore)
}

// AddConceptMeta precomputes and registers a concept's max-score
// metadata, keyed by ConceptKey. Call it at build time, before the
// index starts serving queries: Compact is otherwise read-only and
// concurrent readers do not lock.
func (c *Compact) AddConceptMeta(concept Concept) {
	if c.meta == nil {
		c.meta = make(map[uint64][]byte)
	}
	c.meta[ConceptKey(concept)] = c.BuildConceptMeta(concept)
}

// ConceptMeta returns a concept's registered per-document max-score
// summary, or ok=false when the concept was never registered. Like
// Compact.Postings, a decode failure indicates memory corruption
// (LoadCompact validates every buffer eagerly) and fails loudly.
func (c *Compact) ConceptMeta(concept Concept) (docs []int, maxScore []float64, ok bool) {
	b, ok := c.meta[ConceptKey(concept)]
	if !ok {
		return nil, nil, false
	}
	docs, maxScore, err := DecodeDocMax(b)
	if err != nil {
		panic(fmt.Sprintf("index: corrupt concept metadata: %v", err))
	}
	return docs, maxScore, true
}

// ConceptMetaCount returns the number of registered concept summaries.
func (c *Compact) ConceptMetaCount() int { return len(c.meta) }
