package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Persistence for compacted indexes: a Compact serializes to a single
// byte buffer (and back) so precomputed indexes can be stored on disk
// or shipped between processes.
//
// Since the crash-safety work the on-disk form is framed: a 4-byte
// magic, a format version, and a sequence of sections, each carrying
// its own CRC32-C (Castagnoli) checksum so truncation and bit-rot are
// detected at load time instead of surfacing as silently wrong query
// results. Layout:
//
//	"BJIX" version(1) varint(#sections)
//	per section: id(1) varint(len) payload crc32c(payload, 4 bytes LE)
//
// Section 1 holds the posting payload — varint(docs), varint(#terms),
// then per term (sorted by stem for determinism) varint(len(stem))
// stem varint(len(postings)) postings, where postings is the
// varint-packed buffer of compress.go. Section 2, present only when
// concept max-score metadata is registered (meta.go), holds
// varint(#concepts), then per concept (sorted by key) uint64le(key)
// varint(len(meta)) meta. Section 3, present only when
// block-partitioned concept postings are registered (blocks.go), has
// the same per-concept shape with EncodeBlocks buffers as values.
// Section 4, present only when group-varint batched concept postings
// are registered (batchdecode.go), repeats that shape with
// EncodeBlocksBatch buffers; a reader predating section 4 rejects the
// unknown id loudly instead of misparsing it. Section 5, present only
// when precomputed pair lists are registered (pairs.go), holds
// varint(#pairs), then per pair (sorted by key) uint64le(lo)
// uint64le(hi) uint64le(spec) varint(len) EncodePairs buffer. Indexes
// written before a given section existed simply omit it and keep
// loading — the corresponding feature is absent, never misread.
//
// LoadCompact still accepts the pre-framing layout (the two payloads
// concatenated with no magic, no checksums), so indexes marshaled
// before the framing change keep loading. Marshal always emits the
// framed form.

// Framing constants. The version byte lets the layout evolve without
// breaking old readers loudly: an unknown version is rejected with a
// precise error instead of being misparsed.
const (
	frameMagic   = "BJIX"
	frameVersion = 1

	secPostings    = 1 // posting payload: docs header + term table
	secMeta        = 2 // optional concept max-score metadata
	secBlocks      = 3 // optional block-partitioned concept postings
	secBlocksBatch = 4 // optional group-varint batched concept postings
	secPairs       = 5 // optional precomputed concept-pair postings
)

// castagnoli is the CRC32-C polynomial table — the checksum flavor
// with hardware support on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt tags every framed-index validation failure: bad magic,
// unsupported version, truncated sections, checksum mismatches,
// trailing bytes. errors.Is(err, ErrCorrupt) distinguishes "the bytes
// are damaged" from I/O errors when loading from disk.
var ErrCorrupt = errors.New("index: corrupt framed index")

// Marshal serializes the compacted index in the framed, checksummed
// form.
func (c *Compact) Marshal() []byte {
	postings := c.marshalPostings()
	meta := c.marshalMeta()
	blocks := c.marshalConceptMap(c.blocks)
	batch := c.marshalConceptMap(c.batch)
	pairs := c.marshalPairs()
	buf := append(make([]byte, 0, len(postings)+len(meta)+len(blocks)+len(batch)+len(pairs)+32), frameMagic...)
	buf = append(buf, frameVersion)
	nsec := uint64(1)
	if meta != nil {
		nsec++
	}
	if blocks != nil {
		nsec++
	}
	if batch != nil {
		nsec++
	}
	if pairs != nil {
		nsec++
	}
	buf = binary.AppendUvarint(buf, nsec)
	buf = appendSection(buf, secPostings, postings)
	if meta != nil {
		buf = appendSection(buf, secMeta, meta)
	}
	if blocks != nil {
		buf = appendSection(buf, secBlocks, blocks)
	}
	if batch != nil {
		buf = appendSection(buf, secBlocksBatch, batch)
	}
	if pairs != nil {
		buf = appendSection(buf, secPairs, pairs)
	}
	return buf
}

// appendSection frames one payload: id, length, bytes, CRC32-C.
func appendSection(buf []byte, id byte, payload []byte) []byte {
	buf = append(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
}

// marshalPostings builds the posting payload (section 1).
func (c *Compact) marshalPostings() []byte {
	stems := make([]string, 0, len(c.postings))
	for s := range c.postings {
		stems = append(stems, s)
	}
	sort.Strings(stems)
	buf := binary.AppendUvarint(nil, uint64(c.docs))
	buf = binary.AppendUvarint(buf, uint64(len(stems)))
	for _, s := range stems {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
		p := c.postings[s]
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// marshalMeta builds the concept-metadata payload (section 2), nil
// when no metadata is registered.
func (c *Compact) marshalMeta() []byte {
	if len(c.meta) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(c.meta))
	for k := range c.meta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		m := c.meta[k]
		buf = binary.AppendUvarint(buf, uint64(len(m)))
		buf = append(buf, m...)
	}
	return buf
}

// marshalConceptMap builds a per-concept payload (sections 3 and 4),
// nil when the map is empty. Same shape as the metadata section:
// varint(#concepts), then per concept (sorted by key for determinism)
// uint64le(key) varint(len) buffer.
func (c *Compact) marshalConceptMap(m map[uint64][]byte) []byte {
	if len(m) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		b := m[k]
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// marshalPairs builds the pair-list payload (section 5), nil when no
// pairs are registered. Per pair (sorted by key for determinism): the
// three key words little-endian, then the length-prefixed EncodePairs
// buffer.
func (c *Compact) marshalPairs() []byte {
	if len(c.pairs) == 0 {
		return nil
	}
	keys := make([]PairKey, 0, len(c.pairs))
	for k := range c.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Spec < b.Spec
	})
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k.Lo)
		buf = binary.LittleEndian.AppendUint64(buf, k.Hi)
		buf = binary.LittleEndian.AppendUint64(buf, k.Spec)
		p := c.pairs[k]
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// marshalLegacy emits the pre-framing layout: the two payloads
// concatenated bare. Kept (unexported) so tests can pin that
// LoadCompact still reads indexes marshaled before the framing change.
func (c *Compact) marshalLegacy() []byte {
	return append(c.marshalPostings(), c.marshalMeta()...)
}

// framed reports whether a buffer starts with the framing magic.
func framed(b []byte) bool {
	return len(b) >= len(frameMagic) && string(b[:len(frameMagic)]) == frameMagic
}

// LoadCompact deserializes a Marshal buffer: the framed form when the
// magic is present, the pre-framing legacy form otherwise. Both paths
// validate every posting list and metadata buffer eagerly, so corrupt
// or adversarial bytes fail here rather than at query time.
func LoadCompact(b []byte) (*Compact, error) {
	if framed(b) {
		return loadFramed(b)
	}
	return loadLegacy(b)
}

// loadFramed verifies the framing — magic, version, section structure,
// per-section checksums, no trailing bytes — then parses the payloads.
func loadFramed(b []byte) (*Compact, error) {
	b = b[len(frameMagic):]
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: truncated before version", ErrCorrupt)
	}
	if b[0] != frameVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, b[0], frameVersion)
	}
	b = b[1:]
	nsec, n := binary.Uvarint(b)
	if n <= 0 || nsec == 0 || nsec > 5 {
		return nil, fmt.Errorf("%w: bad section count", ErrCorrupt)
	}
	b = b[n:]
	var postings, meta, blocks, batch, pairs []byte
	prevID := byte(0)
	for i := uint64(0); i < nsec; i++ {
		if len(b) == 0 {
			return nil, fmt.Errorf("%w: truncated before section %d", ErrCorrupt, i)
		}
		id := b[0]
		b = b[1:]
		if id <= prevID || id > secPairs {
			return nil, fmt.Errorf("%w: bad section id %d", ErrCorrupt, id)
		}
		prevID = id
		plen, n := binary.Uvarint(b)
		// Compare without computing plen+4: a hostile length near
		// MaxUint64 would wrap the sum and pass the check.
		if n <= 0 || plen > uint64(len(b[n:])) || uint64(len(b[n:]))-plen < 4 {
			return nil, fmt.Errorf("%w: truncated section %d", ErrCorrupt, id)
		}
		b = b[n:]
		payload := b[:plen]
		b = b[plen:]
		stored := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if sum := crc32.Checksum(payload, castagnoli); sum != stored {
			return nil, fmt.Errorf("%w: checksum mismatch in section %d (stored %08x, computed %08x)",
				ErrCorrupt, id, stored, sum)
		}
		switch id {
		case secPostings:
			postings = payload
		case secMeta:
			meta = payload
		case secBlocks:
			blocks = payload
		case secBlocksBatch:
			batch = payload
		case secPairs:
			pairs = payload
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	if postings == nil {
		return nil, fmt.Errorf("%w: no posting section", ErrCorrupt)
	}
	c, rest, err := parsePostings(postings)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in posting section", ErrCorrupt, len(rest))
	}
	if meta != nil {
		rest, err := parseMeta(c, meta)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in meta section", ErrCorrupt, len(rest))
		}
	}
	if blocks != nil {
		rest, err := parseBlocks(c, blocks)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in blocks section", ErrCorrupt, len(rest))
		}
	}
	if batch != nil {
		rest, err := parseBlocksBatch(c, batch)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in batched-blocks section", ErrCorrupt, len(rest))
		}
	}
	if pairs != nil {
		rest, err := parsePairs(c, pairs)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in pairs section", ErrCorrupt, len(rest))
		}
	}
	return c, nil
}

// loadLegacy parses the pre-framing layout: posting payload followed
// directly by the optional metadata payload.
func loadLegacy(b []byte) (*Compact, error) {
	c, rest, err := parsePostings(b)
	if err != nil {
		return nil, err
	}
	if len(rest) == 0 {
		return c, nil // pre-metadata buffer: no concept section
	}
	rest, err = parseMeta(c, rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes", len(rest))
	}
	return c, nil
}

// parsePostings decodes the posting payload — docs header plus term
// table — returning the unconsumed remainder.
func parsePostings(b []byte) (*Compact, []byte, error) {
	docs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("index: corrupt docs header")
	}
	b = b[n:]
	nTerms, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("index: corrupt term count")
	}
	b = b[n:]
	// Each term costs at least 3 bytes (stem length, one stem byte,
	// posting length); reject counts the buffer cannot hold so corrupt
	// input cannot drive huge allocations.
	if nTerms > uint64(len(b))/3+1 {
		return nil, nil, fmt.Errorf("index: term count %d exceeds buffer", nTerms)
	}
	c := &Compact{postings: make(map[string][]byte, nTerms), docs: int(docs)}
	for i := uint64(0); i < nTerms; i++ {
		slen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < slen {
			return nil, nil, fmt.Errorf("index: corrupt stem %d", i)
		}
		b = b[n:]
		stem := string(b[:slen])
		b = b[slen:]
		plen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < plen {
			return nil, nil, fmt.Errorf("index: corrupt postings for %q", stem)
		}
		b = b[n:]
		postings := make([]byte, plen)
		copy(postings, b[:plen])
		b = b[plen:]
		// Validate eagerly so a corrupt load fails here, not at query
		// time.
		if _, err := DecodePostings(postings); err != nil {
			return nil, nil, fmt.Errorf("index: invalid postings for %q: %v", stem, err)
		}
		c.postings[stem] = postings
	}
	return c, b, nil
}

// parseMeta decodes the concept-metadata payload into c, returning
// the unconsumed remainder.
func parseMeta(c *Compact, b []byte) ([]byte, error) {
	nMeta, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt concept-meta count")
	}
	b = b[n:]
	// Each concept costs at least 9 bytes (8-byte key, length byte).
	if nMeta > uint64(len(b))/9 {
		return nil, fmt.Errorf("index: concept-meta count %d exceeds buffer", nMeta)
	}
	c.meta = make(map[uint64][]byte, nMeta)
	for i := uint64(0); i < nMeta; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("index: truncated concept-meta key %d", i)
		}
		key := binary.LittleEndian.Uint64(b)
		b = b[8:]
		mlen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < mlen {
			return nil, fmt.Errorf("index: corrupt concept meta %d", i)
		}
		b = b[n:]
		meta := make([]byte, mlen)
		copy(meta, b[:mlen])
		b = b[mlen:]
		// Validate eagerly, like postings: ConceptMeta treats decode
		// failure as memory corruption and panics.
		if _, _, err := DecodeDocMax(meta); err != nil {
			return nil, fmt.Errorf("index: invalid concept meta %d: %v", i, err)
		}
		c.meta[key] = meta
	}
	return b, nil
}

// parseBlocks decodes the block-partitioned-postings payload into
// c.blocks, returning the unconsumed remainder. Every block of every
// concept is fully decoded here — the same eager-validation stance as
// postings and metadata, so ConceptBlocks can treat decode failure as
// memory corruption.
func parseBlocks(c *Compact, b []byte) ([]byte, error) {
	m, rest, err := parseConceptBlockMap(b, DecodeBlocks)
	if err != nil {
		return nil, err
	}
	c.blocks = m
	return rest, nil
}

// parseBlocksBatch is parseBlocks for the group-varint batched layout
// (section 4), filling c.batch.
func parseBlocksBatch(c *Compact, b []byte) ([]byte, error) {
	m, rest, err := parseConceptBlockMap(b, DecodeBlocksBatch)
	if err != nil {
		return nil, err
	}
	c.batch = m
	return rest, nil
}

// parsePairs decodes the pair-list payload into c.pairs, returning
// the unconsumed remainder. Every block of every pair list is fully
// decoded here — the same eager-validation stance as postings — so
// ConceptPairs can treat decode failure as memory corruption.
func parsePairs(c *Compact, b []byte) ([]byte, error) {
	nPairs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt pair-list count")
	}
	b = b[n:]
	// Each pair costs at least 25 bytes (three 8-byte key words, one
	// length byte).
	if nPairs > uint64(len(b))/25 {
		return nil, fmt.Errorf("index: pair-list count %d exceeds buffer", nPairs)
	}
	c.pairs = make(map[PairKey][]byte, nPairs)
	for i := uint64(0); i < nPairs; i++ {
		if len(b) < 24 {
			return nil, fmt.Errorf("index: truncated pair-list key %d", i)
		}
		key := PairKey{
			Lo:   binary.LittleEndian.Uint64(b),
			Hi:   binary.LittleEndian.Uint64(b[8:]),
			Spec: binary.LittleEndian.Uint64(b[16:]),
		}
		b = b[24:]
		if key.Lo > key.Hi {
			return nil, fmt.Errorf("index: pair-list key %d not in canonical order", i)
		}
		plen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < plen {
			return nil, fmt.Errorf("index: corrupt pair list %d", i)
		}
		b = b[n:]
		buf := make([]byte, plen)
		copy(buf, b[:plen])
		b = b[plen:]
		pt, err := DecodePairs(buf)
		if err != nil {
			return nil, fmt.Errorf("index: invalid pair list %d: %v", i, err)
		}
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("index: invalid pair list %d: %v", i, err)
		}
		if pt == nil {
			continue // zero-length buffer: nothing to serve
		}
		c.pairs[key] = buf
	}
	return b, nil
}

// parseConceptBlockMap parses one per-concept block-table payload with
// the given block decoder, eagerly validating every block of every
// concept.
func parseConceptBlockMap(b []byte, decode func([]byte) (*BlockTable, error)) (map[uint64][]byte, []byte, error) {
	nBlk, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("index: corrupt concept-blocks count")
	}
	b = b[n:]
	// Each concept costs at least 9 bytes (8-byte key, length byte).
	if nBlk > uint64(len(b))/9 {
		return nil, nil, fmt.Errorf("index: concept-blocks count %d exceeds buffer", nBlk)
	}
	m := make(map[uint64][]byte, nBlk)
	for i := uint64(0); i < nBlk; i++ {
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("index: truncated concept-blocks key %d", i)
		}
		key := binary.LittleEndian.Uint64(b)
		b = b[8:]
		blen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < blen {
			return nil, nil, fmt.Errorf("index: corrupt concept blocks %d", i)
		}
		b = b[n:]
		blk := make([]byte, blen)
		copy(blk, b[:blen])
		b = b[blen:]
		bt, err := decode(blk)
		if err != nil {
			return nil, nil, fmt.Errorf("index: invalid concept blocks %d: %v", i, err)
		}
		if err := bt.Validate(); err != nil {
			return nil, nil, fmt.Errorf("index: invalid concept blocks %d: %v", i, err)
		}
		if bt == nil {
			continue // zero-length buffer: nothing to serve
		}
		m[key] = blk
	}
	return m, b, nil
}
