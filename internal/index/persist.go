package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Persistence for compacted indexes: a Compact serializes to a single
// byte buffer (and back) so precomputed indexes can be stored on disk
// or shipped between processes.
//
// Layout: varint(docs), varint(#terms), then per term (sorted by stem
// for determinism) varint(len(stem)) stem varint(len(postings))
// postings — where postings is the already-varint-packed posting
// buffer of compress.go. When concept max-score metadata is
// registered (meta.go), a trailing section follows: varint(#concepts),
// then per concept (sorted by key) uint64le(key) varint(len(meta))
// meta. A buffer that ends after the terms section simply has no
// metadata, so pre-metadata buffers still load.

// Marshal serializes the compacted index.
func (c *Compact) Marshal() []byte {
	stems := make([]string, 0, len(c.postings))
	for s := range c.postings {
		stems = append(stems, s)
	}
	sort.Strings(stems)
	buf := binary.AppendUvarint(nil, uint64(c.docs))
	buf = binary.AppendUvarint(buf, uint64(len(stems)))
	for _, s := range stems {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
		p := c.postings[s]
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	if len(c.meta) == 0 {
		return buf
	}
	keys := make([]uint64, 0, len(c.meta))
	for k := range c.meta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
		m := c.meta[k]
		buf = binary.AppendUvarint(buf, uint64(len(m)))
		buf = append(buf, m...)
	}
	return buf
}

// LoadCompact deserializes a Marshal buffer.
func LoadCompact(b []byte) (*Compact, error) {
	docs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt docs header")
	}
	b = b[n:]
	nTerms, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt term count")
	}
	b = b[n:]
	// Each term costs at least 3 bytes (stem length, one stem byte,
	// posting length); reject counts the buffer cannot hold so corrupt
	// input cannot drive huge allocations.
	if nTerms > uint64(len(b))/3+1 {
		return nil, fmt.Errorf("index: term count %d exceeds buffer", nTerms)
	}
	c := &Compact{postings: make(map[string][]byte, nTerms), docs: int(docs)}
	for i := uint64(0); i < nTerms; i++ {
		slen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < slen {
			return nil, fmt.Errorf("index: corrupt stem %d", i)
		}
		b = b[n:]
		stem := string(b[:slen])
		b = b[slen:]
		plen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < plen {
			return nil, fmt.Errorf("index: corrupt postings for %q", stem)
		}
		b = b[n:]
		postings := make([]byte, plen)
		copy(postings, b[:plen])
		b = b[plen:]
		// Validate eagerly so a corrupt load fails here, not at query
		// time.
		if _, err := DecodePostings(postings); err != nil {
			return nil, fmt.Errorf("index: invalid postings for %q: %v", stem, err)
		}
		c.postings[stem] = postings
	}
	if len(b) == 0 {
		return c, nil // pre-metadata buffer: no concept section
	}
	nMeta, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt concept-meta count")
	}
	b = b[n:]
	// Each concept costs at least 9 bytes (8-byte key, length byte).
	if nMeta > uint64(len(b))/9 {
		return nil, fmt.Errorf("index: concept-meta count %d exceeds buffer", nMeta)
	}
	c.meta = make(map[uint64][]byte, nMeta)
	for i := uint64(0); i < nMeta; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("index: truncated concept-meta key %d", i)
		}
		key := binary.LittleEndian.Uint64(b)
		b = b[8:]
		mlen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b[n:])) < mlen {
			return nil, fmt.Errorf("index: corrupt concept meta %d", i)
		}
		b = b[n:]
		meta := make([]byte, mlen)
		copy(meta, b[:mlen])
		b = b[mlen:]
		// Validate eagerly, like postings: ConceptMeta treats decode
		// failure as memory corruption and panics.
		if _, _, err := DecodeDocMax(meta); err != nil {
			return nil, fmt.Errorf("index: invalid concept meta %d: %v", i, err)
		}
		c.meta[key] = meta
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes", len(b))
	}
	return c, nil
}
