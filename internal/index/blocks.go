package index

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"bestjoin/internal/match"
)

// Block-partitioned concept postings: the skip layer that lets the
// engine prune *below* decode. A concept's corpus-wide match data
// (the same best-member-word-score-wins merge as BuildConceptMeta,
// but keeping every position) is cut into blocks of ~BlockSize
// documents. Each block carries a skip-table entry — first/last
// document id, payload byte range, and the block's maximum match
// score — so a query can (a) gallop over whole blocks during
// candidate generation without decoding them and (b) skip decoding
// any block whose block-max score upper bound cannot beat the
// current top-k floor. That is the classic block-max index layout
// behind threshold-algorithm early termination (Fagin et al.) and
// response-time-guaranteed proximity search (Veretennikov).
//
// Encoded layout (EncodeBlocks):
//
//	varint(#palette) float64le × #palette      // distinct scores, ascending
//	varint(#blocks)
//	per block: varint(firstGap) varint(span) varint(payloadLen) varint(maxIdx)
//	concatenated block payloads
//
// firstGap is the first document id for block 0 and the gap from the
// previous block's last document (≥ 1, blocks are disjoint and
// ascending) afterwards; span is lastDoc − firstDoc; maxIdx indexes
// the palette entry equal to the block's maximum match score.
//
// Block payload:
//
//	varint(#docs)
//	directory: per document varint(docDelta) varint(#matches)
//	           (the first document's delta is omitted: it IS firstDoc)
//	match area: per match varint(posDelta) varint(scoreIdx)
//	           (positions restart per document; first delta is absolute)
//
// The directory comes first so candidate generation can decode just
// the document ids of a block — a few varints — while the match area
// (the expensive part) stays untouched until the block provably
// matters. Scores live in the palette: a concept has only a handful
// of distinct member-word weights, so per-match score storage is one
// small varint instead of eight float bytes.
//
// Like every other decode path in this package the buffers may come
// from disk or other untrusted storage, so decoding is bounded the
// PR 1 way: deltas are capped by MaxDocID/MaxPosition before int
// conversion can wrap, ids and positions must be strictly ascending,
// palette scores must be finite and strictly ascending, counts are
// checked against the bytes that must back them, and — soundness
// critical for pruning — each block's recorded max index must equal
// the maximum score index actually present in the block, so hostile
// bytes cannot understate a block max and cause a real answer to be
// skipped.

// BlockSize is the target number of documents per block. 128 keeps
// a block's decoded form around a few KiB on realistic corpora —
// large enough to amortize per-block bookkeeping, small enough that
// block-max bounds stay selective.
const BlockSize = 128

// BlockInfo is one decoded skip-table entry.
type BlockInfo struct {
	FirstDoc int // first document id in the block
	LastDoc  int // last document id in the block
	Off      int // payload byte offset within the payload area
	Len      int // payload byte length
	MaxIdx   int // palette index of the block's maximum match score
	// MaxScore is the block's maximum match score (Palette[MaxIdx]),
	// denormalized at decode time for the pruning hot path.
	MaxScore float64
}

// BlockTable is a decoded skip table over one concept's
// block-partitioned postings. The payload area is retained
// undecoded; DecodeDocs and DecodeBlock unpack individual blocks on
// demand.
type BlockTable struct {
	Palette []float64 // distinct match scores, strictly ascending
	Infos   []BlockInfo
	payload []byte
	// batch marks a table whose payloads use the group-varint batched
	// layout (batchdecode.go); the decode entry points dispatch on it,
	// so callers never care which codec backs a table.
	batch bool
}

// NumBlocks returns the number of blocks in the table.
func (bt *BlockTable) NumBlocks() int { return len(bt.Infos) }

// FindBlock returns the index of the block whose document range
// contains doc, or -1 when no block covers it.
func (bt *BlockTable) FindBlock(doc int) int {
	i := sort.Search(len(bt.Infos), func(i int) bool { return bt.Infos[i].LastDoc >= doc })
	if i == len(bt.Infos) || bt.Infos[i].FirstDoc > doc {
		return -1
	}
	return i
}

// EncodeBlocks packs a concept's corpus-wide match data — strictly
// ascending document ids with one non-empty position-sorted match
// list each — into the block-partitioned layout. blockSize ≤ 0 means
// BlockSize. The empty input encodes to nil. Inputs must satisfy the
// documented invariants (ascending docs, ascending positions, finite
// scores); EncodeBlocks is a build-time path fed only by
// BuildConceptBlocks and tests.
func EncodeBlocks(docs []int, lists []match.List, blockSize int) []byte {
	if len(docs) == 0 {
		return nil
	}
	if blockSize <= 0 {
		blockSize = BlockSize
	}
	palette, scoreIdx := buildPalette(lists)

	nBlocks := (len(docs) + blockSize - 1) / blockSize
	buf := binary.AppendUvarint(nil, uint64(len(palette)))
	for _, s := range palette {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = binary.AppendUvarint(buf, uint64(nBlocks))

	var payload []byte
	type skip struct {
		first, last, plen, maxIdx int
	}
	skips := make([]skip, 0, nBlocks)
	for b := 0; b < len(docs); b += blockSize {
		e := b + blockSize
		if e > len(docs) {
			e = len(docs)
		}
		start := len(payload)
		payload = binary.AppendUvarint(payload, uint64(e-b))
		// Directory: per-document delta (first omitted) and match count.
		for i := b; i < e; i++ {
			if i > b {
				payload = binary.AppendUvarint(payload, uint64(docs[i]-docs[i-1]))
			}
			payload = binary.AppendUvarint(payload, uint64(len(lists[i])))
		}
		// Match area, tracking the block max.
		maxIdx := 0
		for i := b; i < e; i++ {
			prev := 0
			for j, m := range lists[i] {
				if j == 0 {
					payload = binary.AppendUvarint(payload, uint64(m.Loc))
				} else {
					payload = binary.AppendUvarint(payload, uint64(m.Loc-prev))
				}
				prev = m.Loc
				idx := scoreIdx[m.Score]
				if idx > maxIdx {
					maxIdx = idx
				}
				payload = binary.AppendUvarint(payload, uint64(idx))
			}
		}
		skips = append(skips, skip{first: docs[b], last: docs[e-1], plen: len(payload) - start, maxIdx: maxIdx})
	}
	prevLast := 0
	for i, s := range skips {
		gap := s.first
		if i > 0 {
			gap = s.first - prevLast
		}
		buf = binary.AppendUvarint(buf, uint64(gap))
		buf = binary.AppendUvarint(buf, uint64(s.last-s.first))
		buf = binary.AppendUvarint(buf, uint64(s.plen))
		buf = binary.AppendUvarint(buf, uint64(s.maxIdx))
		prevLast = s.last
	}
	return append(buf, payload...)
}

// DecodeBlocks unpacks the palette and skip table of an EncodeBlocks
// buffer, retaining the payload area for per-block decoding. Hostile
// bytes yield an error, never a panic or an out-of-range table; the
// per-block payloads are validated by DecodeBlock (Validate runs it
// over every block, which is what the load path does eagerly).
func DecodeBlocks(b []byte) (*BlockTable, error) {
	if len(b) == 0 {
		return nil, nil
	}
	nPal, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt block palette header")
	}
	b = b[n:]
	if nPal == 0 || nPal > uint64(len(b))/8 {
		return nil, fmt.Errorf("index: block palette count %d exceeds buffer", nPal)
	}
	palette := make([]float64, nPal)
	for i := range palette {
		s := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("index: block palette score %d is not finite", i)
		}
		if i > 0 && s <= palette[i-1] {
			return nil, fmt.Errorf("index: block palette not strictly ascending at %d", i)
		}
		palette[i] = s
	}
	nBlocks, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt block count")
	}
	b = b[n:]
	// Each block costs at least 4 skip bytes plus a 4-byte minimum
	// payload; reject counts the buffer cannot hold so corrupt input
	// cannot drive huge allocations.
	if nBlocks == 0 || nBlocks > uint64(len(b))/4 {
		return nil, fmt.Errorf("index: block count %d exceeds buffer", nBlocks)
	}
	infos := make([]BlockInfo, nBlocks)
	var payloadTotal uint64
	prevLast := 0
	for i := range infos {
		gap, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt block %d first-doc gap", i)
		}
		b = b[n:]
		if gap > MaxDocID {
			return nil, fmt.Errorf("index: block %d first-doc gap %d exceeds %d", i, gap, uint64(MaxDocID))
		}
		if i > 0 && gap == 0 {
			return nil, fmt.Errorf("index: block %d overlaps its predecessor", i)
		}
		first := prevLast + int(gap)
		span, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt block %d span", i)
		}
		b = b[n:]
		if span > MaxDocID {
			return nil, fmt.Errorf("index: block %d span %d exceeds %d", i, span, uint64(MaxDocID))
		}
		last := first + int(span)
		if first > MaxDocID || last > MaxDocID {
			return nil, fmt.Errorf("index: block %d document range exceeds %d", i, int64(MaxDocID))
		}
		plen, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt block %d payload length", i)
		}
		b = b[n:]
		maxIdx, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt block %d max index", i)
		}
		b = b[n:]
		if maxIdx >= nPal {
			return nil, fmt.Errorf("index: block %d max index %d out of palette range", i, maxIdx)
		}
		// Accumulate in uint64 and bound against the remaining buffer so
		// hostile lengths cannot wrap the running offset.
		if plen == 0 || plen > uint64(len(b)) || payloadTotal > uint64(len(b))-plen {
			return nil, fmt.Errorf("index: block %d payload overruns buffer", i)
		}
		infos[i] = BlockInfo{
			FirstDoc: first,
			LastDoc:  last,
			Off:      int(payloadTotal),
			Len:      int(plen),
			MaxIdx:   int(maxIdx),
			MaxScore: palette[maxIdx],
		}
		payloadTotal += plen
		prevLast = last
	}
	if payloadTotal != uint64(len(b)) {
		return nil, fmt.Errorf("index: %d trailing block payload bytes", uint64(len(b))-payloadTotal)
	}
	return &BlockTable{Palette: palette, Infos: infos, payload: b}, nil
}

// DecodeDocs unpacks only the directory of block i: the document ids
// it contains, without touching the match area. This is the
// candidate-generation path — a handful of varints per block instead
// of a full posting decode.
func (bt *BlockTable) DecodeDocs(i int) ([]int, error) {
	docs, _, _, err := bt.decodeDir(i)
	return docs, err
}

// decodeDir parses block i's directory, returning the document ids,
// per-document match counts, and the unconsumed match area.
func (bt *BlockTable) decodeDir(i int) (docs []int, nMatch []int, matchArea []byte, err error) {
	if bt.batch {
		return bt.decodeDirBatch(i)
	}
	info := bt.Infos[i]
	b := bt.payload[info.Off : info.Off+info.Len]
	nDocs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, nil, fmt.Errorf("index: corrupt block %d doc count", i)
	}
	b = b[n:]
	// Each document costs at least 2 directory bytes beyond the first
	// (delta + count) plus 2 match bytes; a loose per-doc floor of one
	// byte bounds the allocation.
	if nDocs == 0 || nDocs > uint64(len(b)) {
		return nil, nil, nil, fmt.Errorf("index: block %d doc count %d exceeds payload", i, nDocs)
	}
	docs = make([]int, nDocs)
	nMatch = make([]int, nDocs)
	doc := info.FirstDoc
	for d := uint64(0); d < nDocs; d++ {
		if d > 0 {
			delta, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, nil, nil, fmt.Errorf("index: corrupt block %d doc delta", i)
			}
			b = b[n:]
			if delta == 0 || delta > MaxDocID {
				return nil, nil, nil, fmt.Errorf("index: block %d doc ids not strictly ascending", i)
			}
			doc += int(delta)
		}
		if doc > info.LastDoc {
			return nil, nil, nil, fmt.Errorf("index: block %d document %d outside its range", i, doc)
		}
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("index: corrupt block %d match count", i)
		}
		b = b[n:]
		// Every match costs at least 2 bytes in the match area.
		if count == 0 || count > uint64(info.Len)/2 {
			return nil, nil, nil, fmt.Errorf("index: block %d match count %d exceeds payload", i, count)
		}
		docs[d] = doc
		nMatch[d] = int(count)
	}
	if docs[0] != info.FirstDoc || docs[len(docs)-1] != info.LastDoc {
		return nil, nil, nil, fmt.Errorf("index: block %d document range disagrees with skip entry", i)
	}
	return docs, nMatch, b, nil
}

// DecodeBlock fully unpacks block i: the document ids and, aligned
// with them, each document's match list (subslices of one flat
// backing list, position-sorted with palette scores applied). Every
// invariant is validated, including that the skip entry's max index
// equals the maximum score index actually present — the check that
// keeps block-max pruning sound against hostile bytes.
func (bt *BlockTable) DecodeBlock(i int) (docs []int, lists []match.List, err error) {
	if bt.batch {
		return bt.decodeBlockBatch(i)
	}
	docs, nMatch, b, err := bt.decodeDir(i)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, c := range nMatch {
		total += c
	}
	if uint64(total) > uint64(len(b))/2 {
		return nil, nil, fmt.Errorf("index: block %d match total %d exceeds payload", i, total)
	}
	flat := make(match.List, 0, total)
	lists = make([]match.List, len(docs))
	maxSeen := 0
	for d := range docs {
		begin := len(flat)
		pos := 0
		for m := 0; m < nMatch[d]; m++ {
			pd, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, nil, fmt.Errorf("index: corrupt block %d position delta", i)
			}
			b = b[n:]
			if pd > MaxPosition {
				return nil, nil, fmt.Errorf("index: block %d position delta %d exceeds %d", i, pd, uint64(MaxPosition))
			}
			if m > 0 && pd == 0 {
				return nil, nil, fmt.Errorf("index: block %d positions not strictly ascending in doc %d", i, docs[d])
			}
			pos += int(pd)
			if pos > MaxPosition {
				return nil, nil, fmt.Errorf("index: block %d position %d exceeds %d", i, pos, int64(MaxPosition))
			}
			idx, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, nil, fmt.Errorf("index: corrupt block %d score index", i)
			}
			b = b[n:]
			if idx >= uint64(len(bt.Palette)) {
				return nil, nil, fmt.Errorf("index: block %d score index %d out of palette range", i, idx)
			}
			if int(idx) > maxSeen {
				maxSeen = int(idx)
			}
			flat = append(flat, match.Match{Loc: pos, Score: bt.Palette[idx]})
		}
		lists[d] = flat[begin:len(flat):len(flat)]
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("index: %d trailing bytes in block %d", len(b), i)
	}
	if maxSeen != bt.Infos[i].MaxIdx {
		return nil, nil, fmt.Errorf("index: block %d max index %d disagrees with content max %d",
			i, bt.Infos[i].MaxIdx, maxSeen)
	}
	return docs, lists, nil
}

// Validate fully decodes every block — the eager load-time gate, so
// corrupt or adversarial bytes fail at LoadCompact rather than at
// query time.
func (bt *BlockTable) Validate() error {
	if bt == nil {
		return nil
	}
	for i := range bt.Infos {
		if _, _, err := bt.DecodeBlock(i); err != nil {
			return err
		}
	}
	return nil
}

// BuildConceptBlocks computes a concept's block-partitioned posting
// buffer from the compressed postings: the same corpus-wide
// best-member-word-score-wins merge as the engine's flat decode, so a
// block-served query sees bitwise-identical match lists. The empty
// concept (no corpus occurrences) builds to nil.
func (c *Compact) BuildConceptBlocks(concept Concept) []byte {
	docs, lists := c.conceptDocLists(concept)
	return EncodeBlocks(docs, lists, 0)
}

// BuildConceptBlocksBatch is BuildConceptBlocks for the group-varint
// batched layout (batchdecode.go). ok is false when some value exceeds
// the uint32 the batch form can carry; the caller keeps the varint
// form then.
func (c *Compact) BuildConceptBlocksBatch(concept Concept) ([]byte, bool) {
	docs, lists := c.conceptDocLists(concept)
	return EncodeBlocksBatch(docs, lists, 0)
}

// conceptDocLists computes a concept's corpus-wide match data — the
// best-member-word-score-wins merge both block encoders pack.
func (c *Compact) conceptDocLists(concept Concept) ([]int, []match.List) {
	best := map[int]map[int]float64{}
	for word, score := range concept {
		for _, p := range c.Postings(word) {
			m := best[p.Doc]
			if m == nil {
				m = map[int]float64{}
				best[p.Doc] = m
			}
			if s, ok := m[p.Pos]; !ok || score > s {
				m[p.Pos] = score
			}
		}
	}
	docs := make([]int, 0, len(best))
	for d := range best {
		docs = append(docs, d)
	}
	sort.Ints(docs)
	lists := make([]match.List, len(docs))
	for i, d := range docs {
		l := make(match.List, 0, len(best[d]))
		for pos, s := range best[d] {
			l = append(l, match.Match{Loc: pos, Score: s})
		}
		l.Sort()
		lists[i] = l
	}
	return docs, lists
}

// AddConceptBlocks precomputes and registers a concept's
// block-partitioned postings, keyed by ConceptKey. Call it at build
// time, before the index starts serving queries: Compact is otherwise
// read-only and concurrent readers do not lock. Concepts with
// non-finite weights or no corpus occurrences are skipped (nothing to
// serve, and non-finite scores would poison every bound comparison).
//
// The buffer is stored in the group-varint batched layout
// (batchdecode.go) whenever the concept's values fit it, falling back
// to the per-integer varint layout otherwise; queries see identical
// match lists either way.
func (c *Compact) AddConceptBlocks(concept Concept) {
	c.addConceptBlocks(concept, 0, true)
}

// AddConceptBlocksSized is AddConceptBlocks with an explicit block
// size — a test and tuning hook; ≤ 0 means BlockSize. Unlike
// AddConceptBlocks it always stores the varint layout, so tests that
// poke varint buffers (and the corruption hooks in testhook.go) keep a
// stable target.
func (c *Compact) AddConceptBlocksSized(concept Concept, blockSize int) {
	c.addConceptBlocks(concept, blockSize, false)
}

// AddConceptBlocksBatchSized registers the batched layout with an
// explicit block size, reporting whether the batch form was used
// (false means the values did not fit uint32 and the varint form was
// stored instead).
func (c *Compact) AddConceptBlocksBatchSized(concept Concept, blockSize int) bool {
	return c.addConceptBlocks(concept, blockSize, true)
}

func (c *Compact) addConceptBlocks(concept Concept, blockSize int, preferBatch bool) bool {
	for _, s := range concept {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return false
		}
	}
	docs, lists := c.conceptDocLists(concept)
	if len(docs) == 0 {
		return false
	}
	key := ConceptKey(concept)
	if preferBatch {
		if buf, ok := EncodeBlocksBatch(docs, lists, blockSize); ok && buf != nil {
			if c.batch == nil {
				c.batch = make(map[uint64][]byte)
			}
			c.batch[key] = buf
			delete(c.blocks, key)
			return true
		}
	}
	buf := EncodeBlocks(docs, lists, blockSize)
	if buf == nil {
		return false
	}
	if c.blocks == nil {
		c.blocks = make(map[uint64][]byte)
	}
	c.blocks[key] = buf
	delete(c.batch, key)
	return false
}

// ConceptBlocks returns a concept's registered block table — batched
// or varint, whichever layout the concept was registered with — or
// ok=false when the concept was never registered. Like
// Compact.Postings, a decode failure indicates memory corruption
// (LoadCompact validates every buffer eagerly) and fails loudly.
func (c *Compact) ConceptBlocks(concept Concept) (*BlockTable, bool) {
	key := ConceptKey(concept)
	if b, ok := c.batch[key]; ok {
		bt, err := DecodeBlocksBatch(b)
		if err != nil || bt == nil {
			panic(fmt.Sprintf("index: corrupt batched concept blocks: %v", err))
		}
		return bt, true
	}
	b, ok := c.blocks[key]
	if !ok {
		return nil, false
	}
	bt, err := DecodeBlocks(b)
	if err != nil || bt == nil {
		panic(fmt.Sprintf("index: corrupt concept blocks: %v", err))
	}
	return bt, true
}

// ConceptBlocksCount returns the number of registered block tables
// across both layouts.
func (c *Compact) ConceptBlocksCount() int { return len(c.blocks) + len(c.batch) }
