package index

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadFileRoundTrip(t *testing.T) {
	c := framedTestIndex(t)
	path := filepath.Join(t.TempDir(), "corpus.idx")
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Docs() != c.Docs() || loaded.ConceptMetaCount() != c.ConceptMetaCount() {
		t.Fatalf("round trip lost data: docs %d/%d meta %d/%d",
			loaded.Docs(), c.Docs(), loaded.ConceptMetaCount(), c.ConceptMetaCount())
	}
	for _, word := range []string{"lenovo", "nba", "basketball"} {
		a, b := c.Postings(word), loaded.Postings(word)
		if len(a) != len(b) {
			t.Fatalf("%q: loaded %v, original %v", word, b, a)
		}
	}
}

// TestSaveFileLeavesNoTempFiles pins the cleanup contract: after a
// successful save the directory holds exactly the target file.
func TestSaveFileLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.idx")
	c := framedTestIndex(t)
	for i := 0; i < 3; i++ { // overwrites must be as clean as creates
		if err := c.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "corpus.idx" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after save: %v", names)
	}
}

// TestSaveFileOverwriteIsAtomic simulates the crash-safety property a
// test can observe without killing the process: saving over an
// existing index either fully replaces it or (on failure) leaves the
// old file intact — here, a save into an unwritable directory.
func TestSaveFileOverwriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.idx")
	old := framedTestIndex(t)
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() != 0 { // root ignores directory permissions
		if err := os.Chmod(dir, 0o500); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(dir, 0o700)
		ix := New()
		ix.AddText(0, "different corpus entirely")
		if err := ix.Compact().SaveFile(path); err == nil {
			t.Fatal("save into read-only directory succeeded")
		}
		os.Chmod(dir, 0o700)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("old index damaged by failed save: %v", err)
	}
	if loaded.Docs() != old.Docs() {
		t.Fatalf("old index replaced by failed save: docs %d, want %d", loaded.Docs(), old.Docs())
	}
}

// TestLoadFileRejectsTruncation is the torn-write acceptance test:
// every prefix of a saved index must be rejected with ErrCorrupt, not
// served as a smaller index.
func TestLoadFileRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.idx")
	if err := framedTestIndex(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.idx")
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(torn, full[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(torn)
		if err == nil {
			t.Fatalf("truncation at %d loaded without error", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// TestLoadFileRejectsBitRot flips one bit at several offsets of a
// saved index; each must fail with ErrCorrupt. (The exhaustive sweep
// lives in TestFramedRejectsEveryBitFlip; this pins the file layer.)
func TestLoadFileRejectsBitRot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.idx")
	if err := framedTestIndex(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotten := filepath.Join(dir, "rotten.idx")
	for _, at := range []int{0, 4, 5, len(full) / 2, len(full) - 1} {
		mut := append([]byte(nil), full...)
		mut[at] ^= 0x10
		if err := os.WriteFile(rotten, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFile(rotten)
		if err == nil {
			t.Fatalf("bit rot at byte %d loaded without error", at)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit rot at %d: error %v does not wrap ErrCorrupt", at, err)
		}
	}
}

// TestLoadFileRejectsLegacyBytes pins that the file layer demands the
// framed format: a legacy (unframed) buffer on disk is refused, since
// a file without checksums cannot be trusted against bit-rot.
func TestLoadFileRejectsLegacyBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.idx")
	if err := os.WriteFile(path, framedTestIndex(t).marshalLegacy(), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "missing magic") {
		t.Fatalf("legacy file: err = %v", err)
	}
}

func TestLoadFileMissing(t *testing.T) {
	_, err := LoadFile(filepath.Join(t.TempDir(), "nope.idx"))
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file: err = %v (must be an I/O error, not corruption)", err)
	}
}
