package index

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// Codec-level differential: a buffer produced by EncodeBlocksBatch
// must decode to exactly the BlockTable its varint twin does — same
// palette, same skip entries, same directories, same match lists, bit
// for bit — across block sizes that split documents one per block,
// mid-block, and all in one block.
func TestBatchRoundTripMatchesVarintDecode(t *testing.T) {
	c := blocksTestCompact(t, 300, 1)
	concept := Concept{text.Stem("river"): 1.0, text.Stem("bank"): 0.5, text.Stem("water"): 0.25}
	docs, lists := flatConceptMatches(c, concept)
	for _, size := range []int{1, 7, 64, 0} {
		buf, ok := EncodeBlocksBatch(docs, lists, size)
		if !ok {
			t.Fatalf("size %d: batch encode refused an ordinary corpus", size)
		}
		bb, err := DecodeBlocksBatch(buf)
		if err != nil {
			t.Fatalf("size %d: DecodeBlocksBatch: %v", size, err)
		}
		bv, err := DecodeBlocks(EncodeBlocks(docs, lists, size))
		if err != nil {
			t.Fatalf("size %d: DecodeBlocks: %v", size, err)
		}
		if len(bb.Palette) != len(bv.Palette) {
			t.Fatalf("size %d: palette %d entries (batch) vs %d (varint)", size, len(bb.Palette), len(bv.Palette))
		}
		for i := range bb.Palette {
			if bb.Palette[i] != bv.Palette[i] {
				t.Fatalf("size %d: palette entry %d differs: %v vs %v", size, i, bb.Palette[i], bv.Palette[i])
			}
		}
		if bb.NumBlocks() != bv.NumBlocks() {
			t.Fatalf("size %d: %d blocks (batch) vs %d (varint)", size, bb.NumBlocks(), bv.NumBlocks())
		}
		for i := 0; i < bb.NumBlocks(); i++ {
			ib, iv := bb.Infos[i], bv.Infos[i]
			if ib.FirstDoc != iv.FirstDoc || ib.LastDoc != iv.LastDoc ||
				ib.MaxIdx != iv.MaxIdx || ib.MaxScore != iv.MaxScore {
				t.Fatalf("size %d: block %d skip entry %+v (batch) vs %+v (varint)", size, i, ib, iv)
			}
			dirB, err := bb.DecodeDocs(i)
			if err != nil {
				t.Fatalf("size %d: batch DecodeDocs(%d): %v", size, i, err)
			}
			dirV, err := bv.DecodeDocs(i)
			if err != nil {
				t.Fatalf("size %d: varint DecodeDocs(%d): %v", size, i, err)
			}
			if len(dirB) != len(dirV) {
				t.Fatalf("size %d: block %d directory sizes differ", size, i)
			}
			for j := range dirB {
				if dirB[j] != dirV[j] {
					t.Fatalf("size %d: block %d directory doc %d: %d vs %d", size, i, j, dirB[j], dirV[j])
				}
			}
			db, lb, err := bb.DecodeBlock(i)
			if err != nil {
				t.Fatalf("size %d: batch DecodeBlock(%d): %v", size, i, err)
			}
			dv, lv, err := bv.DecodeBlock(i)
			if err != nil {
				t.Fatalf("size %d: varint DecodeBlock(%d): %v", size, i, err)
			}
			if len(db) != len(dv) {
				t.Fatalf("size %d: block %d doc counts differ", size, i)
			}
			for j := range db {
				if db[j] != dv[j] {
					t.Fatalf("size %d: block %d doc %d: %d vs %d", size, i, j, db[j], dv[j])
				}
				if len(lb[j]) != len(lv[j]) {
					t.Fatalf("size %d: block %d doc %d list sizes differ", size, i, db[j])
				}
				for m := range lb[j] {
					if lb[j][m] != lv[j][m] {
						t.Fatalf("size %d: block %d doc %d match %d: %+v vs %+v",
							size, i, db[j], m, lb[j][m], lv[j][m])
					}
				}
			}
		}
	}
}

// Group-varint values cap at uint32; any input needing more must make
// EncodeBlocksBatch report ok=false (varint fallback), never emit a
// truncated buffer.
func TestEncodeBlocksBatchOverflowFallsBack(t *testing.T) {
	cases := []struct {
		name  string
		docs  []int
		lists []match.List
	}{
		{"doc delta", []int{0, math.MaxUint32 + 10},
			[]match.List{{{Loc: 1, Score: 1}}, {{Loc: 1, Score: 1}}}},
		{"first gap", []int{math.MaxUint32 + 10},
			[]match.List{{{Loc: 1, Score: 1}}}},
		{"position delta", []int{0},
			[]match.List{{{Loc: math.MaxUint32 + 10, Score: 1}}}},
	}
	for _, tc := range cases {
		if buf, ok := EncodeBlocksBatch(tc.docs, tc.lists, 16); ok || buf != nil {
			t.Errorf("%s: overflowing input batch-encoded (ok=%v, %d bytes)", tc.name, ok, len(buf))
		}
		// The varint layout has no such cap: the same input must encode
		// and decode there, which is what makes the fallback lossless.
		bt, err := DecodeBlocks(EncodeBlocks(tc.docs, tc.lists, 16))
		if err != nil || bt.Validate() != nil {
			t.Errorf("%s: varint fallback cannot represent the input: %v", tc.name, err)
		}
	}
	if buf, ok := EncodeBlocksBatch(nil, nil, 16); !ok || buf != nil {
		t.Errorf("empty input: got (%v, %v), want (nil, true)", buf, ok)
	}
}

// AddConceptBlocks must prefer the batched layout when the concept's
// values fit uint32 — which any corpus within MaxUint32 documents and
// positions does — while AddConceptBlocksSized stays varint-only for
// the tests and corruption hooks that poke varint buffers.
func TestAddConceptBlocksPrefersBatch(t *testing.T) {
	c := blocksTestCompact(t, 60, 2)
	concept := Concept{text.Stem("river"): 1.0, text.Stem("delta"): 0.5}
	c.AddConceptBlocks(concept)
	if _, ok := c.batch[ConceptKey(concept)]; !ok {
		t.Fatal("AddConceptBlocks did not store the batched layout")
	}
	if _, ok := c.blocks[ConceptKey(concept)]; ok {
		t.Fatal("AddConceptBlocks stored both layouts for one concept")
	}
	other := Concept{text.Stem("stone"): 1.0}
	c.AddConceptBlocksSized(other, 8)
	if _, ok := c.batch[ConceptKey(other)]; ok {
		t.Fatal("AddConceptBlocksSized stored the batched layout")
	}
	if !c.AddConceptBlocksBatchSized(other, 8) {
		t.Fatal("AddConceptBlocksBatchSized reported fallback on an ordinary concept")
	}
	bt, ok := c.ConceptBlocks(concept)
	if !ok || bt.Validate() != nil {
		t.Fatalf("batched concept not servable: ok=%v", ok)
	}
}

// Hostile-bytes discipline for the batched decoder, mirroring
// TestDecodeBlocksRejectsHostileBytes: truncations at every length,
// giant counts, NaN palette bits, and a skip entry lying about its
// block's max score index must all be rejected — never panic, never
// accepted.
func TestDecodeBlocksBatchRejectsHostileBytes(t *testing.T) {
	valid, ok := EncodeBlocksBatch(
		[]int{1, 2, 5},
		[]match.List{
			{{Loc: 3, Score: 0.5}, {Loc: 7, Score: 1.0}},
			{{Loc: 1, Score: 0.5}},
			{{Loc: 2, Score: 1.0}},
		}, 2)
	if !ok {
		t.Fatal("batch encode refused the valid input")
	}
	if bt, err := DecodeBlocksBatch(valid); err != nil || bt.Validate() != nil {
		t.Fatalf("valid buffer rejected: %v", err)
	}

	reject := func(name string, b []byte) {
		t.Helper()
		bt, err := DecodeBlocksBatch(b)
		if err != nil {
			return
		}
		if err := bt.Validate(); err == nil {
			t.Errorf("%s: hostile buffer accepted", name)
		}
	}

	for i := 1; i < len(valid); i++ {
		reject("truncated", valid[:i])
	}
	reject("giant palette count", binary.AppendUvarint(nil, math.MaxUint64))
	reject("nan palette", append(binary.AppendUvarint(nil, 1),
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))...))
	giantBlocks := binary.AppendUvarint(nil, 1)
	giantBlocks = binary.LittleEndian.AppendUint64(giantBlocks, math.Float64bits(1))
	reject("giant block count", binary.AppendUvarint(giantBlocks, math.MaxUint64))

	// Lying block max: skip entry claims maxIdx 0 while the match area
	// uses palette index 1. Accepting it would understate a block-max
	// bound and let pruning drop real answers.
	var payload []byte
	payload = binary.AppendUvarint(payload, 1)              // one doc
	payload = appendGroups(payload, []uint32{1})            // directory: one match
	payload = appendGroups(payload, []uint32{2, 1})         // match: pos 2, scoreIdx 1
	lie := binary.AppendUvarint(nil, 2)                     // palette: 0.5, 1.0
	lie = binary.LittleEndian.AppendUint64(lie, math.Float64bits(0.5))
	lie = binary.LittleEndian.AppendUint64(lie, math.Float64bits(1.0))
	lie = binary.AppendUvarint(lie, 1) // one block
	lie = appendGroups(lie, []uint32{3, 0, uint32(len(payload)), 0})
	reject("lying block max", append(lie, payload...))

	// The honest twin (maxIdx 1) must decode.
	honest := binary.AppendUvarint(nil, 2)
	honest = binary.LittleEndian.AppendUint64(honest, math.Float64bits(0.5))
	honest = binary.LittleEndian.AppendUint64(honest, math.Float64bits(1.0))
	honest = binary.AppendUvarint(honest, 1)
	honest = appendGroups(honest, []uint32{3, 0, uint32(len(payload)), 1})
	bt, err := DecodeBlocksBatch(append(honest, payload...))
	if err != nil || bt.Validate() != nil {
		t.Fatalf("honest crafted buffer rejected: %v", err)
	}
}

// Every single-bit corruption of a registered batch buffer must either
// be rejected or decode to a still-valid table — never panic, never
// read out of bounds (the -race build also catches unsafe sharing).
func TestDecodeBlocksBatchRejectsEveryBitFlip(t *testing.T) {
	c := blocksTestCompact(t, 40, 3)
	concept := Concept{text.Stem("river"): 1.0, text.Stem("delta"): 0.5}
	if !c.AddConceptBlocksBatchSized(concept, 8) {
		t.Fatal("batch layout not registered")
	}
	valid := c.batch[ConceptKey(concept)]
	if len(valid) == 0 {
		t.Fatal("no batch buffer to mutate")
	}
	for i := 0; i < len(valid)*8; i++ {
		mut := make([]byte, len(valid))
		copy(mut, valid)
		mut[i/8] ^= 1 << (i % 8)
		bt, err := DecodeBlocksBatch(mut)
		if err != nil {
			continue
		}
		// A flip may survive decode (e.g. toggling a score bit keeps a
		// coherent buffer) — then the result must still be structurally
		// valid end to end.
		if err := bt.Validate(); err != nil {
			continue
		}
	}
}

// decodeGroups' two paths — the branch-free ≥17-byte fast path and the
// byte-checked tail — must agree on every stream, including streams
// short enough that the fast path never runs.
func TestDecodeGroupsPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(23)
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = uint32(rng.Uint64() >> uint(32+rng.Intn(25)))
		}
		enc := appendGroups(nil, vals)
		// Padded: the fast path can run full groups. Unpadded: the tail
		// loop must produce the same values near the end of the buffer.
		padded := append(append([]byte{}, enc...), make([]byte, 32)...)
		got := make([]uint32, n)
		rest, ok := decodeGroups(padded, got)
		if !ok || len(rest) != 32 {
			t.Fatalf("trial %d: padded decode failed (ok=%v rest=%d)", trial, ok, len(rest))
		}
		tight := make([]uint32, n)
		rest, ok = decodeGroups(enc, tight)
		if !ok || len(rest) != 0 {
			t.Fatalf("trial %d: tight decode failed (ok=%v rest=%d)", trial, ok, len(rest))
		}
		for i := range vals {
			if got[i] != vals[i] || tight[i] != vals[i] {
				t.Fatalf("trial %d: value %d decoded %d (padded) / %d (tight), want %d",
					trial, i, got[i], tight[i], vals[i])
			}
		}
	}
}

// The persisted form: an index whose concepts use the batched layout
// must round-trip through Marshal/LoadCompact with the layout — and
// the decoded content — intact, a varint-only index must not grow a
// batch section, and the legacy unframed layout must still load.
func TestPersistBatchSectionRoundTrip(t *testing.T) {
	c := blocksTestCompact(t, 80, 5)
	batched := Concept{text.Stem("river"): 1.0, text.Stem("bank"): 0.5}
	varint := Concept{text.Stem("stone"): 0.75}
	if !c.AddConceptBlocksBatchSized(batched, 8) {
		t.Fatal("batch layout not registered")
	}
	c.AddConceptBlocksSized(varint, 8)

	loaded, err := LoadCompact(c.Marshal())
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if got, want := loaded.ConceptBlocksCount(), c.ConceptBlocksCount(); got != want {
		t.Fatalf("round trip changed block-table count: %d vs %d", got, want)
	}
	if _, ok := loaded.batch[ConceptKey(batched)]; !ok {
		t.Fatal("batched layout lost in round trip")
	}
	if _, ok := loaded.blocks[ConceptKey(varint)]; !ok {
		t.Fatal("varint layout lost in round trip")
	}
	for _, concept := range []Concept{batched, varint} {
		want, ok := c.ConceptBlocks(concept)
		if !ok {
			t.Fatal("source concept not servable")
		}
		got, ok := loaded.ConceptBlocks(concept)
		if !ok {
			t.Fatal("loaded concept not servable")
		}
		if got.NumBlocks() != want.NumBlocks() {
			t.Fatalf("block count changed: %d vs %d", got.NumBlocks(), want.NumBlocks())
		}
		for i := 0; i < want.NumBlocks(); i++ {
			dw, lw, err := want.DecodeBlock(i)
			if err != nil {
				t.Fatal(err)
			}
			dg, lg, err := got.DecodeBlock(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(dw) != len(dg) {
				t.Fatalf("block %d doc count changed", i)
			}
			for j := range dw {
				if dw[j] != dg[j] || len(lw[j]) != len(lg[j]) {
					t.Fatalf("block %d doc %d changed", i, j)
				}
				for m := range lw[j] {
					if lw[j][m] != lg[j][m] {
						t.Fatalf("block %d doc %d match %d changed", i, j, m)
					}
				}
			}
		}
	}

	// A varint-only index must serialize without a batch section — the
	// bytes older readers understood.
	old := blocksTestCompact(t, 30, 6)
	old.AddConceptBlocksSized(varint, 8)
	if _, err := LoadCompact(old.Marshal()); err != nil {
		t.Fatalf("varint-only round trip failed: %v", err)
	}
	if len(old.batch) != 0 {
		t.Fatal("varint-only index grew a batch map")
	}
	// And the pre-framing legacy layout must still load (no batch, no
	// blocks — postings and meta only).
	if _, err := LoadCompact(c.marshalLegacy()); err != nil {
		t.Fatalf("legacy layout rejected: %v", err)
	}
}
