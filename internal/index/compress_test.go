package index

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][]Posting{
		nil,
		{{Doc: 0, Pos: 0}},
		{{Doc: 0, Pos: 0}, {Doc: 0, Pos: 1}, {Doc: 0, Pos: 100}},
		{{Doc: 3, Pos: 7}, {Doc: 3, Pos: 9}, {Doc: 12, Pos: 0}, {Doc: 500, Pos: 499}},
	}
	for _, ps := range cases {
		got, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			t.Fatalf("round trip of %v: %v", ps, err)
		}
		if len(got) != len(ps) {
			t.Fatalf("round trip of %v returned %v", ps, got)
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("round trip of %v returned %v", ps, got)
			}
		}
	}
}

// Property: encode∘decode is the identity on any sorted posting list.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := make([]Posting, int(n))
		for i := range ps {
			ps[i] = Posting{Doc: rng.Intn(50), Pos: rng.Intn(1000)}
		}
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Doc != ps[j].Doc {
				return ps[i].Doc < ps[j].Doc
			}
			return ps[i].Pos < ps[j].Pos
		})
		// Deduplicate identical (doc,pos) pairs — deltas of zero are
		// legal but equality comparison needs unique entries.
		uniq := ps[:0]
		for i, p := range ps {
			if i == 0 || p != ps[i-1] {
				uniq = append(uniq, p)
			}
		}
		got, err := DecodePostings(EncodePostings(uniq))
		if err != nil || len(got) != len(uniq) {
			return false
		}
		for i := range uniq {
			if got[i] != uniq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	valid := EncodePostings([]Posting{{Doc: 1, Pos: 2}, {Doc: 1, Pos: 9}})
	// Truncations must error, not panic or return garbage silently.
	for cut := 1; cut < len(valid); cut++ {
		if _, err := DecodePostings(valid[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	// Trailing garbage must error.
	if _, err := DecodePostings(append(append([]byte{}, valid...), 0x1)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}

// TestDecodePostingsRejectsOverflowingDeltas locks in the fix for the
// delta-accumulation overflow: huge doc or position deltas used to
// wrap the int accumulators, yielding corrupt (out-of-order, negative)
// postings instead of an error.
func TestDecodePostingsRejectsOverflowingDeltas(t *testing.T) {
	craftDoc := func(delta uint64) []byte {
		b := binary.AppendUvarint(nil, 1)  // #docs
		b = binary.AppendUvarint(b, delta) // doc delta
		b = binary.AppendUvarint(b, 1)     // #positions
		return binary.AppendUvarint(b, 0)  // position delta
	}
	craftPos := func(pd uint64) []byte {
		b := binary.AppendUvarint(nil, 1)
		b = binary.AppendUvarint(b, 0)
		b = binary.AppendUvarint(b, 1)
		return binary.AppendUvarint(b, pd)
	}
	for _, delta := range []uint64{math.MaxUint64, 1 << 63, MaxDocID + 1} {
		if ps, err := DecodePostings(craftDoc(delta)); err == nil {
			t.Errorf("doc delta %d decoded without error: %v", delta, ps)
		}
		if ps, err := DecodePostings(craftPos(delta)); err == nil {
			t.Errorf("position delta %d decoded without error: %v", delta, ps)
		}
	}
	// Two in-range doc deltas whose sum is out of range.
	b := binary.AppendUvarint(nil, 2)
	for i := 0; i < 2; i++ {
		b = binary.AppendUvarint(b, MaxDocID) // doc delta
		b = binary.AppendUvarint(b, 1)        // #positions
		b = binary.AppendUvarint(b, 0)        // position delta
	}
	if ps, err := DecodePostings(b); err == nil {
		t.Errorf("accumulated doc id past MaxDocID decoded without error: %v", ps)
	}
	// A repeated doc run that restarts positions out of order must be
	// rejected: the output would no longer be (doc, pos)-sorted.
	b = binary.AppendUvarint(nil, 2)
	b = binary.AppendUvarint(b, 5)  // doc 5
	b = binary.AppendUvarint(b, 1)  // #positions
	b = binary.AppendUvarint(b, 10) // pos 10
	b = binary.AppendUvarint(b, 0)  // doc 5 again
	b = binary.AppendUvarint(b, 1)  // #positions
	b = binary.AppendUvarint(b, 3)  // pos 3 < 10
	if ps, err := DecodePostings(b); err == nil {
		t.Errorf("out-of-order repeated-doc run decoded without error: %v", ps)
	}
	// The maximum legal posting still round-trips.
	ok := EncodePostings([]Posting{{Doc: MaxDocID, Pos: MaxPosition}})
	if _, err := DecodePostings(ok); err != nil {
		t.Errorf("posting at bound failed to decode: %v", err)
	}
}

func TestCompactMatchesIndex(t *testing.T) {
	ix := New()
	docs := []string{
		"lenovo partners with the nba in a new deal",
		"dell announced a partnership with the olympics",
		"lenovo again lenovo and dell in beijing",
	}
	for i, d := range docs {
		ix.AddText(i, d)
	}
	c := ix.Compact()
	if c.Docs() != ix.Docs() {
		t.Errorf("Docs: compact %d, index %d", c.Docs(), ix.Docs())
	}
	for _, word := range []string{"lenovo", "dell", "partnership", "nba", "missing"} {
		a, b := ix.Postings(word), c.Postings(word)
		if len(a) != len(b) {
			t.Fatalf("%q: compact %v, index %v", word, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: compact %v, index %v", word, b, a)
			}
		}
	}
	concept := Concept{"lenovo": 0.9, "dell": 0.8}
	for doc := 0; doc < 3; doc++ {
		a, b := ix.ConceptList(doc, concept), c.ConceptList(doc, concept)
		if len(a) != len(b) {
			t.Fatalf("doc %d: concept lists differ: %v vs %v", doc, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("doc %d: concept lists differ: %v vs %v", doc, a, b)
			}
		}
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	ix := New()
	// A realistic posting distribution: a frequent word across many
	// documents.
	for d := 0; d < 200; d++ {
		body := ""
		for k := 0; k < 30; k++ {
			body += "conference filler words here and more conference talk "
		}
		ix.AddText(d, body)
	}
	c := ix.Compact()
	raw := 0
	for _, word := range []string{"conference", "filler", "words", "here", "and", "more", "talk"} {
		raw += len(ix.Postings(word)) * 16 // two machine words per posting
	}
	if c.Bytes() >= raw/3 {
		t.Errorf("compressed %d bytes vs raw %d: expected at least 3x compression", c.Bytes(), raw)
	}
}
