package index

import "bestjoin/internal/text"

// CorruptPostingsForTest overwrites the compressed posting bytes of
// word with an undecodable buffer, simulating in-memory corruption of
// a live index. Compact.Postings panics on such bytes by design;
// robustness tests in other packages use this hook to prove the query
// engine contains that panic (degraded result, process survives).
// Not for production use.
func CorruptPostingsForTest(c *Compact, word string) {
	// A 10-byte varint encoding an absurd posting count followed by no
	// payload: rejected by every DecodePostings validation layer.
	c.postings[text.Stem(word)] = []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
	}
}
