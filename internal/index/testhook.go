package index

import "bestjoin/internal/text"

// CorruptPostingsForTest overwrites the compressed posting bytes of
// word with an undecodable buffer, simulating in-memory corruption of
// a live index. Compact.Postings panics on such bytes by design;
// robustness tests in other packages use this hook to prove the query
// engine contains that panic (degraded result, process survives).
// Not for production use.
func CorruptPostingsForTest(c *Compact, word string) {
	// A 10-byte varint encoding an absurd posting count followed by no
	// payload: rejected by every DecodePostings validation layer.
	c.postings[text.Stem(word)] = []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
	}
}

// CorruptConceptMetaForTest overwrites a concept's registered doc-max
// metadata with bytes DecodeDocMax rejects, so ConceptMeta panics:
// the in-memory corruption the engine's metadata lookup must contain.
// Not for production use.
func CorruptConceptMetaForTest(c *Compact, concept Concept) {
	c.meta[ConceptKey(concept)] = []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
	}
}

// CorruptConceptBlocksForTest replaces a concept's registered block
// buffer — batched or varint, whichever layout it was registered with
// — with bytes both decoders reject, so ConceptBlocks panics: the
// in-memory corruption the engine's block-table lookup must contain.
// Not for production use.
func CorruptConceptBlocksForTest(c *Compact, concept Concept) {
	garbage := []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
	}
	key := ConceptKey(concept)
	if _, ok := c.batch[key]; ok {
		c.batch[key] = garbage
		return
	}
	c.blocks[key] = garbage
}

// CorruptConceptPairsForTest overwrites a registered pair list with
// bytes DecodePairs rejects, so ConceptPairs panics: the in-memory
// corruption the engine's pair lookup must contain by falling back to
// the kernel path. Not for production use.
func CorruptConceptPairsForTest(c *Compact, a, b Concept, spec uint64) {
	c.pairs[MakePairKey(ConceptKey(a), ConceptKey(b), spec)] = []byte{
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01,
	}
}

// CorruptConceptPairPayloadForTest overwrites the payload area of a
// registered pair list while leaving the skip table intact:
// ConceptPairs still succeeds, but per-block decodes fail — the
// mid-serve failure path, which must abandon the pair serve and fall
// back to the kernel path. Not for production use.
func CorruptConceptPairPayloadForTest(c *Compact, a, b Concept, spec uint64) {
	key := MakePairKey(ConceptKey(a), ConceptKey(b), spec)
	buf := c.pairs[key]
	pt, err := DecodePairs(buf)
	if err != nil || pt == nil {
		panic("CorruptConceptPairPayloadForTest: buffer must start valid")
	}
	last := pt.Infos[len(pt.Infos)-1]
	for i := len(buf) - (last.Off + last.Len); i < len(buf); i++ {
		buf[i] = 0xff
	}
}

// CorruptConceptBlockPayloadForTest overwrites the payload area of a
// concept's registered block buffer while leaving the palette and
// skip table intact: ConceptBlocks still succeeds, but any per-block
// directory or match-area decode fails. Exercises the engine's lazy
// per-block failure paths for whichever layout the concept was
// registered with. Not for production use.
func CorruptConceptBlockPayloadForTest(c *Compact, concept Concept) {
	key := ConceptKey(concept)
	b, bt := c.blocks[key], (*BlockTable)(nil)
	var err error
	if bb, ok := c.batch[key]; ok {
		b = bb
		bt, err = DecodeBlocksBatch(bb)
	} else {
		bt, err = DecodeBlocks(b)
	}
	if err != nil || bt == nil {
		panic("CorruptConceptBlockPayloadForTest: buffer must start valid")
	}
	last := bt.Infos[len(bt.Infos)-1]
	for i := len(b) - (last.Off + last.Len); i < len(b); i++ {
		b[i] = 0xff
	}
}
