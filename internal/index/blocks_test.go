package index

import (
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// blocksTestCompact builds a small corpus with enough documents to
// span several blocks at the given block size.
func blocksTestCompact(t *testing.T, nDocs int, seed int64) *Compact {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"river", "bank", "flood", "water", "delta", "stone", "bridge", "valley"}
	ix := New()
	for d := 0; d < nDocs; d++ {
		n := 3 + rng.Intn(10)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		ix.AddText(d, strings.Join(words, " "))
	}
	return ix.Compact()
}

// flatConceptMatches replicates the corpus-wide best-score-wins merge
// the engine's flat decode performs: the ground truth block decoding
// must reproduce bitwise.
func flatConceptMatches(c *Compact, concept Concept) (docs []int, lists []match.List) {
	for d := 0; d < c.Docs(); d++ {
		if l := c.ConceptList(d, concept); len(l) > 0 {
			docs = append(docs, d)
			lists = append(lists, l)
		}
	}
	return docs, lists
}

func TestBlocksRoundTripMatchesFlatDecode(t *testing.T) {
	c := blocksTestCompact(t, 300, 1)
	concept := Concept{text.Stem("river"): 1.0, text.Stem("bank"): 0.5, text.Stem("water"): 0.25}
	for _, size := range []int{1, 7, 64, 0} {
		c.AddConceptBlocksSized(concept, size)
		bt, ok := c.ConceptBlocks(concept)
		if !ok {
			t.Fatalf("size %d: concept blocks not registered", size)
		}
		wantDocs, wantLists := flatConceptMatches(c, concept)
		var gotDocs []int
		var gotLists []match.List
		prevLast := -1
		for i := 0; i < bt.NumBlocks(); i++ {
			info := bt.Infos[i]
			if info.FirstDoc <= prevLast {
				t.Fatalf("size %d: block %d overlaps predecessor", size, i)
			}
			prevLast = info.LastDoc
			docs, lists, err := bt.DecodeBlock(i)
			if err != nil {
				t.Fatalf("size %d: DecodeBlock(%d): %v", size, i, err)
			}
			dirDocs, err := bt.DecodeDocs(i)
			if err != nil {
				t.Fatalf("size %d: DecodeDocs(%d): %v", size, i, err)
			}
			if !reflect.DeepEqual(docs, dirDocs) {
				t.Fatalf("size %d: block %d directory docs disagree with full decode", size, i)
			}
			// Block max must equal the true max over the block's matches.
			max := math.Inf(-1)
			for _, l := range lists {
				for _, m := range l {
					if m.Score > max {
						max = m.Score
					}
				}
			}
			if max != info.MaxScore {
				t.Fatalf("size %d: block %d MaxScore = %v, content max %v", size, i, info.MaxScore, max)
			}
			gotDocs = append(gotDocs, docs...)
			gotLists = append(gotLists, lists...)
		}
		if !reflect.DeepEqual(gotDocs, wantDocs) {
			t.Fatalf("size %d: docs differ\n got %v\nwant %v", size, gotDocs, wantDocs)
		}
		if len(gotLists) != len(wantLists) {
			t.Fatalf("size %d: list count %d want %d", size, len(gotLists), len(wantLists))
		}
		for i := range gotLists {
			if !reflect.DeepEqual(gotLists[i], wantLists[i]) {
				t.Fatalf("size %d: doc %d match list differs\n got %v\nwant %v",
					size, gotDocs[i], gotLists[i], wantLists[i])
			}
		}
	}
}

func TestBlocksFindBlock(t *testing.T) {
	buf := EncodeBlocks(
		[]int{2, 3, 10, 11, 40},
		[]match.List{
			{{Loc: 1, Score: 1}}, {{Loc: 2, Score: 1}}, {{Loc: 3, Score: 2}},
			{{Loc: 4, Score: 1}}, {{Loc: 5, Score: 2}},
		}, 2)
	bt, err := DecodeBlocks(buf)
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d, want 3", bt.NumBlocks())
	}
	for doc, want := range map[int]int{2: 0, 3: 0, 10: 1, 11: 1, 40: 2} {
		if got := bt.FindBlock(doc); got != want {
			t.Errorf("FindBlock(%d) = %d, want %d", doc, got, want)
		}
	}
	// Gaps and out-of-range: no block claims these documents. Doc 5
	// falls between block 0 (2–3) and block 1 (10–11).
	for _, doc := range []int{0, 1, 5, 12, 41, 1000} {
		if got := bt.FindBlock(doc); got != -1 {
			t.Errorf("FindBlock(%d) = %d, want -1", doc, got)
		}
	}
}

func TestEncodeBlocksEmpty(t *testing.T) {
	if b := EncodeBlocks(nil, nil, 0); b != nil {
		t.Fatalf("EncodeBlocks(nil) = %v, want nil", b)
	}
	bt, err := DecodeBlocks(nil)
	if err != nil || bt != nil {
		t.Fatalf("DecodeBlocks(nil) = %v, %v; want nil, nil", bt, err)
	}
}

func TestAddConceptBlocksSkipsDegenerate(t *testing.T) {
	c := blocksTestCompact(t, 20, 2)
	c.AddConceptBlocks(Concept{text.Stem("river"): math.NaN()})
	c.AddConceptBlocks(Concept{text.Stem("river"): math.Inf(1)})
	c.AddConceptBlocks(Concept{"zzz-absent-stem": 1.0})
	if n := c.ConceptBlocksCount(); n != 0 {
		t.Fatalf("ConceptBlocksCount = %d, want 0", n)
	}
	if _, ok := c.ConceptBlocks(Concept{text.Stem("river"): math.NaN()}); ok {
		t.Fatal("ConceptBlocks returned ok for unregistered concept")
	}
}

// TestDecodeBlocksRejectsHostileBytes exercises the bounded-decode
// contract on crafted corruption, including the soundness-critical
// lying-block-max case.
func TestDecodeBlocksRejectsHostileBytes(t *testing.T) {
	valid := EncodeBlocks(
		[]int{1, 2, 5},
		[]match.List{
			{{Loc: 3, Score: 0.5}, {Loc: 7, Score: 1.0}},
			{{Loc: 1, Score: 0.5}},
			{{Loc: 2, Score: 1.0}},
		}, 2)
	if _, err := DecodeBlocks(valid); err != nil {
		t.Fatalf("valid buffer rejected: %v", err)
	}

	reject := func(name string, b []byte) {
		t.Helper()
		bt, err := DecodeBlocks(b)
		if err != nil {
			return
		}
		if err := bt.Validate(); err == nil {
			t.Errorf("%s: hostile buffer accepted", name)
		}
	}

	// Truncation at every length must fail somewhere in decode or
	// validate, never panic or read out of range.
	for i := 1; i < len(valid); i++ {
		reject("truncated", valid[:i])
	}
	reject("giant palette count", binary.AppendUvarint(nil, math.MaxUint64))
	reject("nan palette", append(binary.AppendUvarint(nil, 1),
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))...))

	// Lying block max: a block whose skip entry claims maxIdx 0 while
	// the content uses palette index 1. Accepting it would let hostile
	// bytes understate an upper bound and unsoundly prune real answers.
	lie := binary.AppendUvarint(nil, 2) // palette: 0.5, 1.0
	lie = binary.LittleEndian.AppendUint64(lie, math.Float64bits(0.5))
	lie = binary.LittleEndian.AppendUint64(lie, math.Float64bits(1.0))
	lie = binary.AppendUvarint(lie, 1) // one block
	var payload []byte
	payload = binary.AppendUvarint(payload, 1) // one doc
	payload = binary.AppendUvarint(payload, 1) // one match
	payload = binary.AppendUvarint(payload, 2) // pos 2
	payload = binary.AppendUvarint(payload, 1) // scoreIdx 1 (score 1.0)
	lie = binary.AppendUvarint(lie, 3)                    // firstDoc 3
	lie = binary.AppendUvarint(lie, 0)                    // span 0
	lie = binary.AppendUvarint(lie, uint64(len(payload))) // payload length
	lie = binary.AppendUvarint(lie, 0)                    // claimed maxIdx 0 — a lie
	reject("lying block max", append(lie, payload...))

	// The honest twin (maxIdx 1) must decode.
	honest := binary.AppendUvarint(nil, 2)
	honest = binary.LittleEndian.AppendUint64(honest, math.Float64bits(0.5))
	honest = binary.LittleEndian.AppendUint64(honest, math.Float64bits(1.0))
	honest = binary.AppendUvarint(honest, 1)
	honest = binary.AppendUvarint(honest, 3)
	honest = binary.AppendUvarint(honest, 0)
	honest = binary.AppendUvarint(honest, uint64(len(payload)))
	honest = binary.AppendUvarint(honest, 1)
	bt, err := DecodeBlocks(append(honest, payload...))
	if err != nil {
		t.Fatalf("honest buffer rejected: %v", err)
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("honest buffer failed validation: %v", err)
	}
	if bt.Infos[0].MaxScore != 1.0 {
		t.Fatalf("MaxScore = %v, want 1.0", bt.Infos[0].MaxScore)
	}
}

// TestDecodeBlocksRejectsEveryBitFlip flips each bit of a valid
// buffer: every mutation must either fail to decode or still satisfy
// every invariant — never panic, never read out of range. (Framing
// CRCs catch these at load; this pins the codec's own robustness.)
func TestDecodeBlocksRejectsEveryBitFlip(t *testing.T) {
	c := blocksTestCompact(t, 40, 3)
	concept := Concept{text.Stem("river"): 1.0, text.Stem("delta"): 0.5}
	c.AddConceptBlocksSized(concept, 8)
	valid := c.blocks[ConceptKey(concept)]
	if len(valid) == 0 {
		t.Fatal("no block buffer to mutate")
	}
	for i := 0; i < len(valid)*8; i++ {
		mut := make([]byte, len(valid))
		copy(mut, valid)
		mut[i/8] ^= 1 << (i % 8)
		bt, err := DecodeBlocks(mut)
		if err != nil {
			continue
		}
		// A flip may survive decode (e.g. toggling a score bit keeps a
		// coherent buffer) — then the result must still be structurally
		// valid end to end.
		if err := bt.Validate(); err != nil {
			continue
		}
	}
}
