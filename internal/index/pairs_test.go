package index

import (
	"encoding/binary"
	"math"
	"testing"

	"bestjoin/internal/match"
)

// testPairEntries builds a pair list exercising every record shape:
// scored records, interleaved tombstones, an all-tombstone block (at
// blockSize 3, docs 30/31/32), and sparse id gaps.
func testPairEntries() []PairEntry {
	return []PairEntry{
		{Doc: 2, OK: true, Score: 1.5, W0: match.Match{Loc: 3, Score: 0.5}, W1: match.Match{Loc: 7, Score: 1}},
		{Doc: 3},
		{Doc: 9, OK: true, Score: -0.25, W0: match.Match{Loc: 0, Score: -0.5}, W1: match.Match{Loc: 2, Score: 0.25}},
		{Doc: 10, OK: true, Score: 2.75, W0: match.Match{Loc: 11, Score: 0.9}, W1: match.Match{Loc: 12, Score: 0.8}},
		{Doc: 25, OK: true, Score: 0, W0: match.Match{Loc: 1, Score: 0}, W1: match.Match{Loc: 1, Score: 0}},
		{Doc: 27},
		{Doc: 30},
		{Doc: 31},
		{Doc: 32},
		{Doc: 1000, OK: true, Score: 0.125, W0: match.Match{Loc: 500, Score: 0.25}, W1: match.Match{Loc: 501, Score: 0.5}},
	}
}

func decodeAll(t *testing.T, pt *PairTable) []PairEntry {
	t.Helper()
	var out []PairEntry
	for i := range pt.Infos {
		es, err := pt.DecodeBlock(i)
		if err != nil {
			t.Fatalf("DecodeBlock(%d): %v", i, err)
		}
		out = append(out, es...)
	}
	return out
}

// entriesEqual compares bitwise: scores must survive the codec exactly
// or pair-served answers would differ from kernel answers.
func entriesEqual(a, b []PairEntry) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].OK != b[i].OK ||
			!feq(a[i].Score, b[i].Score) ||
			a[i].W0.Loc != b[i].W0.Loc || !feq(a[i].W0.Score, b[i].W0.Score) ||
			a[i].W1.Loc != b[i].W1.Loc || !feq(a[i].W1.Score, b[i].W1.Score) {
			return false
		}
	}
	return true
}

func TestPairsRoundTrip(t *testing.T) {
	entries := testPairEntries()
	for _, blockSize := range []int{1, 2, 3, 4, 128, 0} {
		buf := EncodePairs(entries, blockSize)
		pt, err := DecodePairs(buf)
		if err != nil {
			t.Fatalf("blockSize %d: %v", blockSize, err)
		}
		if err := pt.Validate(); err != nil {
			t.Fatalf("blockSize %d: Validate: %v", blockSize, err)
		}
		if got := decodeAll(t, pt); !entriesEqual(got, entries) {
			t.Fatalf("blockSize %d: round trip changed entries:\n got %+v\nwant %+v", blockSize, got, entries)
		}
		if pt.NumDocs() != len(entries) {
			t.Fatalf("blockSize %d: NumDocs = %d, want %d", blockSize, pt.NumDocs(), len(entries))
		}
	}
}

func TestPairsAllTombstoneBlockMax(t *testing.T) {
	// At blockSize 3 the records 27/30/31 and 32/... split so that one
	// block (30,31,32... actually 27/30/31) is all tombstones; its skip
	// entry must carry the −Inf sentinel and still round-trip.
	pt, err := DecodePairs(EncodePairs(testPairEntries(), 3))
	if err != nil {
		t.Fatal(err)
	}
	sawNegInf := false
	for _, info := range pt.Infos {
		if math.IsInf(info.MaxScore, -1) {
			sawNegInf = true
		}
	}
	if !sawNegInf {
		t.Fatal("no all-tombstone block produced the −Inf max-score sentinel")
	}
}

func TestEncodePairsEmpty(t *testing.T) {
	if buf := EncodePairs(nil, 0); buf != nil {
		t.Fatalf("EncodePairs(nil) = %v, want nil", buf)
	}
	pt, err := DecodePairs(nil)
	if err != nil || pt != nil {
		t.Fatalf("DecodePairs(nil) = %v, %v; want nil, nil", pt, err)
	}
}

func TestPairTableFindBlock(t *testing.T) {
	pt, err := DecodePairs(EncodePairs(testPairEntries(), 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range testPairEntries() {
		i := pt.FindBlock(ent.Doc)
		if i < 0 {
			t.Fatalf("FindBlock(%d) = -1, want a block", ent.Doc)
		}
		if pt.Infos[i].FirstDoc > ent.Doc || pt.Infos[i].LastDoc < ent.Doc {
			t.Fatalf("FindBlock(%d) = %d with range [%d,%d]", ent.Doc, i, pt.Infos[i].FirstDoc, pt.Infos[i].LastDoc)
		}
	}
	if i := pt.FindBlock(2000); i != -1 {
		t.Fatalf("FindBlock past the end = %d, want -1", i)
	}
}

// TestDecodePairsRejectsHostileBytes drives crafted buffers at every
// skip-table and payload validation layer.
func TestDecodePairsRejectsHostileBytes(t *testing.T) {
	valid := EncodePairs(testPairEntries(), 4)

	// mutate copies valid and applies f; decode must fail somewhere
	// (skip table or any block).
	reject := func(name string, buf []byte) {
		t.Helper()
		pt, err := DecodePairs(buf)
		if err != nil {
			return
		}
		if err := pt.Validate(); err == nil {
			t.Errorf("%s: hostile buffer decoded without error", name)
		}
	}

	// Block count far past what the buffer can hold.
	reject("huge block count", binary.AppendUvarint(nil, math.MaxUint64))
	reject("zero block count", binary.AppendUvarint(nil, 0))

	// Truncations at every prefix length.
	for cut := 1; cut < len(valid); cut++ {
		reject("truncation", valid[:cut])
	}
	// Trailing garbage.
	reject("trailing bytes", append(append([]byte(nil), valid...), 0xAA))

	// A skip table whose recorded max overstates the content: block-max
	// skipping would be unsound in the other direction, but any mismatch
	// must be rejected.
	crafted := EncodePairs([]PairEntry{
		{Doc: 1, OK: true, Score: 1, W0: match.Match{Loc: 0, Score: 1}, W1: match.Match{Loc: 1, Score: 1}},
	}, 0)
	// The max-score float64 sits after varints nBlocks=1, gap=1, span=0,
	// nDocs=1 — 4 bytes in.
	lied := append([]byte(nil), crafted...)
	binary.LittleEndian.PutUint64(lied[4:], math.Float64bits(99.0))
	reject("overstated block max", lied)
	binary.LittleEndian.PutUint64(lied[4:], math.Float64bits(math.NaN()))
	reject("NaN block max", lied)
	binary.LittleEndian.PutUint64(lied[4:], math.Float64bits(math.Inf(1)))
	reject("+Inf block max", lied)
}

// TestPairsPersistRoundTrip pins the section-5 story end to end:
// registered pair lists survive Marshal → LoadCompact bitwise.
func TestPairsPersistRoundTrip(t *testing.T) {
	c, a, b, spec := pairTestIndex(t)
	want, ok := c.ConceptPairs(a, b, spec)
	if !ok {
		t.Fatal("pair not registered")
	}

	loaded, err := LoadCompact(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ConceptPairsCount() != c.ConceptPairsCount() {
		t.Fatalf("pair count %d, want %d", loaded.ConceptPairsCount(), c.ConceptPairsCount())
	}
	// Lookup must work in both concept orders.
	for _, order := range [][2]Concept{{a, b}, {b, a}} {
		got, ok := loaded.ConceptPairs(order[0], order[1], spec)
		if !ok {
			t.Fatal("pair lost across the round trip")
		}
		if !entriesEqual(decodeAll(t, got), decodeAll(t, want)) {
			t.Fatal("pair entries changed across the round trip")
		}
	}
	// The wrong fingerprint must miss: a pair list only answers the
	// exact kernel that built it.
	if _, ok := loaded.ConceptPairs(a, b, spec+1); ok {
		t.Fatal("pair served under a different kernel fingerprint")
	}
}

// TestPairsEmptySetRoundTrip pins that an index with no pairs
// marshals without a section 5 and loads cleanly — the "feature
// absent" shape every pre-pairs reader and writer produces.
func TestPairsEmptySetRoundTrip(t *testing.T) {
	c := framedTestIndex(t)
	if c.ConceptPairsCount() != 0 {
		t.Fatal("test premise broken: index has pairs")
	}
	loaded, err := LoadCompact(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ConceptPairsCount() != 0 {
		t.Fatalf("pairs appeared from nowhere: %d", loaded.ConceptPairsCount())
	}
	if _, ok := loaded.ConceptPairs(Concept{"lenovo": 1}, Concept{"nba": 1}, 1); ok {
		t.Fatal("ConceptPairs hit on an index with no pairs")
	}
}

// TestPairsLegacyLoad pins back-compat: the pre-framing layout (which
// predates pair lists entirely) still loads, with no pairs.
func TestPairsLegacyLoad(t *testing.T) {
	c, _, _, _ := pairTestIndex(t)
	loaded, err := LoadCompact(c.marshalLegacy())
	if err != nil {
		t.Fatalf("legacy buffer rejected: %v", err)
	}
	if loaded.ConceptPairsCount() != 0 {
		t.Fatal("legacy layout cannot carry pairs")
	}
	if loaded.Docs() != c.Docs() {
		t.Fatalf("legacy round trip lost docs: %d vs %d", loaded.Docs(), c.Docs())
	}
}

// TestPairsMarshalRejectsEveryBitFlip extends the bit-rot acceptance
// test to a pair-bearing index: the section-5 CRC leaves no pair byte
// unprotected.
func TestPairsMarshalRejectsEveryBitFlip(t *testing.T) {
	c, _, _, _ := pairTestIndex(t)
	valid := c.Marshal()
	for i := range valid {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), valid...)
			mut[i] ^= 1 << bit
			if _, err := LoadCompact(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d loaded without error", i, bit)
			}
		}
	}
}

// pairTestJoin is a deterministic stand-in kernel: score and witness
// derived purely from the two match lists.
func pairTestJoin(lists match.Lists) (match.Set, float64, bool) {
	a, b := lists[0], lists[1]
	if len(a) == 0 || len(b) == 0 {
		return nil, 0, false
	}
	score := a[0].Score + b[0].Score + float64(a[len(a)-1].Loc-b[0].Loc)*0.001
	return match.Set{a[0], b[len(b)-1]}, score, true
}

// pairTestIndex builds a small corpus with one registered pair list
// (plus the other optional sections, so section ordering is exercised)
// and returns the concepts and fingerprint it was registered under.
func pairTestIndex(t *testing.T) (*Compact, Concept, Concept, uint64) {
	t.Helper()
	c := framedTestIndex(t)
	a := Concept{"lenovo": 1, "dell": 0.9}
	b := Concept{"nba": 1, "olympics": 0.8, "basketball": 0.7}
	const spec = uint64(0xfeedbeef)
	if n, ok := c.AddConceptPairs(a, b, spec, pairTestJoin); !ok || n == 0 {
		t.Fatalf("AddConceptPairs failed: bytes=%d ok=%v", n, ok)
	}
	return c, a, b, spec
}

func TestAddConceptPairsMatchesJoin(t *testing.T) {
	c, a, b, spec := pairTestIndex(t)
	pt, ok := c.ConceptPairs(a, b, spec)
	if !ok {
		t.Fatal("registered pair not found")
	}
	entries := decodeAll(t, pt)

	// The list's doc set must be exactly the concepts' intersection,
	// and every scored record must replay the join bitwise.
	docsA, listsA := c.conceptDocLists(a)
	docsB, listsB := c.conceptDocLists(b)
	k := 0
	for i, j := 0, 0; i < len(docsA) && j < len(docsB); {
		switch {
		case docsA[i] < docsB[j]:
			i++
		case docsA[i] > docsB[j]:
			j++
		default:
			if k >= len(entries) || entries[k].Doc != docsA[i] {
				t.Fatalf("pair list missing shared doc %d", docsA[i])
			}
			set, score, okJoin := pairTestJoin(match.Lists{listsA[i], listsB[j]})
			ent := entries[k]
			if ent.OK != okJoin {
				t.Fatalf("doc %d: OK=%v, join ok=%v", ent.Doc, ent.OK, okJoin)
			}
			if okJoin {
				if math.Float64bits(ent.Score) != math.Float64bits(score) {
					t.Fatalf("doc %d: score %v, join %v", ent.Doc, ent.Score, score)
				}
				if ent.W0 != set[0] || ent.W1 != set[1] {
					t.Fatalf("doc %d: witness %v/%v, join %v", ent.Doc, ent.W0, ent.W1, set)
				}
			}
			k++
			i++
			j++
		}
	}
	if k != len(entries) {
		t.Fatalf("pair list has %d extra records", len(entries)-k)
	}

	// Re-registration must be rejected: the first build wins.
	if _, ok := c.AddConceptPairs(b, a, spec, pairTestJoin); ok {
		t.Fatal("duplicate registration accepted")
	}
	// An empty intersection registers nothing.
	if _, ok := c.AddConceptPairs(a, Concept{"nosuchword": 1}, spec, pairTestJoin); ok {
		t.Fatal("empty-intersection pair registered")
	}
}

func TestAddConceptPairsRejectsUnrepresentable(t *testing.T) {
	mk := func() (*Compact, Concept, Concept) {
		c := framedTestIndex(t)
		return c, Concept{"lenovo": 1}, Concept{"nba": 1}
	}

	// A ±Inf score cannot be stored exactly: the whole pair aborts.
	c, a, b := mk()
	if _, ok := c.AddConceptPairs(a, b, 1, func(match.Lists) (match.Set, float64, bool) {
		return match.Set{{}, {}}, math.Inf(1), true
	}); ok {
		t.Fatal("+Inf score registered")
	}
	// A malformed witness (not exactly two matches) aborts.
	c, a, b = mk()
	if _, ok := c.AddConceptPairs(a, b, 1, func(match.Lists) (match.Set, float64, bool) {
		return match.Set{{}}, 1, true
	}); ok {
		t.Fatal("one-match witness registered")
	}
	// Non-finite concept weights abort.
	c, _, b = mk()
	if _, ok := c.AddConceptPairs(Concept{"lenovo": math.NaN()}, b, 1, pairTestJoin); ok {
		t.Fatal("NaN concept weight registered")
	}
	// A NaN join score is a tombstone, not an abort: the kernel path
	// would likewise evaluate the doc and offer nothing.
	c, a, b = mk()
	if _, ok := c.AddConceptPairs(a, b, 1, func(match.Lists) (match.Set, float64, bool) {
		return nil, math.NaN(), true
	}); !ok {
		t.Fatal("all-tombstone pair (NaN scores) rejected")
	}
	pt, ok := c.ConceptPairs(a, b, 1)
	if !ok {
		t.Fatal("tombstone pair not found")
	}
	for _, ent := range decodeAll(t, pt) {
		if ent.OK {
			t.Fatal("NaN join score produced a scored record")
		}
	}
}

// TestPartitionPreservesPairScores pins that doc-partitioning splits
// every pair list by shard with scores and witnesses bitwise intact.
func TestPartitionPreservesPairScores(t *testing.T) {
	c, a, b, spec := pairTestIndex(t)
	whole, _ := c.ConceptPairs(a, b, spec)
	all := decodeAll(t, whole)

	for _, n := range []int{2, 3} {
		parts, err := c.Partition(n)
		if err != nil {
			t.Fatal(err)
		}
		var merged []PairEntry
		for s, p := range parts {
			pt, ok := p.ConceptPairs(a, b, spec)
			if !ok {
				continue // shard holds none of the pair's docs
			}
			for _, ent := range decodeAll(t, pt) {
				if ShardOf(ent.Doc, n) != s {
					t.Fatalf("n=%d: doc %d landed in shard %d", n, ent.Doc, s)
				}
				merged = append(merged, ent)
			}
		}
		// ShardOf partitions contiguous ranges... merge by doc order.
		sortPairEntries(merged)
		if !entriesEqual(merged, all) {
			t.Fatalf("n=%d: partitioned pair entries differ from the whole", n)
		}
	}
}

func sortPairEntries(es []PairEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Doc < es[j-1].Doc; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// TestCorruptPairHooks pins the two test hooks other packages' chaos
// tests build on: whole-list corruption panics at lookup, payload
// corruption survives lookup but fails every block decode.
func TestCorruptPairHooks(t *testing.T) {
	c, a, b, spec := pairTestIndex(t)
	CorruptConceptPairPayloadForTest(c, a, b, spec)
	pt, ok := c.ConceptPairs(a, b, spec)
	if !ok {
		t.Fatal("payload corruption must keep the skip table loadable")
	}
	for i := range pt.Infos {
		if _, err := pt.DecodeBlock(i); err == nil {
			t.Fatalf("block %d decoded after payload corruption", i)
		}
	}

	CorruptConceptPairsForTest(c, a, b, spec)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ConceptPairs did not panic on whole-list corruption")
			}
		}()
		c.ConceptPairs(a, b, spec)
	}()
}
