package index

import (
	"fmt"
	"os"
	"path/filepath"
)

// On-disk persistence with crash safety. SaveFile never leaves a
// half-written index at the destination path: the bytes go to a
// temporary file in the same directory, are fsynced, and only then
// renamed over the target (rename within one directory is atomic on
// POSIX filesystems), with the directory fsynced afterwards so the
// rename itself survives a crash. A reader therefore sees either the
// old complete index or the new complete index, never a torn one —
// and if the disk lies anyway, the CRC32-C section framing
// (persist.go) catches it at LoadFile time.

// SaveFile atomically writes the framed, checksummed index to path:
// temp file in the same directory → write → fsync → rename → fsync
// directory. On error the temporary file is removed and any existing
// file at path is left untouched.
func (c *Compact) SaveFile(path string) error {
	data := c.Marshal()
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("index: save %s: %w", path, err)
	}
	tmp := f.Name()
	fail := func(step string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("index: save %s: %s: %w", path, step, err)
	}
	if _, err := f.Write(data); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("fsync", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: save %s: close: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: save %s: rename: %w", path, err)
	}
	// Persist the rename: without the directory fsync a crash can
	// roll the directory entry back to the old file (fine) or to a
	// state where neither name exists (not fine).
	if d, err := os.Open(dir); err == nil {
		defer d.Close()
		if err := d.Sync(); err != nil {
			return fmt.Errorf("index: save %s: sync dir: %w", path, err)
		}
	}
	return nil
}

// LoadFile reads and verifies an index written by SaveFile. The file
// must be in the framed format: bad magic, truncation, and bit-rot
// all fail with an error wrapping ErrCorrupt (checksum mismatch and
// friends) — corrupt bytes are never served as query data.
func LoadFile(path string) (*Compact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: load %s: %w", path, err)
	}
	if !framed(b) {
		return nil, fmt.Errorf("index: load %s: %w: missing magic (not a framed index file)", path, ErrCorrupt)
	}
	c, err := loadFramed(b)
	if err != nil {
		return nil, fmt.Errorf("index: load %s: %w", path, err)
	}
	return c, nil
}
