// Package index is an in-memory inverted index over tokenized
// documents. The paper (Section II, footnote 1) notes that match lists
// need not be computed by scanning documents online: they can be
// derived from precomputed inverted lists, with a match list for a
// general concept (e.g. "PC maker") obtained by merging the inverted
// lists of specific terms ("Lenovo", "Dell", …) with their scores.
// This package implements that substrate: postings are keyed by Porter
// stem and sorted by (document, position), and ConceptList performs
// the scored multi-way merge.
package index

import (
	"sort"

	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// Posting is one occurrence of a stem: the document it appears in and
// its token position there.
type Posting struct {
	Doc int
	Pos int
}

// Index is an inverted index over documents added with Add.
type Index struct {
	postings map[string][]Posting
	docs     int
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: make(map[string][]Posting)}
}

// Add indexes one document's tokens under the given document id.
// Documents must be added in non-decreasing id order for postings to
// stay sorted.
func (ix *Index) Add(doc int, tokens []text.Token) {
	for _, t := range tokens {
		stem := text.Stem(t.Word)
		ix.postings[stem] = append(ix.postings[stem], Posting{Doc: doc, Pos: t.Pos})
	}
	if doc+1 > ix.docs {
		ix.docs = doc + 1
	}
}

// AddText tokenizes and indexes a raw document.
func (ix *Index) AddText(doc int, body string) {
	ix.Add(doc, text.Tokenize(body))
}

// Docs returns the number of documents (max added id + 1).
func (ix *Index) Docs() int { return ix.docs }

// Postings returns the posting list of a word (stemmed internally),
// sorted by (doc, position). The returned slice is shared; callers
// must not modify it.
func (ix *Index) Postings(word string) []Posting {
	return ix.postings[text.Stem(word)]
}

// DocFreq returns the number of distinct documents containing the
// word.
func (ix *Index) DocFreq(word string) int {
	n, last := 0, -1
	for _, p := range ix.postings[text.Stem(word)] {
		if p.Doc != last {
			n++
			last = p.Doc
		}
	}
	return n
}

// Concept is a scored disjunction of words: the specific terms whose
// inverted lists together form the match list of one general query
// term, each with the score its occurrences carry.
type Concept map[string]float64

// ConceptList derives the match list of a concept within one document
// by merging the concept's inverted lists restricted to that document
// — the paper's footnote-1 construction. When several concept words
// occupy the same position (possible only if they share a stem), the
// highest score wins.
func (ix *Index) ConceptList(doc int, c Concept) match.List {
	best := map[int]float64{}
	for word, score := range c {
		ps := ix.Postings(word)
		// Binary-search the document's slice of the posting list.
		lo := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
		for _, p := range ps[lo:] {
			if p.Doc != doc {
				break
			}
			if s, ok := best[p.Pos]; !ok || score > s {
				best[p.Pos] = score
			}
		}
	}
	out := make(match.List, 0, len(best))
	for pos, s := range best {
		out = append(out, match.Match{Loc: pos, Score: s})
	}
	out.Sort()
	return out
}

// QueryLists derives one match list per concept for a document,
// producing a ready join instance.
func (ix *Index) QueryLists(doc int, concepts []Concept) match.Lists {
	lists := make(match.Lists, len(concepts))
	for j, c := range concepts {
		lists[j] = ix.ConceptList(doc, c)
	}
	return lists
}

// ConceptFromGraph builds a Concept from a lexical neighborhood: the
// head word's neighbors within maxDist edges, scored by
// score(d) = 1 − perEdge·d.
func ConceptFromGraph(neigh map[string]int, perEdge float64) Concept {
	c := make(Concept, len(neigh))
	for stem, d := range neigh {
		c[stem] = 1 - perEdge*float64(d)
	}
	return c
}
