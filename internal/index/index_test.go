package index

import (
	"testing"

	"bestjoin/internal/lexicon"
	"bestjoin/internal/text"
)

func build(t *testing.T) *Index {
	t.Helper()
	ix := New()
	ix.AddText(0, "lenovo partners with the nba in a new deal")
	ix.AddText(1, "dell announced a partnership with the olympics")
	ix.AddText(2, "no relevant words here at all")
	return ix
}

func TestPostingsSortedAndStemmed(t *testing.T) {
	ix := build(t)
	ps := ix.Postings("partner") // stems to "partner", matches "partners"
	if len(ps) != 1 || ps[0].Doc != 0 || ps[0].Pos != 1 {
		t.Fatalf("Postings(partner) = %v", ps)
	}
	// "partnership" stems differently and lives in doc 1.
	ps = ix.Postings("partnership")
	if len(ps) != 1 || ps[0].Doc != 1 {
		t.Fatalf("Postings(partnership) = %v", ps)
	}
	if got := ix.Docs(); got != 3 {
		t.Errorf("Docs = %d, want 3", got)
	}
}

func TestDocFreq(t *testing.T) {
	ix := New()
	ix.AddText(0, "alpha alpha beta")
	ix.AddText(1, "alpha gamma")
	ix.AddText(2, "beta")
	if got := ix.DocFreq("alpha"); got != 2 {
		t.Errorf("DocFreq(alpha) = %d, want 2", got)
	}
	if got := ix.DocFreq("beta"); got != 2 {
		t.Errorf("DocFreq(beta) = %d, want 2", got)
	}
	if got := ix.DocFreq("delta"); got != 0 {
		t.Errorf("DocFreq(delta) = %d, want 0", got)
	}
}

func TestConceptListMergesScoredPostings(t *testing.T) {
	ix := build(t)
	// The "PC maker" concept: specific companies with their scores.
	pcMaker := Concept{"lenovo": 0.9, "dell": 0.9, "ibm": 0.8}
	l0 := ix.ConceptList(0, pcMaker)
	if len(l0) != 1 || l0[0].Loc != 0 || l0[0].Score != 0.9 {
		t.Fatalf("doc0 concept list = %v", l0)
	}
	l1 := ix.ConceptList(1, pcMaker)
	if len(l1) != 1 || l1[0].Loc != 0 || l1[0].Score != 0.9 {
		t.Fatalf("doc1 concept list = %v", l1)
	}
	if l2 := ix.ConceptList(2, pcMaker); len(l2) != 0 {
		t.Fatalf("doc2 concept list = %v, want empty", l2)
	}
}

func TestConceptListBestScoreWinsOnSharedStem(t *testing.T) {
	ix := New()
	ix.AddText(0, "marry")
	// "marry" and "married" share a stem; the higher score must win.
	c := Concept{"marry": 0.6, "married": 0.9}
	l := ix.ConceptList(0, c)
	if len(l) != 1 || l[0].Score != 0.9 {
		t.Fatalf("shared-stem concept list = %v", l)
	}
}

func TestQueryListsFormJoinInstance(t *testing.T) {
	ix := build(t)
	lists := ix.QueryLists(0, []Concept{
		{"lenovo": 1, "dell": 1},
		{"nba": 1, "olympics": 1},
		{"deal": 0.7, "partnership": 1, "partners": 1},
	})
	if len(lists) != 3 {
		t.Fatalf("QueryLists returned %d lists", len(lists))
	}
	if err := lists.Validate(); err != nil {
		t.Fatal(err)
	}
	for j, l := range lists {
		if len(l) == 0 {
			t.Errorf("list %d empty", j)
		}
	}
}

func TestConceptFromGraph(t *testing.T) {
	g := lexicon.NewGraph()
	g.AddEdge("conference", "workshop")
	g.AddEdge("workshop", "seminar")
	c := ConceptFromGraph(g.Neighborhood("conference", 2), lexicon.ScorePerEdge)
	if c[text.Stem("conference")] != 1.0 {
		t.Errorf("conference score = %v", c[text.Stem("conference")])
	}
	if c[text.Stem("workshop")] != 0.7 {
		t.Errorf("workshop score = %v", c[text.Stem("workshop")])
	}
	if c[text.Stem("seminar")] != 0.4 {
		t.Errorf("seminar score = %v", c[text.Stem("seminar")])
	}
}
