package index

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

func TestDocMaxRoundTrip(t *testing.T) {
	cases := []struct {
		docs   []int
		scores []float64
	}{
		{nil, nil},
		{[]int{0}, []float64{1}},
		{[]int{0, 1, 2}, []float64{0.5, 1, 0.25}},
		{[]int{3, 17, 40000}, []float64{-2.5, 0, 1e300}},
	}
	for _, c := range cases {
		b := EncodeDocMax(c.docs, c.scores)
		docs, scores, err := DecodeDocMax(b)
		if err != nil {
			t.Fatalf("decode(%v): %v", c.docs, err)
		}
		if len(docs) != len(c.docs) {
			t.Fatalf("decode(%v): got %v", c.docs, docs)
		}
		for i := range docs {
			if docs[i] != c.docs[i] || scores[i] != c.scores[i] {
				t.Fatalf("decode(%v, %v): got (%v, %v)", c.docs, c.scores, docs, scores)
			}
		}
	}
}

// TestDecodeDocMaxHostile feeds the decoder crafted corruption: delta
// overflow, non-finite scores, non-ascending ids, huge counts,
// truncation, and trailing garbage. Every case must error cleanly.
func TestDecodeDocMaxHostile(t *testing.T) {
	score := func(v float64) []byte {
		return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
	}
	entry := func(delta uint64, v float64) []byte {
		return append(binary.AppendUvarint(nil, delta), score(v)...)
	}
	cases := map[string][]byte{
		"doc delta wraps int": append(binary.AppendUvarint(nil, 1),
			entry(math.MaxUint64, 1)...),
		"doc delta exceeds MaxDocID": append(binary.AppendUvarint(nil, 1),
			entry(MaxDocID+1, 1)...),
		"accumulated id exceeds MaxDocID": append(binary.AppendUvarint(nil, 2),
			append(entry(MaxDocID, 1), entry(1, 1)...)...),
		"NaN score": append(binary.AppendUvarint(nil, 1),
			entry(0, math.NaN())...),
		"+Inf score": append(binary.AppendUvarint(nil, 1),
			entry(0, math.Inf(1))...),
		"-Inf score": append(binary.AppendUvarint(nil, 1),
			entry(0, math.Inf(-1))...),
		"duplicate id (zero delta)": append(binary.AppendUvarint(nil, 2),
			append(entry(5, 1), entry(0, 1)...)...),
		"count exceeds buffer": binary.AppendUvarint(nil, 1<<50),
		"truncated score": append(binary.AppendUvarint(nil, 1),
			binary.AppendUvarint(nil, 0)...),
		"trailing bytes": append(append(binary.AppendUvarint(nil, 1),
			entry(0, 1)...), 0xff),
		"empty after header": binary.AppendUvarint(nil, 3),
	}
	for name, b := range cases {
		if _, _, err := DecodeDocMax(b); err == nil {
			t.Errorf("%s: decode accepted hostile bytes % x", name, b)
		}
	}
	// Negative finite scores are legal, not hostile.
	b := append(binary.AppendUvarint(nil, 1), entry(2, -0.75)...)
	docs, scores, err := DecodeDocMax(b)
	if err != nil || docs[0] != 2 || scores[0] != -0.75 {
		t.Errorf("negative finite score rejected: %v %v %v", docs, scores, err)
	}
}

// TestConceptMeta checks that a registered concept's summary matches
// the best-member-word-wins rule of ConceptList, document by document.
func TestConceptMeta(t *testing.T) {
	ix := New()
	ix.AddText(0, "lenovo makes laptops")
	ix.AddText(1, "dell and lenovo both make laptops")
	ix.AddText(2, "nothing relevant here")
	ix.AddText(3, "dell only")
	c := ix.Compact()
	concept := Concept{"lenovo": 1, "dell": 0.5}

	if _, _, ok := c.ConceptMeta(concept); ok {
		t.Fatal("unregistered concept reported metadata")
	}
	c.AddConceptMeta(concept)
	docs, maxScore, ok := c.ConceptMeta(concept)
	if !ok {
		t.Fatal("registered concept reported no metadata")
	}
	wantDocs, wantMax := []int{0, 1, 3}, []float64{1, 1, 0.5}
	if !reflect.DeepEqual(docs, wantDocs) || !reflect.DeepEqual(maxScore, wantMax) {
		t.Fatalf("meta docs=%v max=%v, want %v %v", docs, maxScore, wantDocs, wantMax)
	}
	// The summary must agree with the decoded match lists.
	for i, d := range docs {
		list := c.ConceptList(d, concept)
		best := list[0].Score
		for _, m := range list {
			if m.Score > best {
				best = m.Score
			}
		}
		if best != maxScore[i] {
			t.Errorf("doc %d: meta max %v, list max %v", d, maxScore[i], best)
		}
	}
	if c.ConceptMetaCount() != 1 {
		t.Errorf("ConceptMetaCount = %d, want 1", c.ConceptMetaCount())
	}
}

// TestConceptMetaPersistence round-trips metadata through
// Marshal/LoadCompact and confirms pre-metadata buffers still load.
func TestConceptMetaPersistence(t *testing.T) {
	ix := New()
	ix.AddText(0, "alpha beta")
	ix.AddText(1, "beta gamma")
	c := ix.Compact()
	plain := c.Marshal() // no metadata section

	concept := Concept{"alpha": 0.9, "gamma": 0.4}
	c.AddConceptMeta(concept)
	withMeta := c.Marshal()
	if len(withMeta) <= len(plain) {
		t.Fatal("metadata section did not grow the buffer")
	}

	loaded, err := LoadCompact(withMeta)
	if err != nil {
		t.Fatal(err)
	}
	docs, maxScore, ok := loaded.ConceptMeta(concept)
	if !ok || !reflect.DeepEqual(docs, []int{0, 1}) || !reflect.DeepEqual(maxScore, []float64{0.9, 0.4}) {
		t.Fatalf("reloaded meta: ok=%v docs=%v max=%v", ok, docs, maxScore)
	}

	old, err := LoadCompact(plain)
	if err != nil {
		t.Fatalf("pre-metadata buffer rejected: %v", err)
	}
	if _, _, ok := old.ConceptMeta(concept); ok {
		t.Fatal("pre-metadata buffer reported metadata")
	}

	// Corrupt metadata must fail the load, not query time: a valid
	// index followed by a meta section whose summary has a NaN score.
	nanMeta := append(binary.AppendUvarint(nil, 1),
		append(binary.AppendUvarint(nil, 0),
			binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))...)...)
	hostile := append([]byte(nil), plain...)
	hostile = binary.AppendUvarint(hostile, 1)
	hostile = binary.LittleEndian.AppendUint64(hostile, 12345)
	hostile = binary.AppendUvarint(hostile, uint64(len(nanMeta)))
	hostile = append(hostile, nanMeta...)
	if _, err := LoadCompact(hostile); err == nil {
		t.Fatal("LoadCompact accepted NaN concept metadata")
	}
}
