package index

import (
	"reflect"
	"testing"
)

// The corruption hooks exist so other packages can prove their
// containment of index-layer panics; these tests pin the hooks' own
// contract — each one really produces the failure mode it advertises,
// for both block layouts — so a hook silently going stale can't turn
// the engine's robustness suite into a no-op.

func hookCorpus(t *testing.T) (*Compact, Concept) {
	t.Helper()
	ix := New()
	for d := 0; d < 12; d++ {
		ix.AddText(d, "amber basalt cedar amber basalt")
	}
	return ix.Compact(), Concept{"amber": 1, "basalt": 0.9}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", what)
		}
	}()
	f()
}

func TestCorruptPostingsHookPanics(t *testing.T) {
	c, _ := hookCorpus(t)
	CorruptPostingsForTest(c, "amber")
	mustPanic(t, "Postings on corrupt bytes", func() { c.Postings("amber") })
}

func TestCorruptConceptMetaHookPanics(t *testing.T) {
	c, concept := hookCorpus(t)
	c.AddConceptMeta(concept)
	CorruptConceptMetaForTest(c, concept)
	mustPanic(t, "ConceptMeta on corrupt bytes", func() { c.ConceptMeta(concept) })
}

func TestCorruptConceptBlocksHookPanics(t *testing.T) {
	for _, layout := range []string{"varint", "batch"} {
		t.Run(layout, func(t *testing.T) {
			c, concept := hookCorpus(t)
			if layout == "batch" {
				if !c.AddConceptBlocksBatchSized(concept, 4) {
					t.Fatal("batch layout not registered")
				}
			} else {
				c.AddConceptBlocksSized(concept, 4)
			}
			CorruptConceptBlocksForTest(c, concept)
			mustPanic(t, "ConceptBlocks on corrupt table", func() { c.ConceptBlocks(concept) })
		})
	}
}

func TestCorruptConceptBlockPayloadHook(t *testing.T) {
	for _, layout := range []string{"varint", "batch"} {
		t.Run(layout, func(t *testing.T) {
			c, concept := hookCorpus(t)
			if layout == "batch" {
				if !c.AddConceptBlocksBatchSized(concept, 4) {
					t.Fatal("batch layout not registered")
				}
			} else {
				c.AddConceptBlocksSized(concept, 4)
			}
			CorruptConceptBlockPayloadForTest(c, concept)
			// The skip table must still decode — the hook's point is that
			// the failure is deferred to the lazy per-block path.
			bt, ok := c.ConceptBlocks(concept)
			if !ok || bt == nil {
				t.Fatal("payload hook broke the skip table too")
			}
			if _, _, err := bt.DecodeBlock(len(bt.Infos) - 1); err == nil {
				t.Fatal("last block decoded despite corrupted payload")
			}
		})
	}
}

func TestQueryLists(t *testing.T) {
	c, concept := hookCorpus(t)
	other := Concept{"cedar": 0.5}
	lists := c.QueryLists(3, []Concept{concept, other})
	if len(lists) != 2 {
		t.Fatalf("got %d lists, want 2", len(lists))
	}
	for i, cc := range []Concept{concept, other} {
		if want := c.ConceptList(3, cc); !reflect.DeepEqual(lists[i], want) {
			t.Fatalf("concept %d: QueryLists %v, ConceptList %v", i, lists[i], want)
		}
	}
}
