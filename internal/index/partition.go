package index

import (
	"fmt"

	"bestjoin/internal/match"
)

// Document-partitioned sharding: Partition splits one compacted index
// into n shard indexes whose posting lists, concept metadata, and
// concept block tables are each restricted to the shard's documents.
// The partitioner is the substrate of the scatter-gather serving tier
// (internal/shard): best-join scoring is document-local — a document's
// match lists, and therefore its score and matchset, depend only on
// that document's own postings — so doc-partitioned sharding is
// lossless by construction, and a coordinator that rank-merges
// per-shard top-k heaps reproduces the single-index answer exactly.
//
// Two invariants make that argument hold:
//
//   - Assignment is deterministic and total: document d lives in shard
//     ShardOf(d, n) = d mod n, nowhere else. Round-robin keeps shards
//     balanced under the common "ids roughly follow ingest order"
//     distribution without needing corpus statistics.
//   - Global document ids are preserved. A shard index keeps the whole
//     corpus's id space (Docs() reports the global count) and its
//     postings carry original ids, so shard-served results need no id
//     translation and tie-breaks on document id mean the same thing on
//     every shard.
//
// Registered concept metadata survives partitioning: doc-max summaries
// are filtered per shard, and block tables are rebuilt from the
// shard's documents (block boundaries move — a shard has ~1/n of each
// block's documents — but block-max pruning is lossless, so boundaries
// never change answers, only skip rates).

// ShardOf returns the shard owning document doc under an n-way
// partition: doc mod n, the deterministic round-robin assignment used
// by Partition.
func ShardOf(doc, n int) int { return doc % n }

// Partition splits the index into n doc-partitioned shard indexes
// (see the package comment above for the invariants). n = 1 returns
// the receiver itself — Compact is read-only once serving, so sharing
// is safe. The error covers only invalid n and corrupt in-memory
// buffers; a Compact built by this package always partitions cleanly.
func (c *Compact) Partition(n int) ([]*Compact, error) {
	if n < 1 {
		return nil, fmt.Errorf("index: cannot partition into %d shards", n)
	}
	if n == 1 {
		return []*Compact{c}, nil
	}
	shards := make([]*Compact, n)
	for s := range shards {
		shards[s] = &Compact{postings: make(map[string][]byte, len(c.postings)), docs: c.docs}
	}
	// Postings: decode each stem once, split by owner, re-encode the
	// non-empty pieces. Posting order is (doc, pos) ascending and
	// filtering preserves it, so the shard buffers are valid by
	// construction.
	split := make([][]Posting, n)
	for stem, buf := range c.postings {
		ps, err := DecodePostings(buf)
		if err != nil {
			return nil, fmt.Errorf("index: partition: postings for %q: %v", stem, err)
		}
		for s := range split {
			split[s] = split[s][:0]
		}
		for _, p := range ps {
			s := ShardOf(p.Doc, n)
			split[s] = append(split[s], p)
		}
		for s, sps := range split {
			if len(sps) > 0 {
				shards[s].postings[stem] = EncodePostings(sps)
			}
		}
	}
	if err := c.partitionMeta(shards); err != nil {
		return nil, err
	}
	if err := c.partitionBlocks(shards); err != nil {
		return nil, err
	}
	if err := c.partitionPairs(shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// partitionPairs filters each registered pair list per shard. Entries
// are value copies, so a shard's scores and witnesses are bitwise
// identical to the original's — the property the shard tier's
// bitwise-identity differential relies on.
func (c *Compact) partitionPairs(shards []*Compact) error {
	n := len(shards)
	for key, buf := range c.pairs {
		pt, err := DecodePairs(buf)
		if err != nil || pt == nil {
			return fmt.Errorf("index: partition: concept pairs %x/%x: %v", key.Lo, key.Hi, err)
		}
		var entries []PairEntry
		for i := range pt.Infos {
			es, err := pt.DecodeBlock(i)
			if err != nil {
				return fmt.Errorf("index: partition: concept pairs %x/%x block %d: %v", key.Lo, key.Hi, i, err)
			}
			entries = append(entries, es...)
		}
		var se []PairEntry
		for s, shard := range shards {
			se = se[:0]
			for _, e := range entries {
				if ShardOf(e.Doc, n) == s {
					se = append(se, e)
				}
			}
			if enc := EncodePairs(se, 0); enc != nil {
				if shard.pairs == nil {
					shard.pairs = make(map[PairKey][]byte)
				}
				shard.pairs[key] = enc
			}
		}
	}
	return nil
}

// partitionMeta filters each registered doc-max summary per shard.
func (c *Compact) partitionMeta(shards []*Compact) error {
	n := len(shards)
	for key, buf := range c.meta {
		docs, maxSc, err := DecodeDocMax(buf)
		if err != nil {
			return fmt.Errorf("index: partition: concept meta %x: %v", key, err)
		}
		for s, shard := range shards {
			var sd []int
			var sm []float64
			for i, d := range docs {
				if ShardOf(d, n) == s {
					sd = append(sd, d)
					sm = append(sm, maxSc[i])
				}
			}
			if enc := EncodeDocMax(sd, sm); enc != nil {
				if shard.meta == nil {
					shard.meta = make(map[uint64][]byte)
				}
				shard.meta[key] = enc
			}
		}
	}
	return nil
}

// partitionBlocks rebuilds each registered block table from the
// shard's documents. The rebuilt tables use the default BlockSize:
// the original partitioning is not recoverable from the encoded form,
// and block boundaries only steer pruning, never results. A table
// keeps its layout across the split — batched stays batched (a
// shard's values are a subset of the original's, so they still fit),
// varint stays varint.
func (c *Compact) partitionBlocks(shards []*Compact) error {
	for key, buf := range c.blocks {
		bt, err := DecodeBlocks(buf)
		if err != nil || bt == nil {
			return fmt.Errorf("index: partition: concept blocks %x: %v", key, err)
		}
		if err := partitionOneBlockTable(shards, key, bt, false); err != nil {
			return err
		}
	}
	for key, buf := range c.batch {
		bt, err := DecodeBlocksBatch(buf)
		if err != nil || bt == nil {
			return fmt.Errorf("index: partition: batched concept blocks %x: %v", key, err)
		}
		if err := partitionOneBlockTable(shards, key, bt, true); err != nil {
			return err
		}
	}
	return nil
}

// partitionOneBlockTable splits one decoded block table across shards,
// re-encoding each shard's slice in the requested layout.
func partitionOneBlockTable(shards []*Compact, key uint64, bt *BlockTable, batch bool) error {
	n := len(shards)
	var docs []int
	var lists []match.List
	for i := range bt.Infos {
		d, l, err := bt.DecodeBlock(i)
		if err != nil {
			return fmt.Errorf("index: partition: concept blocks %x block %d: %v", key, i, err)
		}
		docs = append(docs, d...)
		lists = append(lists, l...)
	}
	for s, shard := range shards {
		var sd []int
		var sl []match.List
		for i, d := range docs {
			if ShardOf(d, n) == s {
				sd = append(sd, d)
				sl = append(sl, lists[i])
			}
		}
		if batch {
			// Filtering can widen doc deltas past what the original
			// encoding carried, so a shard may no longer fit the batch
			// form; it then falls through to the varint encoder below.
			if enc, ok := EncodeBlocksBatch(sd, sl, 0); ok {
				if enc != nil {
					if shard.batch == nil {
						shard.batch = make(map[uint64][]byte)
					}
					shard.batch[key] = enc
				}
				continue
			}
		}
		if enc := EncodeBlocks(sd, sl, 0); enc != nil {
			if shard.blocks == nil {
				shard.blocks = make(map[uint64][]byte)
			}
			shard.blocks[key] = enc
		}
	}
	return nil
}
