package index

import (
	"encoding/binary"
	"fmt"

	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// Posting-list compression: the classic inverted-index layout of
// delta-encoded document ids and positions packed as unsigned
// varints. A compacted index answers the same queries as Index while
// storing each posting in a few bytes instead of two machine words —
// the representation a production retrieval system would keep on disk
// or in a block cache.
//
// Layout per term: varint(#documents), then per document
// varint(docDelta) varint(#positions) varint(posDelta)... with
// document ids and positions both delta-encoded within their runs.

// EncodePostings packs a (doc, pos)-sorted posting list.
func EncodePostings(ps []Posting) []byte {
	if len(ps) == 0 {
		return nil
	}
	// Group by document to count runs first.
	nDocs := 1
	for i := 1; i < len(ps); i++ {
		if ps[i].Doc != ps[i-1].Doc {
			nDocs++
		}
	}
	buf := make([]byte, 0, 2+len(ps)*2)
	buf = binary.AppendUvarint(buf, uint64(nDocs))
	prevDoc := 0
	for i := 0; i < len(ps); {
		doc := ps[i].Doc
		j := i
		for j < len(ps) && ps[j].Doc == doc {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(doc-prevDoc))
		prevDoc = doc
		buf = binary.AppendUvarint(buf, uint64(j-i))
		prevPos := 0
		for _, p := range ps[i:j] {
			buf = binary.AppendUvarint(buf, uint64(p.Pos-prevPos))
			prevPos = p.Pos
		}
		i = j
	}
	return buf
}

// MaxDocID and MaxPosition bound the document ids and token positions
// DecodePostings accepts. Compressed postings may come from disk or
// other untrusted storage; without these bounds a huge uvarint delta
// wraps the int accumulators negative, yielding out-of-order (even
// negative) postings that silently corrupt every downstream merge.
const (
	MaxDocID    = 1 << 40
	MaxPosition = 1 << 40
)

// DecodePostings unpacks an EncodePostings buffer. Document ids are
// bounded by MaxDocID and positions by MaxPosition; deltas that would
// overflow either bound are rejected as corrupt rather than wrapped.
func DecodePostings(b []byte) ([]Posting, error) {
	if len(b) == 0 {
		return nil, nil
	}
	nDocs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("index: corrupt posting header")
	}
	b = b[n:]
	var out []Posting
	doc := 0
	prevRunEnd := -1 // last position of the previous run of this doc
	for d := uint64(0); d < nDocs; d++ {
		delta, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt doc delta")
		}
		b = b[n:]
		// Check the delta before converting: a uvarint above MaxInt64
		// would wrap int(delta) negative.
		if delta > MaxDocID {
			return nil, fmt.Errorf("index: doc delta %d exceeds %d", delta, uint64(MaxDocID))
		}
		doc += int(delta)
		if doc > MaxDocID {
			return nil, fmt.Errorf("index: doc id %d exceeds %d", doc, int64(MaxDocID))
		}
		if delta != 0 {
			prevRunEnd = -1
		}
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("index: corrupt position count")
		}
		b = b[n:]
		pos := 0
		for k := uint64(0); k < count; k++ {
			pd, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, fmt.Errorf("index: corrupt position delta")
			}
			b = b[n:]
			if pd > MaxPosition {
				return nil, fmt.Errorf("index: position delta %d exceeds %d", pd, uint64(MaxPosition))
			}
			pos += int(pd)
			if pos > MaxPosition {
				return nil, fmt.Errorf("index: position %d exceeds %d", pos, int64(MaxPosition))
			}
			// A repeated run of the same document (doc delta 0) restarts
			// the position accumulator; reject it unless positions keep
			// ascending, so decoded postings are always (doc, pos)-sorted.
			if pos < prevRunEnd {
				return nil, fmt.Errorf("index: positions out of order in doc %d", doc)
			}
			out = append(out, Posting{Doc: doc, Pos: pos})
		}
		pos = max(pos, prevRunEnd)
		prevRunEnd = pos
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("index: %d trailing bytes", len(b))
	}
	return out, nil
}

// Compact is a read-only compressed index: the same query surface as
// Index over varint-packed posting lists, plus optional per-concept
// max-score metadata (meta.go) registered at build time for lossless
// top-k pruning.
type Compact struct {
	postings map[string][]byte
	meta     map[uint64][]byte  // ConceptKey → EncodeDocMax buffer
	blocks   map[uint64][]byte  // ConceptKey → EncodeBlocks buffer
	batch    map[uint64][]byte  // ConceptKey → EncodeBlocksBatch buffer
	pairs    map[PairKey][]byte // PairKey → EncodePairs buffer
	docs     int
}

// Compact freezes the index into its compressed form.
func (ix *Index) Compact() *Compact {
	c := &Compact{postings: make(map[string][]byte, len(ix.postings)), docs: ix.docs}
	for stem, ps := range ix.postings {
		c.postings[stem] = EncodePostings(ps)
	}
	return c
}

// Docs returns the number of documents.
func (c *Compact) Docs() int { return c.docs }

// Bytes returns the total compressed posting storage in bytes.
func (c *Compact) Bytes() int {
	n := 0
	for _, b := range c.postings {
		n += len(b)
	}
	return n
}

// Postings decodes the posting list of a word (stemmed internally).
func (c *Compact) Postings(word string) []Posting {
	b := c.postings[text.Stem(word)]
	ps, err := DecodePostings(b)
	if err != nil {
		// A Compact is only built from a valid Index, so decode
		// failures indicate memory corruption; fail loudly.
		panic(fmt.Sprintf("index: corrupt compacted postings for %q: %v", word, err))
	}
	return ps
}

// ConceptList derives a concept's match list within one document from
// the compressed postings, mirroring Index.ConceptList.
func (c *Compact) ConceptList(doc int, concept Concept) match.List {
	best := map[int]float64{}
	for word, score := range concept {
		for _, p := range c.Postings(word) {
			if p.Doc != doc {
				continue
			}
			if s, ok := best[p.Pos]; !ok || score > s {
				best[p.Pos] = score
			}
		}
	}
	out := make(match.List, 0, len(best))
	for pos, s := range best {
		out = append(out, match.Match{Loc: pos, Score: s})
	}
	out.Sort()
	return out
}

// QueryLists derives one match list per concept for a document.
func (c *Compact) QueryLists(doc int, concepts []Concept) match.Lists {
	lists := make(match.Lists, len(concepts))
	for j, cc := range concepts {
		lists[j] = c.ConceptList(doc, cc)
	}
	return lists
}
