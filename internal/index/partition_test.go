package index

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"bestjoin/internal/match"
)

// partitionCorpus builds a compacted index with registered concept
// metadata and block tables, exercising every section a Partition
// must split.
func partitionCorpus(t *testing.T) (*Compact, []Concept) {
	t.Helper()
	ix := New()
	bodies := []string{
		"lenovo makes laptops and ships laptops worldwide",
		"dell and lenovo both make laptops",
		"nothing relevant here at all whatsoever",
		"dell only dell again dell",
		"ibm sells lenovo its pc business",
		"laptops laptops laptops everywhere",
		"the pc business consolidated around dell and ibm",
		"quiet document about gardening",
		"lenovo dell ibm all in one line",
	}
	for d, b := range bodies {
		ix.AddText(d, b)
	}
	c := ix.Compact()
	concepts := []Concept{
		{"lenovo": 1.0, "dell": 0.8, "ibm": 0.6},
		{"laptops": 0.9, "pc": 0.7},
	}
	for _, cc := range concepts {
		c.AddConceptMeta(cc)
		c.AddConceptBlocksSized(cc, 2) // tiny blocks → several per concept
	}
	return c, concepts
}

func TestPartitionInvalid(t *testing.T) {
	c, _ := partitionCorpus(t)
	for _, n := range []int{0, -3} {
		if _, err := c.Partition(n); err == nil {
			t.Errorf("Partition(%d): want error, got nil", n)
		}
	}
}

func TestPartitionSingleIsIdentity(t *testing.T) {
	c, _ := partitionCorpus(t)
	shards, err := c.Partition(1)
	if err != nil {
		t.Fatalf("Partition(1): %v", err)
	}
	if len(shards) != 1 || shards[0] != c {
		t.Fatalf("Partition(1) = %v, want the receiver itself", shards)
	}
}

func TestPartitionReconstructsPostings(t *testing.T) {
	c, _ := partitionCorpus(t)
	for _, n := range []int{2, 3, 4, 7} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			shards, err := c.Partition(n)
			if err != nil {
				t.Fatalf("Partition(%d): %v", n, err)
			}
			if len(shards) != n {
				t.Fatalf("got %d shards, want %d", len(shards), n)
			}
			for stem, buf := range c.postings {
				want, err := DecodePostings(buf)
				if err != nil {
					t.Fatalf("original postings %q: %v", stem, err)
				}
				var got []Posting
				for s, shard := range shards {
					if shard.docs != c.docs {
						t.Fatalf("shard %d Docs() = %d, want global %d", s, shard.docs, c.docs)
					}
					ps, err := DecodePostings(shard.postings[stem])
					if err != nil {
						t.Fatalf("shard %d postings %q: %v", s, stem, err)
					}
					for _, p := range ps {
						if ShardOf(p.Doc, n) != s {
							t.Fatalf("shard %d owns doc %d (want shard %d)", s, p.Doc, ShardOf(p.Doc, n))
						}
					}
					got = append(got, ps...)
				}
				sortPostings(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("stem %q: shard union %v != original %v", stem, got, want)
				}
			}
		})
	}
}

func sortPostings(ps []Posting) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].Doc < ps[j-1].Doc || (ps[j].Doc == ps[j-1].Doc && ps[j].Pos < ps[j-1].Pos)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func TestPartitionSplitsConceptMeta(t *testing.T) {
	c, concepts := partitionCorpus(t)
	const n = 3
	shards, err := c.Partition(n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	for _, cc := range concepts {
		wantDocs, wantMax, ok := c.ConceptMeta(cc)
		if !ok {
			t.Fatalf("concept %v: meta missing on original", cc)
		}
		gotMax := map[int]float64{}
		for s, shard := range shards {
			docs, maxSc, ok := shard.ConceptMeta(cc)
			if !ok {
				continue
			}
			for i, d := range docs {
				if ShardOf(d, n) != s {
					t.Fatalf("shard %d meta owns doc %d", s, d)
				}
				gotMax[d] = maxSc[i]
			}
		}
		if len(gotMax) != len(wantDocs) {
			t.Fatalf("concept %v: shard meta covers %d docs, want %d", cc, len(gotMax), len(wantDocs))
		}
		for i, d := range wantDocs {
			if gotMax[d] != wantMax[i] {
				t.Fatalf("concept %v doc %d: shard max %v, want %v", cc, d, gotMax[d], wantMax[i])
			}
		}
	}
}

func TestPartitionSplitsConceptBlocks(t *testing.T) {
	c, concepts := partitionCorpus(t)
	const n = 2
	shards, err := c.Partition(n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	for _, cc := range concepts {
		wantDocs, wantLists := decodeAllBlocks(t, c, cc)
		gotLists := map[int]match.List{}
		for s, shard := range shards {
			docs, lists := decodeAllBlocks(t, shard, cc)
			for i, d := range docs {
				if ShardOf(d, n) != s {
					t.Fatalf("shard %d blocks own doc %d", s, d)
				}
				gotLists[d] = lists[i]
			}
		}
		if len(gotLists) != len(wantDocs) {
			t.Fatalf("concept %v: shard blocks cover %d docs, want %d", cc, len(gotLists), len(wantDocs))
		}
		for i, d := range wantDocs {
			if !reflect.DeepEqual(gotLists[d], wantLists[i]) {
				t.Fatalf("concept %v doc %d: shard list %v, want %v", cc, d, gotLists[d], wantLists[i])
			}
		}
	}
}

// TestPartitionSplitsBatchedBlocks is the batched-layout twin of
// TestPartitionSplitsConceptBlocks: a concept registered in the
// group-varint batch form must survive the split with its layout
// intact (each shard's buffer lands in the batch map, not the varint
// one — shard deltas are a subset of the original's, so they fit) and
// with exactly the original documents and match lists, shard-disjoint.
func TestPartitionSplitsBatchedBlocks(t *testing.T) {
	c, concepts := partitionCorpus(t)
	batched := Concept{"lenovo": 1.0, "ibm": 0.5}
	if !c.AddConceptBlocksBatchSized(batched, 2) {
		t.Fatal("batch layout not registered")
	}
	concepts = append(concepts, batched)
	const n = 3
	shards, err := c.Partition(n)
	if err != nil {
		t.Fatalf("Partition(%d): %v", n, err)
	}
	key := ConceptKey(batched)
	for s, shard := range shards {
		if _, leaked := shard.blocks[key]; leaked {
			t.Fatalf("shard %d: batched concept re-encoded as varint", s)
		}
	}
	for _, cc := range concepts {
		wantDocs, wantLists := decodeAllBlocks(t, c, cc)
		gotLists := map[int]match.List{}
		for s, shard := range shards {
			docs, lists := decodeAllBlocks(t, shard, cc)
			for i, d := range docs {
				if ShardOf(d, n) != s {
					t.Fatalf("shard %d blocks own doc %d", s, d)
				}
				gotLists[d] = lists[i]
			}
		}
		if len(gotLists) != len(wantDocs) {
			t.Fatalf("concept %v: shard blocks cover %d docs, want %d", cc, len(gotLists), len(wantDocs))
		}
		for i, d := range wantDocs {
			if !reflect.DeepEqual(gotLists[d], wantLists[i]) {
				t.Fatalf("concept %v doc %d: shard list %v, want %v", cc, d, gotLists[d], wantLists[i])
			}
		}
	}
}

// TestBuildConceptBlocksBatchMatchesVarint pins the two standalone
// builders against each other: both encode the same corpus-wide
// best-member-score merge, so decoding their outputs must agree
// document for document and match for match.
func TestBuildConceptBlocksBatchMatchesVarint(t *testing.T) {
	c, concepts := partitionCorpus(t)
	for _, cc := range concepts {
		vbuf := c.BuildConceptBlocks(cc)
		bbuf, ok := c.BuildConceptBlocksBatch(cc)
		if !ok {
			t.Fatalf("concept %v: batch builder fell back on an ordinary corpus", cc)
		}
		vt, err := DecodeBlocks(vbuf)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := DecodeBlocksBatch(bbuf)
		if err != nil {
			t.Fatal(err)
		}
		if len(vt.Infos) != len(bt.Infos) {
			t.Fatalf("concept %v: %d varint blocks vs %d batch blocks", cc, len(vt.Infos), len(bt.Infos))
		}
		for i := range vt.Infos {
			vd, vl, err := vt.DecodeBlock(i)
			if err != nil {
				t.Fatal(err)
			}
			bd, bl, err := bt.DecodeBlock(i)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(vd, bd) || !reflect.DeepEqual(vl, bl) {
				t.Fatalf("concept %v block %d: builders disagree", cc, i)
			}
		}
	}
	if buf, ok := c.BuildConceptBlocksBatch(Concept{"unseen-word": 1}); !ok || buf != nil {
		t.Fatalf("empty concept: got (%v, %v), want (nil, true)", buf, ok)
	}
}

func decodeAllBlocks(t *testing.T, c *Compact, cc Concept) ([]int, []match.List) {
	t.Helper()
	bt, ok := c.ConceptBlocks(cc)
	if !ok {
		return nil, nil
	}
	var docs []int
	var lists []match.List
	for i := range bt.Infos {
		d, l, err := bt.DecodeBlock(i)
		if err != nil {
			t.Fatalf("DecodeBlock(%d): %v", i, err)
		}
		docs = append(docs, d...)
		lists = append(lists, l...)
	}
	return docs, lists
}

// Partition must be deterministic: the same input always yields
// byte-identical shard buffers (the property that lets a coordinator
// and its future multi-process replicas agree on ownership).
func TestPartitionDeterministic(t *testing.T) {
	c, _ := partitionCorpus(t)
	a, err := c.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a {
		if len(a[s].postings) != len(b[s].postings) {
			t.Fatalf("shard %d: posting maps differ in size", s)
		}
		for stem, buf := range a[s].postings {
			if !bytes.Equal(buf, b[s].postings[stem]) {
				t.Fatalf("shard %d stem %q: buffers differ across runs", s, stem)
			}
		}
		for key, buf := range a[s].meta {
			if !bytes.Equal(buf, b[s].meta[key]) {
				t.Fatalf("shard %d meta %x: buffers differ across runs", s, key)
			}
		}
		for key, buf := range a[s].blocks {
			if !bytes.Equal(buf, b[s].blocks[key]) {
				t.Fatalf("shard %d blocks %x: buffers differ across runs", s, key)
			}
		}
	}
}

// More shards than documents must still work: surplus shards simply
// hold no postings while retaining the global doc count.
func TestPartitionMoreShardsThanDocs(t *testing.T) {
	ix := New()
	ix.AddText(0, "alpha beta")
	ix.AddText(1, "beta gamma")
	c := ix.Compact()
	shards, err := c.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	for s := 2; s < 5; s++ {
		if got := len(shards[s].postings); got != 0 {
			t.Fatalf("surplus shard %d has %d posting lists, want 0", s, got)
		}
		if shards[s].docs != c.docs {
			t.Fatalf("surplus shard %d Docs() = %d, want %d", s, shards[s].docs, c.docs)
		}
	}
}
