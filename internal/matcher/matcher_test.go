package matcher

import (
	"math"
	"testing"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/text"
)

const doc = "As part of the new deal, Lenovo will become the official PC partner " +
	"of the NBA, and it will be marketing its NBA affiliation in the US and in China. " +
	"The laptop maker has a similar marketing and technology partnership with the Olympic Games."

func TestExactMatchesStems(t *testing.T) {
	toks := text.Tokenize("partners partner partnership partnering")
	got := Exact{Word: "partner"}.Match(toks)
	// "partners", "partner", "partnering" share the stem "partner";
	// "partnership" does not.
	if len(got) != 3 {
		t.Fatalf("Exact matched %d tokens %v, want 3", len(got), got)
	}
	for _, m := range got {
		if m.Score != 1 {
			t.Errorf("Exact score = %v, want 1", m.Score)
		}
	}
	if got[0].Loc != 0 || got[1].Loc != 1 || got[2].Loc != 3 {
		t.Errorf("Exact locations = %v", got)
	}
}

func TestLexicalScoresByDistance(t *testing.T) {
	g := lexicon.Builtin()
	toks := text.Tokenize(doc)
	got := Lexical{Word: "partnership", Graph: g}.Match(toks)
	if len(got) == 0 {
		t.Fatal("Lexical found nothing for partnership")
	}
	byLoc := map[int]float64{}
	for _, m := range got {
		byLoc[m.Loc] = m.Score
	}
	// "partnership" itself must match with 1.0; "partner" and "deal"
	// (both neighbors of the partnership cluster head) with less.
	var sawExact, sawPartner, sawDeal bool
	for i, tok := range text.Tokenize(doc) {
		switch tok.Word {
		case "partnership":
			if math.Abs(byLoc[i]-1.0) > 1e-12 {
				t.Errorf("partnership scored %v at %d, want 1.0", byLoc[i], i)
			}
			sawExact = true
		case "partner":
			if s := byLoc[i]; s <= 0 || s >= 1 {
				t.Errorf("partner scored %v, want in (0,1)", s)
			}
			sawPartner = true
		case "deal":
			if s := byLoc[i]; s <= 0 || s >= 1 {
				t.Errorf("deal scored %v, want in (0,1)", s)
			}
			sawDeal = true
		}
	}
	if !sawExact || !sawPartner || !sawDeal {
		t.Errorf("missed expected matches: exact=%v partner=%v deal=%v", sawExact, sawPartner, sawDeal)
	}
}

func TestLexicalSortedAndCached(t *testing.T) {
	g := lexicon.Builtin()
	toks := text.Tokenize("deal deal deal partner")
	got := Lexical{Word: "partnership", Graph: g}.Match(toks)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	if !got.Sorted() {
		t.Error("Lexical output not sorted")
	}
}

func TestPhraseFullAndHead(t *testing.T) {
	toks := text.Tokenize("the leaning tower of pisa stands in pisa near another tower")
	p := Phrase{
		Name: "Leaning Tower of Pisa", Words: []string{"leaning", "tower", "of", "pisa"},
		Head: "pisa", FullScore: 1, HeadScore: 0.7,
	}
	got := p.Match(toks)
	if len(got) != 2 {
		t.Fatalf("Phrase matched %v, want full occurrence + lone head", got)
	}
	if got[0].Loc != 1 || got[0].Score != 1 {
		t.Errorf("full phrase match = %+v, want loc 1 score 1", got[0])
	}
	if got[1].Loc != 7 || got[1].Score != 0.7 {
		t.Errorf("head match = %+v, want loc 7 score 0.7", got[1])
	}
}

func TestPhraseNoHead(t *testing.T) {
	toks := text.Tokenize("hugo chavez spoke; chavez waved")
	p := Phrase{Name: "Hugo Chavez", Words: []string{"hugo", "chavez"}, Head: "chavez", FullScore: 1, HeadScore: 0.8}
	got := p.Match(toks)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestDateMatcher(t *testing.T) {
	toks := text.Tokenize("submissions due January 15, 2008; camera-ready 2011; founded 1989; see sect 7")
	got := Date{}.Match(toks)
	locs := map[int]bool{}
	for _, m := range got {
		locs[m.Loc] = true
		if m.Score != 1 {
			t.Errorf("date score = %v", m.Score)
		}
	}
	words := text.Tokenize("submissions due January 15, 2008; camera-ready 2011; founded 1989; see sect 7")
	for _, tok := range words {
		want := tok.Word == "january" || tok.Word == "2008"
		if locs[tok.Pos] != want {
			t.Errorf("token %q at %d matched=%v, want %v", tok.Word, tok.Pos, locs[tok.Pos], want)
		}
	}
}

func TestDateCustomRange(t *testing.T) {
	toks := text.Tokenize("1980 1995 2020")
	got := Date{MinYear: 1970, MaxYear: 1990}.Match(toks)
	if len(got) != 1 || got[0].Loc != 0 {
		t.Errorf("custom range matched %v", got)
	}
}

func TestPlaceMatcher(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	toks := text.Tokenize("held in Turin, Italy at the University campus near the venue")
	got := Place{Gazetteer: gz, Graph: g}.Match(toks)
	byLoc := map[int]float64{}
	for _, m := range got {
		byLoc[m.Loc] = m.Score
	}
	for _, tok := range toks {
		switch tok.Word {
		case "turin", "italy":
			if byLoc[tok.Pos] != 1 {
				t.Errorf("%q scored %v, want 1 (gazetteer)", tok.Word, byLoc[tok.Pos])
			}
		case "university", "venue":
			if byLoc[tok.Pos] != 0.7 {
				t.Errorf("%q scored %v, want 0.7 (graph fallback)", tok.Word, byLoc[tok.Pos])
			}
		case "held", "campus", "near", "the":
			if _, ok := byLoc[tok.Pos]; ok {
				t.Errorf("%q unexpectedly matched place", tok.Word)
			}
		}
	}
}

func TestUnionKeepsBestScorePerLocation(t *testing.T) {
	g := lexicon.Builtin()
	toks := text.Tokenize("the workshop and conference on data")
	u := Union{Name: "conference|workshop", Matchers: []Matcher{
		Lexical{Word: "conference", Graph: g},
		Lexical{Word: "workshop", Graph: g},
	}}
	got := u.Match(toks)
	if !got.Sorted() {
		t.Fatal("Union output not sorted")
	}
	byLoc := map[int]float64{}
	for _, m := range got {
		byLoc[m.Loc] = m.Score
	}
	// Both words are distance ≤1 from each matcher's term, so the
	// union must score each occurrence 1.0 (its exact matcher wins).
	for _, tok := range toks {
		if tok.Word == "workshop" || tok.Word == "conference" {
			if math.Abs(byLoc[tok.Pos]-1.0) > 1e-12 {
				t.Errorf("%q scored %v under union, want 1.0", tok.Word, byLoc[tok.Pos])
			}
		}
	}
}

func TestScoredScales(t *testing.T) {
	toks := text.Tokenize("alpha alpha")
	got := Scored{Inner: Exact{Word: "alpha"}, Factor: 0.5}.Match(toks)
	if len(got) != 2 || got[0].Score != 0.5 {
		t.Errorf("Scored = %v", got)
	}
}

func TestCompileShape(t *testing.T) {
	g := lexicon.Builtin()
	toks := text.Tokenize(doc)
	lists := Compile(toks, []Matcher{
		Lexical{Word: "pc", Graph: g},
		Lexical{Word: "sports", Graph: g},
		Lexical{Word: "partnership", Graph: g},
	})
	if len(lists) != 3 {
		t.Fatalf("Compile returned %d lists", len(lists))
	}
	if err := lists.Validate(); err != nil {
		t.Fatal(err)
	}
	for j, l := range lists {
		if len(l) == 0 {
			t.Errorf("list %d empty; the Figure 1 document matches all three terms", j)
		}
	}
}

func TestMatcherTermNames(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	cases := map[string]Matcher{
		"word":                Exact{Word: "word"},
		"partnership":         Lexical{Word: "partnership", Graph: g},
		"Leaning Tower":       Phrase{Name: "Leaning Tower", Words: []string{"leaning", "tower"}},
		"date":                Date{},
		"place":               Place{Gazetteer: gz, Graph: g},
		"conference|workshop": Union{Name: "conference|workshop"},
		"scaled":              Scored{Inner: Exact{Word: "scaled"}, Factor: 0.5},
	}
	for want, m := range cases {
		if got := m.Term(); got != want {
			t.Errorf("Term() = %q, want %q", got, want)
		}
	}
}
