// Package matcher turns tokenized documents into the scored match
// lists the join algorithms consume. A Matcher finds and scores all
// occurrences that match one query term; Compile runs one matcher per
// query term over a document and assembles the match.Lists instance.
//
// The shipped matchers mirror the "simple matchers" of the paper's
// TREC and DBWorld experiments: stem-equality matching, lexical-graph
// matching scored 1−0.3d over graph distance (the WordNet rule),
// phrase matching for multi-word names, a date matcher that accepts
// month names and years 1990–2010, and a place matcher backed by the
// gazetteer with a lexical-graph fallback scored 0.7.
package matcher

import (
	"strconv"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/match"
	"bestjoin/internal/text"
)

// Matcher finds all matches for one query term in a token stream.
type Matcher interface {
	// Match returns the term's scored matches, sorted by location.
	Match(tokens []text.Token) match.List
	// Term returns the query term's display name.
	Term() string
}

// Compile runs each matcher over the document and returns one match
// list per query term, ready for the join algorithms.
func Compile(tokens []text.Token, matchers []Matcher) match.Lists {
	lists := make(match.Lists, len(matchers))
	for j, m := range matchers {
		lists[j] = m.Match(tokens)
	}
	return lists
}

// Exact matches tokens whose Porter stem equals the term's stem,
// scoring every occurrence 1.
type Exact struct {
	Word string
}

func (e Exact) Term() string { return e.Word }

func (e Exact) Match(tokens []text.Token) match.List {
	stem := text.Stem(e.Word)
	var out match.List
	for _, t := range tokens {
		if text.Stem(t.Word) == stem {
			out = append(out, match.Match{Loc: t.Pos, Score: 1})
		}
	}
	return out
}

// Lexical matches tokens within lexicon.MaxDistance graph edges of the
// term, scored 1 − 0.3·distance (the paper's WordNet matcher).
type Lexical struct {
	Word  string
	Graph *lexicon.Graph
}

func (l Lexical) Term() string { return l.Word }

func (l Lexical) Match(tokens []text.Token) match.List {
	var out match.List
	cache := map[string]float64{} // stem -> score, -1 for no match
	for _, t := range tokens {
		stem := text.Stem(t.Word)
		s, seen := cache[stem]
		if !seen {
			if score, ok := l.Graph.Score(l.Word, t.Word); ok {
				s = score
			} else {
				s = -1
			}
			cache[stem] = s
		}
		if s > 0 {
			out = append(out, match.Match{Loc: t.Pos, Score: s})
		}
	}
	return out
}

// Phrase matches a multi-word name. A full in-order occurrence of all
// words scores FullScore at the position of its first word; an
// occurrence of the distinguishing head word alone scores HeadScore.
// It covers terms like "Leaning Tower of Pisa" where a bare "Pisa"
// still carries signal.
type Phrase struct {
	Name      string   // display name
	Words     []string // the phrase, in order
	Head      string   // distinguishing single word ("" disables)
	FullScore float64  // score of a full phrase occurrence (e.g. 1)
	HeadScore float64  // score of a lone head occurrence (e.g. 0.7)
}

func (p Phrase) Term() string { return p.Name }

func (p Phrase) Match(tokens []text.Token) match.List {
	stems := make([]string, len(p.Words))
	for i, w := range p.Words {
		stems[i] = text.Stem(w)
	}
	headStem := ""
	if p.Head != "" {
		headStem = text.Stem(p.Head)
	}
	tokStems := make([]string, len(tokens))
	for i, t := range tokens {
		tokStems[i] = text.Stem(t.Word)
	}
	// Full occurrences first; tokens they cover must not also produce
	// lone-head matches.
	covered := make([]bool, len(tokens))
	var out match.List
	for i := 0; i+len(stems) <= len(tokens); i++ {
		full := true
		for k, s := range stems {
			if tokStems[i+k] != s {
				full = false
				break
			}
		}
		if full {
			out = append(out, match.Match{Loc: tokens[i].Pos, Score: p.FullScore})
			for k := range stems {
				covered[i+k] = true
			}
		}
	}
	if headStem != "" {
		for i := range tokens {
			if !covered[i] && tokStems[i] == headStem {
				out = append(out, match.Match{Loc: tokens[i].Pos, Score: p.HeadScore})
			}
		}
	}
	out.Sort()
	return out
}

// monthStems holds the Porter stems of English month names and common
// abbreviations.
var monthStems = func() map[string]bool {
	months := []string{
		"january", "february", "march", "april", "may", "june", "july",
		"august", "september", "october", "november", "december",
		"jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
		"oct", "nov", "dec",
	}
	out := make(map[string]bool, len(months))
	for _, m := range months {
		out[text.Stem(m)] = true
	}
	return out
}()

// Date is the paper's DBWorld date matcher: month names and numbers
// between MinYear and MaxYear match with score 1.
type Date struct {
	MinYear, MaxYear int // zero values default to the paper's 1990–2010
}

func (d Date) Term() string { return "date" }

func (d Date) Match(tokens []text.Token) match.List {
	lo, hi := d.MinYear, d.MaxYear
	if lo == 0 {
		lo = 1990
	}
	if hi == 0 {
		hi = 2010
	}
	var out match.List
	for _, t := range tokens {
		if monthStems[text.Stem(t.Word)] {
			out = append(out, match.Match{Loc: t.Pos, Score: 1})
			continue
		}
		if n, err := strconv.Atoi(t.Word); err == nil && n >= lo && n <= hi {
			out = append(out, match.Match{Loc: t.Pos, Score: 1})
		}
	}
	return out
}

// Place is the paper's DBWorld place matcher: gazetteer hits score 1;
// otherwise a token directly connected to "place" in the lexical graph
// scores 0.7.
type Place struct {
	Gazetteer *gazetteer.Gazetteer
	Graph     *lexicon.Graph
}

func (p Place) Term() string { return "place" }

func (p Place) Match(tokens []text.Token) match.List {
	var out match.List
	for _, t := range tokens {
		if p.Gazetteer != nil && p.Gazetteer.Contains(t.Word) {
			out = append(out, match.Match{Loc: t.Pos, Score: 1})
			continue
		}
		if p.Graph != nil {
			if d, ok := p.Graph.Distance("place", t.Word, 1); ok && d == 1 {
				out = append(out, match.Match{Loc: t.Pos, Score: 0.7})
			}
		}
	}
	return out
}

// Union merges several matchers for one query term (e.g. the DBWorld
// query's conference|workshop term), keeping the best score per
// location.
type Union struct {
	Name     string
	Matchers []Matcher
}

func (u Union) Term() string { return u.Name }

func (u Union) Match(tokens []text.Token) match.List {
	best := map[int]float64{}
	for _, m := range u.Matchers {
		for _, mm := range m.Match(tokens) {
			if s, ok := best[mm.Loc]; !ok || mm.Score > s {
				best[mm.Loc] = mm.Score
			}
		}
	}
	out := make(match.List, 0, len(best))
	for loc, s := range best {
		out = append(out, match.Match{Loc: loc, Score: s})
	}
	out.Sort()
	return out
}

// Scored wraps a matcher, scaling every match score by Factor — handy
// for the paper's rule that any term directly connected to
// "conference" in the graph scores 0.7 while "conference" itself
// scores 1 (Lexical already implements exactly that via distances, but
// Scored lets callers re-weight other matchers).
type Scored struct {
	Inner  Matcher
	Factor float64
}

func (s Scored) Term() string { return s.Inner.Term() }

func (s Scored) Match(tokens []text.Token) match.List {
	out := s.Inner.Match(tokens)
	for i := range out {
		out[i].Score *= s.Factor
	}
	return out
}
