package lexicon

// Builtin returns the embedded lexical graph: synonym/hypernym
// clusters covering the vocabulary of the paper's experiments. Each
// AddSynonyms call forms a star around a head word, so synonyms sit at
// distance 1 from the head and 2 from each other; chains of AddEdge
// calls create the longer distances the (1−0.3d) scoring exercises.
func Builtin() *Graph {
	g := NewGraph()

	// --- Introductory example (Figure 1): PC makers, sports,
	// partnerships. Companies hang off "pc maker" concepts; sports
	// organisations off "sports".
	g.AddSynonyms("computer", "pc", "laptop", "desktop", "notebook")
	g.AddEdge("computer", "maker")
	g.AddSynonyms("maker", "manufacturer", "producer", "vendor")
	g.AddSynonyms("company", "firm", "corporation", "business")
	g.AddEdge("maker", "company")
	g.AddSynonyms("pc", "lenovo", "dell", "hewlett", "ibm", "apple", "acer", "toshiba")
	g.AddSynonyms("sports", "sport", "athletics", "games")
	g.AddSynonyms("sport", "nba", "nfl", "olympics", "olympic", "basketball", "football", "soccer")
	g.AddEdge("olympic", "games")
	g.AddSynonyms("partnership", "partner", "alliance", "deal", "collaboration", "agreement")
	g.AddEdge("deal", "contract")

	// --- TREC Q1: Leaning Tower of Pisa began to be built in what year?
	g.AddSynonyms("tower", "campanile", "belfry", "spire", "minaret")
	g.AddEdge("tower", "building")
	g.AddSynonyms("begin", "began", "start", "commence", "initiate", "launch")
	g.AddEdge("start", "open")
	g.AddSynonyms("build", "construct", "erect", "assemble", "fabricate")
	g.AddEdge("construct", "construction")
	g.AddEdge("build", "building")
	g.AddSynonyms("year", "decade", "century", "annum")
	g.AddEdge("year", "date")
	g.AddEdge("year", "era")

	// --- Q2: What school and in what year did Hugo Chavez graduate?
	g.AddSynonyms("graduate", "graduation", "degree", "diploma", "alumnus")
	g.AddEdge("graduate", "study")
	g.AddSynonyms("school", "academy", "college", "university", "institute")
	g.AddEdge("school", "education")
	g.AddEdge("university", "campus")
	// A two-edge bridge college–coursework–degree puts "college"
	// within 3 edges of "graduate" and "degree" within 3 of "school",
	// so those tokens match both term lists at once — the duplicate
	// matches the paper reports for Q2 (2.7 per document) — without
	// collapsing the two clusters into one.
	g.AddEdge("college", "coursework")
	g.AddEdge("coursework", "degree")

	// --- Q3: In what city is the Lebanese parliament located?
	g.AddSynonyms("parliament", "assembly", "legislature", "congress", "senate")
	g.AddEdge("parliament", "government")
	g.AddSynonyms("city", "town", "metropolis", "capital", "municipality")
	g.AddEdge("city", "place")
	// "in" stays a small function-word cluster; connecting it to
	// "located" would put it within 3 edges of "city" (via the
	// location–place–city chain) and flood city match lists.
	g.AddSynonyms("in", "within", "inside", "at", "into")
	g.AddEdge("located", "location")

	// --- Q4: In what country was Stonehenge built?
	g.AddSynonyms("country", "nation", "state", "land", "kingdom")
	g.AddEdge("country", "territory")
	g.AddSynonyms("monument", "stonehenge", "megalith", "memorial")
	g.AddEdge("monument", "landmark")

	// --- Q5: When did Prince Edward marry?
	g.AddSynonyms("marry", "wed", "wedding", "marriage", "spouse")
	g.AddEdge("wedding", "ceremony")
	g.AddSynonyms("prince", "princess", "royal", "duke")
	g.AddEdge("prince", "edward")
	g.AddSynonyms("date", "day", "time", "when", "month")
	g.AddEdge("date", "calendar")

	// --- Q6: Where was Alfred Hitchcock born?
	g.AddSynonyms("born", "birth", "birthplace", "native", "birthday")
	g.AddEdge("born", "origin")
	g.AddEdge("hitchcock", "alfred")
	g.AddEdge("hitchcock", "director")
	g.AddSynonyms("director", "filmmaker", "producer")

	// --- Q7: Where is the IMF headquartered?
	// No headquarters–located edge: "located" and "location" share a
	// Porter stem, which would pull "city" within 3 edges of
	// "headquarters" (headquarters–locat–place–city) and make every
	// city/headquarters token a duplicate match in Q7.
	g.AddSynonyms("headquarters", "headquartered", "base", "based", "office")
	g.AddEdge("imf", "fund")
	g.AddSynonyms("fund", "monetary", "finance", "bank")

	// --- DBWorld query {conference|workshop, date, place}, including
	// the paper's two manual edges: conference–workshop and
	// university–place.
	g.AddSynonyms("conference", "symposium", "congress", "meeting", "convention", "summit", "forum")
	g.AddEdge("conference", "workshop")
	g.AddSynonyms("workshop", "seminar", "tutorial", "session")
	g.AddSynonyms("place", "location", "venue", "site", "locale", "spot")
	g.AddEdge("university", "place")
	g.AddEdge("date", "deadline")
	g.AddEdge("deadline", "submission")
	g.AddSynonyms("paper", "manuscript", "article", "submission")
	g.AddSynonyms("topic", "theme", "subject", "area")

	return g
}
