// Package lexicon is the repository's stand-in for WordNet. The
// paper's TREC matcher deems two terms matching when their WordNet
// graph distance d (in edges) is at most 3, scoring the match 1−0.3d,
// with all comparisons done on Porter stems. WordNet itself is not
// redistributable here, so this package provides the same interface
// over an embedded lexical graph (see builtin.go) covering the
// vocabulary of the paper's seven TREC queries, its DBWorld query, and
// its introductory example — plus the two edges the paper manually
// added (conference–workshop and university–place).
//
// The join algorithms only consume (location, score) lists, so any
// graph with the same distance-based scoring rule exercises identical
// code paths; the graph's linguistic fidelity is irrelevant to the
// reproduction target (algorithmic efficiency).
package lexicon

import (
	"bestjoin/internal/text"
)

// MaxDistance is the largest graph distance that still counts as a
// match (the paper uses 3).
const MaxDistance = 3

// ScorePerEdge is the score decrement per edge of graph distance (the
// paper scores a match at distance d as 1 − 0.3d).
const ScorePerEdge = 0.3

// Graph is an undirected lexical graph over Porter stems.
type Graph struct {
	adj map[string][]string
}

// NewGraph returns an empty lexical graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[string][]string)}
}

// AddEdge connects two words (stemmed internally). Adding an edge
// twice is harmless for correctness; distances are computed by BFS.
func (g *Graph) AddEdge(a, b string) {
	as, bs := text.Stem(a), text.Stem(b)
	if as == bs {
		return
	}
	g.adj[as] = append(g.adj[as], bs)
	g.adj[bs] = append(g.adj[bs], as)
}

// AddSynonyms connects every word in the list to the first one,
// forming a star: each synonym is at distance 1 from the head word and
// 2 from each other.
func (g *Graph) AddSynonyms(head string, synonyms ...string) {
	for _, s := range synonyms {
		g.AddEdge(head, s)
	}
}

// Contains reports whether the word (after stemming) is a node.
func (g *Graph) Contains(word string) bool {
	_, ok := g.adj[text.Stem(word)]
	return ok
}

// Distance returns the graph distance between two words (on stems),
// up to max edges. ok is false when the distance exceeds max or either
// word is unknown. Identical stems are at distance 0 even when the
// word is not a node — exact matches never require the lexicon.
func (g *Graph) Distance(a, b string, max int) (d int, ok bool) {
	as, bs := text.Stem(a), text.Stem(b)
	if as == bs {
		return 0, true
	}
	if max <= 0 {
		return 0, false
	}
	// BFS from as, bounded by max.
	frontier := []string{as}
	seen := map[string]bool{as: true}
	for depth := 1; depth <= max; depth++ {
		var next []string
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if seen[v] {
					continue
				}
				if v == bs {
					return depth, true
				}
				seen[v] = true
				next = append(next, v)
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return 0, false
}

// Score returns the paper's match score for word against term:
// 1 − ScorePerEdge·d when their graph distance d ≤ MaxDistance, with
// ok=false otherwise.
func (g *Graph) Score(term, word string) (score float64, ok bool) {
	d, ok := g.Distance(term, word, MaxDistance)
	if !ok {
		return 0, false
	}
	return 1 - ScorePerEdge*float64(d), true
}

// Neighborhood returns every node within max edges of the word, mapped
// to its distance (the word itself at distance 0 when it is a node).
// Useful for deriving concept match lists from inverted indexes
// (footnote 1 of the paper).
func (g *Graph) Neighborhood(word string, max int) map[string]int {
	ws := text.Stem(word)
	out := map[string]int{}
	if _, ok := g.adj[ws]; ok {
		out[ws] = 0
	} else {
		return out
	}
	frontier := []string{ws}
	for depth := 1; depth <= max; depth++ {
		var next []string
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if _, seen := out[v]; seen {
					continue
				}
				out[v] = depth
				next = append(next, v)
			}
		}
		frontier = next
	}
	return out
}

// Nodes returns the number of nodes in the graph.
func (g *Graph) Nodes() int { return len(g.adj) }
