package lexicon

import (
	"math"
	"testing"
)

func TestDistanceBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a1", "b1")
	g.AddEdge("b1", "c1")
	g.AddEdge("c1", "d1")
	g.AddEdge("d1", "e1")

	cases := []struct {
		a, b string
		max  int
		d    int
		ok   bool
	}{
		{"a1", "a1", 3, 0, true},
		{"a1", "b1", 3, 1, true},
		{"a1", "c1", 3, 2, true},
		{"a1", "d1", 3, 3, true},
		{"a1", "e1", 3, 0, false}, // distance 4 exceeds max
		{"a1", "e1", 4, 4, true},
		{"a1", "zz", 3, 0, false}, // unknown word
		{"zz", "zz", 3, 0, true},  // identical stems always distance 0
	}
	for _, c := range cases {
		d, ok := g.Distance(c.a, c.b, c.max)
		if ok != c.ok || (ok && d != c.d) {
			t.Errorf("Distance(%q,%q,max=%d) = %d,%v; want %d,%v", c.a, c.b, c.max, d, ok, c.d, c.ok)
		}
	}
}

func TestDistanceIsSymmetric(t *testing.T) {
	g := Builtin()
	pairs := [][2]string{{"conference", "seminar"}, {"pc", "lenovo"}, {"year", "date"}}
	for _, p := range pairs {
		d1, ok1 := g.Distance(p[0], p[1], MaxDistance)
		d2, ok2 := g.Distance(p[1], p[0], MaxDistance)
		if ok1 != ok2 || d1 != d2 {
			t.Errorf("asymmetric distance for %v: (%d,%v) vs (%d,%v)", p, d1, ok1, d2, ok2)
		}
	}
}

func TestDistanceUsesStems(t *testing.T) {
	g := NewGraph()
	g.AddEdge("marry", "wedding")
	// "married" stems to the same node as "marry".
	if d, ok := g.Distance("married", "weddings", 3); !ok || d != 1 {
		t.Errorf("stemmed distance = %d,%v, want 1,true", d, ok)
	}
}

func TestScoreRule(t *testing.T) {
	g := NewGraph()
	g.AddEdge("x1", "y1")
	g.AddEdge("y1", "z1")
	cases := []struct {
		a, b  string
		score float64
		ok    bool
	}{
		{"x1", "x1", 1.0, true},
		{"x1", "y1", 0.7, true},
		{"x1", "z1", 0.4, true},
	}
	for _, c := range cases {
		s, ok := g.Score(c.a, c.b)
		if ok != c.ok || math.Abs(s-c.score) > 1e-12 {
			t.Errorf("Score(%q,%q) = %v,%v; want %v,%v", c.a, c.b, s, ok, c.score, c.ok)
		}
	}
}

func TestBuiltinCoversExperimentVocabulary(t *testing.T) {
	g := Builtin()
	if g.Nodes() < 150 {
		t.Errorf("builtin graph has only %d nodes", g.Nodes())
	}
	// The paper's manual edges must be present at distance 1.
	mustPairs := [][2]string{
		{"conference", "workshop"},
		{"university", "place"},
	}
	for _, p := range mustPairs {
		if d, ok := g.Distance(p[0], p[1], 1); !ok || d != 1 {
			t.Errorf("builtin: %v not at distance 1 (d=%d ok=%v)", p, d, ok)
		}
	}
	// Representative query-term ↔ document-word matches within 3.
	within := [][2]string{
		{"sports", "nba"},
		{"pc", "lenovo"},
		{"partnership", "deal"},
		{"conference", "symposium"},
		{"school", "university"},
		{"marry", "wedding"},
		{"born", "birthplace"},
		{"year", "century"},
	}
	for _, p := range within {
		if _, ok := g.Distance(p[0], p[1], MaxDistance); !ok {
			t.Errorf("builtin: %q and %q not within %d edges", p[0], p[1], MaxDistance)
		}
	}
	// Unrelated clusters must stay far apart.
	far := [][2]string{
		{"stonehenge", "nba"},
		{"imf", "wedding"},
	}
	for _, p := range far {
		if d, ok := g.Distance(p[0], p[1], MaxDistance); ok {
			t.Errorf("builtin: %q and %q unexpectedly within %d edges (d=%d)", p[0], p[1], MaxDistance, d)
		}
	}
}

func TestNeighborhood(t *testing.T) {
	g := NewGraph()
	g.AddEdge("hub", "s1")
	g.AddEdge("hub", "s2")
	g.AddEdge("s1", "t1")
	n := g.Neighborhood("hub", 1)
	if len(n) != 3 || n["hub"] != 0 || n["s1"] != 1 || n["s2"] != 1 {
		t.Errorf("Neighborhood(hub,1) = %v", n)
	}
	n = g.Neighborhood("hub", 2)
	if n["t1"] != 2 {
		t.Errorf("Neighborhood(hub,2) missing t1: %v", n)
	}
	if len(g.Neighborhood("unknown", 2)) != 0 {
		t.Error("Neighborhood of unknown word should be empty")
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := NewGraph()
	g.AddEdge("same", "same")
	if g.Nodes() != 0 {
		t.Error("self edge created nodes")
	}
}
