package experiments

import (
	"fmt"

	"bestjoin/internal/corpus"
	"bestjoin/internal/dedup"
	"bestjoin/internal/gazetteer"
	"bestjoin/internal/join"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/match"
	"bestjoin/internal/matcher"
	"bestjoin/internal/naive"
	"bestjoin/internal/synth"
	"bestjoin/internal/text"
)

// dbworldInstance holds the materialized CFP match lists plus the
// ground truth for extraction accuracy.
type dbworldInstance struct {
	msgs []corpus.CFP
	docs []match.Lists
}

func dbworldInstanceFor(o Options) dbworldInstance {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	// 7 of the paper's 25 messages were deadline extensions; scale
	// proportionally for other sizes.
	ext := o.DBWorldMsgs * 7 / 25
	msgs := corpus.GenerateDBWorld(o.DBWorldMsgs, ext, o.Seed)
	ms := corpus.DBWorldQuery(g, gz)
	inst := dbworldInstance{msgs: msgs}
	for _, m := range msgs {
		inst.docs = append(inst.docs, matcher.Compile(text.Tokenize(m.Text), ms))
	}
	return inst
}

// DBWorld reproduces the Section VIII DBWorld table: the average match
// list sizes of the query {conference|workshop, date, place}, the
// duplicate count, and per-algorithm execution times over the
// messages. As in the paper, MED is omitted (the query has three
// terms, where WIN and MED scoring coincide and WIN is invoked).
// Two extra rows report extraction accuracy — on how many messages the
// best matchset pinpoints the true meeting date and place — and the
// failure count of the naive take-the-first-date heuristic the paper's
// footnote 12 discusses.
func DBWorld(o Options) Table {
	inst := dbworldInstanceFor(o)
	n := float64(len(inst.docs))

	t := Table{
		ID:      "dbworld",
		Title:   "DBWorld CFP experiment",
		Columns: []string{"metric", "conference|workshop", "date", "place"},
	}
	sizes := make([]float64, 3)
	dups := 0.0
	for _, doc := range inst.docs {
		for j, l := range doc {
			sizes[j] += float64(len(l))
		}
		d, _ := synth.CountDuplicates(doc)
		dups += float64(d)
	}
	t.Rows = append(t.Rows, []string{
		"avg list size",
		fmt.Sprintf("%.1f", sizes[0]/n), fmt.Sprintf("%.1f", sizes[1]/n), fmt.Sprintf("%.1f", sizes[2]/n),
	})
	t.Rows = append(t.Rows, []string{"avg #dups per doc", fmt.Sprintf("%.1f", dups/n), "", ""})

	for _, alg := range dbworldAlgorithms() {
		d, _ := timeOver(alg, inst.docs)
		t.Rows = append(t.Rows, []string{"time(ms) " + alg.name, ms(d), "", ""})
	}

	winOK, maxOK := extractionAccuracy(inst)
	t.Rows = append(t.Rows, []string{
		"correct extractions WIN",
		fmt.Sprintf("%d/%d", winOK, len(inst.docs)), "", "",
	})
	t.Rows = append(t.Rows, []string{
		"correct extractions MAX",
		fmt.Sprintf("%d/%d", maxOK, len(inst.docs)), "", "",
	})
	t.Rows = append(t.Rows, []string{
		"first-date heuristic fails",
		fmt.Sprintf("%d/%d", firstDateFailures(inst), len(inst.docs)), "", "",
	})
	return t
}

func dbworldAlgorithms() []algorithm {
	return []algorithm{
		{"WIN", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.WIN(trecWIN, x) }, ls).Invocations
		}},
		{"MAX", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MAX(trecMAX, x) }, ls).Invocations
		}},
		{"NWIN", func(ls match.Lists) int { naive.WIN(trecWIN, ls); return 1 }},
		{"NMED", func(ls match.Lists) int { naive.MED(trecMED, ls); return 1 }},
		{"NMAX", func(ls match.Lists) int { naive.MAX(trecMAX, ls); return 1 }},
	}
}

// extractionAccuracy counts messages where the best matchset's date
// and place matches land within two tokens of the ground-truth meeting
// date and venue.
func extractionAccuracy(inst dbworldInstance) (winOK, maxOK int) {
	const slack = 2
	for i, doc := range inst.docs {
		truthDate := inst.msgs[i].MeetingDatePos
		truthPlace := inst.msgs[i].MeetingPlacePos
		check := func(set match.Set) bool {
			return abs(set[1].Loc-truthDate) <= slack && abs(set[2].Loc-truthPlace) <= slack
		}
		if r := dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.WIN(trecWIN, x) }, doc); r.OK && check(r.Set) {
			winOK++
		}
		if r := dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MAX(trecMAX, x) }, doc); r.OK && check(r.Set) {
			maxOK++
		}
	}
	return winOK, maxOK
}

// firstDateFailures counts messages where simply returning the first
// date in the document misses the true meeting date (footnote 12).
func firstDateFailures(inst dbworldInstance) int {
	fails := 0
	for i, doc := range inst.docs {
		dates := doc[1]
		if len(dates) == 0 {
			fails++
			continue
		}
		if abs(dates[0].Loc-inst.msgs[i].MeetingDatePos) > 2 {
			fails++
		}
	}
	return fails
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
