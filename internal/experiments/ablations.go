package experiments

import (
	"fmt"
	"time"

	"bestjoin/internal/dedup"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/synth"
)

// Ablations quantifies the design choices DESIGN.md calls out, as a
// table (the benchmark suite has testing.B counterparts):
//
//   - the duplicate-avoidance search configurations (the paper's plain
//     recursive method vs bound pruning vs pruning+memoization), in
//     solver invocations and time, at two duplicate frequencies;
//   - the specialized MAX algorithm vs the general envelope approach;
//   - the switch-to-naive heuristic at extreme term-popularity skew.
func Ablations(o Options) Table {
	t := Table{
		ID:      "ablations",
		Title:   "design-choice ablations",
		Columns: []string{"ablation", "configuration", "time(ms)", "invocations/doc"},
	}

	// Duplicate-avoidance search configurations.
	alg := func(ls match.Lists) (match.Set, float64, bool) { return join.MED(synthMED, ls) }
	for _, lambda := range []float64{1.5, 2.5} {
		ds := synthDataset(o, func(c *synth.Config) { c.Lambda = lambda })
		for _, cfg := range []struct {
			name string
			opts dedup.Options
		}{
			{"plain", dedup.Options{}},
			{"prune", dedup.Options{Prune: true}},
			{"prune+memo", dedup.Options{Prune: true, Memoize: true}},
		} {
			start := time.Now()
			invocations := 0
			for _, doc := range ds.Docs {
				invocations += dedup.BestWithOptions(alg, doc, cfg.opts).Invocations
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("dedup search (lambda=%.1f)", lambda),
				cfg.name,
				ms(time.Since(start)),
				fmt.Sprintf("%.2f", float64(invocations)/float64(len(ds.Docs))),
			})
		}
	}

	// Specialized vs general MAX.
	ds := synthDataset(o, nil)
	start := time.Now()
	for _, doc := range ds.Docs {
		join.MAX(synthMAX, doc)
	}
	t.Rows = append(t.Rows, []string{"MAX algorithm", "specialized (Section V)", ms(time.Since(start)), "-"})
	start = time.Now()
	for _, doc := range ds.Docs {
		join.MAXGeneral(synthMAX, doc)
	}
	t.Rows = append(t.Rows, []string{"MAX algorithm", "general envelope (Lemma 2)", ms(time.Since(start)), "-"})

	// Switch-to-naive heuristic at extreme skew.
	for _, s := range []float64{1.1, 4.0} {
		ds := synthDataset(o, func(c *synth.Config) { c.ZipfS = s })
		start := time.Now()
		for _, doc := range ds.Docs {
			join.MED(synthMED, doc)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("skew switch (s=%.1f)", s), "always-fast", ms(time.Since(start)), "-",
		})
		start = time.Now()
		for _, doc := range ds.Docs {
			// The paper's Section VIII fix: with all match lists but
			// one holding at most one match, enumerate directly.
			if allButOneSingleton(doc) {
				naive.MED(synthMED, doc)
			} else {
				join.MED(synthMED, doc)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("skew switch (s=%.1f)", s), "with-switch", ms(time.Since(start)), "-",
		})
	}
	return t
}

// allButOneSingleton reports whether at most one list has more than
// one match — the paper's trigger for switching to the naive
// algorithm.
func allButOneSingleton(lists match.Lists) bool {
	big := 0
	for _, l := range lists {
		if len(l) > 1 {
			big++
		}
	}
	return big <= 1
}
