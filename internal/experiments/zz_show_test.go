package experiments

import (
	"fmt"
	"testing"
)

func TestShowTables(t *testing.T) {
	o := Options{SynthDocs: 200, TRECDocs: 200, DBWorldMsgs: 25, Seed: 1}
	for _, tab := range All(o) {
		fmt.Println(tab.Text())
	}
}
