package experiments

import (
	"fmt"

	"bestjoin/internal/synth"
)

// synthDataset materializes one synthetic dataset (match-list
// generation is excluded from all timings).
func synthDataset(o Options, mutate func(*synth.Config)) *synth.Dataset {
	cfg := synth.DefaultConfig()
	cfg.Docs = o.SynthDocs
	cfg.Seed = o.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	return synth.Generate(cfg)
}

// Fig6 reproduces Figure 6: total execution time over the dataset when
// the number of query terms grows from 2 to 7. The proposed algorithms
// stay near-flat while the naive ones explode combinatorially.
func Fig6(o Options) Table {
	t := Table{
		ID:      "fig6",
		Title:   "execution time (ms) vs number of query terms",
		Columns: []string{"terms", "WIN", "MED", "MAX", "NWIN", "NMED", "NMAX"},
	}
	for terms := 2; terms <= 7; terms++ {
		ds := synthDataset(o, func(c *synth.Config) { c.Terms = terms })
		row := []string{fmt.Sprintf("%d", terms)}
		for _, alg := range append(proposed(), baselines()...) {
			d, _ := timeOver(alg, ds.Docs)
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7 reproduces Figure 7: execution time when the total size of the
// match lists per document grows from 10 to 40.
func Fig7(o Options) Table {
	t := Table{
		ID:      "fig7",
		Title:   "execution time (ms) vs total match-list size per document",
		Columns: []string{"matches", "WIN", "MED", "MAX", "NWIN", "NMED", "NMAX"},
	}
	for _, matches := range []int{10, 20, 30, 40} {
		ds := synthDataset(o, func(c *synth.Config) { c.Matches = matches })
		row := []string{fmt.Sprintf("%d", matches)}
		for _, alg := range append(proposed(), baselines()...) {
			d, _ := timeOver(alg, ds.Docs)
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// lambdaSweep is the λ range of Figures 8 and 9; duplicate frequency
// falls from ~60% at λ=1.0 to ~10% at λ=3.0.
var lambdaSweep = []float64{1.0, 1.5, 2.0, 2.5, 3.0}

// Fig8 reproduces Figure 8: how many times the duplicate-unaware
// algorithms are executed per document as λ varies (the cost of the
// Section VI duplicate-handling method).
func Fig8(o Options) Table {
	t := Table{
		ID:      "fig8",
		Title:   "duplicate-unaware solver invocations per document vs lambda",
		Columns: []string{"lambda", "dupFreq%", "WIN", "MED", "MAX"},
	}
	for _, lambda := range lambdaSweep {
		ds := synthDataset(o, func(c *synth.Config) { c.Lambda = lambda })
		row := []string{fmt.Sprintf("%.1f", lambda), fmt.Sprintf("%.1f", 100*ds.DuplicateFrequency())}
		for _, alg := range proposed() {
			_, inv := timeOver(alg, ds.Docs)
			row = append(row, fmt.Sprintf("%.2f", inv))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig9 reproduces Figure 9: execution time as the duplicate frequency
// decreases (λ from 1.0 to 3.0).
func Fig9(o Options) Table {
	t := Table{
		ID:      "fig9",
		Title:   "execution time (ms) vs lambda (duplicate frequency)",
		Columns: []string{"lambda", "WIN", "MED", "MAX", "NWIN", "NMED", "NMAX"},
	}
	for _, lambda := range lambdaSweep {
		ds := synthDataset(o, func(c *synth.Config) { c.Lambda = lambda })
		row := []string{fmt.Sprintf("%.1f", lambda)}
		for _, alg := range append(proposed(), baselines()...) {
			d, _ := timeOver(alg, ds.Docs)
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig10 reproduces Figure 10: execution time as the Zipf skew s in the
// term popularities increases. The naive algorithms improve with skew
// (fewer possible matchsets) and catch up only at extreme skew (s=4),
// where all lists but one have size ~1.
func Fig10(o Options) Table {
	t := Table{
		ID:      "fig10",
		Title:   "execution time (ms) vs Zipf skew of term popularity",
		Columns: []string{"s", "WIN", "MED", "MAX", "NWIN", "NMED", "NMAX"},
	}
	for _, s := range []float64{1.1, 2.0, 3.0, 4.0} {
		ds := synthDataset(o, func(c *synth.Config) { c.ZipfS = s })
		row := []string{fmt.Sprintf("%.1f", s)}
		for _, alg := range append(proposed(), baselines()...) {
			d, _ := timeOver(alg, ds.Docs)
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
