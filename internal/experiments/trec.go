package experiments

import (
	"fmt"
	"math"
	"time"

	"bestjoin/internal/corpus"
	"bestjoin/internal/dedup"
	"bestjoin/internal/gazetteer"
	"bestjoin/internal/join"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/match"
	"bestjoin/internal/matcher"
	"bestjoin/internal/naive"
	"bestjoin/internal/scorefn"
	"bestjoin/internal/synth"
	"bestjoin/internal/text"
)

// The TREC/DBWorld scoring functions from the paper's footnote 9:
// WIN g(x)=x/0.3, f(x,y)=x−y; MED g(x)=x/0.3, f(x)=x; MAX is equation
// (5) with α=0.1.
var (
	trecWIN = scorefn.LinearWIN{Scale: 0.3}
	trecMED = scorefn.LinearMED{Scale: 0.3}
	trecMAX = scorefn.SumMAX{Alpha: 0.1}
)

// trecInstance is one materialized TREC topic: per-document match
// lists (matching time excluded from all timings, as in the paper) and
// the identity of the answer document.
type trecInstance struct {
	query     corpus.TRECQuery
	docs      []match.Lists
	answerDoc int
}

// trecInstances synthesizes and materializes all seven topics.
func trecInstances(o Options) []trecInstance {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	queries := corpus.TRECQueries()
	out := make([]trecInstance, len(queries))
	for i, q := range queries {
		ds := corpus.GenerateTREC(q, o.TRECDocs, o.Seed+int64(i))
		ms := q.Matchers(g, gz)
		inst := trecInstance{query: q, answerDoc: ds.AnswerDoc}
		for _, d := range ds.Docs {
			inst.docs = append(inst.docs, matcher.Compile(text.Tokenize(d.Text), ms))
		}
		out[i] = inst
	}
	return out
}

// trecAlgorithms returns the contenders of Figure 11 under the TREC
// scoring functions.
func trecAlgorithms() []algorithm {
	return []algorithm{
		{"MED", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MED(trecMED, x) }, ls).Invocations
		}},
		{"MAX", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MAX(trecMAX, x) }, ls).Invocations
		}},
		{"WIN", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.WIN(trecWIN, x) }, ls).Invocations
		}},
		{"NWIN", func(ls match.Lists) int { naive.WIN(trecWIN, ls); return 1 }},
		{"NMED", func(ls match.Lists) int { naive.MED(trecMED, ls); return 1 }},
		{"NMAX", func(ls match.Lists) int { naive.MAX(trecMAX, ls); return 1 }},
	}
}

// Fig11 reproduces Figure 11: per-query execution times over the TREC
// topics. As in the paper, WIN is only run for queries with four or
// more terms — for three terms or fewer the WIN and MED scoring
// functions are identical, so MED is invoked instead and the WIN cell
// is marked "-".
func Fig11(o Options) Table {
	t := Table{
		ID:      "fig11",
		Title:   "execution time (ms) per TREC query",
		Columns: []string{"query", "MED", "MAX", "WIN", "NWIN", "NMED", "NMAX"},
	}
	for _, inst := range trecInstances(o) {
		row := []string{inst.query.ID}
		for _, alg := range trecAlgorithms() {
			if alg.name == "WIN" && len(inst.query.Terms) <= 3 {
				row = append(row, "-")
				continue
			}
			d, _ := timeOver(alg, inst.docs)
			row = append(row, ms(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig12 reproduces the table in Figure 12: per query, the measured
// average match-list sizes, the average number of duplicate matches
// per document, and the answer rank under each scoring function (the
// rank of the answer document when documents are ordered by their best
// matchset score; ties at that rank are shown in brackets).
func Fig12(o Options) Table {
	t := Table{
		ID:    "fig12",
		Title: "TREC query statistics and answer ranks",
		Columns: []string{
			"query", "terms", "list sizes", "#dups", "MED", "MAX", "WIN",
		},
	}
	for _, inst := range trecInstances(o) {
		nDocs := float64(len(inst.docs))
		sizes := make([]float64, len(inst.query.Terms))
		dups := 0.0
		for _, doc := range inst.docs {
			for j, l := range doc {
				sizes[j] += float64(len(l))
			}
			d, _ := synth.CountDuplicates(doc)
			dups += float64(d)
		}
		sizeCells := "("
		for j := range sizes {
			if j > 0 {
				sizeCells += " "
			}
			sizeCells += fmt.Sprintf("%.1f", sizes[j]/nDocs)
		}
		sizeCells += ")"

		row := []string{
			inst.query.ID,
			fmt.Sprintf("%d", len(inst.query.Terms)),
			sizeCells,
			fmt.Sprintf("%.1f", dups/nDocs),
		}
		for _, fn := range []string{"MED", "MAX", "WIN"} {
			if fn == "WIN" && len(inst.query.Terms) <= 3 {
				row = append(row, "-")
				continue
			}
			row = append(row, rankCell(inst, fn))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// rankCell computes the answer document's rank under one scoring
// function, formatted as "r" or "r(k)" when k documents tie at that
// rank.
func rankCell(inst trecInstance, fn string) string {
	scores := make([]float64, len(inst.docs))
	ok := make([]bool, len(inst.docs))
	for i, doc := range inst.docs {
		var r dedup.Result
		switch fn {
		case "MED":
			r = dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MED(trecMED, x) }, doc)
		case "MAX":
			r = dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MAX(trecMAX, x) }, doc)
		case "WIN":
			r = dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.WIN(trecWIN, x) }, doc)
		}
		scores[i], ok[i] = r.Score, r.OK
	}
	if !ok[inst.answerDoc] {
		return "none"
	}
	rank, ties := answerRank(scores, ok, inst.answerDoc)
	if ties > 1 {
		return fmt.Sprintf("%d(%d)", rank, ties)
	}
	return fmt.Sprintf("%d", rank)
}

// answerRank returns the 1-based rank of the answer document (number
// of strictly better documents + 1) and the number of documents tied
// at its score.
func answerRank(scores []float64, ok []bool, answer int) (rank, ties int) {
	const eps = 1e-9
	target := scores[answer]
	rank, ties = 1, 0
	for i := range scores {
		if !ok[i] {
			continue
		}
		switch {
		case scores[i] > target+eps:
			rank++
		case math.Abs(scores[i]-target) <= eps:
			ties++
		}
	}
	return rank, ties
}

// trecTotalTime is a convenience for benchmarks: total time of one
// algorithm over one query's documents.
func trecTotalTime(inst trecInstance, alg algorithm) time.Duration {
	d, _ := timeOver(alg, inst.docs)
	return d
}
