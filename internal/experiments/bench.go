package experiments

import (
	"fmt"

	"bestjoin/internal/match"
	"bestjoin/internal/synth"
)

// This file exposes the experiment workloads and algorithm runners to
// the repository's root-level benchmark suite (bench_test.go), which
// has one testing.B benchmark per paper figure/table. Workloads are
// materialized once per benchmark outside the timed loop, mirroring
// the paper's exclusion of match-list generation from its timings.

// SynthWorkload materializes the synthetic dataset for one data point
// of Figures 6–10. Zero-valued knobs keep the paper's defaults.
func SynthWorkload(o Options, terms, matches int, lambda, zipfS float64) []match.Lists {
	return synthDataset(o, func(c *synth.Config) {
		if terms > 0 {
			c.Terms = terms
		}
		if matches > 0 {
			c.Matches = matches
		}
		if lambda > 0 {
			c.Lambda = lambda
		}
		if zipfS > 0 {
			c.ZipfS = zipfS
		}
	}).Docs
}

// TRECWorkload is one materialized TREC topic for benchmarking.
type TRECWorkload struct {
	ID    string
	Terms int
	Docs  []match.Lists
}

// TRECWorkloads materializes all seven topics.
func TRECWorkloads(o Options) []TRECWorkload {
	var out []TRECWorkload
	for _, inst := range trecInstances(o) {
		out = append(out, TRECWorkload{ID: inst.query.ID, Terms: len(inst.query.Terms), Docs: inst.docs})
	}
	return out
}

// DBWorldWorkload materializes the CFP match lists.
func DBWorldWorkload(o Options) []match.Lists {
	return dbworldInstanceFor(o).docs
}

// RunSynth runs one named synthetic-experiment algorithm (WIN, MED,
// MAX, NWIN, NMED, NMAX) over all documents, returning the total
// number of duplicate-unaware solver invocations. It panics on an
// unknown name — benchmarks fail fast on typos.
func RunSynth(name string, docs []match.Lists) int {
	return run(name, append(proposed(), baselines()...), docs)
}

// RunTREC runs one named algorithm under the TREC scoring functions.
func RunTREC(name string, docs []match.Lists) int {
	return run(name, trecAlgorithms(), docs)
}

// RunDBWorld runs one named algorithm under the DBWorld configuration.
func RunDBWorld(name string, docs []match.Lists) int {
	return run(name, dbworldAlgorithms(), docs)
}

func run(name string, algs []algorithm, docs []match.Lists) int {
	for _, alg := range algs {
		if alg.name == name {
			n := 0
			for _, doc := range docs {
				n += alg.run(doc)
			}
			return n
		}
	}
	panic(fmt.Sprintf("experiments: unknown algorithm %q", name))
}
