// Package experiments reproduces every table and figure of the paper's
// Section VIII evaluation. Each Fig*/table function builds its
// workload (synthetic datasets, the simulated TREC topics, or the
// simulated DBWorld messages), runs the algorithms the paper compares,
// and returns a Table whose rows mirror the series the paper plots.
//
// As in the paper, the time to generate the input match lists is
// excluded — datasets and match lists are materialized before the
// clocks start — and the proposed algorithms run with the Section VI
// duplicate-handling wrapper while the naive baselines enumerate the
// raw cross product.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"bestjoin/internal/dedup"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/scorefn"
)

// Table is one reproduced artifact: a figure's data series or a
// table's rows, ready for text or CSV rendering.
type Table struct {
	ID      string     // experiment id, e.g. "fig6"
	Title   string     // what the paper's artifact shows
	Columns []string   // header
	Rows    [][]string // formatted cells
}

// Text renders the table as aligned columns.
func (t Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Options scales the experiments. The zero value runs at paper scale;
// Quick() runs a reduced scale suitable for tests and CI.
type Options struct {
	// SynthDocs is the number of synthetic documents per data point
	// (paper: 500).
	SynthDocs int
	// TRECDocs is the number of documents per TREC query (paper:
	// 1000).
	TRECDocs int
	// DBWorldMsgs is the number of CFP messages (paper: 25).
	DBWorldMsgs int
	// Seed makes the workloads deterministic.
	Seed int64
}

// Default returns paper-scale options.
func Default() Options {
	return Options{SynthDocs: 500, TRECDocs: 1000, DBWorldMsgs: 25, Seed: 1}
}

// Quick returns reduced-scale options for tests.
func Quick() Options {
	return Options{SynthDocs: 40, TRECDocs: 60, DBWorldMsgs: 25, Seed: 1}
}

// The scoring functions of the synthetic experiments: the paper's
// equations (1), (3) and (5) with a moderate decay rate.
const synthAlpha = 0.1

var (
	synthWIN = scorefn.ExpWIN{Alpha: synthAlpha}
	synthMED = scorefn.ExpMED{Alpha: synthAlpha}
	synthMAX = scorefn.SumMAX{Alpha: synthAlpha}
)

// algorithm is one timed contender: it consumes a document's match
// lists and returns how many times a duplicate-unaware solver ran (1
// for the naive baselines).
type algorithm struct {
	name string
	run  func(match.Lists) int
}

// proposed returns the paper's three algorithms wrapped with the
// Section VI duplicate handling (the configuration the experiments
// use).
func proposed() []algorithm {
	return []algorithm{
		{"WIN", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.WIN(synthWIN, x) }, ls).Invocations
		}},
		{"MED", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MED(synthMED, x) }, ls).Invocations
		}},
		{"MAX", func(ls match.Lists) int {
			return dedup.Best(func(x match.Lists) (match.Set, float64, bool) { return join.MAX(synthMAX, x) }, ls).Invocations
		}},
	}
}

// baselines returns the naive cross-product algorithms.
func baselines() []algorithm {
	return []algorithm{
		{"NWIN", func(ls match.Lists) int { naive.WIN(synthWIN, ls); return 1 }},
		{"NMED", func(ls match.Lists) int { naive.MED(synthMED, ls); return 1 }},
		{"NMAX", func(ls match.Lists) int { naive.MAX(synthMAX, ls); return 1 }},
	}
}

// timeOver runs an algorithm over every document and returns the total
// wall-clock time plus the average solver invocations per document.
func timeOver(alg algorithm, docs []match.Lists) (time.Duration, float64) {
	start := time.Now()
	invocations := 0
	for _, doc := range docs {
		invocations += alg.run(doc)
	}
	return time.Since(start), float64(invocations) / float64(len(docs))
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// All runs every experiment at the given scale, in paper order.
func All(o Options) []Table {
	return []Table{
		Fig6(o), Fig7(o), Fig8(o), Fig9(o), Fig10(o),
		Fig11(o), Fig12(o), DBWorld(o),
	}
}

// ByID returns the experiment with the given id (fig6..fig12,
// dbworld), or ok=false.
func ByID(id string, o Options) (Table, bool) {
	switch id {
	case "fig6":
		return Fig6(o), true
	case "fig7":
		return Fig7(o), true
	case "fig8":
		return Fig8(o), true
	case "fig9":
		return Fig9(o), true
	case "fig10":
		return Fig10(o), true
	case "fig11":
		return Fig11(o), true
	case "fig12":
		return Fig12(o), true
	case "dbworld":
		return DBWorld(o), true
	case "ablations":
		return Ablations(o), true
	}
	return Table{}, false
}
