package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseMs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", cell, err)
	}
	return v
}

func TestFig6ShapeAndTrend(t *testing.T) {
	tab := Fig6(Quick())
	if len(tab.Rows) != 6 {
		t.Fatalf("fig6 has %d rows, want 6 (terms 2..7)", len(tab.Rows))
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("fig6 columns = %v", tab.Columns)
	}
	// At 7 terms the naive algorithms must be slower than their fast
	// counterparts — the paper's headline comparison.
	last := tab.Rows[len(tab.Rows)-1]
	for i, fast := range []int{1, 2, 3} {
		naiveMs := parseMs(t, last[fast+3])
		fastMs := parseMs(t, last[fast])
		if naiveMs < fastMs {
			t.Errorf("fig6 terms=7: %s (%.2fms) faster than %s (%.2fms)",
				tab.Columns[fast+3], naiveMs, tab.Columns[fast], fastMs)
		}
		_ = i
	}
}

func TestFig7NaiveGrowsFasterThanProposed(t *testing.T) {
	tab := Fig7(Quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("fig7 rows = %d", len(tab.Rows))
	}
	// Growth factor from 10 to 40 matches must be larger for the naive
	// algorithms than for the proposed ones.
	for col := 1; col <= 3; col++ {
		fastGrowth := parseMs(t, tab.Rows[3][col]) / (parseMs(t, tab.Rows[0][col]) + 1e-6)
		naiveGrowth := parseMs(t, tab.Rows[3][col+3]) / (parseMs(t, tab.Rows[0][col+3]) + 1e-6)
		if naiveGrowth < fastGrowth/4 {
			t.Errorf("fig7 col %s: naive growth %.1fx vs fast growth %.1fx — expected exponential blowup",
				tab.Columns[col], naiveGrowth, fastGrowth)
		}
	}
}

func TestFig8InvocationsDecreaseWithLambda(t *testing.T) {
	tab := Fig8(Quick())
	if len(tab.Rows) != len(lambdaSweep) {
		t.Fatalf("fig8 rows = %d", len(tab.Rows))
	}
	// Duplicate frequency must fall monotonically with λ.
	prev := 101.0
	for _, row := range tab.Rows {
		freq := parseMs(t, row[1])
		if freq > prev+5 {
			t.Errorf("fig8: duplicate frequency rose with lambda: %v", row)
		}
		prev = freq
	}
	// Invocations at λ=1.0 must exceed invocations at λ=3.0 for every
	// algorithm, and be at least 1 everywhere.
	for col := 2; col <= 4; col++ {
		hi := parseMs(t, tab.Rows[0][col])
		lo := parseMs(t, tab.Rows[len(tab.Rows)-1][col])
		if hi < lo {
			t.Errorf("fig8 %s: invocations grew with lambda (%.2f -> %.2f)", tab.Columns[col], hi, lo)
		}
		if lo < 1 {
			t.Errorf("fig8 %s: invocations below 1", tab.Columns[col])
		}
	}
}

func TestFig9And10Shapes(t *testing.T) {
	t9 := Fig9(Quick())
	if len(t9.Rows) != len(lambdaSweep) || len(t9.Columns) != 7 {
		t.Fatalf("fig9 shape %dx%d", len(t9.Rows), len(t9.Columns))
	}
	t10 := Fig10(Quick())
	if len(t10.Rows) != 4 || len(t10.Columns) != 7 {
		t.Fatalf("fig10 shape %dx%d", len(t10.Rows), len(t10.Columns))
	}
	// At extreme skew the naive algorithms catch up: NWIN at s=4 must
	// be within a small factor of WIN (the paper: "catching up only
	// when s=4").
	winS4 := parseMs(t, t10.Rows[3][1])
	nwinS4 := parseMs(t, t10.Rows[3][4])
	nwinS11 := parseMs(t, t10.Rows[0][4])
	if nwinS4 > nwinS11 {
		t.Errorf("fig10: NWIN did not improve with skew (%.2f -> %.2f)", nwinS11, nwinS4)
	}
	_ = winS4
}

func TestFig11RespectsWINOmission(t *testing.T) {
	o := Quick()
	o.TRECDocs = 30
	tab := Fig11(o)
	if len(tab.Rows) != 7 {
		t.Fatalf("fig11 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		q := row[0]
		winCell := row[3]
		fourTerm := q == "Q1" || q == "Q2"
		if fourTerm && winCell == "-" {
			t.Errorf("fig11 %s: WIN should run for 4-term queries", q)
		}
		if !fourTerm && winCell != "-" {
			t.Errorf("fig11 %s: WIN should be omitted for ≤3-term queries", q)
		}
	}
}

func TestFig12AnswerRanks(t *testing.T) {
	o := Quick()
	o.TRECDocs = 40
	tab := Fig12(o)
	if len(tab.Rows) != 7 {
		t.Fatalf("fig12 rows = %d", len(tab.Rows))
	}
	// The planted answers must rank near the top: the paper reports
	// rank 1 or 2 everywhere. Allow rank ≤ 3 at reduced scale.
	for _, row := range tab.Rows {
		for col := 4; col <= 6; col++ {
			cell := row[col]
			if cell == "-" {
				continue
			}
			rankStr := cell
			if i := strings.IndexByte(cell, '('); i >= 0 {
				rankStr = cell[:i]
			}
			rank, err := strconv.Atoi(rankStr)
			if err != nil {
				t.Fatalf("fig12 %s %s: bad rank cell %q", row[0], tab.Columns[col], cell)
			}
			if rank > 3 {
				t.Errorf("fig12 %s: answer rank %d under %s, want ≤3", row[0], rank, tab.Columns[col])
			}
		}
	}
}

func TestDBWorldTable(t *testing.T) {
	tab := DBWorld(Quick())
	if len(tab.Rows) < 9 {
		t.Fatalf("dbworld rows = %d", len(tab.Rows))
	}
	// Average place list must dwarf the other two (the paper: 73.5 vs
	// ~13), reflecting PC-member affiliations.
	sizes := tab.Rows[0]
	conf := parseMs(t, sizes[1])
	date := parseMs(t, sizes[2])
	place := parseMs(t, sizes[3])
	if place < 3*conf || place < 3*date {
		t.Errorf("dbworld list sizes %v: place should dominate", sizes)
	}
	// Extraction accuracy: the paper gets 18/25 fully correct; at
	// least half must extract correctly here.
	var winOK string
	var heuristicFails string
	for _, row := range tab.Rows {
		if row[0] == "correct extractions WIN" {
			winOK = row[1]
		}
		if row[0] == "first-date heuristic fails" {
			heuristicFails = row[1]
		}
	}
	num, den := parseFrac(t, winOK)
	if num*2 < den {
		t.Errorf("dbworld WIN extraction accuracy %s below half", winOK)
	}
	// The first-date heuristic must fail on the extension messages
	// (7/25 per the paper's footnote 12).
	fnum, _ := parseFrac(t, heuristicFails)
	if fnum < 1 {
		t.Errorf("first-date heuristic fails = %s, want ≥1 (extensions exist)", heuristicFails)
	}
}

func parseFrac(t *testing.T, s string) (num, den int) {
	t.Helper()
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		t.Fatalf("bad fraction %q", s)
	}
	num, _ = strconv.Atoi(parts[0])
	den, _ = strconv.Atoi(parts[1])
	return num, den
}

func TestByIDAndAll(t *testing.T) {
	o := Quick()
	o.SynthDocs = 10
	o.TRECDocs = 10
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "dbworld"} {
		tab, ok := ByID(id, o)
		if !ok {
			t.Fatalf("ByID(%q) not found", id)
		}
		if tab.ID != id {
			t.Errorf("ByID(%q).ID = %q", id, tab.ID)
		}
		if txt := tab.Text(); !strings.Contains(txt, id) {
			t.Errorf("Text() missing id header for %s", id)
		}
		if csv := tab.CSV(); !strings.Contains(csv, ",") {
			t.Errorf("CSV() malformed for %s", id)
		}
	}
	if _, ok := ByID("nope", o); ok {
		t.Error("ByID(nope) found something")
	}
}

func TestBenchHelpers(t *testing.T) {
	o := Quick()
	o.SynthDocs = 5
	o.TRECDocs = 5
	docs := SynthWorkload(o, 3, 20, 1.5, 2.0)
	if len(docs) != 5 {
		t.Fatalf("SynthWorkload returned %d docs", len(docs))
	}
	for _, d := range docs {
		if len(d) != 3 || d.TotalSize() != 20 {
			t.Fatalf("workload shape wrong: %d lists, %d matches", len(d), d.TotalSize())
		}
	}
	if inv := RunSynth("MED", docs); inv < len(docs) {
		t.Errorf("RunSynth invocations = %d, want at least one per doc", inv)
	}
	ws := TRECWorkloads(o)
	if len(ws) != 7 {
		t.Fatalf("TRECWorkloads returned %d topics", len(ws))
	}
	if ws[0].ID != "Q1" || ws[0].Terms != 4 {
		t.Errorf("first workload = %+v", ws[0])
	}
	if inv := RunTREC("MAX", ws[0].Docs); inv < 1 {
		t.Errorf("RunTREC invocations = %d", inv)
	}
	db := DBWorldWorkload(o)
	if len(db) != o.DBWorldMsgs {
		t.Fatalf("DBWorldWorkload returned %d docs", len(db))
	}
	if inv := RunDBWorld("WIN", db); inv < len(db) {
		t.Errorf("RunDBWorld invocations = %d", inv)
	}
}

func TestRunUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RunSynth did not panic on unknown algorithm")
		}
	}()
	RunSynth("NOPE", nil)
}

func TestAblationsTable(t *testing.T) {
	o := Quick()
	o.SynthDocs = 20
	tab, ok := ByID("ablations", o)
	if !ok {
		t.Fatal("ablations experiment not registered")
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("ablations has %d rows, want 12", len(tab.Rows))
	}
	// Pruned dedup search must never need more invocations than plain.
	var plain, pruned float64
	for _, row := range tab.Rows {
		if row[0] == "dedup search (lambda=1.5)" {
			switch row[1] {
			case "plain":
				plain = parseMs(t, row[3])
			case "prune+memo":
				pruned = parseMs(t, row[3])
			}
		}
	}
	if pruned > plain {
		t.Errorf("prune+memo invocations %.2f exceed plain %.2f", pruned, plain)
	}
}
