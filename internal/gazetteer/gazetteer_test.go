package gazetteer

import "testing"

func TestContainsCaseInsensitive(t *testing.T) {
	g := New("Turin", "beijing")
	for _, w := range []string{"turin", "Turin", "TURIN", "beijing", "Beijing"} {
		if !g.Contains(w) {
			t.Errorf("Contains(%q) = false", w)
		}
	}
	if g.Contains("nowhere") {
		t.Error("Contains(nowhere) = true")
	}
}

func TestBuiltinCoverage(t *testing.T) {
	g := Builtin()
	if g.Size() < 250 {
		t.Errorf("builtin gazetteer has only %d places", g.Size())
	}
	// Places from the paper's running examples must be present.
	for _, w := range []string{"turin", "italy", "beijing", "china", "jingdezhen", "lebanon", "pisa"} {
		if !g.Contains(w) {
			t.Errorf("builtin missing %q", w)
		}
	}
	// Ordinary words must not be places.
	for _, w := range []string{"conference", "deadline", "the", "paper"} {
		if g.Contains(w) {
			t.Errorf("builtin wrongly contains %q", w)
		}
	}
}
