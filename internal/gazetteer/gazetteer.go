// Package gazetteer is the repository's stand-in for the GeoWorldMap
// place database the paper uses in its DBWorld experiment ("if a term
// can be found in the GeoWorldMap database, we consider it a match
// with score 1"). It embeds a table of city, country and region names;
// lookups are by single lower-cased token.
//
// Like the lexicon substitute, only the shape of the resulting match
// lists matters to the join algorithms, not geographic completeness.
package gazetteer

import "strings"

// Gazetteer answers is-this-a-place queries.
type Gazetteer struct {
	places map[string]bool
}

// New returns a gazetteer over the given place names (single tokens,
// matched case-insensitively).
func New(places ...string) *Gazetteer {
	g := &Gazetteer{places: make(map[string]bool, len(places))}
	for _, p := range places {
		g.places[strings.ToLower(p)] = true
	}
	return g
}

// Contains reports whether the token names a place.
func (g *Gazetteer) Contains(token string) bool {
	return g.places[strings.ToLower(token)]
}

// Size returns the number of known places.
func (g *Gazetteer) Size() int { return len(g.places) }

// Builtin returns the embedded place table: a few hundred cities,
// countries and regions, biased toward the kind of names that appear
// in conference CFPs (venues and PC-member affiliations) and in the
// paper's TREC queries.
func Builtin() *Gazetteer {
	return New(
		// Countries.
		"italy", "france", "germany", "spain", "portugal", "greece",
		"england", "scotland", "ireland", "wales", "britain", "uk",
		"usa", "america", "canada", "mexico", "brazil", "argentina",
		"chile", "peru", "colombia", "venezuela", "china", "japan",
		"korea", "india", "pakistan", "vietnam", "thailand",
		"singapore", "malaysia", "indonesia", "philippines",
		"australia", "zealand", "russia", "poland", "hungary",
		"austria", "switzerland", "belgium", "netherlands", "holland",
		"denmark", "norway", "sweden", "finland", "iceland", "turkey",
		"israel", "lebanon", "egypt", "morocco", "tunisia", "kenya",
		"nigeria", "ghana", "africa", "iran", "iraq", "jordan",
		"cyprus", "croatia", "serbia", "slovenia", "slovakia",
		"romania", "bulgaria", "estonia", "latvia", "lithuania",
		"ukraine", "czech", "taiwan", "qatar", "emirates",
		// Cities common in CFPs and the paper's examples.
		"rome", "milan", "turin", "pisa", "florence", "venice",
		"naples", "bologna", "paris", "lyon", "nice", "marseille",
		"berlin", "munich", "hamburg", "frankfurt", "cologne",
		"dresden", "madrid", "barcelona", "seville", "valencia",
		"lisbon", "porto", "athens", "london", "oxford", "cambridge",
		"manchester", "edinburgh", "glasgow", "dublin", "cardiff",
		"york", "boston", "chicago", "seattle", "portland", "denver",
		"austin", "dallas", "houston", "phoenix", "atlanta", "miami",
		"orlando", "philadelphia", "pittsburgh", "baltimore",
		"washington", "francisco", "angeles", "diego", "jose",
		"vancouver", "toronto", "montreal", "ottawa", "quebec",
		"calgary", "beijing", "shanghai", "shenzhen", "guangzhou",
		"hangzhou", "nanjing", "jingdezhen", "hong", "kong", "macau",
		"tokyo", "osaka", "kyoto", "nagoya", "seoul", "busan",
		"taipei", "delhi", "mumbai", "bangalore", "chennai",
		"hyderabad", "kolkata", "bangkok", "hanoi", "saigon",
		"jakarta", "manila", "sydney", "melbourne", "brisbane",
		"perth", "auckland", "wellington", "moscow", "petersburg",
		"warsaw", "krakow", "budapest", "vienna", "salzburg",
		"zurich", "geneva", "basel", "bern", "lausanne", "brussels",
		"antwerp", "amsterdam", "rotterdam", "utrecht", "eindhoven",
		"copenhagen", "aarhus", "oslo", "bergen", "stockholm",
		"gothenburg", "uppsala", "helsinki", "espoo", "reykjavik",
		"istanbul", "ankara", "izmir", "jerusalem", "haifa",
		"cairo", "beirut", "amman", "dubai", "doha", "riyadh",
		"nairobi", "lagos", "cape", "johannesburg", "casablanca",
		"tunis", "lima", "bogota", "santiago", "buenos", "aires",
		"paulo", "janeiro", "brasilia", "havana", "kingston",
		"ljubljana", "zagreb", "belgrade", "bucharest", "sofia",
		"tallinn", "riga", "vilnius", "kiev", "prague", "brno",
		"bratislava", "beijing", "xian", "chengdu", "wuhan",
		// US states and regions that appear as venue qualifiers.
		"california", "texas", "florida", "virginia", "maryland",
		"oregon", "arizona", "colorado", "illinois", "michigan",
		"wisconsin", "minnesota", "georgia", "carolina", "tennessee",
		"alabama", "louisiana", "utah", "nevada", "hawaii", "alaska",
		"massachusetts", "pennsylvania", "jersey", "ohio", "indiana",
		"iowa", "kansas", "missouri", "nebraska", "oklahoma",
		"kentucky", "arkansas", "mississippi", "montana", "idaho",
		"wyoming", "vermont", "maine", "connecticut", "delaware",
	)
}
