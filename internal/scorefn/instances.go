package scorefn

import "math"

// ExpWIN is the paper's Equation (1): the product of individual match
// scores decayed exponentially with the window length,
//
//	(Πj score(mj)) · e^(−α · window).
//
// In Definition 3 terms, g_j(x)=ln x and f(x,y)=exp(x−αy), which is
// monotone in the required directions and satisfies optimal
// substructure. Alpha must be positive. Scores must be positive
// (the paper draws them from (0,1]).
type ExpWIN struct {
	Alpha float64
}

func (e ExpWIN) G(_ int, score float64) float64 { return math.Log(score) }

func (e ExpWIN) F(gsum, window float64) float64 { return math.Exp(gsum - e.Alpha*window) }

// KeySlope and Lift expose the separable form F = exp(gsum − α·window)
// (WINSeparable), letting the WIN kernel compare keys instead of
// calling exp per subset.
func (e ExpWIN) KeySlope() float64        { return e.Alpha }
func (e ExpWIN) Lift(key float64) float64 { return math.Exp(key) }

// LinearWIN is the WIN instance from the paper's TREC experiment
// (footnote 9): g_j(x)=x/Scale, f(x,y)=x−y. The paper uses Scale=0.3,
// the decrement of its WordNet-distance match scores.
type LinearWIN struct {
	Scale float64
}

func (l LinearWIN) G(_ int, score float64) float64 { return score / l.Scale }

func (l LinearWIN) F(gsum, window float64) float64 { return gsum - window }

// KeySlope and Lift expose the separable form F = gsum − 1·window with
// the identity lift (WINSeparable).
func (l LinearWIN) KeySlope() float64        { return 1 }
func (l LinearWIN) Lift(key float64) float64 { return key }

// ExpMED is the paper's Equation (3): the product of individual match
// scores, each decayed exponentially with its distance to the median
// location,
//
//	Πj ( score(mj) · e^(−α·|loc(mj) − median(M)|) ).
//
// In Definition 5 terms, f(x)=e^(αx) and g_j(x)=ln(x)/α. Alpha must be
// positive and scores positive.
type ExpMED struct {
	Alpha float64
}

func (e ExpMED) G(_ int, score float64) float64 { return math.Log(score) / e.Alpha }

func (e ExpMED) F(total float64) float64 { return math.Exp(e.Alpha * total) }

// LinearMED is the MED instance from the paper's TREC experiment
// (footnote 9): g_j(x)=x/Scale, f(x)=x, with Scale=0.3.
type LinearMED struct {
	Scale float64
}

func (l LinearMED) G(_ int, score float64) float64 { return score / l.Scale }

func (l LinearMED) F(total float64) float64 { return total }

// ProdMAX is the paper's Equation (4): the MAX generalization of
// ExpMED,
//
//	max_l Πj ( score(mj) · e^(−α·|loc(mj) − l|) ).
//
// In Definition 7 terms, f(x)=e^x and g_j(x,y)=ln(x)−αy. The
// contribution curves are tent functions in log space, so the family
// is at-most-one-crossing and maximized-at-match (Lemma 3).
type ProdMAX struct {
	Alpha float64
}

func (p ProdMAX) Contribution(_ int, score, dist float64) float64 {
	return math.Log(score) - p.Alpha*dist
}

func (p ProdMAX) F(total float64) float64 { return math.Exp(total) }

func (p ProdMAX) AtMostOneCrossing() bool { return true }

// SumMAX is the paper's Equation (5): the sum of exponentially
// distance-decayed match scores,
//
//	max_l Σj ( score(mj) · e^(−α·|loc(mj) − l|) ),
//
// generalizing Chakrabarti et al.'s scoring function. In Definition 7
// terms, f is the identity and g_j(x,y)=x·e^(−αy). Lemma 3 shows the
// family is at-most-one-crossing and maximized-at-match. This is the
// MAX function the paper's TREC and DBWorld experiments use (α=0.1).
type SumMAX struct {
	Alpha float64
}

func (s SumMAX) Contribution(_ int, score, dist float64) float64 {
	return score * math.Exp(-s.Alpha*dist)
}

func (s SumMAX) F(total float64) float64 { return total }

func (s SumMAX) AtMostOneCrossing() bool { return true }

// MEDAsMAX adapts a MED scoring function to the MAX interface with
// c_j(m,l) = g_j(score(m)) − |loc(m)−l|. It is used by the envelope
// machinery, which is shared between MED and MAX (Section V notes the
// definitions of dominance and upper envelopes are identical up to the
// contribution function). MED tent contributions have slopes ±1 so
// they are at-most-one-crossing.
type MEDAsMAX struct {
	MED
}

func (a MEDAsMAX) Contribution(term int, score, dist float64) float64 {
	return a.G(term, score) - dist
}

func (a MEDAsMAX) AtMostOneCrossing() bool { return true }

// WeightedWIN scales each term's transformed score by a positive
// per-term weight: g_j(x) = Weights[j]·Base.G(j, x). The paper's
// definitions deliberately allow a different g_j per term — weights
// express that a match for, say, the entity term matters more than one
// for a function word. Terms beyond len(Weights) keep weight 1.
// Weights must be positive for g_j to remain increasing.
type WeightedWIN struct {
	Base    WIN
	Weights []float64
}

func (w WeightedWIN) G(term int, score float64) float64 {
	return w.weight(term) * w.Base.G(term, score)
}

func (w WeightedWIN) F(gsum, window float64) float64 { return w.Base.F(gsum, window) }

func (w WeightedWIN) weight(term int) float64 {
	if term < len(w.Weights) {
		return w.Weights[term]
	}
	return 1
}

// WeightedMED is the per-term weighted form of a MED scoring function;
// see WeightedWIN.
type WeightedMED struct {
	Base    MED
	Weights []float64
}

func (w WeightedMED) G(term int, score float64) float64 {
	if term < len(w.Weights) {
		return w.Weights[term] * w.Base.G(term, score)
	}
	return w.Base.G(term, score)
}

func (w WeightedMED) F(total float64) float64 { return w.Base.F(total) }

var (
	_ WIN          = ExpWIN{}
	_ WIN          = LinearWIN{}
	_ WIN          = WeightedWIN{}
	_ WINSeparable = ExpWIN{}
	_ WINSeparable = LinearWIN{}
	_ MED          = ExpMED{}
	_ MED          = LinearMED{}
	_ MED          = WeightedMED{}
	_ EfficientMAX = ProdMAX{}
	_ EfficientMAX = SumMAX{}
	_ EfficientMAX = MEDAsMAX{}
)
