package scorefn

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
)

func TestExpWINEqualsEquationOne(t *testing.T) {
	// Equation (1): (Π score) · e^(−α·window).
	fn := ExpWIN{Alpha: 0.1}
	s := match.Set{{Loc: 3, Score: 0.5}, {Loc: 10, Score: 0.8}, {Loc: 7, Score: 0.9}}
	want := 0.5 * 0.8 * 0.9 * math.Exp(-0.1*float64(10-3))
	if got := ScoreWIN(fn, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreWIN = %v, want %v", got, want)
	}
}

func TestLinearWINEqualsFootnoteNine(t *testing.T) {
	fn := LinearWIN{Scale: 0.3}
	s := match.Set{{Loc: 2, Score: 0.6}, {Loc: 12, Score: 0.3}}
	want := 0.6/0.3 + 0.3/0.3 - float64(12-2)
	if got := ScoreWIN(fn, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreWIN = %v, want %v", got, want)
	}
}

func TestExpMEDEqualsEquationThree(t *testing.T) {
	// Equation (3): Π( score · e^(−α·|loc−median|) ).
	fn := ExpMED{Alpha: 0.2}
	s := match.Set{{Loc: 0, Score: 0.5}, {Loc: 10, Score: 0.8}, {Loc: 14, Score: 0.9}}
	med := 10.0
	want := 1.0
	for _, m := range s {
		want *= m.Score * math.Exp(-0.2*math.Abs(float64(m.Loc)-med))
	}
	if got := ScoreMED(fn, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreMED = %v, want %v", got, want)
	}
}

func TestLinearMEDEqualsFootnoteNine(t *testing.T) {
	fn := LinearMED{Scale: 0.3}
	s := match.Set{{Loc: 0, Score: 0.6}, {Loc: 4, Score: 0.3}, {Loc: 9, Score: 0.9}}
	// median is 4 (middle of three).
	want := 0.6/0.3 - 4 + 0.3/0.3 - 0 + 0.9/0.3 - 5
	if got := ScoreMED(fn, s); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreMED = %v, want %v", got, want)
	}
}

func TestSumMAXEqualsEquationFive(t *testing.T) {
	fn := SumMAX{Alpha: 0.1}
	s := match.Set{{Loc: 0, Score: 0.5}, {Loc: 6, Score: 1.0}}
	// Maximized-at-match: best anchor is one of the match locations.
	at0 := 0.5 + 1.0*math.Exp(-0.6)
	at6 := 0.5*math.Exp(-0.6) + 1.0
	want := math.Max(at0, at6)
	got, anchor := ScoreMAX(fn, s)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreMAX = %v, want %v", got, want)
	}
	if anchor != 6 {
		t.Errorf("anchor = %d, want 6 (the higher-scoring match)", anchor)
	}
}

func TestProdMAXEqualsEquationFour(t *testing.T) {
	fn := ProdMAX{Alpha: 0.1}
	s := match.Set{{Loc: 2, Score: 0.5}, {Loc: 9, Score: 0.8}}
	best := math.Inf(-1)
	for _, l := range []int{2, 9} {
		v := 1.0
		for _, m := range s {
			v *= m.Score * math.Exp(-0.1*math.Abs(float64(m.Loc-l)))
		}
		best = math.Max(best, v)
	}
	got, _ := ScoreMAX(fn, s)
	if math.Abs(got-best) > 1e-12 {
		t.Errorf("ScoreMAX = %v, want %v", got, best)
	}
}

func TestMEDAsMAXContribution(t *testing.T) {
	med := LinearMED{Scale: 0.3}
	adapted := MEDAsMAX{med}
	m := match.Match{Loc: 5, Score: 0.6}
	want := MEDContribution(med, 0, m, 12)
	if got := adapted.Contribution(0, m.Score, 7); math.Abs(got-want) > 1e-12 {
		t.Errorf("MEDAsMAX contribution = %v, want %v", got, want)
	}
}

func TestScoreMAXAtMatchesManualSum(t *testing.T) {
	fn := SumMAX{Alpha: 0.25}
	s := match.Set{{Loc: 1, Score: 0.4}, {Loc: 8, Score: 0.9}}
	want := 0.4*math.Exp(-0.25*4) + 0.9*math.Exp(-0.25*3)
	if got := ScoreMAXAt(fn, s, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScoreMAXAt = %v, want %v", got, want)
	}
}

func TestInstancesSatisfyContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	wins := map[string]WIN{
		"ExpWIN":    ExpWIN{Alpha: 0.1},
		"LinearWIN": LinearWIN{Scale: 0.3},
	}
	for name, fn := range wins {
		if err := CheckWIN(fn, 4, n, rng); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	meds := map[string]MED{
		"ExpMED":    ExpMED{Alpha: 0.1},
		"LinearMED": LinearMED{Scale: 0.3},
	}
	for name, fn := range meds {
		if err := CheckMED(fn, 4, n, rng); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	maxes := map[string]MAX{
		"ProdMAX":  ProdMAX{Alpha: 0.1},
		"SumMAX":   SumMAX{Alpha: 0.1},
		"MEDAsMAX": MEDAsMAX{LinearMED{Scale: 0.3}},
	}
	for name, fn := range maxes {
		if err := CheckMAX(fn, 4, n, rng); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEfficientInstancesAtMostOneCrossing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	maxes := map[string]MAX{
		"ProdMAX":  ProdMAX{Alpha: 0.1},
		"SumMAX":   SumMAX{Alpha: 0.1},
		"MEDAsMAX": MEDAsMAX{LinearMED{Scale: 0.3}},
	}
	for name, fn := range maxes {
		if err := CheckAtMostOneCrossing(fn, 3, 200, 0, 120, rng); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// brokenWIN violates optimal substructure: f(x,y) = x − ln(1+y) is
// monotone in both arguments, but shifting two windows right by the
// same δ changes their penalty difference, so an ordering established
// at (y, y') need not survive at (y+δ, y'+δ).
type brokenWIN struct{}

func (brokenWIN) G(_ int, s float64) float64 { return s }
func (brokenWIN) F(x, y float64) float64     { return x - math.Log(1+y) }

func TestCheckWINCatchesViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if err := CheckWIN(brokenWIN{}, 2, 5000, rng); err == nil {
		t.Error("CheckWIN failed to catch an optimal-substructure violation")
	}
}

// crossingMAX has contribution curves that can cross twice: decay rate
// depends on the score, steeply then flat.
type crossingMAX struct{}

func (crossingMAX) Contribution(_ int, s, d float64) float64 {
	// Higher-score matches decay fast then plateau above zero;
	// lower-score matches decay linearly through them.
	if s > 0.5 {
		return s * math.Exp(-2*d)
	}
	return s - 0.01*d
}
func (crossingMAX) F(x float64) float64 { return x }

func TestCheckAtMostOneCrossingCatchesViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if err := CheckAtMostOneCrossing(crossingMAX{}, 1, 500, 0, 200, rng); err == nil {
		t.Error("CheckAtMostOneCrossing failed to catch a double crossing")
	}
}

// brokenMED has a decreasing f.
type brokenMED struct{}

func (brokenMED) G(_ int, s float64) float64 { return s }
func (brokenMED) F(x float64) float64        { return -x }

func TestCheckMEDCatchesViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if err := CheckMED(brokenMED{}, 2, 2000, rng); err == nil {
		t.Error("CheckMED failed to catch a decreasing f")
	}
}

// brokenMAX has a contribution increasing in distance.
type brokenMAX struct{}

func (brokenMAX) Contribution(_ int, s, d float64) float64 { return s + 0.01*d }
func (brokenMAX) F(x float64) float64                      { return x }

func TestCheckMAXCatchesViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if err := CheckMAX(brokenMAX{}, 2, 2000, rng); err == nil {
		t.Error("CheckMAX failed to catch a distance-increasing contribution")
	}
}
