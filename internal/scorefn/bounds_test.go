// Upper-bound contract tests (external test package so they can
// cross-check against internal/naive, which itself imports scorefn):
// for each family and both concrete instances — exponential decay and
// linear — the bound computed from per-list maxima must dominate the
// true best-join score of every enumerable instance, and must be
// attained exactly when the proximity penalty is zero.
package scorefn_test

import (
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// perListMax extracts the maximum match score of each list — the
// quantity the engine's pruning layer feeds into the bounds.
func perListMax(lists match.Lists) []float64 {
	out := make([]float64, len(lists))
	for j, l := range lists {
		out[j] = l[0].Score
		for _, m := range l {
			if m.Score > out[j] {
				out[j] = m.Score
			}
		}
	}
	return out
}

// randLists draws a random complete instance with 1–4 matches per
// list, ties allowed (shared locations are exactly the zero-penalty
// regime the bounds must stay sound in).
func randLists(rng *rand.Rand, terms int) match.Lists {
	return randinst.Lists(rng, randinst.Config{
		Terms: terms, MaxPerList: 4, MaxLoc: 40, AllowTies: true,
	})
}

func TestUpperBoundWINDominatesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fns := []scorefn.WIN{scorefn.ExpWIN{Alpha: 0.1}, scorefn.LinearWIN{Scale: 0.3}}
	for trial := 0; trial < 400; trial++ {
		fn := fns[trial%len(fns)]
		lists := randLists(rng, 1+rng.Intn(3))
		best, score, ok := naive.WIN(fn, lists)
		if !ok {
			t.Fatal("naive found no matchset on a complete instance")
		}
		if bound := scorefn.UpperBoundWIN(fn, perListMax(lists)); score > bound {
			t.Fatalf("trial %d: naive WIN score %v exceeds bound %v (best %v, lists %v)",
				trial, score, bound, best, lists)
		}
	}
}

func TestUpperBoundMEDDominatesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fns := []scorefn.MED{scorefn.ExpMED{Alpha: 0.1}, scorefn.LinearMED{Scale: 0.3}}
	for trial := 0; trial < 400; trial++ {
		fn := fns[trial%len(fns)]
		lists := randLists(rng, 1+rng.Intn(3))
		best, score, ok := naive.MED(fn, lists)
		if !ok {
			t.Fatal("naive found no matchset on a complete instance")
		}
		if bound := scorefn.UpperBoundMED(fn, perListMax(lists)); score > bound {
			t.Fatalf("trial %d: naive MED score %v exceeds bound %v (best %v, lists %v)",
				trial, score, bound, best, lists)
		}
	}
}

func TestUpperBoundMAXDominatesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	fns := []scorefn.MAX{scorefn.SumMAX{Alpha: 0.1}, scorefn.ProdMAX{Alpha: 0.1}}
	for trial := 0; trial < 400; trial++ {
		fn := fns[trial%len(fns)]
		lists := randLists(rng, 1+rng.Intn(3))
		best, score, ok := naive.MAX(fn, lists)
		if !ok {
			t.Fatal("naive found no matchset on a complete instance")
		}
		if bound := scorefn.UpperBoundMAX(fn, perListMax(lists)); score > bound {
			t.Fatalf("trial %d: naive MAX score %v exceeds bound %v (best %v, lists %v)",
				trial, score, bound, best, lists)
		}
	}
}

// TestUpperBoundTightAtZeroPenalty plants every list's maximum at one
// shared location: the best join then pays no proximity penalty, so
// the bound must be achieved exactly (not merely approached).
func TestUpperBoundTightAtZeroPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		terms := 1 + rng.Intn(3)
		shared := 5 + rng.Intn(20)
		lists := make(match.Lists, terms)
		maxima := make([]float64, terms)
		for j := range lists {
			maxima[j] = 0.5 + rng.Float64()/2
			lists[j] = match.List{{Loc: shared, Score: maxima[j]}}
			// Extra strictly weaker matches elsewhere must not matter.
			for e := rng.Intn(3); e > 0; e-- {
				lists[j] = append(lists[j], match.Match{Loc: shared + 1 + rng.Intn(10), Score: maxima[j] / 2})
			}
			lists[j].Sort()
		}
		winFn := scorefn.ExpWIN{Alpha: 0.1}
		if _, score, _ := naive.WIN(winFn, lists); score != scorefn.UpperBoundWIN(winFn, maxima) {
			t.Fatalf("trial %d: WIN bound not tight: best %v, bound %v",
				trial, score, scorefn.UpperBoundWIN(winFn, maxima))
		}
		medFn := scorefn.LinearMED{Scale: 0.3}
		if _, score, _ := naive.MED(medFn, lists); score != scorefn.UpperBoundMED(medFn, maxima) {
			t.Fatalf("trial %d: MED bound not tight: best %v, bound %v",
				trial, score, scorefn.UpperBoundMED(medFn, maxima))
		}
		maxFn := scorefn.SumMAX{Alpha: 0.1}
		if _, score, _ := naive.MAX(maxFn, lists); score != scorefn.UpperBoundMAX(maxFn, maxima) {
			t.Fatalf("trial %d: MAX bound not tight: best %v, bound %v",
				trial, score, scorefn.UpperBoundMAX(maxFn, maxima))
		}
	}
}

// TestUnionUpperBoundDominatesPartialMatches is the regression the
// conjunctive bounds would fail: under product-style scoring a subset
// join can exceed the full-set cap (two lists of max 0.5 give an ExpWIN
// full-set bound of 0.25 while a single-list match scores 0.5), so the
// disjunctive bound must maximize over admissible subset sizes. The
// in-package checkers enumerate every subset of ≥ minMatch lists.
func TestUnionUpperBoundDominatesPartialMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, fn := range []scorefn.WIN{scorefn.ExpWIN{Alpha: 0.1}, scorefn.LinearWIN{Scale: 0.3}} {
		if err := scorefn.CheckUnionUpperBoundWIN(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
	for _, fn := range []scorefn.MED{scorefn.ExpMED{Alpha: 0.1}, scorefn.LinearMED{Scale: 0.3}} {
		if err := scorefn.CheckUnionUpperBoundMED(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
	for _, fn := range []scorefn.MAX{scorefn.SumMAX{Alpha: 0.1}, scorefn.ProdMAX{Alpha: 0.1}} {
		if err := scorefn.CheckUnionUpperBoundMAX(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
}

// TestUnionUpperBoundSingleListRegime pins the concrete counterexample
// above: the union bound with minMatch=1 must be at least the best
// single-list score, where the conjunctive full-set bound is not.
func TestUnionUpperBoundSingleListRegime(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	maxima := []float64{0.5, 0.5}
	conj := scorefn.UpperBoundWIN(fn, maxima)
	if conj >= 0.5 {
		t.Fatalf("premise broken: conjunctive bound %v should sit below the single-list score 0.5", conj)
	}
	if got := scorefn.UnionUpperBoundWIN(fn, maxima, 1); got < 0.5 {
		t.Fatalf("union bound %v below the single-list score 0.5", got)
	}
	// m=n degenerates to the conjunctive cap.
	if got := scorefn.UnionUpperBoundWIN(fn, maxima, 2); got != conj {
		t.Fatalf("union bound at m=n is %v, want conjunctive cap %v", got, conj)
	}
}

// TestCheckUpperBound runs the in-package contract checkers over every
// concrete instance, including the per-term weighted wrappers.
func TestCheckUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	weights := []float64{1.5, 0.5, 2}
	for _, fn := range []scorefn.WIN{
		scorefn.ExpWIN{Alpha: 0.1},
		scorefn.LinearWIN{Scale: 0.3},
		scorefn.WeightedWIN{Base: scorefn.LinearWIN{Scale: 0.3}, Weights: weights},
	} {
		if err := scorefn.CheckUpperBoundWIN(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
	for _, fn := range []scorefn.MED{
		scorefn.ExpMED{Alpha: 0.1},
		scorefn.LinearMED{Scale: 0.3},
		scorefn.WeightedMED{Base: scorefn.LinearMED{Scale: 0.3}, Weights: weights},
	} {
		if err := scorefn.CheckUpperBoundMED(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
	for _, fn := range []scorefn.MAX{
		scorefn.SumMAX{Alpha: 0.1},
		scorefn.ProdMAX{Alpha: 0.1},
		scorefn.MEDAsMAX{MED: scorefn.LinearMED{Scale: 0.3}},
	} {
		if err := scorefn.CheckUpperBoundMAX(fn, 3, 60, rng); err != nil {
			t.Errorf("%#v: %v", fn, err)
		}
	}
}
