package scorefn

// Score upper bounds: for each family, the highest score any matchset
// drawn from lists with the given per-list maximum match scores could
// possibly attain. The proximity term is capped at its best case — a
// zero-length window for WIN, zero distance to the median for MED,
// zero distance to the reference location for MAX — and every match
// score at its list's maximum, so the bound dominates every concrete
// matchset by the families' own monotonicity contracts (Definitions 3,
// 5 and 7). These are the per-document score caps that make
// threshold-style top-k pruning (Fagin et al.'s TA) lossless: a
// document whose bound is strictly below the current top-k floor can
// be skipped without ever running its best-join.
//
// Soundness per family, for any matchset M with score(m_j) ≤ max_j:
//
//   - WIN: every g_j is increasing, so Σ g_j(score(m_j)) ≤ Σ g_j(max_j);
//     f is increasing in the g-total and decreasing in the window, and
//     window(M) ≥ 0, hence score(M) ≤ f(Σ g_j(max_j), 0).
//   - MED: each contribution g_j(score(m_j)) − |loc(m_j) − median(M)|
//     is at most g_j(max_j); f is increasing.
//   - MAX: c_j is increasing in score and decreasing in distance, so
//     c_j(m_j, l) ≤ c_j(max_j, 0) for every reference location l — the
//     bound dominates the supremum over all locations, not just the
//     match locations, so it is sound for general MAX functions too.
//
// The bounds are tight at zero proximity penalty: a matchset whose
// matches all carry their list's maximum score and share one location
// scores exactly the bound (every floating-point operation is applied
// to identical inputs in identical order). CheckUpperBoundWIN/MED/MAX
// probe the domination property on randomized instances.

// UpperBound is the engine-facing shape of the hooks below: a
// per-document score cap computed from the per-list maximum match
// scores of one candidate document.
type UpperBound func(perListMax []float64) float64

// UpperBoundWIN returns the WIN score cap f(Σ g_j(max_j), 0): the best
// possible transformed-score total combined with a zero-length window.
func UpperBoundWIN(fn WIN, perListMax []float64) float64 {
	gsum := 0.0
	for j, m := range perListMax {
		gsum += fn.G(j, m)
	}
	return fn.F(gsum, 0)
}

// UpperBoundMED returns the MED score cap f(Σ g_j(max_j)): every match
// at its list's maximum score sitting exactly on the median.
func UpperBoundMED(fn MED, perListMax []float64) float64 {
	total := 0.0
	for j, m := range perListMax {
		total += fn.G(j, m)
	}
	return fn.F(total)
}

// UpperBoundMAX returns the MAX score cap f(Σ c_j(max_j, 0)): every
// match at its list's maximum score sitting exactly on the reference
// location.
func UpperBoundMAX(fn MAX, perListMax []float64) float64 {
	total := 0.0
	for j, m := range perListMax {
		total += fn.Contribution(j, m, 0)
	}
	return fn.F(total)
}
