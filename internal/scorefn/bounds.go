package scorefn

import (
	"math"
	"sort"
)

// Score upper bounds: for each family, the highest score any matchset
// drawn from lists with the given per-list maximum match scores could
// possibly attain. The proximity term is capped at its best case — a
// zero-length window for WIN, zero distance to the median for MED,
// zero distance to the reference location for MAX — and every match
// score at its list's maximum, so the bound dominates every concrete
// matchset by the families' own monotonicity contracts (Definitions 3,
// 5 and 7). These are the per-document score caps that make
// threshold-style top-k pruning (Fagin et al.'s TA) lossless: a
// document whose bound is strictly below the current top-k floor can
// be skipped without ever running its best-join.
//
// Soundness per family, for any matchset M with score(m_j) ≤ max_j:
//
//   - WIN: every g_j is increasing, so Σ g_j(score(m_j)) ≤ Σ g_j(max_j);
//     f is increasing in the g-total and decreasing in the window, and
//     window(M) ≥ 0, hence score(M) ≤ f(Σ g_j(max_j), 0).
//   - MED: each contribution g_j(score(m_j)) − |loc(m_j) − median(M)|
//     is at most g_j(max_j); f is increasing.
//   - MAX: c_j is increasing in score and decreasing in distance, so
//     c_j(m_j, l) ≤ c_j(max_j, 0) for every reference location l — the
//     bound dominates the supremum over all locations, not just the
//     match locations, so it is sound for general MAX functions too.
//
// The bounds are tight at zero proximity penalty: a matchset whose
// matches all carry their list's maximum score and share one location
// scores exactly the bound (every floating-point operation is applied
// to identical inputs in identical order). CheckUpperBoundWIN/MED/MAX
// probe the domination property on randomized instances.

// UpperBound is the engine-facing shape of the hooks below: a
// per-document score cap computed from the per-list maximum match
// scores of one candidate document.
type UpperBound func(perListMax []float64) float64

// UpperBoundWIN returns the WIN score cap f(Σ g_j(max_j), 0): the best
// possible transformed-score total combined with a zero-length window.
func UpperBoundWIN(fn WIN, perListMax []float64) float64 {
	gsum := 0.0
	for j, m := range perListMax {
		gsum += fn.G(j, m)
	}
	return fn.F(gsum, 0)
}

// UpperBoundMED returns the MED score cap f(Σ g_j(max_j)): every match
// at its list's maximum score sitting exactly on the median.
func UpperBoundMED(fn MED, perListMax []float64) float64 {
	total := 0.0
	for j, m := range perListMax {
		total += fn.G(j, m)
	}
	return fn.F(total)
}

// UpperBoundMAX returns the MAX score cap f(Σ c_j(max_j, 0)): every
// match at its list's maximum score sitting exactly on the reference
// location.
func UpperBoundMAX(fn MAX, perListMax []float64) float64 {
	total := 0.0
	for j, m := range perListMax {
		total += fn.Contribution(j, m, 0)
	}
	return fn.F(total)
}

// Union (disjunctive) upper bounds: the highest score any matchset
// drawn from ANY subset of at least minMatch of the given lists could
// attain. The conjunctive bounds above are not reusable here — for
// product-style instances g_j(x) = ln(x) is negative on scores in
// (0,1], so adding a list LOWERS the transformed-score total: with two
// lists of maximum 0.5, the full-set WIN bound is f(ln 0.5 + ln 0.5, 0)
// = 0.25, while a document matching only the first list legitimately
// scores up to 0.5. A sound disjunctive bound must therefore maximize
// over the admissible subset sizes.
//
// The functions below sort the per-list maxima descending and evaluate
// the family's zero-proximity cap on every prefix of size
// s ∈ [minMatch, len], returning the largest. That dominates the best
// join over any admissible subset PROVIDED the per-term transform is
// term-exchangeable — G(j, x) (or Contribution(j, x, d)) does not
// depend on j — because then the score of a size-s subset depends only
// on the multiset of its match scores, each of which is dominated
// element-wise by the s largest list maxima. Every shipped unweighted
// instance (ExpWIN, LinearWIN, ExpMED, LinearMED, ProdMAX, SumMAX) is
// term-exchangeable; WeightedWIN/WeightedMED are not, and callers
// scoring with term-dependent transforms must not use these bounds
// (disable pruning instead). CheckUnionUpperBound* probe the
// domination property on randomized instances and subsets.
//
// minMatch values outside [1, len(perListMax)] are clamped; an empty
// perListMax yields -Inf (no admissible matchset).

// unionPrefixMax sorts maxima descending into scratch and returns the
// max over admissible prefix sizes of cap(prefix). cap receives the
// prefix length s and the sorted maxima; it must fold the first s.
func unionPrefixMax(perListMax []float64, minMatch int, cap func(s int, sorted []float64) float64) float64 {
	n := len(perListMax)
	if n == 0 {
		return math.Inf(-1)
	}
	if minMatch < 1 {
		minMatch = 1
	}
	if minMatch > n {
		minMatch = n
	}
	sorted := append(make([]float64, 0, n), perListMax...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	best := math.Inf(-1)
	for s := minMatch; s <= n; s++ {
		if v := cap(s, sorted); v > best || math.IsNaN(v) {
			best = v
		}
	}
	return best
}

// UnionUpperBoundWIN returns the disjunctive WIN score cap
// max over s ∈ [minMatch, n] of f(Σ_{i<s} g(sorted_i), 0), with the
// per-list maxima sorted descending. Sound for term-exchangeable G.
func UnionUpperBoundWIN(fn WIN, perListMax []float64, minMatch int) float64 {
	gsums := 0.0
	last := 0
	return unionPrefixMax(perListMax, minMatch, func(s int, sorted []float64) float64 {
		for ; last < s; last++ {
			gsums += fn.G(last, sorted[last])
		}
		return fn.F(gsums, 0)
	})
}

// UnionUpperBoundMED returns the disjunctive MED score cap; see
// UnionUpperBoundWIN.
func UnionUpperBoundMED(fn MED, perListMax []float64, minMatch int) float64 {
	total := 0.0
	last := 0
	return unionPrefixMax(perListMax, minMatch, func(s int, sorted []float64) float64 {
		for ; last < s; last++ {
			total += fn.G(last, sorted[last])
		}
		return fn.F(total)
	})
}

// UnionUpperBoundMAX returns the disjunctive MAX score cap; see
// UnionUpperBoundWIN.
func UnionUpperBoundMAX(fn MAX, perListMax []float64, minMatch int) float64 {
	total := 0.0
	last := 0
	return unionPrefixMax(perListMax, minMatch, func(s int, sorted []float64) float64 {
		for ; last < s; last++ {
			total += fn.Contribution(last, sorted[last], 0)
		}
		return fn.F(total)
	})
}
