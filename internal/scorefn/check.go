package scorefn

import (
	"fmt"
	"math/rand"

	"bestjoin/internal/match"
)

// CheckWIN probes a WIN scoring function against the Definition 3
// contract on n randomized inputs drawn from rng: monotonicity of
// every g_j and of f in both arguments, plus the optimal substructure
// property. It returns the first violation found, or nil.
//
// Scores are drawn from (0,1] and windows from [0,200), matching the
// regime the paper's experiments operate in.
func CheckWIN(fn WIN, terms int, n int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		j := rng.Intn(terms)
		x, y := randScore(rng), randScore(rng)
		if x > y && fn.G(j, x) < fn.G(j, y) {
			return fmt.Errorf("scorefn: g_%d not increasing: g(%v)=%v < g(%v)=%v", j, x, fn.G(j, x), y, fn.G(j, y))
		}
		a, b := rng.Float64()*20-10, rng.Float64()*20-10
		w, v := rng.Float64()*200, rng.Float64()*200
		if a >= b && fn.F(a, w) < fn.F(b, w) {
			return fmt.Errorf("scorefn: f not increasing in x: f(%v,%v) < f(%v,%v)", a, w, b, w)
		}
		if w >= v && fn.F(a, w) > fn.F(a, v) {
			return fmt.Errorf("scorefn: f not decreasing in y: f(%v,%v) > f(%v,%v)", a, w, a, v)
		}
		// Optimal substructure: f(x,y) ≥ f(x',y') must be preserved by
		// adding δ≥0 to both first arguments, and by adding δ≥0 to
		// both second arguments.
		delta := rng.Float64() * 50
		if fn.F(a, w) >= fn.F(b, v) {
			if fn.F(a+delta, w) < fn.F(b+delta, v) {
				return fmt.Errorf("scorefn: optimal substructure (x+δ) violated at x=%v y=%v x'=%v y'=%v δ=%v", a, w, b, v, delta)
			}
			if fn.F(a, w+delta) < fn.F(b, v+delta) {
				return fmt.Errorf("scorefn: optimal substructure (y+δ) violated at x=%v y=%v x'=%v y'=%v δ=%v", a, w, b, v, delta)
			}
		}
		// A function claiming WINSeparable must have F equal — to the
		// bit, since the kernel's keyed path depends on it — to Lift of
		// the key expression, with a non-negative slope.
		if sep, ok := fn.(WINSeparable); ok {
			slope := sep.KeySlope()
			if slope < 0 {
				return fmt.Errorf("scorefn: negative KeySlope %v", slope)
			}
			if got, want := sep.Lift(a-slope*w), fn.F(a, w); got != want {
				return fmt.Errorf("scorefn: separable form diverges from F at x=%v y=%v: Lift=%v F=%v", a, w, got, want)
			}
		}
	}
	return nil
}

// CheckMED probes a MED scoring function against the Definition 5
// contract (f and every g_j monotonically increasing) on n randomized
// inputs. It returns the first violation found, or nil.
func CheckMED(fn MED, terms int, n int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		j := rng.Intn(terms)
		x, y := randScore(rng), randScore(rng)
		if x > y && fn.G(j, x) < fn.G(j, y) {
			return fmt.Errorf("scorefn: g_%d not increasing", j)
		}
		a, b := rng.Float64()*40-20, rng.Float64()*40-20
		if a >= b && fn.F(a) < fn.F(b) {
			return fmt.Errorf("scorefn: f not increasing: f(%v)=%v < f(%v)=%v", a, fn.F(a), b, fn.F(b))
		}
	}
	return nil
}

// CheckMAX probes a MAX scoring function against the Definition 7
// contract (f increasing; contribution increasing in score, decreasing
// in distance) on n randomized inputs. It returns the first violation
// found, or nil.
func CheckMAX(fn MAX, terms int, n int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		j := rng.Intn(terms)
		x, y := randScore(rng), randScore(rng)
		d := rng.Float64() * 100
		if x > y && fn.Contribution(j, x, d) < fn.Contribution(j, y, d) {
			return fmt.Errorf("scorefn: contribution not increasing in score")
		}
		d2 := d + rng.Float64()*100
		if fn.Contribution(j, x, d) < fn.Contribution(j, x, d2) {
			return fmt.Errorf("scorefn: contribution not decreasing in distance")
		}
		a, b := rng.Float64()*40-20, rng.Float64()*40-20
		if a >= b && fn.F(a) < fn.F(b) {
			return fmt.Errorf("scorefn: f not increasing")
		}
	}
	return nil
}

// CheckAtMostOneCrossing numerically probes the Definition 8 crossing
// property: for random pairs of (score, loc) match curves for the same
// term, the sign of their contribution difference, swept over integer
// locations in [lo, hi], must change at most once. It returns the
// first violation found, or nil.
func CheckAtMostOneCrossing(fn MAX, terms int, n int, lo, hi int, rng *rand.Rand) error {
	for i := 0; i < n; i++ {
		j := rng.Intn(terms)
		s1, s2 := randScore(rng), randScore(rng)
		l1 := lo + rng.Intn(hi-lo)
		l2 := lo + rng.Intn(hi-lo)
		changes, prev := 0, 0
		for l := lo; l <= hi; l++ {
			d := fn.Contribution(j, s1, absDist(l1, l)) - fn.Contribution(j, s2, absDist(l2, l))
			s := sign(d)
			if s != 0 {
				if prev != 0 && s != prev {
					changes++
				}
				prev = s
			}
		}
		if changes > 1 {
			return fmt.Errorf("scorefn: contributions of (%v@%d) and (%v@%d) cross %d times", s1, l1, s2, l2, changes)
		}
	}
	return nil
}

// CheckUpperBoundWIN probes the score-upper-bound contract of a WIN
// scoring function on n randomized enumerable instances: for every
// matchset of a small random instance, ScoreWIN must not exceed
// UpperBoundWIN of the per-list maxima; and a matchset carrying every
// list's maximum score at one shared location must score exactly the
// bound (tightness at zero proximity penalty). It returns the first
// violation found, or nil.
func CheckUpperBoundWIN(fn WIN, terms int, n int, rng *rand.Rand) error {
	return checkUpperBound(terms, n, rng,
		func(maxima []float64) float64 { return UpperBoundWIN(fn, maxima) },
		func(s match.Set) float64 { return ScoreWIN(fn, s) },
		"WIN")
}

// CheckUpperBoundMED is CheckUpperBoundWIN for the MED family.
func CheckUpperBoundMED(fn MED, terms int, n int, rng *rand.Rand) error {
	return checkUpperBound(terms, n, rng,
		func(maxima []float64) float64 { return UpperBoundMED(fn, maxima) },
		func(s match.Set) float64 { return ScoreMED(fn, s) },
		"MED")
}

// CheckUpperBoundMAX is CheckUpperBoundWIN for the MAX family
// (maximized-at-match evaluation, the regime the join algorithms and
// the engine operate in).
func CheckUpperBoundMAX(fn MAX, terms int, n int, rng *rand.Rand) error {
	return checkUpperBound(terms, n, rng,
		func(maxima []float64) float64 { return UpperBoundMAX(fn, maxima) },
		func(s match.Set) float64 { v, _ := ScoreMAX(fn, s); return v },
		"MAX")
}

// checkUpperBound enumerates the cross product of small random match
// lists and verifies bound domination plus zero-penalty tightness.
func checkUpperBound(terms, n int, rng *rand.Rand,
	bound func([]float64) float64, score func(match.Set) float64, family string) error {
	for i := 0; i < n; i++ {
		// Random instance: 1–3 matches per list, locations in [0, 30).
		lists := make([]match.List, terms)
		maxima := make([]float64, terms)
		for j := range lists {
			m := 1 + rng.Intn(3)
			for k := 0; k < m; k++ {
				lists[j] = append(lists[j], match.Match{Loc: rng.Intn(30), Score: randScore(rng)})
			}
			lists[j].Sort()
			maxima[j] = lists[j][0].Score
			for _, mm := range lists[j] {
				if mm.Score > maxima[j] {
					maxima[j] = mm.Score
				}
			}
		}
		b := bound(maxima)
		// Domination over the full cross product.
		idx := make([]int, terms)
		set := make(match.Set, terms)
		for {
			for j := range set {
				set[j] = lists[j][idx[j]]
			}
			if v := score(set); v > b {
				return fmt.Errorf("scorefn: %s upper bound %v below matchset score %v for %v", family, b, v, set)
			}
			j := terms - 1
			for ; j >= 0; j-- {
				idx[j]++
				if idx[j] < len(lists[j]) {
					break
				}
				idx[j] = 0
			}
			if j < 0 {
				break
			}
		}
		// Tightness: all maxima at one shared location scores the bound.
		tight := make(match.Set, terms)
		loc := rng.Intn(30)
		for j := range tight {
			tight[j] = match.Match{Loc: loc, Score: maxima[j]}
		}
		if v := score(tight); v != b {
			return fmt.Errorf("scorefn: %s upper bound %v not tight at zero proximity penalty (got %v)", family, b, v)
		}
	}
	return nil
}

// CheckUnionUpperBoundWIN probes the disjunctive-bound contract of a
// term-exchangeable WIN scoring function on n randomized enumerable
// instances: for every subset of at least minMatch lists and every
// matchset drawn from it (compacted to term indices 0..s−1, exactly
// how the engine hands partial matches to kernels), ScoreWIN must not
// exceed UnionUpperBoundWIN of the full per-list maxima. It returns
// the first violation found, or nil.
func CheckUnionUpperBoundWIN(fn WIN, terms int, n int, rng *rand.Rand) error {
	return checkUnionUpperBound(terms, n, rng,
		func(maxima []float64, m int) float64 { return UnionUpperBoundWIN(fn, maxima, m) },
		func(s match.Set) float64 { return ScoreWIN(fn, s) },
		"WIN")
}

// CheckUnionUpperBoundMED is CheckUnionUpperBoundWIN for the MED
// family.
func CheckUnionUpperBoundMED(fn MED, terms int, n int, rng *rand.Rand) error {
	return checkUnionUpperBound(terms, n, rng,
		func(maxima []float64, m int) float64 { return UnionUpperBoundMED(fn, maxima, m) },
		func(s match.Set) float64 { return ScoreMED(fn, s) },
		"MED")
}

// CheckUnionUpperBoundMAX is CheckUnionUpperBoundWIN for the MAX
// family (maximized-at-match evaluation).
func CheckUnionUpperBoundMAX(fn MAX, terms int, n int, rng *rand.Rand) error {
	return checkUnionUpperBound(terms, n, rng,
		func(maxima []float64, m int) float64 { return UnionUpperBoundMAX(fn, maxima, m) },
		func(s match.Set) float64 { v, _ := ScoreMAX(fn, s); return v },
		"MAX")
}

// checkUnionUpperBound enumerates every subset of ≥ minMatch lists of
// small random instances and verifies the union bound dominates every
// matchset of every subset.
func checkUnionUpperBound(terms, n int, rng *rand.Rand,
	bound func([]float64, int) float64, score func(match.Set) float64, family string) error {
	for i := 0; i < n; i++ {
		lists := make([]match.List, terms)
		maxima := make([]float64, terms)
		for j := range lists {
			m := 1 + rng.Intn(3)
			for k := 0; k < m; k++ {
				lists[j] = append(lists[j], match.Match{Loc: rng.Intn(30), Score: randScore(rng)})
			}
			lists[j].Sort()
			maxima[j] = lists[j][0].Score
			for _, mm := range lists[j] {
				if mm.Score > maxima[j] {
					maxima[j] = mm.Score
				}
			}
		}
		minMatch := 1 + rng.Intn(terms)
		b := bound(maxima, minMatch)
		for mask := 1; mask < 1<<terms; mask++ {
			var sub []match.List
			for j := 0; j < terms; j++ {
				if mask&(1<<j) != 0 {
					sub = append(sub, lists[j])
				}
			}
			if len(sub) < minMatch {
				continue
			}
			idx := make([]int, len(sub))
			set := make(match.Set, len(sub))
			for {
				for j := range set {
					set[j] = sub[j][idx[j]]
				}
				if v := score(set); v > b {
					return fmt.Errorf("scorefn: %s union bound %v (m=%d) below subset %b matchset score %v for %v",
						family, b, minMatch, mask, v, set)
				}
				j := len(sub) - 1
				for ; j >= 0; j-- {
					idx[j]++
					if idx[j] < len(sub[j]) {
						break
					}
					idx[j] = 0
				}
				if j < 0 {
					break
				}
			}
		}
	}
	return nil
}

func randScore(rng *rand.Rand) float64 {
	// Uniform over (0,1]: the paper's individual-match-score regime.
	return 1 - rng.Float64()
}

func absDist(a, b int) float64 {
	if a < b {
		return float64(b - a)
	}
	return float64(a - b)
}

func sign(x float64) int {
	const eps = 1e-12
	switch {
	case x > eps:
		return 1
	case x < -eps:
		return -1
	default:
		return 0
	}
}
