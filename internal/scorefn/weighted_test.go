package scorefn

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
)

func TestWeightedWINAppliesPerTermWeights(t *testing.T) {
	base := LinearWIN{Scale: 0.3}
	w := WeightedWIN{Base: base, Weights: []float64{2, 0.5}}
	if got, want := w.G(0, 0.6), 2*base.G(0, 0.6); math.Abs(got-want) > 1e-12 {
		t.Errorf("G(0) = %v, want %v", got, want)
	}
	if got, want := w.G(1, 0.6), 0.5*base.G(1, 0.6); math.Abs(got-want) > 1e-12 {
		t.Errorf("G(1) = %v, want %v", got, want)
	}
	// Terms beyond the weight slice keep weight 1.
	if got, want := w.G(5, 0.6), base.G(5, 0.6); math.Abs(got-want) > 1e-12 {
		t.Errorf("G(5) = %v, want %v", got, want)
	}
	// F passes through.
	if got, want := w.F(3, 7), base.F(3, 7); got != want {
		t.Errorf("F = %v, want %v", got, want)
	}
}

func TestWeightedSatisfyContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	win := WeightedWIN{Base: ExpWIN{Alpha: 0.1}, Weights: []float64{2, 0.5, 1.5, 0.25}}
	if err := CheckWIN(win, 4, 4000, rng); err != nil {
		t.Errorf("WeightedWIN: %v", err)
	}
	med := WeightedMED{Base: ExpMED{Alpha: 0.1}, Weights: []float64{2, 0.5, 1.5, 0.25}}
	if err := CheckMED(med, 4, 4000, rng); err != nil {
		t.Errorf("WeightedMED: %v", err)
	}
}

func TestWeightedMEDShiftsPreference(t *testing.T) {
	// Two matchsets: one has a strong match for term 0, the other for
	// term 1 (symmetric otherwise). Upweighting term 0 must prefer the
	// first; upweighting term 1 the second.
	a := match.Set{{Loc: 0, Score: 0.9}, {Loc: 2, Score: 0.3}}
	b := match.Set{{Loc: 0, Score: 0.3}, {Loc: 2, Score: 0.9}}
	base := LinearMED{Scale: 0.3}
	up0 := WeightedMED{Base: base, Weights: []float64{3, 1}}
	up1 := WeightedMED{Base: base, Weights: []float64{1, 3}}
	if ScoreMED(up0, a) <= ScoreMED(up0, b) {
		t.Error("upweighting term 0 did not prefer the strong-term-0 matchset")
	}
	if ScoreMED(up1, b) <= ScoreMED(up1, a) {
		t.Error("upweighting term 1 did not prefer the strong-term-1 matchset")
	}
}
