// Package scorefn defines the three families of matchset scoring
// functions studied by the paper — window-length (WIN, Definition 3),
// distance-from-median (MED, Definition 5) and maximize-over-location
// (MAX, Definition 7) — together with the concrete instances used in
// the paper's examples and experiments.
//
// Each family is an interface capturing exactly the degrees of freedom
// the paper leaves open (the f and g_j functions); the join algorithms
// in package join work for any implementation that satisfies the
// family's stated monotonicity/substructure contract. Package scorefn
// also provides randomized property checkers (see check.go) that
// verify a candidate implementation against that contract.
package scorefn

import (
	"math"

	"bestjoin/internal/match"
)

// WIN is a window-length scoring function (Definition 3):
//
//	score(M,Q) = F( Σj Gj(score(mj)),  maxj loc(mj) − minj loc(mj) )
//
// Contract: G(j,·) must be monotonically increasing for every term j;
// F must be monotonically increasing in its first argument,
// monotonically decreasing in its second, and satisfy the optimal
// substructure property:
//
//	F(x,y) ≥ F(x',y')  ⇒  F(x+δ,y) ≥ F(x'+δ,y')   for all δ ≥ 0
//	F(x,y) ≥ F(x',y')  ⇒  F(x,y+δ) ≥ F(x',y'+δ)   for all δ ≥ 0
//
// CheckWIN verifies these properties on randomized inputs.
type WIN interface {
	// G is the per-term score transform g_j applied to an individual
	// match score.
	G(term int, score float64) float64
	// F combines the transformed score total with the window length.
	F(gsum float64, window float64) float64
}

// WINSeparable is an optional refinement of WIN for functions of the
// separable form
//
//	F(gsum, window) = Lift(gsum − KeySlope()·window)
//
// with Lift strictly increasing. Both shipped WIN families have this
// shape — ExpWIN lifts through exp, LinearWIN through the identity —
// and it is exactly what lets the WIN join kernel run its inner subset
// loop on raw keys (gsum − slope·window): strict monotonicity makes
// every F-comparison equivalent to the key comparison, so the kernel
// pays zero transcendental calls and zero interface dispatches per
// subset, lifting only the single winning key into a score at the end.
//
// Contract: F(gsum, window) must compute Lift applied to the exact
// expression gsum − KeySlope()·window (same operation shape, so the
// floating-point result is bit-identical to what the kernel computes),
// KeySlope must be non-negative, and Lift strictly increasing.
// CheckWIN verifies the equality on randomized inputs when the
// function under test implements this interface.
type WINSeparable interface {
	WIN
	// KeySlope is the window coefficient α of the separable form.
	KeySlope() float64
	// Lift maps a key gsum − KeySlope()·window to the final score.
	Lift(key float64) float64
}

// MED is a distance-from-median scoring function (Definition 5):
//
//	score(M,Q) = F( Σj ( Gj(score(mj)) − |loc(mj) − median(M)| ) )
//
// Contract: F and every G(j,·) must be monotonically increasing.
type MED interface {
	G(term int, score float64) float64
	F(total float64) float64
}

// MAX is a maximize-over-location scoring function (Definition 7):
//
//	score(M,Q) = max_l F( Σj Gj(score(mj), |loc(mj) − l|) )
//
// Contribution here exposes g_j directly: the distance-decayed score
// contribution c_j(m,l) = g_j(score(m), |loc(m)−l|) of a match at a
// reference location. Contract: F monotonically increasing;
// Contribution monotonically increasing in score and monotonically
// decreasing in dist.
type MAX interface {
	// Contribution is c_j(m,l) evaluated with dist = |loc(m)−l|.
	Contribution(term int, score float64, dist float64) float64
	F(total float64) float64
}

// EfficientMAX marks MAX scoring functions that additionally satisfy
// the two properties of Definition 8 enabling the specialized
// linear-time algorithm:
//
//   - at-most-one-crossing: for two matches of the same list, the sign
//     of c_j(m,l) − c_j(m',l) changes at most once over l;
//   - maximized-at-match: the maximum over l of the matchset score is
//     attained at the location of one of the matches in the matchset.
//
// Lemma 3 proves both hold for the exponential-decay instances
// ProdMAX and SumMAX. CheckMAXProperties probes them numerically.
type EfficientMAX interface {
	MAX
	// AtMostOneCrossing is a marker; implementations assert the
	// Definition 8 properties hold.
	AtMostOneCrossing() bool
}

// ScoreWIN evaluates a WIN scoring function on a full matchset.
func ScoreWIN(fn WIN, s match.Set) float64 {
	gsum := 0.0
	for j, m := range s {
		gsum += fn.G(j, m.Score)
	}
	return fn.F(gsum, float64(s.Window()))
}

// ScoreMED evaluates a MED scoring function on a full matchset, using
// the paper's median definition (match.Set.Median).
func ScoreMED(fn MED, s match.Set) float64 {
	med := s.Median()
	total := 0.0
	for j, m := range s {
		total += MEDContribution(fn, j, m, med)
	}
	return fn.F(total)
}

// MEDContribution is c_j(m,l) = g_j(score(m)) − |loc(m) − l|, the
// distance-decayed score contribution of a match under MED.
func MEDContribution(fn MED, term int, m match.Match, l int) float64 {
	return fn.G(term, m.Score) - absInt(m.Loc-l)
}

// ScoreMAXAt evaluates F(Σ c_j(m_j, l)) for a fixed reference
// location l.
func ScoreMAXAt(fn MAX, s match.Set, l int) float64 {
	total := 0.0
	for j, m := range s {
		total += fn.Contribution(j, m.Score, absInt(m.Loc-l))
	}
	return fn.F(total)
}

// ScoreMAX evaluates a MAX scoring function on a full matchset by
// maximizing over candidate reference locations. For maximized-at-match
// functions the candidates are exactly the match locations of the set,
// which is how the paper's algorithms evaluate matchsets; for general
// MAX functions the true maximum may fall between matches, and callers
// should use envelope-based evaluation instead.
func ScoreMAX(fn MAX, s match.Set) (score float64, anchor int) {
	best := math.Inf(-1)
	bestLoc := s[0].Loc
	for _, m := range s {
		if v := ScoreMAXAt(fn, s, m.Loc); v > best {
			best = v
			bestLoc = m.Loc
		}
	}
	return best, bestLoc
}

func absInt(d int) float64 {
	if d < 0 {
		d = -d
	}
	return float64(d)
}
