// Package corpus synthesizes the two real-world datasets of the
// paper's Section VIII that cannot be redistributed here:
//
//   - the TREC 2006 QA collection (1000 short documents per query,
//     averaging 450–500 words), simulated per query with planted
//     answer sentences and distractor matches calibrated so that the
//     average match-list sizes approximate the paper's Figure 12
//     columns;
//   - the DBWorld call-for-papers messages (25 emails), simulated with
//     the structural hallmark the paper calls out: huge place lists
//     from PC-member affiliations and many dates from submission
//     deadlines, including deadline-extension announcements where the
//     first date in the message is not the meeting date.
//
// Documents are real token streams; the matcher and lexicon substrates
// process them exactly as they would process the original data, so the
// join algorithms see match lists of the same shape the paper reports.
package corpus

import (
	"math/rand"
	"strings"
)

// filler is the pool of background words. None of them may match any
// experiment matcher (the corpus tests verify this invariant), so they
// only dilute the documents.
var filler = []string{
	"the", "a", "an", "of", "and", "or", "but", "that", "this", "those",
	"quantum", "pixel", "purple", "velvet", "anchor", "bridge", "candle",
	"drum", "engine", "feather", "garden", "hammer", "island", "jungle",
	"kettle", "ladder", "mirror", "needle", "ocean", "pepper", "quartz",
	"ribbon", "saddle", "timber", "umbrella", "violet", "walnut", "xylem",
	"yarn", "zeppelin", "apple", "bottle", "curtain", "dolphin", "ember",
	"flute", "glacier", "helmet", "ivory", "jacket", "kernel", "lantern",
	"marble", "nectar", "orbit", "parcel", "quiver", "rocket", "shadow",
	"tunnel", "vessel", "willow", "yonder", "zephyr", "basket", "cactus",
	"dagger", "eagle", "fossil", "goblet", "hollow", "icicle", "jigsaw",
	"keel", "lumber", "mantle", "nugget", "onyx", "pebble", "quill",
	"rudder", "sleet", "turret", "vortex", "wander", "waffle", "yodel",
	"amber", "bellow", "cinder", "dapple", "elbow", "fathom", "grotto",
	"harrow", "inkwell", "jostle", "kiln", "lagoon", "meadow", "nimbus",
}

// Doc is one synthesized document.
type Doc struct {
	ID   int
	Text string
	// AnswerStart/AnswerEnd delimit (in token positions, inclusive)
	// the planted answer sentence; both are -1 when the document
	// carries no answer.
	AnswerStart, AnswerEnd int
}

// builder assembles a document as a token slice.
type builder struct {
	rng    *rand.Rand
	tokens []string
}

func newBuilder(rng *rand.Rand, words int) *builder {
	b := &builder{rng: rng, tokens: make([]string, words)}
	for i := range b.tokens {
		b.tokens[i] = filler[rng.Intn(len(filler))]
	}
	return b
}

// plantAt writes a phrase over positions starting at pos, returning
// the position after the phrase.
func (b *builder) plantAt(pos int, words ...string) int {
	for _, w := range words {
		if pos >= len(b.tokens) {
			break
		}
		b.tokens[pos] = w
		pos++
	}
	return pos
}

// scatter overwrites n random positions outside [avoidLo, avoidHi]
// with words drawn uniformly from the pool.
func (b *builder) scatter(pool []string, n, avoidLo, avoidHi int) {
	for k := 0; k < n; k++ {
		for tries := 0; tries < 50; tries++ {
			p := b.rng.Intn(len(b.tokens))
			if p >= avoidLo && p <= avoidHi {
				continue
			}
			b.tokens[p] = pool[b.rng.Intn(len(pool))]
			break
		}
	}
}

func (b *builder) text() string { return strings.Join(b.tokens, " ") }

// poissonish draws a count with the given mean: the integer part plus
// a Bernoulli trial on the fraction, a cheap stand-in for Poisson that
// preserves the mean exactly.
func poissonish(rng *rand.Rand, mean float64) int {
	n := int(mean)
	if rng.Float64() < mean-float64(n) {
		n++
	}
	return n
}
