package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/matcher"
)

// CFP is one synthesized DBWorld call-for-papers message, with the
// ground-truth token positions of the meeting's date and place for
// extraction-accuracy evaluation.
type CFP struct {
	Doc
	// Extension marks deadline-extension announcements, where the
	// first date in the message is a new submission deadline, not the
	// meeting date (7 of the paper's 25 messages).
	Extension bool
	// MeetingDatePos and MeetingPlacePos are the token positions of
	// the month of the meeting date and of the venue city.
	MeetingDatePos  int
	MeetingPlacePos int
}

// DBWorldQuery returns the paper's DBWorld query
// {conference|workshop, date, place} as matchers, using the lexicon
// rule for the first term (conference scores 1, direct neighbours 0.7)
// and the paper's date and place matchers.
func DBWorldQuery(g *lexicon.Graph, gz *gazetteer.Gazetteer) []matcher.Matcher {
	return []matcher.Matcher{
		matcher.Union{Name: "conference|workshop", Matchers: []matcher.Matcher{
			matcher.Lexical{Word: "conference", Graph: g},
			matcher.Lexical{Word: "workshop", Graph: g},
		}},
		matcher.Date{},
		matcher.Place{Gazetteer: gz, Graph: g},
	}
}

var (
	cfpTopics = []string{
		"data management", "information retrieval", "distributed systems",
		"machine learning", "knowledge discovery", "web search",
		"database theory", "stream processing", "semantic web",
	}
	cfpCities = []string{
		"turin", "beijing", "vancouver", "barcelona", "seattle", "vienna",
		"istanbul", "singapore", "sydney", "helsinki", "lyon", "auckland",
		"boston", "shanghai", "amsterdam", "copenhagen", "athens",
	}
	cfpCountries = []string{
		"italy", "china", "canada", "spain", "usa", "austria", "turkey",
		"singapore", "australia", "finland", "france", "zealand",
		"netherlands", "denmark", "greece",
	}
	cfpMonths = []string{
		"january", "february", "march", "april", "may", "june", "july",
		"august", "september", "october", "november", "december",
	}
	pcSurnames = []string{
		"smith", "johnson", "brown", "miller", "wilson", "taylor",
		"anderson", "thomas", "jackson", "harris", "martin", "thompson",
		"robinson", "clark", "lewis", "walker", "hall", "allen", "young",
		"king", "wright", "scott", "green", "baker", "adams", "nelson",
		"hill", "campbell", "mitchell", "roberts", "carter", "phillips",
		"evans", "turner", "parker", "collins", "edwards", "stewart",
		"morris", "rogers", "reed", "cook", "morgan", "bell", "murphy",
		"bailey", "rivera", "cooper", "richardson", "cox", "howard",
		"ward", "peterson", "gray", "ramirez", "watson", "brooks",
	}
	cfpMeetingWords = []string{"conference", "workshop", "symposium", "meeting"}
)

// GenerateDBWorld synthesizes n CFP messages. The structure mirrors
// what the paper observed: titles and body text mention the meeting
// (~13 conference-term matches per message), an "important dates"
// section carries many deadlines (~13 date matches), and a long
// programme-committee list carries PC members' affiliations (~73 place
// matches — the paper: "CFPs contain a huge number of places because
// they often list PC members' affiliations"). extensions of the n
// messages announce deadline extensions first, so the naive
// take-the-first-date heuristic fails on them.
func GenerateDBWorld(n, extensions int, seed int64) []CFP {
	rng := rand.New(rand.NewSource(seed))
	out := make([]CFP, n)
	for i := range out {
		out[i] = generateCFP(rng, i, i < extensions)
	}
	return out
}

func generateCFP(rng *rand.Rand, id int, extension bool) CFP {
	city := cfpCities[rng.Intn(len(cfpCities))]
	country := cfpCountries[rng.Intn(len(cfpCountries))]
	topic := cfpTopics[rng.Intn(len(cfpTopics))]
	meetingWord := cfpMeetingWords[rng.Intn(len(cfpMeetingWords))]
	meetingMonth := cfpMonths[rng.Intn(len(cfpMonths))]
	meetingYear := fmt.Sprintf("%d", 2008+rng.Intn(2))
	acro := fmt.Sprintf("conf%02d", id)

	var w []string
	add := func(words ...string) {
		w = append(w, words...)
	}
	addDate := func() {
		add(cfpMonths[rng.Intn(len(cfpMonths))], fmt.Sprintf("%d", 1+rng.Intn(28)), "2008")
	}

	// Header / extension notice.
	if extension {
		add("deadline", "extension", "the", "submission", "deadline", "for", acro, "has", "been", "extended", "to")
		addDate()
		add("due", "to", "numerous", "requests")
	}
	// No year in the title line: in a normal CFP the first date-like
	// token is then the meeting date, so the take-the-first-date
	// heuristic succeeds on non-extension messages (footnote 12 is
	// about it failing on the extensions).
	add("call", "for", "papers", acro, "international", meetingWord, "on")
	add(splitSpace(topic)...)

	// Venue sentence — the ground truth the query should extract. The
	// date and place sit in tight proximity around the meeting word.
	add("the", meetingWord, "will", "be", "held", "in")
	placePos := len(w)
	add(city, country)
	add("on")
	datePos := len(w)
	add(meetingMonth, fmt.Sprintf("%d", 1+rng.Intn(28)), meetingYear)

	// Scope paragraph with more meeting-word mentions: CFPs repeat
	// "the conference/workshop ..." throughout.
	for k := 0; k < 9+rng.Intn(4); k++ {
		add("the", cfpMeetingWords[rng.Intn(len(cfpMeetingWords))], "solicits", "papers", "on")
		add(splitSpace(cfpTopics[rng.Intn(len(cfpTopics))])...)
		add(filler[rng.Intn(len(filler))])
	}

	// Important-dates section: many deadlines (the paper: "CFPs
	// contain many dates as well, e.g., abstract submission and
	// camera-ready deadlines").
	add("important", "dates")
	deadlines := []string{"abstract", "submission", "notification", "camera", "ready", "registration"}
	for _, d := range deadlines {
		add(d, "deadline")
		if rng.Float64() < 0.5 {
			addDate()
		} else {
			// Month and day only, no year — real CFPs mix both forms.
			add(cfpMonths[rng.Intn(len(cfpMonths))], fmt.Sprintf("%d", 1+rng.Intn(28)))
		}
	}

	// Programme committee: the source of the huge place lists.
	add("program", "committee")
	pcSize := 35 + rng.Intn(16)
	for k := 0; k < pcSize; k++ {
		name := pcSurnames[rng.Intn(len(pcSurnames))]
		switch rng.Intn(3) {
		case 0:
			add(name, "university", "of", cfpCities[rng.Intn(len(cfpCities))])
		case 1:
			add(name, cfpCities[rng.Intn(len(cfpCities))], "university")
		default:
			add(name, "institute", "of", "technology", cfpCities[rng.Intn(len(cfpCities))])
		}
	}
	add("we", "look", "forward", "to", "your", "submission")

	return CFP{
		Doc:             Doc{ID: id, Text: joinSpace(w), AnswerStart: placePos, AnswerEnd: datePos + 2},
		Extension:       extension,
		MeetingDatePos:  datePos,
		MeetingPlacePos: placePos,
	}
}

func joinSpace(words []string) string { return strings.Join(words, " ") }
