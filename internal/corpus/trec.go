package corpus

import (
	"math/rand"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/matcher"
)

// TRECQuery specifies one of the paper's seven selected TREC 2006 QA
// factoid queries (Figure 12): the multi-term form of the question,
// the matchers that produce its match lists, the per-term average
// match-list sizes the paper measured (the generation targets), and
// the answer sentence planted in the answer document.
type TRECQuery struct {
	ID       string
	Question string
	Terms    []string
	// Profile holds the paper-reported average match-list size per
	// term; the generator scatters pool words to hit these means.
	Profile []float64
	// Pools holds, per term, the surface words the generator scatters
	// as distractor matches for that term.
	Pools [][]string
	// Answer is the sentence planted in the answer document; it must
	// contain one close-proximity match per query term.
	Answer []string
}

// Matchers builds the query's per-term matchers over the shared
// lexicon and gazetteer, mirroring the paper's WordNet-based matcher
// with (1−0.3d) scoring.
func (q TRECQuery) Matchers(g *lexicon.Graph, gz *gazetteer.Gazetteer) []matcher.Matcher {
	ms := make([]matcher.Matcher, len(q.Terms))
	for j, term := range q.Terms {
		switch term {
		case "Leaning Tower of Pisa":
			ms[j] = matcher.Phrase{Name: term, Words: []string{"leaning", "tower", "of", "pisa"},
				Head: "pisa", FullScore: 1, HeadScore: 0.7}
		case "Lebanese Parliament":
			ms[j] = matcher.Phrase{Name: term, Words: []string{"lebanese", "parliament"},
				Head: "", FullScore: 1}
		case "Prince Edward":
			ms[j] = matcher.Phrase{Name: term, Words: []string{"prince", "edward"},
				Head: "edward", FullScore: 1, HeadScore: 0.7}
		case "Alfred Hitchcock":
			ms[j] = matcher.Phrase{Name: term, Words: []string{"alfred", "hitchcock"},
				Head: "hitchcock", FullScore: 1, HeadScore: 0.7}
		case "Chavez":
			ms[j] = matcher.Phrase{Name: term, Words: []string{"hugo", "chavez"},
				Head: "chavez", FullScore: 1, HeadScore: 0.9}
		case "date":
			ms[j] = matcher.Date{}
		default:
			ms[j] = matcher.Lexical{Word: term, Graph: g}
		}
	}
	return ms
}

// TRECQueries returns the paper's seven queries with generation
// profiles from Figure 12's "match list sizes" column.
func TRECQueries() []TRECQuery {
	return []TRECQuery{
		{
			ID:       "Q1",
			Question: "Leaning Tower of Pisa began to be built in what year?",
			Terms:    []string{"Leaning Tower of Pisa", "began", "build", "year"},
			Profile:  []float64{2.9, 0.2, 8.3, 3.7},
			Pools: [][]string{
				{"pisa", "pisa", "leaning tower of pisa"},
				{"began", "begin", "commence"},
				{"build", "built", "construction", "constructed", "building", "erected"},
				{"year", "years", "century", "decade"},
			},
			Answer: []string{"construction", "of", "the", "leaning", "tower", "of", "pisa", "began", "in", "the", "year", "1173"},
		},
		{
			ID:       "Q2",
			Question: "What school and in what year did Hugo Chavez graduate from?",
			Terms:    []string{"Chavez", "graduate", "school", "year"},
			Profile:  []float64{6.7, 5.2, 4.3, 4.6},
			Pools: [][]string{
				{"chavez", "chavez", "hugo chavez"},
				{"graduate", "graduated", "degree", "diploma", "graduation"},
				{"school", "academy", "college", "university", "institute"},
				{"year", "years", "century", "decade"},
			},
			Answer: []string{"hugo", "chavez", "graduated", "military", "academy", "year", "1975"},
		},
		{
			ID:       "Q3",
			Question: "In what city is the Lebanese parliament located?",
			Terms:    []string{"Lebanese Parliament", "in", "city"},
			Profile:  []float64{0.1, 11.9, 4.1},
			Pools: [][]string{
				{"lebanese parliament"},
				{"in", "in", "within", "inside", "at"},
				{"city", "town", "capital", "metropolis"},
			},
			Answer: []string{"lebanese", "parliament", "in", "capital", "city", "beirut"},
		},
		{
			ID:       "Q4",
			Question: "In what country was Stonehenge built?",
			Terms:    []string{"country", "Stonehenge", "in"},
			Profile:  []float64{11.4, 0.04, 11.5},
			Pools: [][]string{
				{"country", "nation", "state", "land", "kingdom"},
				{"stonehenge"},
				{"in", "in", "within", "inside", "at"},
			},
			Answer: []string{"stonehenge", "built", "in", "country", "england"},
		},
		{
			ID:       "Q5",
			Question: "When did Prince Edward marry?",
			Terms:    []string{"Prince Edward", "marry", "date"},
			Profile:  []float64{3.4, 2.1, 18.2},
			Pools: [][]string{
				{"edward", "edward", "prince edward", "prince"},
				{"marry", "married", "wedding", "wed", "marriage"},
				{"january", "march", "june", "september", "1995", "1998", "2001", "2004", "2006"},
			},
			Answer: []string{"prince", "edward", "married", "june", "1999"},
		},
		{
			ID:       "Q6",
			Question: "Where was Alfred Hitchcock born?",
			Terms:    []string{"Alfred Hitchcock", "born", "city"},
			Profile:  []float64{3.6, 0.1, 8.4},
			Pools: [][]string{
				{"hitchcock", "hitchcock", "alfred hitchcock"},
				{"born"},
				{"city", "town", "capital", "metropolis", "municipality"},
			},
			Answer: []string{"alfred", "hitchcock", "born", "city", "london"},
		},
		{
			ID:       "Q7",
			Question: "Where is the IMF headquartered?",
			Terms:    []string{"IMF", "headquarters", "city"},
			Profile:  []float64{7.5, 1.0, 2.4},
			Pools: [][]string{
				{"imf", "imf", "fund"},
				{"headquarters", "headquartered", "based"},
				{"city", "town", "capital"},
			},
			Answer: []string{"imf", "headquarters", "city", "washington"},
		},
	}
}

// TRECDataset is a simulated TREC topic: the query plus its documents,
// one of which (AnswerDoc) carries the planted answer sentence.
type TRECDataset struct {
	Query     TRECQuery
	Docs      []Doc
	AnswerDoc int
}

// GenerateTREC synthesizes docs documents for one query. Documents
// average 450–500 words, like the paper's collection. Exactly one
// document receives the planted answer sentence; every document
// receives distractor matches per the query's profile.
func GenerateTREC(q TRECQuery, docs int, seed int64) *TRECDataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &TRECDataset{Query: q, Docs: make([]Doc, docs), AnswerDoc: rng.Intn(docs)}
	for i := range ds.Docs {
		ds.Docs[i] = generateTRECDoc(rng, q, i, i == ds.AnswerDoc)
	}
	return ds
}

func generateTRECDoc(rng *rand.Rand, q TRECQuery, id int, withAnswer bool) Doc {
	words := 450 + rng.Intn(51)
	b := newBuilder(rng, words)
	doc := Doc{ID: id, AnswerStart: -1, AnswerEnd: -1}
	avoidLo, avoidHi := -1, -1
	if withAnswer {
		start := 20 + rng.Intn(words-20-2*len(q.Answer))
		end := b.plantAt(start, expandPhrases(q.Answer)...)
		doc.AnswerStart, doc.AnswerEnd = start, end-1
		avoidLo, avoidHi = start, end-1
	}
	for j, pool := range q.Pools {
		n := poissonish(rng, q.Profile[j])
		for k := 0; k < n; k++ {
			entry := pool[rng.Intn(len(pool))]
			phrase := expandPhrases([]string{entry})
			pos := rng.Intn(words - len(phrase))
			if pos >= avoidLo-len(phrase) && pos <= avoidHi {
				continue // keep the answer window pristine
			}
			b.plantAt(pos, phrase...)
		}
	}
	doc.Text = b.text()
	return doc
}

// expandPhrases splits multi-word pool entries ("hugo chavez") into
// their tokens.
func expandPhrases(entries []string) []string {
	var out []string
	for _, e := range entries {
		for _, w := range splitSpace(e) {
			out = append(out, w)
		}
	}
	return out
}

func splitSpace(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}
