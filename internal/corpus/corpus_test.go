package corpus

import (
	"testing"

	"bestjoin/internal/gazetteer"
	"bestjoin/internal/lexicon"
	"bestjoin/internal/matcher"
	"bestjoin/internal/text"
)

func TestFillerMatchesNothing(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	toks := make([]text.Token, len(filler))
	for i, w := range filler {
		toks[i] = text.Token{Word: w, Pos: i}
	}
	for _, q := range TRECQueries() {
		for j, m := range q.Matchers(g, gz) {
			if got := m.Match(toks); len(got) != 0 {
				t.Errorf("%s term %d (%s): filler produced matches %v", q.ID, j, q.Terms[j], got)
			}
		}
	}
	for j, m := range DBWorldQuery(g, gz) {
		if got := m.Match(toks); len(got) != 0 {
			t.Errorf("dbworld term %d: filler produced matches %v", j, got)
		}
	}
}

func TestTRECGenerationShape(t *testing.T) {
	for _, q := range TRECQueries() {
		ds := GenerateTREC(q, 40, 7)
		if len(ds.Docs) != 40 {
			t.Fatalf("%s: %d docs", q.ID, len(ds.Docs))
		}
		if ds.AnswerDoc < 0 || ds.AnswerDoc >= 40 {
			t.Fatalf("%s: AnswerDoc %d out of range", q.ID, ds.AnswerDoc)
		}
		for i, d := range ds.Docs {
			n := len(text.Tokenize(d.Text))
			if n < 440 || n > 520 {
				t.Errorf("%s doc %d has %d tokens, want ~450-500", q.ID, i, n)
			}
			hasAnswer := d.AnswerStart >= 0
			if hasAnswer != (i == ds.AnswerDoc) {
				t.Errorf("%s doc %d answer flag wrong", q.ID, i)
			}
		}
	}
}

func TestTRECAnswerDocHasFullTightMatchset(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	for _, q := range TRECQueries() {
		ds := GenerateTREC(q, 20, 11)
		doc := ds.Docs[ds.AnswerDoc]
		toks := text.Tokenize(doc.Text)
		lists := matcher.Compile(toks, q.Matchers(g, gz))
		for j, l := range lists {
			found := false
			for _, m := range l {
				if m.Loc >= doc.AnswerStart && m.Loc <= doc.AnswerEnd {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: term %d (%s) has no match inside the answer window [%d,%d]",
					q.ID, j, q.Terms[j], doc.AnswerStart, doc.AnswerEnd)
			}
		}
	}
}

func TestTRECListSizesApproximateProfile(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	for _, q := range TRECQueries() {
		ds := GenerateTREC(q, 150, 13)
		ms := q.Matchers(g, gz)
		sums := make([]float64, len(ms))
		for _, d := range ds.Docs {
			toks := text.Tokenize(d.Text)
			for j, l := range matcher.Compile(toks, ms) {
				sums[j] += float64(len(l))
			}
		}
		for j := range sums {
			avg := sums[j] / float64(len(ds.Docs))
			target := q.Profile[j]
			// Within a factor of 2 of the paper-reported average (or
			// ±0.5 absolute for the very rare terms).
			if avg > 2*target+0.5 || avg < target/2-0.5 {
				t.Errorf("%s term %d (%s): avg list size %.2f vs paper %.2f",
					q.ID, j, q.Terms[j], avg, target)
			}
		}
	}
}

func TestDBWorldShape(t *testing.T) {
	msgs := GenerateDBWorld(25, 7, 3)
	if len(msgs) != 25 {
		t.Fatalf("%d messages", len(msgs))
	}
	ext := 0
	for _, m := range msgs {
		if m.Extension {
			ext++
		}
		toks := text.Tokenize(m.Text)
		if len(toks) < 100 {
			t.Errorf("message %d suspiciously short: %d tokens", m.ID, len(toks))
		}
		// Ground-truth positions must hold the advertised tokens.
		if toks[m.MeetingPlacePos].Word == "" {
			t.Errorf("message %d: empty place token", m.ID)
		}
		monthTok := toks[m.MeetingDatePos].Word
		if !isMonth(monthTok) {
			t.Errorf("message %d: MeetingDatePos token %q is not a month", m.ID, monthTok)
		}
	}
	if ext != 7 {
		t.Errorf("%d extension messages, want 7", ext)
	}
}

func isMonth(w string) bool {
	for _, m := range cfpMonths {
		if w == m {
			return true
		}
	}
	return false
}

func TestDBWorldListSizesApproximatePaper(t *testing.T) {
	g := lexicon.Builtin()
	gz := gazetteer.Builtin()
	msgs := GenerateDBWorld(25, 7, 5)
	ms := DBWorldQuery(g, gz)
	sums := make([]float64, len(ms))
	for _, m := range msgs {
		toks := text.Tokenize(m.Text)
		for j, l := range matcher.Compile(toks, ms) {
			sums[j] += float64(len(l))
		}
	}
	// Paper-reported averages: 13.2, 12.7, 73.5.
	targets := []float64{13.2, 12.7, 73.5}
	for j, target := range targets {
		avg := sums[j] / float64(len(msgs))
		if avg > 1.8*target || avg < target/1.8 {
			t.Errorf("dbworld term %d: avg list size %.1f vs paper %.1f", j, avg, target)
		}
	}
}

func TestDBWorldFirstDateHeuristicFailsOnExtensions(t *testing.T) {
	// The paper's footnote 12: taking the first date in a message
	// fails on deadline-extension announcements. Verify our simulated
	// extensions reproduce that: the first date token is NOT the
	// meeting date.
	msgs := GenerateDBWorld(25, 7, 9)
	for _, m := range msgs {
		toks := text.Tokenize(m.Text)
		first := -1
		for _, tok := range toks {
			if isMonth(tok.Word) {
				first = tok.Pos
				break
			}
		}
		if first < 0 {
			t.Fatalf("message %d has no month token", m.ID)
		}
		if m.Extension && first == m.MeetingDatePos {
			t.Errorf("extension message %d: first date IS the meeting date", m.ID)
		}
		if !m.Extension && first != m.MeetingDatePos {
			t.Errorf("normal message %d: first month %d != meeting date %d", m.ID, first, m.MeetingDatePos)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateTREC(TRECQueries()[0], 5, 42)
	b := GenerateTREC(TRECQueries()[0], 5, 42)
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text {
			t.Fatal("TREC generation not deterministic")
		}
	}
	ca := GenerateDBWorld(5, 2, 42)
	cb := GenerateDBWorld(5, 2, 42)
	for i := range ca {
		if ca[i].Text != cb[i].Text {
			t.Fatal("DBWorld generation not deterministic")
		}
	}
}
