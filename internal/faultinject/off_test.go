//go:build !faultinject

package faultinject

import (
	"testing"
	"time"
)

// The default build must be inert: even a fully armed plan fires
// nothing, so no production code path can be faulted by accident.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled is true without the faultinject build tag")
	}
	Activate(Config{
		Seed:    1,
		Rates:   map[Site]float64{KernelJoin: 1, ConceptDecode: 1, ListCacheMiss: 1},
		Latency: time.Hour,
	})
	defer Deactivate()
	for s := Site(0); s < numSites; s++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("site %v panicked in disabled build: %v", s, r)
				}
			}()
			MaybePanic(s)
		}()
		MaybeSleep(s) // must return immediately, not sleep an hour
		if ForceMiss(s) {
			t.Fatalf("site %v forced a miss in disabled build", s)
		}
		if Fires(s) {
			t.Fatalf("site %v fires in disabled build", s)
		}
		if Fired(s) != 0 {
			t.Fatalf("site %v reports firings in disabled build", s)
		}
	}
}
