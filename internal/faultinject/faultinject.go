// Package faultinject provides deterministic, seedable fault-injection
// points for the retrieval engine's chaos tests. Each injection site
// names one place where production systems really fail — a
// user-supplied scoring kernel panicking, an index block decoding to
// garbage, a slow disk, a cache eviction storm — and the engine calls
// the matching hook (MaybePanic, MaybeSleep, ForceMiss) at that spot.
//
// The hooks are compiled in two shapes, selected by the `faultinject`
// build tag:
//
//   - Default builds (off.go): every hook is an empty function the
//     compiler inlines away, so production binaries carry zero
//     injection overhead and no way to trigger faults.
//   - Test builds with -tags faultinject (on.go): hooks consult the
//     plan installed by Activate. Firing is pseudo-random but fully
//     determined by (seed, site, per-site call ordinal), so a failing
//     chaos run replays with the same seed.
//
// The chaos differential harness (internal/engine/chaos_test.go, run
// by `make chaos`) activates these sites and asserts the engine never
// crashes, stays race-clean, returns bitwise-identical results when
// not degraded, and returns a sound subset when degraded.
package faultinject

import "time"

// Site identifies one injection point in the engine.
type Site uint8

const (
	// KernelJoin fires just before a worker runs a best-join kernel;
	// a firing panics, simulating a hostile user-supplied scorefn.
	KernelJoin Site = iota
	// ConceptDecode fires at the start of a corpus-wide concept
	// decode; a firing panics the way index.Compact.Postings does on
	// corrupt posting bytes.
	ConceptDecode
	// DecodeLatency fires at the same spot but sleeps instead of
	// panicking, simulating a slow or contended storage layer.
	DecodeLatency
	// ListCacheMiss forces a (document, concept) match-list cache hit
	// to be treated as a miss — an eviction storm.
	ListCacheMiss
	// ConceptCacheMiss forces a concept-cache hit to be treated as a
	// miss.
	ConceptCacheMiss
	// NetLatency fires in the remote shard server just before a query
	// is handled; a firing sleeps, simulating a congested network or a
	// GC-paused shard process.
	NetLatency
	// NetDrop fires at the same spot but aborts the connection without
	// writing a response — the TCP reset / mid-flight crash case.
	NetDrop
	// NetStatus fires before handling and answers HTTP 500 instead —
	// a crashing handler or a misconfigured proxy in front of a shard.
	NetStatus
	// NetCorrupt fires after a response is built and truncates its
	// bytes, simulating a torn write or a corrupting middlebox.
	NetCorrupt

	numSites
)

// String names the site for logs and test labels.
func (s Site) String() string {
	switch s {
	case KernelJoin:
		return "kernel-join-panic"
	case ConceptDecode:
		return "concept-decode-corrupt"
	case DecodeLatency:
		return "decode-latency"
	case ListCacheMiss:
		return "list-cache-miss"
	case ConceptCacheMiss:
		return "concept-cache-miss"
	case NetLatency:
		return "net-latency"
	case NetDrop:
		return "net-conn-drop"
	case NetStatus:
		return "net-http-500"
	case NetCorrupt:
		return "net-corrupt-bytes"
	}
	return "unknown-site"
}

// Config is one injection plan: a seed making every firing decision
// reproducible, a firing rate per site (0 = never, 1 = always), and
// the latency injected when DecodeLatency fires.
type Config struct {
	Seed    int64
	Rates   map[Site]float64
	Latency time.Duration
}

// Panic is the value injected panics carry, so recovery layers and
// tests can tell an injected fault from a genuine bug.
type Panic struct {
	Site Site
}

func (p Panic) String() string { return "faultinject: " + p.Site.String() }
