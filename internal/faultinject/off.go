//go:build !faultinject

package faultinject

// Default build: every hook is an inlinable no-op and Activate cannot
// arm anything, so release binaries pay nothing for the injection
// points compiled into the engine.

// Enabled reports whether this binary was built with fault injection
// compiled in (-tags faultinject).
const Enabled = false

// Activate is a no-op without the faultinject build tag.
func Activate(Config) {}

// Deactivate is a no-op without the faultinject build tag.
func Deactivate() {}

// Fired always reports zero without the faultinject build tag.
func Fired(Site) uint64 { return 0 }

// MaybePanic never panics without the faultinject build tag.
func MaybePanic(Site) {}

// MaybeSleep never sleeps without the faultinject build tag.
func MaybeSleep(Site) {}

// ForceMiss never forces a miss without the faultinject build tag.
func ForceMiss(Site) bool { return false }

// Fires never fires without the faultinject build tag.
func Fires(Site) bool { return false }
