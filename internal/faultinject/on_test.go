//go:build faultinject

package faultinject

import (
	"sync"
	"testing"
	"time"
)

// catches runs f and reports the recovered value, nil if none.
func catches(f func()) (r any) {
	defer func() { r = recover() }()
	f()
	return nil
}

func TestRateOneAlwaysFires(t *testing.T) {
	Activate(Config{Seed: 42, Rates: map[Site]float64{KernelJoin: 1}})
	defer Deactivate()
	for i := 0; i < 100; i++ {
		r := catches(func() { MaybePanic(KernelJoin) })
		p, ok := r.(Panic)
		if !ok || p.Site != KernelJoin {
			t.Fatalf("call %d: recovered %v, want Panic{KernelJoin}", i, r)
		}
	}
	if got := Fired(KernelJoin); got != 100 {
		t.Fatalf("Fired = %d, want 100", got)
	}
	// A site with no configured rate never fires.
	if r := catches(func() { MaybePanic(ConceptDecode) }); r != nil {
		t.Fatalf("unconfigured site fired: %v", r)
	}
}

// TestFiresMatchesPlan pins the bare decision hook the network sites
// use: rate 1 always fires and counts, an unconfigured site never does.
func TestFiresMatchesPlan(t *testing.T) {
	Activate(Config{Seed: 11, Rates: map[Site]float64{NetDrop: 1}})
	defer Deactivate()
	for i := 0; i < 50; i++ {
		if !Fires(NetDrop) {
			t.Fatalf("call %d: rate-1 site did not fire", i)
		}
		if Fires(NetStatus) {
			t.Fatalf("call %d: unconfigured site fired", i)
		}
	}
	if got := Fired(NetDrop); got != 50 {
		t.Fatalf("Fired = %d, want 50", got)
	}
}

func TestRateZeroNeverFires(t *testing.T) {
	Activate(Config{Seed: 42, Rates: map[Site]float64{ListCacheMiss: 0}})
	defer Deactivate()
	for i := 0; i < 1000; i++ {
		if ForceMiss(ListCacheMiss) {
			t.Fatal("rate-0 site fired")
		}
	}
}

// TestDeterministicUnderSeed pins the reproducibility contract: the
// same seed yields the same firing pattern by call ordinal; a
// different seed yields a different one.
func TestDeterministicUnderSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		Activate(Config{Seed: seed, Rates: map[Site]float64{ListCacheMiss: 0.3}})
		defer Deactivate()
		out := make([]bool, 500)
		for i := range out {
			out[i] = ForceMiss(ListCacheMiss)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 500-call patterns")
	}
}

// TestRateIsApproximatelyHonored draws many decisions and checks the
// empirical rate; the decision hash must not be wildly biased.
func TestRateIsApproximatelyHonored(t *testing.T) {
	Activate(Config{Seed: 1, Rates: map[Site]float64{ConceptCacheMiss: 0.25}})
	defer Deactivate()
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if ForceMiss(ConceptCacheMiss) {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("empirical rate %.3f, want ~0.25", rate)
	}
}

func TestMaybeSleepInjectsLatency(t *testing.T) {
	Activate(Config{Seed: 1, Rates: map[Site]float64{DecodeLatency: 1}, Latency: 20 * time.Millisecond})
	defer Deactivate()
	start := time.Now()
	MaybeSleep(DecodeLatency)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

// TestConcurrentDecisionsRaceClean hammers one site from many
// goroutines; the point is the -race run in `make chaos`.
func TestConcurrentDecisionsRaceClean(t *testing.T) {
	Activate(Config{Seed: 3, Rates: map[Site]float64{ListCacheMiss: 0.5}})
	defer Deactivate()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ForceMiss(ListCacheMiss)
				Fired(ListCacheMiss)
			}
		}()
	}
	wg.Wait()
	if Fired(ListCacheMiss) == 0 {
		t.Fatal("no firings under concurrency")
	}
	Deactivate()
	if ForceMiss(ListCacheMiss) {
		t.Fatal("fired after Deactivate")
	}
}
