package faultinject

import "testing"

func TestSiteNames(t *testing.T) {
	for s := Site(0); s < numSites; s++ {
		if s.String() == "unknown-site" {
			t.Fatalf("site %d has no name", s)
		}
	}
	if numSites.String() != "unknown-site" {
		t.Fatal("out-of-range site must be unknown")
	}
	if got := (Panic{Site: KernelJoin}).String(); got != "faultinject: kernel-join-panic" {
		t.Fatalf("Panic.String() = %q", got)
	}
}
