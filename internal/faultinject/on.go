//go:build faultinject

package faultinject

import (
	"sync/atomic"
	"time"
)

// faultinject build: hooks consult the active plan. A firing decision
// is a pure function of (seed, site, per-site call ordinal), so a run
// with a fixed seed fires the same faults at the same call counts —
// goroutine interleaving may reorder *which document* hits a fault,
// but the fault density and the replay under one seed are stable.

// Enabled reports whether this binary was built with fault injection
// compiled in (-tags faultinject).
const Enabled = true

type plan struct {
	seed    uint64
	rates   [numSites]float64
	latency time.Duration
	calls   [numSites]atomic.Uint64
	fired   [numSites]atomic.Uint64
}

var active atomic.Pointer[plan]

// Activate installs an injection plan; it replaces any previous plan
// and resets the per-site counters. Hooks fire only between Activate
// and Deactivate.
func Activate(cfg Config) {
	p := &plan{seed: uint64(cfg.Seed), latency: cfg.Latency}
	for s, r := range cfg.Rates {
		if s < numSites {
			p.rates[s] = r
		}
	}
	active.Store(p)
}

// Deactivate disarms every site.
func Deactivate() { active.Store(nil) }

// Fired reports how many times a site has fired under the current
// plan (0 when no plan is active).
func Fired(s Site) uint64 {
	if p := active.Load(); p != nil {
		return p.fired[s].Load()
	}
	return 0
}

// decide draws the site's next firing decision.
func decide(s Site) (*plan, bool) {
	p := active.Load()
	if p == nil || p.rates[s] <= 0 {
		return p, false
	}
	n := p.calls[s].Add(1)
	if p.rates[s] < 1 {
		h := mix(p.seed ^ uint64(s)<<56 ^ n)
		if float64(h>>11)/(1<<53) >= p.rates[s] {
			return p, false
		}
	}
	p.fired[s].Add(1)
	return p, true
}

// mix is the splitmix64 finalizer: a cheap, well-distributed hash of
// the decision coordinates.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MaybePanic panics with a Panic value when the site fires.
func MaybePanic(s Site) {
	if _, fire := decide(s); fire {
		panic(Panic{Site: s})
	}
}

// MaybeSleep sleeps the plan's latency when the site fires.
func MaybeSleep(s Site) {
	if p, fire := decide(s); fire && p.latency > 0 {
		time.Sleep(p.latency)
	}
}

// ForceMiss reports whether a cache hit at this site must be treated
// as a miss.
func ForceMiss(s Site) bool {
	_, fire := decide(s)
	return fire
}

// Fires draws the site's next firing decision and reports it — the
// general-purpose hook for sites whose fault the caller injects itself
// (dropping a connection, corrupting response bytes).
func Fires(s Site) bool {
	_, fire := decide(s)
	return fire
}
