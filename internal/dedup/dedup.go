// Package dedup implements the paper's generic duplicate-avoidance
// method (Section VI). A matchset is valid if it contains no duplicate
// matches — no single token (location) matched to two query terms at
// once. The method wraps any duplicate-unaware best-join algorithm:
// run it; if the best matchset is duplicate-free, done; otherwise, for
// every duplicated token, create one modified problem instance per way
// of assigning the token to exactly one of the terms it matched
// (removing it from the other lists), rerun the algorithm on each
// instance, and recurse on instances whose results still contain
// duplicates. The best duplicate-free matchset found wins.
//
// The worst case is exponential in the number of duplicates, but — as
// the paper's Figure 8 experiment shows — realistic inputs need few
// reruns; the invocation count is surfaced so that experiment can be
// reproduced.
//
// Two entry points cover the two calling shapes: the one-shot Best /
// BestWithOptions functions, and the reusable Deduper (plus the
// kernel wrapper Wrap in kernel.go), which keeps the memo table,
// group/drop scratch, and result buffer alive across calls for
// document-at-a-time workers.
package dedup

import (
	"fmt"
	"sort"
	"strings"

	"bestjoin/internal/match"
)

// Algorithm is any duplicate-unaware overall-best-matchset solver
// (join.WIN, join.MED, join.MAX curried with their scoring function).
type Algorithm func(match.Lists) (match.Set, float64, bool)

// Result is the outcome of a duplicate-avoiding best-join.
type Result struct {
	Set   match.Set
	Score float64
	OK    bool
	// Invocations counts how many times the duplicate-unaware
	// algorithm ran, the metric of the paper's Figure 8.
	Invocations int
}

// MaxInvocations caps the number of reruns as a safety valve against
// the method's exponential worst case; the paper observes 10–12 reruns
// even at an "unrealistically high" 60% duplicate frequency, so the
// cap is far above anything realistic inputs reach.
const MaxInvocations = 100000

// Best finds the best valid (duplicate-free) matchset by the paper's
// recursive instance-splitting method, with a sound bound: removing
// matches can only lower an instance's unconstrained optimum, so a
// subtree whose duplicate-unaware optimum does not exceed the best
// valid matchset found so far cannot contain a better valid matchset
// and is pruned. OK is false when no valid matchset exists (or the
// invocation cap was hit before one was found).
func Best(alg Algorithm, lists match.Lists) Result {
	return NewDeduper().Best(alg, lists)
}

// Options tunes the duplicate-avoidance search. Best uses both
// optimizations; turning them off recovers the paper's plain recursive
// method (useful for ablation measurements — the result is identical
// either way, only the invocation count and time differ).
type Options struct {
	// Prune skips subtrees whose duplicate-unaware optimum cannot beat
	// the best valid matchset found so far.
	Prune bool
	// Memoize skips instances (identified by their removal sets)
	// already explored via a different keeper-choice path.
	Memoize bool
}

// BestWithOptions is Best with explicit search options.
func BestWithOptions(alg Algorithm, lists match.Lists, opts Options) Result {
	d := &Deduper{Opts: opts}
	return d.Best(alg, lists)
}

// Deduper is a reusable duplicate-avoidance evaluator: it owns the
// visited-instance memo, the duplicate-group and drop-set scratch, and
// the best-matchset buffer, all reused across Best calls. On the
// common path — the duplicate-unaware optimum is already valid — a
// warmed Deduper allocates nothing.
//
// The Set in the returned Result aliases Deduper-owned memory and is
// valid only until the next Best call; callers that keep results must
// Clone them. A Deduper is not safe for concurrent use.
type Deduper struct {
	// Opts tunes the search. NewDeduper enables both optimizations
	// (the Best defaults); the zero value runs the paper's plain
	// recursive method.
	Opts Options

	alg         Algorithm
	invocations int
	best        match.Set
	bestScore   float64
	found       bool
	// visited memoizes explored instances by their removal set:
	// different keeper-choice paths frequently converge on the same
	// modified instance, which need not be solved twice.
	visited map[string]bool
	// byLoc and drop are the group/drop scratch of the splitting step,
	// cleared and refilled per use instead of reallocated.
	byLoc map[int][]int
	drop  map[dropKey]bool
}

// dropKey identifies one (term, location) pair removed when building a
// modified instance.
type dropKey struct {
	term, loc int
}

// NewDeduper returns a Deduper with the Best defaults (pruning and
// memoization enabled).
func NewDeduper() *Deduper {
	return &Deduper{Opts: Options{Prune: true, Memoize: true}}
}

// Best runs the duplicate-avoiding search over lists with alg as the
// duplicate-unaware solver. alg may return sets aliasing its own
// reused memory (a join.Kernel does): Best copies what it keeps.
func (d *Deduper) Best(alg Algorithm, lists match.Lists) Result {
	d.alg = alg
	d.invocations = 0
	d.found = false
	d.bestScore = 0
	if len(d.visited) > 0 {
		clear(d.visited)
	}
	d.solve(lists, nil)
	d.alg = nil
	res := Result{Score: d.bestScore, OK: d.found, Invocations: d.invocations}
	if d.found {
		res.Set = d.best
	} else {
		res.Score = 0
	}
	return res
}

// removal identifies one match deleted from the original instance.
type removal struct {
	term, loc int
}

func (d *Deduper) solve(lists match.Lists, removed []removal) {
	if d.Opts.Memoize && len(removed) > 0 {
		key := removalKey(removed)
		if d.visited == nil {
			d.visited = make(map[string]bool)
		}
		if d.visited[key] {
			return
		}
		d.visited[key] = true
	}
	if d.invocations >= MaxInvocations {
		return
	}
	d.invocations++
	set, score, ok := d.alg(lists)
	if !ok {
		return
	}
	// Bound: every matchset of this instance (and of every instance
	// derived from it by removing more matches) scores at most
	// `score`, so a subtree that cannot beat the best valid matchset
	// found so far is pruned. With pruning disabled we still keep only
	// strictly better duplicate-free results, just without skipping
	// subtree exploration.
	if d.Opts.Prune && d.found && score <= d.bestScore {
		return
	}
	// Hot path: a duplicate-free optimum needs no group machinery at
	// all — record it (copying out of alg's possibly reused buffer)
	// and return.
	if set.Valid() {
		if !d.found || score > d.bestScore {
			d.best = append(d.best[:0], set...)
			d.bestScore, d.found = score, true
		}
		return
	}
	// The returned best matchset uses some tokens for several terms.
	// For each such token, one of its terms keeps the token and the
	// token's matches are removed from the other terms' lists; the
	// instances enumerate every combination of keepers.
	groups := d.duplicateGroups(set)
	keepers := make([]int, len(groups))
	var walk func(g int)
	walk = func(g int) {
		if g == len(groups) {
			modified, added := d.removeDuplicates(lists, groups, keepers)
			d.solve(modified, append(removed[:len(removed):len(removed)], added...))
			return
		}
		for k := range groups[g].terms {
			keepers[g] = k
			walk(g + 1)
		}
	}
	walk(0)
}

// removalKey canonicalizes a removal set.
func removalKey(removed []removal) string {
	rs := append([]removal(nil), removed...)
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].term != rs[j].term {
			return rs[i].term < rs[j].term
		}
		return rs[i].loc < rs[j].loc
	})
	var b strings.Builder
	for _, x := range rs {
		fmt.Fprintf(&b, "%d:%d;", x.term, x.loc)
	}
	return b.String()
}

// Split materializes the Section VI modified instances for a matchset
// with duplicates: one instance per way of assigning each duplicated
// token to exactly one of the terms it matched (the other terms lose
// their matches at that location). It returns nil when the matchset is
// already valid. Callers that need the best-matchset-by-location
// variant of duplicate avoidance (the paper notes the problem "can be
// similarly modified") rerun their solver over each instance.
func Split(lists match.Lists, set match.Set) []match.Lists {
	var d Deduper
	groups := d.duplicateGroups(set)
	if len(groups) == 0 {
		return nil
	}
	var out []match.Lists
	keepers := make([]int, len(groups))
	var walk func(g int)
	walk = func(g int) {
		if g == len(groups) {
			modified, _ := d.removeDuplicates(lists, groups, keepers)
			out = append(out, modified)
			return
		}
		for k := range groups[g].terms {
			keepers[g] = k
			walk(g + 1)
		}
	}
	walk(0)
	return out
}

// group is one duplicated token: its location and the (sorted) terms
// whose matchset entries sit at that location.
type group struct {
	loc   int
	terms []int
}

// duplicateGroups returns the duplicated tokens of a matchset: one
// group per location shared by two or more entries. Within a group,
// terms are ordered by descending match score (ties by term index):
// keeping the token for its highest-scoring term tends to preserve the
// strongest valid matchsets, so exploring keepers in that order lets
// the search bound prune earlier. The by-location index map is reused
// across calls; the group and term slices themselves are fresh, since
// recursion keeps outer levels' groups alive.
func (d *Deduper) duplicateGroups(set match.Set) []group {
	if d.byLoc == nil {
		d.byLoc = make(map[int][]int)
	} else {
		clear(d.byLoc)
	}
	for j, m := range set {
		d.byLoc[m.Loc] = append(d.byLoc[m.Loc], j)
	}
	var out []group
	for loc, terms := range d.byLoc {
		if len(terms) > 1 {
			sort.Slice(terms, func(a, b int) bool {
				if set[terms[a]].Score != set[terms[b]].Score {
					return set[terms[a]].Score > set[terms[b]].Score
				}
				return terms[a] < terms[b]
			})
			out = append(out, group{loc: loc, terms: terms})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].loc < out[j].loc })
	return out
}

// removeDuplicates builds the modified instance in which, for each
// group g, only groups[g].terms[keepers[g]] retains its matches at the
// group's location; all other terms in the group lose theirs. It also
// returns the removals performed, for instance memoization. The drop
// set is reused across calls; the modified lists are fresh, since they
// live on in the recursion.
func (d *Deduper) removeDuplicates(lists match.Lists, groups []group, keepers []int) (match.Lists, []removal) {
	if d.drop == nil {
		d.drop = make(map[dropKey]bool)
	} else {
		clear(d.drop)
	}
	var removed []removal
	for g, grp := range groups {
		for k, term := range grp.terms {
			if k == keepers[g] {
				continue
			}
			d.drop[dropKey{term: term, loc: grp.loc}] = true
			removed = append(removed, removal{term: term, loc: grp.loc})
		}
	}
	out := make(match.Lists, len(lists))
	for j, l := range lists {
		drops := false
		for _, m := range l {
			if d.drop[dropKey{term: j, loc: m.Loc}] {
				drops = true
				break
			}
		}
		if !drops {
			out[j] = l
			continue
		}
		kept := make(match.List, 0, len(l))
		for _, m := range l {
			if !d.drop[dropKey{term: j, loc: m.Loc}] {
				kept = append(kept, m)
			}
		}
		out[j] = kept
	}
	return out, removed
}
