package dedup

import (
	"math"

	"bestjoin/internal/join"
	"bestjoin/internal/match"
)

// Kernel is a join.Kernel that layers duplicate avoidance over an
// inner kernel: Join runs the full Section VI search with the inner
// kernel as the duplicate-unaware solver and returns the best valid
// (duplicate-free) matchset. The Deduper's memo, scratch, and result
// buffer — and the inner kernel's own scratch — are reused across
// calls, so the wrapper keeps the inner kernel's allocation-free
// document-at-a-time behavior on the common path where the
// unconstrained optimum is already valid.
//
// The ownership contract matches the Kernel interface: the returned
// Set aliases wrapper-owned memory, valid until the next Reset or
// Join. Not safe for concurrent use.
type Kernel struct {
	inner join.Kernel
	lists match.Lists
	d     Deduper
	alg   Algorithm
	invs  int
}

// Wrap layers duplicate avoidance over inner, with the Best defaults
// (pruning and memoization enabled).
func Wrap(inner join.Kernel) *Kernel {
	k := &Kernel{inner: inner, d: Deduper{Opts: Options{Prune: true, Memoize: true}}}
	// One closure for the kernel's lifetime: each sub-instance of the
	// search reloads the inner kernel rather than rebuilding anything.
	k.alg = func(lists match.Lists) (match.Set, float64, bool) {
		k.inner.Reset(nil, lists)
		return k.inner.Join()
	}
	return k
}

// Reset records lists (the search's root instance) and passes fn and
// lists through to the inner kernel.
func (k *Kernel) Reset(fn any, lists match.Lists) {
	k.lists = lists
	k.inner.Reset(fn, lists)
}

// Join solves the loaded instance with duplicate avoidance. ok is
// false when no valid matchset exists (or the invocation cap was hit
// before one was found).
func (k *Kernel) Join() (match.Set, float64, bool) {
	res := k.d.Best(k.alg, k.lists)
	k.invs = res.Invocations
	return res.Set, res.Score, res.OK
}

// Invocations reports how many times the inner kernel ran during the
// last Join — the paper's Figure 8 metric.
func (k *Kernel) Invocations() int { return k.invs }

// ScoreUpperBound forwards to the inner kernel's bound when it has
// one. Valid (duplicate-free) matchsets are a subset of all matchsets,
// so the inner kernel's unrestricted cap stays sound for the wrapped
// join. An inner kernel without bound support yields +Inf, which the
// engine's floor comparison can never prune on.
func (k *Kernel) ScoreUpperBound(perListMax []float64) float64 {
	if ub, ok := k.inner.(join.UpperBounded); ok {
		return ub.ScoreUpperBound(perListMax)
	}
	return math.Inf(1)
}

// ScoreUnionUpperBound forwards the disjunctive (m-of-n) bound to the
// inner kernel by the same subset argument as ScoreUpperBound: the
// duplicate-avoidance constraint only shrinks the feasible matchset
// space, so the inner kernel's unrestricted union cap stays sound.
func (k *Kernel) ScoreUnionUpperBound(perListMax []float64, minMatch int) float64 {
	if ub, ok := k.inner.(join.UnionBounded); ok {
		return ub.ScoreUnionUpperBound(perListMax, minMatch)
	}
	return math.Inf(1)
}
