package dedup

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

const tol = 1e-9

func winAlg(fn scorefn.WIN) Algorithm {
	return func(ls match.Lists) (match.Set, float64, bool) { return join.WIN(fn, ls) }
}

func medAlg(fn scorefn.MED) Algorithm {
	return func(ls match.Lists) (match.Set, float64, bool) { return join.MED(fn, ls) }
}

func maxAlg(fn scorefn.EfficientMAX) Algorithm {
	return func(ls match.Lists) (match.Set, float64, bool) { return join.MAX(fn, ls) }
}

func TestChinaExample(t *testing.T) {
	// Section VI's motivating example, in numbers: a single token
	// ("china" at location 10) matches both terms well, while a
	// separate pair ("ceramics"/"Jingdezhen" at 20 and 22) matches the
	// terms individually. The duplicate-unaware algorithm picks the
	// china/china matchset (zero window); the wrapper must return the
	// valid pair.
	lists := match.Lists{
		{{Loc: 10, Score: 0.9}, {Loc: 22, Score: 0.6}}, // "asia": china, Jingdezhen
		{{Loc: 10, Score: 0.9}, {Loc: 20, Score: 0.8}}, // "porcelain": china, ceramics
	}
	fn := scorefn.ExpWIN{Alpha: 0.2}
	raw, _, ok := join.WIN(fn, lists)
	if !ok || raw.Valid() {
		t.Fatalf("setup: duplicate-unaware best should be the invalid china/china set, got %v", raw)
	}
	res := Best(winAlg(fn), lists)
	if !res.OK {
		t.Fatal("wrapper found no valid matchset")
	}
	if !res.Set.Valid() {
		t.Fatalf("wrapper returned invalid set %v", res.Set)
	}
	if res.Set[0].Loc != 22 || res.Set[1].Loc != 20 {
		t.Errorf("wrapper picked %v, want the Jingdezhen/ceramics pair", res.Set)
	}
	if res.Invocations < 2 {
		t.Errorf("Invocations = %d, want at least 2 (initial run plus reruns)", res.Invocations)
	}
}

func TestNoDuplicatesSingleInvocation(t *testing.T) {
	lists := match.Lists{
		{{Loc: 1, Score: 0.5}},
		{{Loc: 5, Score: 0.5}},
	}
	res := Best(winAlg(scorefn.ExpWIN{Alpha: 0.1}), lists)
	if !res.OK || res.Invocations != 1 {
		t.Errorf("duplicate-free input: OK=%v Invocations=%d, want single run", res.OK, res.Invocations)
	}
}

func TestNoValidMatchsetExists(t *testing.T) {
	// Both terms have only the same single token: no valid matchset.
	lists := match.Lists{
		{{Loc: 3, Score: 0.9}},
		{{Loc: 3, Score: 0.9}},
	}
	res := Best(winAlg(scorefn.ExpWIN{Alpha: 0.1}), lists)
	if res.OK {
		t.Errorf("expected no valid matchset, got %v", res.Set)
	}
}

func TestEmptyListPropagates(t *testing.T) {
	lists := match.Lists{{{Loc: 1, Score: 1}}, {}}
	res := Best(winAlg(scorefn.ExpWIN{Alpha: 0.1}), lists)
	if res.OK {
		t.Error("wrapper ok with an empty list")
	}
	if res.Invocations != 1 {
		t.Errorf("Invocations = %d, want 1", res.Invocations)
	}
}

// checkAgainstExhaustive verifies, over random duplicate-heavy
// instances, that the wrapper's result score equals the best over all
// valid matchsets.
func checkAgainstExhaustive(t *testing.T, name string, alg Algorithm, scoreOf func(match.Set) float64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 400; trial++ {
		lists := randinst.Lists(rng, randinst.Config{
			Terms: 2 + rng.Intn(3), MaxPerList: 4, MaxLoc: 8, AllowTies: true,
		})
		res := Best(alg, lists)
		want, wantScore, wantOK := naive.BestValid(lists, scoreOf)
		if res.OK != wantOK {
			t.Fatalf("%s: OK=%v, exhaustive OK=%v on %v", name, res.OK, wantOK, lists)
		}
		if !res.OK {
			continue
		}
		if !res.Set.Valid() {
			t.Fatalf("%s: returned invalid set %v", name, res.Set)
		}
		if math.Abs(res.Score-wantScore) > tol {
			t.Fatalf("%s: score %v != exhaustive valid optimum %v\ngot %v\nwant %v\nlists %v",
				name, res.Score, wantScore, res.Set, want, lists)
		}
	}
}

func TestWrapperMatchesExhaustiveWIN(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	checkAgainstExhaustive(t, "WIN", winAlg(fn),
		func(s match.Set) float64 { return scorefn.ScoreWIN(fn, s) }, 1001)
}

func TestWrapperMatchesExhaustiveMED(t *testing.T) {
	fn := scorefn.ExpMED{Alpha: 0.1}
	checkAgainstExhaustive(t, "MED", medAlg(fn),
		func(s match.Set) float64 { return scorefn.ScoreMED(fn, s) }, 1002)
}

func TestWrapperMatchesExhaustiveMAX(t *testing.T) {
	fn := scorefn.SumMAX{Alpha: 0.1}
	checkAgainstExhaustive(t, "MAX", maxAlg(fn),
		func(s match.Set) float64 { v, _ := scorefn.ScoreMAX(fn, s); return v }, 1003)
}

func TestAdversarialAlgorithmStillTerminates(t *testing.T) {
	// An algorithm that keeps reporting (fabricated) duplicated
	// matchsets for its first 50 calls forces deep recursion; the
	// wrapper must keep rerunning, never exceed the invocation cap,
	// and surface the valid matchset once the algorithm produces one.
	calls := 0
	adversary := func(ls match.Lists) (match.Set, float64, bool) {
		calls++
		if calls <= 50 {
			// A fresh duplicated location every call defeats both the
			// memo and the pruning bound (scores keep increasing).
			return match.Set{{Loc: calls, Score: 1}, {Loc: calls, Score: 1}}, float64(100 + calls), true
		}
		return match.Set{{Loc: 1, Score: 1}, {Loc: 2, Score: 1}}, 1, true
	}
	lists := match.Lists{
		{{Loc: 0, Score: 1}, {Loc: 1, Score: 1}},
		{{Loc: 0, Score: 1}, {Loc: 2, Score: 1}},
	}
	res := Best(adversary, lists)
	if !res.OK || !res.Set.Valid() {
		t.Fatalf("wrapper did not surface the valid matchset: %+v", res)
	}
	if res.Invocations <= 50 || res.Invocations > MaxInvocations {
		t.Errorf("Invocations = %d, want >50 and within cap", res.Invocations)
	}
}

func TestBestWithOptionsAllConfigsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	fn := scorefn.ExpMED{Alpha: 0.1}
	alg := medAlg(fn)
	opts := []Options{
		{},
		{Prune: true},
		{Memoize: true},
		{Prune: true, Memoize: true},
	}
	for trial := 0; trial < 150; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 3, MaxLoc: 7, AllowTies: true})
		base := BestWithOptions(alg, lists, opts[0])
		for _, o := range opts[1:] {
			r := BestWithOptions(alg, lists, o)
			if r.OK != base.OK {
				t.Fatalf("opts %+v: OK=%v, plain OK=%v on %v", o, r.OK, base.OK, lists)
			}
			if r.OK && math.Abs(r.Score-base.Score) > tol {
				t.Fatalf("opts %+v: score %v != plain %v on %v", o, r.Score, base.Score, lists)
			}
			if r.Invocations > base.Invocations {
				t.Errorf("opts %+v: %d invocations exceed plain's %d", o, r.Invocations, base.Invocations)
			}
		}
	}
}
