// Package randinst generates random weighted-proximity-join problem
// instances. It exists for the property tests that compare the fast
// algorithms against the naive cross-product baselines on thousands of
// random instances, and for micro-benchmarks that need inputs with a
// controlled shape.
package randinst

import (
	"math/rand"

	"bestjoin/internal/match"
)

// Config controls the shape of generated instances.
type Config struct {
	Terms      int  // number of query terms (match lists)
	MaxPerList int  // each list gets 1..MaxPerList matches
	MaxLoc     int  // locations drawn from [0, MaxLoc)
	AllowEmpty bool // if set, a list may be empty
	AllowTies  bool // if set, distinct matches may share a location
}

// Lists generates one random instance. Scores are uniform over (0,1],
// the regime of the paper's experiments. Lists come back sorted by
// location. When AllowTies is false all locations across all lists are
// distinct, which removes median/anchor tie ambiguity; tie-specific
// behaviour is tested separately with AllowTies set.
func Lists(rng *rand.Rand, cfg Config) match.Lists {
	lists := make(match.Lists, cfg.Terms)
	used := make(map[int]bool)
	for j := range lists {
		n := 1 + rng.Intn(cfg.MaxPerList)
		if cfg.AllowEmpty && rng.Intn(8) == 0 {
			n = 0
		}
		l := make(match.List, 0, n)
		for len(l) < n {
			loc := rng.Intn(cfg.MaxLoc)
			if !cfg.AllowTies {
				if used[loc] {
					// When the range is too tight for the demanded
					// number of distinct locations, overflow past
					// MaxLoc instead of rejection-sampling forever.
					if len(used) >= cfg.MaxLoc {
						loc = cfg.MaxLoc + len(used)
					} else {
						continue
					}
				}
				used[loc] = true
			}
			l = append(l, match.Match{Loc: loc, Score: 1 - rng.Float64()})
		}
		l.Sort()
		lists[j] = l
	}
	return lists
}
