package randinst

import (
	"math/rand"
	"testing"
)

func TestListsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ls := Lists(rng, Config{Terms: 4, MaxPerList: 5, MaxLoc: 100})
		if len(ls) != 4 {
			t.Fatalf("got %d lists", len(ls))
		}
		if err := ls.Validate(); err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, l := range ls {
			if len(l) == 0 || len(l) > 5 {
				t.Fatalf("list size %d outside [1,5]", len(l))
			}
			for _, m := range l {
				if m.Loc < 0 || m.Loc >= 100 {
					t.Fatalf("loc %d out of range", m.Loc)
				}
				if m.Score <= 0 || m.Score > 1 {
					t.Fatalf("score %v outside (0,1]", m.Score)
				}
				if seen[m.Loc] {
					t.Fatalf("duplicate location %d without AllowTies", m.Loc)
				}
				seen[m.Loc] = true
			}
		}
	}
}

func TestAllowEmptyProducesEmptyLists(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	empties := 0
	for trial := 0; trial < 200; trial++ {
		for _, l := range Lists(rng, Config{Terms: 3, MaxPerList: 3, MaxLoc: 50, AllowEmpty: true}) {
			if len(l) == 0 {
				empties++
			}
		}
	}
	if empties == 0 {
		t.Error("AllowEmpty never produced an empty list over 600 draws")
	}
}

func TestAllowTiesProducesTies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ties := 0
	for trial := 0; trial < 100; trial++ {
		ls := Lists(rng, Config{Terms: 3, MaxPerList: 5, MaxLoc: 6, AllowTies: true})
		seen := map[int]int{}
		for _, l := range ls {
			for _, m := range l {
				seen[m.Loc]++
			}
		}
		for _, n := range seen {
			if n > 1 {
				ties++
			}
		}
	}
	if ties == 0 {
		t.Error("AllowTies with a tiny location range never produced a tie")
	}
}
