// Package text provides the document-processing substrate for the
// paper's TREC and DBWorld experiments: a tokenizer that turns raw
// text into located tokens, and a from-scratch implementation of
// Porter's stemming algorithm, which the paper uses for all string
// comparisons ("we use the stem of a word as returned by a standard
// Porter's stemmer").
package text

import (
	"strings"
	"unicode"
)

// Token is one word occurrence in a document: its normalized surface
// form (lower-cased), and its position counted in tokens from the
// start of the document — the location unit of the join algorithms.
type Token struct {
	Word string
	Pos  int
}

// Tokenize splits a document into lower-cased word tokens. A token is
// a maximal run of letters or digits; everything else separates
// tokens. Token positions are sequential, so proximity in positions
// corresponds to proximity in the text.
func Tokenize(doc string) []Token {
	var out []Token
	var b strings.Builder
	pos := 0
	flush := func() {
		if b.Len() > 0 {
			out = append(out, Token{Word: b.String(), Pos: pos})
			pos++
			b.Reset()
		}
	}
	for _, r := range doc {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		flush()
	}
	flush()
	return out
}

// Words returns just the normalized words of a document, in order.
func Words(doc string) []string {
	toks := Tokenize(doc)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Word
	}
	return out
}
