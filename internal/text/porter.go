package text

// Porter's stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980), implemented from the original
// description. Stem reduces an English word to its stem, e.g.
// "caresses" → "caress", "ponies" → "poni", "relational" → "relat".
//
// The implementation operates on ASCII words (lower-casing them
// first); words shorter than three letters are returned unchanged, as
// the original algorithm prescribes.

// Stem returns the Porter stem of a word. ASCII letters are
// lower-cased first, so "Stonehenge" and "stonehenge" share a stem;
// words containing non-ASCII bytes are returned unchanged (Porter's
// algorithm is defined for English).
func Stem(word string) string {
	w := []byte(word)
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c >= 0x80 {
			return word
		}
		if 'A' <= c && c <= 'Z' {
			w[i] = c + 'a' - 'A'
		}
	}
	if len(w) <= 2 {
		return string(w)
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// letters other than a,e,i,o,u; y is a consonant when it follows a
// vowel position start or follows a consonant.
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel-consonant) sequences in
// w[0:end]: [C](VC)^m[V].
func measure(w []byte, end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && isConsonant(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < end && !isConsonant(w, i) {
			i++
		}
		if i >= end {
			return m
		}
		// Skip consonants: one full VC block.
		for i < end && isConsonant(w, i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether w[0:end] contains a vowel.
func hasVowel(w []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w[0:end] ends with a double
// consonant (same letter twice).
func endsDoubleConsonant(w []byte, end int) bool {
	if end < 2 {
		return false
	}
	return w[end-1] == w[end-2] && isConsonant(w, end-1)
}

// endsCVC reports whether w[0:end] ends consonant-vowel-consonant
// where the final consonant is not w, x or y — Porter's *o condition.
func endsCVC(w []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isConsonant(w, end-3) || isConsonant(w, end-2) || !isConsonant(w, end-1) {
		return false
	}
	switch w[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the stem before s has
// measure > minM; returns the (possibly new) word and whether the
// suffix matched (regardless of the measure test).
func replaceSuffix(w []byte, s, r string, minM int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stemEnd := len(w) - len(s)
	if measure(w, stemEnd) > minM {
		return append(w[:stemEnd], r...), true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2] // sses -> ss
	case hasSuffix(w, "ies"):
		return w[:len(w)-2] // ies -> i
	case hasSuffix(w, "ss"):
		return w // ss -> ss
	case hasSuffix(w, "s"):
		return w[:len(w)-1] // s -> (nothing)
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1] // eed -> ee
		}
		return w
	}
	applied := false
	if hasSuffix(w, "ed") && hasVowel(w, len(w)-2) {
		w = w[:len(w)-2]
		applied = true
	} else if hasSuffix(w, "ing") && hasVowel(w, len(w)-3) {
		w = w[:len(w)-3]
		applied = true
	}
	if !applied {
		return w
	}
	// Cleanup after removing ed/ing.
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w, len(w)):
		last := w[len(w)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return w[:len(w)-1]
		}
		return w
	case measure(w, len(w)) == 1 && endsCVC(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

func step2(w []byte) []byte {
	pairs := []struct{ s, r string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
		{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
		{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
		{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
		{"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, p := range pairs {
		if w2, matched := replaceSuffix(w, p.s, p.r, 0); matched {
			return w2
		}
	}
	return w
}

func step3(w []byte) []byte {
	pairs := []struct{ s, r string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, p := range pairs {
		if w2, matched := replaceSuffix(w, p.s, p.r, 0); matched {
			return w2
		}
	}
	return w
}

func step4(w []byte) []byte {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, s := range suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stemEnd := len(w) - len(s)
		if s == "ion" {
			// (m>1 and (*S or *T)) ION ->
			if measure(w, stemEnd) > 1 && stemEnd > 0 && (w[stemEnd-1] == 's' || w[stemEnd-1] == 't') {
				return w[:stemEnd]
			}
			return w
		}
		if measure(w, stemEnd) > 1 {
			return w[:stemEnd]
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stemEnd := len(w) - 1
	m := measure(w, stemEnd)
	if m > 1 || (m == 1 && !endsCVC(w, stemEnd)) {
		return w[:stemEnd]
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w, len(w)) > 1 && endsDoubleConsonant(w, len(w)) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
