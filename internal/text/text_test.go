package text

import (
	"testing"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("Lenovo, the PC-maker; partners with   NBA in 2008!")
	want := []string{"lenovo", "the", "pc", "maker", "partners", "with", "nba", "in", "2008"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, w := range want {
		if toks[i].Word != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Word, w)
		}
		if toks[i].Pos != i {
			t.Errorf("token %d pos = %d", i, toks[i].Pos)
		}
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("... --- !!!"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestWords(t *testing.T) {
	got := Words("A b, C")
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Words = %v, want %v", got, want)
		}
	}
}

// The examples below are from Porter's original paper and the standard
// reference vocabulary.
func TestStemKnownExamples(t *testing.T) {
	cases := map[string]string{
		// Step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c
		"happy": "happi",
		"sky":   "sky",
		// Step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// End-to-end favourites
		"generalizations": "gener",
		"oscillators":     "oscil",
		"partnership":     "partnership",
		"partners":        "partner",
		"graduated":       "graduat",
		"building":        "build",
		"built":           "built",
		"marrying":        "marri",
		"married":         "marri",
		"conferences":     "confer",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should be stable for typical vocabulary (not a
	// guarantee of the algorithm in general, but it holds for these).
	words := []string{"run", "jump", "partner", "confer", "marri", "build"}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not stable on %q: %q then %q", w, once, twice)
		}
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for w, want := range cases {
		if got := measure([]byte(w), len(w)); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}
