package text

import (
	"testing"
	"unicode"
)

// FuzzStem ensures the stemmer never panics, never lengthens a word,
// and is deterministic.
func FuzzStem(f *testing.F) {
	for _, w := range []string{"", "a", "running", "caresses", "Stonehenge", "ponies", "ééé", "日本語", "x1y2"} {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word string) {
		s1 := Stem(word)
		s2 := Stem(word)
		if s1 != s2 {
			t.Fatalf("Stem(%q) nondeterministic: %q vs %q", word, s1, s2)
		}
		if len(s1) > len(word) {
			t.Fatalf("Stem(%q) = %q grew the word", word, s1)
		}
	})
}

// FuzzTokenize ensures tokenization never panics and only emits
// non-empty lower-case alphanumeric tokens with increasing positions.
func FuzzTokenize(f *testing.F) {
	f.Add("hello, world! 42")
	f.Add("")
	f.Add("...!!!")
	f.Add("ALL CAPS and MiXeD 日本語 text")
	f.Fuzz(func(t *testing.T, doc string) {
		toks := Tokenize(doc)
		for i, tok := range toks {
			if tok.Word == "" {
				t.Fatal("empty token")
			}
			if tok.Pos != i {
				t.Fatalf("token %d has position %d", i, tok.Pos)
			}
			for _, r := range tok.Word {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok.Word, r)
				}
				// Lower-cased means a fixed point of ToLower (some
				// uppercase letters have no lowercase form and map to
				// themselves).
				if r != unicode.ToLower(r) {
					t.Fatalf("token %q not lower-cased", tok.Word)
				}
			}
		}
	})
}
