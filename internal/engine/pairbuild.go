package engine

import (
	"fmt"
	"sort"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// BuildPairIndex selects and registers auxiliary pair lists for a
// kernel spec, under a storage budget. Candidate pairs are every
// unordered two-concept combination of concepts; each is costed by
// the product of its concepts' compressed posting bytes — the classic
// frequency × length model: the pairs whose posting products are
// largest are exactly the common-word queries the kernel path handles
// worst, and (by the same product) the ones whose intersections are
// large enough to be worth precomputing. Pairs are taken in
// descending cost order until budgetBytes of encoded pair lists have
// been stored (≤ 0 means unlimited).
//
// The lists are built by running the spec's own kernel over every
// document in each pair's intersection, so a pair-served query
// returns bitwise-identical scores. Call at build time, before the
// index starts serving. Returns the number of pairs registered.
func BuildPairIndex(idx *index.Compact, concepts []index.Concept, spec KernelSpec, budgetBytes int) (added int, err error) {
	factory, err := spec.Factory()
	if err != nil {
		return 0, err
	}
	defer func() {
		// A kernel that panics during an offline build aborts it; the
		// pairs registered before the panic are each internally complete
		// and stay.
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: pair-index build panicked: %v", r)
		}
	}()
	fp := spec.Fingerprint()
	kern := factory()
	join := func(lists match.Lists) (match.Set, float64, bool) {
		kern.Reset(nil, lists)
		return kern.Join()
	}

	type cand struct {
		a, b int
		cost int
	}
	var cands []cand
	for i := 0; i < len(concepts); i++ {
		ci := idx.ConceptPostingBytes(concepts[i])
		if ci == 0 {
			continue
		}
		for j := i + 1; j < len(concepts); j++ {
			cj := idx.ConceptPostingBytes(concepts[j])
			if cj == 0 {
				continue
			}
			cands = append(cands, cand{a: i, b: j, cost: ci * cj})
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].cost != cands[y].cost {
			return cands[x].cost > cands[y].cost
		}
		if cands[x].a != cands[y].a {
			return cands[x].a < cands[y].a
		}
		return cands[x].b < cands[y].b
	})
	spent := 0
	for _, cd := range cands {
		if budgetBytes > 0 && spent >= budgetBytes {
			break
		}
		n, ok := idx.AddConceptPairs(concepts[cd.a], concepts[cd.b], fp, join)
		if ok {
			added++
			spent += n
		}
	}
	return added, nil
}
