package engine

import (
	"math"
	"sync/atomic"

	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// Per-query concept resolution: the cache-assisted chain from a query
// concept to its corpus-wide match data — concept cache, block skip
// table, precomputed doc-max metadata, or a full posting decode.

// conceptData is the per-query working state for one concept.
type conceptData struct {
	concept index.Concept
	fp      uint64
	failed  bool      // decode failed: the concept poisons its queries
	docs    []int     // sorted ids of documents containing the concept
	maxSc   []float64 // aligned with docs: max match score per document
	// local holds this query's freshly decoded lists; nil until the
	// concept has been decoded (cache hits avoid it entirely).
	local map[int]match.List
	// Block mode (blockpath.go): blocks replaces docs/maxSc/local
	// entirely. cand marks blocks that contributed candidates (written
	// only by the dispatcher goroutine during intersection); fetched
	// marks blocks some worker actually obtained (hit or decode) —
	// atomics, because workers race on them.
	blocks  *blockSet
	cand    []uint64
	fetched []atomic.Uint64
}

// conceptData resolves a concept for this query: from the concept
// cache when possible; else its block skip table
// (index.Compact.ConceptBlocks) — the representation that defers all
// match decoding to the workers; else precomputed doc-max metadata
// (index.Compact.ConceptMeta), which costs a doc-level decode instead
// of a full posting decode; else by decoding postings corpus-wide.
// Hits and misses land in the concept-cache counters.
func (e *Engine) conceptData(qs *queryState, c index.Concept) *conceptData {
	cd := &conceptData{concept: c, fp: index.ConceptKey(c)}
	if ce, ok := e.concepts.Get(conceptKey{epoch: qs.epoch, fp: cd.fp}); ok &&
		!faultinject.ForceMiss(faultinject.ConceptCacheMiss) {
		e.counters.conceptHits.Add(1)
		if ce.blocks != nil {
			cd.setBlocks(ce.blocks)
		} else {
			cd.docs, cd.maxSc = ce.docs, ce.maxSc
		}
		return cd
	}
	e.counters.conceptMisses.Add(1)
	if bs, ok := e.conceptBlocks(qs, cd); ok {
		cd.setBlocks(bs)
		e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{blocks: bs})
		return cd
	}
	if cd.failed {
		return cd
	}
	if docs, maxSc, ok := e.conceptMeta(qs, cd, c); ok {
		cd.docs, cd.maxSc = docs, maxSc
		e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{docs: docs, maxSc: maxSc})
		return cd
	}
	if cd.failed {
		return cd
	}
	e.decode(qs, cd)
	return cd
}

// conceptMeta looks up precomputed concept metadata under recover:
// index.Compact.ConceptMeta panics on corrupt metadata, and a corrupt
// index must degrade the query, not the process.
func (e *Engine) conceptMeta(qs *queryState, cd *conceptData, c index.Concept) (docs []int, maxSc []float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			cd.failed = true
			docs, maxSc, ok = nil, nil, false
		}
	}()
	return qs.idx.ConceptMeta(c)
}

// list fetches the match list of one concept in one document: from
// this query's decoded state, else the LRU, else by decoding the
// concept's postings (which fills both). Hits and misses land in the
// list-cache counters. ok is false when the concept's decode failed
// or was cancelled; the caller must then drop the document (or the
// query), never join against a half-decoded list.
func (e *Engine) list(qs *queryState, cd *conceptData, doc int) (match.List, bool) {
	if cd.failed {
		return nil, false
	}
	if cd.local != nil {
		return cd.local[doc], true
	}
	if ent, ok := e.lists.Get(listKey{epoch: qs.epoch, doc: doc, fp: cd.fp}); ok &&
		!faultinject.ForceMiss(faultinject.ListCacheMiss) {
		e.counters.listHits.Add(1)
		return ent.list, true
	}
	e.counters.listMisses.Add(1)
	if !e.decode(qs, cd) {
		return nil, false
	}
	return cd.local[doc], true
}

// decode materializes a concept across the whole corpus: a k-way merge
// of the member words' posting lists in (document, position) order,
// keeping the best score per (document, position) — the same merge as
// index.Compact.ConceptList, but for all documents at once instead of
// re-decoding per document. Because each word's postings are already
// sorted by (doc, pos), the merge emits every match in final order
// directly into one flat backing list; per-document lists are capped
// subslices of it, so the whole corpus-wide decode costs a handful of
// allocations instead of two map levels plus one slice and one sort
// per document. Results populate the query-local state and both
// caches.
//
// Two failure modes are contained here. Corrupt posting bytes
// (index.Compact.Postings panics on them, and the ConceptDecode
// injection site simulates them) are recovered: the concept is marked
// failed, the query degrades, the process survives. And the merge
// checks the context every few thousand postings, so a cancelled
// query abandons the decode promptly instead of finishing a merge
// nobody will read; an abandoned decode caches nothing for the
// concept and marks the query cancelled.
func (e *Engine) decode(qs *queryState, cd *conceptData) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			cd.failed = true
			cd.docs, cd.maxSc, cd.local = nil, nil, nil
			ok = false
		}
	}()
	faultinject.MaybeSleep(faultinject.DecodeLatency)
	faultinject.MaybePanic(faultinject.ConceptDecode)
	type source struct {
		ps    []index.Posting
		score float64
		next  int
	}
	srcs := make([]source, 0, len(cd.concept))
	total := 0
	for word, score := range cd.concept {
		if ps := qs.idx.Postings(word); len(ps) > 0 {
			srcs = append(srcs, source{ps: ps, score: score})
			total += len(ps)
		}
	}
	flat := make(match.List, 0, total)
	cd.local = make(map[int]match.List)
	var docs []int
	var maxs []float64
	curDoc, begin := -1, 0
	curMax := math.Inf(-1)
	flush := func() {
		if curDoc < 0 {
			return
		}
		l := flat[begin:len(flat):len(flat)]
		cd.local[curDoc] = l
		docs = append(docs, curDoc)
		maxs = append(maxs, curMax)
		e.lists.Put(listKey{epoch: qs.epoch, doc: curDoc, fp: cd.fp}, listEntry{list: l})
		begin = len(flat)
		curMax = math.Inf(-1)
	}
	merged := 0
	for {
		// A multi-million-posting merge must not outlive its query:
		// poll the context on a coarse stride (flush boundaries are
		// irregular, a posting count is steady).
		if merged&0x0fff == 0 && qs.ctx.Err() != nil {
			cd.local = nil
			qs.cancelled = true
			return false
		}
		merged++
		min := -1
		for s := range srcs {
			if srcs[s].next == len(srcs[s].ps) {
				continue
			}
			if min < 0 {
				min = s
				continue
			}
			p, q := srcs[s].ps[srcs[s].next], srcs[min].ps[srcs[min].next]
			if p.Doc < q.Doc || (p.Doc == q.Doc && p.Pos < q.Pos) {
				min = s
			}
		}
		if min < 0 {
			break
		}
		src := &srcs[min]
		p := src.ps[src.next]
		src.next++
		if p.Doc != curDoc {
			flush()
			curDoc = p.Doc
		}
		// Words of one concept can share a (doc, pos); duplicates are
		// adjacent in merge order, and the best member-word score wins.
		if src.score > curMax {
			curMax = src.score
		}
		if n := len(flat); n > begin && flat[n-1].Loc == p.Pos {
			if src.score > flat[n-1].Score {
				flat[n-1].Score = src.score
			}
			continue
		}
		flat = append(flat, match.Match{Loc: p.Pos, Score: src.score})
	}
	flush()
	cd.docs, cd.maxSc = docs, maxs
	e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{docs: docs, maxSc: maxs})
	return true
}
