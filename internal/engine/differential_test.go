package engine

// Differential harness for max-score pruning: pruning is supposed to
// be invisible — the only observable difference between a pruned and
// an unpruned engine is how many joins ran. This property test builds
// random corpora and random queries and asserts the pruned engine's
// output — document ids, scores (bit for bit), matchsets, tie-break
// order, and the Partial flag — is identical to the unpruned engine's
// across all three scoring families, with and without the
// duplicate-avoidance wrapper, with one worker and with several, and
// with candidate generation served from precomputed index metadata as
// well as from posting decode. scripts/check.sh runs it under -race,
// so the atomic floor shared across workers is exercised too.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bestjoin/internal/dedup"
	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// diffFamilies enumerates the kernel factories under test. Fresh
// factories per call: kernels are stateful and engines are long-lived.
func diffFamilies() []struct {
	name    string
	factory KernelFactory
} {
	win := scorefn.ExpWIN{Alpha: 0.07}
	med := scorefn.ExpMED{Alpha: 0.05}
	max := scorefn.SumMAX{Alpha: 0.1}
	return []struct {
		name    string
		factory KernelFactory
	}{
		{"WIN", WINJoiner(win)},
		{"MED", MEDJoiner(med)},
		{"MAX", MAXJoiner(max)},
		{"ValidWIN", ValidWINJoiner(win)},
		{"ValidMED", ValidMEDJoiner(med)},
		{"ValidMAX", ValidMAXJoiner(max)},
	}
}

// diffCorpus generates a random corpus over a small vocabulary, so
// random concepts co-occur in plenty of documents and candidate sets
// are non-trivial.
func diffCorpus(rng *rand.Rand) []string {
	vocab := []string{
		"amber", "basalt", "cedar", "delta", "ember", "fjord",
		"garnet", "harbor", "indigo", "jasper", "krill", "lumen",
	}
	docs := make([]string, 30+rng.Intn(50))
	for d := range docs {
		words := make([]string, 0, 50)
		for i := 15 + rng.Intn(35); i > 0; i-- {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		docs[d] = joinWords(words)
	}
	return docs
}

// diffConcepts draws 1–3 random concepts of 1–3 vocabulary words each
// with scores in (0, 1] (the exp families need positive scores).
func diffConcepts(rng *rand.Rand) []index.Concept {
	vocab := []string{
		"amber", "basalt", "cedar", "delta", "ember", "fjord",
		"garnet", "harbor", "indigo", "jasper", "krill", "lumen",
	}
	concepts := make([]index.Concept, 1+rng.Intn(3))
	for i := range concepts {
		c := index.Concept{}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			c[vocab[rng.Intn(len(vocab))]] = 1 - rng.Float64()
		}
		concepts[i] = c
	}
	return concepts
}

// assertIdentical compares two results field by field; both engines
// run the same kernel code on identical decoded lists, so scores must
// agree bit for bit, not approximately.
func assertIdentical(t *testing.T, label string, pruned, unpruned *Result) {
	t.Helper()
	assertResultInvariants(t, label+" pruned", pruned)
	assertResultInvariants(t, label+" unpruned", unpruned)
	if pruned.Partial != unpruned.Partial {
		t.Fatalf("%s: Partial %v (pruned) vs %v (unpruned)", label, pruned.Partial, unpruned.Partial)
	}
	if pruned.Candidates != unpruned.Candidates {
		t.Fatalf("%s: Candidates %d vs %d", label, pruned.Candidates, unpruned.Candidates)
	}
	if len(pruned.Docs) != len(unpruned.Docs) {
		t.Fatalf("%s: %d docs (pruned) vs %d (unpruned)", label, len(pruned.Docs), len(unpruned.Docs))
	}
	for i := range pruned.Docs {
		p, u := pruned.Docs[i], unpruned.Docs[i]
		if p.Doc != u.Doc {
			t.Fatalf("%s: rank %d doc %d (pruned) vs %d (unpruned)\npruned:   %+v\nunpruned: %+v",
				label, i, p.Doc, u.Doc, pruned.Docs, unpruned.Docs)
		}
		if p.Score != u.Score {
			t.Fatalf("%s: rank %d (doc %d) score %v (pruned) vs %v (unpruned)",
				label, i, p.Doc, p.Score, u.Score)
		}
		if len(p.Set) != len(u.Set) {
			t.Fatalf("%s: rank %d (doc %d) matchset sizes differ", label, i, p.Doc)
		}
		for j := range p.Set {
			if p.Set[j] != u.Set[j] {
				t.Fatalf("%s: rank %d (doc %d) matchset %v (pruned) vs %v (unpruned)",
					label, i, p.Doc, p.Set, u.Set)
			}
		}
	}
}

func TestDifferentialPrunedVsUnpruned(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(1000 + int64(trial)))
		compact := buildCompact(t, diffCorpus(rng))
		concepts := diffConcepts(rng)
		// Half the trials register precomputed concept metadata, so
		// the pruned engine's candidates (and maxima) come from the
		// doc-level metadata path instead of posting decode.
		withMeta := trial%2 == 1
		if withMeta {
			for _, c := range concepts {
				compact.AddConceptMeta(c)
			}
		}
		k := 1 + rng.Intn(6)
		for _, workers := range []int{1, 4} {
			for _, fam := range diffFamilies() {
				pruned := New(compact, Config{Workers: workers})
				unpruned := New(compact, Config{Workers: workers, DisablePruning: true})
				q := Query{Concepts: concepts, Join: fam.factory, K: k}
				rp, err := pruned.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				ru, err := unpruned.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("trial %d %s workers=%d k=%d meta=%v",
					trial, fam.name, workers, k, withMeta)
				assertIdentical(t, label, rp, ru)
				if got := int(pruned.Stats().PrunedDocs); got != rp.Pruned {
					t.Fatalf("%s: Result.Pruned %d != stats PrunedDocs %d", label, rp.Pruned, got)
				}
				if up := unpruned.Stats().PrunedDocs; up != 0 {
					t.Fatalf("%s: unpruned engine pruned %d docs", label, up)
				}
				// Repeat the query: the cached path (concept + list
				// LRUs warm) must stay identical too.
				rp2, err := pruned.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, label+" cached", rp2, ru)
			}
		}
	}
}

// TestDifferentialCustomKernelUnbounded pins the compatibility
// contract: a query whose kernel cannot provide upper bounds (a plain
// KernelFunc) must run unpruned — every candidate joined — even on a
// pruning engine.
func TestDifferentialCustomKernelUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	compact := buildCompact(t, diffCorpus(rng))
	concepts := diffConcepts(rng)
	e := New(compact, Config{})
	win := scorefn.ExpWIN{Alpha: 0.07}
	q := Query{
		Concepts: concepts,
		Join: func() join.Kernel {
			return join.KernelFunc(func(ls match.Lists) (match.Set, float64, bool) {
				return join.WIN(win, ls)
			})
		},
		K: 3,
	}
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 0 || res.Evaluated != res.Candidates {
		t.Fatalf("unbounded kernel was pruned: %+v", res)
	}
}

// TestDifferentialDedupForwardsBounds pins that the dedup wrapper
// forwards its inner kernel's bound (so Valid* joins actually prune)
// and stays sound doing it: the valid best-join score never exceeds
// the unrestricted bound.
func TestDifferentialDedupForwardsBounds(t *testing.T) {
	inner := join.NewWINKernel(scorefn.ExpWIN{Alpha: 0.07})
	wrapped := dedup.Wrap(inner)
	maxima := []float64{0.9, 0.8, 0.7}
	var ub join.UpperBounded = wrapped
	if got, want := ub.ScoreUpperBound(maxima), inner.ScoreUpperBound(maxima); got != want {
		t.Fatalf("dedup wrapper bound %v, inner %v", got, want)
	}
}
