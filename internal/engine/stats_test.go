package engine

import (
	"testing"
	"time"
)

// TestHistogramObserveEdges pins the histogram's two clamp branches:
// a negative duration (clock skew between the two reads around a
// query) lands in the lowest bucket instead of indexing with a
// negative bit length, and a duration past the last power-of-two
// bucket lands in the overflow bucket instead of out of range.
func TestHistogramObserveEdges(t *testing.T) {
	var h histogram
	h.observe(-time.Second)
	h.observe(time.Microsecond)
	h.observe(1 << 40 * time.Microsecond)
	snap := h.snapshot()
	if snap.Count != 3 {
		t.Fatalf("snapshot count %d, want 3", snap.Count)
	}
	last := snap.Buckets[len(snap.Buckets)-1]
	if last.UpperMicros != 0 {
		t.Fatalf("huge observation missed the overflow bucket: %+v", snap.Buckets)
	}
	var total uint64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("buckets hold %d observations, want 3", total)
	}
}
