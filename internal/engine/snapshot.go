package engine

import "bestjoin/internal/index"

// Epoch-keyed snapshotting: the machinery behind zero-downtime index
// reloads. The engine's only pointer to its index lives in one atomic
// snapshot; a query loads it once at admission and uses it
// throughout, so SwapIndex can never mix two indexes inside one
// query, and the caches are keyed by the snapshot's epoch so a swap
// can never serve stale entries to new queries. The exported Snapshot
// handle extends the same guarantee across engines: a shard
// coordinator pins one snapshot per child before scattering a query
// (SearchSnapshot), so a rolling reload that has already swapped some
// shards — but not yet flipped the coordinator's generation — cannot
// produce a mixed-epoch answer.

// snapshot pairs a live index with its reload epoch. Queries load one
// snapshot at admission and use it throughout, so SwapIndex never
// mixes two indexes inside one query.
type snapshot struct {
	idx   *index.Compact
	epoch uint64
}

// Snapshot is an opaque handle pinning one (index, epoch) pair of an
// engine. Handles stay valid forever: a swapped-out snapshot keeps
// serving the queries pinned to it (its cache entries age out of the
// LRUs naturally). The zero Snapshot pins nothing and is rejected by
// SearchSnapshot.
type Snapshot struct {
	snap *snapshot
}

// Snapshot returns a handle to the engine's current (index, epoch)
// pair, for queries that must agree with other queries — or other
// engines — about which index generation they observe.
func (e *Engine) Snapshot() Snapshot { return Snapshot{snap: e.snap.Load()} }

// Epoch returns the handle's reload epoch (0 for the zero Snapshot).
func (s Snapshot) Epoch() uint64 {
	if s.snap == nil {
		return 0
	}
	return s.snap.epoch
}

// Docs returns the document count of the pinned index (0 for the zero
// Snapshot).
func (s Snapshot) Docs() int {
	if s.snap == nil {
		return 0
	}
	return s.snap.idx.Docs()
}

// SwapIndex atomically replaces the engine's live index — the
// hot-reload path (proxserve triggers it on SIGHUP). Queries already
// in flight finish on the snapshot they started with; queries admitted
// after the swap see only the new index, because the caches are keyed
// by reload epoch (stale entries age out of the LRUs, and both caches
// are dropped eagerly to give the new index the full capacity).
func (e *Engine) SwapIndex(idx *index.Compact) {
	old := e.snap.Load()
	e.snap.Store(&snapshot{idx: idx, epoch: old.epoch + 1})
	e.counters.indexReloads.Add(1)
	e.lists.Reset()
	e.concepts.Reset()
}

// Index returns the engine's current live index.
func (e *Engine) Index() *index.Compact { return e.snap.Load().idx }

// Epoch returns the engine's current reload epoch: 0 at creation,
// incremented by every SwapIndex.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }
