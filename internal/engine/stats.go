package engine

import (
	"expvar"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Observability: lock-free counters incremented on the query hot path,
// a power-of-two latency histogram, and an expvar bridge. Everything
// is readable at any time via Engine.Stats without pausing queries.

// counters holds the engine's atomic event counters. The two caches
// are accounted separately: a concept miss re-derives a concept's
// candidate documents, a list miss re-decodes postings for one
// (document, concept) — conflating them hides which cache is cold.
type counters struct {
	queries       atomic.Uint64
	docsEvaluated atomic.Uint64
	joinsRun      atomic.Uint64
	prunedDocs    atomic.Uint64
	conceptHits   atomic.Uint64
	conceptMisses atomic.Uint64
	listHits      atomic.Uint64
	listMisses    atomic.Uint64
	deadlineHits  atomic.Uint64
	partials      atomic.Uint64
	// Robustness counters: recovered faults, degraded answers, load
	// shedding, and hot reloads. queueDepth is a gauge — jobs currently
	// sitting in worker queues — not a cumulative count.
	joinPanics     atomic.Uint64
	decodeFailures atomic.Uint64
	degraded       atomic.Uint64
	shed           atomic.Uint64
	indexReloads   atomic.Uint64
	queueDepth     atomic.Int64
	// Block-max skip layer: blockDecodes counts posting blocks actually
	// decoded by workers; blocksSkipped counts candidate blocks whose
	// block-max bound let the query finish without ever decoding them.
	blockDecodes  atomic.Uint64
	blocksSkipped atomic.Uint64
	// Decode coalescing (coalesce.go): coalescedDecodes counts block
	// decodes avoided because a waiter was served by an in-flight
	// leader's result; decodeWaits counts every wait on a flight,
	// including waits ending in cancellation or a shared failure.
	coalescedDecodes atomic.Uint64
	decodeWaits      atomic.Uint64
	// Disjunctive (ranked-union) path: unionCandidates counts confirmed
	// pivots — documents verified to match at least MinMatch concepts —
	// and pivotSkips the subset whose aggregate union bound fell
	// strictly below the top-k floor, skipped before any match list was
	// assembled.
	pivotSkips      atomic.Uint64
	unionCandidates atomic.Uint64
	// unionUnpruned counts disjunctive queries a pruning engine had to
	// run exhaustively anyway — the kernel offered no disjunctive
	// bound (e.g. the Weighted* scorefn families), a concept lacked
	// maxima, or a bound panicked mid-walk. Still correct, silently
	// slower; the counter makes the degradation visible.
	unionUnpruned atomic.Uint64
	// Auxiliary pair indexes (pairpath.go): pairHits counts pair-list
	// lookups that found a registered list; pairServed counts two-term
	// queries answered entirely off a pair list (no kernel joins);
	// pairBoundPrunes counts candidates pruned only because a pair
	// list tightened their score upper bound below the floor.
	pairHits        atomic.Uint64
	pairServed      atomic.Uint64
	pairBoundPrunes atomic.Uint64
}

// histBuckets is the number of latency buckets: bucket i counts
// queries with latency in [2^(i−1), 2^i) microseconds (bucket 0 is
// < 1µs), and the last bucket absorbs everything from ~1s up.
const histBuckets = 22

// histogram is a fixed-bucket power-of-two latency histogram safe for
// concurrent observation.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total observed time in microseconds
}

func (h *histogram) observe(d time.Duration) {
	micros := d.Microseconds()
	if micros < 0 {
		micros = 0
	}
	idx := bits.Len64(uint64(micros))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.counts[idx].Add(1)
	h.sum.Add(micros)
}

// LatencyBucket is one row of a latency histogram snapshot.
type LatencyBucket struct {
	// UpperMicros is the exclusive upper bound of the bucket in
	// microseconds; 0 marks the unbounded overflow bucket.
	UpperMicros uint64
	Count       uint64
}

// LatencyHistogram is a point-in-time latency distribution.
type LatencyHistogram struct {
	Count      uint64 // total observations
	MeanMicros float64
	Buckets    []LatencyBucket // only non-empty buckets, ascending
}

func (h *histogram) snapshot() LatencyHistogram {
	var out LatencyHistogram
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		out.Count += n
		upper := uint64(1) << i
		if i == histBuckets-1 {
			upper = 0 // overflow bucket
		}
		out.Buckets = append(out.Buckets, LatencyBucket{UpperMicros: upper, Count: n})
	}
	if out.Count > 0 {
		out.MeanMicros = float64(h.sum.Load()) / float64(out.Count)
	}
	return out
}

// Stats is a point-in-time snapshot of the engine's observability
// surface. All fields are cumulative since the engine was created; the
// struct marshals to JSON, which is what the expvar bridge publishes.
type Stats struct {
	Queries       uint64 // Search calls
	DocsEvaluated uint64 // candidate documents actually joined
	JoinsRun      uint64 // best-join invocations
	// PrunedDocs counts candidate documents skipped because their
	// score upper bound was strictly below the top-k floor — joins
	// that never ran. PrunedFraction is PrunedDocs over all candidates
	// that reached the prune-or-join decision (0 when none have).
	PrunedDocs     uint64
	PrunedFraction float64
	ConceptHits    uint64 // concept → candidate-documents cache hits
	ConceptMisses  uint64 // concept cache misses (each re-derives candidates)
	ListHits       uint64 // (document, concept) match-list cache hits
	ListMisses     uint64 // match-list cache misses (each decodes postings)
	DeadlineHits   uint64 // queries cut short by a context deadline
	PartialResults uint64 // queries returning Partial results
	// Robustness surface. JoinPanics counts kernel (and kernel-factory)
	// panics recovered by the panic-isolation layer; DecodeFailures
	// counts concept decodes that hit corrupt bytes; DegradedResults
	// counts queries that returned with Result.Degraded set. Shed counts
	// queries rejected by admission control (ErrOverloaded). InFlight
	// and QueueDepth are gauges: queries currently admitted, and jobs
	// currently queued for join workers.
	JoinPanics      uint64
	DecodeFailures  uint64
	DegradedResults uint64
	Shed            uint64
	IndexReloads    uint64 // SwapIndex hot reloads since creation
	InFlight        int
	QueueDepth      int
	CachedLists     int // current entries in the match-list cache
	// Block-max skip layer. BlockDecodes counts posting blocks decoded
	// by join workers (the lazy per-block decode path); BlocksSkipped
	// counts candidate blocks never decoded because their block-max
	// score upper bound fell strictly below the top-k floor. CacheBytes
	// is the match-list cache's accounted size — non-zero only when
	// Config.CacheBytes puts the cache in byte-cost mode.
	BlockDecodes  uint64
	BlocksSkipped uint64
	CacheBytes    int64
	// Decode coalescing. CoalescedDecodes counts block decodes avoided
	// because a concurrent query (or worker) already had the identical
	// decode in flight and this one was served the leader's result;
	// DecodeWaits counts the waits themselves, including those that
	// ended in the waiter's cancellation or the leader's failure —
	// DecodeWaits − CoalescedDecodes is the unlucky remainder.
	CoalescedDecodes uint64
	DecodeWaits      uint64
	// Disjunctive (ranked-union) path. UnionCandidates counts confirmed
	// WAND pivots — documents verified to match at least MinMatch
	// concepts; PivotSkips counts the subset skipped because their
	// aggregate union bound fell strictly below the top-k floor, before
	// any match list was assembled.
	UnionCandidates uint64
	PivotSkips      uint64
	// UnionUnpruned counts disjunctive queries a pruning engine ran
	// exhaustively because no sound bound was available — correct
	// results, silently degraded latency. A non-zero value usually
	// means the deployed scoring family has no UnionBounded hook.
	UnionUnpruned uint64
	// Auxiliary pair indexes (pairpath.go). PairHits counts pair-list
	// lookups that found a registered list; PairServed counts two-term
	// conjunctive queries answered entirely off a precomputed pair list
	// (zero kernel joins); PairBoundPrunes counts candidates of wider
	// queries pruned only because a pair list tightened their upper
	// bound below the top-k floor (the per-list-maxima bound alone
	// would have let them through to a join).
	PairHits        uint64
	PairServed      uint64
	PairBoundPrunes uint64
	QueryLatency    LatencyHistogram
	// Sharded serving (internal/shard). ShardQueries counts child
	// engine searches issued by a coordinator (N per coordinator
	// query); MergedCandidates counts per-shard result rows entering
	// the coordinator's rank-merge. Shards holds each child engine's
	// own Stats, in shard order. All three are zero/empty on a plain
	// Engine.
	ShardQueries     uint64  `json:",omitempty"`
	MergedCandidates uint64  `json:",omitempty"`
	Shards           []Stats `json:",omitempty"`
	// Remote shard tier (internal/remote). Hedged counts duplicate
	// requests launched because a shard call outlived its hedging
	// trigger (the shard's observed latency quantile); Retried counts
	// re-attempts after a retryable transport failure; ShardTimeouts
	// counts attempts cut by the per-attempt deadline budget;
	// BreakerOpen counts searches rejected immediately because a
	// shard's circuit breaker was open. All zero on local serving.
	Hedged        uint64 `json:",omitempty"`
	Retried       uint64 `json:",omitempty"`
	ShardTimeouts uint64 `json:",omitempty"`
	BreakerOpen   uint64 `json:",omitempty"`
	// Quorum degraded mode (internal/shard). QuorumDegraded counts
	// coordinator queries answered by a partial fleet — at least
	// Config.Quorum shards responded, the rest were dropped from the
	// merge; ShardFailures counts the dropped shard answers themselves.
	QuorumDegraded uint64 `json:",omitempty"`
	ShardFailures  uint64 `json:",omitempty"`
}

// Stats returns a consistent-enough snapshot of the engine's counters.
// Counters are read individually without a global lock, so a snapshot
// taken during a query may be mid-update by one event; totals are
// still monotonic.
func (e *Engine) Stats() Stats {
	pruned := e.counters.prunedDocs.Load()
	evaluated := e.counters.docsEvaluated.Load()
	fraction := 0.0
	if pruned+evaluated > 0 {
		fraction = float64(pruned) / float64(pruned+evaluated)
	}
	return Stats{
		Queries:          e.counters.queries.Load(),
		DocsEvaluated:    evaluated,
		JoinsRun:         e.counters.joinsRun.Load(),
		PrunedDocs:       pruned,
		PrunedFraction:   fraction,
		ConceptHits:      e.counters.conceptHits.Load(),
		ConceptMisses:    e.counters.conceptMisses.Load(),
		ListHits:         e.counters.listHits.Load(),
		ListMisses:       e.counters.listMisses.Load(),
		DeadlineHits:     e.counters.deadlineHits.Load(),
		PartialResults:   e.counters.partials.Load(),
		JoinPanics:       e.counters.joinPanics.Load(),
		DecodeFailures:   e.counters.decodeFailures.Load(),
		DegradedResults:  e.counters.degraded.Load(),
		Shed:             e.counters.shed.Load(),
		IndexReloads:     e.counters.indexReloads.Load(),
		InFlight:         e.admit.inFlight(),
		QueueDepth:       int(e.counters.queueDepth.Load()),
		CachedLists:      e.lists.Len(),
		BlockDecodes:     e.counters.blockDecodes.Load(),
		BlocksSkipped:    e.counters.blocksSkipped.Load(),
		CacheBytes:       e.lists.Bytes(),
		CoalescedDecodes: e.counters.coalescedDecodes.Load(),
		DecodeWaits:      e.counters.decodeWaits.Load(),
		UnionCandidates:  e.counters.unionCandidates.Load(),
		PivotSkips:       e.counters.pivotSkips.Load(),
		UnionUnpruned:    e.counters.unionUnpruned.Load(),
		PairHits:         e.counters.pairHits.Load(),
		PairServed:       e.counters.pairServed.Load(),
		PairBoundPrunes:  e.counters.pairBoundPrunes.Load(),
		QueryLatency:     e.latency.snapshot(),
	}
}

// expvarMu serializes Publish calls: expvar panics on duplicate names,
// so we check-then-publish under a package lock.
var expvarMu sync.Mutex

// PublishFunc exposes a Stats source as an expvar variable under the
// given name, making it visible at /debug/vars on any server importing
// net/http/pprof or expvar. Publishing the same name twice — by any
// mix of engines and coordinators — returns an error instead of
// panicking. Engine.Publish and shard.Coordinator.Publish both route
// through here so they share the duplicate-name guard.
func PublishFunc(name string, stats func() Stats) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return fmt.Errorf("engine: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return stats() }))
	return nil
}

// Publish exposes the engine's Stats snapshot as an expvar variable
// under the given name (conventionally "bestjoin.engine"); see
// PublishFunc.
func (e *Engine) Publish(name string) error {
	return PublishFunc(name, e.Stats)
}
