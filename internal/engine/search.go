package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
)

// Query is one retrieval request: candidate documents are those
// containing at least one match for every concept, each is joined
// with Join, and the K best are returned.
type Query struct {
	Concepts []index.Concept
	Join     KernelFactory
	// Spec optionally names the query's kernel declaratively (family,
	// alpha, valid-matchset restriction). Transports that cannot ship
	// the Join closure — the remote shard tier — serialize Spec instead
	// and the serving side resolves it; a local Search with Join == nil
	// resolves Spec itself. When both are set, Join wins locally and
	// Spec rides the wire, so one Query serves local and remote shards
	// with identical kernels.
	Spec KernelSpec
	// K is the number of documents to return; ≤ 0 means DefaultK.
	K int
	// Mode selects conjunctive (ModeAND) or disjunctive (ModeOR)
	// candidate generation; ModeDefault (the zero value) uses the
	// engine's configured Config.Mode.
	Mode QueryMode
	// MinMatch is the m-of-n knob: a candidate document must match at
	// least MinMatch of the query's concepts. 0 means the resolved
	// mode's default — len(Concepts) for AND, 1 for OR. Any explicit
	// value in [1, len(Concepts)] selects the disjunctive evaluation
	// path, so MinMatch = len(Concepts) is AND semantics evaluated by
	// ranked union. Values < 0 or > len(Concepts) are errors.
	MinMatch int
	// Floor optionally shares one pruning floor across engines: when a
	// coordinator scatters this query to N doc-partitioned shards, each
	// shard both raises the shared floor (whenever its local top-k heap
	// fills or improves) and prunes against it, so a strong document
	// found on one shard stops weak candidates on every other. nil (the
	// single-engine case) keeps the floor query-local. Sharing is
	// lossless for the merged result: a shard's k-th-best kept score is
	// a lower bound on the global k-th best — those k documents exist —
	// and pruning is strictly-below only, so equal-scoring documents
	// still surface for the merge's doc-id tie-break.
	Floor *GlobalFloor
}

// DocResult is one ranked document: its id, best matchset, and score.
type DocResult struct {
	Doc   int
	Score float64
	Set   match.Set
}

// Result is a query's outcome.
type Result struct {
	// Docs holds the top-k documents, best first.
	Docs []DocResult
	// Partial is true when the context expired before every candidate
	// was evaluated or pruned; Docs then ranks only the documents
	// evaluated so far (the best-so-far answer), not the full corpus.
	// Pruned candidates never make a result Partial: pruning is
	// lossless, so a fully pruned+evaluated query is a complete answer.
	Partial bool
	// Degraded is true when part of the query's work failed and was
	// isolated — a kernel panicked on some document, or a concept's
	// postings could not be decoded. Every document in Docs still
	// carries its true score (failed documents are dropped, never
	// mis-scored), so a degraded answer is a sound subset of the
	// healthy answer; Failed counts the dropped candidates.
	Degraded bool
	// Candidates is the number of documents containing every concept;
	// Evaluated is how many of them were actually joined; Pruned is
	// how many were skipped because their score upper bound could not
	// beat the top-k floor; Failed is how many were dropped by
	// recovered faults.
	Candidates int
	Evaluated  int
	Pruned     int
	Failed     int
	// FailedShards counts shards whose answers are missing from a
	// merged fleet Result — non-zero only when a coordinator running in
	// quorum mode assembled a partial-fleet (degraded) answer. Always 0
	// on a single engine and on a healthy fleet.
	FailedShards int
	// Elapsed is the wall-clock time the query took.
	Elapsed time.Duration
}

// queryState is the per-query fault and cancellation context threaded
// through candidate generation and the worker pool. degraded and
// failed are touched by workers concurrently; cancelled only by the
// dispatcher goroutine.
type queryState struct {
	ctx       context.Context
	idx       *index.Compact
	epoch     uint64
	cancelled bool
	degraded  atomic.Bool
	failed    atomic.Int64
}

// fail records one candidate document dropped by a recovered fault.
func (qs *queryState) fail() {
	qs.failed.Add(1)
	qs.degraded.Store(true)
}

// Search evaluates the query document-at-a-time. It returns an error
// for malformed queries and for admission rejection (ErrOverloaded); a
// context deadline or cancellation instead yields the best-so-far
// Result with Partial set, and recovered faults yield a Result with
// Degraded set — never a panic escaping to the caller.
func (e *Engine) Search(ctx context.Context, q Query) (*Result, error) {
	return e.search(ctx, q, nil)
}

// SearchSnapshot is Search against a pinned snapshot (Engine.Snapshot)
// instead of the engine's current one. It is how a shard coordinator
// keeps a scattered query on one index generation end to end: the
// coordinator pins every child's snapshot up front, and a SwapIndex
// racing the query cannot move any child off the pinned epoch. The
// zero Snapshot — and a snapshot from a different engine's index
// lineage — is the caller's bug; only handles this engine issued are
// meaningful.
func (e *Engine) SearchSnapshot(ctx context.Context, q Query, s Snapshot) (*Result, error) {
	if s.snap == nil {
		return nil, errors.New("engine: SearchSnapshot on the zero Snapshot")
	}
	return e.search(ctx, q, s.snap)
}

func (e *Engine) search(ctx context.Context, q Query, pinned *snapshot) (*Result, error) {
	if len(q.Concepts) == 0 {
		return nil, errors.New("engine: query has no concepts")
	}
	// A spec-only query is eligible for the auxiliary pair-index stage
	// (pairpath.go): pair lists are keyed by the spec's fingerprint, so
	// an opaque Join closure can never match one. Captured before the
	// spec is resolved into q.Join below.
	pairFP := uint64(0)
	if e.pairs && q.Join == nil && !q.Spec.Zero() {
		pairFP = q.Spec.Fingerprint()
	}
	if q.Join == nil {
		// A spec-only query (the shape that crosses a process boundary)
		// resolves its kernel here, so remote shard servers never touch
		// factories themselves.
		if q.Spec.Zero() {
			return nil, errors.New("engine: query has no kernel factory")
		}
		f, err := q.Spec.Factory()
		if err != nil {
			return nil, err
		}
		q.Join = f
	}
	k := q.K
	if k <= 0 {
		k = DefaultK
	}
	mode := q.Mode
	if mode == ModeDefault {
		mode = e.mode
	}
	n := len(q.Concepts)
	if q.MinMatch < 0 || q.MinMatch > n {
		return nil, fmt.Errorf("engine: MinMatch %d out of range [0, %d]", q.MinMatch, n)
	}
	minMatch := q.MinMatch
	if minMatch == 0 {
		minMatch = n
		if mode == ModeOR {
			minMatch = 1
		}
	}
	// An explicit MinMatch always takes the disjunctive path, even at
	// m = n: AND-by-ranked-union is how the equivalence tests keep the
	// union evaluator honest against the intersection evaluator.
	union := mode == ModeOR || q.MinMatch > 0
	if union && n > 64 {
		return nil, fmt.Errorf("engine: disjunctive queries support at most 64 concepts, got %d", n)
	}

	// Admission control: at the in-flight cap, shed immediately or
	// wait until the caller's context gives up.
	release, err := e.admit.admit(ctx)
	if err != nil {
		e.counters.shed.Add(1)
		return nil, err
	}
	defer release()

	start := time.Now()
	e.counters.queries.Add(1)
	defer func() { e.latency.observe(time.Since(start)) }()

	snap := pinned
	if snap == nil {
		snap = e.snap.Load()
	}
	qs := &queryState{ctx: ctx, idx: snap.idx, epoch: snap.epoch}

	// Pair-served fast path: a two-term conjunctive spec query whose
	// pair list is registered skips concept resolution, candidate
	// intersection, and the worker pool entirely — the list already
	// holds every (doc, score, witness) the kernel path would compute.
	if pairFP != 0 && !union && len(q.Concepts) == 2 {
		if res, ok := e.servePair(qs, q, pairFP, k, start); ok {
			return res, nil
		}
	}

	// Candidate generation: resolve each concept (cache-assisted) and
	// intersect by a cursor walk. Flat concepts materialize their
	// corpus-wide doc-set; block-served concepts never do — the walk
	// gallops over block doc-ranges from the skip table, decoding only
	// the block directories the intersection actually enters. Large
	// decodes check the context, so a cancelled query stops burning
	// CPU here instead of merging postings nobody will read.
	cds := make([]*conceptData, len(q.Concepts))
	for j, c := range q.Concepts {
		cds[j] = e.conceptData(qs, c)
		if qs.cancelled {
			return e.finish(qs, &Result{Docs: []DocResult{}}, start), nil
		}
	}
	if union {
		return e.searchUnion(qs, q, cds, minMatch, k, start), nil
	}
	candidates, perListMax := e.intersectCursors(qs, cds)

	// No candidate contains every concept: the answer is empty and
	// final, so skip the worker pool entirely. (A concept whose decode
	// failed has an empty candidate list, so degraded queries take
	// this path with Degraded set — an empty but sound answer.)
	res := &Result{Candidates: len(candidates)}
	if len(candidates) == 0 {
		res.Docs = []DocResult{}
		return e.finish(qs, res, start), nil
	}

	// Max-score pruning setup: when the query's kernel can cap a
	// document's score from its per-list maxima, compute every
	// candidate's upper bound and order candidates by bound,
	// descending (ties keep ascending document order). Processing the
	// most promising documents first drives the top-k floor up
	// quickly, so later, weaker candidates are skipped before their
	// join — or even before their match lists are assembled. A factory
	// or bound that panics here downgrades the query to the unpruned
	// (still correct) path.
	nc := len(cds)
	var bounds []float64
	var order []int // candidate indices in dispatch order; nil = as-is
	// pairOrig holds the pre-tightening bounds when registered pair
	// lists lowered any of them (pairpath.go), so the dispatch screen
	// below can attribute the prunes only the pair bound caused.
	var pairOrig []float64
	if e.prune && perListMax != nil {
		bounds = e.planBounds(q.Join, candidates, perListMax, nc)
		if bounds != nil {
			if pairFP != 0 && nc > 2 {
				pairOrig = e.tightenPairBounds(qs, q, pairFP, candidates, perListMax, bounds)
			}
			order = boundOrder(bounds)
		}
	}

	// Worker pool: candidates flow through one shared channel in
	// dispatchChunk batches, so channel operations and top-k floor
	// loads amortize across a chunk instead of costing one each per
	// document (the flat-worker-scaling fix). The dispatcher assembles
	// flat-concept match lists (touching the caches single-threaded);
	// workers fill block-concept lists themselves — lazy per-block
	// decode fanned out across the pool — run joins, and offer results
	// to the shared top-k heap. The heap's result is insertion-order
	// independent (ties break on document id, and the floor only
	// rises), so unsharded dispatch cannot change answers. Each worker
	// builds one kernel from the query's factory and reuses its
	// scratch for every document it evaluates; a kernel that panics is
	// discarded and rebuilt, so one poisoned join cannot corrupt the
	// next document's evaluation.
	workers := e.workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	top := newTopK(k, q.Floor)
	var evaluated, pruned atomic.Int64
	chunkCap := workers * e.queue / dispatchChunk
	if chunkCap < 1 {
		chunkCap = 1
	}
	jobs := make(chan []docJob, chunkCap)
	var wg sync.WaitGroup
	e.joinWorkers(qs, q.Join, cds, workers, jobs, top, &evaluated, &pruned, &wg)

	// One flat backing array for every job's lists header, and one for
	// the jobs themselves: chunks are subslices of jobsBacking (which
	// never grows past its capacity), so dispatch allocates nothing
	// per chunk and the slices workers receive are never reallocated
	// under them.
	backing := make(match.Lists, len(candidates)*nc)
	jobsBacking := make([]docJob, 0, len(candidates))
	pending := 0 // jobs appended but not yet shipped
	ship := func() bool {
		chunk := jobsBacking[len(jobsBacking)-pending:]
		select {
		case jobs <- chunk:
			e.counters.queueDepth.Add(int64(len(chunk)))
			pending = 0
			return true
		case <-ctx.Done():
			return false
		}
	}
	flushFloor := top.Floor()
dispatch:
	for oi := 0; oi < len(candidates); oi++ {
		if oi&31 == 0 {
			// Stop assembling (and possibly decoding) lists for a
			// query nobody is waiting on anymore, and refresh the
			// dispatcher's floor on the same coarse stride.
			if ctx.Err() != nil {
				break dispatch
			}
			flushFloor = top.Floor()
		}
		i := oi
		bound := math.Inf(1)
		if order != nil {
			i = order[oi]
			bound = bounds[i]
			// Screen before assembling lists: a document whose bound
			// is strictly below the current floor cannot displace any
			// kept document (the floor only rises), so skipping its
			// join — and its match-list assembly — loses nothing.
			if bound < flushFloor {
				pruned.Add(1)
				e.counters.prunedDocs.Add(1)
				if pairOrig != nil && pairOrig[i] >= flushFloor {
					// The per-list bound alone would have let this
					// document through to a join: the prune is the pair
					// index's win.
					e.counters.pairBoundPrunes.Add(1)
				}
				continue
			}
		}
		doc := candidates[i]
		lists := backing[i*nc : (i+1)*nc : (i+1)*nc]
		assembled := true
		for j, cd := range cds {
			if cd.blocks != nil {
				continue // workers fill block-served lists lazily
			}
			l, ok := e.list(qs, cd, doc)
			if !ok {
				if qs.cancelled {
					break dispatch
				}
				// Decode failure: drop this document, keep the query.
				qs.fail()
				assembled = false
				break
			}
			lists[j] = l
		}
		if !assembled {
			continue
		}
		orig := bound
		if pairOrig != nil && order != nil {
			orig = pairOrig[i]
		}
		jobsBacking = append(jobsBacking, docJob{doc: doc, bound: bound, orig: orig, lists: lists})
		if pending++; pending == dispatchChunk {
			if !ship() {
				break dispatch
			}
		}
	}
	if pending > 0 {
		ship()
	}
	close(jobs)
	wg.Wait()

	// Candidate blocks no worker ever fetched were pruned below
	// decode: their bytes were never touched.
	e.countSkippedBlocks(cds)

	res.Docs = top.results()
	res.Evaluated = int(evaluated.Load())
	res.Pruned = int(pruned.Load())
	return e.finish(qs, res, start), nil
}

// finish folds the query state into the result and updates the
// outcome counters.
func (e *Engine) finish(qs *queryState, res *Result, start time.Time) *Result {
	res.Failed = int(qs.failed.Load())
	res.Degraded = qs.degraded.Load()
	res.Partial = res.Evaluated+res.Pruned+res.Failed != res.Candidates || qs.cancelled
	if res.Degraded {
		e.counters.degraded.Add(1)
	}
	if res.Partial {
		e.counters.partials.Add(1)
	}
	if errors.Is(qs.ctx.Err(), context.DeadlineExceeded) {
		e.counters.deadlineHits.Add(1)
	}
	res.Elapsed = time.Since(start)
	return res
}

// planBounds probes the query's kernel for score upper bounds and
// computes every candidate's cap from its per-list maxima. Any panic
// — in the factory or in a bound evaluation — is recovered and
// disables pruning for this query: running unpruned is always sound.
// (Bound computation and ordering are split so the pair-index stage
// can tighten bounds in between.)
func (e *Engine) planBounds(f KernelFactory, candidates []int, perListMax []float64, nc int) (bounds []float64) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.joinPanics.Add(1)
			bounds = nil
		}
	}()
	ub, ok := f().(join.UpperBounded)
	if !ok {
		return nil
	}
	bounds = make([]float64, len(candidates))
	for i := range candidates {
		bounds[i] = ub.ScoreUpperBound(perListMax[i*nc : (i+1)*nc])
	}
	return bounds
}

// boundOrder computes the bound-descending dispatch order (ties keep
// ascending document order, so dispatch stays deterministic).
func boundOrder(bounds []float64) []int {
	order := make([]int, len(bounds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bounds[order[a]] > bounds[order[b]] })
	return order
}
