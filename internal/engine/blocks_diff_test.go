package engine

// Differential harness for the block-max skip layer: block-served
// queries are supposed to be invisible — the only observable
// difference between an engine whose concepts have block-partitioned
// postings and one decoding flat postings is how much work the cold
// path does. This property test builds random corpora and random
// queries and asserts the block engine's output — document ids,
// scores (bit for bit), matchsets, tie-break order, and the Partial
// flag — is identical to the flat engine's across all scoring
// families, with and without the duplicate-avoidance wrapper, with
// one worker and with several. scripts/check.sh runs it under -race,
// so the worker-side lazy block decode, the shared directory memo,
// and the fetched bitsets are exercised concurrently too.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bestjoin/internal/index"
)

func TestDifferentialBlocksVsFlat(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(4000 + int64(trial)))
		corpus := diffCorpus(rng)
		concepts := diffConcepts(rng)
		// Two physically separate indexes from the same corpus: one
		// with block-partitioned postings registered for every concept
		// (odd trials use a tiny block size so queries cross many
		// block boundaries; even trials keep a mid size so several
		// documents share a block), one serving the flat decode path.
		// Half the flat trials also register doc-max metadata, so
		// block bounds are checked against both flat candidate paths.
		blockIdx := buildCompact(t, corpus)
		blockSize := 16
		if trial%2 == 1 {
			blockSize = 3
		}
		for _, c := range concepts {
			blockIdx.AddConceptBlocksSized(c, blockSize)
		}
		flatIdx := buildCompact(t, corpus)
		if trial%4 >= 2 {
			for _, c := range concepts {
				flatIdx.AddConceptMeta(c)
			}
		}
		k := 1 + rng.Intn(6)
		for _, workers := range []int{1, 4} {
			for _, fam := range diffFamilies() {
				blocked := New(blockIdx, Config{Workers: workers})
				flat := New(flatIdx, Config{Workers: workers})
				q := Query{Concepts: concepts, Join: fam.factory, K: k}
				rb, err := blocked.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				rf, err := flat.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("trial %d %s workers=%d k=%d bs=%d",
					trial, fam.name, workers, k, blockSize)
				assertIdentical(t, label, rb, rf)
				if rb.Degraded || rf.Degraded {
					t.Fatalf("%s: degraded on a healthy index", label)
				}
				// The block engine must actually have taken the block
				// path: candidates exist in most trials, and any decode
				// at all must be counted.
				st := blocked.Stats()
				if rb.Evaluated > 0 && st.BlockDecodes == 0 {
					t.Fatalf("%s: evaluated %d docs with zero block decodes", label, rb.Evaluated)
				}
				// Repeat the query: the cached path (skip tables and
				// decoded blocks warm in the LRUs) must stay identical.
				rb2, err := blocked.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				assertIdentical(t, label+" cached", rb2, rf)
			}
		}
	}
}

// TestBlocksNeverPruneOnEquality mirrors the flat-path equality test
// at block granularity: a block whose max-score bound ties the top-k
// floor must still be decoded, because a document inside it can win
// its tie-break on id. The corpus is built so every document scores
// identically; with k less than the document count the floor equals
// every block's bound, and any block-level skip would change the
// (id-ordered) answer.
func TestBlocksNeverPruneOnEquality(t *testing.T) {
	docs := make([]string, 12)
	for i := range docs {
		docs[i] = "amber basalt"
	}
	compact := buildCompact(t, docs)
	concept := []index.Concept{{"amber": 1, "basalt": 1}}
	compact.AddConceptBlocksSized(concept[0], 2)

	e := New(compact, Config{Workers: 1})
	q := Query{Concepts: concept, Join: diffFamilies()[0].factory, K: 4}
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 4 {
		t.Fatalf("got %d docs, want 4", len(res.Docs))
	}
	for i, dr := range res.Docs {
		if dr.Doc != i {
			t.Fatalf("rank %d is doc %d, want %d (tie-break by id broken)", i, dr.Doc, i)
		}
	}
	if got := e.Stats().BlocksSkipped; got != 0 {
		t.Fatalf("%d blocks skipped on an all-ties query", got)
	}
}

// TestCorruptBlocksDegradeNotCrash pins the block layer's failure
// model, mirroring the flat corrupt-decode test: corruption of a
// concept's block bytes — whether in the skip table (the lookup
// panics) or in a lazily-decoded payload (directory and match-area
// decodes error) — must degrade the query to a sound subset, never
// crash the process, never return an error, and count in
// Stats().DecodeFailures.
func TestCorruptBlocksDegradeNotCrash(t *testing.T) {
	corpus := make([]string, 30)
	for i := range corpus {
		corpus[i] = "amber basalt"
	}
	concept := index.Concept{"amber": 1, "basalt": 0.9}
	q := Query{Concepts: []index.Concept{concept}, Join: diffFamilies()[0].factory, K: 3}

	t.Run("skip-table", func(t *testing.T) {
		compact := buildCompact(t, corpus)
		compact.AddConceptBlocksSized(concept, 4)
		index.CorruptConceptBlocksForTest(compact, concept)
		e := New(compact, Config{Workers: 2})
		res, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("corrupt block table must degrade, not error: %v", err)
		}
		if !res.Degraded || len(res.Docs) != 0 {
			t.Fatalf("degraded=%v docs=%d, want degraded and empty", res.Degraded, len(res.Docs))
		}
		if e.Stats().DecodeFailures == 0 {
			t.Fatal("corrupt block table not counted in DecodeFailures")
		}
	})
	t.Run("payload", func(t *testing.T) {
		compact := buildCompact(t, corpus)
		compact.AddConceptBlocksSized(concept, 4)
		index.CorruptConceptBlockPayloadForTest(compact, concept)
		e := New(compact, Config{Workers: 2})
		res, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("corrupt block payload must degrade, not error: %v", err)
		}
		if !res.Degraded {
			t.Fatal("Degraded not set for corrupt block payloads")
		}
		if len(res.Docs) != 0 {
			t.Fatalf("undecodable payloads produced documents: %+v", res.Docs)
		}
		if e.Stats().DecodeFailures == 0 {
			t.Fatal("payload decode failures not counted in DecodeFailures")
		}
	})
}

// TestBlocksSkippedCounting pins the skip accounting: with one
// dominant document and k=1, trailing candidate blocks whose bounds
// fall strictly below the floor must be skipped without decode, and
// skipped + decoded must cover every candidate block.
func TestBlocksSkippedCounting(t *testing.T) {
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = "amber cedar"
	}
	docs[0] = "amber amber amber basalt" // only doc containing the heavy word
	compact := buildCompact(t, docs)
	concept := index.Concept{"basalt": 1, "amber": 0.1}
	compact.AddConceptBlocksSized(concept, 4)

	e := New(compact, Config{Workers: 1})
	q := Query{Concepts: []index.Concept{concept}, Join: diffFamilies()[0].factory, K: 1}
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if res.Pruned == 0 || st.BlocksSkipped == 0 {
		t.Fatalf("expected block-level skips: pruned=%d skipped=%d decodes=%d",
			res.Pruned, st.BlocksSkipped, st.BlockDecodes)
	}
	if res.Docs[0].Doc != 0 {
		t.Fatalf("top doc %d, want 0", res.Docs[0].Doc)
	}
}
