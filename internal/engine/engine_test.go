package engine

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// testCorpus builds a deterministic synthetic text corpus: filler
// words with concept words planted at varying densities, so some
// documents contain every concept and others only a few.
func testCorpus(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	filler := []string{
		"quartz", "ribbon", "saddle", "timber", "umbrella", "violet",
		"walnut", "yarn", "zeppelin", "bottle", "curtain", "dolphin",
	}
	planted := [][]string{
		{"lenovo", "dell", "hewlett"},
		{"nba", "olympics", "basketball"},
		{"partnership", "alliance", "deal"},
	}
	docs := make([]string, n)
	for d := range docs {
		words := make([]string, 0, 60)
		for i := 0; i < 50; i++ {
			words = append(words, filler[rng.Intn(len(filler))])
		}
		for g, group := range planted {
			// Concept g appears in roughly (3-g)/4 of documents.
			if rng.Intn(4) <= 2-g || d%7 == g {
				at := rng.Intn(len(words))
				words[at] = group[rng.Intn(len(group))]
			}
		}
		docs[d] = joinWords(words)
	}
	return docs
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func buildCompact(t testing.TB, docs []string) *index.Compact {
	t.Helper()
	ix := index.New()
	for d, body := range docs {
		ix.AddText(d, body)
	}
	return ix.Compact()
}

func testConcepts() []index.Concept {
	return []index.Concept{
		{"lenovo": 1, "dell": 0.9, "hewlett": 0.8},
		{"nba": 1, "olympics": 0.9, "basketball": 0.7},
		{"partnership": 1, "alliance": 0.8, "deal": 0.6},
	}
}

// bruteForce ranks every document by re-deriving its lists directly
// from the compacted index — the reference the engine must agree with.
// It reuses one kernel across all documents, exactly like an engine
// worker, cloning kept sets out of the kernel's buffer.
func bruteForce(c *index.Compact, concepts []index.Concept, jn KernelFactory, k int) []DocResult {
	var out []DocResult
	kern := jn()
	for d := 0; d < c.Docs(); d++ {
		lists := c.QueryLists(d, concepts)
		if !lists.Complete() {
			continue
		}
		kern.Reset(nil, lists)
		set, score, ok := kern.Join()
		if ok {
			out = append(out, DocResult{Doc: d, Score: score, Set: set.Clone()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

func TestSearchMatchesBruteForce(t *testing.T) {
	c := buildCompact(t, testCorpus(120, 7))
	e := New(c, Config{Workers: 4})
	for name, jn := range map[string]Joiner{
		"win":      WINJoiner(scorefn.ExpWIN{Alpha: 0.1}),
		"med":      MEDJoiner(scorefn.ExpMED{Alpha: 0.1}),
		"max":      MAXJoiner(scorefn.SumMAX{Alpha: 0.1}),
		"validmed": ValidMEDJoiner(scorefn.ExpMED{Alpha: 0.1}),
	} {
		want := bruteForce(c, testConcepts(), jn, 5)
		res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: jn, K: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Partial {
			t.Errorf("%s: unexpected partial result", name)
		}
		if len(res.Docs) != len(want) {
			t.Fatalf("%s: got %d docs, want %d", name, len(res.Docs), len(want))
		}
		for i := range want {
			got := res.Docs[i]
			if got.Doc != want[i].Doc || got.Score != want[i].Score {
				t.Errorf("%s: rank %d: got doc %d score %v, want doc %d score %v",
					name, i, got.Doc, got.Score, want[i].Doc, want[i].Score)
			}
		}
	}
}

func TestRepeatQueryHitsCacheAndSkipsDecoding(t *testing.T) {
	c := buildCompact(t, testCorpus(200, 11))
	e := New(c, Config{Workers: 2})
	q := Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3}

	first, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	cold := e.Stats()
	if cold.ConceptMisses == 0 {
		t.Fatal("cold query recorded no concept-cache misses")
	}
	if cold.ConceptHits != 0 || cold.ListHits != 0 {
		t.Errorf("cold query recorded cache hits: concepts %d, lists %d", cold.ConceptHits, cold.ListHits)
	}
	second, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	warm := e.Stats()
	if warm.ConceptMisses != cold.ConceptMisses || warm.ListMisses != cold.ListMisses {
		t.Errorf("warm query decoded postings: misses went %d/%d -> %d/%d",
			cold.ConceptMisses, cold.ListMisses, warm.ConceptMisses, warm.ListMisses)
	}
	if warm.ConceptHits <= cold.ConceptHits {
		t.Errorf("warm query recorded no concept-cache hits: %d -> %d", cold.ConceptHits, warm.ConceptHits)
	}
	if warm.ListHits <= cold.ListHits {
		t.Errorf("warm query recorded no list-cache hits: %d -> %d", cold.ListHits, warm.ListHits)
	}
	if len(first.Docs) != len(second.Docs) {
		t.Fatalf("cached result differs in length: %d vs %d", len(first.Docs), len(second.Docs))
	}
	for i := range first.Docs {
		if first.Docs[i].Doc != second.Docs[i].Doc || first.Docs[i].Score != second.Docs[i].Score {
			t.Errorf("cached result differs at rank %d: %+v vs %+v", i, first.Docs[i], second.Docs[i])
		}
	}
}

func TestCacheEvictionStillCorrect(t *testing.T) {
	c := buildCompact(t, testCorpus(150, 3))
	// A cache too small for even one concept's documents forces
	// constant eviction; answers must not change.
	e := New(c, Config{Workers: 2, CacheLists: 4, CacheConcepts: 1})
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	want := bruteForce(c, testConcepts(), jn, 4)
	for round := 0; round < 3; round++ {
		res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: jn, K: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Docs[i].Doc != want[i].Doc || res.Docs[i].Score != want[i].Score {
				t.Fatalf("round %d rank %d: got %+v, want %+v", round, i, res.Docs[i], want[i])
			}
		}
	}
}

func TestDeadlineReturnsPartial(t *testing.T) {
	c := buildCompact(t, testCorpus(300, 5))
	e := New(c, Config{Workers: 2})
	slow := KernelFactory(func() join.Kernel {
		return join.KernelFunc(func(ls match.Lists) (match.Set, float64, bool) {
			time.Sleep(2 * time.Millisecond)
			return join.MED(scorefn.ExpMED{Alpha: 0.1}, ls)
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res, err := e.Search(ctx, Query{Concepts: testConcepts(), Join: slow, K: 5})
	if err != nil {
		t.Fatalf("deadline must not be an error: %v", err)
	}
	if !res.Partial {
		t.Fatalf("expected partial result, evaluated %d of %d", res.Evaluated, res.Candidates)
	}
	if res.Evaluated >= res.Candidates {
		t.Errorf("partial result evaluated everything: %d of %d", res.Evaluated, res.Candidates)
	}
	st := e.Stats()
	if st.DeadlineHits == 0 {
		t.Error("deadline hit not counted")
	}
	if st.PartialResults == 0 {
		t.Error("partial result not counted")
	}
}

func TestCanceledContextReturnsImmediately(t *testing.T) {
	c := buildCompact(t, testCorpus(100, 9))
	e := New(c, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Search(ctx, Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1})})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Evaluated != 0 {
		t.Errorf("canceled query: partial=%v evaluated=%d; want partial, 0", res.Partial, res.Evaluated)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	c := buildCompact(t, testCorpus(150, 13))
	jn := MAXJoiner(scorefn.SumMAX{Alpha: 0.1})
	var base []DocResult
	for _, workers := range []int{1, 2, 8} {
		e := New(c, Config{Workers: workers})
		res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: jn, K: 6})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res.Docs
			continue
		}
		if len(res.Docs) != len(base) {
			t.Fatalf("workers=%d: %d docs vs %d", workers, len(res.Docs), len(base))
		}
		for i := range base {
			if res.Docs[i].Doc != base[i].Doc || res.Docs[i].Score != base[i].Score {
				t.Errorf("workers=%d rank %d: %+v vs %+v", workers, i, res.Docs[i], base[i])
			}
		}
	}
}

func TestConcurrentSearches(t *testing.T) {
	c := buildCompact(t, testCorpus(150, 17))
	e := New(c, Config{Workers: 4})
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	want := bruteForce(c, testConcepts(), jn, 3)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: jn, K: 3})
			if err == nil {
				for i := range want {
					if res.Docs[i].Doc != want[i].Doc {
						err = fmt.Errorf("rank %d: doc %d, want %d", i, res.Docs[i].Doc, want[i].Doc)
						break
					}
				}
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

func TestMalformedQueries(t *testing.T) {
	e := New(buildCompact(t, testCorpus(10, 1)), Config{})
	if _, err := e.Search(context.Background(), Query{Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1})}); err == nil {
		t.Error("no concepts accepted")
	}
	if _, err := e.Search(context.Background(), Query{Concepts: testConcepts()}); err == nil {
		t.Error("nil joiner accepted")
	}
	// A concept with no corpus occurrences yields an empty, complete
	// result, not an error.
	res, err := e.Search(context.Background(), Query{
		Concepts: []index.Concept{{"xenon-nowhere": 1}},
		Join:     MEDJoiner(scorefn.ExpMED{Alpha: 0.1}),
	})
	if err != nil || len(res.Docs) != 0 || res.Partial {
		t.Errorf("vacuous query: %v, %+v", err, res)
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := index.Concept{"alpha": 1, "beta": 0.5, "gamma": 0.25}
	b := index.Concept{}
	for w, s := range a { // different construction order
		b[w] = s
	}
	if index.ConceptKey(a) != index.ConceptKey(b) {
		t.Error("equal concepts fingerprint differently")
	}
	for _, other := range []index.Concept{
		{"alpha": 1, "beta": 0.5},
		{"alpha": 1, "beta": 0.5, "gamma": 0.26},
		{"alpha": 1, "beta": 0.5, "delta": 0.25},
	} {
		if index.ConceptKey(a) == index.ConceptKey(other) {
			t.Errorf("distinct concepts %v and %v collide", a, other)
		}
	}
}

func TestStatsAndExpvar(t *testing.T) {
	c := buildCompact(t, testCorpus(80, 21))
	e := New(c, Config{Workers: 2})
	if err := e.Publish("bestjoin.engine.test"); err != nil {
		t.Fatal(err)
	}
	if err := e.Publish("bestjoin.engine.test"); err == nil {
		t.Error("duplicate expvar publish did not error")
	}
	if _, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: WINJoiner(scorefn.ExpWIN{Alpha: 0.1})}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Queries != 1 || st.JoinsRun == 0 || st.DocsEvaluated == 0 {
		t.Errorf("stats after one query: %+v", st)
	}
	if st.QueryLatency.Count != 1 {
		t.Errorf("latency histogram count %d, want 1", st.QueryLatency.Count)
	}
	// The expvar payload must be valid JSON mirroring Stats.
	var decoded Stats
	if err := json.Unmarshal([]byte(expvar.Get("bestjoin.engine.test").String()), &decoded); err != nil {
		t.Fatalf("expvar payload is not JSON: %v", err)
	}
	if decoded.Queries == 0 {
		t.Error("expvar snapshot lost query count")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	for _, d := range []time.Duration{0, time.Microsecond, 3 * time.Microsecond, time.Millisecond, 2 * time.Second} {
		h.observe(d)
	}
	snap := h.snapshot()
	if snap.Count != 5 {
		t.Fatalf("count %d, want 5", snap.Count)
	}
	var total uint64
	last := -1
	for _, b := range snap.Buckets {
		total += b.Count
		upper := int(b.UpperMicros)
		if b.UpperMicros == 0 {
			upper = 1 << 62 // overflow bucket sorts last
		}
		if upper <= last {
			t.Errorf("buckets not ascending: %v", snap.Buckets)
		}
		last = upper
	}
	if total != snap.Count {
		t.Errorf("bucket sum %d != count %d", total, snap.Count)
	}
	if snap.MeanMicros <= 0 {
		t.Errorf("mean %v not positive", snap.MeanMicros)
	}
}

func TestLRUBasics(t *testing.T) {
	c := newLRU[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	c.Put(3, "c") // evicts 2 (1 was refreshed by the Get)
	if _, ok := c.Get(2); ok {
		t.Error("LRU kept the least recently used entry")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("LRU evicted the recently used entry")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Len after Reset = %d", c.Len())
	}
}
