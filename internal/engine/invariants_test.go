package engine

import "testing"

// assertResultInvariants checks the Result accounting contract shared
// by every evaluation path, the audit behind the Partial derivation in
// finish(): each confirmed candidate is evaluated, pruned, or failed
// at most once — the sum can never exceed Candidates — and a result
// claiming to be complete (!Partial) accounted for every candidate
// exactly once. Partial ⇔ shortfall or cancellation; cancellation is
// not observable from a Result alone, so the reverse direction asserts
// only that a non-partial result has no shortfall. Keeping finish()'s
// `!=` comparison (rather than `<`) means a double-count would surface
// here as an over-full complete result, not vanish into Partial.
func assertResultInvariants(t *testing.T, label string, res *Result) {
	t.Helper()
	if res.Evaluated < 0 || res.Pruned < 0 || res.Failed < 0 || res.Candidates < 0 {
		t.Fatalf("%s: negative accounting: %+v", label, res)
	}
	sum := res.Evaluated + res.Pruned + res.Failed
	if sum > res.Candidates {
		t.Fatalf("%s: Evaluated(%d)+Pruned(%d)+Failed(%d) = %d exceeds Candidates %d — a document was double-counted",
			label, res.Evaluated, res.Pruned, res.Failed, sum, res.Candidates)
	}
	if !res.Partial && sum != res.Candidates {
		t.Fatalf("%s: complete result with accounting shortfall: Evaluated(%d)+Pruned(%d)+Failed(%d) = %d != Candidates %d",
			label, res.Evaluated, res.Pruned, res.Failed, sum, res.Candidates)
	}
}
