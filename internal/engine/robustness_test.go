package engine

// Robustness tests for the fault-tolerance layer: panic isolation
// (kernel and factory panics degrade one query, never crash the
// process), admission control (shed and block policies), hot index
// swap, and prompt cancellation inside corpus-wide decodes. The chaos
// differential harness (chaos_test.go, -tags faultinject) extends
// these with injected faults; this file needs no build tag and runs
// in every `go test`.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// assertSoundSubset asserts that got is a sound subset of the full
// healthy ranking: every returned document appears in full with a
// bitwise-identical score and matchset, and relative order is
// preserved. This is the degraded-result contract — dropped documents
// are allowed, mis-scored ones never.
func assertSoundSubset(t *testing.T, label string, got, full []DocResult) {
	t.Helper()
	rank := make(map[int]int, len(full))
	for i, d := range full {
		rank[d.Doc] = i
	}
	prev := -1
	for i, d := range got {
		r, ok := rank[d.Doc]
		if !ok {
			t.Fatalf("%s: rank %d doc %d not in the healthy ranking at all", label, i, d.Doc)
		}
		ref := full[r]
		if d.Score != ref.Score {
			t.Fatalf("%s: doc %d score %v, healthy ranking has %v", label, d.Doc, d.Score, ref.Score)
		}
		if len(d.Set) != len(ref.Set) {
			t.Fatalf("%s: doc %d matchset %v, healthy ranking has %v", label, d.Doc, d.Set, ref.Set)
		}
		for j := range d.Set {
			if d.Set[j] != ref.Set[j] {
				t.Fatalf("%s: doc %d matchset %v, healthy ranking has %v", label, d.Doc, d.Set, ref.Set)
			}
		}
		if r <= prev {
			t.Fatalf("%s: doc %d ranked out of order relative to the healthy ranking", label, d.Doc)
		}
		prev = r
	}
}

// flakyFactory wraps a kernel factory so that join invocations whose
// global ordinal satisfies panicOn panic instead of evaluating.
func flakyFactory(inner KernelFactory, calls *atomic.Int64, panicOn func(n int64) bool) KernelFactory {
	return func() join.Kernel {
		k := inner()
		return join.KernelFunc(func(ls match.Lists) (match.Set, float64, bool) {
			if panicOn(calls.Add(1)) {
				panic("injected kernel panic")
			}
			k.Reset(nil, ls)
			return k.Join()
		})
	}
}

// blockingFactory returns a factory whose kernels park on release,
// closing entered on the first invocation — the tool for pinning a
// query inside the engine while the test probes admission control or
// swaps the index.
func blockingFactory(entered chan<- struct{}, release <-chan struct{}) KernelFactory {
	var once atomic.Bool
	med := scorefn.ExpMED{Alpha: 0.1}
	return func() join.Kernel {
		return join.KernelFunc(func(ls match.Lists) (match.Set, float64, bool) {
			if once.CompareAndSwap(false, true) {
				close(entered)
			}
			<-release
			return join.MED(med, ls)
		})
	}
}

func TestKernelPanicIsolatedToOneDocument(t *testing.T) {
	c := buildCompact(t, testCorpus(150, 21))
	e := New(c, Config{Workers: 4})
	inner := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	full := bruteForce(c, testConcepts(), inner, c.Docs())

	var calls atomic.Int64
	flaky := flakyFactory(inner, &calls, func(n int64) bool { return n%5 == 3 })
	res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: flaky, K: 8})
	if err != nil {
		t.Fatalf("panicking kernels must degrade, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set despite kernel panics")
	}
	if res.Failed == 0 {
		t.Fatal("Failed is zero despite kernel panics")
	}
	if res.Partial {
		t.Errorf("degraded-but-complete query marked Partial (evaluated %d + failed %d of %d)",
			res.Evaluated, res.Failed, res.Candidates)
	}
	if got := res.Evaluated + res.Pruned + res.Failed; got != res.Candidates {
		t.Errorf("accounting: evaluated+pruned+failed = %d, candidates = %d", got, res.Candidates)
	}
	assertSoundSubset(t, "kernel-panic", res.Docs, full)
	st := e.Stats()
	if st.JoinPanics == 0 {
		t.Error("recovered panics not counted in Stats().JoinPanics")
	}
	if st.DegradedResults == 0 {
		t.Error("degraded query not counted in Stats().DegradedResults")
	}

	// The engine must be fully healthy afterwards: the same query with
	// the sane kernel gives the exact brute-force answer.
	clean, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: inner, K: 8})
	if err != nil || clean.Degraded || clean.Partial {
		t.Fatalf("engine unhealthy after recovered panics: %v %+v", err, clean)
	}
	assertSoundSubset(t, "after-recovery", clean.Docs, full)
	if len(clean.Docs) != 8 {
		t.Fatalf("after recovery got %d docs, want 8", len(clean.Docs))
	}
}

func TestFactoryPanicDegradesQuery(t *testing.T) {
	c := buildCompact(t, testCorpus(80, 23))
	e := New(c, Config{Workers: 2})
	bad := KernelFactory(func() join.Kernel { panic("no kernels today") })
	res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: bad, K: 5})
	if err != nil {
		t.Fatalf("panicking factory must degrade, not error: %v", err)
	}
	if !res.Degraded || res.Failed != res.Candidates || len(res.Docs) != 0 {
		t.Fatalf("want all %d candidates failed with empty docs, got %+v", res.Candidates, res)
	}
	if res.Partial {
		t.Error("fully-failed query is accounted for, must not be Partial")
	}
}

func TestEveryJoinPanicsStillCompletes(t *testing.T) {
	c := buildCompact(t, testCorpus(80, 25))
	e := New(c, Config{Workers: 3})
	var calls atomic.Int64
	always := flakyFactory(MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), &calls, func(int64) bool { return true })
	res, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: always, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Failed != res.Candidates || len(res.Docs) != 0 {
		t.Fatalf("want all %d candidates failed, got %+v", res.Candidates, res)
	}
}

func TestAdmissionShed(t *testing.T) {
	c := buildCompact(t, testCorpus(60, 27))
	e := New(c, Config{Workers: 1, MaxInFlight: 1, Overload: OverloadShed})

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := e.Search(context.Background(),
			Query{Concepts: testConcepts(), Join: blockingFactory(entered, release), K: 3})
		done <- err
	}()
	<-entered

	_, err := e.Search(context.Background(),
		Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query at the cap: err = %v, want ErrOverloaded", err)
	}
	st := e.Stats()
	if st.Shed != 1 {
		t.Errorf("Stats().Shed = %d, want 1", st.Shed)
	}
	if st.InFlight != 1 {
		t.Errorf("Stats().InFlight = %d, want 1", st.InFlight)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked query failed: %v", err)
	}
	if _, err := e.Search(context.Background(),
		Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3}); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

func TestAdmissionBlockHonorsContext(t *testing.T) {
	c := buildCompact(t, testCorpus(60, 29))
	e := New(c, Config{Workers: 1, MaxInFlight: 1}) // OverloadBlock default

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := e.Search(context.Background(),
			Query{Concepts: testConcepts(), Join: blockingFactory(entered, release), K: 3})
		done <- err
	}()
	<-entered

	// A waiter whose context expires gets ErrOverloaded carrying the
	// context cause.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.Search(ctx, Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3})
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter: err = %v, want ErrOverloaded wrapping DeadlineExceeded", err)
	}

	// A patient waiter is admitted once the slot frees.
	waited := make(chan error, 1)
	go func() {
		_, err := e.Search(context.Background(),
			Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3})
		waited <- err
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked query failed: %v", err)
	}
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("patient waiter failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("patient waiter never admitted after the slot freed")
	}
}

func TestSwapIndexServesNewIndexWithoutStaleCache(t *testing.T) {
	a := buildCompact(t, testCorpus(60, 31))
	b := buildCompact(t, testCorpus(90, 33))
	e := New(a, Config{Workers: 2})
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	q := Query{Concepts: testConcepts(), Join: jn, K: 50}

	wantA := bruteForce(a, testConcepts(), jn, 50)
	resA, err := e.Search(context.Background(), q) // populates caches under epoch 0
	if err != nil {
		t.Fatal(err)
	}
	assertSoundSubset(t, "pre-swap", resA.Docs, wantA)
	if len(resA.Docs) != len(wantA) {
		t.Fatalf("pre-swap: %d docs, want %d", len(resA.Docs), len(wantA))
	}

	e.SwapIndex(b)
	if e.Index() != b {
		t.Fatal("Index() does not return the swapped-in index")
	}
	wantB := bruteForce(b, testConcepts(), jn, 50)
	resB, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertSoundSubset(t, "post-swap", resB.Docs, wantB)
	if len(resB.Docs) != len(wantB) {
		t.Fatalf("post-swap: %d docs, want %d (stale cache?)", len(resB.Docs), len(wantB))
	}
	if st := e.Stats(); st.IndexReloads != 1 {
		t.Errorf("Stats().IndexReloads = %d, want 1", st.IndexReloads)
	}
}

func TestSwapIndexInFlightQueryFinishesOnOldSnapshot(t *testing.T) {
	a := buildCompact(t, testCorpus(60, 35))
	b := buildCompact(t, []string{"unrelated corpus with none of the concept words"})
	e := New(a, Config{Workers: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	type out struct {
		res *Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := e.Search(context.Background(),
			Query{Concepts: testConcepts(), Join: blockingFactory(entered, release), K: 3})
		done <- out{res, err}
	}()
	<-entered
	e.SwapIndex(b) // the in-flight query must not notice
	close(release)
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Candidates == 0 || len(o.res.Docs) == 0 {
		t.Fatalf("in-flight query lost its snapshot on swap: %+v", o.res)
	}
	// New queries see the swapped-in (conceptless) index.
	res, err := e.Search(context.Background(),
		Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 3})
	if err != nil || res.Candidates != 0 {
		t.Fatalf("post-swap query: err=%v candidates=%d, want 0", err, res.Candidates)
	}
}

// TestCancelledContextAbandonsDecode pins the decode-cancellation fix:
// a query cancelled while corpus-wide posting decodes are running must
// return promptly with Partial, not finish multi-million-posting
// merges nobody will read. The corpus is large enough that decoding
// all concepts takes visible time; the budget is generous enough to
// stay robust on slow CI.
func TestCancelledContextAbandonsDecode(t *testing.T) {
	c := buildCompact(t, testCorpus(4000, 37))
	e := New(c, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	startQ := time.Now()
	res, err := e.Search(ctx, Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 5})
	elapsed := time.Since(startQ)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("cancelled-during-decode query not marked Partial")
	}
	if res.Evaluated != 0 || len(res.Docs) != 0 {
		t.Errorf("cancelled query produced work: %+v", res)
	}
	// Decoding this corpus takes far longer than the cancellation
	// stride; a second is pure slack for CI noise.
	if elapsed > time.Second {
		t.Errorf("cancelled query took %v; decode did not honor cancellation", elapsed)
	}
	// The abandoned decode must not have poisoned the caches: the same
	// query with a live context is complete and correct.
	full, err := e.Search(context.Background(), Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 5})
	if err != nil || full.Partial || full.Degraded {
		t.Fatalf("engine unhealthy after abandoned decode: %v %+v", err, full)
	}
	want := bruteForce(c, testConcepts(), MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), 5)
	assertSoundSubset(t, "after-abandoned-decode", full.Docs, want)
	if len(full.Docs) != len(want) {
		t.Fatalf("after abandoned decode: %d docs, want %d", len(full.Docs), len(want))
	}
}

// TestCorruptConceptMetaDegrades is the metadata twin of the corrupt
// postings test: a concept whose registered doc-max summary bytes are
// corrupt makes index.Compact.ConceptMeta panic, and the engine's
// metadata lookup must contain that panic as a degraded query, not a
// crash, counting it in DecodeFailures.
func TestCorruptConceptMetaDegrades(t *testing.T) {
	c := buildCompact(t, testCorpus(40, 39))
	for _, cc := range testConcepts() {
		c.AddConceptMeta(cc)
	}
	index.CorruptConceptMetaForTest(c, testConcepts()[0])
	e := New(c, Config{Workers: 2})
	res, err := e.Search(context.Background(),
		Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 5})
	if err != nil {
		t.Fatalf("corrupt metadata must degrade, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set for corrupt concept metadata")
	}
	if st := e.Stats(); st.DecodeFailures == 0 {
		t.Error("metadata decode failure not counted in Stats().DecodeFailures")
	}
}

// TestDecodePanicOnCorruptIndexDegrades feeds the engine an index
// whose postings bytes have been corrupted in memory so the decode
// path panics, and asserts the query degrades to an empty sound
// answer instead of crashing.
func TestDecodePanicOnCorruptIndexDegrades(t *testing.T) {
	c := buildCompact(t, testCorpus(40, 39))
	index.CorruptPostingsForTest(c, "lenovo")
	e := New(c, Config{Workers: 2})
	res, err := e.Search(context.Background(),
		Query{Concepts: testConcepts(), Join: MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 5})
	if err != nil {
		t.Fatalf("corrupt concept must degrade, not error: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set for a corrupt concept decode")
	}
	if len(res.Docs) != 0 {
		t.Fatalf("corrupt concept produced documents: %+v", res.Docs)
	}
	if st := e.Stats(); st.DecodeFailures == 0 {
		t.Error("decode failure not counted in Stats().DecodeFailures")
	}
	// Concepts not touching the corrupt list still work.
	ok, err := e.Search(context.Background(), Query{
		Concepts: []index.Concept{{"nba": 1, "olympics": 0.9}},
		Join:     MEDJoiner(scorefn.ExpMED{Alpha: 0.1}), K: 5,
	})
	if err != nil || ok.Degraded {
		t.Fatalf("healthy concept degraded by unrelated corruption: %v %+v", err, ok)
	}
}
