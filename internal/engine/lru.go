package engine

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded least-recently-used cache. The engine
// keeps two: decoded per-(document, concept) match lists, and
// per-concept candidate document sets. Both are read and written from
// Search, which may run concurrently from many goroutines, so every
// operation takes the lock.
//
// Eviction is by entry count (cap) and, when a cost function is
// installed (newLRUBytes), additionally by total cost: cached match
// lists vary by orders of magnitude in size, so an entry-count cap
// alone can pin anywhere from kilobytes to gigabytes. The byte bound
// is hard — eviction runs until the total fits, even if that evicts
// the entry just inserted — so the cache can never exceed it.
type lruCache[K comparable, V any] struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64         // 0 = unbounded (entry-count mode only)
	cost     func(V) int64 // nil when maxBytes == 0
	bytes    int64         // current total cost
	order    *list.List    // front = most recently used
	items    map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	return &lruCache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// newLRUBytes is newLRU with an additional total-cost bound: cost is
// charged per value on insert and refunded on eviction.
func newLRUBytes[K comparable, V any](capacity int, maxBytes int64, cost func(V) int64) *lruCache[K, V] {
	c := newLRU[K, V](capacity)
	c.maxBytes = maxBytes
	c.cost = cost
	return c
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Put inserts or refreshes a value, evicting least recently used
// entries while over the entry cap or the byte bound.
func (c *lruCache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		ent := el.Value.(*lruEntry[K, V])
		if c.cost != nil {
			c.bytes += c.cost(v) - c.cost(ent.val)
		}
		ent.val = v
		c.order.MoveToFront(el)
		c.evict()
		return
	}
	if c.cost != nil {
		c.bytes += c.cost(v)
	}
	c.items[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	c.evict()
}

// evict drops least-recently-used entries until both bounds hold.
// Called with mu held.
func (c *lruCache[K, V]) evict() {
	for c.order.Len() > 0 && (c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		ent := oldest.Value.(*lruEntry[K, V])
		if c.cost != nil {
			c.bytes -= c.cost(ent.val)
		}
		delete(c.items, ent.key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the current total cost of cached entries; always 0 in
// entry-count mode (no cost function to account with).
func (c *lruCache[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Reset drops every entry (used by benchmarks to measure cold paths).
func (c *lruCache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
	c.bytes = 0
}
