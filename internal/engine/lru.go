package engine

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded least-recently-used cache. The engine
// keeps two: decoded per-(document, concept) match lists, and
// per-concept candidate document sets. Both are read and written from
// Search, which may run concurrently from many goroutines, so every
// operation takes the lock.
type lruCache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lruCache[K, V] {
	return &lruCache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *lruCache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Reset drops every entry (used by benchmarks to measure cold paths).
func (c *lruCache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}
