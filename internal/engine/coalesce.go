package engine

import (
	"sync"

	"bestjoin/internal/match"
)

// Cross-query decode coalescing: a singleflight layer in front of the
// block decode path. Concurrent queries sharing a concept — the common
// shape of a hot-topic traffic spike — all miss the list cache for the
// same block at once and, without coalescing, each performs its own
// identical decode. The flight group collapses those misses: the first
// goroutine to miss a (epoch, block, concept) key becomes the leader
// and decodes; every other goroutine arriving before the decode
// completes becomes a waiter and receives the leader's result. Decoded
// blocks are immutable once published (the cache hands out shared
// slices already), so sharing the leader's slices is exactly as safe
// as a cache hit.
//
// Soundness under failure and cancellation:
//
//   - A leader that fails (corrupt bytes, injected panic) completes
//     the flight with ok=false; waiters degrade their own queries —
//     the same outcome as decoding the corrupt bytes themselves —
//     without double-counting the underlying decode failure.
//   - The flight is completed in a defer, so no leader outcome
//     (including a panic recovered inside decodeBlock) can leave
//     waiters blocked forever.
//   - A waiter whose own context expires abandons the flight without
//     touching the shared call: cancellation of one query can never
//     poison the result every other waiter is about to receive.
//
// Stats().CoalescedDecodes counts decodes avoided (waiters served by a
// leader's result); Stats().DecodeWaits counts the waits themselves,
// including those that ended in cancellation or a shared failure.

// flightCall is one in-flight block decode: the leader publishes the
// decoded block (or ok=false) and closes done; the channel close is
// the happens-before edge that makes the result fields safe to read.
type flightCall struct {
	done  chan struct{}
	docs  []int
	lists []match.List
	ok    bool
}

// flightGroup deduplicates concurrent decodes of the same block. Keys
// reuse listKey — the same (epoch, block, concept) identity the list
// cache uses — so a flight can never conflate two distinct blocks.
type flightGroup struct {
	mu sync.Mutex
	m  map[listKey]*flightCall
}

// fetchCoalesced is the cache-miss path with coalescing on: join (or
// lead) the flight for key. The leader decodes, populates the list
// cache, and publishes to every waiter; the flight entry is removed
// before done closes, and the cache was populated before that, so a
// later miss on the same key hits the cache rather than re-decoding.
func (e *Engine) fetchCoalesced(qs *queryState, cd *conceptData, blk int, key listKey) ([]int, []match.List, bool) {
	e.flights.mu.Lock()
	if c, inFlight := e.flights.m[key]; inFlight {
		e.flights.mu.Unlock()
		e.counters.decodeWaits.Add(1)
		select {
		case <-c.done:
		case <-qs.ctx.Done():
			// Abandon the flight; the shared call is untouched, so the
			// leader and the other waiters are unaffected.
			return nil, nil, false
		}
		if !c.ok {
			// The leader hit corrupt bytes (or an injected fault). This
			// query would have failed the same way decoding itself;
			// degrade it without re-counting the leader's failure.
			qs.degraded.Store(true)
			return nil, nil, false
		}
		e.counters.coalescedDecodes.Add(1)
		cd.fetched[blk/64].Or(1 << (blk % 64))
		return c.docs, c.lists, true
	}
	c := &flightCall{done: make(chan struct{})}
	e.flights.m[key] = c
	e.flights.mu.Unlock()
	// Complete the flight unconditionally: whatever happens below
	// (decodeBlock recovers its own panics), waiters always wake.
	defer func() {
		e.flights.mu.Lock()
		delete(e.flights.m, key)
		e.flights.mu.Unlock()
		close(c.done)
	}()
	e.counters.listMisses.Add(1)
	docs, lists, ok := e.decodeBlock(qs, cd, blk)
	if !ok {
		return nil, nil, false // c.ok stays false: waiters degrade
	}
	cd.fetched[blk/64].Or(1 << (blk % 64))
	// Publish to the cache before the deferred flight removal: a miss
	// that arrives after the flight disappears finds the cache warm.
	e.lists.Put(key, listEntry{docs: docs, lists: lists})
	c.docs, c.lists, c.ok = docs, lists, true
	return docs, lists, true
}
