package engine

import (
	"math"
	"sync/atomic"
)

// GlobalFloor is a monotone pruning floor shared by several top-k
// heaps — the cross-shard half of the engine's lossless pruning story
// (Query.Floor documents the soundness argument). It only ever rises:
// Raise keeps the maximum of everything offered, so every consumer's
// strictly-below-floor skip is justified by real kept documents
// somewhere in the fleet, exactly as with a query-local floor.
type GlobalFloor struct {
	bits atomic.Uint64 // math.Float64bits of the current floor
}

// NewGlobalFloor returns a floor at -Inf: the state in which nothing
// prunes.
func NewGlobalFloor() *GlobalFloor {
	g := &GlobalFloor{}
	g.bits.Store(math.Float64bits(math.Inf(-1)))
	return g
}

// Load returns the current floor.
func (g *GlobalFloor) Load() float64 {
	return math.Float64frombits(g.bits.Load())
}

// Raise lifts the floor to f if f is higher; lower or equal offers
// are no-ops. Concurrent raises linearize on a CAS loop, so the floor
// is monotone non-decreasing under any interleaving.
func (g *GlobalFloor) Raise(f float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= f {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(f)) {
			return
		}
	}
}
