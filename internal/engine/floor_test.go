package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

func TestGlobalFloorMonotone(t *testing.T) {
	g := NewGlobalFloor()
	if f := g.Load(); !math.IsInf(f, -1) {
		t.Fatalf("fresh floor = %v, want -Inf", f)
	}
	g.Raise(1.5)
	if f := g.Load(); f != 1.5 {
		t.Fatalf("after Raise(1.5): %v", f)
	}
	g.Raise(0.5) // lower: no-op
	if f := g.Load(); f != 1.5 {
		t.Fatalf("Raise(0.5) lowered the floor to %v", f)
	}
	g.Raise(1.5) // equal: no-op
	g.Raise(2.25)
	if f := g.Load(); f != 2.25 {
		t.Fatalf("after Raise(2.25): %v", f)
	}
}

func TestGlobalFloorConcurrentRaises(t *testing.T) {
	g := NewGlobalFloor()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Raise(float64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if f := g.Load(); f != 7999 {
		t.Fatalf("concurrent max lost: floor = %v, want 7999", f)
	}
}

// A heap coupled to a shared floor must publish its local floor rises
// and prune offers against the higher of the two floors.
func TestTopKSharedFloor(t *testing.T) {
	g := NewGlobalFloor()
	top := newTopK(2, g)
	top.offer(1, 5.0, match.Set{})
	top.offer(2, 4.0, match.Set{})
	// Heap full: local floor 4.0 must have been raised into the shared
	// floor for sibling heaps to see.
	if f := g.Load(); f != 4.0 {
		t.Fatalf("shared floor = %v, want 4.0", f)
	}
	// A sibling's stronger floor must screen this heap's weak offers.
	g.Raise(10.0)
	if f := top.Floor(); f != 10.0 {
		t.Fatalf("Floor() = %v, want shared 10.0", f)
	}
	top.offer(3, 6.0, match.Set{})
	res := top.results()
	if len(res) != 2 || res[0].Doc != 1 || res[1].Doc != 2 {
		t.Fatalf("offer below shared floor entered the heap: %+v", res)
	}
	// Equality with the shared floor must not prune: the doc-id
	// tie-break still matters to the merged result.
	top.offer(0, 10.0, match.Set{})
	res = top.results()
	if res[0].Doc != 0 || res[0].Score != 10.0 {
		t.Fatalf("equal-to-floor offer was pruned: %+v", res)
	}
}

func TestEngineHealthAndEpoch(t *testing.T) {
	idx := buildCompact(t, []string{"alpha beta", "beta gamma"})
	e := New(idx, Config{Workers: 1})
	h := e.Health()
	if !h.Ready || h.Epoch != 0 || h.Docs != 2 || len(h.Shards) != 0 {
		t.Fatalf("fresh Health = %+v", h)
	}
	if e.Epoch() != 0 {
		t.Fatalf("fresh Epoch = %d", e.Epoch())
	}
	e.SwapIndex(buildCompact(t, []string{"alpha"}))
	h = e.Health()
	if !h.Ready || h.Epoch != 1 || h.Docs != 1 {
		t.Fatalf("post-swap Health = %+v", h)
	}
	if e.Epoch() != 1 {
		t.Fatalf("post-swap Epoch = %d", e.Epoch())
	}
}

// SearchSnapshot must keep serving a pinned snapshot even after
// SwapIndex moves the engine on — the guarantee rolling shard reloads
// are built on.
func TestSearchSnapshotPinsEpoch(t *testing.T) {
	oldIdx := buildCompact(t, []string{
		"lenovo laptops",
		"no relevant words here",
	})
	e := New(oldIdx, Config{Workers: 2})
	q := Query{
		Concepts: []index.Concept{{"lenovo": 1.0}},
		Join:     WINJoiner(scorefn.ExpWIN{Alpha: 0.5}),
		K:        5,
	}
	pin := e.Snapshot()
	if pin.Epoch() != 0 || pin.Docs() != 2 {
		t.Fatalf("pinned snapshot = epoch %d docs %d", pin.Epoch(), pin.Docs())
	}

	// Swap to an index where the concept no longer matches anything.
	e.SwapIndex(buildCompact(t, []string{"nothing at all"}))

	res, err := e.SearchSnapshot(context.Background(), q, pin)
	if err != nil {
		t.Fatalf("SearchSnapshot: %v", err)
	}
	if len(res.Docs) != 1 || res.Docs[0].Doc != 0 {
		t.Fatalf("pinned search results = %+v, want doc 0 from the old index", res.Docs)
	}
	// The live path must see the new, empty index.
	live, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(live.Docs) != 0 {
		t.Fatalf("live search returned %+v from a swapped-out index", live.Docs)
	}
}

func TestSearchSnapshotZeroHandle(t *testing.T) {
	e := New(buildCompact(t, []string{"alpha"}), Config{Workers: 1})
	q := Query{Concepts: []index.Concept{{"alpha": 1.0}}, Join: WINJoiner(scorefn.ExpWIN{Alpha: 0.5})}
	if _, err := e.SearchSnapshot(context.Background(), q, Snapshot{}); err == nil {
		t.Fatal("zero Snapshot accepted")
	}
	var zero Snapshot
	if zero.Epoch() != 0 || zero.Docs() != 0 {
		t.Fatal("zero Snapshot reports non-zero epoch or docs")
	}
}

func TestPublishFuncDuplicate(t *testing.T) {
	e := New(buildCompact(t, []string{"alpha"}), Config{Workers: 1})
	const name = "bestjoin.engine.floor_test"
	if err := PublishFunc(name, e.Stats); err != nil {
		t.Fatalf("first PublishFunc: %v", err)
	}
	if err := PublishFunc(name, e.Stats); err == nil {
		t.Fatal("duplicate PublishFunc accepted")
	}
}
