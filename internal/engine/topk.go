package engine

import (
	"container/heap"
	"sort"
	"sync"

	"bestjoin/internal/match"
)

// topK is the query's global top-k document heap: a size-bounded
// min-heap guarded by a mutex, shared by every worker. The heap root
// is the currently weakest kept document, so most offers from losing
// documents are rejected after one comparison.
type topK struct {
	mu sync.Mutex
	k  int
	h  docHeap
}

func newTopK(k int) *topK {
	return &topK{k: k, h: make(docHeap, 0, k)}
}

// offer proposes a scored document. Ties are broken toward smaller
// document ids so concurrent schedules produce the same top-k. set may
// alias the worker's kernel-owned buffer, so offer clones it — but
// only once the document actually enters the heap; rejected offers
// (the common case) stay allocation-free.
func (t *topK) offer(doc int, score float64, set match.Set) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		heap.Push(&t.h, DocResult{Doc: doc, Score: score, Set: set.Clone()})
		return
	}
	worst := t.h[0]
	if score > worst.Score || (score == worst.Score && doc < worst.Doc) {
		t.h[0] = DocResult{Doc: doc, Score: score, Set: set.Clone()}
		heap.Fix(&t.h, 0)
	}
}

// results drains the heap into a best-first slice.
func (t *topK) results() []DocResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DocResult, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// docHeap is a min-heap by (score asc, doc desc): the root is the
// entry top-k would discard first.
type docHeap []DocResult

func (h docHeap) Len() int { return len(h) }
func (h docHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h docHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *docHeap) Push(x any)   { *h = append(*h, x.(DocResult)) }
func (h *docHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
