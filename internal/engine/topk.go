package engine

import (
	"container/heap"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"bestjoin/internal/match"
)

// topK is the query's global top-k document heap: a size-bounded
// min-heap guarded by a mutex, shared by every worker. The heap root
// is the currently weakest kept document, so most offers from losing
// documents are rejected after one comparison.
//
// The heap also publishes the pruning floor: the k-th best score once
// k documents are held, -Inf before that. It is stored as float bits
// in an atomic so the dispatcher and every worker can read it without
// taking the heap lock; because the kept set only ever improves, the
// floor is monotonically non-decreasing, which is what makes
// skip-if-bound-below-floor lossless (a document pruned against
// today's floor is rejected a fortiori by every later one).
type topK struct {
	mu    sync.Mutex
	k     int
	h     docHeap
	floor atomic.Uint64 // math.Float64bits of the current floor
	// shared, when non-nil, couples this heap to a fleet-wide floor
	// (Query.Floor): local floor rises are published to it, and Floor()
	// returns whichever of the two is higher. Sharing is sound because
	// both floors are monotone and every value either holds is the k-th
	// best score of real kept documents somewhere in the fleet.
	shared *GlobalFloor
}

func newTopK(k int, shared *GlobalFloor) *topK {
	t := &topK{k: k, h: make(docHeap, 0, k), shared: shared}
	t.floor.Store(math.Float64bits(math.Inf(-1)))
	return t
}

// Floor returns the current pruning floor: the weakest kept score once
// the heap is full (or the shared fleet floor, when higher), -Inf
// until then. Candidates whose score upper bound is strictly below the
// floor cannot enter the top-k; equality must never prune, because an
// equal-scoring document with a smaller id still displaces the weakest
// kept document.
func (t *topK) Floor() float64 {
	f := math.Float64frombits(t.floor.Load())
	if t.shared != nil {
		if g := t.shared.Load(); g > f {
			return g
		}
	}
	return f
}

// offer proposes a scored document. Ties are broken toward smaller
// document ids so concurrent schedules produce the same top-k.
//
// The hot path is the losing offer, so it is screened against the
// atomic floor before the mutex: a score strictly below the floor can
// never enter, and because the floor is monotone non-decreasing the
// lock-free read can only be more permissive than the state under the
// lock — never the reverse. Equal scores must still take the lock (a
// smaller doc id displaces the weakest kept entry). Offers that pass
// the screen clone the set before locking: set may alias the worker's
// kernel-owned buffer, and cloning outside the critical section keeps
// the allocation off the serialized path. A clone is wasted only when
// the offer loses a tie-break or a concurrent offer raises the floor
// past it — both rare.
func (t *topK) offer(doc int, score float64, set match.Set) {
	if score < t.Floor() {
		return
	}
	cloned := set.Clone()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.h) < t.k {
		heap.Push(&t.h, DocResult{Doc: doc, Score: score, Set: cloned})
		if len(t.h) == t.k {
			t.raiseFloor(t.h[0].Score)
		}
		return
	}
	worst := t.h[0]
	if score > worst.Score || (score == worst.Score && doc < worst.Doc) {
		t.h[0] = DocResult{Doc: doc, Score: score, Set: cloned}
		heap.Fix(&t.h, 0)
		t.raiseFloor(t.h[0].Score)
	}
}

// raiseFloor publishes a new local floor — the k-th best kept score —
// and, when the heap is coupled to a fleet, raises the shared floor to
// match: k real documents on this member score at least f, so the
// fleet's merged k-th best does too.
func (t *topK) raiseFloor(f float64) {
	t.floor.Store(math.Float64bits(f))
	if t.shared != nil {
		t.shared.Raise(f)
	}
}

// results drains the heap into a best-first slice.
func (t *topK) results() []DocResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]DocResult, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// docHeap is a min-heap by (score asc, doc desc): the root is the
// entry top-k would discard first.
type docHeap []DocResult

func (h docHeap) Len() int { return len(h) }
func (h docHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}
func (h docHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *docHeap) Push(x any)   { *h = append(*h, x.(DocResult)) }
func (h *docHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
