package engine

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/join"
	"bestjoin/internal/match"
)

// Disjunctive (OR / weak-AND / m-of-n) retrieval: a ranked-union
// evaluation path that advances the same leapfrog listCursors the
// conjunctive intersection uses, but in a WAND-style pivot loop over
// Fagin-threshold bounds. The walk repeatedly takes the m-th smallest
// cursor position as the pivot: cursors below it can never assemble m
// matches at their current documents, so they seek forward; once none
// sit below the pivot, at least m cursors sit exactly at the minimum —
// a confirmed candidate. Its aggregate score bound is the kernel's
// disjunctive cap (join.UnionBounded) over the matched cursors'
// per-list maxima — exact document maxima for flat concepts, block-max
// table entries for block-served ones. A pivot whose bound is strictly
// below the atomic top-k floor is skipped without assembling a single
// match list (never on equality: an equal-bound document can still win
// its tie-break on document id), and the walk then tries to jump the
// matched cursors over the whole remaining block range in one seek
// (see advance). Documents that survive the bound go to the shared
// worker pool, where block match areas are decoded lazily — only for
// documents that also survive the floor re-check at evaluation time.
//
// Soundness (DESIGN.md "Disjunctive retrieval & WAND soundness"): the
// per-cursor maxima dominate every match score the document can
// contribute, the union bound dominates the join over any subset of
// ≥ m matched lists, and the floor is monotone non-decreasing — so a
// pivot skipped against today's floor is rejected a fortiori by every
// later one. The differential suite (union_diff_test.go) proves the
// pruned union path bitwise-identical to the exhaustive ranked union.

// QueryMode selects how many of a query's concepts a candidate
// document must contain.
type QueryMode int

const (
	// ModeDefault defers to the engine's configured Config.Mode (which
	// itself defaults to ModeAND).
	ModeDefault QueryMode = iota
	// ModeAND requires every concept — conjunctive intersection, the
	// engine's historical behavior.
	ModeAND
	// ModeOR requires at least one concept (ranked union); combine
	// with Query.MinMatch for m-of-n weak-AND semantics. Concepts
	// absent from the corpus degrade the query to its surviving terms
	// instead of emptying the result.
	ModeOR
)

// unionCursor wraps a listCursor for the pivot walk: ci is the
// concept's position in the query (the bit it owns in docJob.mask),
// doc the cursor's current document (−1 once exhausted), suf a flat
// concept's suffix maxima (suf[i] = max over cd.maxSc[i:]), the range
// bound block jumps need.
type unionCursor struct {
	listCursor
	ci  int
	doc int
	suf []float64
}

// unionBounder wraps a kernel's disjunctive bound with panic
// containment: a bound that panics poisons only the bounding — the
// query continues unpruned, which is always sound.
type unionBounder struct {
	e      *Engine
	ub     join.UnionBounded
	failed bool
}

// unionBounderFor probes the query's kernel for join.UnionBounded,
// recovering a panicking factory to nil (no bound, exhaustive union).
func (e *Engine) unionBounderFor(factory KernelFactory) (b *unionBounder) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.joinPanics.Add(1)
			b = nil
		}
	}()
	if ub, ok := factory().(join.UnionBounded); ok {
		return &unionBounder{e: e, ub: ub}
	}
	return nil
}

// bound evaluates the kernel's disjunctive cap; a panic flips failed
// and yields +Inf, which never prunes.
func (b *unionBounder) bound(perListMax []float64, minMatch int) (v float64) {
	defer func() {
		if r := recover(); r != nil {
			b.e.counters.joinPanics.Add(1)
			b.failed = true
			v = math.Inf(1)
		}
	}()
	return b.ub.ScoreUnionUpperBound(perListMax, minMatch)
}

// searchUnion evaluates a disjunctive query: candidates are documents
// matching at least minMatch concepts, scored by the kernel over their
// matched lists only (compacted in concept order).
func (e *Engine) searchUnion(qs *queryState, q Query, cds []*conceptData, minMatch, k int, start time.Time) *Result {
	res := &Result{}

	// One cursor per living concept. A failed concept (corrupt
	// postings — the query is already Degraded) and an unknown concept
	// (no postings at all) alike contribute no cursor: the union
	// degrades to the surviving terms instead of returning nothing,
	// which is the point of disjunctive evaluation.
	bounding := e.prune
	alive := make([]*unionCursor, 0, len(cds))
	for ci, cd := range cds {
		if cd.failed {
			continue
		}
		if cd.blocks == nil {
			if len(cd.docs) == 0 {
				continue
			}
			if cd.maxSc == nil {
				bounding = false
			}
		}
		cu := &unionCursor{ci: ci}
		cu.cd = cd
		doc, ok := cu.seek(e, qs, 0)
		if !ok {
			continue
		}
		cu.doc = doc
		alive = append(alive, cu)
	}
	// Fewer surviving concepts than the match requirement: no document
	// can qualify. The answer is empty and complete (Degraded when a
	// concept failed rather than being absent).
	if len(alive) < minMatch {
		res.Docs = []DocResult{}
		return e.finish(qs, res, start)
	}

	// Probe the kernel for the disjunctive bound. Without one — or
	// with pruning disabled — every pivot carries a +Inf bound and the
	// loop degenerates to the exhaustive ranked union, which is always
	// sound (and is the differential baseline's evaluation order).
	var ub *unionBounder
	if bounding {
		if ub = e.unionBounderFor(q.Join); ub == nil {
			bounding = false
		}
	}
	if e.prune && !bounding {
		// A pruning engine running this union exhaustively — the kernel
		// has no disjunctive bound (e.g. the Weighted* scorefn families)
		// or a concept lacks maxima. Silent degradation is an
		// operational trap, so surface it in Stats().UnionUnpruned.
		e.counters.unionUnpruned.Add(1)
	}
	if bounding {
		for _, cu := range alive {
			if cu.cd.blocks == nil {
				cu.suf = suffixMax(cu.cd.maxSc)
			}
		}
	}

	top := newTopK(k, q.Floor)
	var evaluated, pruned atomic.Int64
	chunkCap := e.workers * e.queue / dispatchChunk
	if chunkCap < 1 {
		chunkCap = 1
	}
	jobs := make(chan []docJob, chunkCap)
	var wg sync.WaitGroup
	e.joinWorkers(qs, q.Join, cds, e.workers, jobs, top, &evaluated, &pruned, &wg)

	// The pivot walk. Unlike the conjunctive path the candidate count
	// is unknown upfront, so chunks are freshly allocated slices (the
	// workers may still hold shipped ones).
	chunk := make([]docJob, 0, dispatchChunk)
	ship := func() bool {
		select {
		case jobs <- chunk:
			e.counters.queueDepth.Add(int64(len(chunk)))
			chunk = make([]docJob, 0, dispatchChunk)
			return true
		case <-qs.ctx.Done():
			qs.cancelled = true
			return false
		}
	}
	flushFloor := top.Floor()
	scratch := make([]float64, 0, len(alive))
	atDoc := make([]*unionCursor, 0, len(alive))
	steps := 0
pivots:
	for len(alive) >= minMatch {
		if steps&31 == 0 {
			// Poll the context and refresh the dispatcher's floor on a
			// coarse stride, like the conjunctive dispatch loop.
			if qs.ctx.Err() != nil {
				qs.cancelled = true
				break pivots
			}
			flushFloor = top.Floor()
		}
		steps++
		d := mthSmallestDoc(alive, minMatch)
		progressed := false
		for i := 0; i < len(alive); {
			cu := alive[i]
			if cu.doc < d {
				progressed = true
				doc, ok := cu.seek(e, qs, d)
				if !ok {
					alive = append(alive[:i], alive[i+1:]...)
					continue
				}
				cu.doc = doc
			}
			i++
		}
		if progressed {
			continue
		}
		// Aligned: d is the minimum position and at least minMatch
		// cursors sit exactly on it — d provably matches ≥ m concepts,
		// and no cursor below d means no other concept can contribute.
		atDoc = atDoc[:0]
		for _, cu := range alive {
			if cu.doc == d {
				atDoc = append(atDoc, cu)
			}
		}
		bound := math.Inf(1)
		if bounding {
			scratch = scratch[:0]
			for _, cu := range atDoc {
				scratch = append(scratch, cu.maxAt())
			}
			bound = ub.bound(scratch, minMatch)
			if ub.failed {
				// The bound panicked mid-walk: the rest of this union
				// runs exhaustively, another silent-degradation case
				// worth a counter tick.
				bounding = false
				bound = math.Inf(1)
				e.counters.unionUnpruned.Add(1)
			}
		}
		res.Candidates++
		e.counters.unionCandidates.Add(1)
		if bound < flushFloor {
			// Pivot skip: the matched cursors' aggregate bound cannot
			// beat the floor, so d is pruned before a single match list
			// is assembled — and the walk may clear a whole block range
			// in the same move.
			pruned.Add(1)
			e.counters.prunedDocs.Add(1)
			e.counters.pivotSkips.Add(1)
			e.advanceUnion(qs, &alive, atDoc, d, flushFloor, minMatch, ub, scratch)
			continue
		}
		// Surviving candidate: assemble flat-served lists here (the
		// caches are touched single-threaded, as in conjunctive
		// dispatch); workers fill block-served slots lazily.
		var mask uint64
		lists := make(match.Lists, len(atDoc))
		ok := true
		for s, cu := range atDoc {
			mask |= 1 << uint(cu.ci)
			if cu.cd.blocks != nil {
				cu.mark()
				continue
			}
			l, lok := e.list(qs, cu.cd, d)
			if !lok {
				if qs.cancelled {
					break pivots
				}
				// Decode failure: drop this document, keep the query.
				qs.fail()
				ok = false
				break
			}
			lists[s] = l
		}
		if ok {
			chunk = append(chunk, docJob{doc: d, bound: bound, orig: bound, mask: mask, lists: lists})
			if len(chunk) == dispatchChunk && !ship() {
				break pivots
			}
		}
		seekUnion(e, qs, &alive, atDoc, d+1)
	}
	if len(chunk) > 0 {
		ship()
	}
	close(jobs)
	wg.Wait()

	e.countSkippedBlocks(cds)

	res.Docs = top.results()
	res.Evaluated = int(evaluated.Load())
	res.Pruned = int(pruned.Load())
	return e.finish(qs, res, start)
}

// advanceUnion moves the matched cursors past a skipped pivot — and,
// when the range bound allows, past the whole remaining block range in
// one seek. Over the range (d, jumpEnd], with jumpEnd capped by every
// matched block cursor's block end and by the first unmatched cursor's
// position, the matched cursors' range maxima (block MaxScore; flat
// suffix max past the current position) are constant upper bounds and
// no other concept can join. If even their union bound sits strictly
// below the floor, every document in the range loses a fortiori, so
// the walk seeks straight to jumpEnd+1 without confirming membership
// of anything in between — whole blocks pass with their match areas,
// and even their document directories, untouched. A pure-flat aligned
// set with no unmatched cursors has an unbounded range: a failing
// suffix bound there is Fagin-style early termination of the whole
// walk.
func (e *Engine) advanceUnion(qs *queryState, alive *[]*unionCursor, atDoc []*unionCursor,
	d int, floor float64, minMatch int, ub *unionBounder, scratch []float64) {
	target := d + 1
	if ub != nil && !ub.failed {
		jumpEnd := math.MaxInt
		for _, cu := range *alive {
			if cu.doc > d && cu.doc-1 < jumpEnd {
				jumpEnd = cu.doc - 1
			}
		}
		for _, cu := range atDoc {
			if cu.cd.blocks != nil {
				if last := cu.cd.blocks.bt.Infos[cu.blk].LastDoc; last < jumpEnd {
					jumpEnd = last
				}
			}
		}
		if jumpEnd > d {
			scratch = scratch[:0]
			for _, cu := range atDoc {
				if cu.cd.blocks != nil {
					scratch = append(scratch, cu.cd.blocks.bt.Infos[cu.blk].MaxScore)
				} else if v := cu.suf[cu.i+1]; !math.IsInf(v, -1) {
					// An exhausted-after-d flat cursor contributes no
					// document in the range; dropping its slot only
					// shrinks the bound's subset space, which is sound.
					scratch = append(scratch, v)
				}
			}
			// Jump when too few concepts can even appear in the range,
			// or when the range bound falls strictly below the floor.
			jump := len(scratch) < minMatch
			if !jump {
				jump = ub.bound(scratch, minMatch) < floor && !ub.failed
			}
			if jump {
				if target = jumpEnd + 1; jumpEnd == math.MaxInt {
					target = math.MaxInt // no overflow; exhausts the cursors
				}
			}
		}
	}
	seekUnion(e, qs, alive, atDoc, target)
}

// seekUnion advances every cursor in atDoc to the first document
// ≥ target, compacting exhausted cursors out of alive.
func seekUnion(e *Engine, qs *queryState, alive *[]*unionCursor, atDoc []*unionCursor, target int) {
	dropped := false
	for _, cu := range atDoc {
		doc, ok := cu.seek(e, qs, target)
		if !ok {
			cu.doc = -1
			dropped = true
			continue
		}
		cu.doc = doc
	}
	if !dropped {
		return
	}
	live := (*alive)[:0]
	for _, cu := range *alive {
		if cu.doc >= 0 {
			live = append(live, cu)
		}
	}
	*alive = live
}

// mthSmallestDoc returns the m-th smallest current document over the
// alive cursors (1 ≤ m ≤ len). Queries hold at most 64 cursors, so a
// bounded insertion scan beats sorting machinery.
func mthSmallestDoc(alive []*unionCursor, m int) int {
	var buf [8]int
	small := buf[:0]
	if m > len(buf) {
		small = make([]int, 0, m)
	}
	for _, cu := range alive {
		d := cu.doc
		switch {
		case len(small) < m:
			small = append(small, d)
		case d < small[m-1]:
			small[m-1] = d
		default:
			continue
		}
		for i := len(small) - 1; i > 0 && small[i-1] > small[i]; i-- {
			small[i-1], small[i] = small[i], small[i-1]
		}
	}
	return small[m-1]
}

// suffixMax returns suf with suf[i] = max(maxSc[i:]) and a trailing
// −Inf sentinel: the tightest constant upper bound on a flat concept's
// remaining documents, used for range bounds during block jumps.
func suffixMax(maxSc []float64) []float64 {
	suf := make([]float64, len(maxSc)+1)
	suf[len(maxSc)] = math.Inf(-1)
	for i := len(maxSc) - 1; i >= 0; i-- {
		suf[i] = maxSc[i]
		if suf[i+1] > suf[i] {
			suf[i] = suf[i+1]
		}
	}
	return suf
}

// fillUnionLists completes a disjunctive job on a worker: jb.lists
// holds one slot per set bit of jb.mask (ascending concept order), the
// dispatcher already filled flat-served slots, and block-served slots
// are fetched here through the same per-worker block memo as the
// conjunctive path. false means a decode failed and the document must
// be dropped.
func (e *Engine) fillUnionLists(qs *queryState, cds []*conceptData, jb docJob, fetch []blockFetch) bool {
	s := 0
	for j, cd := range cds {
		if jb.mask&(1<<uint(j)) == 0 {
			continue
		}
		if cd.blocks != nil {
			f := &fetch[j]
			blk := cd.blocks.bt.FindBlock(jb.doc)
			if blk < 0 {
				return false // unreachable for a confirmed pivot
			}
			if f.blk != blk {
				docs, lists, ok := e.fetchBlock(qs, cd, blk)
				if !ok {
					return false
				}
				f.blk, f.docs, f.lists = blk, docs, lists
			}
			di := sort.SearchInts(f.docs, jb.doc)
			if di == len(f.docs) || f.docs[di] != jb.doc {
				return false
			}
			jb.lists[s] = f.lists[di]
		}
		s++
	}
	return true
}
