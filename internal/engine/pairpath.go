package engine

import (
	"math"
	"sort"
	"time"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// Auxiliary pair-index planner stage (Veretennikov's additional
// indexes, merged with the engine's threshold-algorithm pruning per
// Fagin et al.):
//
//   - A two-term conjunctive spec query whose (conceptA, conceptB,
//     kernel fingerprint) triple has a registered pair list is served
//     straight off that list: the stored per-document scores and
//     witnesses ARE the kernel's outputs, so the answer is bitwise
//     identical to the kernel path with zero posting decodes and zero
//     joins — the response-time guarantee for the worst (common-word)
//     pairs.
//   - A wider conjunctive spec query uses registered pair lists to
//     tighten per-candidate score upper bounds before dispatch: the
//     restriction of any matchset to two of its lists is itself a
//     pair matchset, so the stored pair score caps those two terms'
//     contribution more tightly than their independent per-list
//     maxima do.
//
// Both stages apply only to spec-only queries (Query.Join == nil):
// a pair list answers exactly the kernel spec that built it, and an
// opaque Join closure has no comparable identity. Every failure mode
// — unregistered pair, corrupt list, mid-serve decode error — falls
// back to the kernel path, which computes the same answer the slow
// way; the pair layer can be slow, never wrong.

// conceptPairs looks up the registered pair table for two concepts
// under a kernel fingerprint, containing the panic a corrupt
// in-memory list raises. A nil return means "not served by a pair
// list" — the caller proceeds on the kernel path, which still yields
// the full answer, so the failure is counted but the query is not
// degraded.
func (e *Engine) conceptPairs(qs *queryState, a, b index.Concept, fp uint64) (pt *index.PairTable) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			pt = nil
		}
	}()
	t, ok := qs.idx.ConceptPairs(a, b, fp)
	if !ok {
		return nil
	}
	return t
}

// servePair answers a two-term conjunctive spec query entirely off
// its registered pair list. ok=false means the query was not (or
// could not be) pair-served and the caller must run the kernel path;
// no partial answer escapes — a mid-serve decode failure abandons the
// serve wholesale.
//
// The serve mirrors the kernel path's accounting: every record in the
// list is one candidate (tombstones included — the list's document
// set is exactly the two concepts' intersection), a record offered or
// tombstoned counts as evaluated, and a record (or whole block)
// skipped against the floor counts as pruned, strictly-below only.
func (e *Engine) servePair(qs *queryState, q Query, fp uint64, k int, start time.Time) (*Result, bool) {
	pt := e.conceptPairs(qs, q.Concepts[0], q.Concepts[1], fp)
	if pt == nil {
		return nil, false
	}
	e.counters.pairHits.Add(1)
	// Stored witnesses are in canonical (lower ConceptKey first) order;
	// kernel matchsets are term-indexed, so a query naming the concepts
	// in the other order needs the two entries swapped.
	swap := index.ConceptKey(q.Concepts[0]) > index.ConceptKey(q.Concepts[1])
	top := newTopK(k, q.Floor)
	evaluated, pruned := 0, 0
	scratch := make(match.Set, 2)
	for i := range pt.Infos {
		if qs.ctx.Err() != nil {
			qs.cancelled = true
			break
		}
		info := &pt.Infos[i]
		if e.prune && info.MaxScore < top.Floor() {
			// The whole block is provably below the floor: skip it
			// without decoding, like the block-max skip layer.
			pruned += info.NDocs
			continue
		}
		entries, err := pt.DecodeBlock(i)
		if err != nil {
			e.counters.decodeFailures.Add(1)
			return nil, false
		}
		for _, ent := range entries {
			if !ent.OK {
				// The kernel produced no scorable result here at build
				// time; the kernel path would likewise evaluate the
				// document and offer nothing.
				evaluated++
				continue
			}
			// A record's exact score is its own tightest upper bound.
			if e.prune && ent.Score < top.Floor() {
				pruned++
				continue
			}
			scratch[0], scratch[1] = ent.W0, ent.W1
			if swap {
				scratch[0], scratch[1] = ent.W1, ent.W0
			}
			top.offer(ent.Doc, ent.Score, scratch) // offer clones scratch
			evaluated++
		}
	}
	e.counters.pairServed.Add(1)
	res := &Result{
		Docs:       top.results(),
		Candidates: pt.NumDocs(),
		Evaluated:  evaluated,
		Pruned:     pruned,
	}
	return e.finish(qs, res, start), true
}

// tightenPairBounds lowers per-candidate score upper bounds of a
// wider (≥ 3 concepts) conjunctive spec query using registered pair
// lists, in place. It returns a copy of the original bounds when any
// bound was tightened (so the dispatcher can attribute prunes the
// pair bound alone caused), nil when nothing changed.
//
// Soundness, per family (the inflation below absorbs floating-point
// association differences):
//
//   - "win" (ExpWIN, score = exp(Σ ln s_j − α·window)): restricting a
//     matchset M to lists {j1, j2} yields a pair matchset whose
//     window is ≤ M's and whose key is ≤ the stored best pair key
//     (valid matchsets restrict to valid matchsets, so this holds
//     under dedup too); every other term contributes a factor
//     s_j ≤ max_j. Hence score(M) ≤ pairScore · Π_{j∉pair} max_j
//     whenever all factors are positive and α ≥ 0. Matchsets with a
//     zero-score match score 0 ≤ the bound, and ones with a negative
//     match score evaluate to NaN and are never offered, so the bound
//     dominates every offer the kernel path could make.
//   - "max" (SumMAX, score = max_l Σ s_j·e^(−α·dist)): at M's best
//     reference location the pair terms contribute at most the
//     stored pair score (which maximizes over all locations), and
//     each other term at most max(max_j, 0) when α ≥ 0. Hence
//     score(M) ≤ pairScore + Σ_{j∉pair} max(max_j, 0).
//   - "med": no tightening — MED's reference location is defined by
//     the matchset, not maximized, so the stored pair score does not
//     cap the pair terms' contribution under the full matchset's
//     median without inverting F. Left to the per-list bound.
func (e *Engine) tightenPairBounds(qs *queryState, q Query, fp uint64, candidates []int, perListMax, bounds []float64) []float64 {
	family := q.Spec.Family
	if (family != "win" && family != "max") || !(q.Spec.Alpha >= 0) {
		return nil
	}
	nc := len(q.Concepts)
	var orig []float64
	for j1 := 0; j1 < nc; j1++ {
	pairs:
		for j2 := j1 + 1; j2 < nc; j2++ {
			pt := e.conceptPairs(qs, q.Concepts[j1], q.Concepts[j2], fp)
			if pt == nil {
				continue
			}
			e.counters.pairHits.Add(1)
			// Candidates ascend (cursor intersection), so one forward
			// walk aligns them with the pair blocks; each block decodes
			// at most once per pair.
			bi := 0
			var decoded []index.PairEntry
			decodedIdx := -1
			for i, doc := range candidates {
				for bi < len(pt.Infos) && pt.Infos[bi].LastDoc < doc {
					bi++
				}
				if bi == len(pt.Infos) {
					break
				}
				if doc < pt.Infos[bi].FirstDoc {
					// A conjunctive candidate contains both concepts, so
					// a complete pair list covers it; absence means the
					// list predates this corpus state — leave the bound.
					continue
				}
				if decodedIdx != bi {
					es, err := pt.DecodeBlock(bi)
					if err != nil {
						// Bounds tightened so far came from valid decodes
						// and stay; the rest of this pair is abandoned.
						e.counters.decodeFailures.Add(1)
						continue pairs
					}
					decoded, decodedIdx = es, bi
				}
				x := sort.Search(len(decoded), func(x int) bool { return decoded[x].Doc >= doc })
				if x == len(decoded) || decoded[x].Doc != doc || !decoded[x].OK {
					// Tombstones give no usable cap: "the pair join
					// failed" does not bound what a wider matchset using
					// these lists can score.
					continue
				}
				ps := decoded[x].Score
				nb := ps
				sound := true
				switch family {
				case "win":
					if ps <= 0 {
						sound = false
						break
					}
					for j := 0; j < nc; j++ {
						if j == j1 || j == j2 {
							continue
						}
						m := perListMax[i*nc+j]
						if m <= 0 {
							sound = false
							break
						}
						nb *= m
					}
				case "max":
					for j := 0; j < nc; j++ {
						if j == j1 || j == j2 {
							continue
						}
						if m := perListMax[i*nc+j]; m > 0 {
							nb += m
						}
					}
				}
				if !sound {
					continue
				}
				// Inflate by ~4500 ulps so the real-arithmetic inequality
				// survives the kernel's different summation order; the
				// differential harness holds the answer to bitwise
				// identity, so the margin must dominate rounding, and it
				// does by orders of magnitude.
				nb += math.Abs(nb) * 1e-12
				if nb < bounds[i] {
					if orig == nil {
						orig = append([]float64(nil), bounds...)
					}
					bounds[i] = nb
				}
			}
		}
	}
	return orig
}
