package engine

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"bestjoin/internal/match"
)

// The worker pool shared by the conjunctive and disjunctive
// evaluation paths: chunked job dispatch, per-worker kernel reuse,
// lazy block decode, and floor-checked joins.

// dispatchChunk is the dispatcher's batching factor: candidates ship
// to workers this many at a time. Large enough to amortize channel
// and atomic-floor costs, small enough that the floor the workers
// hold never goes badly stale.
const dispatchChunk = 32

// docJob is one unit of worker work: a candidate document, its score
// upper bound (+Inf when the query has no bound), and its assembled
// join instance. Conjunctive jobs leave mask zero and size lists to
// the full query width; disjunctive jobs set the bit of every matched
// concept and size lists to the match count, slots in set-bit order
// (fillUnionLists completes the block-served slots).
type docJob struct {
	doc   int
	bound float64
	// orig is the pre-tightening bound when a pair list lowered this
	// job's bound (pairpath.go), equal to bound otherwise, so worker
	// prunes the pair bound alone caused are attributed to it.
	orig  float64
	mask  uint64
	lists match.Lists
}

// joinWorkers spawns the join worker pool shared by the conjunctive
// and disjunctive paths. Workers drain job chunks, re-check each job's
// bound against the risen floor, complete block-served match lists
// (lazy per-block decode), run the kernel under panic isolation, and
// offer results to the shared top-k heap. The floor is loaded once per
// chunk and refreshed only after an offer could have raised it; a
// stale floor is sound — the floor only rises, so staleness prunes
// less, never more. Strictly-below only: a bound equal to the floor
// can still win its tie-break on document id. Conjunctive jobs
// (mask == 0) carry full-width list slices; disjunctive jobs carry a
// concept bitmask with one compacted list slot per set bit. The caller
// closes jobs and waits on wg.
func (e *Engine) joinWorkers(qs *queryState, factory KernelFactory, cds []*conceptData,
	workers int, jobs <-chan []docJob, top *topK, evaluated, pruned *atomic.Int64, wg *sync.WaitGroup) {
	nc := len(cds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kern := buildKernel(factory, e)
			fetch := make([]blockFetch, nc)
			for i := range fetch {
				fetch[i].blk = -1
			}
			for chunk := range jobs {
				e.counters.queueDepth.Add(-int64(len(chunk)))
				floor := top.Floor()
				for _, jb := range chunk {
					// Drain without evaluating once the query is out of
					// time; those documents count as unevaluated.
					if qs.ctx.Err() != nil {
						continue
					}
					if jb.bound < floor {
						pruned.Add(1)
						e.counters.prunedDocs.Add(1)
						if jb.orig >= floor {
							// Only the pair-tightened bound is below the
							// floor: this prune is the pair index's win.
							e.counters.pairBoundPrunes.Add(1)
						}
						continue
					}
					filled := jb.mask == 0 && e.fillBlockLists(qs, cds, jb, fetch) ||
						jb.mask != 0 && e.fillUnionLists(qs, cds, jb, fetch)
					if !filled {
						// Block decode failure: drop this document only. An
						// unfilled job on an expired context is not a failure
						// — a cancelled flight waiter returns false without
						// any decode having gone wrong — so it counts as
						// unevaluated (Partial), not dropped (Degraded).
						if qs.ctx.Err() == nil {
							qs.fail()
						}
						continue
					}
					if kern == nil { // last build panicked: retry per job
						kern = buildKernel(factory, e)
						if kern == nil {
							qs.fail()
							continue
						}
					}
					set, score, ok, panicked := safeJoin(kern, jb.lists)
					e.counters.joinsRun.Add(1)
					if panicked {
						e.counters.joinPanics.Add(1)
						qs.fail()
						kern = nil // poisoned scratch: rebuild before reuse
						continue
					}
					e.counters.docsEvaluated.Add(1)
					evaluated.Add(1)
					if ok && !math.IsNaN(score) {
						top.offer(jb.doc, score, set)
						floor = top.Floor()
					}
				}
			}
		}()
	}
}

// countSkippedBlocks tallies candidate blocks no worker ever fetched —
// pruned below decode, their bytes never touched.
func (e *Engine) countSkippedBlocks(cds []*conceptData) {
	for _, cd := range cds {
		if cd.blocks == nil {
			continue
		}
		skipped := 0
		for w := range cd.cand {
			skipped += bits.OnesCount64(cd.cand[w] &^ cd.fetched[w].Load())
		}
		e.counters.blocksSkipped.Add(uint64(skipped))
	}
}
