package engine

// Differential harness for the auxiliary pair-index tier: like
// pruning, pair serving is supposed to be invisible — the only
// observable difference between a pair-enabled and a pair-disabled
// engine is how fast the answer arrives and what the pair counters
// say. These tests build random corpora, register pair lists with the
// real kernel, and assert bitwise-identical output across scoring
// families, worker counts, concept orders, pruning on and off, and
// every corruption fallback.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bestjoin/internal/index"
)

// pairSpecs enumerates the declarative kernels under test — the same
// families and rates as diffFamilies, in spec form so the pair path
// (which requires Join == nil) engages.
func pairSpecs() []KernelSpec {
	return []KernelSpec{
		{Family: "win", Alpha: 0.07},
		{Family: "med", Alpha: 0.05},
		{Family: "max", Alpha: 0.1},
		{Family: "win", Alpha: 0.07, Valid: true},
		{Family: "med", Alpha: 0.05, Valid: true},
		{Family: "max", Alpha: 0.1, Valid: true},
	}
}

// pairConceptsN draws exactly n distinct-ish random concepts from the
// differential vocabulary.
func pairConceptsN(rng *rand.Rand, n int) []index.Concept {
	vocab := []string{
		"amber", "basalt", "cedar", "delta", "ember", "fjord",
		"garnet", "harbor", "indigo", "jasper", "krill", "lumen",
	}
	concepts := make([]index.Concept, n)
	for i := range concepts {
		c := index.Concept{}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			c[vocab[rng.Intn(len(vocab))]] = 1 - rng.Float64()
		}
		concepts[i] = c
	}
	return concepts
}

// registerPairs precomputes every pair list among concepts for spec,
// unbudgeted, reporting how many registered.
func registerPairs(t *testing.T, compact *index.Compact, concepts []index.Concept, spec KernelSpec) int {
	t.Helper()
	n, err := BuildPairIndex(compact, concepts, spec, 0)
	if err != nil {
		t.Fatalf("BuildPairIndex: %v", err)
	}
	return n
}

// TestDifferentialPairServedVsKernel is the two-term acceptance
// property: a query answered off the precomputed pair list must be
// bitwise identical to the kernel path, in both concept orders, with
// one worker and several, with pruning on and off.
func TestDifferentialPairServedVsKernel(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(9000 + int64(trial)))
		docs := diffCorpus(rng)
		concepts := pairConceptsN(rng, 2)
		k := 1 + rng.Intn(6)
		for _, spec := range pairSpecs() {
			compact := buildCompact(t, docs)
			if registerPairs(t, compact, concepts, spec) == 0 {
				continue // empty intersection this draw: nothing to serve
			}
			for _, workers := range []int{1, 4} {
				for _, prune := range []bool{false, true} {
					pairEng := New(compact, Config{Workers: workers, DisablePruning: !prune})
					baseEng := New(compact, Config{Workers: workers, DisablePruning: !prune, DisablePairIndex: true})
					for _, order := range [][]index.Concept{
						{concepts[0], concepts[1]},
						{concepts[1], concepts[0]},
					} {
						q := Query{Concepts: order, Spec: spec, K: k}
						rp, err := pairEng.Search(context.Background(), q)
						if err != nil {
							t.Fatal(err)
						}
						rb, err := baseEng.Search(context.Background(), q)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("trial %d %s/%v workers=%d prune=%v k=%d",
							trial, spec.Family, spec.Valid, workers, prune, k)
						assertIdentical(t, label, rp, rb)
					}
					st := pairEng.Stats()
					if st.PairServed == 0 || st.PairHits < st.PairServed {
						t.Fatalf("trial %d %s: pair engine served %d/%d pair queries",
							trial, spec.Family, st.PairServed, st.PairHits)
					}
					if bst := baseEng.Stats(); bst.PairHits != 0 || bst.PairServed != 0 {
						t.Fatalf("trial %d %s: disabled engine touched the pair path: %+v",
							trial, spec.Family, bst)
					}
				}
			}
		}
	}
}

// TestDifferentialPairBoundsWiderQueries is the ≥3-term acceptance
// property: pair lists used as tighter pruning bounds must leave the
// answer bitwise identical — the bound may only skip documents that
// provably cannot enter the top-k.
func TestDifferentialPairBoundsWiderQueries(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(11000 + int64(trial)))
		docs := diffCorpus(rng)
		concepts := pairConceptsN(rng, 3)
		k := 1 + rng.Intn(4)
		for _, spec := range pairSpecs() {
			compact := buildCompact(t, docs)
			if registerPairs(t, compact, concepts, spec) == 0 {
				continue
			}
			for _, workers := range []int{1, 4} {
				pairEng := New(compact, Config{Workers: workers})
				baseEng := New(compact, Config{Workers: workers, DisablePairIndex: true})
				q := Query{Concepts: concepts, Spec: spec, K: k}
				rp, err := pairEng.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := baseEng.Search(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("trial %d %s/%v workers=%d k=%d (3-term)",
					trial, spec.Family, spec.Valid, workers, k)
				assertIdentical(t, label, rp, rb)
				st := pairEng.Stats()
				if st.PairServed != 0 {
					t.Fatalf("%s: 3-term query was pair-served", label)
				}
				// MED takes no tightening (soundness argument in
				// pairpath.go), so its pair counters must stay silent.
				if spec.Family == "med" && (st.PairHits != 0 || st.PairBoundPrunes != 0) {
					t.Fatalf("%s: MED query used pair bounds: %+v", label, st)
				}
			}
		}
	}
}

// TestPairBoundPrunesAttribution pins that the PairBoundPrunes counter
// moves on a corpus engineered so the tightened bound — and only the
// tightened bound — rules candidates out: one hot document with all
// three concepts adjacent, many cold ones whose pair terms sit far
// apart (low pair score) but whose per-list maxima look great.
func TestPairBoundPrunesAttribution(t *testing.T) {
	docs := []string{"amber basalt cedar"}
	for i := 0; i < 40; i++ {
		// amber ... 60 tokens ... basalt cedar-free: the amber+basalt
		// pair score decays to nearly zero while each list's own max
		// stays 1.
		filler := ""
		for j := 0; j < 60; j++ {
			filler += " lumen"
		}
		docs = append(docs, "amber"+filler+" basalt"+filler+" cedar")
	}
	concepts := []index.Concept{{"amber": 1}, {"basalt": 1}, {"cedar": 1}}
	spec := KernelSpec{Family: "win", Alpha: 0.2}
	compact := buildCompact(t, docs)
	registerPairs(t, compact, concepts, spec)

	pairEng := New(compact, Config{Workers: 1})
	baseEng := New(compact, Config{Workers: 1, DisablePairIndex: true})
	q := Query{Concepts: concepts, Spec: spec, K: 1}
	rp, err := pairEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "engineered prune corpus", rp, rb)
	st := pairEng.Stats()
	if st.PairBoundPrunes == 0 {
		t.Fatalf("tightened bounds pruned nothing on the engineered corpus: %+v (pruned %d/%d)",
			st, rp.Pruned, rp.Candidates)
	}
	if rp.Pruned <= rb.Pruned {
		t.Fatalf("pair bounds did not increase pruning: %d (pair) vs %d (base)", rp.Pruned, rb.Pruned)
	}
}

// TestPairCorruptListFallsBack is the chaos property for whole-list
// corruption: ConceptPairs panics in the engine's lookup, which must
// contain it, fall back to the kernel path, and produce the identical,
// non-degraded answer.
func TestPairCorruptListFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	docs := diffCorpus(rng)
	concepts := pairConceptsN(rng, 2)
	spec := KernelSpec{Family: "win", Alpha: 0.07, Valid: true}
	compact := buildCompact(t, docs)
	if registerPairs(t, compact, concepts, spec) == 0 {
		t.Skip("empty intersection draw")
	}
	index.CorruptConceptPairsForTest(compact, concepts[0], concepts[1], spec.Fingerprint())

	pairEng := New(compact, Config{})
	baseEng := New(compact, Config{DisablePairIndex: true})
	q := Query{Concepts: concepts, Spec: spec, K: 5}
	rp, err := pairEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "corrupt pair list", rp, rb)
	if rp.Degraded {
		t.Fatal("kernel fallback produced the full answer; result must not be degraded")
	}
	st := pairEng.Stats()
	if st.DecodeFailures == 0 {
		t.Fatal("corruption left no DecodeFailures trace")
	}
	if st.PairServed != 0 {
		t.Fatal("corrupt pair list was served")
	}
}

// TestPairCorruptPayloadFallsBack is the chaos property for payload
// corruption: the skip table loads, the first block decode fails
// mid-serve, and the serve must be abandoned wholesale — kernel-path
// answer, not degraded, no partial pair answer escaping.
func TestPairCorruptPayloadFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	docs := diffCorpus(rng)
	concepts := pairConceptsN(rng, 2)
	spec := KernelSpec{Family: "max", Alpha: 0.1}
	compact := buildCompact(t, docs)
	if registerPairs(t, compact, concepts, spec) == 0 {
		t.Skip("empty intersection draw")
	}
	index.CorruptConceptPairPayloadForTest(compact, concepts[0], concepts[1], spec.Fingerprint())

	pairEng := New(compact, Config{})
	baseEng := New(compact, Config{DisablePairIndex: true})
	q := Query{Concepts: concepts, Spec: spec, K: 5}
	rp, err := pairEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "corrupt pair payload", rp, rb)
	if rp.Degraded {
		t.Fatal("kernel fallback produced the full answer; result must not be degraded")
	}
	st := pairEng.Stats()
	if st.DecodeFailures == 0 || st.PairServed != 0 {
		t.Fatalf("mid-serve failure accounting wrong: %+v", st)
	}
}

// TestPairCorruptPayloadBoundsFallBack drives the payload corruption
// through the ≥3-term tightening walk: the pair's bounds are abandoned
// but the answer stays identical.
func TestPairCorruptPayloadBoundsFallBack(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	docs := diffCorpus(rng)
	concepts := pairConceptsN(rng, 3)
	spec := KernelSpec{Family: "win", Alpha: 0.07}
	compact := buildCompact(t, docs)
	if registerPairs(t, compact, concepts, spec) == 0 {
		t.Skip("empty intersection draw")
	}
	fp := spec.Fingerprint()
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if _, ok := compact.ConceptPairs(concepts[i], concepts[j], fp); ok {
				index.CorruptConceptPairPayloadForTest(compact, concepts[i], concepts[j], fp)
			}
		}
	}

	pairEng := New(compact, Config{})
	baseEng := New(compact, Config{DisablePairIndex: true})
	q := Query{Concepts: concepts, Spec: spec, K: 4}
	rp, err := pairEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseEng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "corrupt pair bounds", rp, rb)
	if rp.Degraded {
		t.Fatal("bound fallback must not degrade the result")
	}
}

// TestPairPathRequiresSpec pins the planner guard: a query carrying an
// opaque Join closure (even alongside a spec) never touches the pair
// path — a pair list only answers the exact kernel that built it, and
// a closure has no comparable identity.
func TestPairPathRequiresSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	docs := diffCorpus(rng)
	concepts := pairConceptsN(rng, 2)
	spec := KernelSpec{Family: "win", Alpha: 0.07}
	compact := buildCompact(t, docs)
	if registerPairs(t, compact, concepts, spec) == 0 {
		t.Skip("empty intersection draw")
	}
	e := New(compact, Config{})
	factory, err := spec.Factory()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(context.Background(), Query{Concepts: concepts, Join: factory, Spec: spec, K: 3}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PairHits != 0 || st.PairServed != 0 {
		t.Fatalf("Join-closure query touched the pair path: %+v", st)
	}
}

// TestPairServedReplayEqualsKernel pins the serve-path accounting
// invariants directly: a completed pair serve reports the full
// intersection as candidates with no accounting shortfall.
func TestPairServedReplayEqualsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	docs := diffCorpus(rng)
	concepts := pairConceptsN(rng, 2)
	spec := KernelSpec{Family: "med", Alpha: 0.05, Valid: true}
	compact := buildCompact(t, docs)
	if registerPairs(t, compact, concepts, spec) == 0 {
		t.Skip("empty intersection draw")
	}
	e := New(compact, Config{})
	res, err := e.Search(context.Background(), Query{Concepts: concepts, Spec: spec, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertResultInvariants(t, "pair serve", res)
	if e.Stats().PairServed != 1 {
		t.Fatalf("query was not pair-served: %+v", e.Stats())
	}
	if res.Partial {
		t.Fatal("uncancelled pair serve reported Partial")
	}
	if res.Evaluated+res.Pruned != res.Candidates {
		t.Fatalf("pair serve accounting: %d+%d != %d", res.Evaluated, res.Pruned, res.Candidates)
	}
	// The engine's kernel-path counters must not move on a pair serve.
	st := e.Stats()
	if st.JoinsRun != 0 {
		t.Fatalf("pair serve ran %d kernel joins", st.JoinsRun)
	}
}
