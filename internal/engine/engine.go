// Package engine is a concurrent indexed retrieval engine: the first
// vertical slice of the serving system the roadmap aims at. It
// evaluates a multi-concept query document-at-a-time over a compacted
// inverted index (index.Compact), runs a weighted proximity best-join
// per candidate document on a sharded worker pool, and keeps a global
// top-k document heap — the document-at-a-time, budgeted shape that
// Fagin-style threshold algorithms and response-time-guaranteed
// proximity indexes both converge on.
//
// The engine supports context cancellation and deadlines (a query that
// runs out of time returns its best-so-far answer marked Partial), an
// LRU cache of decoded per-(document, concept) match lists so repeated
// queries skip posting decompression entirely, and an observability
// layer of atomic counters plus a latency histogram, exposed via
// Stats() and optionally expvar (Publish).
//
// Joins run on reusable kernels (join.Kernel): a query supplies a
// KernelFactory, each worker builds one kernel from it and reuses that
// kernel's scratch for every candidate document it evaluates, so the
// cached query path performs almost no per-document allocation.
//
// The engine is built to degrade, not die, under partial failure
// (DESIGN.md "Failure model & graceful degradation"):
//
//   - Panic isolation: kernels run user-supplied scoring closures, so
//     every kernel invocation is wrapped in recover(). A panicking
//     join poisons only that kernel — the worker discards it, rebuilds
//     one from the query's factory, drops that single document, and
//     the query completes with Result.Degraded set instead of taking
//     the process down. Recovered panics are counted in
//     Stats().JoinPanics.
//   - Admission control: Config.MaxInFlight bounds concurrently
//     admitted queries; at the cap, Search either waits for a slot
//     until the context expires (OverloadBlock) or fails fast
//     (OverloadShed), returning ErrOverloaded either way. Shed load is
//     counted in Stats().Shed.
//   - Hot index swap: SwapIndex atomically replaces the live index;
//     in-flight queries finish on the snapshot they started with, and
//     the caches are epoch-keyed so a swap can never serve stale
//     entries to new queries.
//
// The engine is also the unit of horizontal scale: Searcher
// (searcher.go) abstracts its query surface so internal/shard can
// scatter one query across N doc-partitioned child engines and
// rank-merge their heaps, with Query.Floor sharing one pruning floor
// across the whole partition and SearchSnapshot pinning each child to
// a coordinator-chosen epoch.
package engine

import (
	"runtime"
	"sync/atomic"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// Defaults for Config and Query zero values.
const (
	DefaultK             = 10
	DefaultCacheLists    = 4096
	DefaultCacheConcepts = 256
	DefaultQueueDepth    = 64
)

// Config sizes the engine.
type Config struct {
	// Workers is the number of join workers per query; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// CacheLists caps the (document, concept) match-list LRU in
	// entries; ≤ 0 means DefaultCacheLists.
	CacheLists int
	// CacheConcepts caps the concept → candidate-documents LRU in
	// entries; ≤ 0 means DefaultCacheConcepts.
	CacheConcepts int
	// CacheBytes additionally bounds the match-list cache by the total
	// byte cost of its entries — decoded match lists vary by orders of
	// magnitude, so an entry-count cap alone can pin anywhere from
	// kilobytes to gigabytes. ≤ 0 keeps the default entry-count-only
	// behavior; > 0 is a hard bound (Stats().CacheBytes reports the
	// accounted size).
	CacheBytes int64
	// DisablePruning turns off max-score top-k pruning; the zero
	// Config prunes (the knob defaults to on). Pruning is lossless —
	// the differential harness proves pruned and unpruned engines
	// return identical results — so the switch exists for that harness
	// and for measuring the pruning win, not for correctness.
	DisablePruning bool
	// MaxInFlight caps concurrently admitted queries; ≤ 0 means
	// unlimited (no admission control).
	MaxInFlight int
	// Overload picks the behavior at the MaxInFlight cap:
	// OverloadBlock (zero value) or OverloadShed.
	Overload OverloadPolicy
	// QueueDepth caps each worker's candidate job queue; ≤ 0 means
	// DefaultQueueDepth. Smaller queues bound the dispatcher's
	// lead over the workers (and the memory pinned by assembled match
	// lists); they never change results.
	QueueDepth int
	// DisableCoalescing turns off cross-query decode coalescing
	// (coalesce.go); the zero Config coalesces. Coalescing never
	// changes results — waiters receive exactly the bytes-identical
	// decoded block the leader produced — so the switch exists for the
	// differential harness and for measuring the coalescing win.
	DisableCoalescing bool
	// Mode is the default query mode for queries that leave Query.Mode
	// unset: ModeAND (the zero value, conjunctive intersection) or
	// ModeOR (ranked union). See QueryMode.
	Mode QueryMode
	// DisablePairIndex turns off the auxiliary pair-index planner stage
	// (pairpath.go); the zero Config uses registered pair lists. Pair
	// serving is exact — the lists store the same kernel's scores — so
	// the switch exists for the differential harness and for measuring
	// the pair-index win.
	DisablePairIndex bool
}

// Engine answers top-k queries over one compacted index. It is safe
// for concurrent use; all mutable state is the snapshot pointer, the
// two caches, and the stats counters, each with its own
// synchronization.
type Engine struct {
	snap     atomic.Pointer[snapshot]
	workers  int
	prune    bool
	pairs    bool
	coalesce bool
	queue    int
	mode     QueryMode
	admit    admitter
	lists    *lruCache[listKey, listEntry]
	concepts *lruCache[conceptKey, conceptEntry]
	flights  flightGroup
	counters counters
	latency  histogram
}

// conceptEntry is the cached corpus-wide summary of one concept:
// either the sorted candidate documents with, aligned, the maximum
// match score the concept attains in each (flat mode), or the
// concept's block skip table (block mode) — which replaces both, at
// block granularity, without materializing per-document state.
type conceptEntry struct {
	docs   []int
	maxSc  []float64
	blocks *blockSet
}

// listEntry is one match-list cache value: a single document's list
// for flat-served concepts, or a whole decoded block (document ids
// plus aligned lists) for block-served ones.
type listEntry struct {
	list  match.List
	docs  []int
	lists []match.List
}

// matchBytes is the in-memory size of one match.Match (int + float64)
// for byte-cost cache accounting.
const matchBytes = 16

// listEntryCost estimates one cache entry's resident bytes: match
// storage plus slice headers plus fixed LRU bookkeeping. Block-mode
// lists are disjoint subslices of one flat backing, so summing their
// lengths counts each match once.
func listEntryCost(v listEntry) int64 {
	n := int64(len(v.list))*matchBytes + int64(len(v.docs))*8 + int64(len(v.lists))*24
	for _, l := range v.lists {
		n += int64(len(l)) * matchBytes
	}
	return n + 64
}

// conceptKey identifies one cached concept summary under one index
// epoch: entries cached against a swapped-out index are unreachable
// by construction.
type conceptKey struct {
	epoch uint64
	fp    uint64
}

// listKey identifies one decoded match-list cache entry: an index
// epoch, a concept fingerprint, and doc — a document id for
// flat-served concepts, a block index for block-served ones (a
// concept is served by exactly one representation per epoch, so the
// two uses cannot collide).
type listKey struct {
	epoch uint64
	doc   int
	fp    uint64
}

// New builds an engine over a compacted index.
func New(idx *index.Compact, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheLists <= 0 {
		cfg.CacheLists = DefaultCacheLists
	}
	if cfg.CacheConcepts <= 0 {
		cfg.CacheConcepts = DefaultCacheConcepts
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	lists := newLRU[listKey, listEntry](cfg.CacheLists)
	if cfg.CacheBytes > 0 {
		lists = newLRUBytes[listKey, listEntry](cfg.CacheLists, cfg.CacheBytes, listEntryCost)
	}
	e := &Engine{
		workers:  cfg.Workers,
		prune:    !cfg.DisablePruning,
		pairs:    !cfg.DisablePairIndex,
		coalesce: !cfg.DisableCoalescing,
		queue:    cfg.QueueDepth,
		mode:     cfg.Mode,
		admit:    newAdmitter(cfg.MaxInFlight, cfg.Overload),
		lists:    lists,
		concepts: newLRU[conceptKey, conceptEntry](cfg.CacheConcepts),
		flights:  flightGroup{m: make(map[listKey]*flightCall)},
	}
	e.snap.Store(&snapshot{idx: idx})
	return e
}

// ResetCache drops both caches, restoring the cold-query path.
// Benchmarks use it to compare cold and cached latency.
func (e *Engine) ResetCache() {
	e.lists.Reset()
	e.concepts.Reset()
}
