// Package engine is a concurrent indexed retrieval engine: the first
// vertical slice of the serving system the roadmap aims at. It
// evaluates a multi-concept query document-at-a-time over a compacted
// inverted index (index.Compact), runs a weighted proximity best-join
// per candidate document on a sharded worker pool, and keeps a global
// top-k document heap — the document-at-a-time, budgeted shape that
// Fagin-style threshold algorithms and response-time-guaranteed
// proximity indexes both converge on.
//
// The engine supports context cancellation and deadlines (a query that
// runs out of time returns its best-so-far answer marked Partial), an
// LRU cache of decoded per-(document, concept) match lists so repeated
// queries skip posting decompression entirely, and an observability
// layer of atomic counters plus a latency histogram, exposed via
// Stats() and optionally expvar (Publish).
//
// Joins run on reusable kernels (join.Kernel): a query supplies a
// KernelFactory, each worker builds one kernel from it and reuses that
// kernel's scratch for every candidate document it evaluates, so the
// cached query path performs almost no per-document allocation.
package engine

import (
	"context"
	"errors"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/dedup"
	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// Defaults for Config and Query zero values.
const (
	DefaultK             = 10
	DefaultCacheLists    = 4096
	DefaultCacheConcepts = 256
)

// Config sizes the engine.
type Config struct {
	// Workers is the number of join workers per query; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// CacheLists caps the (document, concept) match-list LRU in
	// entries; ≤ 0 means DefaultCacheLists.
	CacheLists int
	// CacheConcepts caps the concept → candidate-documents LRU in
	// entries; ≤ 0 means DefaultCacheConcepts.
	CacheConcepts int
}

// Engine answers top-k queries over one compacted index. It is safe
// for concurrent use; all mutable state is the two caches and the
// stats counters, each with its own synchronization.
type Engine struct {
	idx      *index.Compact
	workers  int
	lists    *lruCache[listKey, match.List]
	concepts *lruCache[uint64, []int]
	counters counters
	latency  histogram
}

// listKey identifies one decoded match list: a document and a concept
// fingerprint.
type listKey struct {
	doc int
	fp  uint64
}

// New builds an engine over a compacted index.
func New(idx *index.Compact, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheLists <= 0 {
		cfg.CacheLists = DefaultCacheLists
	}
	if cfg.CacheConcepts <= 0 {
		cfg.CacheConcepts = DefaultCacheConcepts
	}
	return &Engine{
		idx:      idx,
		workers:  cfg.Workers,
		lists:    newLRU[listKey, match.List](cfg.CacheLists),
		concepts: newLRU[uint64, []int](cfg.CacheConcepts),
	}
}

// ResetCache drops both caches, restoring the cold-query path.
// Benchmarks use it to compare cold and cached latency.
func (e *Engine) ResetCache() {
	e.lists.Reset()
	e.concepts.Reset()
}

// KernelFactory builds one reusable join kernel. The factory itself
// must be safe for concurrent use (Search calls it once per worker);
// the kernels it returns need not be — each worker owns its kernel
// exclusively and reuses its scratch across the documents it
// evaluates. Adapt a plain one-shot function with join.KernelFunc.
type KernelFactory func() join.Kernel

// Joiner is the former name of KernelFactory, kept as an alias for
// call sites predating the kernel refactor.
type Joiner = KernelFactory

// WINJoiner joins under a WIN scoring function (Algorithm 1).
func WINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return join.NewWINKernel(fn) }
}

// MEDJoiner joins under a MED scoring function (Algorithm 2).
func MEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return join.NewMEDKernel(fn) }
}

// MAXJoiner joins under an efficient MAX scoring function.
func MAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return join.NewMAXKernel(fn) }
}

// ValidWINJoiner is WINJoiner restricted to valid matchsets (no token
// answers two query terms at once, the paper's Section VI).
func ValidWINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewWINKernel(fn)) }
}

// ValidMEDJoiner is MEDJoiner restricted to valid matchsets.
func ValidMEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMEDKernel(fn)) }
}

// ValidMAXJoiner is MAXJoiner restricted to valid matchsets.
func ValidMAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMAXKernel(fn)) }
}

// Query is one retrieval request: candidate documents are those
// containing at least one match for every concept, each is joined
// with Join, and the K best are returned.
type Query struct {
	Concepts []index.Concept
	Join     KernelFactory
	// K is the number of documents to return; ≤ 0 means DefaultK.
	K int
}

// DocResult is one ranked document: its id, best matchset, and score.
type DocResult struct {
	Doc   int
	Score float64
	Set   match.Set
}

// Result is a query's outcome.
type Result struct {
	// Docs holds the top-k documents, best first.
	Docs []DocResult
	// Partial is true when the context expired before every candidate
	// was evaluated; Docs then ranks only the documents evaluated so
	// far (the best-so-far answer), not the full corpus.
	Partial bool
	// Candidates is the number of documents containing every concept;
	// Evaluated is how many of them were actually joined.
	Candidates int
	Evaluated  int
	// Elapsed is the wall-clock time the query took.
	Elapsed time.Duration
}

// Search evaluates the query document-at-a-time. It returns an error
// only for malformed queries; a context deadline or cancellation
// instead yields the best-so-far Result with Partial set.
func (e *Engine) Search(ctx context.Context, q Query) (*Result, error) {
	if len(q.Concepts) == 0 {
		return nil, errors.New("engine: query has no concepts")
	}
	if q.Join == nil {
		return nil, errors.New("engine: query has no kernel factory")
	}
	k := q.K
	if k <= 0 {
		k = DefaultK
	}
	start := time.Now()
	e.counters.queries.Add(1)
	defer func() { e.latency.observe(time.Since(start)) }()

	// Candidate generation: materialize each concept's documents
	// (cache-assisted) and intersect.
	cds := make([]*conceptData, len(q.Concepts))
	for j, c := range q.Concepts {
		cds[j] = e.conceptData(c)
	}
	candidates := intersect(cds)

	// No candidate contains every concept: the answer is empty and
	// final, so skip the worker pool entirely.
	res := &Result{Candidates: len(candidates)}
	if len(candidates) == 0 {
		res.Docs = []DocResult{}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Sharded worker pool: each worker owns one job channel; documents
	// are sharded by id, so a given document always lands on the same
	// worker. The dispatcher assembles match lists (touching the
	// caches single-threaded); workers only run joins and offer
	// results to the shared top-k heap. Each worker builds one kernel
	// from the query's factory and reuses its scratch for every
	// document it evaluates.
	workers := e.workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	top := newTopK(k)
	var evaluated atomic.Int64
	chans := make([]chan docJob, workers)
	var wg sync.WaitGroup
	for w := range chans {
		chans[w] = make(chan docJob, 64)
		wg.Add(1)
		go func(jobs <-chan docJob) {
			defer wg.Done()
			kern := q.Join()
			for jb := range jobs {
				// Drain without evaluating once the query is out of
				// time; those documents count as unevaluated.
				if ctx.Err() != nil {
					continue
				}
				e.counters.docsEvaluated.Add(1)
				kern.Reset(nil, jb.lists)
				set, score, ok := kern.Join()
				e.counters.joinsRun.Add(1)
				evaluated.Add(1)
				if ok && !math.IsNaN(score) {
					top.offer(jb.doc, score, set)
				}
			}
		}(chans[w])
	}

	// One flat backing array for every job's lists header: per-document
	// jobs slice into it instead of allocating.
	backing := make(match.Lists, len(candidates)*len(cds))
dispatch:
	for i, doc := range candidates {
		lists := backing[i*len(cds) : (i+1)*len(cds) : (i+1)*len(cds)]
		for j, cd := range cds {
			lists[j] = e.list(cd, doc)
		}
		select {
		case chans[doc%workers] <- docJob{doc: doc, lists: lists}:
		case <-ctx.Done():
			break dispatch
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	res.Docs = top.results()
	res.Evaluated = int(evaluated.Load())
	res.Partial = res.Evaluated != res.Candidates
	if res.Partial {
		e.counters.partials.Add(1)
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		e.counters.deadlineHits.Add(1)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// docJob is one unit of worker work: a candidate document and its
// assembled join instance.
type docJob struct {
	doc   int
	lists match.Lists
}

// conceptData is the per-query working state for one concept.
type conceptData struct {
	concept index.Concept
	fp      uint64
	docs    []int // sorted ids of documents containing the concept
	// local holds this query's freshly decoded lists; nil until the
	// concept has been decoded (cache hits avoid it entirely).
	local map[int]match.List
}

// conceptData resolves a concept to its candidate documents, from the
// concept cache when possible, decoding postings otherwise. Hits and
// misses land in the concept-cache counters.
func (e *Engine) conceptData(c index.Concept) *conceptData {
	cd := &conceptData{concept: c, fp: fingerprint(c)}
	if docs, ok := e.concepts.Get(cd.fp); ok {
		e.counters.conceptHits.Add(1)
		cd.docs = docs
		return cd
	}
	e.counters.conceptMisses.Add(1)
	e.decode(cd)
	return cd
}

// list fetches the match list of one concept in one document: from
// this query's decoded state, else the LRU, else by decoding the
// concept's postings (which fills both). Hits and misses land in the
// list-cache counters.
func (e *Engine) list(cd *conceptData, doc int) match.List {
	if cd.local != nil {
		return cd.local[doc]
	}
	if l, ok := e.lists.Get(listKey{doc: doc, fp: cd.fp}); ok {
		e.counters.listHits.Add(1)
		return l
	}
	e.counters.listMisses.Add(1)
	e.decode(cd)
	return cd.local[doc]
}

// decode materializes a concept across the whole corpus: a k-way merge
// of the member words' posting lists in (document, position) order,
// keeping the best score per (document, position) — the same merge as
// index.Compact.ConceptList, but for all documents at once instead of
// re-decoding per document. Because each word's postings are already
// sorted by (doc, pos), the merge emits every match in final order
// directly into one flat backing list; per-document lists are capped
// subslices of it, so the whole corpus-wide decode costs a handful of
// allocations instead of two map levels plus one slice and one sort
// per document. Results populate the query-local state and both
// caches.
func (e *Engine) decode(cd *conceptData) {
	type source struct {
		ps    []index.Posting
		score float64
		next  int
	}
	srcs := make([]source, 0, len(cd.concept))
	total := 0
	for word, score := range cd.concept {
		if ps := e.idx.Postings(word); len(ps) > 0 {
			srcs = append(srcs, source{ps: ps, score: score})
			total += len(ps)
		}
	}
	flat := make(match.List, 0, total)
	cd.local = make(map[int]match.List)
	var docs []int
	curDoc, begin := -1, 0
	flush := func() {
		if curDoc < 0 {
			return
		}
		l := flat[begin:len(flat):len(flat)]
		cd.local[curDoc] = l
		docs = append(docs, curDoc)
		e.lists.Put(listKey{doc: curDoc, fp: cd.fp}, l)
		begin = len(flat)
	}
	for {
		min := -1
		for s := range srcs {
			if srcs[s].next == len(srcs[s].ps) {
				continue
			}
			if min < 0 {
				min = s
				continue
			}
			p, q := srcs[s].ps[srcs[s].next], srcs[min].ps[srcs[min].next]
			if p.Doc < q.Doc || (p.Doc == q.Doc && p.Pos < q.Pos) {
				min = s
			}
		}
		if min < 0 {
			break
		}
		src := &srcs[min]
		p := src.ps[src.next]
		src.next++
		if p.Doc != curDoc {
			flush()
			curDoc = p.Doc
		}
		// Words of one concept can share a (doc, pos); duplicates are
		// adjacent in merge order, and the best member-word score wins.
		if n := len(flat); n > begin && flat[n-1].Loc == p.Pos {
			if src.score > flat[n-1].Score {
				flat[n-1].Score = src.score
			}
			continue
		}
		flat = append(flat, match.Match{Loc: p.Pos, Score: src.score})
	}
	flush()
	cd.docs = docs
	e.concepts.Put(cd.fp, docs)
}

// fingerprint hashes a concept to a stable 64-bit cache key,
// independent of map iteration order.
func fingerprint(c index.Concept) uint64 {
	words := make([]string, 0, len(c))
	for w := range c {
		words = append(words, w)
	}
	sort.Strings(words)
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range words {
		h.Write([]byte(w))
		h.Write([]byte{0})
		bits := math.Float64bits(c[w])
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// intersect returns the documents present in every concept's candidate
// list, by a k-pointer walk over the sorted lists.
func intersect(cds []*conceptData) []int {
	if len(cds) == 0 {
		return nil
	}
	out := cds[0].docs
	for _, cd := range cds[1:] {
		out = intersectSorted(out, cd.docs)
		if len(out) == 0 {
			return nil
		}
	}
	// out may alias a cached slice; copy so callers cannot disturb it.
	return append([]int(nil), out...)
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
