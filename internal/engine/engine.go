// Package engine is a concurrent indexed retrieval engine: the first
// vertical slice of the serving system the roadmap aims at. It
// evaluates a multi-concept query document-at-a-time over a compacted
// inverted index (index.Compact), runs a weighted proximity best-join
// per candidate document on a sharded worker pool, and keeps a global
// top-k document heap — the document-at-a-time, budgeted shape that
// Fagin-style threshold algorithms and response-time-guaranteed
// proximity indexes both converge on.
//
// The engine supports context cancellation and deadlines (a query that
// runs out of time returns its best-so-far answer marked Partial), an
// LRU cache of decoded per-(document, concept) match lists so repeated
// queries skip posting decompression entirely, and an observability
// layer of atomic counters plus a latency histogram, exposed via
// Stats() and optionally expvar (Publish).
//
// Joins run on reusable kernels (join.Kernel): a query supplies a
// KernelFactory, each worker builds one kernel from it and reuses that
// kernel's scratch for every candidate document it evaluates, so the
// cached query path performs almost no per-document allocation.
//
// The engine is built to degrade, not die, under partial failure
// (DESIGN.md "Failure model & graceful degradation"):
//
//   - Panic isolation: kernels run user-supplied scoring closures, so
//     every kernel invocation is wrapped in recover(). A panicking
//     join poisons only that kernel — the worker discards it, rebuilds
//     one from the query's factory, drops that single document, and
//     the query completes with Result.Degraded set instead of taking
//     the process down. Recovered panics are counted in
//     Stats().JoinPanics.
//   - Admission control: Config.MaxInFlight bounds concurrently
//     admitted queries; at the cap, Search either waits for a slot
//     until the context expires (OverloadBlock) or fails fast
//     (OverloadShed), returning ErrOverloaded either way. Shed load is
//     counted in Stats().Shed.
//   - Hot index swap: SwapIndex atomically replaces the live index;
//     in-flight queries finish on the snapshot they started with, and
//     the caches are epoch-keyed so a swap can never serve stale
//     entries to new queries.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/dedup"
	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// Defaults for Config and Query zero values.
const (
	DefaultK             = 10
	DefaultCacheLists    = 4096
	DefaultCacheConcepts = 256
	DefaultQueueDepth    = 64
)

// ErrOverloaded is returned by Search when admission control rejects
// the query: the engine is at Config.MaxInFlight and either the policy
// is OverloadShed or the context expired while waiting for a slot.
// Servers should map it to a retryable status (HTTP 429 + Retry-After)
// rather than an internal error.
var ErrOverloaded = errors.New("engine: overloaded")

// OverloadPolicy selects what Search does when Config.MaxInFlight
// queries are already in flight.
type OverloadPolicy int

const (
	// OverloadBlock (the default) waits for a slot until the query's
	// context is done, then returns ErrOverloaded. Callers get
	// backpressure shaped by their own deadlines.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed fails fast with ErrOverloaded, never queueing.
	// Under sustained overload this keeps latency flat for the queries
	// that are admitted.
	OverloadShed
)

// Config sizes the engine.
type Config struct {
	// Workers is the number of join workers per query; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// CacheLists caps the (document, concept) match-list LRU in
	// entries; ≤ 0 means DefaultCacheLists.
	CacheLists int
	// CacheConcepts caps the concept → candidate-documents LRU in
	// entries; ≤ 0 means DefaultCacheConcepts.
	CacheConcepts int
	// CacheBytes additionally bounds the match-list cache by the total
	// byte cost of its entries — decoded match lists vary by orders of
	// magnitude, so an entry-count cap alone can pin anywhere from
	// kilobytes to gigabytes. ≤ 0 keeps the default entry-count-only
	// behavior; > 0 is a hard bound (Stats().CacheBytes reports the
	// accounted size).
	CacheBytes int64
	// DisablePruning turns off max-score top-k pruning; the zero
	// Config prunes (the knob defaults to on). Pruning is lossless —
	// the differential harness proves pruned and unpruned engines
	// return identical results — so the switch exists for that harness
	// and for measuring the pruning win, not for correctness.
	DisablePruning bool
	// MaxInFlight caps concurrently admitted queries; ≤ 0 means
	// unlimited (no admission control).
	MaxInFlight int
	// Overload picks the behavior at the MaxInFlight cap:
	// OverloadBlock (zero value) or OverloadShed.
	Overload OverloadPolicy
	// QueueDepth caps each worker's candidate job queue; ≤ 0 means
	// DefaultQueueDepth. Smaller queues bound the dispatcher's
	// lead over the workers (and the memory pinned by assembled match
	// lists); they never change results.
	QueueDepth int
	// Mode is the default query mode for queries that leave Query.Mode
	// unset: ModeAND (the zero value, conjunctive intersection) or
	// ModeOR (ranked union). See QueryMode.
	Mode QueryMode
}

// Engine answers top-k queries over one compacted index. It is safe
// for concurrent use; all mutable state is the snapshot pointer, the
// two caches, and the stats counters, each with its own
// synchronization.
type Engine struct {
	snap     atomic.Pointer[snapshot]
	workers  int
	prune    bool
	queue    int
	mode     QueryMode
	sem      chan struct{} // admission semaphore; nil = unlimited
	shed     bool          // true = OverloadShed
	lists    *lruCache[listKey, listEntry]
	concepts *lruCache[conceptKey, conceptEntry]
	counters counters
	latency  histogram
}

// snapshot pairs a live index with its reload epoch. Queries load one
// snapshot at admission and use it throughout, so SwapIndex never
// mixes two indexes inside one query.
type snapshot struct {
	idx   *index.Compact
	epoch uint64
}

// conceptEntry is the cached corpus-wide summary of one concept:
// either the sorted candidate documents with, aligned, the maximum
// match score the concept attains in each (flat mode), or the
// concept's block skip table (block mode) — which replaces both, at
// block granularity, without materializing per-document state.
type conceptEntry struct {
	docs   []int
	maxSc  []float64
	blocks *blockSet
}

// listEntry is one match-list cache value: a single document's list
// for flat-served concepts, or a whole decoded block (document ids
// plus aligned lists) for block-served ones.
type listEntry struct {
	list  match.List
	docs  []int
	lists []match.List
}

// matchBytes is the in-memory size of one match.Match (int + float64)
// for byte-cost cache accounting.
const matchBytes = 16

// listEntryCost estimates one cache entry's resident bytes: match
// storage plus slice headers plus fixed LRU bookkeeping. Block-mode
// lists are disjoint subslices of one flat backing, so summing their
// lengths counts each match once.
func listEntryCost(v listEntry) int64 {
	n := int64(len(v.list))*matchBytes + int64(len(v.docs))*8 + int64(len(v.lists))*24
	for _, l := range v.lists {
		n += int64(len(l)) * matchBytes
	}
	return n + 64
}

// conceptKey identifies one cached concept summary under one index
// epoch: entries cached against a swapped-out index are unreachable
// by construction.
type conceptKey struct {
	epoch uint64
	fp    uint64
}

// listKey identifies one decoded match-list cache entry: an index
// epoch, a concept fingerprint, and doc — a document id for
// flat-served concepts, a block index for block-served ones (a
// concept is served by exactly one representation per epoch, so the
// two uses cannot collide).
type listKey struct {
	epoch uint64
	doc   int
	fp    uint64
}

// New builds an engine over a compacted index.
func New(idx *index.Compact, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheLists <= 0 {
		cfg.CacheLists = DefaultCacheLists
	}
	if cfg.CacheConcepts <= 0 {
		cfg.CacheConcepts = DefaultCacheConcepts
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	lists := newLRU[listKey, listEntry](cfg.CacheLists)
	if cfg.CacheBytes > 0 {
		lists = newLRUBytes[listKey, listEntry](cfg.CacheLists, cfg.CacheBytes, listEntryCost)
	}
	e := &Engine{
		workers:  cfg.Workers,
		prune:    !cfg.DisablePruning,
		queue:    cfg.QueueDepth,
		mode:     cfg.Mode,
		shed:     cfg.Overload == OverloadShed,
		lists:    lists,
		concepts: newLRU[conceptKey, conceptEntry](cfg.CacheConcepts),
	}
	if cfg.MaxInFlight > 0 {
		e.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	e.snap.Store(&snapshot{idx: idx})
	return e
}

// SwapIndex atomically replaces the engine's live index — the
// hot-reload path (proxserve triggers it on SIGHUP). Queries already
// in flight finish on the snapshot they started with; queries admitted
// after the swap see only the new index, because the caches are keyed
// by reload epoch (stale entries age out of the LRUs, and both caches
// are dropped eagerly to give the new index the full capacity).
func (e *Engine) SwapIndex(idx *index.Compact) {
	old := e.snap.Load()
	e.snap.Store(&snapshot{idx: idx, epoch: old.epoch + 1})
	e.counters.indexReloads.Add(1)
	e.lists.Reset()
	e.concepts.Reset()
}

// Index returns the engine's current live index.
func (e *Engine) Index() *index.Compact { return e.snap.Load().idx }

// ResetCache drops both caches, restoring the cold-query path.
// Benchmarks use it to compare cold and cached latency.
func (e *Engine) ResetCache() {
	e.lists.Reset()
	e.concepts.Reset()
}

// KernelFactory builds one reusable join kernel. The factory itself
// must be safe for concurrent use (Search calls it once per worker);
// the kernels it returns need not be — each worker owns its kernel
// exclusively and reuses its scratch across the documents it
// evaluates. Adapt a plain one-shot function with join.KernelFunc.
type KernelFactory func() join.Kernel

// Joiner is the former name of KernelFactory, kept as an alias for
// call sites predating the kernel refactor.
type Joiner = KernelFactory

// WINJoiner joins under a WIN scoring function (Algorithm 1).
func WINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return join.NewWINKernel(fn) }
}

// MEDJoiner joins under a MED scoring function (Algorithm 2).
func MEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return join.NewMEDKernel(fn) }
}

// MAXJoiner joins under an efficient MAX scoring function.
func MAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return join.NewMAXKernel(fn) }
}

// ValidWINJoiner is WINJoiner restricted to valid matchsets (no token
// answers two query terms at once, the paper's Section VI).
func ValidWINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewWINKernel(fn)) }
}

// ValidMEDJoiner is MEDJoiner restricted to valid matchsets.
func ValidMEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMEDKernel(fn)) }
}

// ValidMAXJoiner is MAXJoiner restricted to valid matchsets.
func ValidMAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMAXKernel(fn)) }
}

// Query is one retrieval request: candidate documents are those
// containing at least one match for every concept, each is joined
// with Join, and the K best are returned.
type Query struct {
	Concepts []index.Concept
	Join     KernelFactory
	// K is the number of documents to return; ≤ 0 means DefaultK.
	K int
	// Mode selects conjunctive (ModeAND) or disjunctive (ModeOR)
	// candidate generation; ModeDefault (the zero value) uses the
	// engine's configured Config.Mode.
	Mode QueryMode
	// MinMatch is the m-of-n knob: a candidate document must match at
	// least MinMatch of the query's concepts. 0 means the resolved
	// mode's default — len(Concepts) for AND, 1 for OR. Any explicit
	// value in [1, len(Concepts)] selects the disjunctive evaluation
	// path, so MinMatch = len(Concepts) is AND semantics evaluated by
	// ranked union. Values < 0 or > len(Concepts) are errors.
	MinMatch int
}

// DocResult is one ranked document: its id, best matchset, and score.
type DocResult struct {
	Doc   int
	Score float64
	Set   match.Set
}

// Result is a query's outcome.
type Result struct {
	// Docs holds the top-k documents, best first.
	Docs []DocResult
	// Partial is true when the context expired before every candidate
	// was evaluated or pruned; Docs then ranks only the documents
	// evaluated so far (the best-so-far answer), not the full corpus.
	// Pruned candidates never make a result Partial: pruning is
	// lossless, so a fully pruned+evaluated query is a complete answer.
	Partial bool
	// Degraded is true when part of the query's work failed and was
	// isolated — a kernel panicked on some document, or a concept's
	// postings could not be decoded. Every document in Docs still
	// carries its true score (failed documents are dropped, never
	// mis-scored), so a degraded answer is a sound subset of the
	// healthy answer; Failed counts the dropped candidates.
	Degraded bool
	// Candidates is the number of documents containing every concept;
	// Evaluated is how many of them were actually joined; Pruned is
	// how many were skipped because their score upper bound could not
	// beat the top-k floor; Failed is how many were dropped by
	// recovered faults.
	Candidates int
	Evaluated  int
	Pruned     int
	Failed     int
	// Elapsed is the wall-clock time the query took.
	Elapsed time.Duration
}

// queryState is the per-query fault and cancellation context threaded
// through candidate generation and the worker pool. degraded and
// failed are touched by workers concurrently; cancelled only by the
// dispatcher goroutine.
type queryState struct {
	ctx       context.Context
	idx       *index.Compact
	epoch     uint64
	cancelled bool
	degraded  atomic.Bool
	failed    atomic.Int64
}

// fail records one candidate document dropped by a recovered fault.
func (qs *queryState) fail() {
	qs.failed.Add(1)
	qs.degraded.Store(true)
}

// Search evaluates the query document-at-a-time. It returns an error
// for malformed queries and for admission rejection (ErrOverloaded); a
// context deadline or cancellation instead yields the best-so-far
// Result with Partial set, and recovered faults yield a Result with
// Degraded set — never a panic escaping to the caller.
func (e *Engine) Search(ctx context.Context, q Query) (*Result, error) {
	if len(q.Concepts) == 0 {
		return nil, errors.New("engine: query has no concepts")
	}
	if q.Join == nil {
		return nil, errors.New("engine: query has no kernel factory")
	}
	k := q.K
	if k <= 0 {
		k = DefaultK
	}
	mode := q.Mode
	if mode == ModeDefault {
		mode = e.mode
	}
	n := len(q.Concepts)
	if q.MinMatch < 0 || q.MinMatch > n {
		return nil, fmt.Errorf("engine: MinMatch %d out of range [0, %d]", q.MinMatch, n)
	}
	minMatch := q.MinMatch
	if minMatch == 0 {
		minMatch = n
		if mode == ModeOR {
			minMatch = 1
		}
	}
	// An explicit MinMatch always takes the disjunctive path, even at
	// m = n: AND-by-ranked-union is how the equivalence tests keep the
	// union evaluator honest against the intersection evaluator.
	union := mode == ModeOR || q.MinMatch > 0
	if union && n > 64 {
		return nil, fmt.Errorf("engine: disjunctive queries support at most 64 concepts, got %d", n)
	}

	// Admission control: at the in-flight cap, shed immediately or
	// wait until the caller's context gives up.
	if e.sem != nil {
		if e.shed {
			select {
			case e.sem <- struct{}{}:
			default:
				e.counters.shed.Add(1)
				return nil, ErrOverloaded
			}
		} else {
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				e.counters.shed.Add(1)
				return nil, fmt.Errorf("%w: %w", ErrOverloaded, ctx.Err())
			}
		}
		defer func() { <-e.sem }()
	}

	start := time.Now()
	e.counters.queries.Add(1)
	defer func() { e.latency.observe(time.Since(start)) }()

	snap := e.snap.Load()
	qs := &queryState{ctx: ctx, idx: snap.idx, epoch: snap.epoch}

	// Candidate generation: resolve each concept (cache-assisted) and
	// intersect by a cursor walk. Flat concepts materialize their
	// corpus-wide doc-set; block-served concepts never do — the walk
	// gallops over block doc-ranges from the skip table, decoding only
	// the block directories the intersection actually enters. Large
	// decodes check the context, so a cancelled query stops burning
	// CPU here instead of merging postings nobody will read.
	cds := make([]*conceptData, len(q.Concepts))
	for j, c := range q.Concepts {
		cds[j] = e.conceptData(qs, c)
		if qs.cancelled {
			return e.finish(qs, &Result{Docs: []DocResult{}}, start), nil
		}
	}
	if union {
		return e.searchUnion(qs, q, cds, minMatch, k, start), nil
	}
	candidates, perListMax := e.intersectCursors(qs, cds)

	// No candidate contains every concept: the answer is empty and
	// final, so skip the worker pool entirely. (A concept whose decode
	// failed has an empty candidate list, so degraded queries take
	// this path with Degraded set — an empty but sound answer.)
	res := &Result{Candidates: len(candidates)}
	if len(candidates) == 0 {
		res.Docs = []DocResult{}
		return e.finish(qs, res, start), nil
	}

	// Max-score pruning setup: when the query's kernel can cap a
	// document's score from its per-list maxima, compute every
	// candidate's upper bound and order candidates by bound,
	// descending (ties keep ascending document order). Processing the
	// most promising documents first drives the top-k floor up
	// quickly, so later, weaker candidates are skipped before their
	// join — or even before their match lists are assembled. A factory
	// or bound that panics here downgrades the query to the unpruned
	// (still correct) path.
	nc := len(cds)
	var bounds []float64
	var order []int // candidate indices in dispatch order; nil = as-is
	if e.prune && perListMax != nil {
		bounds, order = e.planPruning(q.Join, candidates, perListMax, nc)
	}

	// Worker pool: candidates flow through one shared channel in
	// dispatchChunk batches, so channel operations and top-k floor
	// loads amortize across a chunk instead of costing one each per
	// document (the flat-worker-scaling fix). The dispatcher assembles
	// flat-concept match lists (touching the caches single-threaded);
	// workers fill block-concept lists themselves — lazy per-block
	// decode fanned out across the pool — run joins, and offer results
	// to the shared top-k heap. The heap's result is insertion-order
	// independent (ties break on document id, and the floor only
	// rises), so unsharded dispatch cannot change answers. Each worker
	// builds one kernel from the query's factory and reuses its
	// scratch for every document it evaluates; a kernel that panics is
	// discarded and rebuilt, so one poisoned join cannot corrupt the
	// next document's evaluation.
	workers := e.workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	top := newTopK(k)
	var evaluated, pruned atomic.Int64
	chunkCap := workers * e.queue / dispatchChunk
	if chunkCap < 1 {
		chunkCap = 1
	}
	jobs := make(chan []docJob, chunkCap)
	var wg sync.WaitGroup
	e.joinWorkers(qs, q.Join, cds, workers, jobs, top, &evaluated, &pruned, &wg)

	// One flat backing array for every job's lists header, and one for
	// the jobs themselves: chunks are subslices of jobsBacking (which
	// never grows past its capacity), so dispatch allocates nothing
	// per chunk and the slices workers receive are never reallocated
	// under them.
	backing := make(match.Lists, len(candidates)*nc)
	jobsBacking := make([]docJob, 0, len(candidates))
	pending := 0 // jobs appended but not yet shipped
	ship := func() bool {
		chunk := jobsBacking[len(jobsBacking)-pending:]
		select {
		case jobs <- chunk:
			e.counters.queueDepth.Add(int64(len(chunk)))
			pending = 0
			return true
		case <-ctx.Done():
			return false
		}
	}
	flushFloor := top.Floor()
dispatch:
	for oi := 0; oi < len(candidates); oi++ {
		if oi&31 == 0 {
			// Stop assembling (and possibly decoding) lists for a
			// query nobody is waiting on anymore, and refresh the
			// dispatcher's floor on the same coarse stride.
			if ctx.Err() != nil {
				break dispatch
			}
			flushFloor = top.Floor()
		}
		i := oi
		bound := math.Inf(1)
		if order != nil {
			i = order[oi]
			bound = bounds[i]
			// Screen before assembling lists: a document whose bound
			// is strictly below the current floor cannot displace any
			// kept document (the floor only rises), so skipping its
			// join — and its match-list assembly — loses nothing.
			if bound < flushFloor {
				pruned.Add(1)
				e.counters.prunedDocs.Add(1)
				continue
			}
		}
		doc := candidates[i]
		lists := backing[i*nc : (i+1)*nc : (i+1)*nc]
		assembled := true
		for j, cd := range cds {
			if cd.blocks != nil {
				continue // workers fill block-served lists lazily
			}
			l, ok := e.list(qs, cd, doc)
			if !ok {
				if qs.cancelled {
					break dispatch
				}
				// Decode failure: drop this document, keep the query.
				qs.fail()
				assembled = false
				break
			}
			lists[j] = l
		}
		if !assembled {
			continue
		}
		jobsBacking = append(jobsBacking, docJob{doc: doc, bound: bound, lists: lists})
		if pending++; pending == dispatchChunk {
			if !ship() {
				break dispatch
			}
		}
	}
	if pending > 0 {
		ship()
	}
	close(jobs)
	wg.Wait()

	// Candidate blocks no worker ever fetched were pruned below
	// decode: their bytes were never touched.
	e.countSkippedBlocks(cds)

	res.Docs = top.results()
	res.Evaluated = int(evaluated.Load())
	res.Pruned = int(pruned.Load())
	return e.finish(qs, res, start), nil
}

// dispatchChunk is the dispatcher's batching factor: candidates ship
// to workers this many at a time. Large enough to amortize channel
// and atomic-floor costs, small enough that the floor the workers
// hold never goes badly stale.
const dispatchChunk = 32

// joinWorkers spawns the join worker pool shared by the conjunctive
// and disjunctive paths. Workers drain job chunks, re-check each job's
// bound against the risen floor, complete block-served match lists
// (lazy per-block decode), run the kernel under panic isolation, and
// offer results to the shared top-k heap. The floor is loaded once per
// chunk and refreshed only after an offer could have raised it; a
// stale floor is sound — the floor only rises, so staleness prunes
// less, never more. Strictly-below only: a bound equal to the floor
// can still win its tie-break on document id. Conjunctive jobs
// (mask == 0) carry full-width list slices; disjunctive jobs carry a
// concept bitmask with one compacted list slot per set bit. The caller
// closes jobs and waits on wg.
func (e *Engine) joinWorkers(qs *queryState, factory KernelFactory, cds []*conceptData,
	workers int, jobs <-chan []docJob, top *topK, evaluated, pruned *atomic.Int64, wg *sync.WaitGroup) {
	nc := len(cds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kern := buildKernel(factory, e)
			fetch := make([]blockFetch, nc)
			for i := range fetch {
				fetch[i].blk = -1
			}
			for chunk := range jobs {
				e.counters.queueDepth.Add(-int64(len(chunk)))
				floor := top.Floor()
				for _, jb := range chunk {
					// Drain without evaluating once the query is out of
					// time; those documents count as unevaluated.
					if qs.ctx.Err() != nil {
						continue
					}
					if jb.bound < floor {
						pruned.Add(1)
						e.counters.prunedDocs.Add(1)
						continue
					}
					filled := jb.mask == 0 && e.fillBlockLists(qs, cds, jb, fetch) ||
						jb.mask != 0 && e.fillUnionLists(qs, cds, jb, fetch)
					if !filled {
						// Block decode failure: drop this document only.
						qs.fail()
						continue
					}
					if kern == nil { // last build panicked: retry per job
						kern = buildKernel(factory, e)
						if kern == nil {
							qs.fail()
							continue
						}
					}
					set, score, ok, panicked := safeJoin(kern, jb.lists)
					e.counters.joinsRun.Add(1)
					if panicked {
						e.counters.joinPanics.Add(1)
						qs.fail()
						kern = nil // poisoned scratch: rebuild before reuse
						continue
					}
					e.counters.docsEvaluated.Add(1)
					evaluated.Add(1)
					if ok && !math.IsNaN(score) {
						top.offer(jb.doc, score, set)
						floor = top.Floor()
					}
				}
			}
		}()
	}
}

// countSkippedBlocks tallies candidate blocks no worker ever fetched —
// pruned below decode, their bytes never touched.
func (e *Engine) countSkippedBlocks(cds []*conceptData) {
	for _, cd := range cds {
		if cd.blocks == nil {
			continue
		}
		skipped := 0
		for w := range cd.cand {
			skipped += bits.OnesCount64(cd.cand[w] &^ cd.fetched[w].Load())
		}
		e.counters.blocksSkipped.Add(uint64(skipped))
	}
}

// finish folds the query state into the result and updates the
// outcome counters.
func (e *Engine) finish(qs *queryState, res *Result, start time.Time) *Result {
	res.Failed = int(qs.failed.Load())
	res.Degraded = qs.degraded.Load()
	res.Partial = res.Evaluated+res.Pruned+res.Failed != res.Candidates || qs.cancelled
	if res.Degraded {
		e.counters.degraded.Add(1)
	}
	if res.Partial {
		e.counters.partials.Add(1)
	}
	if errors.Is(qs.ctx.Err(), context.DeadlineExceeded) {
		e.counters.deadlineHits.Add(1)
	}
	res.Elapsed = time.Since(start)
	return res
}

// planPruning probes the query's kernel for score upper bounds and
// computes the bound-descending dispatch order. Any panic — in the
// factory or in a bound evaluation — is recovered and disables
// pruning for this query: running unpruned is always sound.
func (e *Engine) planPruning(f KernelFactory, candidates []int, perListMax []float64, nc int) (bounds []float64, order []int) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.joinPanics.Add(1)
			bounds, order = nil, nil
		}
	}()
	ub, ok := f().(join.UpperBounded)
	if !ok {
		return nil, nil
	}
	bounds = make([]float64, len(candidates))
	order = make([]int, len(candidates))
	for i := range candidates {
		bounds[i] = ub.ScoreUpperBound(perListMax[i*nc : (i+1)*nc])
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bounds[order[a]] > bounds[order[b]] })
	return bounds, order
}

// buildKernel calls the query's factory, recovering a panicking
// factory to nil so one hostile factory cannot kill a worker (and
// with it the whole query's WaitGroup).
func buildKernel(f KernelFactory, e *Engine) (kern join.Kernel) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.joinPanics.Add(1)
			kern = nil
		}
	}()
	return f()
}

// safeJoin runs one kernel invocation under recover: a panic in
// Reset, in Join, or injected at the KernelJoin site is contained to
// this one document. The kernel must be treated as poisoned after a
// panic — its scratch may be mid-mutation.
func safeJoin(kern join.Kernel, lists match.Lists) (set match.Set, score float64, ok, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			set, score, ok, panicked = nil, 0, false, true
		}
	}()
	faultinject.MaybePanic(faultinject.KernelJoin)
	kern.Reset(nil, lists)
	set, score, ok = kern.Join()
	return
}

// docJob is one unit of worker work: a candidate document, its score
// upper bound (+Inf when the query has no bound), and its assembled
// join instance. Conjunctive jobs leave mask zero and size lists to
// the full query width; disjunctive jobs set the bit of every matched
// concept and size lists to the match count, slots in set-bit order
// (fillUnionLists completes the block-served slots).
type docJob struct {
	doc   int
	bound float64
	mask  uint64
	lists match.Lists
}

// conceptData is the per-query working state for one concept.
type conceptData struct {
	concept index.Concept
	fp      uint64
	failed  bool      // decode failed: the concept poisons its queries
	docs    []int     // sorted ids of documents containing the concept
	maxSc   []float64 // aligned with docs: max match score per document
	// local holds this query's freshly decoded lists; nil until the
	// concept has been decoded (cache hits avoid it entirely).
	local map[int]match.List
	// Block mode (blockpath.go): blocks replaces docs/maxSc/local
	// entirely. cand marks blocks that contributed candidates (written
	// only by the dispatcher goroutine during intersection); fetched
	// marks blocks some worker actually obtained (hit or decode) —
	// atomics, because workers race on them.
	blocks  *blockSet
	cand    []uint64
	fetched []atomic.Uint64
}

// conceptData resolves a concept for this query: from the concept
// cache when possible; else its block skip table
// (index.Compact.ConceptBlocks) — the representation that defers all
// match decoding to the workers; else precomputed doc-max metadata
// (index.Compact.ConceptMeta), which costs a doc-level decode instead
// of a full posting decode; else by decoding postings corpus-wide.
// Hits and misses land in the concept-cache counters.
func (e *Engine) conceptData(qs *queryState, c index.Concept) *conceptData {
	cd := &conceptData{concept: c, fp: index.ConceptKey(c)}
	if ce, ok := e.concepts.Get(conceptKey{epoch: qs.epoch, fp: cd.fp}); ok &&
		!faultinject.ForceMiss(faultinject.ConceptCacheMiss) {
		e.counters.conceptHits.Add(1)
		if ce.blocks != nil {
			cd.setBlocks(ce.blocks)
		} else {
			cd.docs, cd.maxSc = ce.docs, ce.maxSc
		}
		return cd
	}
	e.counters.conceptMisses.Add(1)
	if bs, ok := e.conceptBlocks(qs, cd); ok {
		cd.setBlocks(bs)
		e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{blocks: bs})
		return cd
	}
	if cd.failed {
		return cd
	}
	if docs, maxSc, ok := e.conceptMeta(qs, cd, c); ok {
		cd.docs, cd.maxSc = docs, maxSc
		e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{docs: docs, maxSc: maxSc})
		return cd
	}
	if cd.failed {
		return cd
	}
	e.decode(qs, cd)
	return cd
}

// conceptMeta looks up precomputed concept metadata under recover:
// index.Compact.ConceptMeta panics on corrupt metadata, and a corrupt
// index must degrade the query, not the process.
func (e *Engine) conceptMeta(qs *queryState, cd *conceptData, c index.Concept) (docs []int, maxSc []float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			cd.failed = true
			docs, maxSc, ok = nil, nil, false
		}
	}()
	return qs.idx.ConceptMeta(c)
}

// list fetches the match list of one concept in one document: from
// this query's decoded state, else the LRU, else by decoding the
// concept's postings (which fills both). Hits and misses land in the
// list-cache counters. ok is false when the concept's decode failed
// or was cancelled; the caller must then drop the document (or the
// query), never join against a half-decoded list.
func (e *Engine) list(qs *queryState, cd *conceptData, doc int) (match.List, bool) {
	if cd.failed {
		return nil, false
	}
	if cd.local != nil {
		return cd.local[doc], true
	}
	if ent, ok := e.lists.Get(listKey{epoch: qs.epoch, doc: doc, fp: cd.fp}); ok &&
		!faultinject.ForceMiss(faultinject.ListCacheMiss) {
		e.counters.listHits.Add(1)
		return ent.list, true
	}
	e.counters.listMisses.Add(1)
	if !e.decode(qs, cd) {
		return nil, false
	}
	return cd.local[doc], true
}

// decode materializes a concept across the whole corpus: a k-way merge
// of the member words' posting lists in (document, position) order,
// keeping the best score per (document, position) — the same merge as
// index.Compact.ConceptList, but for all documents at once instead of
// re-decoding per document. Because each word's postings are already
// sorted by (doc, pos), the merge emits every match in final order
// directly into one flat backing list; per-document lists are capped
// subslices of it, so the whole corpus-wide decode costs a handful of
// allocations instead of two map levels plus one slice and one sort
// per document. Results populate the query-local state and both
// caches.
//
// Two failure modes are contained here. Corrupt posting bytes
// (index.Compact.Postings panics on them, and the ConceptDecode
// injection site simulates them) are recovered: the concept is marked
// failed, the query degrades, the process survives. And the merge
// checks the context every few thousand postings, so a cancelled
// query abandons the decode promptly instead of finishing a merge
// nobody will read; an abandoned decode caches nothing for the
// concept and marks the query cancelled.
func (e *Engine) decode(qs *queryState, cd *conceptData) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			cd.failed = true
			cd.docs, cd.maxSc, cd.local = nil, nil, nil
			ok = false
		}
	}()
	faultinject.MaybeSleep(faultinject.DecodeLatency)
	faultinject.MaybePanic(faultinject.ConceptDecode)
	type source struct {
		ps    []index.Posting
		score float64
		next  int
	}
	srcs := make([]source, 0, len(cd.concept))
	total := 0
	for word, score := range cd.concept {
		if ps := qs.idx.Postings(word); len(ps) > 0 {
			srcs = append(srcs, source{ps: ps, score: score})
			total += len(ps)
		}
	}
	flat := make(match.List, 0, total)
	cd.local = make(map[int]match.List)
	var docs []int
	var maxs []float64
	curDoc, begin := -1, 0
	curMax := math.Inf(-1)
	flush := func() {
		if curDoc < 0 {
			return
		}
		l := flat[begin:len(flat):len(flat)]
		cd.local[curDoc] = l
		docs = append(docs, curDoc)
		maxs = append(maxs, curMax)
		e.lists.Put(listKey{epoch: qs.epoch, doc: curDoc, fp: cd.fp}, listEntry{list: l})
		begin = len(flat)
		curMax = math.Inf(-1)
	}
	merged := 0
	for {
		// A multi-million-posting merge must not outlive its query:
		// poll the context on a coarse stride (flush boundaries are
		// irregular, a posting count is steady).
		if merged&0x0fff == 0 && qs.ctx.Err() != nil {
			cd.local = nil
			qs.cancelled = true
			return false
		}
		merged++
		min := -1
		for s := range srcs {
			if srcs[s].next == len(srcs[s].ps) {
				continue
			}
			if min < 0 {
				min = s
				continue
			}
			p, q := srcs[s].ps[srcs[s].next], srcs[min].ps[srcs[min].next]
			if p.Doc < q.Doc || (p.Doc == q.Doc && p.Pos < q.Pos) {
				min = s
			}
		}
		if min < 0 {
			break
		}
		src := &srcs[min]
		p := src.ps[src.next]
		src.next++
		if p.Doc != curDoc {
			flush()
			curDoc = p.Doc
		}
		// Words of one concept can share a (doc, pos); duplicates are
		// adjacent in merge order, and the best member-word score wins.
		if src.score > curMax {
			curMax = src.score
		}
		if n := len(flat); n > begin && flat[n-1].Loc == p.Pos {
			if src.score > flat[n-1].Score {
				flat[n-1].Score = src.score
			}
			continue
		}
		flat = append(flat, match.Match{Loc: p.Pos, Score: src.score})
	}
	flush()
	cd.docs, cd.maxSc = docs, maxs
	e.concepts.Put(conceptKey{epoch: qs.epoch, fp: cd.fp}, conceptEntry{docs: docs, maxSc: maxs})
	return true
}
