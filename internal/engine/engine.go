// Package engine is a concurrent indexed retrieval engine: the first
// vertical slice of the serving system the roadmap aims at. It
// evaluates a multi-concept query document-at-a-time over a compacted
// inverted index (index.Compact), runs a weighted proximity best-join
// per candidate document on a sharded worker pool, and keeps a global
// top-k document heap — the document-at-a-time, budgeted shape that
// Fagin-style threshold algorithms and response-time-guaranteed
// proximity indexes both converge on.
//
// The engine supports context cancellation and deadlines (a query that
// runs out of time returns its best-so-far answer marked Partial), an
// LRU cache of decoded per-(document, concept) match lists so repeated
// queries skip posting decompression entirely, and an observability
// layer of atomic counters plus a latency histogram, exposed via
// Stats() and optionally expvar (Publish).
//
// Joins run on reusable kernels (join.Kernel): a query supplies a
// KernelFactory, each worker builds one kernel from it and reuses that
// kernel's scratch for every candidate document it evaluates, so the
// cached query path performs almost no per-document allocation.
package engine

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/dedup"
	"bestjoin/internal/index"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// Defaults for Config and Query zero values.
const (
	DefaultK             = 10
	DefaultCacheLists    = 4096
	DefaultCacheConcepts = 256
)

// Config sizes the engine.
type Config struct {
	// Workers is the number of join workers per query; ≤ 0 means
	// GOMAXPROCS.
	Workers int
	// CacheLists caps the (document, concept) match-list LRU in
	// entries; ≤ 0 means DefaultCacheLists.
	CacheLists int
	// CacheConcepts caps the concept → candidate-documents LRU in
	// entries; ≤ 0 means DefaultCacheConcepts.
	CacheConcepts int
	// DisablePruning turns off max-score top-k pruning; the zero
	// Config prunes (the knob defaults to on). Pruning is lossless —
	// the differential harness proves pruned and unpruned engines
	// return identical results — so the switch exists for that harness
	// and for measuring the pruning win, not for correctness.
	DisablePruning bool
}

// Engine answers top-k queries over one compacted index. It is safe
// for concurrent use; all mutable state is the two caches and the
// stats counters, each with its own synchronization.
type Engine struct {
	idx      *index.Compact
	workers  int
	prune    bool
	lists    *lruCache[listKey, match.List]
	concepts *lruCache[uint64, conceptEntry]
	counters counters
	latency  histogram
}

// conceptEntry is the cached corpus-wide summary of one concept: the
// sorted candidate documents and, aligned with them, the maximum match
// score the concept attains in each — the per-list caps the pruning
// layer feeds into the kernel's score upper bound.
type conceptEntry struct {
	docs  []int
	maxSc []float64
}

// listKey identifies one decoded match list: a document and a concept
// fingerprint.
type listKey struct {
	doc int
	fp  uint64
}

// New builds an engine over a compacted index.
func New(idx *index.Compact, cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheLists <= 0 {
		cfg.CacheLists = DefaultCacheLists
	}
	if cfg.CacheConcepts <= 0 {
		cfg.CacheConcepts = DefaultCacheConcepts
	}
	return &Engine{
		idx:      idx,
		workers:  cfg.Workers,
		prune:    !cfg.DisablePruning,
		lists:    newLRU[listKey, match.List](cfg.CacheLists),
		concepts: newLRU[uint64, conceptEntry](cfg.CacheConcepts),
	}
}

// ResetCache drops both caches, restoring the cold-query path.
// Benchmarks use it to compare cold and cached latency.
func (e *Engine) ResetCache() {
	e.lists.Reset()
	e.concepts.Reset()
}

// KernelFactory builds one reusable join kernel. The factory itself
// must be safe for concurrent use (Search calls it once per worker);
// the kernels it returns need not be — each worker owns its kernel
// exclusively and reuses its scratch across the documents it
// evaluates. Adapt a plain one-shot function with join.KernelFunc.
type KernelFactory func() join.Kernel

// Joiner is the former name of KernelFactory, kept as an alias for
// call sites predating the kernel refactor.
type Joiner = KernelFactory

// WINJoiner joins under a WIN scoring function (Algorithm 1).
func WINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return join.NewWINKernel(fn) }
}

// MEDJoiner joins under a MED scoring function (Algorithm 2).
func MEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return join.NewMEDKernel(fn) }
}

// MAXJoiner joins under an efficient MAX scoring function.
func MAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return join.NewMAXKernel(fn) }
}

// ValidWINJoiner is WINJoiner restricted to valid matchsets (no token
// answers two query terms at once, the paper's Section VI).
func ValidWINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewWINKernel(fn)) }
}

// ValidMEDJoiner is MEDJoiner restricted to valid matchsets.
func ValidMEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMEDKernel(fn)) }
}

// ValidMAXJoiner is MAXJoiner restricted to valid matchsets.
func ValidMAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMAXKernel(fn)) }
}

// Query is one retrieval request: candidate documents are those
// containing at least one match for every concept, each is joined
// with Join, and the K best are returned.
type Query struct {
	Concepts []index.Concept
	Join     KernelFactory
	// K is the number of documents to return; ≤ 0 means DefaultK.
	K int
}

// DocResult is one ranked document: its id, best matchset, and score.
type DocResult struct {
	Doc   int
	Score float64
	Set   match.Set
}

// Result is a query's outcome.
type Result struct {
	// Docs holds the top-k documents, best first.
	Docs []DocResult
	// Partial is true when the context expired before every candidate
	// was evaluated or pruned; Docs then ranks only the documents
	// evaluated so far (the best-so-far answer), not the full corpus.
	// Pruned candidates never make a result Partial: pruning is
	// lossless, so a fully pruned+evaluated query is a complete answer.
	Partial bool
	// Candidates is the number of documents containing every concept;
	// Evaluated is how many of them were actually joined; Pruned is
	// how many were skipped because their score upper bound could not
	// beat the top-k floor.
	Candidates int
	Evaluated  int
	Pruned     int
	// Elapsed is the wall-clock time the query took.
	Elapsed time.Duration
}

// Search evaluates the query document-at-a-time. It returns an error
// only for malformed queries; a context deadline or cancellation
// instead yields the best-so-far Result with Partial set.
func (e *Engine) Search(ctx context.Context, q Query) (*Result, error) {
	if len(q.Concepts) == 0 {
		return nil, errors.New("engine: query has no concepts")
	}
	if q.Join == nil {
		return nil, errors.New("engine: query has no kernel factory")
	}
	k := q.K
	if k <= 0 {
		k = DefaultK
	}
	start := time.Now()
	e.counters.queries.Add(1)
	defer func() { e.latency.observe(time.Since(start)) }()

	// Candidate generation: materialize each concept's documents
	// (cache-assisted) and intersect, carrying each concept's
	// per-document maximum match score alongside the ids.
	cds := make([]*conceptData, len(q.Concepts))
	for j, c := range q.Concepts {
		cds[j] = e.conceptData(c)
	}
	candidates, perListMax := intersectMax(cds)

	// No candidate contains every concept: the answer is empty and
	// final, so skip the worker pool entirely.
	res := &Result{Candidates: len(candidates)}
	if len(candidates) == 0 {
		res.Docs = []DocResult{}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Max-score pruning setup: when the query's kernel can cap a
	// document's score from its per-list maxima, compute every
	// candidate's upper bound and order candidates by bound,
	// descending (ties keep ascending document order). Processing the
	// most promising documents first drives the top-k floor up
	// quickly, so later, weaker candidates are skipped before their
	// join — or even before their match lists are assembled.
	nc := len(cds)
	var bounds []float64
	var order []int // candidate indices in dispatch order; nil = as-is
	if e.prune && perListMax != nil {
		if ub, ok := q.Join().(join.UpperBounded); ok {
			bounds = make([]float64, len(candidates))
			order = make([]int, len(candidates))
			for i := range candidates {
				bounds[i] = ub.ScoreUpperBound(perListMax[i*nc : (i+1)*nc])
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return bounds[order[a]] > bounds[order[b]] })
		}
	}

	// Sharded worker pool: each worker owns one job channel; documents
	// are sharded by id, so a given document always lands on the same
	// worker. The dispatcher assembles match lists (touching the
	// caches single-threaded); workers only run joins and offer
	// results to the shared top-k heap. Each worker builds one kernel
	// from the query's factory and reuses its scratch for every
	// document it evaluates.
	workers := e.workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	top := newTopK(k)
	var evaluated, pruned atomic.Int64
	chans := make([]chan docJob, workers)
	var wg sync.WaitGroup
	for w := range chans {
		chans[w] = make(chan docJob, 64)
		wg.Add(1)
		go func(jobs <-chan docJob) {
			defer wg.Done()
			kern := q.Join()
			for jb := range jobs {
				// Drain without evaluating once the query is out of
				// time; those documents count as unevaluated.
				if ctx.Err() != nil {
					continue
				}
				// Re-screen against the floor: it may have risen since
				// the dispatcher enqueued this document. Strictly
				// below only — a bound equal to the floor can still
				// win its tie-break on document id.
				if jb.bound < top.Floor() {
					pruned.Add(1)
					e.counters.prunedDocs.Add(1)
					continue
				}
				e.counters.docsEvaluated.Add(1)
				kern.Reset(nil, jb.lists)
				set, score, ok := kern.Join()
				e.counters.joinsRun.Add(1)
				evaluated.Add(1)
				if ok && !math.IsNaN(score) {
					top.offer(jb.doc, score, set)
				}
			}
		}(chans[w])
	}

	// One flat backing array for every job's lists header: per-document
	// jobs slice into it instead of allocating.
	backing := make(match.Lists, len(candidates)*nc)
dispatch:
	for oi := 0; oi < len(candidates); oi++ {
		i := oi
		bound := math.Inf(1)
		if order != nil {
			i = order[oi]
			bound = bounds[i]
			// Screen before assembling lists: a document whose bound
			// is strictly below the current floor cannot displace any
			// kept document (the floor only rises), so skipping its
			// join — and its match-list assembly — loses nothing.
			if bound < top.Floor() {
				pruned.Add(1)
				e.counters.prunedDocs.Add(1)
				continue
			}
		}
		doc := candidates[i]
		lists := backing[i*nc : (i+1)*nc : (i+1)*nc]
		for j, cd := range cds {
			lists[j] = e.list(cd, doc)
		}
		select {
		case chans[doc%workers] <- docJob{doc: doc, bound: bound, lists: lists}:
		case <-ctx.Done():
			break dispatch
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	res.Docs = top.results()
	res.Evaluated = int(evaluated.Load())
	res.Pruned = int(pruned.Load())
	res.Partial = res.Evaluated+res.Pruned != res.Candidates
	if res.Partial {
		e.counters.partials.Add(1)
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		e.counters.deadlineHits.Add(1)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// docJob is one unit of worker work: a candidate document, its score
// upper bound (+Inf when the query has no bound), and its assembled
// join instance.
type docJob struct {
	doc   int
	bound float64
	lists match.Lists
}

// conceptData is the per-query working state for one concept.
type conceptData struct {
	concept index.Concept
	fp      uint64
	docs    []int     // sorted ids of documents containing the concept
	maxSc   []float64 // aligned with docs: max match score per document
	// local holds this query's freshly decoded lists; nil until the
	// concept has been decoded (cache hits avoid it entirely).
	local map[int]match.List
}

// conceptData resolves a concept to its candidate documents and
// per-document maxima: from the concept cache when possible, from
// precomputed index metadata (index.Compact.ConceptMeta) next — which
// costs a doc-level decode instead of a full posting decode — and by
// decoding postings otherwise. Hits and misses land in the
// concept-cache counters.
func (e *Engine) conceptData(c index.Concept) *conceptData {
	cd := &conceptData{concept: c, fp: index.ConceptKey(c)}
	if ce, ok := e.concepts.Get(cd.fp); ok {
		e.counters.conceptHits.Add(1)
		cd.docs, cd.maxSc = ce.docs, ce.maxSc
		return cd
	}
	e.counters.conceptMisses.Add(1)
	if docs, maxSc, ok := e.idx.ConceptMeta(c); ok {
		cd.docs, cd.maxSc = docs, maxSc
		e.concepts.Put(cd.fp, conceptEntry{docs: docs, maxSc: maxSc})
		return cd
	}
	e.decode(cd)
	return cd
}

// list fetches the match list of one concept in one document: from
// this query's decoded state, else the LRU, else by decoding the
// concept's postings (which fills both). Hits and misses land in the
// list-cache counters.
func (e *Engine) list(cd *conceptData, doc int) match.List {
	if cd.local != nil {
		return cd.local[doc]
	}
	if l, ok := e.lists.Get(listKey{doc: doc, fp: cd.fp}); ok {
		e.counters.listHits.Add(1)
		return l
	}
	e.counters.listMisses.Add(1)
	e.decode(cd)
	return cd.local[doc]
}

// decode materializes a concept across the whole corpus: a k-way merge
// of the member words' posting lists in (document, position) order,
// keeping the best score per (document, position) — the same merge as
// index.Compact.ConceptList, but for all documents at once instead of
// re-decoding per document. Because each word's postings are already
// sorted by (doc, pos), the merge emits every match in final order
// directly into one flat backing list; per-document lists are capped
// subslices of it, so the whole corpus-wide decode costs a handful of
// allocations instead of two map levels plus one slice and one sort
// per document. Results populate the query-local state and both
// caches.
func (e *Engine) decode(cd *conceptData) {
	type source struct {
		ps    []index.Posting
		score float64
		next  int
	}
	srcs := make([]source, 0, len(cd.concept))
	total := 0
	for word, score := range cd.concept {
		if ps := e.idx.Postings(word); len(ps) > 0 {
			srcs = append(srcs, source{ps: ps, score: score})
			total += len(ps)
		}
	}
	flat := make(match.List, 0, total)
	cd.local = make(map[int]match.List)
	var docs []int
	var maxs []float64
	curDoc, begin := -1, 0
	curMax := math.Inf(-1)
	flush := func() {
		if curDoc < 0 {
			return
		}
		l := flat[begin:len(flat):len(flat)]
		cd.local[curDoc] = l
		docs = append(docs, curDoc)
		maxs = append(maxs, curMax)
		e.lists.Put(listKey{doc: curDoc, fp: cd.fp}, l)
		begin = len(flat)
		curMax = math.Inf(-1)
	}
	for {
		min := -1
		for s := range srcs {
			if srcs[s].next == len(srcs[s].ps) {
				continue
			}
			if min < 0 {
				min = s
				continue
			}
			p, q := srcs[s].ps[srcs[s].next], srcs[min].ps[srcs[min].next]
			if p.Doc < q.Doc || (p.Doc == q.Doc && p.Pos < q.Pos) {
				min = s
			}
		}
		if min < 0 {
			break
		}
		src := &srcs[min]
		p := src.ps[src.next]
		src.next++
		if p.Doc != curDoc {
			flush()
			curDoc = p.Doc
		}
		// Words of one concept can share a (doc, pos); duplicates are
		// adjacent in merge order, and the best member-word score wins.
		if src.score > curMax {
			curMax = src.score
		}
		if n := len(flat); n > begin && flat[n-1].Loc == p.Pos {
			if src.score > flat[n-1].Score {
				flat[n-1].Score = src.score
			}
			continue
		}
		flat = append(flat, match.Match{Loc: p.Pos, Score: src.score})
	}
	flush()
	cd.docs, cd.maxSc = docs, maxs
	e.concepts.Put(cd.fp, conceptEntry{docs: docs, maxSc: maxs})
}

// intersectMax returns the documents present in every concept's
// candidate list by a k-pointer walk over the sorted lists, together
// with the per-list maximum match scores of every surviving document,
// flattened document-major: perListMax[i*len(cds)+j] is concept j's
// maximum score in the i-th candidate. perListMax is nil when any
// concept lacks maxima.
func intersectMax(cds []*conceptData) (docs []int, perListMax []float64) {
	if len(cds) == 0 {
		return nil, nil
	}
	withMax := true
	for _, cd := range cds {
		if cd.maxSc == nil && len(cd.docs) > 0 {
			withMax = false
			break
		}
	}
	ptrs := make([]int, len(cds))
	i0 := 0
	first := cds[0].docs
	for i0 < len(first) {
		d := first[i0]
		aligned := true
		for j := 1; j < len(cds); j++ {
			dj := cds[j].docs
			p := ptrs[j]
			for p < len(dj) && dj[p] < d {
				p++
			}
			ptrs[j] = p
			if p == len(dj) {
				return docs, perListMax // some list exhausted: done
			}
			if dj[p] != d {
				// d is missing from list j; fast-forward the first
				// list to j's current document and restart the row.
				for i0 < len(first) && first[i0] < dj[p] {
					i0++
				}
				aligned = false
				break
			}
		}
		if !aligned {
			continue
		}
		docs = append(docs, d)
		if withMax {
			perListMax = append(perListMax, cds[0].maxSc[i0])
			for j := 1; j < len(cds); j++ {
				perListMax = append(perListMax, cds[j].maxSc[ptrs[j]])
			}
		}
		i0++
	}
	return docs, perListMax
}
