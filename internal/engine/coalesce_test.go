package engine

// White-box tests for the cross-query decode coalescing layer
// (coalesce.go). The singleflight counting tests install a flight by
// hand so waiter arrival and flight completion are fully deterministic
// — no sleeps, no racing on who becomes leader — and the barrier test
// checks the conservation invariant that survives any interleaving:
// every fetch is exactly one of a cache hit, a decode, or a coalesced
// wait. scripts/check.sh runs the package under -race, so the
// channel-close publication of the shared result is verified too.

import (
	"context"
	"sync"
	"testing"
	"time"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// coalesceFixture builds an engine over a block-served concept and the
// query-scoped state fetchBlock needs, without running a search.
func coalesceFixture(t *testing.T, cfg Config) (*Engine, *queryState, *conceptData) {
	t.Helper()
	corpus := make([]string, 24)
	for i := range corpus {
		corpus[i] = "amber basalt cedar"
	}
	compact := buildCompact(t, corpus)
	concept := index.Concept{"amber": 1, "basalt": 0.5}
	if !compact.AddConceptBlocksBatchSized(concept, 8) {
		t.Fatal("batch layout not registered")
	}
	e := New(compact, cfg)
	qs := &queryState{ctx: context.Background(), idx: compact, epoch: 1}
	cd := e.conceptData(qs, concept)
	if cd.blocks == nil {
		t.Fatal("concept not in block mode")
	}
	return e, qs, cd
}

// TestCoalesceWaitersServedByLeader pins the deterministic accounting
// of N goroutines sharing one concept's block: exactly 1 BlockDecodes
// (the leader's) and N−1 CoalescedDecodes (everyone else served the
// leader's slices). The flight is installed by hand and the test plays
// the leader, so waiter arrival and completion order are fixed — no
// racing on who decodes.
func TestCoalesceWaitersServedByLeader(t *testing.T) {
	e, qs, cd := coalesceFixture(t, Config{Workers: 1})
	const n = 8
	key := listKey{epoch: qs.epoch, doc: 0, fp: cd.fp}
	call := &flightCall{done: make(chan struct{})}
	e.flights.mu.Lock()
	e.flights.m[key] = call
	e.flights.mu.Unlock()

	type fetchResult struct {
		docs  []int
		lists []match.List
		ok    bool
	}
	results := make(chan fetchResult, n-1)
	for g := 0; g < n-1; g++ {
		go func() {
			docs, lists, ok := e.fetchBlock(qs, cd, 0)
			results <- fetchResult{docs, lists, ok}
		}()
	}
	// All N−1 must register as waiters before the flight completes.
	deadline := time.Now().Add(10 * time.Second)
	for e.counters.decodeWaits.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d fetches became waiters", e.counters.decodeWaits.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}

	// The test is the Nth goroutine — the leader: one real decode,
	// cache Put, publish, flight removal, wake.
	docs, lists, ok := e.decodeBlock(qs, cd, 0)
	if !ok {
		t.Fatal("leader decode failed")
	}
	e.lists.Put(key, listEntry{docs: docs, lists: lists})
	call.docs, call.lists, call.ok = docs, lists, true
	e.flights.mu.Lock()
	delete(e.flights.m, key)
	e.flights.mu.Unlock()
	close(call.done)

	for g := 0; g < n-1; g++ {
		r := <-results
		if !r.ok {
			t.Fatal("waiter failed on a successful flight")
		}
		// Waiters share the leader's slices — the same backing array,
		// not copies, exactly like a cache hit.
		if len(r.docs) == 0 || &r.docs[0] != &docs[0] {
			t.Fatal("waiter did not receive the leader's shared slice")
		}
		_ = r.lists
	}
	st := e.Stats()
	if st.BlockDecodes != 1 {
		t.Fatalf("BlockDecodes = %d, want exactly 1 for %d goroutines", st.BlockDecodes, n)
	}
	if st.CoalescedDecodes != n-1 {
		t.Fatalf("CoalescedDecodes = %d, want %d", st.CoalescedDecodes, n-1)
	}
	if st.DecodeWaits != n-1 {
		t.Fatalf("DecodeWaits = %d, want %d", st.DecodeWaits, n-1)
	}
	if st.ListHits != 0 {
		t.Fatalf("waiters touched the cache: hits=%d", st.ListHits)
	}
	if cd.fetched[0].Load()&1 == 0 {
		t.Fatal("coalesced fetch did not mark the block fetched")
	}
	if qs.degraded.Load() {
		t.Fatal("successful coalesced fetch degraded the query")
	}
}

// TestCoalesceCancelledWaiter pins the abandonment contract: a waiter
// whose context is already cancelled returns immediately without
// touching the shared call, so the flight completes normally for
// everyone else; the cancelled fetch counts as a wait but never as a
// coalesced decode, and does not degrade anything by itself.
func TestCoalesceCancelledWaiter(t *testing.T) {
	e, qs, cd := coalesceFixture(t, Config{Workers: 1})
	key := listKey{epoch: qs.epoch, doc: 0, fp: cd.fp}
	call := &flightCall{done: make(chan struct{})}
	e.flights.mu.Lock()
	e.flights.m[key] = call
	e.flights.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cqs := &queryState{ctx: ctx, idx: qs.idx, epoch: qs.epoch}
	ccd := e.conceptData(cqs, cd.concept)
	docs, lists, ok := e.fetchBlock(cqs, ccd, 0)
	if ok || docs != nil || lists != nil {
		t.Fatalf("cancelled waiter returned a result: ok=%v", ok)
	}
	if cqs.degraded.Load() {
		t.Fatal("cancellation alone must not degrade (it is Partial, not Degraded)")
	}
	if got := e.counters.decodeWaits.Load(); got != 1 {
		t.Fatalf("DecodeWaits = %d, want 1", got)
	}
	if got := e.counters.coalescedDecodes.Load(); got != 0 {
		t.Fatalf("CoalescedDecodes = %d, want 0", got)
	}
	// The shared call is untouched: completing the flight still serves
	// a healthy waiter the leader's result.
	select {
	case <-call.done:
		t.Fatal("cancelled waiter completed the flight")
	default:
	}
	wantDocs, wantLists, err := cd.blocks.bt.DecodeBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	call.docs, call.lists, call.ok = wantDocs, wantLists, true
	// Complete the flight the way the leader does: cache first, then
	// removal — so a fetch arriving after the flight is gone finds the
	// cache warm instead of decoding again.
	e.lists.Put(key, listEntry{docs: wantDocs, lists: wantLists})
	e.flights.mu.Lock()
	delete(e.flights.m, key)
	e.flights.mu.Unlock()
	close(call.done)
	docs, _, ok = e.fetchBlock(qs, cd, 0)
	if !ok || &docs[0] != &wantDocs[0] {
		t.Fatal("late fetch not served from the cache the flight populated")
	}
	if got := e.counters.listHits.Load(); got != 1 {
		t.Fatalf("ListHits = %d, want 1 (the post-flight fetch)", got)
	}
}

// TestCoalesceSharedFailureDegrades pins the failure contract: when
// the leader completes the flight with ok=false (corrupt bytes, an
// injected fault), every waiter degrades its own query — the same
// outcome as decoding the corrupt bytes itself — without counting a
// coalesced decode and without re-counting the leader's underlying
// decode failure.
func TestCoalesceSharedFailureDegrades(t *testing.T) {
	e, qs, cd := coalesceFixture(t, Config{Workers: 1})
	key := listKey{epoch: qs.epoch, doc: 0, fp: cd.fp}
	call := &flightCall{done: make(chan struct{})}
	e.flights.mu.Lock()
	e.flights.m[key] = call
	e.flights.mu.Unlock()

	const n = 4
	var wg sync.WaitGroup
	oks := make([]bool, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, _, oks[g] = e.fetchBlock(qs, cd, 0)
		}(g)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.counters.decodeWaits.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d fetches became waiters", e.counters.decodeWaits.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	// Leader fails: flight completes with ok still false.
	e.flights.mu.Lock()
	delete(e.flights.m, key)
	e.flights.mu.Unlock()
	close(call.done)
	wg.Wait()

	for g, ok := range oks {
		if ok {
			t.Fatalf("waiter %d succeeded on a failed flight", g)
		}
	}
	if !qs.degraded.Load() {
		t.Fatal("shared failure did not degrade the waiters' query")
	}
	st := e.Stats()
	if st.CoalescedDecodes != 0 {
		t.Fatalf("CoalescedDecodes = %d on a failed flight, want 0", st.CoalescedDecodes)
	}
	if st.DecodeFailures != 0 {
		t.Fatalf("waiters re-counted the leader's failure: DecodeFailures = %d", st.DecodeFailures)
	}
	if st.DecodeWaits != n {
		t.Fatalf("DecodeWaits = %d, want %d", st.DecodeWaits, n)
	}
}

// TestCoalesceConservation races N cold fetches of the same block with
// no hand-built flight and checks the invariant that holds under every
// interleaving: each fetch is exactly one cache hit, actual decode, or
// coalesced wait; at least one real decode happened; and every fetch
// got the identical decoded content.
func TestCoalesceConservation(t *testing.T) {
	e, qs, cd := coalesceFixture(t, Config{Workers: 1})
	const n = 16
	var wg sync.WaitGroup
	docsOut := make([][]int, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			docs, _, ok := e.fetchBlock(qs, cd, 0)
			if ok {
				docsOut[g] = docs
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.BlockDecodes == 0 {
		t.Fatal("no fetch performed the decode")
	}
	if st.BlockDecodes+st.CoalescedDecodes+st.ListHits != n {
		t.Fatalf("decodes %d + coalesced %d + hits %d != %d fetches",
			st.BlockDecodes, st.CoalescedDecodes, st.ListHits, n)
	}
	want, _, err := cd.blocks.bt.DecodeBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	for g := range docsOut {
		if len(docsOut[g]) != len(want) {
			t.Fatalf("fetch %d returned %d docs, want %d", g, len(docsOut[g]), len(want))
		}
		for i := range want {
			if docsOut[g][i] != want[i] {
				t.Fatalf("fetch %d doc %d = %d, want %d", g, i, docsOut[g][i], want[i])
			}
		}
	}
	// The flight map must be empty again — leaked entries would turn
	// every future miss into a stuck waiter.
	e.flights.mu.Lock()
	leaked := len(e.flights.m)
	e.flights.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flight entries leaked", leaked)
	}
}

// TestCoalesceDisabled pins the escape hatch: with
// Config.DisableCoalescing every miss decodes for itself — no flights,
// no waits — which is the baseline the -nocoalesce proxserve flag
// exposes.
func TestCoalesceDisabled(t *testing.T) {
	e, qs, cd := coalesceFixture(t, Config{Workers: 1, DisableCoalescing: true})
	for i := 0; i < 3; i++ {
		if _, _, ok := e.fetchBlock(qs, cd, 0); !ok {
			t.Fatal("fetch failed")
		}
	}
	st := e.Stats()
	if st.DecodeWaits != 0 || st.CoalescedDecodes != 0 {
		t.Fatalf("coalescing ran while disabled: waits=%d coalesced=%d",
			st.DecodeWaits, st.CoalescedDecodes)
	}
	if st.BlockDecodes != 1 || st.ListHits != 2 {
		t.Fatalf("decodes=%d hits=%d, want 1 and 2", st.BlockDecodes, st.ListHits)
	}
}

// TestCoalesceEndToEnd drives the layer through the public Search API:
// many concurrent identical queries on a cold engine must all return
// the same (healthy) result, and the flight map must drain.
func TestCoalesceEndToEnd(t *testing.T) {
	corpus := make([]string, 60)
	for i := range corpus {
		corpus[i] = "amber basalt cedar delta"
	}
	compact := buildCompact(t, corpus)
	concept := index.Concept{"amber": 1, "basalt": 0.5}
	if !compact.AddConceptBlocksBatchSized(concept, 8) {
		t.Fatal("batch layout not registered")
	}
	e := New(compact, Config{Workers: 2})
	q := Query{Concepts: []index.Concept{concept}, Join: diffFamilies()[0].factory, K: 5}
	ref, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetCache()

	const n = 12
	var wg sync.WaitGroup
	results := make([]*Result, n)
	errs := make([]error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = e.Search(context.Background(), q)
		}(g)
	}
	wg.Wait()
	for g := 0; g < n; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		assertIdentical(t, "concurrent query", results[g], ref)
		if results[g].Degraded {
			t.Fatalf("query %d degraded on a healthy index", g)
		}
	}
	e.flights.mu.Lock()
	leaked := len(e.flights.m)
	e.flights.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flight entries leaked", leaked)
	}
}
