package engine

import (
	"sort"
	"sync/atomic"

	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
	"bestjoin/internal/match"
)

// The block-max skip layer: when a concept has block-partitioned
// postings registered (index.Compact.AddConceptBlocks), the engine
// serves it without ever materializing its corpus-wide doc-set or
// match lists. Candidate generation walks the skip table — whole
// blocks are galloped over by their (FirstDoc, LastDoc) range, and a
// block's document directory (a few varints) is decoded only when the
// intersection actually needs ids inside it. Match areas are decoded
// lazily, per block, by the join workers — in parallel, which is what
// finally breaks the serial-decode bottleneck of the flat path — and
// only for blocks that still matter when a worker reaches them: a
// candidate block whose block-max score upper bound has fallen
// strictly below the top-k floor is pruned below decode, its bytes
// never touched. Stats().BlocksSkipped counts those;
// Stats().BlockDecodes counts the blocks that were decoded.
//
// Soundness mirrors the flat pruning argument (DESIGN.md): a block's
// MaxScore is ≥ every per-document maximum inside it, the UpperBound
// hooks are monotone non-decreasing in each per-list maximum, and the
// floor only rises — so a block-max bound strictly below the floor
// proves every document in the block loses. Equality never prunes,
// preserving the document-id tie-break. The differential suite
// (TestDifferentialBlocksVsFlat) proves block-served and flat-served
// engines return bitwise-identical results.

// blockSet is the cached per-(epoch, concept) block state: the
// decoded skip table plus a memo of decoded block directories. The
// directory memo is shared by every query on the epoch (it lives in
// the concept cache), so it is written through atomic pointers; a
// racing double-decode is benign — both goroutines store equal
// slices.
type blockSet struct {
	bt   *index.BlockTable
	dirs []atomic.Pointer[[]int]
}

// setBlocks puts a concept's per-query state into block mode, sizing
// the candidate and fetched bitsets (one bit per block).
func (cd *conceptData) setBlocks(bs *blockSet) {
	cd.blocks = bs
	words := (bs.bt.NumBlocks() + 63) / 64
	cd.cand = make([]uint64, words)
	cd.fetched = make([]atomic.Uint64, words)
}

// conceptBlocks resolves a concept's block table under recover:
// index.Compact.ConceptBlocks panics on corrupt bytes, and a corrupt
// index must degrade the query, not the process. ok is false both
// when the concept has no blocks registered (fall through to the flat
// path) and when the lookup failed (cd.failed is then set).
func (e *Engine) conceptBlocks(qs *queryState, cd *conceptData) (bs *blockSet, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			cd.failed = true
			bs, ok = nil, false
		}
	}()
	bt, found := qs.idx.ConceptBlocks(cd.concept)
	if !found {
		return nil, false
	}
	return &blockSet{bt: bt, dirs: make([]atomic.Pointer[[]int], bt.NumBlocks())}, true
}

// ensureDir returns block blk's document directory, decoding and
// memoizing it on first need. A decode failure (corrupt in-memory
// bytes) fails the concept; the intersection then stops extending the
// candidate list — a sound subset, like every other degraded path.
func (e *Engine) ensureDir(qs *queryState, cd *conceptData, blk int) ([]int, bool) {
	if p := cd.blocks.dirs[blk].Load(); p != nil {
		return *p, true
	}
	docs, err := cd.blocks.bt.DecodeDocs(blk)
	if err != nil {
		e.counters.decodeFailures.Add(1)
		qs.degraded.Store(true)
		cd.failed = true
		return nil, false
	}
	cd.blocks.dirs[blk].Store(&docs)
	return docs, true
}

// listCursor iterates one concept's documents in ascending order for
// the intersection walk, over either representation. Flat concepts
// walk their materialized doc slice; block concepts walk the skip
// table, passing whole blocks by range without touching their bytes
// and decoding a directory only when the walk needs ids inside it.
type listCursor struct {
	cd *conceptData
	i  int // flat mode: index into cd.docs
	// Block mode. dir is nil until the current block's directory is
	// actually needed: a seek that lands on a block's FirstDoc answers
	// straight from the skip entry.
	blk int
	dir []int
	di  int
}

// seek positions the cursor at the first document ≥ d and returns it;
// ok is false when the concept is exhausted (or failed).
func (cu *listCursor) seek(e *Engine, qs *queryState, d int) (int, bool) {
	cd := cu.cd
	if cd.blocks == nil {
		// The failed check matters on the flat path too: the union
		// dispatcher interleaves match-list decodes with cursor seeks,
		// and a failed decode nils cd.docs under a cursor that has
		// already advanced — the cursor must read as exhausted, not
		// index the vanished slice.
		if cd.failed {
			return 0, false
		}
		for cu.i < len(cd.docs) && cd.docs[cu.i] < d {
			cu.i++
		}
		if cu.i == len(cd.docs) {
			return 0, false
		}
		return cd.docs[cu.i], true
	}
	if cd.failed {
		return 0, false
	}
	infos := cd.blocks.bt.Infos
	for {
		if cu.blk == len(infos) {
			return 0, false
		}
		info := &infos[cu.blk]
		if info.LastDoc < d {
			cu.blk++
			cu.dir = nil
			continue
		}
		if cu.dir == nil {
			if d <= info.FirstDoc {
				return info.FirstDoc, true
			}
			dir, ok := e.ensureDir(qs, cd, cu.blk)
			if !ok {
				return 0, false
			}
			cu.dir, cu.di = dir, 0
		}
		for cu.di < len(cu.dir) && cu.dir[cu.di] < d {
			cu.di++
		}
		if cu.di == len(cu.dir) {
			cu.blk++
			cu.dir = nil
			continue
		}
		return cu.dir[cu.di], true
	}
}

// maxAt returns the current document's per-list maximum match score:
// exact for flat concepts, the containing block's MaxScore for block
// concepts. The block max is coarser but still an upper bound on the
// document's true maximum, so every bound built from it stays sound —
// and keeping bounds constant across a block is exactly what makes
// whole-block skipping possible.
func (cu *listCursor) maxAt() float64 {
	if cu.cd.blocks == nil {
		return cu.cd.maxSc[cu.i]
	}
	return cu.cd.blocks.bt.Infos[cu.blk].MaxScore
}

// mark records the current block as a candidate block (it contributed
// at least one candidate document). Candidate blocks never fetched by
// a worker were pruned below decode.
func (cu *listCursor) mark() {
	if cu.cd.blocks != nil {
		cu.cd.cand[cu.blk/64] |= 1 << (cu.blk % 64)
	}
}

// intersectCursors returns the documents present in every concept by
// a leapfrog walk over cursors, together with the per-list maximum
// match scores of every surviving document, flattened document-major:
// perListMax[i*len(cds)+j] is concept j's maximum (or block maximum)
// for the i-th candidate. perListMax is nil when any flat concept
// lacks maxima. Unlike the pre-block intersection, no concept's
// corpus-wide doc-set is ever materialized here.
func (e *Engine) intersectCursors(qs *queryState, cds []*conceptData) (docs []int, perListMax []float64) {
	n := len(cds)
	withMax := true
	for _, cd := range cds {
		if cd.failed {
			return nil, nil
		}
		if cd.blocks == nil && cd.maxSc == nil && len(cd.docs) > 0 {
			withMax = false
		}
	}
	curs := make([]listCursor, n)
	for j := range curs {
		curs[j].cd = cds[j]
	}
	d, matched, j := 0, 0, 0
	for {
		doc, ok := curs[j].seek(e, qs, d)
		if !ok {
			return docs, perListMax
		}
		if doc > d {
			d, matched = doc, 1
		} else {
			matched++
		}
		if matched == n {
			docs = append(docs, d)
			if withMax {
				for jj := range curs {
					perListMax = append(perListMax, curs[jj].maxAt())
				}
			}
			for jj := range curs {
				curs[jj].mark()
			}
			// Poll the context on a coarse stride: a cancelled query
			// stops generating candidates nobody will read.
			if len(docs)&0x3ff == 0 && qs.ctx.Err() != nil {
				qs.cancelled = true
				return docs, perListMax
			}
			d++
			matched = 0
		}
		if j++; j == n {
			j = 0
		}
	}
}

// blockFetch memoizes one worker's most recent block per concept:
// bound-tied documents keep ascending id order through dispatch, so
// consecutive jobs usually share a block and skip even the cache Get.
type blockFetch struct {
	blk   int
	docs  []int
	lists []match.List
}

// fillBlockLists completes a job's match lists for block-served
// concepts: locate the document's block, fetch its decoded form
// (worker memo → list cache → decode), and slot the document's list
// into the job. Flat concepts were already assembled by the
// dispatcher. false means a decode failed and the document must be
// dropped.
func (e *Engine) fillBlockLists(qs *queryState, cds []*conceptData, jb docJob, fetch []blockFetch) bool {
	for j, cd := range cds {
		if cd.blocks == nil {
			continue
		}
		f := &fetch[j]
		blk := cd.blocks.bt.FindBlock(jb.doc)
		if blk < 0 {
			return false // unreachable for a generated candidate
		}
		if f.blk != blk {
			docs, lists, ok := e.fetchBlock(qs, cd, blk)
			if !ok {
				return false
			}
			f.blk, f.docs, f.lists = blk, docs, lists
		}
		di := sort.SearchInts(f.docs, jb.doc)
		if di == len(f.docs) || f.docs[di] != jb.doc {
			return false
		}
		jb.lists[j] = f.lists[di]
	}
	return true
}

// fetchBlock returns one decoded block via the list cache (block-mode
// entries are keyed by block index in the listKey doc field — a
// concept is served by exactly one representation per epoch, so the
// key spaces cannot collide). Cache misses route through the flight
// group (coalesce.go) so concurrent misses on the same block — within
// one query's worker pool or across queries sharing a concept —
// perform a single decode. The fetched bit records that the block was
// needed; candidate blocks with the bit still clear at query end were
// pruned below decode.
func (e *Engine) fetchBlock(qs *queryState, cd *conceptData, blk int) (docs []int, lists []match.List, ok bool) {
	key := listKey{epoch: qs.epoch, doc: blk, fp: cd.fp}
	if ent, hit := e.lists.Get(key); hit && !faultinject.ForceMiss(faultinject.ListCacheMiss) {
		e.counters.listHits.Add(1)
		cd.fetched[blk/64].Or(1 << (blk % 64))
		return ent.docs, ent.lists, true
	}
	if e.coalesce {
		return e.fetchCoalesced(qs, cd, blk, key)
	}
	e.counters.listMisses.Add(1)
	docs, lists, ok = e.decodeBlock(qs, cd, blk)
	if !ok {
		return nil, nil, false
	}
	cd.fetched[blk/64].Or(1 << (blk % 64))
	e.lists.Put(key, listEntry{docs: docs, lists: lists})
	return docs, lists, true
}

// decodeBlock decodes one block's match area under recover (the
// ConceptDecode injection site simulates corrupt bytes here too). A
// failure drops only the documents that needed this block, never the
// query — and never writes conceptData fields, which belong to the
// dispatcher goroutine.
func (e *Engine) decodeBlock(qs *queryState, cd *conceptData, blk int) (docs []int, lists []match.List, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.decodeFailures.Add(1)
			qs.degraded.Store(true)
			docs, lists, ok = nil, nil, false
		}
	}()
	faultinject.MaybeSleep(faultinject.DecodeLatency)
	faultinject.MaybePanic(faultinject.ConceptDecode)
	d, l, err := cd.blocks.bt.DecodeBlock(blk)
	if err != nil {
		e.counters.decodeFailures.Add(1)
		qs.degraded.Store(true)
		return nil, nil, false
	}
	e.counters.blockDecodes.Add(1)
	return d, l, true
}
