package engine

// Differential harness for disjunctive (ranked-union / m-of-n)
// retrieval: WAND pivot skipping is supposed to be invisible — the
// only observable difference between the pruned union path and the
// exhaustive ranked union is how many pivots were bounded away. This
// property test builds random corpora and random queries and asserts
// the pruned engine's output — document ids, scores (bit for bit),
// matchsets, tie-break order, and the Partial flag — is identical to
// the unpruned engine's AND to an independent exhaustive baseline,
// across all scoring families, with and without duplicate avoidance,
// one and several workers, every minMatch in [1, n], and all candidate
// representations (flat decode, doc-max metadata, two block sizes).
// scripts/check.sh runs it under -race.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"bestjoin/internal/index"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// bruteForceUnion ranks every document matching at least minMatch
// concepts by re-deriving its lists from the compacted index and
// joining only the matched (non-empty) lists, compacted in concept
// order — the independent exhaustive ranked-union reference the WAND
// path must agree with bit for bit.
func bruteForceUnion(c *index.Compact, concepts []index.Concept, jn KernelFactory, k, minMatch int) []DocResult {
	var out []DocResult
	kern := jn()
	for d := 0; d < c.Docs(); d++ {
		lists := c.QueryLists(d, concepts)
		sub := make(match.Lists, 0, len(lists))
		for _, l := range lists {
			if len(l) > 0 {
				sub = append(sub, l)
			}
		}
		if len(sub) < minMatch {
			continue
		}
		kern.Reset(nil, sub)
		set, score, ok := kern.Join()
		if ok && !math.IsNaN(score) {
			out = append(out, DocResult{Doc: d, Score: score, Set: set.Clone()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// assertUnionIdentical is assertIdentical minus the Candidates
// comparison: the WAND walk legitimately confirms fewer pivots than
// the exhaustive union enumerates (block jumps skip documents without
// ever establishing membership), so only the observable answer —
// docs, scores, matchsets, order, Partial — must match.
func assertUnionIdentical(t *testing.T, label string, pruned, unpruned *Result) {
	t.Helper()
	if pruned.Partial != unpruned.Partial {
		t.Fatalf("%s: Partial %v (pruned) vs %v (unpruned)", label, pruned.Partial, unpruned.Partial)
	}
	assertSameDocs(t, label, pruned.Docs, unpruned.Docs)
}

// assertSameDocs compares two rankings bit for bit.
func assertSameDocs(t *testing.T, label string, got, want []DocResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d docs, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Doc != w.Doc {
			t.Fatalf("%s: rank %d doc %d, want %d\ngot:  %+v\nwant: %+v", label, i, g.Doc, w.Doc, got, want)
		}
		if g.Score != w.Score {
			t.Fatalf("%s: rank %d (doc %d) score %v, want %v", label, i, g.Doc, g.Score, w.Score)
		}
		if len(g.Set) != len(w.Set) {
			t.Fatalf("%s: rank %d (doc %d) matchset sizes %d vs %d", label, i, g.Doc, len(g.Set), len(w.Set))
		}
		for j := range g.Set {
			if g.Set[j] != w.Set[j] {
				t.Fatalf("%s: rank %d (doc %d) matchset %v, want %v", label, i, g.Doc, g.Set, w.Set)
			}
		}
	}
}

func TestDifferentialUnionWANDVsExhaustive(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(6000 + int64(trial)))
		corpus := diffCorpus(rng)
		concepts := diffConcepts(rng)
		idx := buildCompact(t, corpus)
		// Rotate the candidate representation: flat posting decode,
		// precomputed doc-max metadata, and two block sizes (tiny so
		// walks cross many block boundaries, mid so several documents
		// share a block and block jumps have room).
		blockSize := 0
		switch trial % 4 {
		case 1:
			for _, c := range concepts {
				idx.AddConceptMeta(c)
			}
		case 2:
			blockSize = 16
		case 3:
			blockSize = 3
		}
		if blockSize > 0 {
			for _, c := range concepts {
				idx.AddConceptBlocksSized(c, blockSize)
			}
		}
		k := 1 + rng.Intn(6)
		for minMatch := 1; minMatch <= len(concepts); minMatch++ {
			for _, workers := range []int{1, 4} {
				for _, fam := range diffFamilies() {
					pruned := New(idx, Config{Workers: workers})
					unpruned := New(idx, Config{Workers: workers, DisablePruning: true})
					q := Query{Concepts: concepts, Join: fam.factory, K: k, Mode: ModeOR, MinMatch: minMatch}
					rp, err := pruned.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					ru, err := unpruned.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d %s workers=%d k=%d m=%d bs=%d",
						trial, fam.name, workers, k, minMatch, blockSize)
					assertResultInvariants(t, label+" pruned", rp)
					assertResultInvariants(t, label+" unpruned", ru)
					assertUnionIdentical(t, label, rp, ru)
					want := bruteForceUnion(idx, concepts, fam.factory, k, minMatch)
					assertSameDocs(t, label+" vs baseline", rp.Docs, want)
					// The exhaustive union confirms every qualifying
					// document; the WAND walk never confirms more.
					if ru.Candidates > 0 && rp.Candidates > ru.Candidates {
						t.Fatalf("%s: pruned confirmed %d pivots, exhaustive %d", label, rp.Candidates, ru.Candidates)
					}
					st := pruned.Stats()
					if st.UnionCandidates != uint64(rp.Candidates) {
						t.Fatalf("%s: stats UnionCandidates %d != Result.Candidates %d",
							label, st.UnionCandidates, rp.Candidates)
					}
					if up := unpruned.Stats().PivotSkips; up != 0 {
						t.Fatalf("%s: unpruned engine skipped %d pivots", label, up)
					}
					// Repeat on warm caches: identical again.
					rp2, err := pruned.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					assertUnionIdentical(t, label+" cached", rp2, ru)
				}
			}
		}
	}
}

// TestUnionUnknownConceptDegradesToSurvivors pins the headline OR
// semantics: a query naming one concept absent from the corpus must
// rank by the surviving concepts — identical to the same query without
// the unknown term — not return empty (the conjunctive behavior) and
// not report Degraded (nothing failed; the term simply has no
// postings).
func TestUnionUnknownConceptDegradesToSurvivors(t *testing.T) {
	c := buildCompact(t, testCorpus(80, 13))
	jn := WINJoiner(scorefn.ExpWIN{Alpha: 0.1})
	known := []index.Concept{
		{"lenovo": 1, "dell": 0.9, "hewlett": 0.8},
		{"nba": 1, "olympics": 0.9},
	}
	unknown := index.Concept{"xylophone": 1, "glockenspiel": 0.5}
	e := New(c, Config{Workers: 2})

	or, err := e.Search(context.Background(), Query{
		Concepts: append(append([]index.Concept{}, known...), unknown),
		Join:     jn, K: 5, Mode: ModeOR,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Search(context.Background(), Query{Concepts: known, Join: jn, K: 5, Mode: ModeOR})
	if err != nil {
		t.Fatal(err)
	}
	if len(or.Docs) == 0 {
		t.Fatal("union query with one unknown concept returned nothing")
	}
	if or.Degraded {
		t.Fatal("an absent concept is not a failure: Degraded must stay false")
	}
	assertSameDocs(t, "unknown-among-known", or.Docs, want.Docs)
	assertResultInvariants(t, "unknown-among-known", or)

	// Contrast: the conjunctive mode on the same concepts finds no
	// document containing the unknown term.
	and, err := e.Search(context.Background(), Query{
		Concepts: append(append([]index.Concept{}, known...), unknown),
		Join:     jn, K: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(and.Docs) != 0 {
		t.Fatalf("conjunctive query with an unknown concept returned %d docs", len(and.Docs))
	}
}

// TestUnionAllConceptsUnknown: nothing survives, so the answer is
// empty, complete, and healthy.
func TestUnionAllConceptsUnknown(t *testing.T) {
	c := buildCompact(t, testCorpus(40, 17))
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	e := New(c, Config{})
	res, err := e.Search(context.Background(), Query{
		Concepts: []index.Concept{{"xylophone": 1}, {"glockenspiel": 1}},
		Join:     jn, K: 5, Mode: ModeOR,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 0 || res.Partial || res.Degraded || res.Candidates != 0 {
		t.Fatalf("all-unknown union: %+v, want empty complete healthy", res)
	}
	assertResultInvariants(t, "all-unknown", res)
}

// TestUnionSingleConceptMatchesAND: with one concept, OR and AND are
// the same query; the ranked answers must agree bit for bit.
func TestUnionSingleConceptMatchesAND(t *testing.T) {
	c := buildCompact(t, testCorpus(90, 19))
	concepts := []index.Concept{{"lenovo": 1, "dell": 0.9, "hewlett": 0.8}}
	for _, fam := range diffFamilies() {
		e := New(c, Config{Workers: 4})
		and, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 6})
		if err != nil {
			t.Fatal(err)
		}
		or, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 6, Mode: ModeOR})
		if err != nil {
			t.Fatal(err)
		}
		assertSameDocs(t, "single-concept "+fam.name, or.Docs, and.Docs)
		assertResultInvariants(t, "single-concept "+fam.name, or)
	}
}

// TestUnionMinMatchBoundaries pins the m-of-n edges: MinMatch = n must
// reproduce the conjunctive answer exactly (AND evaluated by ranked
// union), and MinMatch = 1 must be plain OR.
func TestUnionMinMatchBoundaries(t *testing.T) {
	c := buildCompact(t, testCorpus(100, 23))
	concepts := testConcepts()
	n := len(concepts)
	for _, fam := range diffFamilies() {
		e := New(c, Config{Workers: 4})
		and, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		viaUnion, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 5, MinMatch: n})
		if err != nil {
			t.Fatal(err)
		}
		assertSameDocs(t, "m=n "+fam.name, viaUnion.Docs, and.Docs)
		if viaUnion.Partial != and.Partial {
			t.Fatalf("m=n %s: Partial %v vs %v", fam.name, viaUnion.Partial, and.Partial)
		}

		or, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 5, Mode: ModeOR})
		if err != nil {
			t.Fatal(err)
		}
		m1, err := e.Search(context.Background(), Query{Concepts: concepts, Join: fam.factory, K: 5, Mode: ModeOR, MinMatch: 1})
		if err != nil {
			t.Fatal(err)
		}
		assertSameDocs(t, "m=1 "+fam.name, m1.Docs, or.Docs)
	}
	// Out-of-range MinMatch values are errors, not silent clamps.
	e := New(c, Config{})
	if _, err := e.Search(context.Background(), Query{Concepts: concepts, Join: diffFamilies()[0].factory, MinMatch: n + 1}); err == nil {
		t.Fatal("MinMatch > n accepted")
	}
	if _, err := e.Search(context.Background(), Query{Concepts: concepts, Join: diffFamilies()[0].factory, MinMatch: -1}); err == nil {
		t.Fatal("negative MinMatch accepted")
	}
}

// TestUnionConfigModeDefault: Config.Mode = ModeOR makes OR the
// engine-wide default, and an explicit Query.Mode = ModeAND overrides
// it back.
func TestUnionConfigModeDefault(t *testing.T) {
	c := buildCompact(t, testCorpus(60, 29))
	concepts := testConcepts()
	jn := MAXJoiner(scorefn.SumMAX{Alpha: 0.1})
	orEngine := New(c, Config{Workers: 2, Mode: ModeOR})
	andEngine := New(c, Config{Workers: 2})

	viaDefault, err := orEngine.Search(context.Background(), Query{Concepts: concepts, Join: jn, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := andEngine.Search(context.Background(), Query{Concepts: concepts, Join: jn, K: 5, Mode: ModeOR})
	if err != nil {
		t.Fatal(err)
	}
	assertSameDocs(t, "config-default-or", viaDefault.Docs, explicit.Docs)

	overridden, err := orEngine.Search(context.Background(), Query{Concepts: concepts, Join: jn, K: 5, Mode: ModeAND})
	if err != nil {
		t.Fatal(err)
	}
	plainAND, err := andEngine.Search(context.Background(), Query{Concepts: concepts, Join: jn, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSameDocs(t, "query-overrides-config", overridden.Docs, plainAND.Docs)
}

// TestUnionNeverPruneOnEquality mirrors the conjunctive equality tests
// for the pivot loop: when every document scores exactly the pruning
// bound, the floor ties the bound for every later pivot, and any skip
// on equality would break the document-id tie-break order.
func TestUnionNeverPruneOnEquality(t *testing.T) {
	docs := make([]string, 12)
	for i := range docs {
		docs[i] = "amber"
	}
	concepts := []index.Concept{{"amber": 1}, {"basalt": 1}}
	for _, blocked := range []bool{false, true} {
		compact := buildCompact(t, docs)
		if blocked {
			for _, c := range concepts {
				compact.AddConceptBlocksSized(c, 2)
			}
		}
		e := New(compact, Config{Workers: 1})
		res, err := e.Search(context.Background(), Query{
			Concepts: concepts, Join: diffFamilies()[0].factory, K: 4, Mode: ModeOR,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Docs) != 4 {
			t.Fatalf("blocked=%v: got %d docs, want 4", blocked, len(res.Docs))
		}
		for i, dr := range res.Docs {
			if dr.Doc != i {
				t.Fatalf("blocked=%v: rank %d is doc %d, want %d (tie-break by id broken)", blocked, i, dr.Doc, i)
			}
		}
		if got := e.Stats().PivotSkips; got != 0 {
			t.Fatalf("blocked=%v: %d pivots skipped on an all-ties query", blocked, got)
		}
		assertResultInvariants(t, "equality", res)
	}
}

// TestUnionPivotSkipsCounted pins that the union pruning machinery
// actually fires: one dominant document and k=1 must leave a trail of
// skipped pivots (and, in block mode, undecoded blocks). SumMAX is the
// family here because it is additive — matching the heavy second
// concept strictly raises the score — whereas the product families can
// legitimately rank a partial match above a full one.
func TestUnionPivotSkipsCounted(t *testing.T) {
	// Sizing makes the skip deterministic rather than scheduler-luck:
	// QueueDepth 1 with one worker gives an unbuffered job channel, so
	// shipping the second 32-job chunk cannot return before the worker
	// finished the first (which contains the dominant doc 0 and raises
	// the floor), and every pivot after the next stride-32 floor
	// refresh — guaranteed to exist with 200 documents — must skip.
	docs := make([]string, 200)
	for i := range docs {
		docs[i] = "amber cedar"
	}
	docs[0] = "amber basalt" // the only doc with the heavy second concept
	concepts := []index.Concept{{"amber": 0.1}, {"basalt": 1}}
	for _, blocked := range []bool{false, true} {
		compact := buildCompact(t, docs)
		if blocked {
			for _, c := range concepts {
				compact.AddConceptBlocksSized(c, 4)
			}
		}
		e := New(compact, Config{Workers: 1, QueueDepth: 1})
		res, err := e.Search(context.Background(), Query{
			Concepts: concepts, Join: MAXJoiner(scorefn.SumMAX{Alpha: 0.1}), K: 1, Mode: ModeOR,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Docs[0].Doc != 0 {
			t.Fatalf("blocked=%v: top doc %d, want 0", blocked, res.Docs[0].Doc)
		}
		st := e.Stats()
		if st.PivotSkips == 0 {
			t.Fatalf("blocked=%v: no pivot skips on a skewed corpus (pruned=%d)", blocked, res.Pruned)
		}
		if blocked && st.BlocksSkipped == 0 {
			t.Fatal("block mode: expected candidate blocks pruned below decode")
		}
		assertResultInvariants(t, "skew", res)
	}
}
