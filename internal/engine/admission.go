package engine

import (
	"context"
	"errors"
	"fmt"
)

// Admission control, extracted from Engine so every query-serving tier
// can bound its concurrency the same way: a single engine admits at
// its own gate, and a shard coordinator's children each keep their own
// gate, so per-shard worker pools are protected even when queries
// arrive through the coordinator.

// ErrOverloaded is returned by Search when admission control rejects
// the query: the engine is at Config.MaxInFlight and either the policy
// is OverloadShed or the context expired while waiting for a slot.
// Servers should map it to a retryable status (HTTP 429 + Retry-After)
// rather than an internal error.
var ErrOverloaded = errors.New("engine: overloaded")

// OverloadPolicy selects what Search does when Config.MaxInFlight
// queries are already in flight.
type OverloadPolicy int

const (
	// OverloadBlock (the default) waits for a slot until the query's
	// context is done, then returns ErrOverloaded. Callers get
	// backpressure shaped by their own deadlines.
	OverloadBlock OverloadPolicy = iota
	// OverloadShed fails fast with ErrOverloaded, never queueing.
	// Under sustained overload this keeps latency flat for the queries
	// that are admitted.
	OverloadShed
)

// admitter is a MaxInFlight admission gate: a semaphore plus the
// at-capacity policy. The zero admitter admits everything.
type admitter struct {
	sem  chan struct{} // admission semaphore; nil = unlimited
	shed bool          // true = OverloadShed
}

// newAdmitter builds a gate admitting maxInFlight concurrent queries
// (≤ 0 means unlimited).
func newAdmitter(maxInFlight int, policy OverloadPolicy) admitter {
	a := admitter{shed: policy == OverloadShed}
	if maxInFlight > 0 {
		a.sem = make(chan struct{}, maxInFlight)
	}
	return a
}

// admit takes one slot, returning its release function. At the cap it
// sheds immediately or waits until the caller's context gives up,
// returning an error wrapping ErrOverloaded either way. release is
// non-nil exactly when err is nil.
func (a *admitter) admit(ctx context.Context) (release func(), err error) {
	if a.sem == nil {
		return func() {}, nil
	}
	if a.shed {
		select {
		case a.sem <- struct{}{}:
		default:
			return nil, ErrOverloaded
		}
	} else {
		select {
		case a.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", ErrOverloaded, ctx.Err())
		}
	}
	return func() { <-a.sem }, nil
}

// inFlight reports the slots currently taken (0 when unlimited — an
// ungated admitter tracks nothing).
func (a *admitter) inFlight() int { return len(a.sem) }
