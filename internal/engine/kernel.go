package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"bestjoin/internal/dedup"
	"bestjoin/internal/faultinject"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// Kernel plumbing: the factory surface queries supply, the stock
// factories for the paper's scoring families, and the panic-isolation
// wrappers that keep user-supplied scoring closures from taking the
// process down.

// KernelFactory builds one reusable join kernel. The factory itself
// must be safe for concurrent use (Search calls it once per worker);
// the kernels it returns need not be — each worker owns its kernel
// exclusively and reuses its scratch across the documents it
// evaluates. Adapt a plain one-shot function with join.KernelFunc.
type KernelFactory func() join.Kernel

// Joiner is the former name of KernelFactory, kept as an alias for
// call sites predating the kernel refactor.
type Joiner = KernelFactory

// WINJoiner joins under a WIN scoring function (Algorithm 1).
func WINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return join.NewWINKernel(fn) }
}

// MEDJoiner joins under a MED scoring function (Algorithm 2).
func MEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return join.NewMEDKernel(fn) }
}

// MAXJoiner joins under an efficient MAX scoring function.
func MAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return join.NewMAXKernel(fn) }
}

// ValidWINJoiner is WINJoiner restricted to valid matchsets (no token
// answers two query terms at once, the paper's Section VI).
func ValidWINJoiner(fn scorefn.WIN) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewWINKernel(fn)) }
}

// ValidMEDJoiner is MEDJoiner restricted to valid matchsets.
func ValidMEDJoiner(fn scorefn.MED) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMEDKernel(fn)) }
}

// ValidMAXJoiner is MAXJoiner restricted to valid matchsets.
func ValidMAXJoiner(fn scorefn.EfficientMAX) KernelFactory {
	return func() join.Kernel { return dedup.Wrap(join.NewMAXKernel(fn)) }
}

// KernelSpec names one of the stock kernel factories declaratively:
// a scoring family, its distance-decay rate, and the valid-matchset
// restriction. A Join closure cannot cross a process boundary, but a
// spec can — the remote shard tier serializes the spec and the serving
// side rebuilds an equivalent factory with Factory. A Search whose
// Query carries only a Spec (Join == nil) resolves it itself, so both
// halves of a remote deployment construct bitwise-identical kernels
// from the same three fields.
type KernelSpec struct {
	// Family is "win" (ExpWIN), "med" (ExpMED), or "max" (SumMAX) —
	// the three families proxserve deploys.
	Family string `json:"family"`
	// Alpha is the family's distance-decay rate.
	Alpha float64 `json:"alpha"`
	// Valid restricts joins to valid matchsets (dedup-wrapped kernels,
	// the paper's Section VI).
	Valid bool `json:"valid,omitempty"`
}

// Zero reports whether the spec is unset.
func (s KernelSpec) Zero() bool { return s == KernelSpec{} }

// Fingerprint hashes the spec to the stable 64-bit identity under
// which pair lists (index.PairKey.Spec) are registered and looked up.
// The index layer treats the value as opaque; only equality matters —
// a pair list answers exactly the spec that built it, so any field
// change must change the fingerprint.
func (s KernelSpec) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Family))
	h.Write([]byte{0})
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(s.Alpha))
	h.Write(b[:])
	if s.Valid {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Factory resolves the spec into a kernel factory, or fails on an
// unknown family or a non-finite alpha (hostile specs arrive over the
// network; they must be rejected, not scored).
func (s KernelSpec) Factory() (KernelFactory, error) {
	if s.Alpha != s.Alpha || s.Alpha > math.MaxFloat64 || s.Alpha < -math.MaxFloat64 {
		return nil, fmt.Errorf("engine: kernel spec alpha %v is not finite", s.Alpha)
	}
	switch s.Family {
	case "win":
		fn := scorefn.ExpWIN{Alpha: s.Alpha}
		if s.Valid {
			return ValidWINJoiner(fn), nil
		}
		return WINJoiner(fn), nil
	case "med":
		fn := scorefn.ExpMED{Alpha: s.Alpha}
		if s.Valid {
			return ValidMEDJoiner(fn), nil
		}
		return MEDJoiner(fn), nil
	case "max":
		fn := scorefn.SumMAX{Alpha: s.Alpha}
		if s.Valid {
			return ValidMAXJoiner(fn), nil
		}
		return MAXJoiner(fn), nil
	}
	return nil, fmt.Errorf("engine: unknown kernel family %q (want win, med, or max)", s.Family)
}

// buildKernel calls the query's factory, recovering a panicking
// factory to nil so one hostile factory cannot kill a worker (and
// with it the whole query's WaitGroup).
func buildKernel(f KernelFactory, e *Engine) (kern join.Kernel) {
	defer func() {
		if r := recover(); r != nil {
			e.counters.joinPanics.Add(1)
			kern = nil
		}
	}()
	return f()
}

// safeJoin runs one kernel invocation under recover: a panic in
// Reset, in Join, or injected at the KernelJoin site is contained to
// this one document. The kernel must be treated as poisoned after a
// panic — its scratch may be mid-mutation.
func safeJoin(kern join.Kernel, lists match.Lists) (set match.Set, score float64, ok, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			set, score, ok, panicked = nil, 0, false, true
		}
	}()
	faultinject.MaybePanic(faultinject.KernelJoin)
	kern.Reset(nil, lists)
	set, score, ok = kern.Join()
	return
}
