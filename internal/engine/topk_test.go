package engine

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"bestjoin/internal/match"
)

// testSet builds a small matchset so offers exercise the clone path.
func testSet(doc int) match.Set {
	return match.Set{{Loc: doc, Score: 1}}
}

// TestTopKOfferEqualityNotScreened pins the one subtlety of offer's
// lock-free floor screen: a score exactly AT the floor must not be
// rejected, because a smaller document id still displaces the weakest
// kept entry. Screening on equality would silently change tie-breaks.
func TestTopKOfferEqualityNotScreened(t *testing.T) {
	top := newTopK(2, nil)
	top.offer(5, 1.0, testSet(5))
	top.offer(9, 1.0, testSet(9))
	if got := top.Floor(); got != 1.0 {
		t.Fatalf("floor %v after filling k=2, want 1.0", got)
	}
	top.offer(3, 1.0, testSet(3)) // equal score, smaller id: must enter
	docs := top.results()
	if len(docs) != 2 || docs[0].Doc != 3 || docs[1].Doc != 5 {
		t.Fatalf("equal-score smaller-id offer did not displace: %+v", docs)
	}
	// Strictly below the floor: rejected (and allocation-free, which
	// BenchmarkTopKOfferContention tracks).
	top.offer(1, 0.5, testSet(1))
	if docs := top.results(); docs[0].Doc != 3 || docs[1].Doc != 5 {
		t.Fatalf("below-floor offer mutated the heap: %+v", docs)
	}
}

// TestTopKConcurrentOffersDeterministic hammers one topK from eight
// goroutines with disjoint shuffles of the same offer stream and
// checks the result equals the serial reference — the property the
// optimistic clone and floor screen must not break.
func TestTopKConcurrentOffersDeterministic(t *testing.T) {
	const k, n, workers = 7, 400, 8
	type offer struct {
		doc   int
		score float64
	}
	offers := make([]offer, n)
	rng := rand.New(rand.NewSource(99))
	for i := range offers {
		// Coarse scores force plenty of exact ties across documents.
		offers[i] = offer{doc: i, score: float64(rng.Intn(40)) / 8}
	}

	want := make([]DocResult, 0, n)
	for _, o := range offers {
		want = append(want, DocResult{Doc: o.doc, Score: o.score, Set: testSet(o.doc)})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].Score != want[j].Score {
			return want[i].Score > want[j].Score
		}
		return want[i].Doc < want[j].Doc
	})
	want = want[:k]

	for trial := 0; trial < 20; trial++ {
		top := newTopK(k, nil)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			perm := rand.New(rand.NewSource(int64(trial*workers + w))).Perm(n)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, i := range perm {
					if i%workers == 0 { // each goroutine offers a slice of the stream
						top.offer(offers[i].doc, offers[i].score, testSet(offers[i].doc))
					}
				}
			}()
		}
		// The remaining offers go in from the test goroutine so every
		// document is offered exactly once per trial overall.
		for i, o := range offers {
			if i%workers != 0 {
				top.offer(o.doc, o.score, testSet(o.doc))
			}
		}
		wg.Wait()
		got := top.results()
		if len(got) != k {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), k)
		}
		for i := range got {
			if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: got doc %d score %v, want doc %d score %v",
					trial, i, got[i].Doc, got[i].Score, want[i].Doc, want[i].Score)
			}
		}
		if got := top.Floor(); got != want[k-1].Score {
			t.Fatalf("trial %d: floor %v, want k-th score %v", trial, got, want[k-1].Score)
		}
	}
}

// TestTopKFloorBeforeFull: the floor stays -Inf until k documents are
// held, so nothing is screened while the heap can still absorb.
func TestTopKFloorBeforeFull(t *testing.T) {
	top := newTopK(3, nil)
	top.offer(1, 5, testSet(1))
	top.offer(2, 4, testSet(2))
	if got := top.Floor(); !math.IsInf(got, -1) {
		t.Fatalf("floor %v with a non-full heap, want -Inf", got)
	}
	top.offer(3, 0.001, testSet(3)) // tiny, but the heap is not full
	if docs := top.results(); len(docs) != 3 {
		t.Fatalf("offer dropped while heap had room: %+v", docs)
	}
}

// TestDocHeapPopOrder pins docHeap's heap.Interface contract directly:
// popping drains in (score asc, doc desc) order, so the root is always
// the entry top-k would discard first.
func TestDocHeapPopOrder(t *testing.T) {
	h := docHeap{{Doc: 1, Score: 2}, {Doc: 7, Score: 1}, {Doc: 3, Score: 1}}
	heap.Init(&h)
	heap.Push(&h, DocResult{Doc: 5, Score: 3})
	want := []DocResult{{Doc: 7, Score: 1}, {Doc: 3, Score: 1}, {Doc: 1, Score: 2}, {Doc: 5, Score: 3}}
	for i, w := range want {
		got := heap.Pop(&h).(DocResult)
		if got.Doc != w.Doc || got.Score != w.Score {
			t.Fatalf("pop %d: got (%d, %v), want (%d, %v)", i, got.Doc, got.Score, w.Doc, w.Score)
		}
	}
}

// BenchmarkTopKOfferContention is the satellite-1 regression gauge:
// eight goroutines hammering one full heap with mostly-losing offers,
// the exact shape of a wide disjunctive query. The floor screen should
// keep the losing path lock-free and allocation-free; regressions show
// up as ns/op and allocs/op jumps here.
func BenchmarkTopKOfferContention(b *testing.B) {
	const k, workers = 10, 8
	top := newTopK(k, nil)
	for d := 0; d < k; d++ {
		top.offer(d, 100+float64(d), testSet(d))
	}
	set := testSet(0)
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(workers)
	b.RunParallel(func(pb *testing.PB) {
		doc := 0
		for pb.Next() {
			doc++
			// 1-in-64 offers beat the floor, the rest lose: realistic
			// for a pruned walk, and keeps the heap k documents deep.
			score := 1.0
			if doc%64 == 0 {
				score = 100 + float64(doc%7)
			}
			top.offer(k+doc, score, set)
		}
	})
}
