package engine

import (
	"context"

	"bestjoin/internal/index"
)

// Searcher is the query surface an Engine exposes, abstracted so a
// caller cannot tell one engine from a fleet of them: internal/shard's
// Coordinator implements the same interface by scatter-gathering N
// doc-partitioned child engines and rank-merging their heaps, and the
// root facade (bestjoin.NewShardedEngine) hands either implementation
// to servers like cmd/proxserve unchanged.
type Searcher interface {
	// Search evaluates one query; see Engine.Search for the error and
	// degradation contract every implementation must honor.
	Search(ctx context.Context, q Query) (*Result, error)
	// Stats returns a point-in-time snapshot of the searcher's
	// observability counters; fleet implementations roll their members
	// up into the top-level fields and list them under Stats.Shards.
	Stats() Stats
	// SwapIndex hot-reloads the serving index without draining
	// queries; fleet implementations partition the new index and roll
	// it across their members one at a time.
	SwapIndex(idx *index.Compact)
	// Health reports serving readiness: the current index epoch,
	// document count, and — for fleets — per-shard readiness.
	Health() Health
}

// Engine and shard.Coordinator are the two Searcher implementations;
// the Engine half of the contract is pinned here.
var _ Searcher = (*Engine)(nil)

// Health is a searcher's readiness report, shaped for a server's
// /healthz endpoint.
type Health struct {
	// Ready is true when every underlying engine can serve queries.
	Ready bool `json:"ready"`
	// Epoch is the serving index generation: the engine's reload
	// epoch, or a coordinator's generation number (which advances once
	// per completed rolling reload).
	Epoch uint64 `json:"epoch"`
	// Docs is the serving corpus size in documents.
	Docs int `json:"docs"`
	// Shards lists per-shard readiness, present only for sharded
	// searchers.
	Shards []ShardHealth `json:"shards,omitempty"`
	// Err carries the last reload or rolling-swap error ("" when the
	// last one succeeded): a coordinator whose health-gated roll
	// stalled or aborted reports it here, and proxserve merges the
	// SIGHUP reload loop's last failure in, so a health checker sees
	// why a fleet is stuck without reading logs.
	Err string `json:"last_error,omitempty"`
}

// ShardHealth is one shard's row in a sharded searcher's Health.
type ShardHealth struct {
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
	Docs  int    `json:"docs"`
	Ready bool   `json:"ready"`
}

// Health reports the single engine's readiness: always Ready (an
// Engine holds exactly one live index by construction), at the
// current snapshot's epoch.
func (e *Engine) Health() Health {
	s := e.snap.Load()
	return Health{Ready: true, Epoch: s.epoch, Docs: s.idx.Docs()}
}
