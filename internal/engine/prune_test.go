package engine

import (
	"context"
	"fmt"
	"testing"

	"bestjoin/internal/index"
	"bestjoin/internal/scorefn"
)

// TestNeverPruneOnEquality engineers an exact tie between a
// candidate's score upper bound and the top-k floor and checks the
// candidate still joins. With LinearWIN{Scale: 1} (G(x) = x,
// F(gsum, w) = gsum − w) every quantity below is an integer-valued
// float, so the tie is exact, not approximate.
//
// Concepts A = {apple: 2, gold: 3} and B = {apple: 2}; K = 2; one
// worker so the schedule is deterministic.
//
//   - docs 8 and 9 are "gold pad apple": per-list maxima (3, 2) give
//     bound 5; the actual best join puts both concepts on the single
//     "apple" token (window 0) for score 4 — the bound is slack.
//   - doc 1 is "apple": maxima (2, 2) give bound 4, and the best join
//     scores exactly 4 — the bound is tight.
//
// The dispatcher visits by bound descending: 8, 9, then 1. After 8
// and 9 the heap holds {(4, 8), (4, 9)} and the floor is 4 — equal to
// doc 1's bound. Doc 1 must still be joined: it scores 4 and the
// score-then-smaller-id tie-break replaces (4, 9), so the correct
// answer is docs [1, 8]. An engine that pruned on equality (bound <=
// floor) would skip doc 1 and return [8, 9].
func TestNeverPruneOnEquality(t *testing.T) {
	docs := make([]string, 10)
	for i := range docs {
		docs[i] = "pad filler"
	}
	docs[1] = "apple"
	docs[8] = "gold pad apple"
	docs[9] = "gold pad apple"
	compact := buildCompact(t, docs)

	q := Query{
		Concepts: []index.Concept{
			{"apple": 2, "gold": 3},
			{"apple": 2},
		},
		Join: WINJoiner(scorefn.LinearWIN{Scale: 1}),
		K:    2,
	}
	e := New(compact, Config{Workers: 1})
	res, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 2 {
		t.Fatalf("got %d docs, want 2: %+v", len(res.Docs), res.Docs)
	}
	if res.Docs[0].Doc != 1 || res.Docs[1].Doc != 8 {
		t.Fatalf("got docs [%d, %d], want [1, 8] — doc 1's bound equals the floor and must not be pruned",
			res.Docs[0].Doc, res.Docs[1].Doc)
	}
	if res.Docs[0].Score != 4 || res.Docs[1].Score != 4 {
		t.Fatalf("got scores [%v, %v], want [4, 4]", res.Docs[0].Score, res.Docs[1].Score)
	}
	// Doc 9 loses only on the doc-id tie-break, never by pruning: its
	// bound (5) exceeds the final floor.
	if res.Evaluated != 3 || res.Pruned != 0 {
		t.Fatalf("Evaluated=%d Pruned=%d, want 3 evaluated and 0 pruned", res.Evaluated, res.Pruned)
	}
	if res.Partial {
		t.Fatal("result marked Partial")
	}
}

// TestPruningSkipsDominatedCandidates checks pruning actually fires on
// a corpus built for it — one strong document and many weak ones — and
// that the pruned result matches the unpruned engine exactly. Weak
// documents bound at 1 can never beat the floor of 3 set by the strong
// document, so with K = 1 all of them must be skipped without a join.
func TestPruningSkipsDominatedCandidates(t *testing.T) {
	const weak = 40
	docs := make([]string, 0, weak+1)
	docs = append(docs, "gold apple") // doc 0: max score 3 via "gold"
	for i := 0; i < weak; i++ {
		docs = append(docs, "apple pad") // bound 1, actual score 1
	}
	compact := buildCompact(t, docs)

	q := Query{
		Concepts: []index.Concept{{"gold": 3, "apple": 1}},
		Join:     WINJoiner(scorefn.LinearWIN{Scale: 1}),
		K:        1,
	}

	pruned := New(compact, Config{Workers: 1})
	rp, err := pruned.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	unpruned := New(compact, Config{Workers: 1, DisablePruning: true})
	ru, err := unpruned.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	if len(rp.Docs) != 1 || rp.Docs[0].Doc != 0 || rp.Docs[0].Score != 3 {
		t.Fatalf("pruned result wrong: %+v", rp.Docs)
	}
	if len(ru.Docs) != 1 || ru.Docs[0].Doc != rp.Docs[0].Doc || ru.Docs[0].Score != rp.Docs[0].Score {
		t.Fatalf("pruned %+v and unpruned %+v disagree", rp.Docs, ru.Docs)
	}
	if rp.Pruned != weak {
		t.Fatalf("Pruned = %d, want %d (every weak candidate skipped)", rp.Pruned, weak)
	}
	if rp.Evaluated != 1 {
		t.Fatalf("Evaluated = %d, want 1", rp.Evaluated)
	}
	if rp.Partial {
		t.Fatal("pruned candidates must not mark the result Partial")
	}
	if ru.Pruned != 0 || ru.Evaluated != weak+1 {
		t.Fatalf("unpruned engine: Evaluated=%d Pruned=%d", ru.Evaluated, ru.Pruned)
	}

	st := pruned.Stats()
	if st.PrunedDocs != weak {
		t.Fatalf("Stats.PrunedDocs = %d, want %d", st.PrunedDocs, weak)
	}
	wantFrac := float64(weak) / float64(weak+1)
	if st.PrunedFraction != wantFrac {
		t.Fatalf("Stats.PrunedFraction = %v, want %v", st.PrunedFraction, wantFrac)
	}
}

// TestPruningFloorMonotone drives many queries of varying K through
// one engine and checks the per-query invariant that makes pruning
// lossless: Evaluated + Pruned always accounts for every candidate,
// and results never shrink below min(K, candidates).
func TestPruningFloorMonotone(t *testing.T) {
	docs := make([]string, 60)
	for i := range docs {
		switch i % 4 {
		case 0:
			docs[i] = "gold apple pad"
		case 1:
			docs[i] = "apple gold"
		case 2:
			docs[i] = "apple pad pad"
		default:
			docs[i] = "pad gold apple"
		}
	}
	compact := buildCompact(t, docs)
	e := New(compact, Config{Workers: 3})
	for k := 1; k <= 8; k++ {
		q := Query{
			Concepts: []index.Concept{{"gold": 3, "apple": 1}, {"apple": 2}},
			Join:     ValidWINJoiner(scorefn.LinearWIN{Scale: 1}),
			K:        k,
		}
		res, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("k=%d", k)
		if res.Evaluated+res.Pruned != res.Candidates {
			t.Fatalf("%s: Evaluated %d + Pruned %d != Candidates %d",
				label, res.Evaluated, res.Pruned, res.Candidates)
		}
		want := k
		if res.Candidates < want {
			want = res.Candidates
		}
		if len(res.Docs) != want {
			t.Fatalf("%s: got %d docs, want %d", label, len(res.Docs), want)
		}
		if res.Partial {
			t.Fatalf("%s: unexpectedly Partial", label)
		}
	}
}
