package engine

import (
	"context"
	"testing"

	"bestjoin/internal/scorefn"
)

// TestLRUByteBound pins the byte-cost mode: the accounted total never
// exceeds the bound (it is hard — even a just-inserted oversized
// entry is evicted), refreshes re-account the delta, and Reset zeroes
// the accounting.
func TestLRUByteBound(t *testing.T) {
	cost := func(v []byte) int64 { return int64(len(v)) }
	c := newLRUBytes[int, []byte](100, 10, cost)
	c.Put(1, make([]byte, 4))
	c.Put(2, make([]byte, 4))
	if got := c.Bytes(); got != 8 {
		t.Fatalf("Bytes = %d, want 8", got)
	}
	c.Put(3, make([]byte, 4)) // 12 > 10: evicts LRU entry 1
	if got := c.Bytes(); got != 8 {
		t.Fatalf("after eviction Bytes = %d, want 8", got)
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("entry 1 survived byte eviction")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("entry 2 evicted prematurely")
	}
	// Refresh entry 2 with a bigger value: delta accounted, then the
	// bound enforced (2 was just touched, so 3 goes first).
	c.Put(2, make([]byte, 8))
	if got := c.Bytes(); got > 10 {
		t.Fatalf("after refresh Bytes = %d, exceeds bound", got)
	}
	// An entry larger than the whole bound cannot be cached at all.
	c.Put(4, make([]byte, 64))
	if _, ok := c.Get(4); ok {
		t.Fatal("oversized entry was cached past the bound")
	}
	if got, n := c.Bytes(), c.Len(); got > 10 || got < 0 {
		t.Fatalf("after oversized Put: Bytes = %d (len %d)", got, n)
	}
	c.Reset()
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Fatalf("Reset left Bytes=%d Len=%d", c.Bytes(), c.Len())
	}
	// Entry-count mode reports zero cost: nothing to account with.
	plain := newLRU[int, []byte](2)
	plain.Put(1, make([]byte, 4))
	if plain.Bytes() != 0 {
		t.Fatalf("entry-count mode Bytes = %d, want 0", plain.Bytes())
	}
}

// TestEngineCacheBytes pins the engine wiring: with Config.CacheBytes
// set, repeated queries stay correct, Stats().CacheBytes reports a
// positive total within the bound, and the default config keeps the
// entry-count-only behavior (CacheBytes reads zero).
func TestEngineCacheBytes(t *testing.T) {
	compact := buildCompact(t, testCorpus(120, 11))
	concepts := testConcepts()
	// One block-served concept: byte accounting must price block
	// entries (docs + per-doc lists) as well as flat single-list ones.
	compact.AddConceptBlocks(concepts[0])
	factory := WINJoiner(scorefn.ExpWIN{Alpha: 0.07})
	const bound = 8 << 10

	bounded := New(compact, Config{Workers: 2, CacheBytes: bound})
	def := New(compact, Config{Workers: 2})
	q := Query{Concepts: concepts, Join: factory, K: 5}
	for i := 0; i < 3; i++ {
		rb, err := bounded.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := def.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		assertIdentical(t, "cache-bytes", rb, rd)
	}
	st := bounded.Stats()
	if st.CacheBytes <= 0 || st.CacheBytes > bound {
		t.Fatalf("CacheBytes = %d, want in (0, %d]", st.CacheBytes, bound)
	}
	if got := def.Stats().CacheBytes; got != 0 {
		t.Fatalf("default config CacheBytes = %d, want 0", got)
	}
}

// TestResetCacheClearsBlockState pins ResetCache against the block
// path: the caches empty (CachedLists, CacheBytes), and the repeated
// query — re-resolving skip tables and re-decoding blocks from
// scratch — returns the identical answer.
func TestResetCacheClearsBlockState(t *testing.T) {
	compact := buildCompact(t, testCorpus(120, 9))
	for _, c := range testConcepts() {
		compact.AddConceptBlocks(c)
	}
	e := New(compact, Config{Workers: 2, CacheBytes: 1 << 20})
	q := Query{Concepts: testConcepts(), Join: WINJoiner(scorefn.ExpWIN{Alpha: 0.07}), K: 5}
	r1, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetCache()
	if st := e.Stats(); st.CachedLists != 0 || st.CacheBytes != 0 {
		t.Fatalf("ResetCache left CachedLists=%d CacheBytes=%d", st.CachedLists, st.CacheBytes)
	}
	misses := e.Stats().ConceptMisses
	r2, err := e.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "post-reset", r2, r1)
	if e.Stats().ConceptMisses == misses {
		t.Fatal("post-reset query did not re-resolve concepts")
	}
}

// TestEngineCachedAllocCeiling is the decode-path regression gate
// scripts/check.sh runs: a warm-cache query must stay under a fixed
// allocation budget, so any change that sneaks per-document or
// per-posting allocation back into the cached path fails fast. The
// budget (150) has headroom over the measured value (~125, dominated
// by per-query goroutine and channel setup), but far below the
// thousands a decode regression would add.
func TestEngineCachedAllocCeiling(t *testing.T) {
	compact := buildCompact(t, testCorpus(400, 12))
	for _, c := range testConcepts() {
		compact.AddConceptBlocks(c)
	}
	e := New(compact, Config{Workers: 2})
	q := Query{Concepts: testConcepts(), Join: WINJoiner(scorefn.ExpWIN{Alpha: 0.07}), K: 10}
	if _, err := e.Search(context.Background(), q); err != nil {
		t.Fatal(err) // warm the caches
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 150 {
		t.Fatalf("cached query costs %.0f allocs/op, ceiling is 150", allocs)
	}
}
