//go:build faultinject

package engine

// Chaos differential harness: only compiled with -tags faultinject
// (`make chaos` runs it under -race). Deterministic faults — kernel
// panics, corrupt-decode panics, decode latency, cache-miss storms —
// are injected into live queries, and every outcome is held to the
// fault-tolerance contract:
//
//   - no query ever returns an error or crashes the process;
//   - a non-degraded, non-partial result is bitwise identical to the
//     fault-free baseline;
//   - a degraded result is a sound subset of the baseline's full
//     ranking — documents may be dropped, never mis-scored;
//   - the engine is fully healthy again once injection stops.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
	"bestjoin/internal/scorefn"
)

// chaosFaults enumerates the injected fault profiles of the matrix.
func chaosFaults() []struct {
	name string
	cfg  faultinject.Config
} {
	return []struct {
		name string
		cfg  faultinject.Config
	}{
		{"kernel-panic", faultinject.Config{
			Rates: map[faultinject.Site]float64{faultinject.KernelJoin: 0.3},
		}},
		{"decode-corrupt", faultinject.Config{
			Rates: map[faultinject.Site]float64{faultinject.ConceptDecode: 0.5},
		}},
		{"latency", faultinject.Config{
			Rates:   map[faultinject.Site]float64{faultinject.DecodeLatency: 1},
			Latency: 200 * time.Microsecond,
		}},
		{"cache-miss-storm", faultinject.Config{
			Rates: map[faultinject.Site]float64{
				faultinject.ListCacheMiss:    1,
				faultinject.ConceptCacheMiss: 1,
			},
		}},
		{"everything-at-once", faultinject.Config{
			Rates: map[faultinject.Site]float64{
				faultinject.KernelJoin:       0.2,
				faultinject.ConceptDecode:    0.2,
				faultinject.DecodeLatency:    0.5,
				faultinject.ListCacheMiss:    0.3,
				faultinject.ConceptCacheMiss: 0.3,
			},
			Latency: 100 * time.Microsecond,
		}},
	}
}

// TestChaosDifferential is the core of the harness: the full fault ×
// worker-count × pruning matrix, three seeds and three queries per
// cell (cold then cached paths), each outcome checked against the
// fault-free baseline.
func TestChaosDifferential(t *testing.T) {
	c := buildCompact(t, testCorpus(120, 41))
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	const k = 8
	baseline := bruteForce(c, testConcepts(), jn, k)
	fullRanking := bruteForce(c, testConcepts(), jn, c.Docs())

	for _, fault := range chaosFaults() {
		for _, workers := range []int{1, 4} {
			for _, noprune := range []bool{false, true} {
				label := fmt.Sprintf("%s/workers=%d/noprune=%v", fault.name, workers, noprune)
				t.Run(label, func(t *testing.T) {
					e := New(c, Config{Workers: workers, DisablePruning: noprune})
					for seed := int64(1); seed <= 3; seed++ {
						cfg := fault.cfg
						cfg.Seed = seed
						faultinject.Activate(cfg)
						for round := 0; round < 3; round++ {
							res, err := e.Search(context.Background(),
								Query{Concepts: testConcepts(), Join: jn, K: k})
							if err != nil {
								t.Fatalf("seed %d round %d: injected faults must never error: %v", seed, round, err)
							}
							if res.Partial {
								t.Fatalf("seed %d round %d: no deadline set, yet Partial: %+v", seed, round, res)
							}
							assertResultInvariants(t, fmt.Sprintf("%s seed %d round %d", label, seed, round), res)
							if res.Degraded {
								assertSoundSubset(t, label, res.Docs, fullRanking)
								if res.Failed == 0 && res.Candidates > 0 {
									t.Fatalf("seed %d round %d: Degraded with zero Failed and %d candidates",
										seed, round, res.Candidates)
								}
							} else {
								if len(res.Docs) != len(baseline) {
									t.Fatalf("seed %d round %d: non-degraded result has %d docs, baseline %d",
										seed, round, len(res.Docs), len(baseline))
								}
								for i := range baseline {
									g, w := res.Docs[i], baseline[i]
									if g.Doc != w.Doc || g.Score != w.Score {
										t.Fatalf("seed %d round %d rank %d: got doc %d score %v, baseline doc %d score %v",
											seed, round, i, g.Doc, g.Score, w.Doc, w.Score)
									}
								}
							}
						}
						faultinject.Deactivate()
					}

					// Injection off: the engine must be fully healthy, its
					// caches unpoisoned by whatever just happened.
					res, err := e.Search(context.Background(),
						Query{Concepts: testConcepts(), Join: jn, K: k})
					if err != nil || res.Degraded || res.Partial {
						t.Fatalf("engine unhealthy after chaos: %v %+v", err, res)
					}
					if len(res.Docs) != len(baseline) {
						t.Fatalf("post-chaos result has %d docs, baseline %d", len(res.Docs), len(baseline))
					}
					for i := range baseline {
						if res.Docs[i].Doc != baseline[i].Doc || res.Docs[i].Score != baseline[i].Score {
							t.Fatalf("post-chaos rank %d: %+v, baseline %+v", i, res.Docs[i], baseline[i])
						}
					}
				})
			}
		}
	}
}

// TestChaosCountersMatchInjections ties the observability surface to
// the injection registry: every injected kernel panic shows up in
// Stats().JoinPanics, every injected decode panic in DecodeFailures.
func TestChaosCountersMatchInjections(t *testing.T) {
	c := buildCompact(t, testCorpus(100, 43))
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	e := New(c, Config{Workers: 2})
	faultinject.Activate(faultinject.Config{
		Seed: 7,
		Rates: map[faultinject.Site]float64{
			faultinject.KernelJoin:    0.4,
			faultinject.ConceptDecode: 0.3,
		},
	})
	for round := 0; round < 4; round++ {
		if _, err := e.Search(context.Background(),
			Query{Concepts: testConcepts(), Join: jn, K: 5}); err != nil {
			t.Fatal(err)
		}
		e.ResetCache() // force fresh decodes so ConceptDecode keeps firing
	}
	kernelFired := faultinject.Fired(faultinject.KernelJoin)
	decodeFired := faultinject.Fired(faultinject.ConceptDecode)
	faultinject.Deactivate()
	st := e.Stats()
	if kernelFired == 0 || decodeFired == 0 {
		t.Fatalf("injection did not fire: kernel %d, decode %d — rates or seed too timid", kernelFired, decodeFired)
	}
	if st.JoinPanics != kernelFired {
		t.Errorf("Stats().JoinPanics = %d, injected %d", st.JoinPanics, kernelFired)
	}
	if st.DecodeFailures != decodeFired {
		t.Errorf("Stats().DecodeFailures = %d, injected %d", st.DecodeFailures, decodeFired)
	}
	if st.DegradedResults == 0 {
		t.Error("no query counted as degraded despite recovered faults")
	}
}

// TestChaosConcurrentQueries runs the everything-at-once profile from
// many goroutines at once; under `make chaos` this executes with -race,
// so it proves the recovery paths (kernel rebuild, cd.failed, cache
// repopulation) are data-race-free, not just crash-free.
func TestChaosConcurrentQueries(t *testing.T) {
	c := buildCompact(t, testCorpus(100, 47))
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	e := New(c, Config{Workers: 4, MaxInFlight: 6})
	fullRanking := bruteForce(c, testConcepts(), jn, c.Docs())
	faultinject.Activate(faultinject.Config{
		Seed: 11,
		Rates: map[faultinject.Site]float64{
			faultinject.KernelJoin:       0.2,
			faultinject.ConceptDecode:    0.1,
			faultinject.DecodeLatency:    0.5,
			faultinject.ListCacheMiss:    0.3,
			faultinject.ConceptCacheMiss: 0.3,
		},
		Latency: 50 * time.Microsecond,
	})
	defer faultinject.Deactivate()

	var wg sync.WaitGroup
	errs := make(chan error, 8*6)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				res, err := e.Search(context.Background(),
					Query{Concepts: testConcepts(), Join: jn, K: 5})
				if err != nil {
					errs <- fmt.Errorf("round %d: %v", round, err)
					return
				}
				for _, d := range res.Docs {
					found := false
					for _, w := range fullRanking {
						if w.Doc == d.Doc && w.Score == d.Score {
							found = true
							break
						}
					}
					if !found {
						errs <- fmt.Errorf("round %d: doc %d score %v not in healthy ranking", round, d.Doc, d.Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChaosCoalescedDecodes points the chaos harness at the decode
// coalescing layer: batched block-served concepts, full-rate decode
// latency to hold flights open while waiters pile up, and a burst of
// identical concurrent queries. Every query must complete (the
// deferred flight completion means no leader outcome can strand a
// waiter), every returned document must carry a healthy score, and the
// flight map must drain.
func TestChaosCoalescedDecodes(t *testing.T) {
	c := buildCompact(t, testCorpus(100, 53))
	concepts := testConcepts()
	for _, concept := range concepts {
		if !c.AddConceptBlocksBatchSized(concept, 8) {
			t.Fatal("batch layout not registered")
		}
	}
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	fullRanking := bruteForce(c, concepts, jn, c.Docs())
	e := New(c, Config{Workers: 4})
	faultinject.Activate(faultinject.Config{
		Seed: 13,
		Rates: map[faultinject.Site]float64{
			faultinject.DecodeLatency: 1,
			faultinject.ListCacheMiss: 1, // every fetch misses: flights form every round
		},
		Latency: 300 * time.Microsecond,
	})

	var wg sync.WaitGroup
	errs := make(chan error, 8*4)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				res, err := e.Search(context.Background(),
					Query{Concepts: concepts, Join: jn, K: 5})
				if err != nil {
					errs <- fmt.Errorf("round %d: %v", round, err)
					return
				}
				for _, d := range res.Docs {
					found := false
					for _, w := range fullRanking {
						if w.Doc == d.Doc && w.Score == d.Score {
							found = true
							break
						}
					}
					if !found {
						errs <- fmt.Errorf("round %d: doc %d score %v not in healthy ranking", round, d.Doc, d.Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	faultinject.Deactivate()
	for err := range errs {
		t.Error(err)
	}
	e.flights.mu.Lock()
	leaked := len(e.flights.m)
	e.flights.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flight entries leaked", leaked)
	}
	st := e.Stats()
	if st.DecodeWaits < st.CoalescedDecodes {
		t.Fatalf("CoalescedDecodes %d exceeds DecodeWaits %d", st.CoalescedDecodes, st.DecodeWaits)
	}
}

// TestChaosCoalescedLeaderFailure injects decode panics at full rate:
// every flight's leader fails, so every waiter must receive the shared
// failure — degraded results, no errors, no deadlock, no waiter left
// blocked — and the engine must be healthy again once injection stops.
func TestChaosCoalescedLeaderFailure(t *testing.T) {
	c := buildCompact(t, testCorpus(80, 59))
	concepts := testConcepts()
	for _, concept := range concepts {
		if !c.AddConceptBlocksBatchSized(concept, 8) {
			t.Fatal("batch layout not registered")
		}
	}
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	e := New(c, Config{Workers: 4})
	baseline, err := e.Search(context.Background(),
		Query{Concepts: concepts, Join: jn, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	e.ResetCache()
	faultinject.Activate(faultinject.Config{
		Seed: 17,
		Rates: map[faultinject.Site]float64{
			faultinject.ConceptDecode: 1,
			faultinject.DecodeLatency: 1,
		},
		Latency: 200 * time.Microsecond,
	})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Search(context.Background(),
				Query{Concepts: concepts, Join: jn, K: 5})
			if err != nil {
				t.Errorf("failed flights must degrade, not error: %v", err)
				return
			}
			if !res.Degraded {
				t.Error("every decode failed yet the result is not degraded")
			}
		}()
	}
	wg.Wait()
	faultinject.Deactivate()
	e.flights.mu.Lock()
	leaked := len(e.flights.m)
	e.flights.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d flight entries leaked", leaked)
	}
	// Injection off: fully healthy again, bitwise back to baseline.
	res, err := e.Search(context.Background(),
		Query{Concepts: concepts, Join: jn, K: 5})
	if err != nil || res.Degraded || res.Partial {
		t.Fatalf("engine unhealthy after chaos: %v %+v", err, res)
	}
	assertIdentical(t, "post-chaos", res, baseline)
}

// appearsInSomeSubset reports whether one returned document carries
// the exact healthy score and matchset it would have under at least
// one non-empty subset of the query concepts.
func appearsInSomeSubset(d DocResult, fulls [][]DocResult) bool {
subsets:
	for _, full := range fulls {
		for _, w := range full {
			if w.Doc != d.Doc {
				continue
			}
			if w.Score != d.Score || len(w.Set) != len(d.Set) {
				continue subsets
			}
			for j := range d.Set {
				if d.Set[j] != w.Set[j] {
					continue subsets
				}
			}
			return true
		}
	}
	return false
}

// TestChaosDifferentialUnion extends the chaos contract to the
// disjunctive path. Union degradation is subtler than conjunctive: a
// concept whose decode fails mid-walk is dropped from that point on,
// so documents emitted before the failure were scored over the full
// concept set and later ones over the survivors. No single subset
// ranking describes the whole result — the contract is per document:
// every returned (doc, score, matchset) must be the exact healthy
// union score of that document over SOME non-empty subset of the
// query concepts (the ones that actually contributed), scores must
// still be ranked, and a healthy result must be bitwise identical to
// the fault-free union baseline.
func TestChaosDifferentialUnion(t *testing.T) {
	c := buildCompact(t, testCorpus(120, 43))
	jn := MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	const k = 8
	concepts := testConcepts()
	baseline := bruteForceUnion(c, concepts, jn, k, 1)

	// Healthy full union rankings for every non-empty concept subset —
	// the candidate references a degraded result may soundly shrink to.
	var fulls [][]DocResult
	for bits := 1; bits < 1<<len(concepts); bits++ {
		var sub []index.Concept
		for i := range concepts {
			if bits&(1<<i) != 0 {
				sub = append(sub, concepts[i])
			}
		}
		fulls = append(fulls, bruteForceUnion(c, sub, jn, c.Docs(), 1))
	}

	for _, fault := range chaosFaults() {
		for _, workers := range []int{1, 4} {
			for _, noprune := range []bool{false, true} {
				label := fmt.Sprintf("%s/workers=%d/noprune=%v", fault.name, workers, noprune)
				t.Run(label, func(t *testing.T) {
					e := New(c, Config{Workers: workers, DisablePruning: noprune})
					for seed := int64(1); seed <= 3; seed++ {
						cfg := fault.cfg
						cfg.Seed = seed
						faultinject.Activate(cfg)
						for round := 0; round < 3; round++ {
							res, err := e.Search(context.Background(),
								Query{Concepts: testConcepts(), Join: jn, K: k, Mode: ModeOR})
							if err != nil {
								t.Fatalf("seed %d round %d: injected faults must never error: %v", seed, round, err)
							}
							if res.Partial {
								t.Fatalf("seed %d round %d: no deadline set, yet Partial: %+v", seed, round, res)
							}
							assertResultInvariants(t, fmt.Sprintf("%s seed %d round %d", label, seed, round), res)
							if res.Degraded {
								for i, d := range res.Docs {
									if !appearsInSomeSubset(d, fulls) {
										t.Fatalf("seed %d round %d: degraded doc %d score %v matches no concept subset's healthy scoring",
											seed, round, d.Doc, d.Score)
									}
									if i > 0 {
										prev := res.Docs[i-1]
										if d.Score > prev.Score || (d.Score == prev.Score && d.Doc < prev.Doc) {
											t.Fatalf("seed %d round %d: degraded result out of rank order at %d: %+v", seed, round, i, res.Docs)
										}
									}
								}
							} else {
								assertSameDocs(t, fmt.Sprintf("%s seed %d round %d", label, seed, round), res.Docs, baseline)
							}
						}
						faultinject.Deactivate()
					}

					// Injection off: healthy and bitwise back to baseline.
					res, err := e.Search(context.Background(),
						Query{Concepts: testConcepts(), Join: jn, K: k, Mode: ModeOR})
					if err != nil || res.Degraded || res.Partial {
						t.Fatalf("engine unhealthy after chaos: %v %+v", err, res)
					}
					assertSameDocs(t, "post-chaos", res.Docs, baseline)
				})
			}
		}
	}
}

// TestChaosPairPath holds the auxiliary pair tier to the same
// contract: with the pair list corrupted — at the list level
// (ConceptPairs panics) and at the payload level (the skip table
// reads clean but every block decode fails mid-serve) — and kernel
// faults injected on the fallback path, queries must never error,
// non-degraded answers must stay bitwise identical to the
// pair-disabled fault-free baseline, and the tier must account the
// corruption as decode failures rather than ever serving off it.
func TestChaosPairPath(t *testing.T) {
	spec := KernelSpec{Family: "win", Alpha: 0.1, Valid: true}
	concepts := testConcepts()
	q := Query{Concepts: concepts[:2], Spec: spec, K: 8}

	build := func() *index.Compact {
		c := buildCompact(t, testCorpus(120, 47))
		if n, err := BuildPairIndex(c, concepts, spec, 0); err != nil || n == 0 {
			t.Fatalf("BuildPairIndex: n=%d err=%v", n, err)
		}
		return c
	}

	healthy := build()
	base := New(healthy, Config{DisablePairIndex: true})
	want, err := base.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(healthy, Config{DisablePairIndex: true, DisablePruning: true}).
		Search(context.Background(), Query{Concepts: concepts[:2], Spec: spec, K: healthy.Docs()})
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		f    func(*index.Compact)
	}{
		{"list", func(c *index.Compact) {
			index.CorruptConceptPairsForTest(c, concepts[0], concepts[1], spec.Fingerprint())
		}},
		{"payload", func(c *index.Compact) {
			index.CorruptConceptPairPayloadForTest(c, concepts[0], concepts[1], spec.Fingerprint())
		}},
	}
	for _, corrupt := range corruptions {
		t.Run(corrupt.name, func(t *testing.T) {
			c := build()
			corrupt.f(c)
			e := New(c, Config{Workers: 2})
			faultinject.Activate(faultinject.Config{
				Rates: map[faultinject.Site]float64{
					faultinject.KernelJoin:    0.2,
					faultinject.ConceptDecode: 0.2,
				},
				Seed: 1,
			})
			for round := 0; round < 6; round++ {
				res, err := e.Search(context.Background(), q)
				if err != nil {
					t.Fatalf("round %d: corrupt pair list must never error: %v", round, err)
				}
				assertResultInvariants(t, fmt.Sprintf("%s round %d", corrupt.name, round), res)
				if res.Degraded {
					assertSoundSubset(t, corrupt.name, res.Docs, full.Docs)
				} else {
					assertSameDocs(t, fmt.Sprintf("%s round %d", corrupt.name, round), res.Docs, want.Docs)
				}
			}
			faultinject.Deactivate()

			// Injection off (the corruption stays): the kernel fallback
			// must serve the exact baseline, and the tier must have
			// recorded the corruption without ever serving off it.
			res, err := e.Search(context.Background(), q)
			if err != nil || res.Degraded || res.Partial {
				t.Fatalf("engine unhealthy after chaos: %v %+v", err, res)
			}
			assertSameDocs(t, "post-chaos", res.Docs, want.Docs)
			st := e.Stats()
			if st.DecodeFailures == 0 {
				t.Fatal("corrupt pair list never recorded a decode failure")
			}
			if st.PairServed != 0 {
				t.Fatalf("corrupt pair list was served %d times", st.PairServed)
			}
		})
	}
}
