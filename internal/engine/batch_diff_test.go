package engine

// Differential harness for the group-varint batched decode path: the
// batch codec is supposed to be invisible — an engine whose concepts
// are served from batched block buffers must return exactly what the
// varint-block engine and the flat engine return. This property test
// builds random corpora and random queries and asserts all three
// engines' output — document ids, scores (bit for bit), matchsets,
// tie-break order, and the Partial flag — is identical across all
// scoring families, with and without the duplicate-avoidance wrapper,
// with one worker and with several, with pruning on and off.
// scripts/check.sh runs it under -race, so the batched per-block
// decode is exercised concurrently from the worker pool too.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bestjoin/internal/index"
)

func TestDifferentialBatchVsVarint(t *testing.T) {
	trials := 24
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(5000 + int64(trial)))
		corpus := diffCorpus(rng)
		concepts := diffConcepts(rng)
		// Three physically separate indexes from the same corpus: one
		// with batched block postings for every concept, one with varint
		// block postings at the same block size (odd trials use a tiny
		// size so queries cross many block boundaries), and one flat
		// reference (half the trials with doc-max metadata registered).
		batchIdx := buildCompact(t, corpus)
		varintIdx := buildCompact(t, corpus)
		blockSize := 16
		if trial%2 == 1 {
			blockSize = 3
		}
		for _, c := range concepts {
			if !batchIdx.AddConceptBlocksBatchSized(c, blockSize) {
				t.Fatalf("trial %d: batch layout fell back to varint on an ordinary corpus", trial)
			}
			varintIdx.AddConceptBlocksSized(c, blockSize)
		}
		flatIdx := buildCompact(t, corpus)
		if trial%4 >= 2 {
			for _, c := range concepts {
				flatIdx.AddConceptMeta(c)
			}
		}
		k := 1 + rng.Intn(6)
		for _, workers := range []int{1, 4} {
			for _, noprune := range []bool{false, true} {
				for _, fam := range diffFamilies() {
					cfg := Config{Workers: workers, DisablePruning: noprune}
					batched := New(batchIdx, cfg)
					varint := New(varintIdx, cfg)
					flat := New(flatIdx, cfg)
					q := Query{Concepts: concepts, Join: fam.factory, K: k}
					rb, err := batched.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					rv, err := varint.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					rf, err := flat.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("trial %d %s workers=%d k=%d bs=%d noprune=%v",
						trial, fam.name, workers, k, blockSize, noprune)
					assertIdentical(t, label+" batch-vs-varint", rb, rv)
					assertIdentical(t, label+" batch-vs-flat", rb, rf)
					if rb.Degraded || rv.Degraded || rf.Degraded {
						t.Fatalf("%s: degraded on a healthy index", label)
					}
					// The batch engine must actually have decoded batched
					// blocks, not fallen through to another path.
					st := batched.Stats()
					if rb.Evaluated > 0 && st.BlockDecodes == 0 {
						t.Fatalf("%s: evaluated %d docs with zero block decodes", label, rb.Evaluated)
					}
					// Repeat the query: the cached path (skip tables and
					// decoded blocks warm in the LRUs) must stay identical.
					rb2, err := batched.Search(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					assertIdentical(t, label+" cached", rb2, rv)
				}
			}
		}
	}
}

// TestBatchBlocksDegradeNotCrash extends the block failure model to
// the batched layout: corruption of a batched concept's bytes —
// whether in the skip table (the lookup panics) or in a lazily
// decoded payload — must degrade the query to a sound subset, never
// crash, never error, and count in Stats().DecodeFailures. The
// corruption hooks target whichever layout is registered, so this is
// the batch twin of TestCorruptBlocksDegradeNotCrash.
func TestBatchBlocksDegradeNotCrash(t *testing.T) {
	corpus := make([]string, 30)
	for i := range corpus {
		corpus[i] = "amber basalt"
	}
	concept := index.Concept{"amber": 1, "basalt": 0.9}
	q := Query{Concepts: []index.Concept{concept}, Join: diffFamilies()[0].factory, K: 3}

	t.Run("skip-table", func(t *testing.T) {
		compact := buildCompact(t, corpus)
		if !compact.AddConceptBlocksBatchSized(concept, 4) {
			t.Fatal("batch layout not registered")
		}
		index.CorruptConceptBlocksForTest(compact, concept)
		e := New(compact, Config{Workers: 2})
		res, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("corrupt batch table must degrade, not error: %v", err)
		}
		if !res.Degraded || len(res.Docs) != 0 {
			t.Fatalf("degraded=%v docs=%d, want degraded and empty", res.Degraded, len(res.Docs))
		}
		if e.Stats().DecodeFailures == 0 {
			t.Fatal("corrupt batch table not counted in DecodeFailures")
		}
	})
	t.Run("payload", func(t *testing.T) {
		compact := buildCompact(t, corpus)
		if !compact.AddConceptBlocksBatchSized(concept, 4) {
			t.Fatal("batch layout not registered")
		}
		index.CorruptConceptBlockPayloadForTest(compact, concept)
		e := New(compact, Config{Workers: 2})
		res, err := e.Search(context.Background(), q)
		if err != nil {
			t.Fatalf("corrupt batch payload must degrade, not error: %v", err)
		}
		if !res.Degraded || len(res.Docs) != 0 {
			t.Fatalf("degraded=%v docs=%d, want degraded and empty", res.Degraded, len(res.Docs))
		}
		if e.Stats().DecodeFailures == 0 {
			t.Fatal("batch payload decode failures not counted in DecodeFailures")
		}
	})
}
