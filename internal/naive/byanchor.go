package naive

import (
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// Anchored is a best matchset for one anchor location.
type Anchored struct {
	Set   match.Set
	Score float64
}

// ByAnchorWIN solves the best-matchset-by-location problem
// (Definition 10) exhaustively for WIN: for every matchset in the
// cross product, its anchor is its largest match location
// (Definition 9); the map holds the best matchset per anchor.
func ByAnchorWIN(fn scorefn.WIN, lists match.Lists) map[int]Anchored {
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		record(out, s.MaxLoc(), s, scorefn.ScoreWIN(fn, s))
	})
	return out
}

// ByAnchorMED solves best-matchset-by-location exhaustively for MED:
// the anchor is the median match location.
func ByAnchorMED(fn scorefn.MED, lists match.Lists) map[int]Anchored {
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		record(out, s.Median(), s, scorefn.ScoreMED(fn, s))
	})
	return out
}

// ByAnchorMAX solves best-matchset-by-location exhaustively for MAX,
// per the paper's Section VII formulation: for every match location l
// in the lists, the best matchset anchored at l is the one maximizing
// the total contribution at l (it consists of dominating matches at
// l). The map holds, per location, the matchset with the highest
// score-at-that-location over the full cross product.
func ByAnchorMAX(fn scorefn.MAX, lists match.Lists) map[int]Anchored {
	locs := make(map[int]bool)
	for _, l := range lists {
		for _, m := range l {
			locs[m.Loc] = true
		}
	}
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		for l := range locs {
			record(out, l, s, scorefn.ScoreMAXAt(fn, s, l))
		}
	})
	return out
}

func record(out map[int]Anchored, anchor int, s match.Set, score float64) {
	if prev, seen := out[anchor]; !seen || score > prev.Score {
		out[anchor] = Anchored{Set: s.Clone(), Score: score}
	}
}

// ValidByAnchorWIN is ByAnchorWIN restricted to valid (duplicate-free)
// matchsets — the exhaustive reference for the combined
// Section VI + VII problem.
func ValidByAnchorWIN(fn scorefn.WIN, lists match.Lists) map[int]Anchored {
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		if s.Valid() {
			record(out, s.MaxLoc(), s, scorefn.ScoreWIN(fn, s))
		}
	})
	return out
}

// ValidByAnchorMED is ByAnchorMED restricted to valid matchsets.
func ValidByAnchorMED(fn scorefn.MED, lists match.Lists) map[int]Anchored {
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		if s.Valid() {
			record(out, s.Median(), s, scorefn.ScoreMED(fn, s))
		}
	})
	return out
}

// ValidByAnchorMAX is ByAnchorMAX restricted to valid matchsets.
func ValidByAnchorMAX(fn scorefn.MAX, lists match.Lists) map[int]Anchored {
	locs := make(map[int]bool)
	for _, l := range lists {
		for _, m := range l {
			locs[m.Loc] = true
		}
	}
	out := make(map[int]Anchored)
	ForEach(lists, func(s match.Set) {
		if !s.Valid() {
			return
		}
		for l := range locs {
			record(out, l, s, scorefn.ScoreMAXAt(fn, s, l))
		}
	})
	return out
}
