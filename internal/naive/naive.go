// Package naive implements the paper's baseline algorithms NWIN, NMED
// and NMAX (Section II, Section VIII): exhaustively enumerate the
// cross product of all match lists, score every possible matchset, and
// return one with the highest score. Time complexity is
// Θ(|Q|·Π|Lj|), exponential in the number of query terms with the
// average list size as the base — exactly the cost the paper's
// linear-time algorithms avoid.
//
// Besides serving as experiment baselines, these enumerators are the
// ground truth the fast algorithms are property-tested against.
package naive

import (
	"math"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// WIN is the NWIN baseline: the exact overall best matchset under a
// WIN scoring function by cross-product enumeration. ok is false when
// some list is empty (no matchset exists).
func WIN(fn scorefn.WIN, lists match.Lists) (best match.Set, score float64, ok bool) {
	return enumerate(lists, func(s match.Set) float64 { return scorefn.ScoreWIN(fn, s) })
}

// MED is the NMED baseline under a MED scoring function. The paper
// notes NMED is slower than NWIN because of the median calculation;
// the same holds here (Set.Median sorts the locations).
func MED(fn scorefn.MED, lists match.Lists) (best match.Set, score float64, ok bool) {
	return enumerate(lists, func(s match.Set) float64 { return scorefn.ScoreMED(fn, s) })
}

// MAX is the NMAX baseline under a maximized-at-match MAX scoring
// function: for each matchset in the cross product, the total
// contribution is computed at every match location of the set (the
// paper: NMAX "needs to compute the total contribution at every match
// location in the matchset"), and the best location is kept.
func MAX(fn scorefn.MAX, lists match.Lists) (best match.Set, score float64, ok bool) {
	return enumerate(lists, func(s match.Set) float64 {
		v, _ := scorefn.ScoreMAX(fn, s)
		return v
	})
}

// BestValid enumerates only valid (duplicate-free, Section VI)
// matchsets and returns the best under an arbitrary scoring function.
// It is the ground truth for the duplicate-avoidance wrapper. ok is
// false when no valid matchset exists.
func BestValid(lists match.Lists, score func(match.Set) float64) (best match.Set, bestScore float64, ok bool) {
	bestScore = math.Inf(-1)
	ForEach(lists, func(s match.Set) {
		if !s.Valid() {
			return
		}
		if v := score(s); !ok || v > bestScore {
			best, bestScore, ok = s.Clone(), v, true
		}
	})
	return best, bestScore, ok
}

// ForEach invokes fn for every matchset in the cross product of the
// lists, reusing a single scratch Set between calls (clone it to
// retain). It visits nothing if any list is empty.
func ForEach(lists match.Lists, fn func(match.Set)) {
	if !lists.Complete() {
		return
	}
	q := len(lists)
	idx := make([]int, q)
	cur := make(match.Set, q)
	for {
		for j := range cur {
			cur[j] = lists[j][idx[j]]
		}
		fn(cur)
		// Advance the odometer.
		j := q - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(lists[j]) {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			return
		}
	}
}

func enumerate(lists match.Lists, score func(match.Set) float64) (best match.Set, bestScore float64, ok bool) {
	bestScore = math.Inf(-1)
	ForEach(lists, func(s match.Set) {
		if v := score(s); !ok || v > bestScore {
			best, bestScore, ok = s.Clone(), v, true
		}
	})
	return best, bestScore, ok
}
