package naive

import (
	"math"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

func lists2x2() match.Lists {
	return match.Lists{
		{{Loc: 0, Score: 0.5}, {Loc: 10, Score: 1.0}},
		{{Loc: 2, Score: 0.9}, {Loc: 50, Score: 0.4}},
	}
}

func TestForEachVisitsFullCrossProduct(t *testing.T) {
	var seen []match.Set
	ForEach(lists2x2(), func(s match.Set) { seen = append(seen, s.Clone()) })
	if len(seen) != 4 {
		t.Fatalf("visited %d matchsets, want 4", len(seen))
	}
	// All combinations must be distinct.
	uniq := map[string]bool{}
	for _, s := range seen {
		uniq[s.String()] = true
	}
	if len(uniq) != 4 {
		t.Errorf("duplicate matchsets visited: %v", seen)
	}
}

func TestForEachEmptyList(t *testing.T) {
	n := 0
	ForEach(match.Lists{{{Loc: 1}}, {}}, func(match.Set) { n++ })
	if n != 0 {
		t.Errorf("ForEach visited %d matchsets with an empty list", n)
	}
}

func TestWINPicksManualOptimum(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	lists := lists2x2()
	set, score, ok := WIN(fn, lists)
	if !ok {
		t.Fatal("no matchset")
	}
	// Manual: best is (0,2): 0.5·0.9·e^-0.2 = 0.3685; (10,2): 0.9·e^-0.8
	// = 0.4044 — actually higher. Enumerate to be sure.
	best := math.Inf(-1)
	ForEach(lists, func(s match.Set) {
		if v := scorefn.ScoreWIN(fn, s); v > best {
			best = v
		}
	})
	if math.Abs(score-best) > 1e-12 {
		t.Errorf("WIN score %v, manual optimum %v (set %v)", score, best, set)
	}
}

func TestBestValidSkipsDuplicates(t *testing.T) {
	lists := match.Lists{
		{{Loc: 5, Score: 1.0}, {Loc: 9, Score: 0.1}},
		{{Loc: 5, Score: 1.0}},
	}
	fn := scorefn.ExpWIN{Alpha: 0.1}
	set, _, ok := BestValid(lists, func(s match.Set) float64 { return scorefn.ScoreWIN(fn, s) })
	if !ok {
		t.Fatal("no valid matchset found")
	}
	if !set.Valid() {
		t.Fatalf("BestValid returned invalid set %v", set)
	}
	if set[0].Loc != 9 {
		t.Errorf("BestValid = %v, want the loc-9 match for term 0", set)
	}
}

func TestBestValidNoneExists(t *testing.T) {
	lists := match.Lists{
		{{Loc: 5, Score: 1}},
		{{Loc: 5, Score: 1}},
	}
	if _, _, ok := BestValid(lists, func(match.Set) float64 { return 1 }); ok {
		t.Error("BestValid found a set when every combination is invalid")
	}
}

func TestByAnchorWINKeysAreMaxLocs(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	got := ByAnchorWIN(fn, lists2x2())
	// Possible max locations: 2 (0,2), 10 (10,2), 50 (0,50 and 10,50).
	want := map[int]bool{2: true, 10: true, 50: true}
	if len(got) != len(want) {
		t.Fatalf("anchors = %v", got)
	}
	for a, r := range got {
		if !want[a] {
			t.Errorf("unexpected anchor %d", a)
		}
		if r.Set.MaxLoc() != a {
			t.Errorf("anchor %d holds set %v with MaxLoc %d", a, r.Set, r.Set.MaxLoc())
		}
	}
}

func TestByAnchorMEDKeysAreMedians(t *testing.T) {
	fn := scorefn.ExpMED{Alpha: 0.1}
	got := ByAnchorMED(fn, lists2x2())
	for a, r := range got {
		if r.Set.Median() != a {
			t.Errorf("anchor %d holds set %v with median %d", a, r.Set, r.Set.Median())
		}
	}
}

func TestByAnchorMAXCoversAllLocations(t *testing.T) {
	fn := scorefn.SumMAX{Alpha: 0.1}
	got := ByAnchorMAX(fn, lists2x2())
	// Every match location appears as an anchor.
	for _, loc := range []int{0, 10, 2, 50} {
		if _, ok := got[loc]; !ok {
			t.Errorf("location %d missing from ByAnchorMAX", loc)
		}
	}
	// Per-anchor score must equal the best score-at-anchor over the
	// cross product.
	for a, r := range got {
		best := math.Inf(-1)
		ForEach(lists2x2(), func(s match.Set) {
			best = math.Max(best, scorefn.ScoreMAXAt(fn, s, a))
		})
		if math.Abs(r.Score-best) > 1e-12 {
			t.Errorf("anchor %d score %v, want %v", a, r.Score, best)
		}
	}
}

func TestMEDAndMAXEnumerators(t *testing.T) {
	lists := lists2x2()
	medFn := scorefn.ExpMED{Alpha: 0.1}
	set, score, ok := MED(medFn, lists)
	if !ok {
		t.Fatal("MED found nothing")
	}
	best := math.Inf(-1)
	ForEach(lists, func(s match.Set) {
		if v := scorefn.ScoreMED(medFn, s); v > best {
			best = v
		}
	})
	if math.Abs(score-best) > 1e-12 {
		t.Errorf("MED score %v, manual optimum %v (set %v)", score, best, set)
	}

	maxFn := scorefn.SumMAX{Alpha: 0.1}
	set, score, ok = MAX(maxFn, lists)
	if !ok {
		t.Fatal("MAX found nothing")
	}
	best = math.Inf(-1)
	ForEach(lists, func(s match.Set) {
		if v, _ := scorefn.ScoreMAX(maxFn, s); v > best {
			best = v
		}
	})
	if math.Abs(score-best) > 1e-12 {
		t.Errorf("MAX score %v, manual optimum %v (set %v)", score, best, set)
	}
	_ = set
}

func TestEnumeratorsEmptyList(t *testing.T) {
	lists := match.Lists{{}, {{Loc: 1, Score: 1}}}
	if _, _, ok := MED(scorefn.ExpMED{Alpha: 0.1}, lists); ok {
		t.Error("MED ok with empty list")
	}
	if _, _, ok := MAX(scorefn.SumMAX{Alpha: 0.1}, lists); ok {
		t.Error("MAX ok with empty list")
	}
	if got := ByAnchorWIN(scorefn.ExpWIN{Alpha: 0.1}, lists); len(got) != 0 {
		t.Errorf("ByAnchorWIN = %v with empty list", got)
	}
	if got := ValidByAnchorMED(scorefn.ExpMED{Alpha: 0.1}, lists); len(got) != 0 {
		t.Errorf("ValidByAnchorMED = %v with empty list", got)
	}
}

func TestValidByAnchorFiltersInvalid(t *testing.T) {
	lists := match.Lists{
		{{Loc: 5, Score: 1}, {Loc: 8, Score: 0.5}},
		{{Loc: 5, Score: 1}},
	}
	fn := scorefn.ExpWIN{Alpha: 0.1}
	all := ByAnchorWIN(fn, lists)
	valid := ValidByAnchorWIN(fn, lists)
	if len(valid) >= len(all) {
		t.Fatalf("valid anchors (%d) should be fewer than all anchors (%d)", len(valid), len(all))
	}
	for a, r := range valid {
		if !r.Set.Valid() {
			t.Errorf("anchor %d holds invalid set %v", a, r.Set)
		}
	}
	vmed := ValidByAnchorMED(scorefn.ExpMED{Alpha: 0.1}, lists)
	for a, r := range vmed {
		if !r.Set.Valid() || r.Set.Median() != a {
			t.Errorf("MED anchor %d invalid entry %v", a, r)
		}
	}
	vmax := ValidByAnchorMAX(scorefn.SumMAX{Alpha: 0.1}, lists)
	for _, r := range vmax {
		if !r.Set.Valid() {
			t.Errorf("MAX invalid entry %v", r)
		}
	}
}
