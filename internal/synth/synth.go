// Package synth generates the synthetic datasets of the paper's
// Section VIII experiments. A dataset is a collection of documents;
// each document is a set of match lists whose shape is controlled by
// four knobs the paper varies:
//
//   - the number of query terms (Figure 6),
//   - the total size of the match lists per document (Figure 7),
//   - the frequency of duplicates, via the rate λ of a truncated
//     exponential distribution over the number of matches sharing one
//     location (Figures 8 and 9),
//   - the skew s of the Zipf distribution over query-term popularity,
//     which controls the relative sizes of the match lists
//     (Figure 10).
//
// Match locations are chosen at random within the document; individual
// match scores are uniform over (0,1]. Defaults follow the paper: 500
// documents of 1000 words, 4 terms, 30 matches per document, λ=2.0,
// s=1.1.
package synth

import (
	"math"
	"math/rand"

	"bestjoin/internal/match"
)

// Config controls dataset generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	Docs     int     // number of documents in the dataset
	DocWords int     // words (locations) per document
	Terms    int     // number of query terms |Q|
	Matches  int     // total size of the match lists per document
	Lambda   float64 // duplicate-frequency knob λ (larger = fewer duplicates)
	ZipfS    float64 // skew s of term popularity (larger = more skew)
	Seed     int64   // RNG seed; datasets are deterministic given Config
}

// DefaultConfig returns the paper's default synthetic workload: 500
// documents averaging 1000 words, 4 query terms, 30 matches per
// document, λ=2.0 (just under 24% duplicates), s=1.1.
func DefaultConfig() Config {
	return Config{
		Docs:     500,
		DocWords: 1000,
		Terms:    4,
		Matches:  30,
		Lambda:   2.0,
		ZipfS:    1.1,
		Seed:     1,
	}
}

// Dataset is a generated collection of per-document match lists.
type Dataset struct {
	Config Config
	Docs   []match.Lists
}

// Generate builds a dataset per the configuration. Every document is
// generated independently: locations are drawn at random over the
// document; at each chosen location, the number of terms matching
// there (τ) follows the truncated exponential p(τ) ∝ λe^(−λτ) over
// [1, Terms]; which τ terms match is drawn (without replacement)
// from the Zipf popularity distribution over terms; scores are uniform
// over (0,1].
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg, Docs: make([]match.Lists, cfg.Docs)}
	tauDist := tauWeights(cfg.Lambda, cfg.Terms)
	zipf := zipfWeights(cfg.ZipfS, cfg.Terms)
	for d := range ds.Docs {
		ds.Docs[d] = generateDoc(rng, cfg, tauDist, zipf)
	}
	return ds
}

func generateDoc(rng *rand.Rand, cfg Config, tauDist, zipf []float64) match.Lists {
	lists := make(match.Lists, cfg.Terms)
	used := make(map[int]bool)
	total := 0
	for total < cfg.Matches {
		// A fresh random location for the next token carrying matches.
		loc := rng.Intn(cfg.DocWords)
		if used[loc] {
			continue
		}
		used[loc] = true
		tau := 1 + sample(rng, tauDist)
		if tau > cfg.Matches-total {
			tau = cfg.Matches - total
		}
		for _, term := range sampleDistinct(rng, zipf, tau) {
			lists[term] = append(lists[term], match.Match{Loc: loc, Score: 1 - rng.Float64()})
			total++
		}
	}
	for j := range lists {
		lists[j].Sort()
	}
	return lists
}

// DuplicateFrequency returns the fraction of matches whose location is
// shared with a match from another list (the paper's footnote 8
// definition), averaged over the dataset.
func (ds *Dataset) DuplicateFrequency() float64 {
	dups, total := 0, 0
	for _, doc := range ds.Docs {
		d, n := CountDuplicates(doc)
		dups += d
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(dups) / float64(total)
}

// CountDuplicates returns, for one document, the number of duplicate
// matches (location shared with a match from another list) and the
// total number of matches.
func CountDuplicates(doc match.Lists) (dups, total int) {
	owners := make(map[int]map[int]bool) // loc -> set of lists
	for j, l := range doc {
		for _, m := range l {
			if owners[m.Loc] == nil {
				owners[m.Loc] = make(map[int]bool)
			}
			owners[m.Loc][j] = true
			total++
		}
	}
	for _, l := range doc {
		for _, m := range l {
			if len(owners[m.Loc]) > 1 {
				dups++
			}
		}
	}
	return dups, total
}

// ListSizeSkew returns the average size of each term's match list over
// the dataset, most popular first, for verifying the Zipf knob.
func (ds *Dataset) ListSizeSkew() []float64 {
	if len(ds.Docs) == 0 {
		return nil
	}
	out := make([]float64, ds.Config.Terms)
	for _, doc := range ds.Docs {
		for j, l := range doc {
			out[j] += float64(len(l))
		}
	}
	for j := range out {
		out[j] /= float64(len(ds.Docs))
	}
	return out
}

// tauWeights returns the truncated exponential weights
// p(τ) ∝ λe^(−λτ) for τ = 1..terms (index 0 holds τ=1).
func tauWeights(lambda float64, terms int) []float64 {
	w := make([]float64, terms)
	for i := range w {
		w[i] = lambda * math.Exp(-lambda*float64(i+1))
	}
	return normalize(w)
}

// zipfWeights returns term-popularity weights f(k) ∝ 1/k^s where k is
// the 1-based popularity rank; term 0 is the most popular.
func zipfWeights(s float64, terms int) []float64 {
	w := make([]float64, terms)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return normalize(w)
}

func normalize(w []float64) []float64 {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sample draws an index from a normalized weight vector.
func sample(rng *rand.Rand, w []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, v := range w {
		acc += v
		if r < acc {
			return i
		}
	}
	return len(w) - 1
}

// sampleDistinct draws n distinct indices from a normalized weight
// vector by repeated weighted sampling with rejection.
func sampleDistinct(rng *rand.Rand, w []float64, n int) []int {
	if n > len(w) {
		n = len(w)
	}
	chosen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		i := sample(rng, w)
		if chosen[i] {
			continue
		}
		chosen[i] = true
		out = append(out, i)
	}
	return out
}
