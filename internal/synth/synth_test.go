package synth

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Docs = 50
	ds := Generate(cfg)
	if len(ds.Docs) != 50 {
		t.Fatalf("generated %d docs, want 50", len(ds.Docs))
	}
	for i, doc := range ds.Docs {
		if len(doc) != cfg.Terms {
			t.Fatalf("doc %d has %d lists, want %d", i, len(doc), cfg.Terms)
		}
		if got := doc.TotalSize(); got != cfg.Matches {
			t.Fatalf("doc %d has %d matches, want %d", i, got, cfg.Matches)
		}
		if err := doc.Validate(); err != nil {
			t.Fatalf("doc %d invalid: %v", i, err)
		}
		for j, l := range doc {
			for _, m := range l {
				if m.Loc < 0 || m.Loc >= cfg.DocWords {
					t.Fatalf("doc %d list %d: location %d out of range", i, j, m.Loc)
				}
				if m.Score <= 0 || m.Score > 1 {
					t.Fatalf("doc %d list %d: score %v outside (0,1]", i, j, m.Score)
				}
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Docs = 5
	a, b := Generate(cfg), Generate(cfg)
	for d := range a.Docs {
		for j := range a.Docs[d] {
			if len(a.Docs[d][j]) != len(b.Docs[d][j]) {
				t.Fatal("same seed produced different datasets")
			}
			for i := range a.Docs[d][j] {
				if a.Docs[d][j][i] != b.Docs[d][j][i] {
					t.Fatal("same seed produced different matches")
				}
			}
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := true
	for d := range a.Docs {
		for j := range a.Docs[d] {
			if len(a.Docs[d][j]) != len(c.Docs[d][j]) {
				same = false
			}
		}
	}
	if same {
		// Identical list-size profiles across all docs under a new
		// seed would be astronomically unlikely.
		t.Log("warning: different seeds produced identical list sizes (suspicious but not impossible)")
	}
}

func TestDuplicateFrequencyTracksLambda(t *testing.T) {
	// The paper: λ=2.0 gives "a little less than 24%" duplicates;
	// λ=1.0 about 60%; λ=3.0 about 10%.
	cases := []struct {
		lambda float64
		lo, hi float64
	}{
		{1.0, 0.45, 0.68},
		{2.0, 0.17, 0.31},
		{3.0, 0.05, 0.16},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		cfg.Docs = 200
		cfg.Lambda = c.lambda
		got := Generate(cfg).DuplicateFrequency()
		if got < c.lo || got > c.hi {
			t.Errorf("λ=%v: duplicate frequency %.3f outside [%.2f, %.2f]", c.lambda, got, c.lo, c.hi)
		}
	}
}

func TestZipfSkewOrdersListSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Docs = 300
	cfg.ZipfS = 2.0
	sizes := Generate(cfg).ListSizeSkew()
	for j := 1; j < len(sizes); j++ {
		if sizes[j] > sizes[j-1]+0.5 {
			t.Errorf("list sizes not decreasing with rank: %v", sizes)
		}
	}
	// Extreme skew concentrates nearly everything in the top list.
	cfg.ZipfS = 4.0
	sizes = Generate(cfg).ListSizeSkew()
	total := 0.0
	for _, s := range sizes {
		total += s
	}
	if sizes[0]/total < 0.75 {
		t.Errorf("s=4 should concentrate matches in the top term: %v", sizes)
	}
}

func TestTauWeightsNormalizedAndDecreasing(t *testing.T) {
	w := tauWeights(2.0, 4)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Errorf("tau weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("tau weights sum to %v", sum)
	}
}

func TestCountDuplicatesManual(t *testing.T) {
	doc := Generate(Config{Docs: 1, DocWords: 100, Terms: 3, Matches: 9, Lambda: 0.5, ZipfS: 1.0, Seed: 3}).Docs[0]
	d, n := CountDuplicates(doc)
	if n != 9 {
		t.Fatalf("total = %d, want 9", n)
	}
	if d < 0 || d > n {
		t.Fatalf("dups = %d out of range", d)
	}
	// Cross-check with the definition directly.
	type key struct{ loc, list int }
	byLoc := map[int][]key{}
	for j, l := range doc {
		for _, m := range l {
			byLoc[m.Loc] = append(byLoc[m.Loc], key{m.Loc, j})
		}
	}
	want := 0
	for _, ks := range byLoc {
		lists := map[int]bool{}
		for _, k := range ks {
			lists[k.list] = true
		}
		if len(lists) > 1 {
			want += len(ks)
		}
	}
	if d != want {
		t.Errorf("CountDuplicates = %d, manual count %d", d, want)
	}
}
