package join

import "bestjoin/internal/scorefn"

// UpperBounded is the optional kernel capability behind the engine's
// lossless top-k pruning: a kernel that can cap, from per-list maximum
// match scores alone, the score any matchset of a document could
// attain under its current scoring function. The engine probes a
// query's kernel for this interface; when present (and pruning is
// enabled) it skips the join for every candidate document whose cap is
// strictly below the current top-k floor.
//
// Contract: for any instance whose list maxima are perListMax,
// ScoreUpperBound must be ≥ the score Join would return — including
// under restrictions that only shrink the feasible matchset space,
// such as the duplicate-avoidance wrapper. Never-prune-on-equality is
// the engine's side of the bargain; the kernel's bound only has to
// dominate, not to be tight.
type UpperBounded interface {
	ScoreUpperBound(perListMax []float64) float64
}

// ScoreUpperBound caps the WIN score of any matchset drawn from lists
// with the given per-list maxima (scorefn.UpperBoundWIN under the
// kernel's current scoring function).
func (k *WINKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundWIN(k.fn, perListMax)
}

// ScoreUpperBound caps the MED score of any matchset drawn from lists
// with the given per-list maxima.
func (k *MEDKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundMED(k.fn, perListMax)
}

// ScoreUpperBound caps the MAX score of any matchset drawn from lists
// with the given per-list maxima.
func (k *MAXKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundMAX(k.fn, perListMax)
}

var (
	_ UpperBounded = (*WINKernel)(nil)
	_ UpperBounded = (*MEDKernel)(nil)
	_ UpperBounded = (*MAXKernel)(nil)
)
