package join

import "bestjoin/internal/scorefn"

// UpperBounded is the optional kernel capability behind the engine's
// lossless top-k pruning: a kernel that can cap, from per-list maximum
// match scores alone, the score any matchset of a document could
// attain under its current scoring function. The engine probes a
// query's kernel for this interface; when present (and pruning is
// enabled) it skips the join for every candidate document whose cap is
// strictly below the current top-k floor.
//
// Contract: for any instance whose list maxima are perListMax,
// ScoreUpperBound must be ≥ the score Join would return — including
// under restrictions that only shrink the feasible matchset space,
// such as the duplicate-avoidance wrapper. Never-prune-on-equality is
// the engine's side of the bargain; the kernel's bound only has to
// dominate, not to be tight.
type UpperBounded interface {
	ScoreUpperBound(perListMax []float64) float64
}

// ScoreUpperBound caps the WIN score of any matchset drawn from lists
// with the given per-list maxima (scorefn.UpperBoundWIN under the
// kernel's current scoring function).
func (k *WINKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundWIN(k.fn, perListMax)
}

// ScoreUpperBound caps the MED score of any matchset drawn from lists
// with the given per-list maxima.
func (k *MEDKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundMED(k.fn, perListMax)
}

// ScoreUpperBound caps the MAX score of any matchset drawn from lists
// with the given per-list maxima.
func (k *MAXKernel) ScoreUpperBound(perListMax []float64) float64 {
	return scorefn.UpperBoundMAX(k.fn, perListMax)
}

// UnionBounded is the optional kernel capability behind the engine's
// disjunctive (ranked-union / m-of-n) pruning: a cap on the score any
// matchset drawn from ANY subset of at least minMatch of the lists
// could attain. The conjunctive ScoreUpperBound is not reusable there
// — for product-style scoring functions adding a list lowers the
// bound, so a full-set cap does not dominate partial matches.
//
// Contract: for any document whose per-list maximum match scores are
// perListMax, ScoreUnionUpperBound must be ≥ the score Join would
// return on the match lists of ANY subset of ≥ minMatch lists,
// compacted in order (the engine passes workers only the matched
// lists, re-indexed from 0). The implementations below satisfy this
// only for term-exchangeable scoring functions — G (or Contribution)
// independent of the term index — which holds for every shipped
// unweighted instance. Queries scoring with term-dependent transforms
// (scorefn.WeightedWIN/WeightedMED) must run with pruning disabled.
type UnionBounded interface {
	ScoreUnionUpperBound(perListMax []float64, minMatch int) float64
}

// ScoreUnionUpperBound caps the WIN score of any matchset drawn from
// at least minMatch of the lists (scorefn.UnionUpperBoundWIN under the
// kernel's current scoring function).
func (k *WINKernel) ScoreUnionUpperBound(perListMax []float64, minMatch int) float64 {
	return scorefn.UnionUpperBoundWIN(k.fn, perListMax, minMatch)
}

// ScoreUnionUpperBound caps the MED score of any matchset drawn from
// at least minMatch of the lists.
func (k *MEDKernel) ScoreUnionUpperBound(perListMax []float64, minMatch int) float64 {
	return scorefn.UnionUpperBoundMED(k.fn, perListMax, minMatch)
}

// ScoreUnionUpperBound caps the MAX score of any matchset drawn from
// at least minMatch of the lists.
func (k *MAXKernel) ScoreUnionUpperBound(perListMax []float64, minMatch int) float64 {
	return scorefn.UnionUpperBoundMAX(k.fn, perListMax, minMatch)
}

var (
	_ UpperBounded = (*WINKernel)(nil)
	_ UpperBounded = (*MEDKernel)(nil)
	_ UpperBounded = (*MAXKernel)(nil)
	_ UnionBounded = (*WINKernel)(nil)
	_ UnionBounded = (*MEDKernel)(nil)
	_ UnionBounded = (*MAXKernel)(nil)
)
