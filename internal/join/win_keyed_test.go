package join

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// genericOnly wraps a WIN so its method set carries G and F but not
// KeySlope/Lift: the type assertion in Join fails and the kernel takes
// the generic (interface-dispatched, F-per-comparison) path even when
// the underlying function is separable. The differential below runs
// both paths on identical instances.
type genericOnly struct{ scorefn.WIN }

// TestJoinKeyedMatchesGeneric pins the keyed fast path's claim: for a
// WINSeparable scoring function, the keyed kernel returns bit-identical
// scores — not approximately equal — and identical matchsets to the
// generic kernel, across random instances of every shape the other
// join differentials use (ties, empty lists, one to five terms).
func TestJoinKeyedMatchesGeneric(t *testing.T) {
	if _, is := scorefn.WIN(genericOnly{scorefn.ExpWIN{Alpha: 0.1}}).(scorefn.WINSeparable); is {
		t.Fatal("genericOnly failed to hide the separable methods")
	}
	fns := map[string]scorefn.WIN{
		"ExpWIN":    scorefn.ExpWIN{Alpha: 0.1},
		"LinearWIN": scorefn.LinearWIN{Scale: 0.3},
	}
	rng := rand.New(rand.NewSource(811))
	for name, fn := range fns {
		if _, is := fn.(scorefn.WINSeparable); !is {
			t.Fatalf("%s is expected to be separable", name)
		}
		keyed := NewWINKernel(fn)
		generic := NewWINKernel(genericOnly{fn})
		for _, cfg := range randConfigs() {
			for trial := 0; trial < 150; trial++ {
				lists := randinst.Lists(rng, cfg)
				keyed.Reset(nil, lists)
				ks, kScore, kOK := keyed.Join()
				generic.Reset(nil, lists)
				gs, gScore, gOK := generic.Join()
				if kOK != gOK {
					t.Fatalf("%s: keyed ok=%v generic ok=%v on %v", name, kOK, gOK, lists)
				}
				if !kOK {
					continue
				}
				if kScore != gScore {
					t.Fatalf("%s: keyed score %v (bits %x) != generic %v (bits %x)\nlists %v",
						name, kScore, math.Float64bits(kScore), gScore, math.Float64bits(gScore), lists)
				}
				if len(ks) != len(gs) {
					t.Fatalf("%s: matchset sizes differ: %v vs %v", name, ks, gs)
				}
				for j := range ks {
					if ks[j] != gs[j] {
						t.Fatalf("%s: matchsets differ at term %d: %v vs %v\nlists %v",
							name, j, ks, gs, lists)
					}
				}
			}
		}
	}
}

// TestCheckWINRejectsLyingSeparable pins the contract checker: a type
// claiming WINSeparable whose F does not equal Lift of the key
// expression bit for bit must fail CheckWIN — that equality is what
// the kernel's keyed path silently relies on.
func TestCheckWINRejectsLyingSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if err := scorefn.CheckWIN(scorefn.ExpWIN{Alpha: 0.1}, 3, 200, rng); err != nil {
		t.Fatalf("honest separable rejected: %v", err)
	}
	if err := scorefn.CheckWIN(lyingSep{scorefn.ExpWIN{Alpha: 0.1}}, 3, 200, rng); err == nil {
		t.Fatal("separable form diverging from F passed CheckWIN")
	}
}

// lyingSep claims the separable form but computes F through a
// different expression shape, so the floating-point results disagree
// in the last bits for some inputs.
type lyingSep struct{ scorefn.ExpWIN }

func (l lyingSep) F(gsum, window float64) float64 {
	return math.Exp(gsum) * math.Exp(-l.Alpha*window)
}
