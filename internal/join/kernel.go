package join

import "bestjoin/internal/match"

// Kernel is a reusable best-join evaluator: the document-at-a-time
// counterpart of the one-shot WIN/MED/MAX functions. A kernel owns all
// working state its algorithm needs — WIN's 2^|Q| subset-state table
// and chain-node arena, MED/MAX's dominating-match lists and envelope
// cursors, the k-way merge cursors — and reuses it across calls, so a
// worker evaluating one candidate document after another performs no
// per-document allocation once the scratch has grown to the workload's
// high-water mark.
//
// Reset loads a new instance. fn must be the concrete kernel's scoring
// family (scorefn.WIN for WINKernel, scorefn.MED for MEDKernel,
// scorefn.EfficientMAX for MAXKernel) or nil to keep the current
// function; a wrong type panics. Join solves the loaded instance;
// calling it again without an intervening Reset re-solves the same
// instance and returns the same answer.
//
// Ownership: the match.Set returned by Join aliases kernel-owned
// memory and is valid only until the next Reset or Join on the same
// kernel. Callers that keep results across calls must Clone them
// (the engine's top-k heap does exactly that when a document is
// actually inserted). Kernels are not safe for concurrent use; the
// intended model is one kernel per worker, built via a factory.
type Kernel interface {
	Reset(fn any, lists match.Lists)
	Join() (match.Set, float64, bool)
}

// KernelFunc adapts a one-shot best-join function into a Kernel, for
// plugging custom joiners into kernel-shaped APIs (the engine's
// KernelFactory, tests). It reuses nothing — each Join simply calls
// fn — so the returned Set is owned by the caller as with any
// one-shot function.
func KernelFunc(fn func(match.Lists) (match.Set, float64, bool)) Kernel {
	return &funcKernel{fn: fn}
}

type funcKernel struct {
	fn    func(match.Lists) (match.Set, float64, bool)
	lists match.Lists
}

func (k *funcKernel) Reset(fn any, lists match.Lists) {
	if fn != nil {
		k.fn = fn.(func(match.Lists) (match.Set, float64, bool))
	}
	k.lists = lists
}

func (k *funcKernel) Join() (match.Set, float64, bool) { return k.fn(k.lists) }
