package join

import (
	"math"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MED computes an overall best matchset under a MED scoring function
// (Algorithm 2). By Lemma 1 there is an overall best matchset in which
// every match is dominating at the set's median location, so the
// algorithm precomputes the dominating match list V_j per term
// (envelope.Precompute) and then scans all matches in location order;
// for each match m it assembles the matchset of dominating matches at
// loc(m) and evaluates it as a candidate when m is the median-ranked
// element of that set.
//
// Time O(|Q| · Σ|Lj|) (precomputation O(Σ|Lj|), then O(|Q|) per
// match), space O(Σ|Lj|). ok is false when some list is empty.
func MED(fn scorefn.MED, lists match.Lists) (best match.Set, score float64, ok bool) {
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	cursors := medCursors(fn, lists)
	medianRank := match.MedianRank(q)
	bestScore := math.Inf(-1)
	cand := make(match.Set, q)

	match.Merge(lists, func(ev match.Event) bool {
		m := ev.M
		cand[ev.Term] = m
		following := 0 // matches in cand succeeding m in processing order
		for j := range lists {
			if j == ev.Term {
				continue
			}
			dm, follows, _ := cursors[j].AtEvent(ev)
			cand[j] = dm
			if follows {
				following++
			}
		}
		// m is a candidate anchor only if it is the median-ranked
		// element: exactly ⌊(|Q|+1)/2⌋−1 matches rank above it.
		if following+1 == medianRank {
			if sc := scorefn.ScoreMED(fn, cand); best == nil || sc > bestScore {
				best, bestScore = cand.Clone(), sc
			}
		}
		return true
	})

	if best == nil {
		return nil, 0, false
	}
	return best, bestScore, true
}

// medCursors precomputes one dominating-match cursor per term under
// the MED contribution c_j(m,l) = g_j(score(m)) − |loc(m)−l|.
func medCursors(fn scorefn.MED, lists match.Lists) []*envelope.Cursor {
	cursors := make([]*envelope.Cursor, len(lists))
	for j := range lists {
		c := medContribution(fn, j)
		cursors[j] = envelope.NewCursor(j, envelope.Precompute(lists[j], c), c)
	}
	return cursors
}

func medContribution(fn scorefn.MED, term int) envelope.Contribution {
	return func(m match.Match, l int) float64 {
		return scorefn.MEDContribution(fn, term, m, l)
	}
}
