package join

import (
	"math"
	"sort"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MEDKernel is the reusable Kernel for MED scoring functions
// (Algorithm 2): it owns the per-term dominating-match lists and
// envelope cursors, the contribution closures, the merge cursors, and
// the candidate/output matchset buffers. See the Kernel interface for
// the reuse and ownership contract.
type MEDKernel struct {
	fn       scorefn.MED
	lists    match.Lists
	contribs []envelope.Contribution
	entries  [][]envelope.Entry
	cursors  []envelope.Cursor
	cand     match.Set
	out      match.Set
	locs     []int
	merger   match.Merger
}

// NewMEDKernel returns an empty kernel bound to fn; scratch grows on
// first use and is reused from then on.
func NewMEDKernel(fn scorefn.MED) *MEDKernel { return &MEDKernel{fn: fn} }

// Reset loads a new instance. fn may be nil to keep the current
// scoring function, or a scorefn.MED to swap it (the kernel's
// contribution closures read the current function at call time, so no
// scratch is rebuilt).
func (k *MEDKernel) Reset(fn any, lists match.Lists) {
	if fn != nil {
		k.fn = fn.(scorefn.MED)
	}
	k.lists = lists
}

// grow sizes the per-term scratch for q terms. The contribution
// closure for term j computes the MED contribution
// c_j(m,l) = g_j(score(m)) − |loc(m)−l| against the kernel's current
// scoring function.
func (k *MEDKernel) grow(q int) {
	for j := len(k.contribs); j < q; j++ {
		j := j
		k.contribs = append(k.contribs, func(m match.Match, l int) float64 {
			return scorefn.MEDContribution(k.fn, j, m, l)
		})
	}
	for len(k.entries) < q {
		k.entries = append(k.entries, nil)
	}
	if cap(k.cursors) < q {
		k.cursors = make([]envelope.Cursor, q)
	}
	k.cursors = k.cursors[:q]
	if cap(k.cand) < q {
		k.cand = make(match.Set, q)
	}
	k.cand = k.cand[:q]
	if cap(k.out) < q {
		k.out = make(match.Set, q)
	}
	k.out = k.out[:q]
}

// Join solves the loaded instance exactly as the one-shot MED does. By
// Lemma 1 there is an overall best matchset in which every match is
// dominating at the set's median location, so it precomputes the
// dominating match list V_j per term (into reused buffers) and then
// scans all matches in location order; for each match m it assembles
// the matchset of dominating matches at loc(m) and evaluates it as a
// candidate when m is the median-ranked element of that set.
//
// Time O(|Q| · Σ|Lj|), space O(Σ|Lj|) — owned by the kernel and
// reused. ok is false when some list is empty.
func (k *MEDKernel) Join() (best match.Set, score float64, ok bool) {
	lists := k.lists
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	k.grow(q)
	for j := range lists {
		k.entries[j] = envelope.PrecomputeInto(k.entries[j][:0], lists[j], k.contribs[j])
		k.cursors[j].Reset(j, k.entries[j], k.contribs[j])
	}
	medianRank := match.MedianRank(q)
	bestScore := math.Inf(-1)
	found := false
	cand := k.cand

	k.merger.Start(lists)
	for {
		ev, more := k.merger.Next(lists)
		if !more {
			break
		}
		m := ev.M
		cand[ev.Term] = m
		following := 0 // matches in cand succeeding m in processing order
		for j := range lists {
			if j == ev.Term {
				continue
			}
			dm, follows, _ := k.cursors[j].AtEvent(ev)
			cand[j] = dm
			if follows {
				following++
			}
		}
		// m is a candidate anchor only if it is the median-ranked
		// element: exactly ⌊(|Q|+1)/2⌋−1 matches rank above it.
		if following+1 == medianRank {
			if sc := k.scoreMED(cand); !found || sc > bestScore {
				copy(k.out, cand)
				bestScore, found = sc, true
			}
		}
	}

	if !found {
		return nil, 0, false
	}
	return k.out, bestScore, true
}

// scoreMED is scorefn.ScoreMED with the median computed via kernel
// scratch instead of a per-call slice. It evaluates the identical
// expression — same median element, same summation order — so results
// are bit-for-bit equal to the one-shot path.
func (k *MEDKernel) scoreMED(s match.Set) float64 {
	k.locs = k.locs[:0]
	for _, m := range s {
		k.locs = append(k.locs, m.Loc)
	}
	sort.Ints(k.locs)
	// Median per footnote 2: the ⌊(n+1)/2⌋-th ranked element counting
	// from the greatest; in ascending order that is index n − rank.
	med := k.locs[len(k.locs)-match.MedianRank(len(k.locs))]
	total := 0.0
	for j, m := range s {
		total += scorefn.MEDContribution(k.fn, j, m, med)
	}
	return k.fn.F(total)
}

// MED computes an overall best matchset under a MED scoring function
// (Algorithm 2) by running a fresh MEDKernel once — the one-shot form
// for call sites outside the document-at-a-time hot loop. The returned
// set is owned by the caller.
//
// Time O(|Q| · Σ|Lj|) (precomputation O(Σ|Lj|), then O(|Q|) per
// match), space O(Σ|Lj|). ok is false when some list is empty.
func MED(fn scorefn.MED, lists match.Lists) (best match.Set, score float64, ok bool) {
	k := MEDKernel{fn: fn, lists: lists}
	return k.Join()
}
