package join

import (
	"fmt"
	"math"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MaxWINTerms is the largest query size WIN accepts. Algorithm 1
// keeps one best partial matchset per nonempty subset of query terms,
// so memory grows as 2^|Q|; the cap keeps that bounded while covering
// every realistic query (the paper evaluates up to 7 terms).
const MaxWINTerms = 24

// winNode is one link of a persistent partial-matchset chain. Chains
// are immutable, so extending a best (P∖{qj})-matchset with a new
// match costs O(1) instead of an O(|Q|) copy, preserving Algorithm 1's
// O(2^|Q|) per-match bound.
type winNode struct {
	term int
	m    match.Match
	prev *winNode
}

// toSet materializes the chain ending at n as a freshly allocated
// q-term matchset (used by the k-best search, which keeps many chains
// alive at once and so cannot share one output buffer).
func (n *winNode) toSet(q int) match.Set {
	out := make(match.Set, q)
	for c := n; c != nil; c = c.prev {
		out[c.term] = c.m
	}
	return out
}

// winState is the remembered best P-matchset for one subset P: the
// chain plus the incrementally maintained score components g_P^Σ and
// l_P^min of Algorithm 1.
type winState struct {
	set  *winNode // nil means ⊥ (no P-matchset seen yet)
	gsum float64  // Σ g_j(score(mj)) over the matchset
	lmin int      // smallest match location in the matchset
}

// winChunkSize is the chain-node arena's chunk size. Chunks are never
// reallocated once handed out, so *winNode pointers into them stay
// valid as the arena grows.
const winChunkSize = 512

// winArena is a free-list of winNodes: Algorithm 1 allocates up to
// 2^(|Q|−1) chain nodes per match, which is the dominant allocation of
// the one-shot WIN. The arena hands nodes out of fixed-size chunks and
// rewinds to the first chunk on reset, so a reused kernel recycles the
// same nodes document after document.
type winArena struct {
	chunks [][]winNode
	chunk  int // index of the chunk currently allocated from
	used   int // nodes handed out of that chunk
}

func (a *winArena) reset() { a.chunk, a.used = 0, 0 }

func (a *winArena) alloc(term int, m match.Match, prev *winNode) *winNode {
	if a.used == winChunkSize {
		a.chunk++
		a.used = 0
	}
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]winNode, winChunkSize))
	}
	n := &a.chunks[a.chunk][a.used]
	a.used++
	n.term, n.m, n.prev = term, m, prev
	return n
}

// WINKernel is the reusable Kernel for WIN scoring functions
// (Algorithm 1): it owns the 2^|Q| subset-state table, the chain-node
// arena, the merge cursors, and the output matchset buffer. See the
// Kernel interface for the reuse and ownership contract.
type WINKernel struct {
	fn     scorefn.WIN
	lists  match.Lists
	states []winState
	arena  winArena
	merger match.Merger
	out    match.Set
}

// NewWINKernel returns an empty kernel bound to fn; scratch grows on
// first use and is reused from then on.
func NewWINKernel(fn scorefn.WIN) *WINKernel { return &WINKernel{fn: fn} }

// Reset loads a new instance. fn may be nil to keep the current
// scoring function, or a scorefn.WIN to swap it.
func (k *WINKernel) Reset(fn any, lists match.Lists) {
	if fn != nil {
		k.fn = fn.(scorefn.WIN)
	}
	k.lists = lists
}

// Join solves the loaded instance exactly as the one-shot WIN does: it
// processes all matches in location order; at each match it updates,
// for every subset P of query terms containing the match's term, the
// best partial P-matchset at the current location, justified by the
// optimal substructure property of f (Definition 3).
//
// Time O(2^|Q| · Σ|Lj|), space O(|Q| · 2^|Q|) — owned by the kernel
// and reused. Join panics if the query has more than MaxWINTerms
// terms; ok is false when some list is empty.
func (k *WINKernel) Join() (best match.Set, score float64, ok bool) {
	lists := k.lists
	q := len(lists)
	if q > MaxWINTerms {
		panic(fmt.Sprintf("join: WIN supports at most %d query terms, got %d", MaxWINTerms, q))
	}
	if !lists.Complete() {
		return nil, 0, false
	}
	fn := k.fn
	if cap(k.states) < 1<<q {
		k.states = make([]winState, 1<<q)
	} else {
		k.states = k.states[:1<<q]
		clear(k.states)
	}
	k.arena.reset()
	if sep, isSep := fn.(scorefn.WINSeparable); isSep {
		return k.joinKeyed(sep, q)
	}
	full := 1<<q - 1
	states := k.states
	var bestNode *winNode
	bestScore := math.Inf(-1)

	k.merger.Start(lists)
	for {
		ev, more := k.merger.Next(lists)
		if !more {
			break
		}
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		bit := 1 << j
		rest := full &^ bit
		// Enumerate every subset P containing q_j, as P = s ∪ {q_j}
		// with s ranging over subsets of Q∖{q_j}. Reads touch only
		// states without bit j and writes only states with bit j, so
		// within one match the update order is immaterial (the paper's
		// "decreasing sizes" order is one valid choice).
		for s := rest; ; s = (s - 1) & rest {
			st := &states[s|bit]
			if s == 0 {
				// P = {q_j}: best single-term matchset at l.
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(g, 0) {
					st.set = k.arena.alloc(j, m, nil)
					st.gsum, st.lmin = g, l
				}
			} else if sub := &states[s]; sub.set != nil {
				// Either keep the previous best P-matchset (re-scored
				// at l) or extend the best (P∖{q_j})-matchset with m.
				cand := sub.gsum + g
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(cand, float64(l-sub.lmin)) {
					st.set = k.arena.alloc(j, m, sub.set)
					st.gsum, st.lmin = cand, sub.lmin
				}
			}
			if s == 0 {
				break
			}
		}
		// An overall best matchset is a best Q-matchset at the last
		// location of its own matches, so check the full set after
		// every match.
		if fs := &states[full]; fs.set != nil {
			if sc := fn.F(fs.gsum, float64(l-fs.lmin)); bestNode == nil || sc > bestScore {
				bestNode, bestScore = fs.set, sc
			}
		}
	}

	if bestNode == nil {
		return nil, 0, false
	}
	return k.emit(bestNode, q), bestScore, true
}

// joinKeyed is Join's fast path for separable scoring functions
// (scorefn.WINSeparable): F(gsum, w) = Lift(gsum − α·w) with Lift
// strictly increasing, so every F-vs-F comparison in the subset loop
// reduces to comparing raw keys gsum − α·w. The loop below is the
// generic loop with each fn.F call replaced by that key arithmetic —
// no interface dispatch and no transcendental per subset; the single
// winning key is lifted into a score once, at the end. The lifted
// score is bit-identical to the generic path's (F computes Lift of the
// same expression, per the WINSeparable contract), and the comparisons
// are equivalent because Lift is strictly increasing.
func (k *WINKernel) joinKeyed(sep scorefn.WINSeparable, q int) (best match.Set, score float64, ok bool) {
	lists := k.lists
	fn := k.fn
	alpha := sep.KeySlope()
	full := 1<<q - 1
	states := k.states
	var bestNode *winNode
	bestKey := math.Inf(-1)

	k.merger.Start(lists)
	for {
		ev, more := k.merger.Next(lists)
		if !more {
			break
		}
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		bit := 1 << j
		rest := full &^ bit
		for s := rest; ; s = (s - 1) & rest {
			st := &states[s|bit]
			if s == 0 {
				// F(g, 0) has key g − α·0 = g exactly.
				if st.set == nil || st.gsum-alpha*float64(l-st.lmin) < g {
					st.set = k.arena.alloc(j, m, nil)
					st.gsum, st.lmin = g, l
				}
			} else if sub := &states[s]; sub.set != nil {
				cand := sub.gsum + g
				if st.set == nil || st.gsum-alpha*float64(l-st.lmin) < cand-alpha*float64(l-sub.lmin) {
					st.set = k.arena.alloc(j, m, sub.set)
					st.gsum, st.lmin = cand, sub.lmin
				}
			}
			if s == 0 {
				break
			}
		}
		if fs := &states[full]; fs.set != nil {
			if key := fs.gsum - alpha*float64(l-fs.lmin); bestNode == nil || key > bestKey {
				bestNode, bestKey = fs.set, key
			}
		}
	}

	if bestNode == nil {
		return nil, 0, false
	}
	return k.emit(bestNode, q), sep.Lift(bestKey), true
}

// emit materializes the winning chain into the kernel's reused output
// buffer.
func (k *WINKernel) emit(bestNode *winNode, q int) match.Set {
	if cap(k.out) < q {
		k.out = make(match.Set, q)
	}
	k.out = k.out[:q]
	for n := bestNode; n != nil; n = n.prev {
		k.out[n.term] = n.m
	}
	return k.out
}

// WIN computes an overall best matchset under a WIN scoring function
// (Algorithm 1) by running a fresh WINKernel once — the one-shot form
// for call sites outside the document-at-a-time hot loop. The returned
// set is owned by the caller.
//
// Time O(2^|Q| · Σ|Lj|), space O(|Q| · 2^|Q|). WIN panics if the query
// has more than MaxWINTerms terms; ok is false when some list is
// empty.
func WIN(fn scorefn.WIN, lists match.Lists) (best match.Set, score float64, ok bool) {
	k := WINKernel{fn: fn, lists: lists}
	return k.Join()
}
