package join

import (
	"fmt"
	"math"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MaxWINTerms is the largest query size WIN accepts. Algorithm 1
// keeps one best partial matchset per nonempty subset of query terms,
// so memory grows as 2^|Q|; the cap keeps that bounded while covering
// every realistic query (the paper evaluates up to 7 terms).
const MaxWINTerms = 24

// winNode is one link of a persistent partial-matchset chain. Chains
// are immutable, so extending a best (P∖{qj})-matchset with a new
// match costs O(1) instead of an O(|Q|) copy, preserving Algorithm 1's
// O(2^|Q|) per-match bound.
type winNode struct {
	term int
	m    match.Match
	prev *winNode
}

func (n *winNode) toSet(q int) match.Set {
	s := make(match.Set, q)
	for ; n != nil; n = n.prev {
		s[n.term] = n.m
	}
	return s
}

// winState is the remembered best P-matchset for one subset P: the
// chain plus the incrementally maintained score components g_P^Σ and
// l_P^min of Algorithm 1.
type winState struct {
	set  *winNode // nil means ⊥ (no P-matchset seen yet)
	gsum float64  // Σ g_j(score(mj)) over the matchset
	lmin int      // smallest match location in the matchset
}

// WIN computes an overall best matchset under a WIN scoring function
// (Algorithm 1). It processes all matches in location order; at each
// match it updates, for every subset P of query terms containing the
// match's term, the best partial P-matchset at the current location,
// justified by the optimal substructure property of f (Definition 3).
//
// Time O(2^|Q| · Σ|Lj|), space O(|Q| · 2^|Q|). WIN panics if the query
// has more than MaxWINTerms terms; ok is false when some list is
// empty.
func WIN(fn scorefn.WIN, lists match.Lists) (best match.Set, score float64, ok bool) {
	q := len(lists)
	if q > MaxWINTerms {
		panic(fmt.Sprintf("join: WIN supports at most %d query terms, got %d", MaxWINTerms, q))
	}
	if !lists.Complete() {
		return nil, 0, false
	}
	full := 1<<q - 1
	states := make([]winState, 1<<q)
	var bestNode *winNode
	bestScore := math.Inf(-1)

	match.Merge(lists, func(ev match.Event) bool {
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		bit := 1 << j
		rest := full &^ bit
		// Enumerate every subset P containing q_j, as P = s ∪ {q_j}
		// with s ranging over subsets of Q∖{q_j}. Reads touch only
		// states without bit j and writes only states with bit j, so
		// within one match the update order is immaterial (the paper's
		// "decreasing sizes" order is one valid choice).
		for s := rest; ; s = (s - 1) & rest {
			st := &states[s|bit]
			if s == 0 {
				// P = {q_j}: best single-term matchset at l.
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(g, 0) {
					st.set = &winNode{term: j, m: m}
					st.gsum, st.lmin = g, l
				}
			} else if sub := &states[s]; sub.set != nil {
				// Either keep the previous best P-matchset (re-scored
				// at l) or extend the best (P∖{q_j})-matchset with m.
				cand := sub.gsum + g
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(cand, float64(l-sub.lmin)) {
					st.set = &winNode{term: j, m: m, prev: sub.set}
					st.gsum, st.lmin = cand, sub.lmin
				}
			}
			if s == 0 {
				break
			}
		}
		// An overall best matchset is a best Q-matchset at the last
		// location of its own matches, so check the full set after
		// every match.
		if fs := &states[full]; fs.set != nil {
			if sc := fn.F(fs.gsum, float64(l-fs.lmin)); bestNode == nil || sc > bestScore {
				bestNode, bestScore = fs.set, sc
			}
		}
		return true
	})

	if bestNode == nil {
		return nil, 0, false
	}
	return bestNode.toSet(q), bestScore, true
}
