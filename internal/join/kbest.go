package join

import (
	"fmt"
	"sort"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// KBestWIN returns the k highest-scoring distinct matchsets under a
// WIN scoring function, best first — the k-best generalization of
// Algorithm 1. Fewer than k are returned when fewer matchsets exist.
//
// The generalization keeps, per query-term subset P, the k best
// partial P-matchsets instead of one. Its soundness rests on the same
// optimal substructure property that powers Algorithm 1, in two ways:
//
//   - order invariance: for two partial matchsets in the same list,
//     advancing the current location adds the same δ to both window
//     terms, so their relative order never changes — each state's list
//     stays sorted without re-sorting;
//   - k-best soundness: the i-th best P-matchset at location l either
//     excludes the newest match (then it was among the i best at the
//     previous location) or includes it (then its reduction was among
//     the i best (P∖{q})-matchsets, because extension preserves
//     order). Hence per-state k-lists merged from the predecessor
//     k-lists are exact.
//
// Every matchset is assembled exactly once — at the step processing
// its largest-location match, where its evaluation equals its true WIN
// score — so collecting the newly created full-query entries at each
// step and keeping the global top k yields the k best distinct
// matchsets.
//
// Time O(k·2^|Q|·Σ|Lj|), space O(k·|Q|·2^|Q|). KBestWIN panics if the
// query has more than MaxWINTerms terms.
func KBestWIN(fn scorefn.WIN, lists match.Lists, k int) []Result {
	q := len(lists)
	if q > MaxWINTerms {
		panic(fmt.Sprintf("join: KBestWIN supports at most %d query terms, got %d", MaxWINTerms, q))
	}
	if k <= 0 || !lists.Complete() {
		return nil
	}
	full := 1<<q - 1

	type entry struct {
		set  *winNode
		gsum float64
		lmin int
	}
	// states[mask] holds up to k partial matchsets, sorted by score at
	// the current location, best first.
	states := make([][]entry, 1<<q)

	// Global top-k candidates (true scores), maintained as a sorted
	// slice — k is small.
	type candidate struct {
		set   *winNode
		score float64
	}
	var top []candidate
	record := func(set *winNode, score float64) {
		if len(top) == k && score <= top[k-1].score {
			return
		}
		i := sort.Search(len(top), func(i int) bool { return top[i].score < score })
		top = append(top, candidate{})
		copy(top[i+1:], top[i:])
		top[i] = candidate{set: set, score: score}
		if len(top) > k {
			top = top[:k]
		}
	}

	scratch := make([]entry, 0, 2*k)
	match.Merge(lists, func(ev match.Event) bool {
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		bit := 1 << j
		rest := full &^ bit
		for s := rest; ; s = (s - 1) & rest {
			mask := s | bit
			// The extensions: the subset's k-list entries (or the bare
			// match when P={q_j}) each extended with m, in order.
			var exts []entry
			if s == 0 {
				exts = []entry{{set: &winNode{term: j, m: m}, gsum: g, lmin: l}}
			} else {
				base := states[s]
				exts = make([]entry, len(base))
				for i, e := range base {
					exts[i] = entry{
						set:  &winNode{term: j, m: m, prev: e.set},
						gsum: e.gsum + g,
						lmin: e.lmin,
					}
				}
			}
			// Merge the carried-over list with the extensions; both are
			// sorted by score at l, and their union is distinct (only
			// extensions contain m).
			old := states[mask]
			merged := scratch[:0]
			oi, ei := 0, 0
			for len(merged) < k && (oi < len(old) || ei < len(exts)) {
				switch {
				case oi == len(old):
					merged = append(merged, exts[ei])
					ei++
				case ei == len(exts):
					merged = append(merged, old[oi])
					oi++
				case fn.F(old[oi].gsum, float64(l-old[oi].lmin)) >= fn.F(exts[ei].gsum, float64(l-exts[ei].lmin)):
					merged = append(merged, old[oi])
					oi++
				default:
					merged = append(merged, exts[ei])
					ei++
				}
			}
			states[mask] = append(old[:0], merged...)
			// Newly created full-query matchsets carry their true score
			// here (l is their largest location).
			if mask == full {
				for _, e := range exts[:min(len(exts), k)] {
					record(e.set, fn.F(e.gsum, float64(l-e.lmin)))
				}
			}
			if s == 0 {
				break
			}
		}
		return true
	})

	out := make([]Result, len(top))
	for i, c := range top {
		out[i] = Result{Set: c.set.toSet(q), Score: c.score, OK: true}
	}
	return out
}
