package join

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

const scoreTol = 1e-9

// agree fails the test unless the fast and naive results have the same
// existence and, when both exist, the same (optimal) score. Matchsets
// themselves may differ: many matchsets can tie for the optimum.
func agree(t *testing.T, name string, lists match.Lists,
	fastSet match.Set, fastScore float64, fastOK bool,
	naiveSet match.Set, naiveScore float64, naiveOK bool) {
	t.Helper()
	if fastOK != naiveOK {
		t.Fatalf("%s: ok=%v but naive ok=%v on %v", name, fastOK, naiveOK, lists)
	}
	if !fastOK {
		return
	}
	if math.Abs(fastScore-naiveScore) > scoreTol {
		t.Fatalf("%s: score %v != naive optimum %v\nfast %v\nnaive %v\nlists %v",
			name, fastScore, naiveScore, fastSet, naiveSet, lists)
	}
}

func randConfigs() []randinst.Config {
	return []randinst.Config{
		{Terms: 1, MaxPerList: 6, MaxLoc: 50},
		{Terms: 2, MaxPerList: 6, MaxLoc: 60},
		{Terms: 3, MaxPerList: 5, MaxLoc: 80},
		{Terms: 4, MaxPerList: 4, MaxLoc: 100},
		{Terms: 5, MaxPerList: 3, MaxLoc: 100},
		{Terms: 3, MaxPerList: 5, MaxLoc: 12, AllowTies: true},
		{Terms: 4, MaxPerList: 4, MaxLoc: 10, AllowTies: true},
		{Terms: 2, MaxPerList: 6, MaxLoc: 8, AllowTies: true},
		{Terms: 3, MaxPerList: 4, MaxLoc: 60, AllowEmpty: true},
	}
}

func TestWINMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	fns := map[string]scorefn.WIN{
		"ExpWIN":    scorefn.ExpWIN{Alpha: 0.1},
		"LinearWIN": scorefn.LinearWIN{Scale: 0.3},
	}
	for name, fn := range fns {
		for _, cfg := range randConfigs() {
			for trial := 0; trial < 150; trial++ {
				lists := randinst.Lists(rng, cfg)
				fs, fScore, fOK := WIN(fn, lists)
				ns, nScore, nOK := naive.WIN(fn, lists)
				agree(t, "WIN/"+name, lists, fs, fScore, fOK, ns, nScore, nOK)
				if fOK {
					// The returned matchset's own score must equal the
					// reported score.
					if got := scorefn.ScoreWIN(fn, fs); math.Abs(got-fScore) > scoreTol {
						t.Fatalf("WIN/%s: reported %v but set scores %v: %v", name, fScore, got, fs)
					}
				}
			}
		}
	}
}

func TestMEDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	fns := map[string]scorefn.MED{
		"ExpMED":    scorefn.ExpMED{Alpha: 0.1},
		"LinearMED": scorefn.LinearMED{Scale: 0.3},
	}
	for name, fn := range fns {
		for _, cfg := range randConfigs() {
			for trial := 0; trial < 150; trial++ {
				lists := randinst.Lists(rng, cfg)
				fs, fScore, fOK := MED(fn, lists)
				ns, nScore, nOK := naive.MED(fn, lists)
				agree(t, "MED/"+name, lists, fs, fScore, fOK, ns, nScore, nOK)
				if fOK {
					if got := scorefn.ScoreMED(fn, fs); math.Abs(got-fScore) > scoreTol {
						t.Fatalf("MED/%s: reported %v but set scores %v: %v", name, fScore, got, fs)
					}
				}
			}
		}
	}
}

func TestMAXMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	fns := map[string]scorefn.EfficientMAX{
		"SumMAX":  scorefn.SumMAX{Alpha: 0.1},
		"ProdMAX": scorefn.ProdMAX{Alpha: 0.1},
	}
	for name, fn := range fns {
		for _, cfg := range randConfigs() {
			for trial := 0; trial < 150; trial++ {
				lists := randinst.Lists(rng, cfg)
				fs, fScore, fOK := MAX(fn, lists)
				ns, nScore, nOK := naive.MAX(fn, lists)
				agree(t, "MAX/"+name, lists, fs, fScore, fOK, ns, nScore, nOK)
				if fOK {
					if got, _ := scorefn.ScoreMAX(fn, fs); math.Abs(got-fScore) > scoreTol {
						t.Fatalf("MAX/%s: reported %v but set scores %v: %v", name, fScore, got, fs)
					}
				}
			}
		}
	}
}

func TestMAXGeneralMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	fn := scorefn.SumMAX{Alpha: 0.1}
	for trial := 0; trial < 200; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 50, AllowTies: true})
		fs, fScore, fOK := MAXGeneral(fn, lists)
		ns, nScore, nOK := naive.MAX(fn, lists)
		agree(t, "MAXGeneral", lists, fs, fScore, fOK, ns, nScore, nOK)
	}
}

func TestMAXGeneralAgreesWithSpecialized(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	fn := scorefn.ProdMAX{Alpha: 0.2}
	for trial := 0; trial < 200; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 4, MaxPerList: 4, MaxLoc: 60})
		_, gScore, gOK := MAXGeneral(fn, lists)
		_, sScore, sOK := MAX(fn, lists)
		if gOK != sOK {
			t.Fatalf("ok mismatch: general %v specialized %v", gOK, sOK)
		}
		if gOK && math.Abs(gScore-sScore) > scoreTol {
			t.Fatalf("general %v != specialized %v on %v", gScore, sScore, lists)
		}
	}
}

func TestEmptyListMeansNoMatchset(t *testing.T) {
	lists := match.Lists{{{Loc: 1, Score: 1}}, {}}
	if _, _, ok := WIN(scorefn.ExpWIN{Alpha: 0.1}, lists); ok {
		t.Error("WIN ok with empty list")
	}
	if _, _, ok := MED(scorefn.ExpMED{Alpha: 0.1}, lists); ok {
		t.Error("MED ok with empty list")
	}
	if _, _, ok := MAX(scorefn.SumMAX{Alpha: 0.1}, lists); ok {
		t.Error("MAX ok with empty list")
	}
	if _, _, ok := MAXGeneral(scorefn.SumMAX{Alpha: 0.1}, lists); ok {
		t.Error("MAXGeneral ok with empty list")
	}
}

func TestSingleTermSingleMatch(t *testing.T) {
	lists := match.Lists{{{Loc: 42, Score: 0.7}}}
	s, sc, ok := WIN(scorefn.ExpWIN{Alpha: 0.1}, lists)
	if !ok || len(s) != 1 || s[0].Loc != 42 {
		t.Fatalf("WIN single = %v %v %v", s, sc, ok)
	}
	if math.Abs(sc-0.7) > scoreTol {
		t.Errorf("WIN single score = %v, want 0.7 (window 0)", sc)
	}
	s, sc, ok = MED(scorefn.ExpMED{Alpha: 0.1}, lists)
	if !ok || s[0].Loc != 42 || math.Abs(sc-0.7) > scoreTol {
		t.Errorf("MED single = %v %v %v", s, sc, ok)
	}
	s, sc, ok = MAX(scorefn.SumMAX{Alpha: 0.1}, lists)
	if !ok || s[0].Loc != 42 || math.Abs(sc-0.7) > scoreTol {
		t.Errorf("MAX single = %v %v %v", s, sc, ok)
	}
}

func TestWINPrefersTightCluster(t *testing.T) {
	// Two clusters: a tight low-score one and a spread high-score one.
	// With strong decay the tight cluster must win; with weak decay the
	// high-score one must.
	lists := match.Lists{
		{{Loc: 10, Score: 0.6}, {Loc: 100, Score: 1.0}},
		{{Loc: 11, Score: 0.6}, {Loc: 140, Score: 1.0}},
	}
	s, _, ok := WIN(scorefn.ExpWIN{Alpha: 1.0}, lists)
	if !ok || s[0].Loc != 10 || s[1].Loc != 11 {
		t.Errorf("strong decay picked %v, want tight cluster", s)
	}
	s, _, ok = WIN(scorefn.ExpWIN{Alpha: 0.001}, lists)
	if !ok || s[0].Loc != 100 || s[1].Loc != 140 {
		t.Errorf("weak decay picked %v, want high-score cluster", s)
	}
}

func TestMEDPrefersClusterednessOverWindow(t *testing.T) {
	// Figure 2's motivating case: two matchsets with equal enclosing
	// windows, one clustered around its median, one spread out evenly.
	// MED must score the clustered one higher.
	clustered := match.Set{
		{Loc: 0, Score: 0.5}, {Loc: 48, Score: 0.5}, {Loc: 50, Score: 0.5}, {Loc: 52, Score: 0.5}, {Loc: 100, Score: 0.5},
	}
	spread := match.Set{
		{Loc: 0, Score: 0.5}, {Loc: 25, Score: 0.5}, {Loc: 50, Score: 0.5}, {Loc: 75, Score: 0.5}, {Loc: 100, Score: 0.5},
	}
	if clustered.Window() != spread.Window() {
		t.Fatal("test setup: windows differ")
	}
	fn := scorefn.ExpMED{Alpha: 0.1}
	if scorefn.ScoreMED(fn, clustered) <= scorefn.ScoreMED(fn, spread) {
		t.Error("MED did not prefer the clustered matchset")
	}
	// WIN by construction cannot distinguish them.
	wfn := scorefn.ExpWIN{Alpha: 0.1}
	if scorefn.ScoreWIN(wfn, clustered) != scorefn.ScoreWIN(wfn, spread) {
		t.Error("WIN distinguished equal-window equal-score matchsets")
	}
}

func TestMAXAnchorsNearHighScores(t *testing.T) {
	// MAX anchors matchsets near the matches we are most confident in:
	// with one very strong match and weak distant ones, the anchor
	// should sit at the strong match.
	fn := scorefn.SumMAX{Alpha: 0.5}
	s := match.Set{{Loc: 10, Score: 1.0}, {Loc: 30, Score: 0.1}, {Loc: 50, Score: 0.1}}
	_, anchor := scorefn.ScoreMAX(fn, s)
	if anchor != 10 {
		t.Errorf("anchor = %d, want 10 (the high-confidence match)", anchor)
	}
}

func TestWINTooManyTermsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WIN did not panic beyond MaxWINTerms")
		}
	}()
	lists := make(match.Lists, MaxWINTerms+1)
	for j := range lists {
		lists[j] = match.List{{Loc: j, Score: 1}}
	}
	WIN(scorefn.ExpWIN{Alpha: 0.1}, lists)
}

// Lemma 1 randomized check: replacing a match with one that dominates
// it at median(M) never lowers the MED score.
func TestLemma1Replacement(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	fn := scorefn.LinearMED{Scale: 0.3}
	for trial := 0; trial < 3000; trial++ {
		q := 2 + rng.Intn(4)
		set := make(match.Set, q)
		for j := range set {
			set[j] = match.Match{Loc: rng.Intn(100), Score: 1 - rng.Float64()}
		}
		j := rng.Intn(q)
		alt := match.Match{Loc: rng.Intn(100), Score: 1 - rng.Float64()}
		med := set.Median()
		if scorefn.MEDContribution(fn, j, alt, med) < scorefn.MEDContribution(fn, j, set[j], med) {
			continue // alt does not dominate at the median; lemma silent
		}
		before := scorefn.ScoreMED(fn, set)
		after := set.Clone()
		after[j] = alt
		if scorefn.ScoreMED(fn, after) < before-scoreTol {
			t.Fatalf("Lemma 1 violated: replacing %v with %v in %v dropped score %v -> %v",
				set[j], alt, set, before, scorefn.ScoreMED(fn, after))
		}
	}
}

func TestWeightedWINMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	fn := scorefn.WeightedWIN{Base: scorefn.ExpWIN{Alpha: 0.1}, Weights: []float64{2, 0.5, 1.5}}
	for trial := 0; trial < 300; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 60, AllowTies: trial%2 == 0})
		_, fScore, fOK := WIN(fn, lists)
		_, nScore, nOK := naive.WIN(fn, lists)
		if fOK != nOK || (fOK && math.Abs(fScore-nScore) > scoreTol) {
			t.Fatalf("weighted WIN %v/%v != naive %v/%v on %v", fScore, fOK, nScore, nOK, lists)
		}
	}
}

func TestWeightedMEDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(708))
	fn := scorefn.WeightedMED{Base: scorefn.ExpMED{Alpha: 0.1}, Weights: []float64{2, 0.5, 1.5}}
	for trial := 0; trial < 300; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 60, AllowTies: trial%2 == 0})
		_, fScore, fOK := MED(fn, lists)
		_, nScore, nOK := naive.MED(fn, lists)
		if fOK != nOK || (fOK && math.Abs(fScore-nScore) > scoreTol) {
			t.Fatalf("weighted MED %v/%v != naive %v/%v on %v", fScore, fOK, nScore, nOK, lists)
		}
	}
}
