package join

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// bruteTypeAnchored scores every type match against per-term full
// scans — the reference implementation.
func bruteTypeAnchored(fn scorefn.MAX, typeTerm int, lists match.Lists) (float64, bool) {
	if !lists.Complete() {
		return 0, false
	}
	best := math.Inf(-1)
	for _, m := range lists[typeTerm] {
		sum := fn.Contribution(typeTerm, m.Score, 0)
		for j, l := range lists {
			if j == typeTerm {
				continue
			}
			bestC := math.Inf(-1)
			for _, x := range l {
				d := x.Loc - m.Loc
				if d < 0 {
					d = -d
				}
				if c := fn.Contribution(j, x.Score, float64(d)); c > bestC {
					bestC = c
				}
			}
			sum += bestC
		}
		if sum > best {
			best = sum
		}
	}
	return fn.F(best), true
}

func TestTypeAnchoredMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	fn := scorefn.SumMAX{Alpha: 0.1}
	for trial := 0; trial < 500; trial++ {
		lists := randinst.Lists(rng, randinst.Config{
			Terms: 2 + rng.Intn(3), MaxPerList: 5, MaxLoc: 80, AllowTies: trial%2 == 0,
		})
		typeTerm := rng.Intn(len(lists))
		set, got, ok := TypeAnchored(fn, typeTerm, lists)
		want, wok := bruteTypeAnchored(fn, typeTerm, lists)
		if ok != wok {
			t.Fatalf("ok=%v brute=%v", ok, wok)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("TypeAnchored %v != brute %v on %v (type %d, set %v)", got, want, lists, typeTerm, set)
		}
		// The returned score must equal scoring the set at the type
		// match's location.
		if at := scorefn.ScoreMAXAt(fn, set, set[typeTerm].Loc); math.Abs(at-got) > 1e-9 {
			t.Fatalf("reported %v but set scores %v at its type anchor", got, at)
		}
	}
}

func TestTypeAnchoredAnchorsAtTypeMatch(t *testing.T) {
	// The type term has a weak match near strong ones and a strong
	// match in isolation; the winner must be anchored wherever the
	// TOTAL at the type location is best, not where MAX would anchor.
	lists := match.Lists{
		{{Loc: 10, Score: 0.2}, {Loc: 100, Score: 1.0}}, // type term
		{{Loc: 11, Score: 1.0}},
		{{Loc: 12, Score: 1.0}},
	}
	fn := scorefn.SumMAX{Alpha: 0.5}
	set, _, ok := TypeAnchored(fn, 0, lists)
	if !ok {
		t.Fatal("no matchset")
	}
	if set[0].Loc != 10 {
		t.Errorf("anchored at %d, want 10 (cluster support beats isolated strong type match)", set[0].Loc)
	}
	// The unconstrained MAX may anchor differently; both must agree
	// with their own baselines, not with each other.
	_, maxScore, _ := MAX(fn, lists)
	_, taScore, _ := TypeAnchored(fn, 0, lists)
	if taScore > maxScore+1e-9 {
		t.Errorf("type-anchored score %v exceeds unconstrained MAX %v", taScore, maxScore)
	}
}

func TestTypeAnchoredBounds(t *testing.T) {
	lists := match.Lists{{{Loc: 1, Score: 1}}, {}}
	if _, _, ok := TypeAnchored(scorefn.SumMAX{Alpha: 0.1}, 0, lists); ok {
		t.Error("ok with empty list")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range type term")
		}
	}()
	TypeAnchored(scorefn.SumMAX{Alpha: 0.1}, 5, match.Lists{{{Loc: 1, Score: 1}}})
}
