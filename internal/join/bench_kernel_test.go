package join_test

// Microbenchmarks contrasting the one-shot join functions with reused
// kernels on the same instance stream — the per-document cost an
// engine worker pays.
//
//	go test -bench=BenchmarkKernel -benchmem ./internal/join/

import (
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/randinst"
)

func benchInstances(n int) []match.Lists {
	rng := rand.New(rand.NewSource(17))
	out := make([]match.Lists, n)
	for i := range out {
		out[i] = randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 12, MaxLoc: 300})
	}
	return out
}

func BenchmarkKernelVsOneShot(b *testing.B) {
	instances := benchInstances(64)
	for _, tc := range kernelCases() {
		b.Run(tc.name+"/oneshot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tc.shot(instances[i%len(instances)])
			}
		})
		b.Run(tc.name+"/kernel", func(b *testing.B) {
			kern := tc.kernel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kern.Reset(nil, instances[i%len(instances)])
				kern.Join()
			}
		})
	}
}
