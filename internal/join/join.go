// Package join implements the paper's core contribution: algorithms
// for the overall-best-matchset problem (Definition 2) under the three
// scoring-function families, with running times linear in the total
// size of the match lists:
//
//   - WIN: Algorithm 1, dynamic programming over query-term subsets,
//     O(2^|Q| · Σ|Lj|) time and O(|Q| · 2^|Q|) space (Section III);
//   - MED: Algorithm 2, dominating-match precomputation plus a single
//     median-anchored scan, O(|Q| · Σ|Lj|) time (Section IV);
//   - MAX: the efficient specialized algorithm for at-most-one-crossing,
//     maximized-at-match scoring functions, O(|Q| · Σ|Lj|) time, plus
//     the general envelope-based approach (Section V).
//
// All functions take match lists sorted by location (one per query
// term) and return a highest-scoring matchset with its score; ok is
// false when no matchset exists (some list is empty).
package join

import "bestjoin/internal/match"

// Result bundles a best matchset with its score, for callers that
// carry results around (the experiment harness, the dedup wrapper).
type Result struct {
	Set   match.Set
	Score float64
	OK    bool
}
