package join_test

// Differential property tests for the reusable kernels: a kernel run
// twice on the same instance, or interleaved across instances, must
// return exactly what the one-shot functions return — any deviation
// means state leaked across Reset. The file lives in an external test
// package because it also exercises dedup.Wrap, and dedup imports
// join.

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/dedup"
	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// kernelCase is one algorithm family under test: its reusable kernel,
// its one-shot function, and its naive cross-product baseline.
type kernelCase struct {
	name   string
	kernel func() join.Kernel
	shot   func(match.Lists) (match.Set, float64, bool)
	naive  func(match.Lists) (match.Set, float64, bool)
}

func kernelCases() []kernelCase {
	win := scorefn.ExpWIN{Alpha: 0.1}
	med := scorefn.ExpMED{Alpha: 0.1}
	max := scorefn.SumMAX{Alpha: 0.1}
	return []kernelCase{
		{
			name:   "win",
			kernel: func() join.Kernel { return join.NewWINKernel(win) },
			shot:   func(ls match.Lists) (match.Set, float64, bool) { return join.WIN(win, ls) },
			naive:  func(ls match.Lists) (match.Set, float64, bool) { return naive.WIN(win, ls) },
		},
		{
			name:   "med",
			kernel: func() join.Kernel { return join.NewMEDKernel(med) },
			shot:   func(ls match.Lists) (match.Set, float64, bool) { return join.MED(med, ls) },
			naive:  func(ls match.Lists) (match.Set, float64, bool) { return naive.MED(med, ls) },
		},
		{
			name:   "max",
			kernel: func() join.Kernel { return join.NewMAXKernel(max) },
			shot:   func(ls match.Lists) (match.Set, float64, bool) { return join.MAX(max, ls) },
			naive:  func(ls match.Lists) (match.Set, float64, bool) { return naive.MAX(max, ls) },
		},
	}
}

// outcome is one join result frozen for comparison (the set cloned out
// of any reused buffer).
type outcome struct {
	set   match.Set
	score float64
	ok    bool
}

func freeze(set match.Set, score float64, ok bool) outcome {
	return outcome{set: set.Clone(), score: score, ok: ok}
}

// mustEqual demands bit-identical outcomes: the kernels evaluate the
// same float expressions in the same order as the one-shot paths, so
// even scores must agree exactly, not just within epsilon.
func mustEqual(t *testing.T, label string, got, want outcome) {
	t.Helper()
	if got.ok != want.ok {
		t.Fatalf("%s: ok=%v, want %v", label, got.ok, want.ok)
	}
	if !got.ok {
		return
	}
	if got.score != want.score {
		t.Fatalf("%s: score %v, want %v", label, got.score, want.score)
	}
	if len(got.set) != len(want.set) {
		t.Fatalf("%s: set size %d, want %d", label, len(got.set), len(want.set))
	}
	for j := range want.set {
		if got.set[j] != want.set[j] {
			t.Fatalf("%s: set[%d]=%+v, want %+v", label, j, got.set[j], want.set[j])
		}
	}
}

func randomInstance(rng *rand.Rand) match.Lists {
	return randinst.Lists(rng, randinst.Config{
		Terms:      1 + rng.Intn(4),
		MaxPerList: 1 + rng.Intn(6),
		MaxLoc:     40,
		AllowEmpty: rng.Intn(4) == 0,
		AllowTies:  rng.Intn(2) == 0,
	})
}

// TestKernelReuseMatchesOneShot runs every kernel twice per instance
// and interleaved across instances (A, B, A again), comparing each run
// bit-for-bit against the one-shot function and — on ok instances —
// against the naive cross-product score.
func TestKernelReuseMatchesOneShot(t *testing.T) {
	for _, tc := range kernelCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			kern := tc.kernel() // one kernel for the whole subtest: reuse is the point
			var prev match.Lists
			var prevWant outcome
			for i := 0; i < 400; i++ {
				lists := randomInstance(rng)
				want := freeze(tc.shot(lists))

				kern.Reset(nil, lists)
				first := freeze(kern.Join())
				mustEqual(t, "first join", first, want)
				// Join without Reset re-solves the same instance.
				second := freeze(kern.Join())
				mustEqual(t, "repeat join", second, want)

				if want.ok {
					_, nScore, nOK := tc.naive(lists)
					if !nOK {
						t.Fatal("naive baseline found no matchset where the kernel did")
					}
					if math.Abs(want.score-nScore) > 1e-9 {
						t.Fatalf("one-shot score %v vs naive %v", want.score, nScore)
					}
				}

				// Interleave: going back to the previous instance must
				// reproduce its result exactly despite the intervening
				// solve — the direct test for state leaking across Reset.
				if prev != nil {
					kern.Reset(nil, prev)
					again := freeze(kern.Join())
					mustEqual(t, "interleaved rerun", again, prevWant)
				}
				prev, prevWant = lists, want
			}
		})
	}
}

// TestDedupKernelMatchesBest compares the kernel-wrapped duplicate
// avoidance (dedup.Wrap over a reused kernel) against the one-shot
// dedup.Best over the one-shot join, on tie-heavy instances where
// duplicates actually occur.
func TestDedupKernelMatchesBest(t *testing.T) {
	for _, tc := range kernelCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			wrapped := dedup.Wrap(tc.kernel())
			for i := 0; i < 200; i++ {
				lists := randinst.Lists(rng, randinst.Config{
					Terms:      2 + rng.Intn(3),
					MaxPerList: 1 + rng.Intn(4),
					MaxLoc:     6, // tight range forces shared locations
					AllowTies:  true,
				})
				ref := dedup.Best(tc.shot, lists)
				want := outcome{set: ref.Set.Clone(), score: ref.Score, ok: ref.OK}

				wrapped.Reset(nil, lists)
				got := freeze(wrapped.Join())
				mustEqual(t, "dedup kernel", got, want)
				if want.ok && wrapped.Invocations() != ref.Invocations {
					t.Fatalf("invocations %d, want %d", wrapped.Invocations(), ref.Invocations)
				}
				// Reuse on the same instance must be stable too.
				wrapped.Reset(nil, lists)
				again := freeze(wrapped.Join())
				mustEqual(t, "dedup kernel rerun", again, want)
			}
		})
	}
}

// TestKernelFuncAdapter checks the one-shot adapter honors the Kernel
// contract: Reset swaps instances, nil fn keeps the function.
func TestKernelFuncAdapter(t *testing.T) {
	fn := scorefn.ExpMED{Alpha: 0.1}
	kern := join.KernelFunc(func(ls match.Lists) (match.Set, float64, bool) { return join.MED(fn, ls) })
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		lists := randomInstance(rng)
		want := freeze(join.MED(fn, lists))
		kern.Reset(nil, lists)
		mustEqual(t, "adapter", freeze(kern.Join()), want)
	}
}
