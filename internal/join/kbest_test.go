package join

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// exhaustiveTopK enumerates every matchset and returns the k best
// scores, best first.
func exhaustiveTopK(fn scorefn.WIN, lists match.Lists, k int) []float64 {
	var scores []float64
	naive.ForEach(lists, func(s match.Set) {
		scores = append(scores, scorefn.ScoreWIN(fn, s))
	})
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if k < len(scores) {
		scores = scores[:k]
	}
	return scores
}

func TestKBestWINMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	fns := map[string]scorefn.WIN{
		"ExpWIN":    scorefn.ExpWIN{Alpha: 0.15},
		"LinearWIN": scorefn.LinearWIN{Scale: 0.3},
	}
	for name, fn := range fns {
		for trial := 0; trial < 400; trial++ {
			lists := randinst.Lists(rng, randinst.Config{
				Terms: 1 + rng.Intn(4), MaxPerList: 4, MaxLoc: 60, AllowTies: trial%2 == 0,
			})
			k := 1 + rng.Intn(6)
			got := KBestWIN(fn, lists, k)
			want := exhaustiveTopK(fn, lists, k)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: returned %d results, want %d\nlists %v", name, k, len(got), len(want), lists)
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i]) > 1e-9 {
					t.Fatalf("%s k=%d: rank %d score %v, want %v\nlists %v", name, k, i, got[i].Score, want[i], lists)
				}
				// Reported scores must match the returned sets.
				if sc := scorefn.ScoreWIN(fn, got[i].Set); math.Abs(sc-got[i].Score) > 1e-9 {
					t.Fatalf("%s: rank %d reported %v but set scores %v", name, i, got[i].Score, sc)
				}
			}
			// Results must be distinct matchsets.
			seen := map[string]bool{}
			for _, r := range got {
				key := r.Set.String()
				if seen[key] {
					t.Fatalf("%s: duplicate matchset %v in k-best", name, r.Set)
				}
				seen[key] = true
			}
		}
	}
}

func TestKBestWINTopOneEqualsWIN(t *testing.T) {
	rng := rand.New(rand.NewSource(910))
	fn := scorefn.ExpWIN{Alpha: 0.1}
	for trial := 0; trial < 200; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 60})
		_, best, ok := WIN(fn, lists)
		top := KBestWIN(fn, lists, 1)
		if !ok {
			if len(top) != 0 {
				t.Fatalf("KBest returned results where WIN found none")
			}
			continue
		}
		if len(top) != 1 || math.Abs(top[0].Score-best) > 1e-9 {
			t.Fatalf("KBest(1) = %v, WIN best %v", top, best)
		}
	}
}

func TestKBestWINEdgeCases(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.1}
	if got := KBestWIN(fn, match.Lists{{{Loc: 1, Score: 1}}, {}}, 3); len(got) != 0 {
		t.Errorf("KBest with empty list = %v", got)
	}
	if got := KBestWIN(fn, match.Lists{{{Loc: 1, Score: 1}}}, 0); got != nil {
		t.Errorf("KBest k=0 = %v", got)
	}
	// k exceeding the number of matchsets returns them all, sorted.
	lists := match.Lists{
		{{Loc: 1, Score: 0.5}, {Loc: 5, Score: 0.9}},
		{{Loc: 2, Score: 0.8}},
	}
	got := KBestWIN(fn, lists, 10)
	if len(got) != 2 {
		t.Fatalf("KBest(10) over 2 matchsets = %d results", len(got))
	}
	if got[0].Score < got[1].Score {
		t.Error("KBest not sorted best first")
	}
}
