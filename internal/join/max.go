package join

import (
	"math"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MAX computes an overall best matchset under a MAX scoring function
// satisfying the at-most-one-crossing and maximized-at-match
// properties (Definition 8) — the paper's efficient specialized
// algorithm of Section V.
//
// It precomputes the dominating match list V_j per term (the same
// stack precomputation as MED, with the MAX contribution function) and
// then walks the dominating matches of all V_j's in location order. At
// each dominating-match location l it assembles the matchset of
// per-term dominating matches at l and scores it by f(Σj cj(mj,l)).
// The maximum over those locations is the optimum: by
// maximized-at-match the best score is attained at a match location of
// the best matchset, every match of which is dominating there, so that
// location appears in some V_j; and by Lemma 2 no candidate can exceed
// f(Σj Sj(lMAX)).
//
// Time O(|Q| · Σ|Lj|), space O(Σ|Lj|). ok is false when some list is
// empty.
func MAX(fn scorefn.EfficientMAX, lists match.Lists) (best match.Set, score float64, ok bool) {
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	cs := maxContributions(fn, q)
	doms := make(match.Lists, q)
	cursors := make([]*envelope.Cursor, q)
	for j := range lists {
		v := envelope.Precompute(lists[j], cs[j])
		doms[j] = envelope.Matches(v)
		cursors[j] = envelope.NewCursor(j, v, cs[j])
	}

	bestSum := math.Inf(-1)
	cand := make(match.Set, q)
	match.Merge(doms, func(ev match.Event) bool {
		l := ev.M.Loc
		sum := 0.0
		for j := range lists {
			dm, _ := cursors[j].At(l)
			cand[j] = dm
			sum += cs[j](dm, l)
		}
		if sum > bestSum {
			bestSum = sum
			best = append(best[:0], cand...)
		}
		return true
	})

	if best == nil {
		return nil, 0, false
	}
	return best.Clone(), fn.F(bestSum), true
}

// MAXGeneral computes an overall best matchset under any MAX scoring
// function via the paper's general approach: build the contribution
// upper envelopes S_j explicitly over the full location range and take
// l_MAX = argmax Σj Sj(l) (Lemma 2). It makes no structural assumption
// on the contribution functions, at the price of a cost linear in the
// size of the location domain: O((maxLoc−minLoc)·Σ|Lj|).
//
// The returned score is f evaluated at the summed envelope maximum,
// which by Lemma 2 equals the matchset's MAX score.
func MAXGeneral(fn scorefn.MAX, lists match.Lists) (best match.Set, score float64, ok bool) {
	if !lists.Complete() {
		return nil, 0, false
	}
	lo, hi := locRange(lists)
	cs := maxContributions(fn, len(lists))
	_, doms, sum, ok := envelope.ArgmaxSum(lists, cs, lo, hi)
	if !ok {
		return nil, 0, false
	}
	return doms, fn.F(sum), true
}

// locRange returns the smallest and largest match locations across all
// lists. Lists must be complete.
func locRange(lists match.Lists) (lo, hi int) {
	lo, hi = math.MaxInt, math.MinInt
	for _, l := range lists {
		if l[0].Loc < lo {
			lo = l[0].Loc
		}
		if last := l[len(l)-1].Loc; last > hi {
			hi = last
		}
	}
	return lo, hi
}

func maxContributions(fn scorefn.MAX, q int) []envelope.Contribution {
	cs := make([]envelope.Contribution, q)
	for j := 0; j < q; j++ {
		j := j
		cs[j] = func(m match.Match, l int) float64 {
			d := m.Loc - l
			if d < 0 {
				d = -d
			}
			return fn.Contribution(j, m.Score, float64(d))
		}
	}
	return cs
}
