package join

import (
	"math"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MAXKernel is the reusable Kernel for MAX scoring functions
// satisfying the at-most-one-crossing and maximized-at-match
// properties (Definition 8) — the paper's efficient specialized
// algorithm of Section V. It owns the per-term dominating-match lists,
// their match.List projections, the envelope cursors, the contribution
// closures, the merge cursors, and the candidate/output matchset
// buffers. See the Kernel interface for the reuse and ownership
// contract.
type MAXKernel struct {
	fn       scorefn.EfficientMAX
	lists    match.Lists
	contribs []envelope.Contribution
	entries  [][]envelope.Entry
	doms     match.Lists
	cursors  []envelope.Cursor
	cand     match.Set
	out      match.Set
	merger   match.Merger
}

// NewMAXKernel returns an empty kernel bound to fn; scratch grows on
// first use and is reused from then on.
func NewMAXKernel(fn scorefn.EfficientMAX) *MAXKernel { return &MAXKernel{fn: fn} }

// Reset loads a new instance. fn may be nil to keep the current
// scoring function, or a scorefn.EfficientMAX to swap it (the
// kernel's contribution closures read the current function at call
// time, so no scratch is rebuilt).
func (k *MAXKernel) Reset(fn any, lists match.Lists) {
	if fn != nil {
		k.fn = fn.(scorefn.EfficientMAX)
	}
	k.lists = lists
}

// grow sizes the per-term scratch for q terms. The contribution
// closure for term j computes c_j(m,l) with dist = |loc(m)−l| against
// the kernel's current scoring function, exactly as maxContributions
// builds them for the one-shot path.
func (k *MAXKernel) grow(q int) {
	for j := len(k.contribs); j < q; j++ {
		j := j
		k.contribs = append(k.contribs, func(m match.Match, l int) float64 {
			d := m.Loc - l
			if d < 0 {
				d = -d
			}
			return k.fn.Contribution(j, m.Score, float64(d))
		})
	}
	for len(k.entries) < q {
		k.entries = append(k.entries, nil)
	}
	for len(k.doms) < q {
		k.doms = append(k.doms, nil)
	}
	if cap(k.cursors) < q {
		k.cursors = make([]envelope.Cursor, q)
	}
	k.cursors = k.cursors[:q]
	if cap(k.cand) < q {
		k.cand = make(match.Set, q)
	}
	k.cand = k.cand[:q]
	if cap(k.out) < q {
		k.out = make(match.Set, q)
	}
	k.out = k.out[:q]
}

// Join solves the loaded instance exactly as the one-shot MAX does: it
// precomputes the dominating match list V_j per term (the same stack
// precomputation as MED, with the MAX contribution function) and then
// walks the dominating matches of all V_j's in location order. At each
// dominating-match location l it assembles the matchset of per-term
// dominating matches at l and scores it by f(Σj cj(mj,l)). The maximum
// over those locations is the optimum: by maximized-at-match the best
// score is attained at a match location of the best matchset, every
// match of which is dominating there, so that location appears in some
// V_j; and by Lemma 2 no candidate can exceed f(Σj Sj(lMAX)).
//
// Time O(|Q| · Σ|Lj|), space O(Σ|Lj|) — owned by the kernel and
// reused. ok is false when some list is empty.
func (k *MAXKernel) Join() (best match.Set, score float64, ok bool) {
	lists := k.lists
	q := len(lists)
	if !lists.Complete() {
		return nil, 0, false
	}
	k.grow(q)
	for j := range lists {
		k.entries[j] = envelope.PrecomputeInto(k.entries[j][:0], lists[j], k.contribs[j])
		k.doms[j] = envelope.MatchesInto(k.doms[j], k.entries[j])
		k.cursors[j].Reset(j, k.entries[j], k.contribs[j])
	}
	doms := k.doms[:q]
	bestSum := math.Inf(-1)
	found := false
	cand := k.cand

	k.merger.Start(doms)
	for {
		ev, more := k.merger.Next(doms)
		if !more {
			break
		}
		l := ev.M.Loc
		sum := 0.0
		for j := range lists {
			dm, _ := k.cursors[j].At(l)
			cand[j] = dm
			sum += k.contribs[j](dm, l)
		}
		if sum > bestSum {
			bestSum = sum
			copy(k.out, cand)
			found = true
		}
	}

	if !found {
		return nil, 0, false
	}
	return k.out, k.fn.F(bestSum), true
}

// MAX computes an overall best matchset under a MAX scoring function
// satisfying the at-most-one-crossing and maximized-at-match
// properties (Definition 8) by running a fresh MAXKernel once — the
// one-shot form for call sites outside the document-at-a-time hot
// loop. The returned set is owned by the caller.
//
// Time O(|Q| · Σ|Lj|), space O(Σ|Lj|). ok is false when some list is
// empty.
func MAX(fn scorefn.EfficientMAX, lists match.Lists) (best match.Set, score float64, ok bool) {
	k := MAXKernel{fn: fn, lists: lists}
	return k.Join()
}

// MAXGeneral computes an overall best matchset under any MAX scoring
// function via the paper's general approach: build the contribution
// upper envelopes S_j explicitly over the full location range and take
// l_MAX = argmax Σj Sj(l) (Lemma 2). It makes no structural assumption
// on the contribution functions, at the price of a cost linear in the
// size of the location domain: O((maxLoc−minLoc)·Σ|Lj|).
//
// The returned score is f evaluated at the summed envelope maximum,
// which by Lemma 2 equals the matchset's MAX score.
func MAXGeneral(fn scorefn.MAX, lists match.Lists) (best match.Set, score float64, ok bool) {
	if !lists.Complete() {
		return nil, 0, false
	}
	lo, hi := locRange(lists)
	cs := maxContributions(fn, len(lists))
	_, doms, sum, ok := envelope.ArgmaxSum(lists, cs, lo, hi)
	if !ok {
		return nil, 0, false
	}
	return doms, fn.F(sum), true
}

// locRange returns the smallest and largest match locations across all
// lists. Lists must be complete.
func locRange(lists match.Lists) (lo, hi int) {
	lo, hi = math.MaxInt, math.MinInt
	for _, l := range lists {
		if l[0].Loc < lo {
			lo = l[0].Loc
		}
		if last := l[len(l)-1].Loc; last > hi {
			hi = last
		}
	}
	return lo, hi
}

// maxContributions builds the per-term contribution closures of the
// general MAX path (MAXGeneral and the by-location variants).
func maxContributions(fn scorefn.MAX, q int) []envelope.Contribution {
	cs := make([]envelope.Contribution, q)
	for j := 0; j < q; j++ {
		j := j
		cs[j] = func(m match.Match, l int) float64 {
			d := m.Loc - l
			if d < 0 {
				d = -d
			}
			return fn.Contribution(j, m.Score, float64(d))
		}
	}
	return cs
}
