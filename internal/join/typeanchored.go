package join

import (
	"math"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// TypeAnchored computes the best matchset under the scoring model of
// Chakrabarti et al. (the paper's reference [7]), which the MAX
// scoring function (5) generalizes: the query has one designated
// "type" term (such as "who" or "physicist"), and instead of
// maximizing the reference location over all positions, the matchset
// is scored with the reference fixed at the type term's match
// location:
//
//	score(M) = f( c_type(m_type, loc(m_type)) + Σ_{j≠type} c_j(m_j, loc(m_type)) )
//
// The best matchset therefore pairs each candidate type match with the
// per-term dominating matches at its location, which the
// dominating-match cursors serve in amortized constant time. Time
// O(|Q|·Σ|Lj|), space O(Σ|Lj|). ok is false when some list is empty.
func TypeAnchored(fn scorefn.EfficientMAX, typeTerm int, lists match.Lists) (best match.Set, score float64, ok bool) {
	q := len(lists)
	if typeTerm < 0 || typeTerm >= q {
		panic("join: type term index out of range")
	}
	if !lists.Complete() {
		return nil, 0, false
	}
	cs := maxContributions(fn, q)
	cursors := make([]*envelope.Cursor, q)
	for j := range lists {
		if j == typeTerm {
			continue
		}
		cursors[j] = envelope.NewCursor(j, envelope.Precompute(lists[j], cs[j]), cs[j])
	}

	bestSum := math.Inf(-1)
	cand := make(match.Set, q)
	for _, m := range lists[typeTerm] {
		l := m.Loc
		sum := cs[typeTerm](m, l)
		cand[typeTerm] = m
		for j := range lists {
			if j == typeTerm {
				continue
			}
			dm, _ := cursors[j].At(l)
			cand[j] = dm
			sum += cs[j](dm, l)
		}
		if sum > bestSum {
			bestSum = sum
			best = append(best[:0], cand...)
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best.Clone(), fn.F(bestSum), true
}
