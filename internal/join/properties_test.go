package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// instanceFromSeed derives a random instance deterministically from a
// quick-generated seed, so failures are reproducible from the printed
// argument.
func instanceFromSeed(seed int64, allowTies bool) match.Lists {
	rng := rand.New(rand.NewSource(seed))
	return randinst.Lists(rng, randinst.Config{
		Terms:      1 + rng.Intn(4),
		MaxPerList: 4,
		MaxLoc:     10 + rng.Intn(60),
		AllowTies:  allowTies,
	})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(99))}
}

func TestQuickWINOptimal(t *testing.T) {
	fn := scorefn.ExpWIN{Alpha: 0.2}
	f := func(seed int64) bool {
		lists := instanceFromSeed(seed, seed%2 == 0)
		_, fast, fok := WIN(fn, lists)
		_, slow, sok := naive.WIN(fn, lists)
		return fok == sok && (!fok || math.Abs(fast-slow) <= 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMEDOptimal(t *testing.T) {
	fn := scorefn.ExpMED{Alpha: 0.2}
	f := func(seed int64) bool {
		lists := instanceFromSeed(seed, seed%2 == 0)
		_, fast, fok := MED(fn, lists)
		_, slow, sok := naive.MED(fn, lists)
		return fok == sok && (!fok || math.Abs(fast-slow) <= 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMAXOptimal(t *testing.T) {
	fn := scorefn.SumMAX{Alpha: 0.2}
	f := func(seed int64) bool {
		lists := instanceFromSeed(seed, seed%2 == 0)
		_, fast, fok := MAX(fn, lists)
		_, slow, sok := naive.MAX(fn, lists)
		return fok == sok && (!fok || math.Abs(fast-slow) <= 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Translation invariance: all three scoring families depend on
// locations only through differences, so shifting every location by a
// constant must not change the optimal score.
func TestQuickTranslationInvariance(t *testing.T) {
	winFn := scorefn.ExpWIN{Alpha: 0.1}
	medFn := scorefn.ExpMED{Alpha: 0.1}
	maxFn := scorefn.SumMAX{Alpha: 0.1}
	f := func(seed int64, rawShift int16) bool {
		shift := int(rawShift)
		lists := instanceFromSeed(seed, false)
		shifted := lists.Clone()
		for j := range shifted {
			for i := range shifted[j] {
				shifted[j][i].Loc += shift
			}
		}
		_, w1, _ := WIN(winFn, lists)
		_, w2, _ := WIN(winFn, shifted)
		_, m1, _ := MED(medFn, lists)
		_, m2, _ := MED(medFn, shifted)
		_, x1, _ := MAX(maxFn, lists)
		_, x2, _ := MAX(maxFn, shifted)
		const tol = 1e-9
		return math.Abs(w1-w2) <= tol && math.Abs(m1-m2) <= tol && math.Abs(x1-x2) <= tol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Score monotonicity: raising one match's individual score can never
// lower the optimal matchset score (all g's are increasing).
func TestQuickScoreMonotonicity(t *testing.T) {
	winFn := scorefn.ExpWIN{Alpha: 0.1}
	medFn := scorefn.ExpMED{Alpha: 0.1}
	maxFn := scorefn.SumMAX{Alpha: 0.1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 50})
		j := rng.Intn(len(lists))
		i := rng.Intn(len(lists[j]))
		boosted := lists.Clone()
		boosted[j][i].Score = math.Min(1, boosted[j][i].Score+rng.Float64()*(1-boosted[j][i].Score))

		const tol = 1e-9
		_, w1, _ := WIN(winFn, lists)
		_, w2, _ := WIN(winFn, boosted)
		if w2 < w1-tol {
			return false
		}
		_, m1, _ := MED(medFn, lists)
		_, m2, _ := MED(medFn, boosted)
		if m2 < m1-tol {
			return false
		}
		_, x1, _ := MAX(maxFn, lists)
		_, x2, _ := MAX(maxFn, boosted)
		return x2 >= x1-tol
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Membership: every returned matchset must consist of matches actually
// present in the corresponding lists.
func TestQuickReturnedSetsAreMembers(t *testing.T) {
	winFn := scorefn.ExpWIN{Alpha: 0.1}
	medFn := scorefn.ExpMED{Alpha: 0.1}
	maxFn := scorefn.SumMAX{Alpha: 0.1}
	member := func(lists match.Lists, s match.Set) bool {
		for j, m := range s {
			found := false
			for _, x := range lists[j] {
				if x == m {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		lists := instanceFromSeed(seed, seed%3 == 0)
		if s, _, ok := WIN(winFn, lists); ok && !member(lists, s) {
			return false
		}
		if s, _, ok := MED(medFn, lists); ok && !member(lists, s) {
			return false
		}
		if s, _, ok := MAX(maxFn, lists); ok && !member(lists, s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// All matches co-located: degenerate but legal — the optimum is simply
// the per-term best scores with zero distance penalty.
func TestAllMatchesSameLocation(t *testing.T) {
	lists := match.Lists{
		{{Loc: 7, Score: 0.2}, {Loc: 7, Score: 0.9}},
		{{Loc: 7, Score: 0.5}},
		{{Loc: 7, Score: 0.8}, {Loc: 7, Score: 0.1}},
	}
	winFn := scorefn.ExpWIN{Alpha: 0.1}
	s, sc, ok := WIN(winFn, lists)
	if !ok {
		t.Fatal("no WIN matchset")
	}
	want := 0.9 * 0.5 * 0.8
	if math.Abs(sc-want) > 1e-9 {
		t.Errorf("WIN co-located score %v, want %v (set %v)", sc, want, s)
	}
	_, sc, _ = MED(scorefn.ExpMED{Alpha: 0.1}, lists)
	if math.Abs(sc-want) > 1e-9 {
		t.Errorf("MED co-located score %v, want %v", sc, want)
	}
	_, sc, _ = MAX(scorefn.SumMAX{Alpha: 0.1}, lists)
	if math.Abs(sc-(0.9+0.5+0.8)) > 1e-9 {
		t.Errorf("MAX co-located score %v, want %v", sc, 0.9+0.5+0.8)
	}
}

// Negative locations are legal (locations only enter through
// differences).
func TestNegativeLocations(t *testing.T) {
	lists := match.Lists{
		{{Loc: -30, Score: 0.9}, {Loc: 10, Score: 0.5}},
		{{Loc: -28, Score: 0.8}},
	}
	fn := scorefn.ExpWIN{Alpha: 0.1}
	s, sc, ok := WIN(fn, lists)
	if !ok || s[0].Loc != -30 {
		t.Fatalf("WIN with negative locations = %v %v %v", s, sc, ok)
	}
	_, nsc, _ := naive.WIN(fn, lists)
	if math.Abs(sc-nsc) > 1e-9 {
		t.Errorf("negative locations: %v != naive %v", sc, nsc)
	}
}
