package bylocation

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

const tol = 1e-9

// checkAgainstNaive verifies that a by-location result agrees with the
// exhaustive per-anchor optimum: the same anchor set, and the optimal
// score at every anchor.
func checkAgainstNaive(t *testing.T, name string, lists match.Lists, got []Anchored, want map[int]naive.Anchored) {
	t.Helper()
	if len(got) != len(want) {
		anchors := make([]int, 0, len(got))
		for _, a := range got {
			anchors = append(anchors, a.Anchor)
		}
		t.Fatalf("%s: %d anchors %v, exhaustive has %d %v\nlists %v", name, len(got), anchors, len(want), want, lists)
	}
	prev := math.MinInt
	for _, a := range got {
		if a.Anchor <= prev {
			t.Fatalf("%s: anchors not strictly increasing at %d", name, a.Anchor)
		}
		prev = a.Anchor
		w, seen := want[a.Anchor]
		if !seen {
			t.Fatalf("%s: anchor %d not in exhaustive result; lists %v", name, a.Anchor, lists)
		}
		if math.Abs(a.Score-w.Score) > tol {
			t.Fatalf("%s: anchor %d score %v != exhaustive %v\ngot %v want %v\nlists %v",
				name, a.Anchor, a.Score, w.Score, a.Set, w.Set, lists)
		}
	}
}

func configs() []randinst.Config {
	return []randinst.Config{
		{Terms: 1, MaxPerList: 5, MaxLoc: 30},
		{Terms: 2, MaxPerList: 5, MaxLoc: 40},
		{Terms: 3, MaxPerList: 4, MaxLoc: 60},
		{Terms: 4, MaxPerList: 3, MaxLoc: 60},
		{Terms: 5, MaxPerList: 3, MaxLoc: 80},
		{Terms: 3, MaxPerList: 4, MaxLoc: 10, AllowTies: true},
		{Terms: 4, MaxPerList: 3, MaxLoc: 8, AllowTies: true},
	}
}

func TestWINByLocationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fn := scorefn.ExpWIN{Alpha: 0.1}
	for _, cfg := range configs() {
		for trial := 0; trial < 120; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := WIN(fn, lists)
			want := naive.ByAnchorWIN(fn, lists)
			checkAgainstNaive(t, "WIN", lists, got, want)
			// Every returned set must actually anchor at its anchor.
			for _, a := range got {
				if a.Set.MaxLoc() != a.Anchor {
					t.Fatalf("WIN: set %v anchored at %d but MaxLoc=%d", a.Set, a.Anchor, a.Set.MaxLoc())
				}
				if sc := scorefn.ScoreWIN(fn, a.Set); math.Abs(sc-a.Score) > tol {
					t.Fatalf("WIN: reported %v but set scores %v", a.Score, sc)
				}
			}
		}
	}
}

func TestMEDByLocationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fn := scorefn.ExpMED{Alpha: 0.1}
	for _, cfg := range configs() {
		for trial := 0; trial < 120; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := MED(fn, lists)
			want := naive.ByAnchorMED(fn, lists)
			checkAgainstNaive(t, "MED", lists, got, want)
			for _, a := range got {
				if a.Set.Median() != a.Anchor {
					t.Fatalf("MED: set %v anchored at %d but Median=%d", a.Set, a.Anchor, a.Set.Median())
				}
				if sc := scorefn.ScoreMED(fn, a.Set); math.Abs(sc-a.Score) > tol {
					t.Fatalf("MED: reported %v but set scores %v", a.Score, sc)
				}
			}
		}
	}
}

func TestMAXByLocationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fn := scorefn.SumMAX{Alpha: 0.1}
	for _, cfg := range configs() {
		for trial := 0; trial < 120; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := MAX(fn, lists)
			want := naive.ByAnchorMAX(fn, lists)
			checkAgainstNaive(t, "MAX", lists, got, want)
			for _, a := range got {
				if sc := scorefn.ScoreMAXAt(fn, a.Set, a.Anchor); math.Abs(sc-a.Score) > tol {
					t.Fatalf("MAX: reported %v but set scores %v at anchor", a.Score, sc)
				}
			}
		}
	}
}

func TestByLocationBestEqualsOverallBest(t *testing.T) {
	// The max over anchors must equal the overall-best-matchset score.
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 200; trial++ {
		lists := randinst.Lists(rng, randinst.Config{Terms: 3, MaxPerList: 4, MaxLoc: 50, AllowTies: trial%2 == 0})

		wfn := scorefn.ExpWIN{Alpha: 0.1}
		_, wScore, wOK := join.WIN(wfn, lists)
		checkBestAnchor(t, "WIN", WIN(wfn, lists), wScore, wOK)

		mfn := scorefn.ExpMED{Alpha: 0.1}
		_, mScore, mOK := join.MED(mfn, lists)
		checkBestAnchor(t, "MED", MED(mfn, lists), mScore, mOK)

		xfn := scorefn.SumMAX{Alpha: 0.1}
		_, xScore, xOK := join.MAX(xfn, lists)
		checkBestAnchor(t, "MAX", MAX(xfn, lists), xScore, xOK)
	}
}

func checkBestAnchor(t *testing.T, name string, got []Anchored, overall float64, ok bool) {
	t.Helper()
	if !ok {
		if len(got) != 0 {
			t.Fatalf("%s: results despite no matchset", name)
		}
		return
	}
	best := math.Inf(-1)
	for _, a := range got {
		best = math.Max(best, a.Score)
	}
	if math.Abs(best-overall) > tol {
		t.Fatalf("%s: best by-location score %v != overall best %v", name, best, overall)
	}
}

func TestWINStreamEmitsInAnchorOrderImmediately(t *testing.T) {
	// The streaming WIN must emit an anchor's result before processing
	// any match at a later location; verify emission order equals
	// anchor order and that each anchor is emitted exactly once.
	lists := match.Lists{
		{{Loc: 1, Score: 0.9}, {Loc: 7, Score: 0.4}},
		{{Loc: 3, Score: 0.8}, {Loc: 7, Score: 0.9}},
	}
	fn := scorefn.ExpWIN{Alpha: 0.1}
	var anchors []int
	WINStream(fn, lists, func(a Anchored) { anchors = append(anchors, a.Anchor) })
	want := []int{3, 7}
	if len(anchors) != len(want) {
		t.Fatalf("anchors = %v, want %v", anchors, want)
	}
	for i := range want {
		if anchors[i] != want[i] {
			t.Fatalf("anchors = %v, want %v", anchors, want)
		}
	}
}

func TestEmptyListYieldsNothing(t *testing.T) {
	lists := match.Lists{{{Loc: 1, Score: 1}}, {}}
	if got := WIN(scorefn.ExpWIN{Alpha: 0.1}, lists); len(got) != 0 {
		t.Errorf("WIN = %v, want none", got)
	}
	if got := MED(scorefn.ExpMED{Alpha: 0.1}, lists); len(got) != 0 {
		t.Errorf("MED = %v, want none", got)
	}
	if got := MAX(scorefn.SumMAX{Alpha: 0.1}, lists); len(got) != 0 {
		t.Errorf("MAX = %v, want none", got)
	}
}

func TestExtractionThresholdScenario(t *testing.T) {
	// The information-extraction use case: two well-separated good
	// clusters in one document must surface as two high-scoring
	// anchors (e.g. {Lenovo, NBA, partner} and {Lenovo, Olympics,
	// partnership} in the paper's Figure 1).
	lists := match.Lists{
		{{Loc: 10, Score: 0.9}, {Loc: 100, Score: 0.9}},
		{{Loc: 12, Score: 0.8}, {Loc: 103, Score: 0.8}},
		{{Loc: 14, Score: 0.9}, {Loc: 106, Score: 0.7}},
	}
	fn := scorefn.ExpMED{Alpha: 0.1}
	res := MED(fn, lists)
	good := 0
	for _, a := range res {
		if a.Score > 0.2 {
			good++
		}
	}
	if good != 2 {
		t.Errorf("found %d good anchors, want 2 clusters: %+v", good, res)
	}
}
