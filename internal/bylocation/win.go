package bylocation

import (
	"fmt"
	"math"

	"bestjoin/internal/join"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// WIN solves best-matchset-by-location for a WIN scoring function,
// returning one best matchset per anchor (largest-match) location, in
// increasing anchor order. It is the minor modification of Algorithm 1
// described in Section VII; complexity stays O(2^|Q|·Σ|Lj|).
func WIN(fn scorefn.WIN, lists match.Lists) []Anchored {
	var out []Anchored
	WINStream(fn, lists, func(a Anchored) { out = append(out, a) })
	return out
}

// WINStream is the streaming form of WIN: emit is called with the best
// matchset anchored at each location as soon as all matches at that
// location have been processed, in increasing anchor order. The
// algorithm makes a single pass over the match lists and its state is
// independent of their size — the streaming property Section VII
// establishes for WIN (and shows is unattainable for MED and MAX).
func WINStream(fn scorefn.WIN, lists match.Lists, emit func(Anchored)) {
	q := len(lists)
	if q > join.MaxWINTerms {
		panic(fmt.Sprintf("bylocation: WIN supports at most %d query terms, got %d", join.MaxWINTerms, q))
	}
	if !lists.Complete() {
		return
	}
	full := 1<<q - 1
	type state struct {
		set  *chain
		gsum float64
		lmin int
	}
	states := make([]state, 1<<q)

	// Best candidate anchored at the location currently being
	// processed.
	curLoc := math.MinInt
	var curBest *chain
	var curScore float64
	flush := func() {
		if curBest != nil {
			emit(Anchored{Anchor: curLoc, Set: curBest.toSet(q), Score: curScore})
			curBest = nil
		}
	}

	match.Merge(lists, func(ev match.Event) bool {
		j, m := ev.Term, ev.M
		g := fn.G(j, m.Score)
		l := m.Loc
		if l != curLoc {
			flush()
			curLoc = l
		}
		bit := 1 << j
		rest := full &^ bit
		// Update best partial matchsets exactly as Algorithm 1 does.
		for s := rest; ; s = (s - 1) & rest {
			st := &states[s|bit]
			if s == 0 {
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(g, 0) {
					st.set = &chain{term: j, m: m}
					st.gsum, st.lmin = g, l
				}
			} else if sub := &states[s]; sub.set != nil {
				cand := sub.gsum + g
				if st.set == nil || fn.F(st.gsum, float64(l-st.lmin)) < fn.F(cand, float64(l-sub.lmin)) {
					st.set = &chain{term: j, m: m, prev: sub.set}
					st.gsum, st.lmin = cand, sub.lmin
				}
			}
			if s == 0 {
				break
			}
		}
		// Candidate anchored at l: m joined with the best
		// (Q∖{qj})-matchset seen so far. Its largest location is l by
		// construction.
		if sub := &states[rest]; sub.set != nil {
			sc := fn.F(sub.gsum+g, float64(l-min(sub.lmin, l)))
			if curBest == nil || sc > curScore {
				curBest = &chain{term: j, m: m, prev: sub.set}
				curScore = sc
			}
		} else if q == 1 {
			if sc := fn.F(g, 0); curBest == nil || sc > curScore {
				curBest = &chain{term: j, m: m}
				curScore = sc
			}
		}
		return true
	})
	flush()
}

// chain is a persistent partial-matchset list (see join.WIN).
type chain struct {
	term int
	m    match.Match
	prev *chain
}

func (c *chain) toSet(q int) match.Set {
	s := make(match.Set, q)
	for ; c != nil; c = c.prev {
		s[c.term] = c.m
	}
	return s
}
