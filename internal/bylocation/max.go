package bylocation

import (
	"math"

	"bestjoin/internal/envelope"
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MAX solves best-matchset-by-location for an efficient MAX scoring
// function, returning for every match location l the best matchset
// anchored at l — which consists of the per-term dominating matches at
// l (any non-dominating member could be swapped for a dominating one
// without lowering the score at l). Results come back in increasing
// anchor order.
//
// As Section VII prescribes, the algorithm reuses the precomputed
// dominating-match lists V_j but walks all match locations of the
// original lists rather than only the dominating matches' locations.
// Complexity O(|Q|·Σ|Lj|).
func MAX(fn scorefn.EfficientMAX, lists match.Lists) []Anchored {
	q := len(lists)
	if !lists.Complete() {
		return nil
	}
	cs := make([]envelope.Contribution, q)
	cursors := make([]*envelope.Cursor, q)
	for j := range lists {
		j := j
		cs[j] = func(m match.Match, l int) float64 {
			d := m.Loc - l
			if d < 0 {
				d = -d
			}
			return fn.Contribution(j, m.Score, float64(d))
		}
		cursors[j] = envelope.NewCursor(j, envelope.Precompute(lists[j], cs[j]), cs[j])
	}

	var out []Anchored
	curLoc := math.MinInt
	match.Merge(lists, func(ev match.Event) bool {
		l := ev.M.Loc
		if l == curLoc {
			return true // one result per distinct location
		}
		curLoc = l
		set := make(match.Set, q)
		sum := 0.0
		for j := range lists {
			dm, _ := cursors[j].At(l)
			set[j] = dm
			sum += cs[j](dm, l)
		}
		out = append(out, Anchored{Anchor: l, Set: set, Score: fn.F(sum)})
		return true
	})
	return out
}
