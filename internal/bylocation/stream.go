package bylocation

import (
	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// StreamMED solves best-matchset-by-location for MED in a single
// forward pass, emitting each anchor's result as soon as no future
// match can change it. Section VII of the paper proves MED is not
// streamable in general — an arbitrarily distant future match might
// join the matchset anchored now — but suggests, as future work, that
// an upper bound on individual match scores enables algorithms that
// "prune their state more aggressively and return result matchsets
// earlier". This is that algorithm.
//
// maxScore is the promised upper bound on every individual match score
// (the paper's setting is scores in (0,1], i.e. maxScore=1). With it,
// a future match for term j at location L contributes at most
// g_j(maxScore) − (L − a) to an anchor at a, so once the scan's
// location has advanced far enough past a that the bound cannot beat
// a's current succeeding-side candidates, a is finalized and emitted.
// Results are identical to MED (same anchors, same scores); only the
// emission latency differs. Matches scored above maxScore void the
// guarantee.
//
// The held-back state is bounded by the emission horizon
// g_j(maxScore) − cR rather than by the input length, so long
// documents stream with near-constant memory as long as good
// succeeding candidates keep appearing.
func StreamMED(fn scorefn.MED, maxScore float64, lists match.Lists, emit func(Anchored)) {
	q := len(lists)
	if !lists.Complete() {
		return
	}
	rights := match.MedianRank(q) - 1
	gMax := make([]float64, q)
	for j := 0; j < q; j++ {
		gMax[j] = fn.G(j, maxScore)
	}

	// Forward prefix state: best (g+loc) per term over processed
	// matches.
	preKey := make([]float64, q)
	preMatch := make([]match.Match, q)
	preSet := make([]bool, q)

	// pending holds anchors awaiting finalization, in location order.
	type pending struct {
		anchor   int
		term     int
		g        float64 // g of the anchor match
		m        match.Match
		preKey   []float64 // left candidates frozen at creation
		preM     []match.Match
		preSet   []bool
		rightKey []float64 // max (g−loc) among matches after the anchor
		rightM   []match.Match
		rightSet []bool
	}
	var queue []pending

	// finalize runs the side DP for one pending anchor with its frozen
	// left and accumulated right candidates.
	finalize := func(p pending) (Anchored, bool) {
		cL := make([]float64, q)
		cR := make([]float64, q)
		for j := 0; j < q; j++ {
			if p.preSet[j] {
				cL[j] = p.preKey[j] - float64(p.anchor)
			}
			if p.rightSet[j] {
				cR[j] = p.rightKey[j] + float64(p.anchor)
			}
		}
		total, useRight, ok := solveSides(p.term, rights, cL, cR, p.preSet, p.rightSet)
		if !ok {
			return Anchored{}, false
		}
		set := make(match.Set, q)
		set[p.term] = p.m
		for j := 0; j < q; j++ {
			if j == p.term {
				continue
			}
			if useRight[j] {
				set[j] = p.rightM[j]
			} else {
				set[j] = p.preM[j]
			}
		}
		return Anchored{Anchor: p.anchor, Set: set, Score: fn.F(p.g + total)}, true
	}

	// settled reports whether no match at location ≥ L can improve any
	// of p's succeeding-side candidates: the score-bound contribution
	// g_j(maxScore) − (L − anchor) must not exceed the candidate
	// already held. A term with no succeeding candidate yet can always
	// be improved, so it blocks settlement.
	settled := func(p pending, L int) bool {
		for j := 0; j < q; j++ {
			if j == p.term {
				continue
			}
			if !p.rightSet[j] {
				return false
			}
			if gMax[j]-float64(L-p.anchor) > p.rightKey[j]+float64(p.anchor) {
				return false
			}
		}
		return true
	}

	// emitReady finalizes and emits all leading pending location
	// groups whose every member is settled at scan location L,
	// keeping the per-location best (as MED does).
	emitReady := func(L int, drain bool) {
		for len(queue) > 0 {
			// The group of pending anchors sharing the front location.
			loc := queue[0].anchor
			end := 0
			groupSettled := true
			for end < len(queue) && queue[end].anchor == loc {
				if !drain && !settled(queue[end], L) {
					groupSettled = false
				}
				end++
			}
			if !groupSettled || (!drain && end == len(queue) && L <= loc) {
				return
			}
			var best Anchored
			found := false
			for _, p := range queue[:end] {
				if a, ok := finalize(p); ok && (!found || a.Score > best.Score) {
					best, found = a, true
				}
			}
			if found {
				emit(best)
			}
			queue = queue[end:]
		}
	}

	match.Merge(lists, func(ev match.Event) bool {
		t, m, l := ev.Term, ev.M, ev.M.Loc
		// This match succeeds every pending anchor: offer it as a
		// succeeding-side candidate.
		key := fn.G(t, m.Score) - float64(l)
		for i := range queue {
			p := &queue[i]
			if !p.rightSet[t] || key > p.rightKey[t] {
				p.rightKey[t], p.rightM[t], p.rightSet[t] = key, m, true
			}
		}
		// Open a pending anchor for this match, freezing the left
		// candidates (matches preceding it in processing order).
		p := pending{
			anchor: l, term: t, g: fn.G(t, m.Score), m: m,
			preKey:   append([]float64(nil), preKey...),
			preM:     append([]match.Match(nil), preMatch...),
			preSet:   append([]bool(nil), preSet...),
			rightKey: make([]float64, q), rightM: make([]match.Match, q),
			rightSet: make([]bool, q),
		}
		queue = append(queue, p)
		// Fold the match into the prefix state.
		if k := fn.G(t, m.Score) + float64(l); !preSet[t] || k >= preKey[t] {
			preKey[t], preMatch[t], preSet[t] = k, m, true
		}
		emitReady(l, false)
		return true
	})
	emitReady(0, true)
}
