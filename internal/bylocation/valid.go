package bylocation

import (
	"bestjoin/internal/dedup"
	"bestjoin/internal/match"
)

// Solver is any best-matchset-by-location solver (WIN, MED or MAX
// curried with a scoring function).
type Solver func(match.Lists) []Anchored

// Valid combines Sections VI and VII: for every anchor location, the
// best matchset anchored there that contains no duplicate matches
// (no token answering two query terms at once). The paper notes the
// by-location problem "can be similarly modified" for validity; this
// is that modification, built the same way as the overall-best
// wrapper: run the duplicate-unaware solver; for each anchor whose
// best matchset reuses tokens, rerun the solver on the Section VI
// modified instances and recurse until a valid matchset for that
// anchor emerges (or none exists).
//
// Anchors whose every matchset is invalid are dropped from the output.
// The cost is the solver's cost times the number of reruns, which —
// as in the overall-best case — is small when duplicates are rare in
// best matchsets.
func Valid(solve Solver, lists match.Lists) []Anchored {
	base := solve(lists)
	out := make([]Anchored, 0, len(base))
	for _, a := range base {
		budget := maxReruns
		if r, ok := validAt(solve, lists, a, &budget); ok {
			out = append(out, r)
		}
	}
	return out
}

// maxReruns caps per-anchor solver reruns, mirroring
// dedup.MaxInvocations.
const maxReruns = 10000

func validAt(solve Solver, lists match.Lists, entry Anchored, budget *int) (Anchored, bool) {
	if entry.Set.Valid() {
		return entry, true
	}
	var best Anchored
	found := false
	for _, modified := range dedup.Split(lists, entry.Set) {
		if *budget <= 0 {
			break
		}
		*budget--
		sub, ok := anchorEntry(solve(modified), entry.Anchor)
		if !ok {
			continue
		}
		if r, ok := validAt(solve, modified, sub, budget); ok && (!found || r.Score > best.Score) {
			best, found = r, true
		}
	}
	return best, found
}

// anchorEntry finds the entry for one anchor in an anchor-ordered
// result slice.
func anchorEntry(results []Anchored, anchor int) (Anchored, bool) {
	lo, hi := 0, len(results)
	for lo < hi {
		mid := (lo + hi) / 2
		if results[mid].Anchor < anchor {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(results) && results[lo].Anchor == anchor {
		return results[lo], true
	}
	return Anchored{}, false
}
