package bylocation

import (
	"math"

	"bestjoin/internal/match"
	"bestjoin/internal/scorefn"
)

// MED solves best-matchset-by-location for a MED scoring function,
// returning one best matchset per anchor (median) location in
// increasing anchor order — the O(|Q|²·Σ|Lj|) dynamic-programming
// extension sketched in Section VII.
//
// Lemma 1 does not carry over to locally best matchsets: a best
// matchset for a specific anchor may contain non-dominating matches.
// What does hold is that every match in it must dominate, at the
// anchor, all same-term matches on the same side of the anchor. The
// algorithm therefore walks all matches in processing order and, for
// each match m treated as the median element of a candidate matchset,
// picks per other term either the best match preceding m or the best
// match succeeding m (in processing order, so same-location ties split
// consistently), with a small DP (solveSides) enforcing that exactly
// ⌊(|Q|+1)/2⌋−1 picks succeed m — which pins the matchset's median at
// loc(m).
func MED(fn scorefn.MED, lists match.Lists) []Anchored {
	q := len(lists)
	if !lists.Complete() {
		return nil
	}
	// rights is how many matches must rank above the median element.
	rights := match.MedianRank(q) - 1

	// Per-term side bests. preKey[j] is max of g_j(score)+loc over
	// processed matches of list j (contribution at l is preKey − l);
	// suffix arrays give max of g_j(score)−loc over unprocessed
	// matches (contribution at l is sufKey + l).
	preKey := make([]float64, q)
	preMatch := make([]match.Match, q)
	preSet := make([]bool, q)
	sufKey := make([][]float64, q)
	sufMatch := make([][]match.Match, q)
	pos := make([]int, q) // number of processed matches per list
	for j, l := range lists {
		sufKey[j] = make([]float64, len(l)+1)
		sufMatch[j] = make([]match.Match, len(l)+1)
		sufKey[j][len(l)] = math.Inf(-1)
		for i := len(l) - 1; i >= 0; i-- {
			k := fn.G(j, l[i].Score) - float64(l[i].Loc)
			// ≥ keeps the earlier match on ties; either choice is a
			// valid side-dominating match with equal contribution.
			if k >= sufKey[j][i+1] {
				sufKey[j][i], sufMatch[j][i] = k, l[i]
			} else {
				sufKey[j][i], sufMatch[j][i] = sufKey[j][i+1], sufMatch[j][i+1]
			}
		}
	}

	// Best candidate per anchor location, emitted in location order.
	var out []Anchored
	curLoc := math.MinInt
	var curBest match.Set
	var curScore float64
	flush := func() {
		if curBest != nil {
			out = append(out, Anchored{Anchor: curLoc, Set: curBest, Score: curScore})
			curBest = nil
		}
	}

	cL := make([]float64, q)
	cR := make([]float64, q)
	hasL := make([]bool, q)
	hasR := make([]bool, q)
	match.Merge(lists, func(ev match.Event) bool {
		t, m, l := ev.Term, ev.M, ev.M.Loc
		if l != curLoc {
			flush()
			curLoc = l
		}
		for j := 0; j < q; j++ {
			hasL[j] = preSet[j]
			if hasL[j] {
				cL[j] = preKey[j] - float64(l)
			}
			hasR[j] = pos[j] < len(lists[j])
			if hasR[j] {
				cR[j] = sufKey[j][pos[j]] + float64(l)
			}
		}
		if total, useRight, ok := solveSides(t, rights, cL, cR, hasL, hasR); ok {
			if sc := fn.F(fn.G(t, m.Score) + total); curBest == nil || sc > curScore {
				set := make(match.Set, q)
				set[t] = m
				for j := 0; j < q; j++ {
					if j == t {
						continue
					}
					if useRight[j] {
						set[j] = sufMatch[j][pos[j]]
					} else {
						set[j] = preMatch[j]
					}
				}
				curBest, curScore = set, sc
			}
		}
		// m is now processed: fold it into term t's preceding side.
		if k := fn.G(t, m.Score) + float64(l); !preSet[t] || k >= preKey[t] {
			preKey[t], preMatch[t], preSet[t] = k, m, true
		}
		pos[t]++
		return true
	})
	flush()
	return out
}
