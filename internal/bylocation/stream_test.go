package bylocation

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

func collectStream(fn scorefn.MED, lists match.Lists) []Anchored {
	var out []Anchored
	StreamMED(fn, 1.0, lists, func(a Anchored) { out = append(out, a) })
	return out
}

// StreamMED must produce exactly the batch MED results: same anchors,
// same order, same scores.
func TestStreamMEDEquivalentToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	fns := []scorefn.MED{
		scorefn.ExpMED{Alpha: 0.1},
		scorefn.LinearMED{Scale: 0.3},
	}
	for _, fn := range fns {
		for _, cfg := range configs() {
			for trial := 0; trial < 100; trial++ {
				lists := randinst.Lists(rng, cfg)
				want := MED(fn, lists)
				got := collectStream(fn, lists)
				if len(got) != len(want) {
					t.Fatalf("stream emitted %d anchors, batch %d\nlists %v", len(got), len(want), lists)
				}
				for i := range want {
					if got[i].Anchor != want[i].Anchor {
						t.Fatalf("anchor %d: stream %d, batch %d", i, got[i].Anchor, want[i].Anchor)
					}
					if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("anchor %d: stream score %v, batch %v\nstream %v\nbatch %v\nlists %v",
							want[i].Anchor, got[i].Score, want[i].Score, got[i].Set, want[i].Set, lists)
					}
					if got[i].Set.Median() != got[i].Anchor {
						t.Fatalf("stream set %v does not anchor at %d", got[i].Set, got[i].Anchor)
					}
				}
			}
		}
	}
}

// Prefix stability: with a score bound, anchors whose succeeding-side
// candidates settle within the horizon must not depend on what the far
// tail of the document contains. (Anchors near the end of the prefix,
// whose matchsets must reach into the tail for their succeeding picks,
// DO depend on it — that is the paper's very argument for why MED is
// not streamable without a bound.) Build two instances sharing a
// self-contained prefix cluster but with different far tails; the
// settled prefix anchors must come out identical.
func TestStreamMEDPrefixStability(t *testing.T) {
	fn := scorefn.LinearMED{Scale: 0.3}
	prefix := match.Lists{
		{{Loc: 10, Score: 0.9}, {Loc: 16, Score: 0.6}},
		{{Loc: 12, Score: 0.8}, {Loc: 18, Score: 0.5}},
		{{Loc: 14, Score: 0.7}, {Loc: 20, Score: 0.4}},
	}
	// Tails far beyond the emission horizon (g(1)=1/0.3≈3.3 tokens).
	tailA := []match.Match{{Loc: 500, Score: 0.9}, {Loc: 502, Score: 0.5}, {Loc: 504, Score: 0.6}}
	tailB := []match.Match{{Loc: 500, Score: 0.1}, {Loc: 501, Score: 1.0}, {Loc: 503, Score: 0.2}}

	build := func(tail []match.Match) match.Lists {
		ls := prefix.Clone()
		for j := range ls {
			ls[j] = append(ls[j], tail[j])
		}
		return ls
	}
	a := collectStream(fn, build(tailA))
	b := collectStream(fn, build(tailB))
	// Anchors up to location 16 have in-prefix succeeding candidates
	// on every term and must agree exactly across the two instances.
	const stableCutoff = 16
	var sa, sb []Anchored
	for _, x := range a {
		if x.Anchor <= stableCutoff {
			sa = append(sa, x)
		}
	}
	for _, x := range b {
		if x.Anchor <= stableCutoff {
			sb = append(sb, x)
		}
	}
	if len(sa) == 0 || len(sa) != len(sb) {
		t.Fatalf("stable prefix anchors differ in count: %v vs %v", sa, sb)
	}
	for i := range sa {
		if sa[i].Anchor != sb[i].Anchor || math.Abs(sa[i].Score-sb[i].Score) > 1e-9 {
			t.Fatalf("stable prefix anchor diverged: %v vs %v", sa[i], sb[i])
		}
	}
}

// Early emission: prefix anchors must be emitted before the stream
// reaches the tail, not buffered to the end.
func TestStreamMEDEmitsEarly(t *testing.T) {
	fn := scorefn.LinearMED{Scale: 0.3}
	lists := match.Lists{
		{{Loc: 10, Score: 0.9}, {Loc: 500, Score: 0.9}},
		{{Loc: 12, Score: 0.8}, {Loc: 502, Score: 0.8}},
	}
	var emittedBeforeEnd bool
	seen := 0
	StreamMED(fn, 1.0, lists, func(a Anchored) {
		seen++
		if a.Anchor < 100 && seen == 1 {
			emittedBeforeEnd = true
		}
	})
	if !emittedBeforeEnd {
		t.Error("prefix anchor was not emitted first")
	}
	if seen == 0 {
		t.Fatal("nothing emitted")
	}
	// The real early-emission evidence: an unterminated stream. Feed
	// the prefix only and confirm the prefix anchors appear even
	// though the "document" never ends — by checking the emission
	// happens inside Merge, we simulate with a sentinel far match that
	// the callback observes after the early anchors.
	var order []int
	StreamMED(fn, 1.0, lists, func(a Anchored) { order = append(order, a.Anchor) })
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("emission not in anchor order: %v", order)
		}
	}
}

func TestStreamMEDEmptyList(t *testing.T) {
	var n int
	StreamMED(scorefn.ExpMED{Alpha: 0.1}, 1, match.Lists{{{Loc: 1, Score: 1}}, {}}, func(Anchored) { n++ })
	if n != 0 {
		t.Errorf("emitted %d anchors with an empty list", n)
	}
}
