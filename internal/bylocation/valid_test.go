package bylocation

import (
	"math"
	"math/rand"
	"testing"

	"bestjoin/internal/match"
	"bestjoin/internal/naive"
	"bestjoin/internal/randinst"
	"bestjoin/internal/scorefn"
)

// checkValidAgainstNaive compares a duplicate-avoiding by-location
// result against the exhaustive valid-only per-anchor optimum.
func checkValidAgainstNaive(t *testing.T, name string, lists match.Lists, got []Anchored, want map[int]naive.Anchored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d anchors, exhaustive %d\ngot %v\nwant %v\nlists %v", name, len(got), len(want), got, want, lists)
	}
	for _, a := range got {
		if !a.Set.Valid() {
			t.Fatalf("%s: anchor %d returned invalid set %v", name, a.Anchor, a.Set)
		}
		w, seen := want[a.Anchor]
		if !seen {
			t.Fatalf("%s: anchor %d not in exhaustive result", name, a.Anchor)
		}
		if math.Abs(a.Score-w.Score) > 1e-9 {
			t.Fatalf("%s: anchor %d score %v != exhaustive valid optimum %v\ngot %v want %v\nlists %v",
				name, a.Anchor, a.Score, w.Score, a.Set, w.Set, lists)
		}
	}
}

func dupConfigs() []randinst.Config {
	return []randinst.Config{
		{Terms: 2, MaxPerList: 4, MaxLoc: 7, AllowTies: true},
		{Terms: 3, MaxPerList: 3, MaxLoc: 8, AllowTies: true},
		{Terms: 4, MaxPerList: 3, MaxLoc: 6, AllowTies: true},
		{Terms: 3, MaxPerList: 4, MaxLoc: 40},
	}
}

func TestValidWINMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fn := scorefn.ExpWIN{Alpha: 0.1}
	solve := func(ls match.Lists) []Anchored { return WIN(fn, ls) }
	for _, cfg := range dupConfigs() {
		for trial := 0; trial < 80; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := Valid(solve, lists)
			want := naive.ValidByAnchorWIN(fn, lists)
			checkValidAgainstNaive(t, "WIN", lists, got, want)
		}
	}
}

func TestValidMEDMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	fn := scorefn.ExpMED{Alpha: 0.1}
	solve := func(ls match.Lists) []Anchored { return MED(fn, ls) }
	for _, cfg := range dupConfigs() {
		for trial := 0; trial < 80; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := Valid(solve, lists)
			want := naive.ValidByAnchorMED(fn, lists)
			checkValidAgainstNaive(t, "MED", lists, got, want)
		}
	}
}

func TestValidMAXMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	fn := scorefn.SumMAX{Alpha: 0.1}
	solve := func(ls match.Lists) []Anchored { return MAX(fn, ls) }
	for _, cfg := range dupConfigs() {
		for trial := 0; trial < 80; trial++ {
			lists := randinst.Lists(rng, cfg)
			got := Valid(solve, lists)
			want := naive.ValidByAnchorMAX(fn, lists)
			checkValidAgainstNaive(t, "MAX", lists, got, want)
		}
	}
}

func TestValidDropsAllInvalidAnchors(t *testing.T) {
	// Both terms share their only token: no anchor has a valid set.
	lists := match.Lists{
		{{Loc: 5, Score: 1}},
		{{Loc: 5, Score: 1}},
	}
	fn := scorefn.ExpWIN{Alpha: 0.1}
	got := Valid(func(ls match.Lists) []Anchored { return WIN(fn, ls) }, lists)
	if len(got) != 0 {
		t.Errorf("Valid = %v, want none", got)
	}
}

func TestValidNoDuplicatesIsIdentity(t *testing.T) {
	lists := match.Lists{
		{{Loc: 1, Score: 0.5}, {Loc: 9, Score: 0.9}},
		{{Loc: 4, Score: 0.8}},
	}
	fn := scorefn.ExpMED{Alpha: 0.1}
	solve := func(ls match.Lists) []Anchored { return MED(fn, ls) }
	base := solve(lists)
	got := Valid(solve, lists)
	if len(got) != len(base) {
		t.Fatalf("Valid dropped anchors on a duplicate-free instance: %v vs %v", got, base)
	}
	for i := range base {
		if got[i].Anchor != base[i].Anchor || got[i].Score != base[i].Score {
			t.Errorf("anchor %d changed: %v vs %v", i, got[i], base[i])
		}
	}
}
