package bylocation

import "math"

// solveSides is the side-assignment dynamic program shared by the
// batch and streaming MED by-location solvers: for each query term
// other than the anchor's, pick either its best preceding-side
// candidate (contribution cL) or its best succeeding-side candidate
// (cR), maximizing the total contribution subject to exactly `rights`
// succeeding picks — which pins the matchset's median at the anchor.
//
// useRight[j] reports the winning side per term (false for the anchor
// term itself). ok is false when no assignment meets the constraint
// (e.g. a term has matches on only one side and the counts cannot
// work out). Cost O(|Q|·rights).
func solveSides(anchorTerm, rights int, cL, cR []float64, hasL, hasR []bool) (total float64, useRight []bool, ok bool) {
	q := len(cL)
	dp := make([]float64, rights+1)
	ndp := make([]float64, rights+1)
	choice := make([][]bool, q)
	for j := range choice {
		choice[j] = make([]bool, rights+1)
	}
	for r := range dp {
		dp[r] = math.Inf(-1)
	}
	dp[0] = 0
	for j := 0; j < q; j++ {
		if j == anchorTerm {
			continue
		}
		for r := range ndp {
			ndp[r] = math.Inf(-1)
		}
		for r, v := range dp {
			if math.IsInf(v, -1) {
				continue
			}
			if hasL[j] && v+cL[j] > ndp[r] {
				ndp[r] = v + cL[j]
				choice[j][r] = false
			}
			if hasR[j] && r+1 <= rights && v+cR[j] > ndp[r+1] {
				ndp[r+1] = v + cR[j]
				choice[j][r+1] = true
			}
		}
		dp, ndp = ndp, dp
	}
	if math.IsInf(dp[rights], -1) {
		return 0, nil, false
	}
	useRight = make([]bool, q)
	r := rights
	for j := q - 1; j >= 0; j-- {
		if j == anchorTerm {
			continue
		}
		if choice[j][r] {
			useRight[j] = true
			r--
		}
	}
	return dp[rights], useRight, true
}
