// Package bylocation implements the paper's best-matchset-by-location
// problem (Section VII, Definition 10): instead of one overall best
// matchset per document, return for every possible anchor location a
// best matchset anchored there. Information extraction applications
// filter the per-anchor results by a score threshold to extract all
// good matchsets.
//
// The anchor of a matchset (Definition 9) is its largest match
// location under WIN, its median match location under MED, and the
// score-maximizing reference location under MAX.
//
// Complexities: WIN O(2^|Q|·Σ|Lj|) and streaming (results emitted as
// soon as their anchor location is fully processed); MED
// O(|Q|²·Σ|Lj|) via a per-anchor side-assignment dynamic program; MAX
// O(|Q|·Σ|Lj|) over all match locations. The paper notes MED and MAX
// are fundamentally not streamable (a far-future match can join a
// matchset anchored now), and indeed both make two passes here.
package bylocation

import "bestjoin/internal/match"

// Anchored is a best matchset for one anchor location.
type Anchored struct {
	Anchor int
	Set    match.Set
	Score  float64
}
