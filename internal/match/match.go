// Package match defines the basic vocabulary of the weighted proximity
// best-join problem: matches, match lists, queries, and matchsets
// (Definition 1 of the paper).
//
// A match is one occurrence of a query term within a document; it
// carries the token location of the occurrence and a score measuring
// how well the occurrence matches the term. Match lists are sorted by
// location. A matchset picks exactly one match per query term; it is
// the unit that the scoring functions of packages scorefn and join
// evaluate.
package match

import (
	"fmt"
	"sort"
	"strings"
)

// Match is a single occurrence of a query term in a document.
type Match struct {
	// Loc is the token position of the occurrence within the document.
	Loc int
	// Score measures the quality of the occurrence as a match for its
	// query term. Higher is better. The paper draws scores from (0, 1]
	// but the algorithms only require the monotonicity properties of
	// the scoring functions, so any real score is accepted.
	Score float64
}

// List is a match list for one query term: every match of the term in
// a document, sorted by Loc in increasing order.
type List []Match

// Sorted reports whether the list is sorted by location in
// non-decreasing order, which all join algorithms require.
func (l List) Sorted() bool {
	return sort.SliceIsSorted(l, func(i, j int) bool { return l[i].Loc < l[j].Loc })
}

// Sort sorts the list by location (stably, so equal-location matches
// keep their relative order).
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool { return l[i].Loc < l[j].Loc })
}

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// Lists is the full input to a best-join: one match list per query
// term, indexed by term position in the query.
type Lists []List

// TotalSize returns the total number of matches across all lists,
// i.e. Σ|Lj|, the quantity the paper's complexity bounds are stated in.
func (ls Lists) TotalSize() int {
	n := 0
	for _, l := range ls {
		n += len(l)
	}
	return n
}

// Clone returns a deep copy of all lists.
func (ls Lists) Clone() Lists {
	out := make(Lists, len(ls))
	for i, l := range ls {
		out[i] = l.Clone()
	}
	return out
}

// Validate checks that the instance is well formed: at least one list,
// and every list sorted by location.
func (ls Lists) Validate() error {
	if len(ls) == 0 {
		return fmt.Errorf("match: no match lists")
	}
	for j, l := range ls {
		if !l.Sorted() {
			return fmt.Errorf("match: list %d is not sorted by location", j)
		}
	}
	return nil
}

// Complete reports whether every list has at least one match, which is
// necessary for any matchset to exist.
func (ls Lists) Complete() bool {
	for _, l := range ls {
		if len(l) == 0 {
			return false
		}
	}
	return len(ls) > 0
}

// Set is a matchset: one match per query term, indexed like Lists.
// Set[j] is the match chosen for query term j.
type Set []Match

// Clone returns a copy of the matchset.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Window returns the length of the smallest window enclosing all
// matches in the set: max location minus min location.
func (s Set) Window() int {
	return s.MaxLoc() - s.MinLoc()
}

// MinLoc returns the smallest match location in the set.
func (s Set) MinLoc() int {
	min := s[0].Loc
	for _, m := range s[1:] {
		if m.Loc < min {
			min = m.Loc
		}
	}
	return min
}

// MaxLoc returns the largest match location in the set.
func (s Set) MaxLoc() int {
	max := s[0].Loc
	for _, m := range s[1:] {
		if m.Loc > max {
			max = m.Loc
		}
	}
	return max
}

// Median returns the median location of the matchset per the paper's
// Definition 5 (footnote 2): the ⌊(n+1)/2⌋-th ranked element when
// elements are ranked by value with the 1st ranked element having the
// greatest value. For n=3 this is the middle location; for n=4 it is
// the second-greatest location.
func (s Set) Median() int {
	locs := make([]int, len(s))
	for i, m := range s {
		locs[i] = m.Loc
	}
	sort.Sort(sort.Reverse(sort.IntSlice(locs)))
	return locs[(len(locs)+1)/2-1]
}

// MedianRank returns the 1-based rank (from the greatest location) of
// the median element for a matchset of size n: ⌊(n+1)/2⌋.
func MedianRank(n int) int { return (n + 1) / 2 }

// Valid reports whether the matchset contains no duplicate matches in
// the sense of Section VI: no two entries share the same location
// (the same underlying token cannot match two query terms at once).
func (s Set) Valid() bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if s[i].Loc == s[j].Loc {
				return false
			}
		}
	}
	return true
}

// String renders the matchset as "(loc:score, ...)" for debugging.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, m := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.3f", m.Loc, m.Score)
	}
	b.WriteByte(')')
	return b.String()
}

// Ref identifies a match by its term index and position within that
// term's list. It is used where identity (rather than value) of a
// match matters, e.g. by the duplicate-avoidance wrapper.
type Ref struct {
	Term int // query term index
	Pos  int // index within Lists[Term]
}
