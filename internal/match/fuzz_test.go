package match

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecode ensures the binary codec never panics and never silently
// accepts garbage that re-encodes differently.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(Lists{}))
	f.Add(Encode(Lists{{{Loc: 1, Score: 0.5}, {Loc: 4, Score: 1}}}))
	f.Add(Encode(Lists{{{Loc: -3, Score: 0.1}}, {}, {{Loc: 0, Score: 0.9}}}))
	// A hand-crafted buffer whose second location delta would overflow
	// the int accumulator — the regression input for the bounded-delta
	// fix (see TestDecodeRejectsOverflowingDeltas).
	overflow := binary.AppendUvarint(nil, 1)
	overflow = binary.AppendUvarint(overflow, 2)
	overflow = binary.AppendVarint(overflow, 0)
	overflow = append(overflow, make([]byte, 8)...)
	overflow = binary.AppendUvarint(overflow, math.MaxUint64)
	f.Add(append(overflow, make([]byte, 8)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		lists, err := Decode(data)
		if err != nil {
			return
		}
		// Every accepted instance must satisfy the sorted-list contract
		// the join algorithms assume — the invariant the overflow bug
		// used to break.
		for j, l := range lists {
			if !l.Sorted() {
				t.Fatalf("decoded list %d is not location-sorted", j)
			}
		}
		if len(lists) > 0 {
			if err := lists.Validate(); err != nil {
				t.Fatalf("decoded instance fails Validate: %v", err)
			}
		}
		// Anything that decodes must round-trip stably.
		again, err := Decode(Encode(lists))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(lists) {
			t.Fatalf("round trip changed list count")
		}
		for j := range lists {
			if len(again[j]) != len(lists[j]) {
				t.Fatalf("round trip changed list %d length", j)
			}
			for i := range lists[j] {
				a, b := lists[j][i], again[j][i]
				// NaN scores are legal bit patterns; compare bitwise
				// via !=(self) checks.
				if a.Loc != b.Loc || (a.Score != b.Score && (a.Score == a.Score || b.Score == b.Score)) {
					t.Fatalf("round trip changed match %d/%d: %v vs %v", j, i, a, b)
				}
			}
		}
	})
}
