package match

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripBasic(t *testing.T) {
	cases := []Lists{
		{},
		{{}},
		{{{Loc: 0, Score: 0.5}}},
		{{{Loc: -7, Score: 0.1}, {Loc: 0, Score: 1}}, {}, {{Loc: 3, Score: 0.25}}},
	}
	for _, lists := range cases {
		got, err := Decode(Encode(lists))
		if err != nil {
			t.Fatalf("round trip of %v: %v", lists, err)
		}
		assertListsEqual(t, lists, got)
	}
}

func assertListsEqual(t *testing.T, want, got Lists) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("lists: want %v, got %v", want, got)
	}
	for j := range want {
		if len(want[j]) != len(got[j]) {
			t.Fatalf("list %d: want %v, got %v", j, want[j], got[j])
		}
		for i := range want[j] {
			if want[j][i] != got[j][i] {
				t.Fatalf("list %d match %d: want %v, got %v", j, i, want[j][i], got[j][i])
			}
		}
	}
}

// Property: Decode(Encode(x)) == x for any sorted instance.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lists := make(Lists, rng.Intn(5))
		for j := range lists {
			n := rng.Intn(6)
			l := make(List, n)
			loc := rng.Intn(50) - 25
			for i := range l {
				l[i] = Match{Loc: loc, Score: rng.Float64()}
				loc += rng.Intn(20)
			}
			lists[j] = l
		}
		got, err := Decode(Encode(lists))
		if err != nil || len(got) != len(lists) {
			return false
		}
		for j := range lists {
			if len(got[j]) != len(lists[j]) {
				return false
			}
			for i := range lists[j] {
				if got[j][i] != lists[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCodecCorrupt(t *testing.T) {
	valid := Encode(Lists{{{Loc: 1, Score: 0.5}, {Loc: 9, Score: 0.25}}})
	for cut := 1; cut < len(valid); cut++ {
		if _, err := Decode(valid[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, valid...), 0xff)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}
