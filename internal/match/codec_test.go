package match

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripBasic(t *testing.T) {
	cases := []Lists{
		{},
		{{}},
		{{{Loc: 0, Score: 0.5}}},
		{{{Loc: -7, Score: 0.1}, {Loc: 0, Score: 1}}, {}, {{Loc: 3, Score: 0.25}}},
	}
	for _, lists := range cases {
		got, err := Decode(Encode(lists))
		if err != nil {
			t.Fatalf("round trip of %v: %v", lists, err)
		}
		assertListsEqual(t, lists, got)
	}
}

func assertListsEqual(t *testing.T, want, got Lists) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("lists: want %v, got %v", want, got)
	}
	for j := range want {
		if len(want[j]) != len(got[j]) {
			t.Fatalf("list %d: want %v, got %v", j, want[j], got[j])
		}
		for i := range want[j] {
			if want[j][i] != got[j][i] {
				t.Fatalf("list %d match %d: want %v, got %v", j, i, want[j][i], got[j][i])
			}
		}
	}
}

// Property: Decode(Encode(x)) == x for any sorted instance.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lists := make(Lists, rng.Intn(5))
		for j := range lists {
			n := rng.Intn(6)
			l := make(List, n)
			loc := rng.Intn(50) - 25
			for i := range l {
				l[i] = Match{Loc: loc, Score: rng.Float64()}
				loc += rng.Intn(20)
			}
			lists[j] = l
		}
		got, err := Decode(Encode(lists))
		if err != nil || len(got) != len(lists) {
			return false
		}
		for j := range lists {
			if len(got[j]) != len(lists[j]) {
				return false
			}
			for i := range lists[j] {
				if got[j][i] != lists[j][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCodecCorrupt(t *testing.T) {
	valid := Encode(Lists{{{Loc: 1, Score: 0.5}, {Loc: 9, Score: 0.25}}})
	for cut := 1; cut < len(valid); cut++ {
		if _, err := Decode(valid[:cut]); err == nil {
			t.Errorf("truncation at %d decoded without error", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, valid...), 0xff)); err == nil {
		t.Error("trailing byte decoded without error")
	}
}

// TestDecodeRejectsOverflowingDeltas locks in the fix for the uvarint
// accumulation overflow: a huge location delta used to wrap `loc`
// negative, producing an out-of-order list that silently violated the
// sorted precondition of every join algorithm. Such buffers must now
// fail to decode.
func TestDecodeRejectsOverflowingDeltas(t *testing.T) {
	score := make([]byte, 8)
	// One list of two matches: first location 0, then a hostile delta.
	craft := func(delta uint64) []byte {
		b := binary.AppendUvarint(nil, 1) // #lists
		b = binary.AppendUvarint(b, 2)    // #matches
		b = binary.AppendVarint(b, 0)     // first location
		b = append(b, score...)
		b = binary.AppendUvarint(b, delta)
		return append(b, score...)
	}
	for _, delta := range []uint64{
		math.MaxUint64,            // wraps int(delta) negative
		1 << 63,                   // exactly MinInt64 after conversion
		2*MaxLocation + 1,         // cannot yield an in-range location
		uint64(MaxLocation+1) * 2, // accumulates past MaxLocation
	} {
		lists, err := Decode(craft(delta))
		if err == nil {
			t.Errorf("delta %d decoded without error: %v", delta, lists)
			continue
		}
		if lists != nil {
			t.Errorf("delta %d returned lists alongside error", delta)
		}
	}
	// A hostile first location (zigzag-encoded, so it can be negative)
	// must be bounded too.
	for _, first := range []int64{MaxLocation + 1, -(MaxLocation + 1), math.MaxInt64, math.MinInt64} {
		b := binary.AppendUvarint(nil, 1)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendVarint(b, first)
		b = append(b, score...)
		if _, err := Decode(b); err == nil {
			t.Errorf("first location %d decoded without error", first)
		}
	}
	// The maximum legal location still round-trips.
	ok := Encode(Lists{{{Loc: MaxLocation, Score: 1}}})
	if _, err := Decode(ok); err != nil {
		t.Errorf("location at bound failed to decode: %v", err)
	}
}
