package match

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianDefinition(t *testing.T) {
	// Footnote 2: median is the ⌊(n+1)/2⌋-th ranked element with the
	// 1st ranked element having the greatest value.
	tests := []struct {
		name string
		locs []int
		want int
	}{
		{"single", []int{7}, 7},
		{"pair takes greater", []int{3, 9}, 9},
		{"triple takes middle", []int{1, 5, 9}, 5},
		{"quad takes second greatest", []int{1, 5, 9, 20}, 9},
		{"quintuple takes middle", []int{1, 2, 3, 4, 5}, 3},
		{"unsorted input", []int{9, 1, 5}, 5},
		{"duplicates", []int{4, 4, 4, 10}, 4},
		{"all equal", []int{6, 6, 6}, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := make(Set, len(tt.locs))
			for i, l := range tt.locs {
				s[i] = Match{Loc: l, Score: 1}
			}
			if got := s.Median(); got != tt.want {
				t.Errorf("Median(%v) = %d, want %d", tt.locs, got, tt.want)
			}
		})
	}
}

func TestMedianRank(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 6: 3, 7: 4}
	for n, r := range want {
		if got := MedianRank(n); got != r {
			t.Errorf("MedianRank(%d) = %d, want %d", n, got, r)
		}
	}
}

func TestMedianIsAMemberLocation(t *testing.T) {
	// Property: the median is always one of the set's locations.
	f := func(locs []int16) bool {
		if len(locs) == 0 {
			return true
		}
		s := make(Set, len(locs))
		present := map[int]bool{}
		for i, l := range locs {
			s[i] = Match{Loc: int(l)}
			present[int(l)] = true
		}
		return present[s.Median()]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowMinMax(t *testing.T) {
	s := Set{{Loc: 12}, {Loc: 3}, {Loc: 7}}
	if got := s.MinLoc(); got != 3 {
		t.Errorf("MinLoc = %d, want 3", got)
	}
	if got := s.MaxLoc(); got != 12 {
		t.Errorf("MaxLoc = %d, want 12", got)
	}
	if got := s.Window(); got != 9 {
		t.Errorf("Window = %d, want 9", got)
	}
	one := Set{{Loc: 5}}
	if got := one.Window(); got != 0 {
		t.Errorf("single-match Window = %d, want 0", got)
	}
}

func TestSetValid(t *testing.T) {
	if (Set{{Loc: 1}, {Loc: 2}, {Loc: 3}}).Valid() == false {
		t.Error("distinct locations should be valid")
	}
	if (Set{{Loc: 1}, {Loc: 2}, {Loc: 1}}).Valid() {
		t.Error("duplicate location should be invalid")
	}
}

func TestListSortAndSorted(t *testing.T) {
	l := List{{Loc: 5}, {Loc: 1}, {Loc: 3}}
	if l.Sorted() {
		t.Error("unsorted list reported sorted")
	}
	l.Sort()
	if !l.Sorted() {
		t.Error("list not sorted after Sort")
	}
	if l[0].Loc != 1 || l[2].Loc != 5 {
		t.Errorf("unexpected order: %v", l)
	}
}

func TestListsValidate(t *testing.T) {
	if err := (Lists{}).Validate(); err == nil {
		t.Error("empty Lists should not validate")
	}
	bad := Lists{{{Loc: 4}, {Loc: 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted list should not validate")
	}
	good := Lists{{{Loc: 2}, {Loc: 4}}, {}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid lists rejected: %v", err)
	}
}

func TestListsComplete(t *testing.T) {
	if (Lists{{{Loc: 1}}, {}}).Complete() {
		t.Error("Lists with an empty list reported complete")
	}
	if !(Lists{{{Loc: 1}}, {{Loc: 2}}}).Complete() {
		t.Error("complete lists reported incomplete")
	}
	if (Lists{}).Complete() {
		t.Error("zero lists reported complete")
	}
}

func TestTotalSize(t *testing.T) {
	ls := Lists{{{Loc: 1}, {Loc: 2}}, {}, {{Loc: 3}}}
	if got := ls.TotalSize(); got != 3 {
		t.Errorf("TotalSize = %d, want 3", got)
	}
}

func TestMergeOrder(t *testing.T) {
	lists := Lists{
		{{Loc: 1}, {Loc: 5}, {Loc: 9}},
		{{Loc: 2}, {Loc: 5}},
		{{Loc: 0}},
	}
	var got []Event
	Merge(lists, func(ev Event) bool {
		got = append(got, ev)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("Merge visited %d events, want 6", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		if got[i].M.Loc != got[j].M.Loc {
			return got[i].M.Loc < got[j].M.Loc
		}
		return got[i].Term < got[j].Term
	}) {
		t.Errorf("Merge order wrong: %+v", got)
	}
	// Tie at location 5 must order term 0 before term 1.
	if got[3].M.Loc != 5 || got[3].Term != 0 || got[4].Term != 1 {
		t.Errorf("tie-break order wrong: %+v", got[3:5])
	}
}

func TestMergeEarlyStop(t *testing.T) {
	lists := Lists{{{Loc: 1}, {Loc: 2}, {Loc: 3}}}
	n := 0
	Merge(lists, func(Event) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("Merge visited %d events after early stop, want 2", n)
	}
}

func TestMergedMatchesMergeAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lists := make(Lists, 3)
	for j := range lists {
		for i := 0; i < 10; i++ {
			lists[j] = append(lists[j], Match{Loc: rng.Intn(100), Score: rng.Float64()})
		}
		lists[j].Sort()
	}
	evs := Merged(lists)
	if len(evs) != lists.TotalSize() {
		t.Fatalf("Merged returned %d events, want %d", len(evs), lists.TotalSize())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].M.Loc < evs[i-1].M.Loc {
			t.Fatalf("Merged not location-ordered at %d: %+v then %+v", i, evs[i-1], evs[i])
		}
	}
	// Every event must reference the match it claims.
	for _, ev := range evs {
		if lists[ev.Term][ev.Pos] != ev.M {
			t.Fatalf("event %+v does not match lists[%d][%d]", ev, ev.Term, ev.Pos)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	l := List{{Loc: 1, Score: 0.5}}
	c := l.Clone()
	c[0].Loc = 99
	if l[0].Loc != 1 {
		t.Error("List.Clone shares backing storage")
	}
	ls := Lists{{{Loc: 1}}}
	cs := ls.Clone()
	cs[0][0].Loc = 99
	if ls[0][0].Loc != 1 {
		t.Error("Lists.Clone shares backing storage")
	}
	s := Set{{Loc: 1}}
	ss := s.Clone()
	ss[0].Loc = 99
	if s[0].Loc != 1 {
		t.Error("Set.Clone shares backing storage")
	}
}

func TestSetString(t *testing.T) {
	s := Set{{Loc: 1, Score: 0.5}, {Loc: 2, Score: 1}}
	if got := s.String(); got != "(1:0.500, 2:1.000)" {
		t.Errorf("String = %q", got)
	}
}
