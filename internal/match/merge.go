package match

// Event is one step of a merged, location-ordered walk over all match
// lists: the match itself plus which term and list position it came
// from. The join algorithms of the paper all process matches "one at a
// time in the increasing order of their locations"; Merge provides
// that order.
type Event struct {
	Term int   // query term index of the match
	Pos  int   // index of the match within its list
	M    Match // the match
}

// Merger is a reusable k-way merge over match lists. It owns the
// cursor slice that the package-level Merge allocates per call, so a
// long-lived worker (a join kernel evaluating one document after
// another) can walk many instances without per-walk allocation. Start
// loads an instance and rewinds the cursors; Next then yields events
// one at a time, which lets callers drive the walk from a plain loop
// instead of a closure. A Merger is not safe for concurrent use.
type Merger struct {
	cursors []int
}

// Start prepares the merger to walk lists from the beginning, growing
// the cursor slice only when the instance has more terms than any
// previous one.
func (mg *Merger) Start(lists Lists) {
	if cap(mg.cursors) < len(lists) {
		mg.cursors = make([]int, len(lists))
		return
	}
	mg.cursors = mg.cursors[:len(lists)]
	for j := range mg.cursors {
		mg.cursors[j] = 0
	}
}

// Next returns the next match in non-decreasing location order (ties
// broken by term index, then list position, so the order is
// deterministic); ok is false when the walk is exhausted.
func (mg *Merger) Next(lists Lists) (ev Event, ok bool) {
	best := -1
	for j, l := range lists {
		if mg.cursors[j] >= len(l) {
			continue
		}
		if best < 0 || l[mg.cursors[j]].Loc < lists[best][mg.cursors[best]].Loc {
			best = j
		}
	}
	if best < 0 {
		return Event{}, false
	}
	ev = Event{Term: best, Pos: mg.cursors[best], M: lists[best][mg.cursors[best]]}
	mg.cursors[best]++
	return ev, true
}

// Merge is the callback form of the walk: Start, then Next until the
// lists are exhausted or fn returns false.
func (mg *Merger) Merge(lists Lists, fn func(Event) bool) {
	mg.Start(lists)
	for {
		ev, ok := mg.Next(lists)
		if !ok || !fn(ev) {
			return
		}
	}
}

// Merge walks all lists in parallel and calls fn for every match in
// non-decreasing location order. Ties are broken by term index, then
// by list position, so the order is deterministic. If fn returns
// false, the walk stops early.
//
// The walk is the k-way merge underlying Algorithms 1 and 2: it costs
// O(|Q|·Σ|Lj|) overall, which never dominates the join algorithms'
// own per-match work. Callers on an allocation-sensitive path should
// hold a Merger instead, which reuses its cursors across walks.
func Merge(lists Lists, fn func(Event) bool) {
	var mg Merger
	mg.Merge(lists, fn)
}

// Merged returns all matches of all lists as a single location-ordered
// slice of events. It is a convenience wrapper around Merge for
// callers that want random access to the merged order.
func Merged(lists Lists) []Event {
	out := make([]Event, 0, lists.TotalSize())
	Merge(lists, func(ev Event) bool {
		out = append(out, ev)
		return true
	})
	return out
}
