package match

// Event is one step of a merged, location-ordered walk over all match
// lists: the match itself plus which term and list position it came
// from. The join algorithms of the paper all process matches "one at a
// time in the increasing order of their locations"; Merge provides
// that order.
type Event struct {
	Term int   // query term index of the match
	Pos  int   // index of the match within its list
	M    Match // the match
}

// Merge walks all lists in parallel and calls fn for every match in
// non-decreasing location order. Ties are broken by term index, then
// by list position, so the order is deterministic. If fn returns
// false, the walk stops early.
//
// The walk is the k-way merge underlying Algorithms 1 and 2: it costs
// O(|Q|·Σ|Lj|) overall, which never dominates the join algorithms'
// own per-match work.
func Merge(lists Lists, fn func(Event) bool) {
	cursors := make([]int, len(lists))
	for {
		best := -1
		for j, l := range lists {
			if cursors[j] >= len(l) {
				continue
			}
			if best < 0 || l[cursors[j]].Loc < lists[best][cursors[best]].Loc {
				best = j
			}
		}
		if best < 0 {
			return
		}
		ev := Event{Term: best, Pos: cursors[best], M: lists[best][cursors[best]]}
		cursors[best]++
		if !fn(ev) {
			return
		}
	}
}

// Merged returns all matches of all lists as a single location-ordered
// slice of events. It is a convenience wrapper around Merge for
// callers that want random access to the merged order.
func Merged(lists Lists) []Event {
	out := make([]Event, 0, lists.TotalSize())
	Merge(lists, func(ev Event) bool {
		out = append(out, ev)
		return true
	})
	return out
}
