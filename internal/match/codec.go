package match

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for join instances. Systems that precompute match lists
// (e.g. per document per concept) want a compact cache representation;
// this codec delta-encodes locations as varints (lists are
// location-sorted, so deltas are small and non-negative except the
// first, which is zigzag-encoded to permit negative locations) and
// stores scores as raw float64 bits.
//
// Layout: varint(#lists), then per list varint(#matches),
// zigzag-varint(first location), varint(location deltas)..., with each
// location followed by its 8-byte little-endian score.

// Encode packs the lists. Lists must be location-sorted (Validate).
func Encode(lists Lists) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(lists)))
	for _, l := range lists {
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		prev := 0
		for i, m := range l {
			if i == 0 {
				buf = binary.AppendVarint(buf, int64(m.Loc))
			} else {
				buf = binary.AppendUvarint(buf, uint64(m.Loc-prev))
			}
			prev = m.Loc
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Score))
		}
	}
	return buf
}

// MaxLocation bounds the token locations Decode accepts, on both
// sides of zero. Locations index tokens within one document, so even a
// pathological corpus stays far below 2^40; anything larger in an
// encoded buffer is corrupt or adversarial. The bound also keeps the
// delta accumulator far from int overflow: without it, a huge uvarint
// delta wraps `loc` negative and silently violates the sorted-list
// precondition every join algorithm relies on.
const MaxLocation = 1 << 40

// Decode unpacks an Encode buffer. It rejects buffers whose locations
// fall outside [-MaxLocation, MaxLocation] or whose lists are not
// location-sorted, so untrusted bytes can never produce an instance
// that violates the Lists.Validate contract.
func Decode(b []byte) (Lists, error) {
	nLists, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("match: corrupt header")
	}
	b = b[n:]
	// Each list costs at least one header byte, so a count exceeding
	// the remaining buffer is corrupt; rejecting it here keeps
	// attacker-controlled counts from driving huge allocations.
	if nLists > uint64(len(b))+1 {
		return nil, fmt.Errorf("match: list count %d exceeds buffer", nLists)
	}
	lists := make(Lists, nLists)
	for j := range lists {
		count, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("match: corrupt list %d header", j)
		}
		b = b[n:]
		// Each match costs at least 9 bytes (1 location byte + 8 score
		// bytes).
		if count > uint64(len(b)/9)+1 {
			return nil, fmt.Errorf("match: match count %d exceeds buffer", count)
		}
		l := make(List, count)
		loc := 0
		for i := range l {
			if i == 0 {
				first, n := binary.Varint(b)
				if n <= 0 {
					return nil, fmt.Errorf("match: corrupt first location in list %d", j)
				}
				b = b[n:]
				if first < -MaxLocation || first > MaxLocation {
					return nil, fmt.Errorf("match: first location %d in list %d outside ±%d", first, j, int64(MaxLocation))
				}
				loc = int(first)
			} else {
				delta, n := binary.Uvarint(b)
				if n <= 0 {
					return nil, fmt.Errorf("match: corrupt location delta in list %d", j)
				}
				b = b[n:]
				// Bound the delta before converting: a uvarint above
				// MaxInt64 would wrap int(delta) negative, and anything
				// above 2·MaxLocation cannot yield an in-range location
				// from an in-range predecessor.
				if delta > 2*MaxLocation {
					return nil, fmt.Errorf("match: location delta %d in list %d exceeds %d", delta, j, uint64(2*MaxLocation))
				}
				loc += int(delta)
				if loc > MaxLocation {
					return nil, fmt.Errorf("match: location %d in list %d exceeds %d", loc, j, int64(MaxLocation))
				}
			}
			if len(b) < 8 {
				return nil, fmt.Errorf("match: truncated score in list %d", j)
			}
			l[i] = Match{Loc: loc, Score: math.Float64frombits(binary.LittleEndian.Uint64(b))}
			b = b[8:]
		}
		lists[j] = l
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes", len(b))
	}
	// The bounds above make out-of-order lists impossible (deltas are
	// non-negative and cannot overflow), but decoded bytes feed the
	// join algorithms directly, so re-check the sorted-list contract
	// rather than trust the arithmetic. Validate also rejects
	// zero-list instances, which Encode can legitimately produce, so
	// only run it when there are lists to check.
	if len(lists) > 0 {
		if err := lists.Validate(); err != nil {
			return nil, fmt.Errorf("match: decoded instance invalid: %v", err)
		}
	}
	return lists, nil
}
