//go:build faultinject

package shard

// Chaos harness for the scatter-gather tier, compiled only with
// -tags faultinject (`make chaos` runs it under -race). Kernel joins
// panic at random on the child engines mid-scatter, and every outcome
// is held to the fault-tolerance contract: no coordinator query ever
// returns an error, a non-degraded answer is bitwise identical to the
// fault-free baseline, and a degraded answer is a sound subset of the
// healthy full ranking — documents may be dropped by the panicking
// shard, never mis-scored — still in rank order after the merge.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"bestjoin/internal/engine"
	"bestjoin/internal/faultinject"
	"bestjoin/internal/index"
	"bestjoin/internal/scorefn"
)

func TestShardChaosKernelPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	compact := buildCompact(t, shardCorpus(rng))
	jn := engine.MEDJoiner(scorefn.ExpMED{Alpha: 0.1})
	q := engine.Query{
		Concepts: []index.Concept{
			{"amber": 1.0, "basalt": 0.8},
			{"cedar": 0.9},
		},
		Join: jn,
		K:    8,
	}

	// Fault-free references from a single engine over the unsplit
	// index: the top-k baseline and the full healthy ranking a
	// degraded answer may soundly shrink to.
	healthy := engine.New(compact, engine.Config{Workers: 2})
	baseline, err := healthy.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	fullQ := q
	fullQ.K = compact.Docs()
	full, err := healthy.Search(context.Background(), fullQ)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			coord, err := New(compact, Config{Shards: shards, Engine: engine.Config{Workers: 2}})
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				faultinject.Activate(faultinject.Config{
					Seed:  seed,
					Rates: map[faultinject.Site]float64{faultinject.KernelJoin: 0.3},
				})
				for round := 0; round < 3; round++ {
					res, err := coord.Search(context.Background(), q)
					if err != nil {
						t.Fatalf("seed %d round %d: injected panics must never error: %v", seed, round, err)
					}
					if res.Partial {
						t.Fatalf("seed %d round %d: no deadline set, yet Partial: %+v", seed, round, res)
					}
					if res.Degraded {
						assertChaosSubset(t, seed, round, res.Docs, full.Docs)
					} else {
						if !docsEqual(res.Docs, baseline.Docs) {
							t.Fatalf("seed %d round %d: non-degraded answer differs from baseline:\ngot  %+v\nwant %+v",
								seed, round, res.Docs, baseline.Docs)
						}
					}
				}
				faultinject.Deactivate()
			}

			// Injection off: the fleet must be fully healthy again.
			res, err := coord.Search(context.Background(), q)
			if err != nil || res.Degraded || res.Partial {
				t.Fatalf("fleet unhealthy after chaos: %v %+v", err, res)
			}
			if !docsEqual(res.Docs, baseline.Docs) {
				t.Fatalf("post-chaos answer differs from baseline: %+v", res.Docs)
			}
			st := coord.Stats()
			if st.JoinPanics == 0 {
				t.Fatal("no kernel panic reached any shard — rates or seeds too timid")
			}
			if st.DegradedResults == 0 {
				t.Fatal("no shard query counted as degraded despite recovered panics")
			}
		})
	}
}

// assertChaosSubset checks a degraded merged answer against the
// healthy full ranking: every returned document carries its exact
// healthy score and matchset, and the merge kept rank order.
func assertChaosSubset(t *testing.T, seed int64, round int, got, full []engine.DocResult) {
	t.Helper()
	for i, d := range got {
		found := false
		for _, w := range full {
			if w.Doc != d.Doc {
				continue
			}
			if w.Score != d.Score || len(w.Set) != len(d.Set) {
				t.Fatalf("seed %d round %d: degraded doc %d mis-scored: got %v/%v, healthy %v/%v",
					seed, round, d.Doc, d.Score, d.Set, w.Score, w.Set)
			}
			for j := range d.Set {
				if d.Set[j] != w.Set[j] {
					t.Fatalf("seed %d round %d: degraded doc %d matchset %v, healthy %v",
						seed, round, d.Doc, d.Set, w.Set)
				}
			}
			found = true
			break
		}
		if !found {
			t.Fatalf("seed %d round %d: degraded doc %d score %v not in healthy ranking",
				seed, round, d.Doc, d.Score)
		}
		if i > 0 {
			prev := got[i-1]
			if d.Score > prev.Score || (d.Score == prev.Score && d.Doc < prev.Doc) {
				t.Fatalf("seed %d round %d: degraded merge out of rank order at %d: %+v", seed, round, i, got)
			}
		}
	}
}
