package shard

// Quorum degraded mode and health-gated rolling reloads: the
// availability half of the coordinator. These tests drive the Child
// seam directly — stub children that fail searches, fail swaps, or
// come back unhealthy — so the quorum accounting, the sound-subset
// property of partial answers, the roll abort paths, and the
// mixed-epoch health rule are all pinned without a network.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/scorefn"
)

// failChild is a Child whose every operation fails — a crashed shard
// process as the coordinator sees it.
type failChild struct{ err error }

func (f failChild) Pin() SearchFunc {
	return func(context.Context, engine.Query) (*engine.Result, error) { return nil, f.err }
}
func (f failChild) SwapIndex(*index.Compact) error { return f.err }
func (f failChild) Stats() engine.Stats            { return engine.Stats{} }
func (f failChild) Health() engine.Health          { return engine.Health{} }

// localChildren partitions the index and wraps each piece as a local
// Child, mirroring what New does internally.
func localChildren(t *testing.T, idx *index.Compact, n int, cfg engine.Config) []Child {
	t.Helper()
	parts, err := idx.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	children := make([]Child, n)
	for i, p := range parts {
		children[i] = localChild{eng: engine.New(p, cfg)}
	}
	return children
}

// assertSoundSubset checks the degraded-answer contract: every
// returned document appears in the full healthy ranking with the
// identical score and matchset, and the returned order is the full
// ranking's order restricted to the returned documents.
func assertSoundSubset(t *testing.T, label string, got, full *engine.Result) {
	t.Helper()
	rank := map[int]int{}
	for i, d := range full.Docs {
		rank[d.Doc] = i
	}
	prev := -1
	for _, d := range got.Docs {
		i, ok := rank[d.Doc]
		if !ok {
			t.Fatalf("%s: degraded answer contains doc %d absent from the healthy ranking", label, d.Doc)
		}
		if i <= prev {
			t.Fatalf("%s: degraded answer breaks the healthy ranking order at doc %d", label, d.Doc)
		}
		prev = i
		f := full.Docs[i]
		if d.Score != f.Score {
			t.Fatalf("%s: doc %d score %v, healthy ranking has %v", label, d.Doc, d.Score, f.Score)
		}
		if !docsEqual([]engine.DocResult{d}, []engine.DocResult{f}) {
			t.Fatalf("%s: doc %d matchset differs from the healthy ranking's", label, d.Doc)
		}
	}
}

// TestQuorumDegradedAnswer loses one shard of three and asserts the
// quorum-2 coordinator still answers: Degraded set, FailedShards
// counted, every returned document carrying its true score in the
// healthy order — and the strict (quorum = all) coordinator fails the
// same query outright.
func TestQuorumDegradedAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := shardCorpus(rng)
	compact := buildCompact(t, docs)
	full := engine.New(compact, engine.Config{Workers: 2})
	jn := engine.MEDJoiner(scorefn.ExpMED{Alpha: 0.05})

	down := errors.New("simulated shard crash")
	for round := 0; round < 5; round++ {
		concepts := shardConcepts(rng)
		// Ground truth: the whole corpus, ranked deep enough to
		// contain any subset answer.
		fullRes, err := full.Search(context.Background(),
			engine.Query{Concepts: concepts, Join: jn, K: len(docs)})
		if err != nil {
			t.Fatal(err)
		}

		children := localChildren(t, compact, 3, engine.Config{Workers: 1})
		children[round%3] = failChild{err: down}

		strict, err := NewFromChildren(children, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := strict.Search(context.Background(),
			engine.Query{Concepts: concepts, Join: jn, K: 5}); !errors.Is(err, down) {
			t.Fatalf("strict coordinator with a dead shard: err %v, want %v", err, down)
		}

		c, err := NewFromChildren(children, Config{Quorum: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Search(context.Background(),
			engine.Query{Concepts: concepts, Join: jn, K: 5})
		if err != nil {
			t.Fatalf("round %d: quorum-2 coordinator failed: %v", round, err)
		}
		if !res.Degraded {
			t.Fatalf("round %d: partial-fleet answer not flagged Degraded", round)
		}
		if res.FailedShards != 1 {
			t.Fatalf("round %d: FailedShards = %d, want 1", round, res.FailedShards)
		}
		assertSoundSubset(t, fmt.Sprintf("round %d", round), res, fullRes)

		st := c.Stats()
		if st.QuorumDegraded != 1 {
			t.Fatalf("round %d: Stats().QuorumDegraded = %d, want 1", round, st.QuorumDegraded)
		}
		if st.ShardFailures != 1 {
			t.Fatalf("round %d: Stats().ShardFailures = %d, want 1", round, st.ShardFailures)
		}
	}
}

// TestQuorumBelowThresholdFails loses two shards of three under
// quorum 2: one survivor is below quorum, so the query must fail —
// never a silently tiny answer.
func TestQuorumBelowThresholdFails(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	compact := buildCompact(t, shardCorpus(rng))
	down := errors.New("simulated shard crash")
	children := localChildren(t, compact, 3, engine.Config{Workers: 1})
	children[0] = failChild{err: down}
	children[2] = failChild{err: down}
	c, err := NewFromChildren(children, Config{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	jn := engine.MEDJoiner(scorefn.ExpMED{Alpha: 0.05})
	if _, err := c.Search(context.Background(),
		engine.Query{Concepts: shardConcepts(rng), Join: jn, K: 5}); !errors.Is(err, down) {
		t.Fatalf("one survivor under quorum 2: err %v, want %v", err, down)
	}
}

// TestQuorumConfigValidation pins the quorum range: 0 means all, out
// of range is a constructor error.
func TestQuorumConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	compact := buildCompact(t, shardCorpus(rng))
	children := localChildren(t, compact, 2, engine.Config{Workers: 1})
	for _, bad := range []int{-1, 3} {
		if _, err := NewFromChildren(children, Config{Quorum: bad}); err == nil {
			t.Fatalf("quorum %d over 2 children accepted", bad)
		}
	}
	if _, err := NewFromChildren(nil, Config{}); err == nil {
		t.Fatal("coordinator over zero children accepted")
	}
	c, err := NewFromChildren(children, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.quorum != 2 {
		t.Fatalf("default quorum = %d, want all (2)", c.quorum)
	}
}

// TestHealthMidRollNeverMixedEpochReady is the mid-roll health
// contract: after the first child of two has swapped but the second
// has not, the fleet's epochs are mixed and Health must refuse Ready
// — a load balancer routing to a half-rolled fleet could merge two
// index generations. After the roll completes, Ready returns at the
// next coordinator epoch.
func TestHealthMidRollNeverMixedEpochReady(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	docs := shardCorpus(rng)
	compact := buildCompact(t, docs)
	c, err := New(compact, Config{Shards: 2, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if h := c.Health(); !h.Ready || h.Epoch != 0 {
		t.Fatalf("fresh fleet: Ready=%v Epoch=%d, want true/0", h.Ready, h.Epoch)
	}

	checked := false
	c.rollHook = func(shard int) {
		if shard != 0 {
			return
		}
		h := c.Health()
		if h.Ready {
			t.Error("mixed-epoch fleet (shard 0 swapped, shard 1 not) reported Ready")
		}
		if h.Epoch != 0 {
			t.Errorf("mid-roll coordinator epoch = %d, want 0 (generation not yet flipped)", h.Epoch)
		}
		if len(h.Shards) == 2 && h.Shards[0].Epoch == h.Shards[1].Epoch {
			t.Errorf("expected mixed shard epochs mid-roll, got %d and %d",
				h.Shards[0].Epoch, h.Shards[1].Epoch)
		}
		checked = true
	}
	c.SwapIndex(compact)
	if !checked {
		t.Fatal("rollHook never observed the mid-roll window")
	}
	h := c.Health()
	if !h.Ready || h.Epoch != 1 || h.Err != "" {
		t.Fatalf("post-roll: Ready=%v Epoch=%d Err=%q, want true/1/\"\"", h.Ready, h.Epoch, h.Err)
	}
	for _, sh := range h.Shards {
		if sh.Epoch != 1 {
			t.Fatalf("post-roll shard %d epoch = %d, want 1", sh.Shard, sh.Epoch)
		}
	}
}

// swapFailOnce wraps a child to fail its first SwapIndex — a shard
// process that rejected one roll, then recovered.
type swapFailOnce struct {
	Child
	failed bool
	err    error
}

func (s *swapFailOnce) SwapIndex(idx *index.Compact) error {
	if !s.failed {
		s.failed = true
		return s.err
	}
	return s.Child.SwapIndex(idx)
}

// TestRollAbortOnSwapFailure pins the abort path: a child swap
// failure stops the roll, leaves the generation unflipped, and
// surfaces through Health.Err (without clearing Ready — the fleet is
// stale, not down); the next successful roll clears the record and
// advances the generation.
func TestRollAbortOnSwapFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	compact := buildCompact(t, shardCorpus(rng))
	children := localChildren(t, compact, 2, engine.Config{Workers: 1})
	children[1] = &swapFailOnce{Child: children[1], err: errors.New("disk full on shard")}
	c, err := NewFromChildren(children, Config{})
	if err != nil {
		t.Fatal(err)
	}

	c.SwapIndex(compact)
	h := c.Health()
	if h.Epoch != 0 {
		t.Fatalf("aborted roll advanced the generation to %d", h.Epoch)
	}
	if !strings.Contains(h.Err, "disk full") {
		t.Fatalf("Health.Err = %q, want the swap failure surfaced", h.Err)
	}
	// The abort left shard 0 on epoch 1 and shard 1 on epoch 0 —
	// mixed, so the stuck fleet must also read not-ready.
	if h.Ready {
		t.Fatal("fleet stuck mid-roll with mixed epochs reported Ready")
	}

	c.SwapIndex(compact)
	h = c.Health()
	if h.Err != "" || h.Epoch != 1 || !h.Ready {
		t.Fatalf("after recovery roll: Ready=%v Epoch=%d Err=%q, want true/1/\"\"", h.Ready, h.Epoch, h.Err)
	}
}

// unhealthyAfterSwap wraps a child that swaps fine but never reports
// Ready afterwards — the pause-on-unhealthy case the health gate
// exists for.
type unhealthyAfterSwap struct {
	Child
	swapped bool
}

func (u *unhealthyAfterSwap) SwapIndex(idx *index.Compact) error {
	u.swapped = true
	return u.Child.SwapIndex(idx)
}

func (u *unhealthyAfterSwap) Health() engine.Health {
	h := u.Child.Health()
	if u.swapped {
		h.Ready = false
	}
	return h
}

// TestRollPausesOnUnhealthyChild pins the health gate: a child that
// comes back unhealthy stalls the roll until the timeout, the roll
// aborts without flipping the generation, and later children are
// never swapped.
func TestRollPausesOnUnhealthyChild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	compact := buildCompact(t, shardCorpus(rng))
	children := localChildren(t, compact, 3, engine.Config{Workers: 1})
	children[0] = &unhealthyAfterSwap{Child: children[0]}
	c, err := NewFromChildren(children, Config{
		RollHealthTimeout: 30 * time.Millisecond,
		RollPoll:          time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	c.SwapIndex(compact)
	h := c.Health()
	if h.Epoch != 0 {
		t.Fatalf("roll past an unhealthy child advanced the generation to %d", h.Epoch)
	}
	if !strings.Contains(h.Err, "not ready") {
		t.Fatalf("Health.Err = %q, want the health-gate timeout surfaced", h.Err)
	}
	// Children after the unhealthy one must still be on epoch 0: the
	// roll paused and aborted instead of marching on.
	for _, sh := range h.Shards[1:] {
		if sh.Epoch != 0 {
			t.Fatalf("shard %d swapped to epoch %d after the roll should have aborted", sh.Shard, sh.Epoch)
		}
	}
}
