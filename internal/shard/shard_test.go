package shard

// Differential harness for the scatter-gather tier: sharding is
// supposed to be invisible. The property test builds random corpora
// and random queries and asserts the N-shard coordinator's answer —
// document ids, scores (bit for bit), matchsets, tie-break order, and
// the Partial/Degraded flags — is identical to a single engine over
// the unsplit index, across conjunctive, disjunctive, and m-of-n
// evaluation, all six scoring families, one worker and several,
// pruning on and off, and with candidates served from plain postings,
// precomputed concept metadata, and the block-partitioned layout.
// scripts/check.sh runs it under -race, so the shared global floor
// and the scatter goroutines are exercised for data races too.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
	"bestjoin/internal/scorefn"
)

var shardVocab = []string{
	"amber", "basalt", "cedar", "delta", "ember", "fjord",
	"garnet", "harbor", "indigo", "jasper", "krill", "lumen",
}

// shardCorpus generates a random corpus over a small vocabulary, so
// random concepts co-occur in plenty of documents and both the
// intersection and the union paths see non-trivial candidate sets.
func shardCorpus(rng *rand.Rand) []string {
	docs := make([]string, 30+rng.Intn(50))
	for d := range docs {
		body := ""
		for i := 15 + rng.Intn(35); i > 0; i-- {
			if body != "" {
				body += " "
			}
			body += shardVocab[rng.Intn(len(shardVocab))]
		}
		docs[d] = body
	}
	return docs
}

// shardConcepts draws 1–3 random concepts of 1–3 vocabulary words
// each with scores in (0, 1].
func shardConcepts(rng *rand.Rand) []index.Concept {
	concepts := make([]index.Concept, 1+rng.Intn(3))
	for i := range concepts {
		c := index.Concept{}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			c[shardVocab[rng.Intn(len(shardVocab))]] = 1 - rng.Float64()
		}
		concepts[i] = c
	}
	return concepts
}

func buildCompact(t testing.TB, docs []string) *index.Compact {
	t.Helper()
	ix := index.New()
	for d, body := range docs {
		ix.AddText(d, body)
	}
	return ix.Compact()
}

// shardFamilies enumerates the kernel factories under test; fresh
// factories per call because kernels are stateful.
func shardFamilies() []struct {
	name    string
	factory engine.KernelFactory
} {
	win := scorefn.ExpWIN{Alpha: 0.07}
	med := scorefn.ExpMED{Alpha: 0.05}
	max := scorefn.SumMAX{Alpha: 0.1}
	return []struct {
		name    string
		factory engine.KernelFactory
	}{
		{"WIN", engine.WINJoiner(win)},
		{"MED", engine.MEDJoiner(med)},
		{"MAX", engine.MAXJoiner(max)},
		{"ValidWIN", engine.ValidWINJoiner(win)},
		{"ValidMED", engine.ValidMEDJoiner(med)},
		{"ValidMAX", engine.ValidMAXJoiner(max)},
	}
}

// assertSameResult holds the coordinator's answer to the single
// engine's, field by field. Docs, scores, matchsets, order, and the
// Partial/Degraded flags must be bitwise identical. Candidates is
// comparable only on the pure conjunctive path, where it is the exact
// intersection size and the shard counts partition the global count;
// on the union path the pivot walk's block jumps make the candidate
// count schedule-dependent, so it is not part of the identity.
func assertSameResult(t *testing.T, label string, sharded, single *engine.Result, pureAND bool) {
	t.Helper()
	if sharded.Partial != single.Partial {
		t.Fatalf("%s: Partial %v (sharded) vs %v (single)", label, sharded.Partial, single.Partial)
	}
	if sharded.Degraded != single.Degraded {
		t.Fatalf("%s: Degraded %v (sharded) vs %v (single)", label, sharded.Degraded, single.Degraded)
	}
	if pureAND && sharded.Candidates != single.Candidates {
		t.Fatalf("%s: Candidates %d (sharded) vs %d (single)", label, sharded.Candidates, single.Candidates)
	}
	if len(sharded.Docs) != len(single.Docs) {
		t.Fatalf("%s: %d docs (sharded) vs %d (single)\nsharded: %+v\nsingle:  %+v",
			label, len(sharded.Docs), len(single.Docs), sharded.Docs, single.Docs)
	}
	for i := range sharded.Docs {
		s, u := sharded.Docs[i], single.Docs[i]
		if s.Doc != u.Doc {
			t.Fatalf("%s: rank %d doc %d (sharded) vs %d (single)\nsharded: %+v\nsingle:  %+v",
				label, i, s.Doc, u.Doc, sharded.Docs, single.Docs)
		}
		if s.Score != u.Score {
			t.Fatalf("%s: rank %d (doc %d) score %v (sharded) vs %v (single)",
				label, i, s.Doc, s.Score, u.Score)
		}
		if len(s.Set) != len(u.Set) {
			t.Fatalf("%s: rank %d (doc %d) matchset sizes differ", label, i, s.Doc)
		}
		for j := range s.Set {
			if s.Set[j] != u.Set[j] {
				t.Fatalf("%s: rank %d (doc %d) matchset %v (sharded) vs %v (single)",
					label, i, s.Doc, s.Set, u.Set)
			}
		}
	}
}

// TestShardDifferential is the core acceptance test: N ∈ {1, 2, 4}
// shards versus the single engine across AND/OR/m-of-n × all six
// scoring families × 1/4 workers × pruning on/off, over random
// corpora served from plain postings, concept metadata, and the
// block-partitioned layout in rotation.
func TestShardDifferential(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(4000 + int64(trial)))
		compact := buildCompact(t, shardCorpus(rng))
		concepts := shardConcepts(rng)
		// Rotate the index layout the candidates are served from:
		// plain postings, doc-level concept metadata, block-partitioned
		// postings with a skip table.
		layout := "plain"
		switch trial % 3 {
		case 1:
			layout = "meta"
			for _, c := range concepts {
				compact.AddConceptMeta(c)
			}
		case 2:
			layout = "blocks"
			for _, c := range concepts {
				compact.AddConceptBlocksSized(c, 16)
			}
		}
		k := 1 + rng.Intn(6)
		minMatch := 1 + rng.Intn(len(concepts))

		modes := []struct {
			name string
			q    engine.Query
		}{
			{"AND", engine.Query{Mode: engine.ModeAND}},
			{"OR", engine.Query{Mode: engine.ModeOR}},
			{fmt.Sprintf("%d-of-%d", minMatch, len(concepts)),
				engine.Query{MinMatch: minMatch}},
		}
		for _, workers := range []int{1, 4} {
			for _, noprune := range []bool{false, true} {
				cfg := engine.Config{Workers: workers, DisablePruning: noprune}
				for _, fam := range shardFamilies() {
					for _, mode := range modes {
						q := mode.q
						q.Concepts = concepts
						q.Join = fam.factory
						q.K = k
						single := engine.New(compact, cfg)
						want, err := single.Search(context.Background(), q)
						if err != nil {
							t.Fatal(err)
						}
						for _, n := range []int{1, 2, 4} {
							coord, err := New(compact, Config{Shards: n, Engine: cfg})
							if err != nil {
								t.Fatal(err)
							}
							got, err := coord.Search(context.Background(), q)
							if err != nil {
								t.Fatal(err)
							}
							label := fmt.Sprintf("trial %d %s %s shards=%d workers=%d k=%d noprune=%v layout=%s",
								trial, fam.name, mode.name, n, workers, k, noprune, layout)
							pureAND := q.Mode == engine.ModeAND && q.MinMatch == 0
							assertSameResult(t, label, got, want, pureAND)
							// Repeat the query: the warm path (per-shard
							// concept and list caches populated, shared
							// floor fresh per query) must stay identical.
							again, err := coord.Search(context.Background(), q)
							if err != nil {
								t.Fatal(err)
							}
							assertSameResult(t, label+" cached", again, want, pureAND)
						}
					}
				}
			}
		}
	}
}

func docsEqual(a, b []engine.DocResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc != b[i].Doc || a[i].Score != b[i].Score || len(a[i].Set) != len(b[i].Set) {
			return false
		}
		for j := range a[i].Set {
			if a[i].Set[j] != b[i].Set[j] {
				return false
			}
		}
	}
	return true
}

// TestShardRollingReload is the zero-downtime acceptance test:
// queries running concurrently with a staggered per-shard SwapIndex
// must never fail, never degrade, and must each see exactly the old
// index's answer or the new one's — never a mix of epochs.
func TestShardRollingReload(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	v1 := buildCompact(t, shardCorpus(rng))
	v2 := buildCompact(t, shardCorpus(rng))
	q := engine.Query{
		Concepts: []index.Concept{
			{"amber": 1.0, "basalt": 0.8},
			{"cedar": 0.9, "delta": 0.7},
		},
		Join: engine.MEDJoiner(scorefn.ExpMED{Alpha: 0.05}),
		K:    8,
	}
	cfg := engine.Config{Workers: 2}
	res1, err := engine.New(v1, cfg).Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := engine.New(v2, cfg).Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if docsEqual(res1.Docs, res2.Docs) {
		t.Fatal("v1 and v2 rank identically — the reload test cannot distinguish epochs")
	}

	coord, err := New(v1, Config{Shards: 3, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Widen the mid-roll window: with three shards and a pause after
	// each swap, queriers overlap states where some children are on v2
	// while the published generation still pins every shard to v1.
	coord.rollHook = func(int) { time.Sleep(2 * time.Millisecond) }

	var (
		sawOld, sawNew atomic.Uint64
		stop           atomic.Bool
		wg             sync.WaitGroup
	)
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				res, err := coord.Search(context.Background(), q)
				if err != nil {
					errs <- fmt.Errorf("query failed mid-roll: %v", err)
					return
				}
				if res.Partial || res.Degraded {
					errs <- fmt.Errorf("mid-roll result flagged: partial=%v degraded=%v", res.Partial, res.Degraded)
					return
				}
				switch {
				case docsEqual(res.Docs, res1.Docs):
					sawOld.Add(1)
				case docsEqual(res.Docs, res2.Docs):
					sawNew.Add(1)
				default:
					errs <- fmt.Errorf("mixed-epoch result: %+v\nv1: %+v\nv2: %+v", res.Docs, res1.Docs, res2.Docs)
					return
				}
			}
		}()
	}

	time.Sleep(2 * time.Millisecond) // let queriers observe the old epoch
	coord.SwapIndex(v2)
	time.Sleep(2 * time.Millisecond) // and the new one
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if sawOld.Load() == 0 || sawNew.Load() == 0 {
		t.Logf("epoch coverage thin: %d old, %d new (timing-dependent, not a failure)", sawOld.Load(), sawNew.Load())
	}

	// After the roll the fleet is on the new generation everywhere.
	h := coord.Health()
	if !h.Ready || h.Epoch != 1 {
		t.Fatalf("post-roll Health = %+v, want ready at epoch 1", h)
	}
	for _, sh := range h.Shards {
		if sh.Epoch != 1 || !sh.Ready {
			t.Fatalf("post-roll shard health = %+v", sh)
		}
	}
	final, err := coord.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !docsEqual(final.Docs, res2.Docs) {
		t.Fatalf("post-roll answer is not the new index's: %+v", final.Docs)
	}
	if got := coord.Stats().IndexReloads; got != 3 {
		t.Fatalf("rolled-up IndexReloads = %d, want 3 (one per shard)", got)
	}
}

// TestShardHealthAndStats covers the fleet observability surface: the
// per-shard health rows, the rolled-up counters, and the coordinator's
// own scatter/merge counters.
func TestShardHealthAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	compact := buildCompact(t, shardCorpus(rng))
	coord, err := New(compact, Config{Shards: 4, Engine: engine.Config{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Shards() != 4 {
		t.Fatalf("Shards() = %d", coord.Shards())
	}
	h := coord.Health()
	if !h.Ready || h.Epoch != 0 || h.Docs != compact.Docs() || len(h.Shards) != 4 {
		t.Fatalf("fresh Health = %+v", h)
	}
	for i, sh := range h.Shards {
		if sh.Shard != i || sh.Epoch != 0 || !sh.Ready || sh.Docs != compact.Docs() {
			t.Fatalf("shard %d health = %+v (docs must stay global)", i, sh)
		}
	}

	q := engine.Query{
		Concepts: []index.Concept{{"amber": 1.0}, {"cedar": 0.8}},
		Join:     engine.WINJoiner(scorefn.ExpWIN{Alpha: 0.07}),
		K:        5,
	}
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if _, err := coord.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := coord.Stats()
	if st.Queries != rounds {
		t.Fatalf("Queries = %d, want %d", st.Queries, rounds)
	}
	if st.ShardQueries != rounds*4 {
		t.Fatalf("ShardQueries = %d, want %d", st.ShardQueries, rounds*4)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("Shards rollup has %d entries", len(st.Shards))
	}
	var childQueries, childEvaluated uint64
	var childLatency uint64
	for _, cs := range st.Shards {
		childQueries += cs.Queries
		childEvaluated += cs.DocsEvaluated
		childLatency += cs.QueryLatency.Count
	}
	if childQueries != rounds*4 {
		t.Fatalf("child Queries sum to %d, want %d", childQueries, rounds*4)
	}
	if st.DocsEvaluated != childEvaluated {
		t.Fatalf("rolled-up DocsEvaluated %d != child sum %d", st.DocsEvaluated, childEvaluated)
	}
	if st.QueryLatency.Count != childLatency {
		t.Fatalf("merged latency count %d != child sum %d", st.QueryLatency.Count, childLatency)
	}
	if st.MergedCandidates == 0 {
		t.Fatal("MergedCandidates stayed zero across matching queries")
	}
	if st.PrunedDocs+st.DocsEvaluated > 0 && st.PrunedFraction < 0 {
		t.Fatalf("PrunedFraction = %v", st.PrunedFraction)
	}
}

// TestShardSearchErrors pins error propagation: a malformed query is
// rejected with the engine's validation error, deterministically, and
// no merge is attempted.
func TestShardSearchErrors(t *testing.T) {
	compact := buildCompact(t, []string{"amber cedar", "basalt delta"})
	coord, err := New(compact, Config{Shards: 2, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Search(context.Background(), engine.Query{}); err == nil {
		t.Fatal("query with no concepts accepted")
	}
	q := engine.Query{
		Concepts: []index.Concept{{"amber": 1.0}},
		Join:     engine.WINJoiner(scorefn.ExpWIN{Alpha: 0.5}),
		MinMatch: 5, // out of range for 1 concept
	}
	if _, err := coord.Search(context.Background(), q); err == nil {
		t.Fatal("out-of-range MinMatch accepted")
	} else if errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("validation error surfaced as overload: %v", err)
	}
}

// TestFirstError pins the deterministic pick: a real error beats
// overload errors (which may be fallout of scatter cancellation), and
// among equals the lowest shard index wins.
func TestFirstError(t *testing.T) {
	boom := errors.New("boom")
	over1 := fmt.Errorf("%w: shard 1", engine.ErrOverloaded)
	over2 := fmt.Errorf("%w: shard 2", engine.ErrOverloaded)
	if err := firstError([]error{nil, nil}); err != nil {
		t.Fatalf("no errors, got %v", err)
	}
	if err := firstError([]error{nil, over1, boom}); err != boom {
		t.Fatalf("real error lost to overload: %v", err)
	}
	if err := firstError([]error{nil, over1, over2}); err != over1 {
		t.Fatalf("overload pick not lowest-indexed: %v", err)
	}
}

// TestMergeTieBreak pins the merge comparator on crafted per-shard
// results: equal scores resolve toward the smaller document id, no
// matter which shard holds it.
func TestMergeTieBreak(t *testing.T) {
	c := &Coordinator{}
	a := &engine.Result{Docs: []engine.DocResult{
		{Doc: 4, Score: 2.0}, {Doc: 9, Score: 1.0},
	}, Candidates: 2, Evaluated: 2}
	b := &engine.Result{Docs: []engine.DocResult{
		{Doc: 3, Score: 2.0}, {Doc: 8, Score: 1.0},
	}, Candidates: 2, Evaluated: 2, Partial: true}
	merged := c.merge([]*engine.Result{a, b}, 3, time.Now())
	wantDocs := []int{3, 4, 8}
	if len(merged.Docs) != len(wantDocs) {
		t.Fatalf("merged %d docs, want %d: %+v", len(merged.Docs), len(wantDocs), merged.Docs)
	}
	for i, w := range wantDocs {
		if merged.Docs[i].Doc != w {
			t.Fatalf("rank %d doc %d, want %d (tie must break toward smaller id)", i, merged.Docs[i].Doc, w)
		}
	}
	if merged.Candidates != 4 || merged.Evaluated != 4 {
		t.Fatalf("counts did not sum: %+v", merged)
	}
	if !merged.Partial {
		t.Fatal("Partial flag did not OR across shards")
	}
	// k larger than the union: the merge drains both shards and stops.
	drained := c.merge([]*engine.Result{a, b}, 10, time.Now())
	if len(drained.Docs) != 4 {
		t.Fatalf("over-k merge returned %d docs", len(drained.Docs))
	}
}

// TestMergeLatency pins the histogram fold: counts sum by bucket, the
// unbounded bucket (upper 0) sorts last, and the mean is the
// count-weighted mean of the inputs.
func TestMergeLatency(t *testing.T) {
	if out := mergeLatency(nil); out.Count != 0 || out.Buckets != nil {
		t.Fatalf("empty merge = %+v", out)
	}
	merged := mergeLatency([]engine.LatencyHistogram{
		{Count: 2, MeanMicros: 10, Buckets: []engine.LatencyBucket{
			{UpperMicros: 16, Count: 1}, {UpperMicros: 0, Count: 1},
		}},
		{Count: 2, MeanMicros: 30, Buckets: []engine.LatencyBucket{
			{UpperMicros: 16, Count: 1}, {UpperMicros: 64, Count: 1},
		}},
	})
	if merged.Count != 4 || merged.MeanMicros != 20 {
		t.Fatalf("merged count/mean = %d/%v", merged.Count, merged.MeanMicros)
	}
	want := []engine.LatencyBucket{
		{UpperMicros: 16, Count: 2}, {UpperMicros: 64, Count: 1}, {UpperMicros: 0, Count: 1},
	}
	if len(merged.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", merged.Buckets)
	}
	for i := range want {
		if merged.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, merged.Buckets[i], want[i])
		}
	}
}

// TestShardOverloadPropagates runs a coordinator whose children shed
// at one in-flight query each and drives enough concurrency that
// admission rejects some scatters; the surfaced error must be
// ErrOverloaded and the coordinator must stay healthy afterwards.
func TestShardOverloadPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	compact := buildCompact(t, shardCorpus(rng))
	coord, err := New(compact, Config{Shards: 2, Engine: engine.Config{
		Workers: 1, MaxInFlight: 1, Overload: engine.OverloadShed,
	}})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{
		Concepts: []index.Concept{{"amber": 1.0}, {"cedar": 0.8}},
		Join:     engine.MEDJoiner(scorefn.ExpMED{Alpha: 0.05}),
		K:        5,
	}
	var shed atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				_, err := coord.Search(context.Background(), q)
				switch {
				case err == nil:
				case errors.Is(err, engine.ErrOverloaded):
					shed.Add(1)
				default:
					errs <- fmt.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Whatever happened under pressure, an uncontended query succeeds.
	if _, err := coord.Search(context.Background(), q); err != nil {
		t.Fatalf("coordinator unhealthy after shedding: %v", err)
	}
	if shed.Load() > 0 && coord.Stats().Shed == 0 {
		t.Fatal("shed queries not visible in rolled-up Stats")
	}
}

// TestShardPublish covers the expvar bridge and its duplicate guard.
func TestShardPublish(t *testing.T) {
	compact := buildCompact(t, []string{"amber cedar"})
	coord, err := New(compact, Config{Shards: 2, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	const name = "bestjoin.shard.shard_test"
	if err := coord.Publish(name); err != nil {
		t.Fatalf("first Publish: %v", err)
	}
	if err := coord.Publish(name); err == nil {
		t.Fatal("duplicate Publish accepted")
	}
}

// TestShardDefaultCount pins that Shards ≤ 0 means one child.
func TestShardDefaultCount(t *testing.T) {
	compact := buildCompact(t, []string{"amber cedar", "basalt"})
	coord, err := New(compact, Config{Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if coord.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", coord.Shards())
	}
}

// TestShardEmptyAnswer pins the no-candidate path end to end: a query
// whose concepts match nothing merges to an empty, complete answer.
func TestShardEmptyAnswer(t *testing.T) {
	compact := buildCompact(t, []string{"amber cedar", "basalt delta"})
	coord, err := New(compact, Config{Shards: 2, Engine: engine.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{
		Concepts: []index.Concept{{"zeppelin": 1.0}},
		Join:     engine.WINJoiner(scorefn.ExpWIN{Alpha: 0.5}),
	}
	res, err := coord.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 0 || res.Partial || res.Degraded {
		t.Fatalf("empty query result = %+v", res)
	}
}
