// Package shard is the scatter-gather serving tier: a Coordinator
// implements engine.Searcher over N doc-partitioned child engines —
// cluster-in-a-process, nailing the merge semantics any multi-process
// scale-out would need before processes enter the picture.
//
// The paper's best-join scoring is document-local, so splitting the
// corpus by document (index.Compact.Partition) is lossless by
// construction; merging per-shard top-k heaps back into a global k is
// the sorted-access half of Fagin's threshold aggregation, the same
// framework the engine's WAND union already leans on. Three
// mechanisms make the sharded answer bitwise identical to the single
// engine's:
//
//   - Rank merge with the engine's exact ordering. Every shard
//     returns its Docs sorted by (score descending, document id
//     ascending); the coordinator k-way-merges those streams under
//     the same comparator, so the merged top-k — order, scores,
//     matchsets, ids — is what one engine over the unsplit index
//     would return. Shards keep global document ids (the partitioner
//     never renumbers), which is what makes the tie-break rule mean
//     the same thing on every shard.
//   - A shared pruning floor (engine.GlobalFloor via Query.Floor).
//     Each shard publishes its local k-th-best kept score and prunes
//     against the fleet-wide maximum, so block-max/WAND pruning still
//     bites across the partition: a strong document found on one
//     shard stops weak candidates everywhere. Soundness: a shard's
//     k-th-best kept score is witnessed by k real documents, so the
//     global k-th best is at least that high, and pruning stays
//     strictly-below — equal-scoring documents survive for the
//     merge's doc-id tie-break.
//   - Pinned snapshots. A query pins every child's epoch up front
//     (engine.SearchSnapshot), and rolling reloads flip the pinned
//     vector atomically only after every child has swapped — so no
//     query ever sees two index generations, even mid-roll.
//
// Admission control is per shard: every child keeps its own
// MaxInFlight gate (engine.Config), so a coordinator query admits on
// all N shards or fails with ErrOverloaded like any other query.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
)

// Config sizes a Coordinator.
type Config struct {
	// Shards is the number of doc-partitioned child engines; ≤ 0
	// means 1.
	Shards int
	// Engine configures every child engine identically — worker
	// count, caches, pruning, and the per-shard admission gate.
	Engine engine.Config
}

// Coordinator scatter-gathers queries over N doc-partitioned child
// engines. It implements engine.Searcher, so servers cannot tell it
// from a single engine. Safe for concurrent use.
type Coordinator struct {
	children []*engine.Engine
	gen      atomic.Pointer[generation]
	// swapMu serializes rolling reloads; queries never take it.
	swapMu sync.Mutex
	// rollHook, when set (tests only), runs after each child swap
	// during SwapIndex — the seam that widens the mid-roll window the
	// rolling-reload tests probe.
	rollHook func(shard int)

	queries          atomic.Uint64
	shardQueries     atomic.Uint64
	mergedCandidates atomic.Uint64
}

// generation is one atomically-published index generation: the pinned
// snapshot of every child, plus the coordinator's own epoch (one per
// completed rolling reload). Queries load a generation once and use
// its snapshots throughout, so a reload mid-query — or mid-roll —
// can never mix epochs inside one answer.
type generation struct {
	snaps []engine.Snapshot
	epoch uint64
}

// Coordinator implements the same Searcher contract as Engine.
var _ engine.Searcher = (*Coordinator)(nil)

// New partitions the index into cfg.Shards doc-partitioned pieces and
// builds one child engine per piece. The error surface is
// index.Compact.Partition's: invalid shard counts and corrupt
// in-memory buffers.
func New(idx *index.Compact, cfg Config) (*Coordinator, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	parts, err := idx.Partition(n)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{children: make([]*engine.Engine, n)}
	snaps := make([]engine.Snapshot, n)
	for i, p := range parts {
		c.children[i] = engine.New(p, cfg.Engine)
		snaps[i] = c.children[i].Snapshot()
	}
	c.gen.Store(&generation{snaps: snaps})
	return c, nil
}

// Shards returns the number of child engines.
func (c *Coordinator) Shards() int { return len(c.children) }

// Search scatters the query to every shard under one pinned
// generation and one shared pruning floor, then rank-merges the
// per-shard top-k heaps into the global k. The merged answer is
// bitwise identical to a single engine over the unsplit index (the
// package comment gives the argument; the differential suite the
// proof). Counts roll up: Candidates/Evaluated/Pruned/Failed are
// summed and Partial/Degraded OR-ed across shards.
func (c *Coordinator) Search(ctx context.Context, q engine.Query) (*engine.Result, error) {
	start := time.Now()
	k := q.K
	if k <= 0 {
		k = engine.DefaultK
	}
	if q.Floor == nil {
		// One floor for the whole scatter; a caller-supplied floor is
		// honored so fleets of coordinators could share one too.
		q.Floor = engine.NewGlobalFloor()
	}
	gen := c.gen.Load()
	c.queries.Add(1)
	c.shardQueries.Add(uint64(len(c.children)))

	// Scatter. A shard that fails cancels the rest — there is no
	// answer to assemble without it, so the others should stop
	// burning CPU.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*engine.Result, len(c.children))
	errs := make([]error, len(c.children))
	var wg sync.WaitGroup
	for i := range c.children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.children[i].SearchSnapshot(sctx, q, gen.snaps[i])
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return c.merge(results, k, start), nil
}

// firstError picks the error to surface deterministically: the
// lowest-indexed non-overload error when one exists (a validation
// error is the same on every shard; an overload error on another
// shard may just be fallout of this one's cancellation), else the
// lowest-indexed error.
func firstError(errs []error) error {
	var overload error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, engine.ErrOverloaded) {
			return err
		}
		if overload == nil {
			overload = err
		}
	}
	return overload
}

// merge rank-merges the per-shard results: a k-way merge over the
// shards' already-sorted Docs under the engine's exact comparator —
// score descending, document id ascending on ties — taking the first
// k rows. Counts sum; flags OR.
func (c *Coordinator) merge(results []*engine.Result, k int, start time.Time) *engine.Result {
	merged := &engine.Result{Docs: make([]engine.DocResult, 0, k)}
	heads := make([]int, len(results))
	entering := 0
	for _, r := range results {
		merged.Candidates += r.Candidates
		merged.Evaluated += r.Evaluated
		merged.Pruned += r.Pruned
		merged.Failed += r.Failed
		merged.Partial = merged.Partial || r.Partial
		merged.Degraded = merged.Degraded || r.Degraded
		entering += len(r.Docs)
	}
	c.mergedCandidates.Add(uint64(entering))
	for len(merged.Docs) < k {
		best := -1
		for s, r := range results {
			if heads[s] == len(r.Docs) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			a, b := r.Docs[heads[s]], results[best].Docs[heads[best]]
			if a.Score > b.Score || (a.Score == b.Score && a.Doc < b.Doc) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		merged.Docs = append(merged.Docs, results[best].Docs[heads[best]])
		heads[best]++
	}
	merged.Elapsed = time.Since(start)
	return merged
}

// SwapIndex hot-reloads the whole fleet with zero downtime: the new
// index is partitioned, each child swaps one at a time (the rolling
// part — a real deployment would pause between shards to watch
// health), and only after every child is on the new index does the
// coordinator atomically publish the new generation. Queries admitted
// mid-roll keep using the old generation's pinned snapshots — child
// SwapIndex never invalidates outstanding snapshots, and the caches
// are epoch-keyed — so no query ever observes a mixed-epoch answer
// and none fail. Rolls serialize; queries are never blocked.
//
// Partition errors are impossible for an index built or loaded by
// internal/index (both validate eagerly), so like Compact.Postings
// this path treats one as memory corruption and fails loudly.
func (c *Coordinator) SwapIndex(idx *index.Compact) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	parts, err := idx.Partition(len(c.children))
	if err != nil {
		panic(fmt.Sprintf("shard: re-partition for reload: %v", err))
	}
	for i, child := range c.children {
		child.SwapIndex(parts[i])
		if h := c.rollHook; h != nil {
			h(i)
		}
	}
	old := c.gen.Load()
	snaps := make([]engine.Snapshot, len(c.children))
	for i, child := range c.children {
		snaps[i] = child.Snapshot()
	}
	c.gen.Store(&generation{snaps: snaps, epoch: old.epoch + 1})
}

// Health reports fleet readiness: the coordinator's generation epoch
// plus one row per shard (each child's own reload epoch and
// readiness). Docs is the global corpus size — every shard keeps the
// global id space, so any child reports it.
func (c *Coordinator) Health() engine.Health {
	gen := c.gen.Load()
	h := engine.Health{Ready: true, Epoch: gen.epoch}
	for i, child := range c.children {
		ch := child.Health()
		h.Shards = append(h.Shards, engine.ShardHealth{Shard: i, Epoch: ch.Epoch, Docs: ch.Docs, Ready: ch.Ready})
		h.Ready = h.Ready && ch.Ready
		h.Docs = ch.Docs
	}
	return h
}

// Stats rolls the fleet up into one engine.Stats: child counters are
// summed field by field (so DegradedResults, PartialResults, and
// DeadlineHits count per-shard events — one coordinator query can
// tick a counter up to N times), latency histograms are merged,
// PrunedFraction is recomputed over the summed counts, and the
// coordinator's own counters fill Queries, ShardQueries, and
// MergedCandidates. Each child's unmodified Stats rides along in
// Shards, in shard order.
func (c *Coordinator) Stats() engine.Stats {
	agg := engine.Stats{
		Queries:          c.queries.Load(),
		ShardQueries:     c.shardQueries.Load(),
		MergedCandidates: c.mergedCandidates.Load(),
	}
	shards := make([]engine.Stats, len(c.children))
	hists := make([]engine.LatencyHistogram, len(c.children))
	for i, child := range c.children {
		s := child.Stats()
		shards[i] = s
		hists[i] = s.QueryLatency
		agg.DocsEvaluated += s.DocsEvaluated
		agg.JoinsRun += s.JoinsRun
		agg.PrunedDocs += s.PrunedDocs
		agg.ConceptHits += s.ConceptHits
		agg.ConceptMisses += s.ConceptMisses
		agg.ListHits += s.ListHits
		agg.ListMisses += s.ListMisses
		agg.DeadlineHits += s.DeadlineHits
		agg.PartialResults += s.PartialResults
		agg.JoinPanics += s.JoinPanics
		agg.DecodeFailures += s.DecodeFailures
		agg.DegradedResults += s.DegradedResults
		agg.Shed += s.Shed
		agg.IndexReloads += s.IndexReloads
		agg.InFlight += s.InFlight
		agg.QueueDepth += s.QueueDepth
		agg.CachedLists += s.CachedLists
		agg.BlockDecodes += s.BlockDecodes
		agg.BlocksSkipped += s.BlocksSkipped
		agg.CacheBytes += s.CacheBytes
		agg.CoalescedDecodes += s.CoalescedDecodes
		agg.DecodeWaits += s.DecodeWaits
		agg.UnionCandidates += s.UnionCandidates
		agg.PivotSkips += s.PivotSkips
		agg.UnionUnpruned += s.UnionUnpruned
	}
	if agg.PrunedDocs+agg.DocsEvaluated > 0 {
		agg.PrunedFraction = float64(agg.PrunedDocs) / float64(agg.PrunedDocs+agg.DocsEvaluated)
	}
	agg.QueryLatency = mergeLatency(hists)
	agg.Shards = shards
	return agg
}

// mergeLatency folds per-shard latency histograms into one: bucket
// counts sum by upper bound (0 — the overflow bucket — sorts last)
// and the mean recomputes from the count-weighted per-shard means.
func mergeLatency(hists []engine.LatencyHistogram) engine.LatencyHistogram {
	counts := map[uint64]uint64{}
	var out engine.LatencyHistogram
	totalMicros := 0.0
	for _, h := range hists {
		out.Count += h.Count
		totalMicros += h.MeanMicros * float64(h.Count)
		for _, b := range h.Buckets {
			counts[b.UpperMicros] += b.Count
		}
	}
	if out.Count == 0 {
		return out
	}
	out.MeanMicros = totalMicros / float64(out.Count)
	uppers := make([]uint64, 0, len(counts))
	for u := range counts {
		uppers = append(uppers, u)
	}
	sort.Slice(uppers, func(i, j int) bool {
		if uppers[i] == 0 || uppers[j] == 0 {
			return uppers[j] == 0 // 0 is the unbounded bucket: last
		}
		return uppers[i] < uppers[j]
	})
	for _, u := range uppers {
		out.Buckets = append(out.Buckets, engine.LatencyBucket{UpperMicros: u, Count: counts[u]})
	}
	return out
}

// Publish exposes the coordinator's rolled-up Stats as an expvar
// variable; it shares the duplicate-name guard with Engine.Publish.
func (c *Coordinator) Publish(name string) error {
	return engine.PublishFunc(name, c.Stats)
}
