// Package shard is the scatter-gather serving tier: a Coordinator
// implements engine.Searcher over N doc-partitioned children —
// in-process child engines, or (via internal/remote) shard processes
// across a network — nailing the merge semantics any multi-process
// scale-out needs.
//
// The paper's best-join scoring is document-local, so splitting the
// corpus by document (index.Compact.Partition) is lossless by
// construction; merging per-shard top-k heaps back into a global k is
// the sorted-access half of Fagin's threshold aggregation, the same
// framework the engine's WAND union already leans on. Three
// mechanisms make the sharded answer bitwise identical to the single
// engine's:
//
//   - Rank merge with the engine's exact ordering. Every shard
//     returns its Docs sorted by (score descending, document id
//     ascending); the coordinator k-way-merges those streams under
//     the same comparator, so the merged top-k — order, scores,
//     matchsets, ids — is what one engine over the unsplit index
//     would return. Shards keep global document ids (the partitioner
//     never renumbers), which is what makes the tie-break rule mean
//     the same thing on every shard.
//   - A shared pruning floor (engine.GlobalFloor via Query.Floor).
//     Each shard publishes its local k-th-best kept score and prunes
//     against the fleet-wide maximum, so block-max/WAND pruning still
//     bites across the partition: a strong document found on one
//     shard stops weak candidates everywhere. Soundness: a shard's
//     k-th-best kept score is witnessed by k real documents, so the
//     global k-th best is at least that high, and pruning stays
//     strictly-below — equal-scoring documents survive for the
//     merge's doc-id tie-break. The floor is a perf channel only:
//     remote children that cannot share it (each rebuilds a local
//     floor from the wire snapshot) prune less but score identically.
//   - Pinned answers. A query pins every child up front (Child.Pin:
//     for local engines a pinned snapshot, for remote shards the
//     client call), and rolling reloads flip the pinned vector
//     atomically only after every child has swapped — so a query
//     through local children never sees two index generations, even
//     mid-roll. Remote children pin per process, a weaker guarantee:
//     mid-roll, different shards may serve different epochs, which is
//     still sound per document (doc-partitioning means each document
//     is scored entirely by one shard) but is why Health refuses to
//     report a mixed-epoch fleet as ready.
//
// Quorum degraded mode (Config.Quorum) trades completeness for
// availability: when at least M of N shards answer, the coordinator
// merges the survivors and flags the Result Degraded with
// FailedShards set. The partial answer is a sound subset — every
// returned document carries its true score and matchset (computed
// wholly on its home shard), and the relative order matches the full
// fleet's — it just may miss documents homed on the failed shards.
//
// Admission control is per shard: every child keeps its own
// MaxInFlight gate (engine.Config), so a coordinator query admits on
// all N shards or fails with ErrOverloaded like any other query.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bestjoin/internal/engine"
	"bestjoin/internal/index"
)

// SearchFunc evaluates one query against one pinned shard.
type SearchFunc func(ctx context.Context, q engine.Query) (*engine.Result, error)

// Child is one shard under a Coordinator — a local engine
// (localChild) or a remote shard process (internal/remote.Shard). The
// contract mirrors engine.Searcher with two deviations: Pin returns a
// search function bound to the child's current index generation (the
// coordinator pins all children together and publishes the vector
// atomically), and SwapIndex reports failure instead of being
// infallible, because a swap over the network can lose.
type Child interface {
	// Pin binds a search function to the child's current index
	// generation. Local children pin a snapshot; remote children
	// cannot pin across processes and return their plain client call.
	Pin() SearchFunc
	// SwapIndex hot-reloads the child onto the given partition.
	SwapIndex(idx *index.Compact) error
	// Stats snapshots the child's counters (see engine.Searcher).
	Stats() engine.Stats
	// Health reports the child's readiness (see engine.Searcher).
	Health() engine.Health
}

// localChild adapts an in-process engine to the Child contract.
type localChild struct{ eng *engine.Engine }

func (lc localChild) Pin() SearchFunc {
	snap := lc.eng.Snapshot()
	return func(ctx context.Context, q engine.Query) (*engine.Result, error) {
		return lc.eng.SearchSnapshot(ctx, q, snap)
	}
}

func (lc localChild) SwapIndex(idx *index.Compact) error {
	lc.eng.SwapIndex(idx)
	return nil
}

func (lc localChild) Stats() engine.Stats   { return lc.eng.Stats() }
func (lc localChild) Health() engine.Health { return lc.eng.Health() }

// Config sizes a Coordinator.
type Config struct {
	// Shards is the number of doc-partitioned child engines; ≤ 0
	// means 1. Ignored by NewFromChildren (the children are given).
	Shards int
	// Engine configures every child engine identically — worker
	// count, caches, pruning, and the per-shard admission gate.
	// Ignored by NewFromChildren.
	Engine engine.Config
	// Quorum is the minimum number of shards that must answer for a
	// query to succeed. 0 (the default) means all shards — any shard
	// failure fails the query, the strict mode local fleets want.
	// Setting 1 ≤ Quorum < Shards arms degraded mode: when at least
	// Quorum shards answer, the survivors are merged into a sound
	// partial answer flagged Degraded with FailedShards set.
	Quorum int
	// RollHealthTimeout bounds how long a rolling reload waits for
	// each freshly-swapped child to report Ready before aborting the
	// roll (generation not advanced; Health carries the error).
	// 0 means 5s.
	RollHealthTimeout time.Duration
	// RollPoll is the health-poll interval during a rolling reload.
	// 0 means 5ms.
	RollPoll time.Duration
}

// Coordinator scatter-gathers queries over N doc-partitioned
// children. It implements engine.Searcher, so servers cannot tell it
// from a single engine. Safe for concurrent use.
type Coordinator struct {
	children []Child
	quorum   int
	rollWait time.Duration
	rollPoll time.Duration
	gen      atomic.Pointer[generation]
	// swapMu serializes rolling reloads; queries never take it.
	swapMu sync.Mutex
	// rollMu guards lastRollErr, the sticky record of the most recent
	// rolling reload's outcome surfaced through Health.
	rollMu      sync.Mutex
	lastRollErr string
	// rollHook, when set (tests only), runs after each child swap
	// during SwapIndex — the seam that widens the mid-roll window the
	// rolling-reload tests probe.
	rollHook func(shard int)

	queries          atomic.Uint64
	shardQueries     atomic.Uint64
	mergedCandidates atomic.Uint64
	quorumDegraded   atomic.Uint64
	shardFailures    atomic.Uint64
}

// generation is one atomically-published index generation: the pinned
// search function of every child, each child's own epoch as observed
// at pin time, plus the coordinator's epoch (one per completed
// rolling reload). Queries load a generation once and use its pinned
// functions throughout, so a reload mid-query — or mid-roll — can
// never mix epochs inside one answer served by local children. The
// recorded child epochs are Health's baseline: a child whose current
// epoch differs from its pinned one is mid-roll (or rolled without
// the coordinator, or restarted onto different content) and makes
// the fleet not-ready.
type generation struct {
	search []SearchFunc
	epochs []uint64
	epoch  uint64
}

// Coordinator implements the same Searcher contract as Engine.
var _ engine.Searcher = (*Coordinator)(nil)

// New partitions the index into cfg.Shards doc-partitioned pieces and
// builds one child engine per piece. The error surface is
// index.Compact.Partition's: invalid shard counts and corrupt
// in-memory buffers.
func New(idx *index.Compact, cfg Config) (*Coordinator, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	parts, err := idx.Partition(n)
	if err != nil {
		return nil, err
	}
	children := make([]Child, n)
	for i, p := range parts {
		children[i] = localChild{eng: engine.New(p, cfg.Engine)}
	}
	return NewFromChildren(children, cfg)
}

// NewFromChildren builds a Coordinator over pre-built children —
// the constructor the remote tier uses to compose a fleet of shard
// processes under the unchanged scatter-gather. cfg.Shards and
// cfg.Engine are ignored (the children already exist); cfg.Quorum
// must be 0 (strict: all shards) or in [1, len(children)].
func NewFromChildren(children []Child, cfg Config) (*Coordinator, error) {
	if len(children) == 0 {
		return nil, errors.New("shard: no children")
	}
	q := cfg.Quorum
	if q == 0 {
		q = len(children)
	}
	if q < 0 || q > len(children) {
		return nil, fmt.Errorf("shard: quorum %d out of range [1, %d]", cfg.Quorum, len(children))
	}
	wait := cfg.RollHealthTimeout
	if wait <= 0 {
		wait = 5 * time.Second
	}
	poll := cfg.RollPoll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	c := &Coordinator{children: children, quorum: q, rollWait: wait, rollPoll: poll}
	fns, epochs := pinAll(children)
	c.gen.Store(&generation{search: fns, epochs: epochs})
	return c, nil
}

// pinAll pins every child at its current generation, recording the
// child epochs the pin observed.
func pinAll(children []Child) ([]SearchFunc, []uint64) {
	fns := make([]SearchFunc, len(children))
	epochs := make([]uint64, len(children))
	for i, ch := range children {
		fns[i] = ch.Pin()
		epochs[i] = ch.Health().Epoch
	}
	return fns, epochs
}

// Shards returns the number of children.
func (c *Coordinator) Shards() int { return len(c.children) }

// Search scatters the query to every shard under one pinned
// generation and one shared pruning floor, then rank-merges the
// per-shard top-k heaps into the global k. With a full fleet the
// merged answer is bitwise identical to a single engine over the
// unsplit index (the package comment gives the argument; the
// differential suite the proof). Counts roll up:
// Candidates/Evaluated/Pruned/Failed are summed and Partial/Degraded
// OR-ed across shards. In quorum mode a partial fleet still answers:
// the survivors merge into a sound subset flagged Degraded.
func (c *Coordinator) Search(ctx context.Context, q engine.Query) (*engine.Result, error) {
	start := time.Now()
	k := q.K
	if k <= 0 {
		k = engine.DefaultK
	}
	if q.Floor == nil {
		// One floor for the whole scatter; a caller-supplied floor is
		// honored so fleets of coordinators could share one too.
		q.Floor = engine.NewGlobalFloor()
	}
	gen := c.gen.Load()
	n := len(c.children)
	c.queries.Add(1)
	c.shardQueries.Add(uint64(n))

	// Scatter. A shard failure cancels the rest only once it makes
	// quorum unreachable — before that the fleet keeps working toward
	// a degraded answer (with Quorum = N, the default, the first
	// failure cancels immediately, the strict historical behavior).
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*engine.Result, n)
	errs := make([]error, n)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for i := range gen.search {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = gen.search[i](sctx, q)
			if errs[i] != nil && int(failed.Add(1)) > n-c.quorum {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	ok := 0
	for i := range errs {
		if errs[i] == nil && results[i] != nil {
			ok++
		}
	}
	if ok < c.quorum || ok == 0 {
		return nil, firstError(errs)
	}
	res := c.merge(results, k, start)
	if ok < n {
		res.Degraded = true
		res.FailedShards = n - ok
		c.quorumDegraded.Add(1)
		c.shardFailures.Add(uint64(n - ok))
	}
	return res, nil
}

// firstError picks the error to surface deterministically: the
// lowest-indexed non-overload error when one exists (a validation
// error is the same on every shard; an overload error on another
// shard may just be fallout of this one's cancellation), else the
// lowest-indexed error.
func firstError(errs []error) error {
	var overload error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, engine.ErrOverloaded) {
			return err
		}
		if overload == nil {
			overload = err
		}
	}
	return overload
}

// merge rank-merges the per-shard results: a k-way merge over the
// shards' already-sorted Docs under the engine's exact comparator —
// score descending, document id ascending on ties — taking the first
// k rows. Counts sum; flags OR. Nil entries (shards dropped by quorum
// mode) are skipped.
func (c *Coordinator) merge(results []*engine.Result, k int, start time.Time) *engine.Result {
	merged := &engine.Result{Docs: make([]engine.DocResult, 0, k)}
	heads := make([]int, len(results))
	entering := 0
	for _, r := range results {
		if r == nil {
			continue
		}
		merged.Candidates += r.Candidates
		merged.Evaluated += r.Evaluated
		merged.Pruned += r.Pruned
		merged.Failed += r.Failed
		merged.Partial = merged.Partial || r.Partial
		merged.Degraded = merged.Degraded || r.Degraded
		entering += len(r.Docs)
	}
	c.mergedCandidates.Add(uint64(entering))
	for len(merged.Docs) < k {
		best := -1
		for s, r := range results {
			if r == nil || heads[s] == len(r.Docs) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			a, b := r.Docs[heads[s]], results[best].Docs[heads[best]]
			if a.Score > b.Score || (a.Score == b.Score && a.Doc < b.Doc) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		merged.Docs = append(merged.Docs, results[best].Docs[heads[best]])
		heads[best]++
	}
	merged.Elapsed = time.Since(start)
	return merged
}

// SwapIndex hot-reloads the whole fleet with zero downtime: the new
// index is partitioned, each child swaps one at a time, and the roll
// pauses after each swap until that child reports Ready again (the
// health gate — bounded by Config.RollHealthTimeout). Only after
// every child is on the new index and healthy does the coordinator
// atomically publish the new generation; an unhealthy or failing
// child aborts the roll instead, leaving the generation unflipped and
// the failure visible through Health. Queries admitted mid-roll keep
// using the old generation's pinned searches — child SwapIndex never
// invalidates outstanding snapshots, and the caches are epoch-keyed —
// so through local children no query ever observes a mixed-epoch
// answer and none fail. Rolls serialize; queries are never blocked.
//
// Partition errors are impossible for an index built or loaded by
// internal/index (both validate eagerly), so like Compact.Postings
// this path treats one as memory corruption and fails loudly.
func (c *Coordinator) SwapIndex(idx *index.Compact) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	parts, err := idx.Partition(len(c.children))
	if err != nil {
		panic(fmt.Sprintf("shard: re-partition for reload: %v", err))
	}
	for i, child := range c.children {
		if err := child.SwapIndex(parts[i]); err != nil {
			c.setRollErr(fmt.Errorf("shard %d swap failed: %w", i, err))
			return
		}
		if h := c.rollHook; h != nil {
			h(i)
		}
		if err := c.awaitHealthy(i, child); err != nil {
			c.setRollErr(err)
			return
		}
	}
	c.setRollErr(nil)
	old := c.gen.Load()
	fns, epochs := pinAll(c.children)
	c.gen.Store(&generation{search: fns, epochs: epochs, epoch: old.epoch + 1})
}

// awaitHealthy polls one freshly-swapped child until it reports Ready
// or the roll-health timeout elapses — the pause-on-unhealthy gate
// that keeps a rolling reload from marching past a shard that came
// back broken.
func (c *Coordinator) awaitHealthy(i int, child Child) error {
	deadline := time.Now().Add(c.rollWait)
	for {
		if child.Health().Ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard %d not ready %v after swap; roll aborted", i, c.rollWait)
		}
		time.Sleep(c.rollPoll)
	}
}

// setRollErr records the outcome of the most recent rolling reload
// (nil clears it); Health surfaces the record.
func (c *Coordinator) setRollErr(err error) {
	c.rollMu.Lock()
	defer c.rollMu.Unlock()
	if err == nil {
		c.lastRollErr = ""
	} else {
		c.lastRollErr = err.Error()
	}
}

// rollErr returns the last rolling reload's recorded failure, or "".
func (c *Coordinator) rollErr() string {
	c.rollMu.Lock()
	defer c.rollMu.Unlock()
	return c.lastRollErr
}

// Health reports fleet readiness: the coordinator's generation epoch
// plus one row per shard (each child's own reload epoch and
// readiness). Docs is the global corpus size — every shard keeps the
// global id space, so any child reports it. A fleet is mixed-epoch —
// and never reported Ready — when any child's current epoch differs
// from the epoch the published generation pinned it at: that is a
// roll in progress, a roll stuck half-done, or a shard that moved
// under the coordinator, and remote children cannot pin across
// processes, so such a fleet could merge answers from two index
// generations. Err carries the last rolling reload's failure, if
// any; a recorded failure does not by itself clear Ready — a fleet
// stuck on the old generation is stale but still serving.
func (c *Coordinator) Health() engine.Health {
	gen := c.gen.Load()
	h := engine.Health{Ready: true, Epoch: gen.epoch, Err: c.rollErr()}
	for i, child := range c.children {
		ch := child.Health()
		h.Shards = append(h.Shards, engine.ShardHealth{Shard: i, Epoch: ch.Epoch, Docs: ch.Docs, Ready: ch.Ready})
		h.Ready = h.Ready && ch.Ready
		h.Docs = ch.Docs
		if i < len(gen.epochs) && ch.Epoch != gen.epochs[i] {
			h.Ready = false
		}
	}
	return h
}

// Stats rolls the fleet up into one engine.Stats: child counters are
// summed field by field (so DegradedResults, PartialResults, and
// DeadlineHits count per-shard events — one coordinator query can
// tick a counter up to N times), latency histograms are merged,
// PrunedFraction is recomputed over the summed counts, and the
// coordinator's own counters fill Queries, ShardQueries,
// MergedCandidates, QuorumDegraded, and ShardFailures. Remote
// children contribute their client-side robustness counters (Hedged,
// Retried, ShardTimeouts, BreakerOpen) to the rollup. Each child's
// unmodified Stats rides along in Shards, in shard order.
func (c *Coordinator) Stats() engine.Stats {
	agg := engine.Stats{
		Queries:          c.queries.Load(),
		ShardQueries:     c.shardQueries.Load(),
		MergedCandidates: c.mergedCandidates.Load(),
		QuorumDegraded:   c.quorumDegraded.Load(),
		ShardFailures:    c.shardFailures.Load(),
	}
	shards := make([]engine.Stats, len(c.children))
	hists := make([]engine.LatencyHistogram, len(c.children))
	for i, child := range c.children {
		s := child.Stats()
		shards[i] = s
		hists[i] = s.QueryLatency
		agg.DocsEvaluated += s.DocsEvaluated
		agg.JoinsRun += s.JoinsRun
		agg.PrunedDocs += s.PrunedDocs
		agg.ConceptHits += s.ConceptHits
		agg.ConceptMisses += s.ConceptMisses
		agg.ListHits += s.ListHits
		agg.ListMisses += s.ListMisses
		agg.DeadlineHits += s.DeadlineHits
		agg.PartialResults += s.PartialResults
		agg.JoinPanics += s.JoinPanics
		agg.DecodeFailures += s.DecodeFailures
		agg.DegradedResults += s.DegradedResults
		agg.Shed += s.Shed
		agg.IndexReloads += s.IndexReloads
		agg.InFlight += s.InFlight
		agg.QueueDepth += s.QueueDepth
		agg.CachedLists += s.CachedLists
		agg.BlockDecodes += s.BlockDecodes
		agg.BlocksSkipped += s.BlocksSkipped
		agg.CacheBytes += s.CacheBytes
		agg.CoalescedDecodes += s.CoalescedDecodes
		agg.DecodeWaits += s.DecodeWaits
		agg.UnionCandidates += s.UnionCandidates
		agg.PivotSkips += s.PivotSkips
		agg.UnionUnpruned += s.UnionUnpruned
		agg.PairHits += s.PairHits
		agg.PairServed += s.PairServed
		agg.PairBoundPrunes += s.PairBoundPrunes
		agg.Hedged += s.Hedged
		agg.Retried += s.Retried
		agg.ShardTimeouts += s.ShardTimeouts
		agg.BreakerOpen += s.BreakerOpen
		agg.QuorumDegraded += s.QuorumDegraded
		agg.ShardFailures += s.ShardFailures
	}
	if agg.PrunedDocs+agg.DocsEvaluated > 0 {
		agg.PrunedFraction = float64(agg.PrunedDocs) / float64(agg.PrunedDocs+agg.DocsEvaluated)
	}
	agg.QueryLatency = mergeLatency(hists)
	agg.Shards = shards
	return agg
}

// mergeLatency folds per-shard latency histograms into one: bucket
// counts sum by upper bound (0 — the overflow bucket — sorts last)
// and the mean recomputes from the count-weighted per-shard means.
func mergeLatency(hists []engine.LatencyHistogram) engine.LatencyHistogram {
	counts := map[uint64]uint64{}
	var out engine.LatencyHistogram
	totalMicros := 0.0
	for _, h := range hists {
		out.Count += h.Count
		totalMicros += h.MeanMicros * float64(h.Count)
		for _, b := range h.Buckets {
			counts[b.UpperMicros] += b.Count
		}
	}
	if out.Count == 0 {
		return out
	}
	out.MeanMicros = totalMicros / float64(out.Count)
	uppers := make([]uint64, 0, len(counts))
	for u := range counts {
		uppers = append(uppers, u)
	}
	sort.Slice(uppers, func(i, j int) bool {
		if uppers[i] == 0 || uppers[j] == 0 {
			return uppers[j] == 0 // 0 is the unbounded bucket: last
		}
		return uppers[i] < uppers[j]
	})
	for _, u := range uppers {
		out.Buckets = append(out.Buckets, engine.LatencyBucket{UpperMicros: u, Count: counts[u]})
	}
	return out
}

// Publish exposes the coordinator's rolled-up Stats as an expvar
// variable; it shares the duplicate-name guard with Engine.Publish.
func (c *Coordinator) Publish(name string) error {
	return engine.PublishFunc(name, c.Stats)
}
